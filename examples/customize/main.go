// Customize: the paper's Section V customization strategy, applied to
// scenario (a). Starting from the simplest sparse Hamming graph (the
// 2D mesh), offsets are added to SR and SC one at a time, each chosen
// to maximize the hop-count reduction per unit of added area, until
// the 40% area-overhead budget admits no further candidate. The final
// topology is then validated with cycle-accurate simulation.
//
// Run with: go run ./examples/customize
package main

import (
	"fmt"
	"log"

	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
)

func main() {
	arch := tech.Scenario(tech.ScenarioA)
	fmt.Printf("architecture: %d tiles of %.0f MGE, %g-bit links at %.1f GHz\n",
		arch.NumTiles(), arch.EndpointGE/1e6, arch.LinkBWBits, arch.FreqHz/1e9)
	fmt.Printf("design goal:  max throughput, min latency, NoC area overhead <= 40%%\n\n")

	res, err := noc.Customize(arch, 40, noc.Quick)
	if err != nil {
		log.Fatal(err)
	}

	// Show only the accepted steps of the trace; the full candidate
	// log is available in res.Steps.
	fmt.Println("accepted customization steps:")
	n := 0
	for _, s := range res.Steps {
		if !s.Accepted {
			continue
		}
		n++
		fmt.Printf("  %d. %-7s -> %-22s overhead %5.1f%%  avg hops %.2f  diameter %d\n",
			n, s.Candidate, s.Params.String(), s.AreaOverheadPct, s.AvgHops, s.Diameter)
	}

	fmt.Printf("\nfinal parameters: %s\n", res.Params)
	fmt.Printf("paper's choice:   %s\n\n", noc.PaperSHGParams(tech.ScenarioA))
	fmt.Print(noc.FormatPrediction(res.Final))
}
