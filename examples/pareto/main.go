// Pareto: exhaustively enumerate the sparse Hamming graph's
// configuration space — the 2^(R+C-4) distinct topologies of Table I's
// last column — on a 6x6 grid (256 configurations), score each with
// the fast cost model, and print the Pareto frontier of (area
// overhead, average hops). This is the customizability pitch of the
// paper made concrete: one topology family, a continuum of
// cost-performance trade-offs, and a Ruche network (the related-work
// competitor) pinned onto the same chart for comparison.
//
// Run with: go run ./examples/pareto
package main

import (
	"fmt"
	"log"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

func main() {
	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = 6, 6

	points, err := dse.Explore(arch, 1<<12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d sparse Hamming graph configurations on a 6x6 grid\n", len(points))
	fmt.Printf("(Ruche networks on the same grid offer only %d)\n\n", topo.RucheConfigurations(6, 6))

	fmt.Println("Pareto frontier (area overhead vs average hops):")
	fmt.Println("  params                     overhead   avg hops   diameter  radix")
	for _, p := range dse.Frontier(points) {
		fmt.Printf("  %-26s %7.1f%%   %8.2f   %8d  %5d\n",
			p.Params.String(), p.AreaOverheadPct, p.AvgHops, p.Diameter, p.RouterRadix)
	}

	best, ok := dse.Best(points, 40)
	if !ok {
		log.Fatal("no configuration within the 40% budget")
	}
	fmt.Printf("\nbest configuration within the 40%% budget: %s (%.1f%%, %.2f hops)\n",
		best.Params.String(), best.AreaOverheadPct, best.AvgHops)

	// Where do Ruche networks fall on the same chart? Every Ruche
	// factor is one SHG point; the exhaustive frontier dominates or
	// matches each of them.
	fmt.Println("\nRuche networks on the same grid:")
	for f := 2; f < 6; f++ {
		r, err := topo.NewRuche(6, 6, f)
		if err != nil {
			log.Fatal(err)
		}
		res, err := phys.Evaluate(arch, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  factor %d: overhead %5.1f%%, avg hops %.2f\n",
			f, 100*res.AreaOverhead, r.AverageHops())
	}
}
