// Compare: regenerate one panel of the paper's Figure 6 — all eight
// topologies evaluated on the same architecture — and reproduce the
// paper's conclusion: the customized sparse Hamming graph achieves
// the highest saturation throughput among all topologies within the
// 40% area-overhead budget.
//
// Run with: go run ./examples/compare [scenario]
package main

import (
	"fmt"
	"log"
	"os"

	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
)

func main() {
	id := tech.ScenarioA
	if len(os.Args) > 1 {
		id = tech.ScenarioID(os.Args[1])
	}
	arch := tech.Scenario(id)
	if arch == nil {
		log.Fatalf("unknown scenario %q (use a, b, c, or d)", os.Args[1])
	}
	fmt.Printf("Figure 6%s: %d tiles with %.0f MGE and %d core(s) each\n\n",
		id, arch.NumTiles(), arch.EndpointGE/1e6, arch.CoresPerTile)

	rows, err := noc.Figure6(id, noc.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(noc.FormatFigure6(rows))

	// The paper's reading of the figure: restrict to the topologies
	// meeting the cost budget, then rank by throughput and latency.
	fmt.Println("\ntopologies within the 40% area-overhead budget:")
	var bestName string
	var bestSat float64
	for _, r := range rows {
		if !r.Applicable || r.Pred.AreaOverheadPct > 40 {
			continue
		}
		fmt.Printf("  %-20s throughput %5.1f%%  latency %5.1f cy\n",
			r.Topology, r.Pred.SaturationPct, r.Pred.ZeroLoadLatency)
		if r.Pred.SaturationPct > bestSat {
			bestSat, bestName = r.Pred.SaturationPct, r.Topology
		}
	}
	fmt.Printf("\nhighest throughput within budget: %s (%.1f%%)\n", bestName, bestSat)
}
