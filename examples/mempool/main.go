// MemPool: reproduce Table III, the toolchain validation against the
// published MemPool manycore results (256 cores, 22 nm). The paper
// compares its model's predictions with the numbers from MemPool's
// full place-and-route flow; this reproduction compares our toolchain
// against the same published numbers.
//
// The paper's observation to reproduce: area and power predictions
// are accurate for a fast high-level model, while the latency is
// overestimated roughly 2x because MemPool's latency-optimized
// interconnect violates the model's one-cycle-per-router/link floor;
// deducting 1 injection cycle plus 1 cycle per traversed router
// brings the estimate within 20%.
//
// Run with: go run ./examples/mempool
package main

import (
	"fmt"
	"log"

	"sparsehamming/internal/noc"
)

func main() {
	rows, pred, err := noc.TableIII(noc.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table III: cost and performance results and predictions of MemPool")
	fmt.Println()
	fmt.Print(noc.FormatTableIII(rows))

	// The paper's latency correction: 1 cycle to inject plus 1 cycle
	// for each of the three routers a flit traverses on a diameter-2
	// path.
	var latency float64
	for _, r := range rows {
		if r.Metric == "latency [cycles]" {
			latency = r.Predicted
		}
	}
	corrected := latency - 4
	fmt.Printf("\nlatency after the paper's 4-cycle correction: %.1f cycles "+
		"(published value: %.0f)\n", corrected, noc.MemPoolLatencyCycles)
	fmt.Printf("stand-in topology: %s, diameter %d, %s\n",
		pred.Topology, pred.Diameter, pred.RoutingName)
}
