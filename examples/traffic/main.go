// Traffic: stress the customized sparse Hamming graph and the 2D mesh
// under the classic synthetic traffic patterns (uniform random,
// transpose, bit complement, shuffle, hotspot, neighbor) and compare
// load-latency behaviour at a fixed offered load. The paper evaluates
// under uniform random only; this example shows the topology's
// behaviour on adversarial and local patterns too.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"sparsehamming/internal/noc"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

func main() {
	arch := tech.Scenario(tech.ScenarioA)
	patterns := sim.PatternNames() // every registered pattern

	shg, err := topo.NewSparseHamming(8, 8, noc.PaperSHGParams(tech.ScenarioA))
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := topo.NewMesh(8, 8)
	if err != nil {
		log.Fatal(err)
	}

	const load = 0.30 // flits/node/cycle: past mesh saturation for some patterns
	fmt.Printf("offered load %.2f flits/node/cycle, 8 VCs, 32-flit buffers\n\n", load)
	fmt.Println("pattern     topology          avg lat    p99 lat   accepted  delivered")
	for _, name := range patterns {
		for _, tp := range []*topo.Topology{mesh, shg} {
			pat, err := sim.PatternByName(name, 8, 8)
			if err != nil {
				log.Fatal(err)
			}
			cost, err := phys.Evaluate(arch, tp)
			if err != nil {
				log.Fatal(err)
			}
			rt, err := route.For(tp, route.Auto)
			if err != nil {
				log.Fatal(err)
			}
			st, err := sim.RunConfig(sim.Config{
				Topo: tp, Routing: rt,
				NumVCs: arch.Proto.NumVCs, BufDepth: arch.Proto.BufDepthFlits,
				LinkLatency: cost.LinkLatencies, RouterDelay: noc.RouterDelay,
				PacketLen: 4, InjectionRate: load, Pattern: pat, Seed: 5,
				Warmup: 1000, Measure: 4000, Drain: 8000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-11s %-16s %7.1f    %7.1f     %6.3f     %5.1f%%\n",
				name, tp.Kind, st.AvgPacketLatency, st.P99PacketLatency,
				st.AcceptedRate, 100*st.DeliveredFraction())
		}
	}
	fmt.Println("\nAn accepted rate below the offered load marks a saturated run (the")
	fmt.Println("drain phase still delivers the backlog, so delivery can read 100%).")
}
