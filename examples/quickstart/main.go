// Quickstart: build a sparse Hamming graph, inspect its properties,
// and run the full prediction toolchain on the paper's KNC-like
// scenario (a): 64 tiles of 35 MGE, 512 bits/cycle links at 1.2 GHz
// in a 22 nm node.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sparsehamming/internal/noc"
	"sparsehamming/internal/route"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
	"sparsehamming/internal/viz"
)

func main() {
	// 1. Construct the topology: a 2D mesh plus skip links at row
	// offset 4 and column offsets 2 and 5 — the parameter set the
	// paper derives for scenario (a).
	params := topo.HammingParams{SR: []int{4}, SC: []int{2, 5}}
	shg, err := topo.NewSparseHamming(8, 8, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(viz.Topology(shg))

	// 2. Check the design principles (Section II): the sparse Hamming
	// graph keeps all links row/column-aligned, contains physically
	// minimal paths, and its radix interpolates mesh..butterfly.
	sc := shg.Structural()
	fmt.Printf("design principles: radix=%d diameter=%d aligned=%v minimal-paths=%v\n",
		sc.RouterRadix, sc.Diameter, sc.AlignedLinks == topo.Yes, sc.MinimalPathsPresent)

	// 3. Build the co-designed routing (monotone dimension-order):
	// deadlock-free with a single VC class and physically minimal.
	rt, err := route.For(shg, route.Auto)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.VerifyDeadlockFree(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing: %s, avg hops %.2f, physically minimal: %v\n\n",
		rt.Name, rt.AvgHops(), rt.MinimalPathsUsed())

	// 4. Run the prediction toolchain: approximate floorplanning and
	// link routing for cost, then cycle-accurate simulation for
	// performance.
	arch := tech.Scenario(tech.ScenarioA)
	pred, err := noc.Predict(arch, shg, noc.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(noc.FormatPrediction(pred))

	fmt.Printf("\nThe paper's design goal: maximize throughput with at most 40%% NoC area\n")
	fmt.Printf("overhead. This configuration uses %.1f%%.\n", pred.AreaOverheadPct)
}
