// Package sparsehamming's benchmark harness regenerates every table
// and figure of the paper's evaluation:
//
//	BenchmarkTableI      — design-principle compliance (Table I)
//	BenchmarkTableIII    — MemPool toolchain validation (Table III)
//	BenchmarkFigure6a..d — the four topology-comparison panels (Fig. 6)
//	BenchmarkCustomize   — the Section V customization strategy
//	BenchmarkAblation*   — design-choice ablations called out in DESIGN.md
//
// Each benchmark prints the regenerated rows on its first iteration
// and reports the headline numbers as custom metrics. The heavyweight
// figure benchmarks take tens of seconds per iteration; run with
// -benchtime=1x for a single regeneration pass:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Every benchmark run also appends its measurements (ns/op,
// allocs/op, and — for the simulating benchmarks — simulated cycles
// per second and ns per flit) to the perf trajectory BENCH_sim.json
// (override with $BENCH_SIM_JSON), so the repository accumulates a
// perf history across PRs; see internal/perf.
package sparsehamming

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/perf"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// benchRec collects one perf entry per benchmark; TestMain flushes it
// to the trajectory file after a -bench run.
var benchRec = perf.NewRecorder()

// TestMain appends the recorded benchmark measurements to the perf
// trajectory once all benchmarks have run. Plain `go test` runs (no
// -bench flag) record nothing and leave the trajectory untouched.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		if err := benchRec.Flush(perf.DefaultPath()); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
		}
	}
	os.Exit(code)
}

// BenchmarkTableI regenerates Table I for the 8x8 grid.
func BenchmarkTableI(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	meter := perf.StartMeter()
	for i := 0; i < b.N; i++ {
		rows, err := noc.TableI(arch)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nTable I (R = C = 8):")
			fmt.Print(noc.FormatTableI(rows))
		}
	}
	benchRec.Set(meter.Done("TableI", b.N))
}

// tableIIIBench regenerates the MemPool validation at a quality tier
// and records it under the given trajectory name, including the
// campaign's simulation speed (cycles per wall second, ns per flit)
// so the TableIII entries carry the same speed history the Figure6
// and SimCycles entries do.
func tableIIIBench(b *testing.B, quality noc.Quality, bench string) {
	b.Helper()
	meter := perf.StartMeter()
	entry := perf.Entry{Metrics: map[string]float64{}}
	var simCycles, simFlitHops int64
	for i := 0; i < b.N; i++ {
		rows, pred, err := noc.TableIII(quality)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += pred.SimCycles
		simFlitHops += pred.SimFlitHops
		if i == 0 {
			fmt.Printf("\nTable III (MemPool, %s):\n", noc.QualityName(quality))
			fmt.Print(noc.FormatTableIII(rows))
			for _, r := range rows {
				b.ReportMetric(r.ErrorPct, "err%/"+r.Metric[:4])
				entry.Metrics["err%/"+r.Metric[:4]] = r.ErrorPct
			}
		}
	}
	elapsed := meter.Elapsed()
	done := meter.Done(bench, b.N)
	done.Metrics = entry.Metrics
	if simCycles > 0 {
		done.CyclesPerSec = float64(simCycles) / elapsed.Seconds()
		b.ReportMetric(done.CyclesPerSec/1e6, "Msimcy/s")
	}
	if simFlitHops > 0 {
		done.NsPerFlit = float64(elapsed.Nanoseconds()) / float64(simFlitHops)
	}
	benchRec.Set(done)
}

// BenchmarkTableIII regenerates the MemPool validation.
func BenchmarkTableIII(b *testing.B) { tableIIIBench(b, noc.Quick, "TableIII") }

// BenchmarkTableIIIAdaptive regenerates the MemPool validation on the
// adaptive simulation-control tier.
func BenchmarkTableIIIAdaptive(b *testing.B) { tableIIIBench(b, noc.Adaptive, "TableIIIAdaptive") }

// figure6Bench regenerates one scenario panel at a quality tier and
// records the campaign's simulation speed (simulated cycles per wall
// second) plus, on the adaptive tier, the cycles its early verdicts
// avoided.
func figure6Bench(b *testing.B, id tech.ScenarioID, quality noc.Quality, bench string) {
	b.Helper()
	meter := perf.StartMeter()
	metrics := map[string]float64{}
	var simCycles, simFlitHops, cyclesSaved int64
	c0 := sim.Counters()
	for i := 0; i < b.N; i++ {
		panels, stats, err := noc.Figure6Panels([]tech.ScenarioID{id}, quality, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows := panels[0]
		simCycles += stats[0].SimCycles
		simFlitHops += stats[0].SimFlitHops
		cyclesSaved += stats[0].CyclesSaved
		if i != 0 {
			continue
		}
		fmt.Printf("\nFigure 6%s (%s):\n", id, noc.QualityName(quality))
		fmt.Print(noc.FormatFigure6(rows))
		for _, r := range rows {
			if r.Topology == "sparse-hamming" {
				b.ReportMetric(r.Pred.SaturationPct, "shg_sat_%")
				b.ReportMetric(r.Pred.ZeroLoadLatency, "shg_zl_cy")
				b.ReportMetric(r.Pred.AreaOverheadPct, "shg_ovh_%")
				metrics["shg_sat_%"] = r.Pred.SaturationPct
				metrics["shg_zl_cy"] = r.Pred.ZeroLoadLatency
				metrics["shg_ovh_%"] = r.Pred.AreaOverheadPct
			}
		}
	}
	elapsed := meter.Elapsed()
	c1 := sim.Counters()
	cyPerSec := float64(simCycles) / elapsed.Seconds()
	b.ReportMetric(cyPerSec/1e6, "Msimcy/s")
	entry := meter.Done(bench, b.N)
	entry.CyclesPerSec = cyPerSec
	if simFlitHops > 0 {
		entry.NsPerFlit = float64(elapsed.Nanoseconds()) / float64(simFlitHops)
	}
	if cyclesSaved > 0 {
		metrics["cycles_saved"] = float64(cyclesSaved) / float64(b.N)
	}
	// Build amortization of the batched engine: replica instantiations
	// per full topology build. 1.0 would mean every run paid a build
	// (the pre-batching behavior); the saturation searches and grouped
	// load sweeps push it well above 2.
	if shapes := c1.ShapeBuilds - c0.ShapeBuilds; shapes > 0 {
		ratio := float64(c1.SimBuilds-c0.SimBuilds) / float64(shapes)
		b.ReportMetric(ratio, "build_x")
		metrics["build_reduction_x"] = ratio
	}
	entry.Metrics = metrics
	benchRec.Set(entry)
}

// BenchmarkFigure6a: 64 tiles, 35 MGE, 1 core each.
func BenchmarkFigure6a(b *testing.B) { figure6Bench(b, tech.ScenarioA, noc.Quick, "Figure6a") }

// BenchmarkFigure6aAdaptive: Figure 6a on the adaptive
// simulation-control tier — same panel, early-verdict probes. The
// trajectory records it separately so the fixed tier's history stays
// comparable.
func BenchmarkFigure6aAdaptive(b *testing.B) {
	figure6Bench(b, tech.ScenarioA, noc.Adaptive, "Figure6aAdaptive")
}

// BenchmarkFigure6aBatched: Figure 6a through the batched engine —
// the same fixed-tier panel as BenchmarkFigure6a, recorded under its
// own trajectory name so the build-amortization ratio (`build_x`,
// replica instantiations per topology build) has a guarded history.
// The headline metrics (shg_sat_%, shg_zl_cy, shg_ovh_%) must match
// BenchmarkFigure6a's exactly: batching changes scheduling, never
// results.
func BenchmarkFigure6aBatched(b *testing.B) {
	figure6Bench(b, tech.ScenarioA, noc.Quick, "Figure6aBatched")
}

// BenchmarkFigure6b: 64 tiles, 70 MGE, 2 cores each.
func BenchmarkFigure6b(b *testing.B) { figure6Bench(b, tech.ScenarioB, noc.Quick, "Figure6b") }

// BenchmarkFigure6c: 128 tiles, 35 MGE, 1 core each (SlimNoC applies).
func BenchmarkFigure6c(b *testing.B) { figure6Bench(b, tech.ScenarioC, noc.Quick, "Figure6c") }

// BenchmarkFigure6d: 128 tiles, 70 MGE, 2 cores each (SlimNoC applies).
func BenchmarkFigure6d(b *testing.B) { figure6Bench(b, tech.ScenarioD, noc.Quick, "Figure6d") }

// BenchmarkCustomize runs the Section V strategy on scenario a.
func BenchmarkCustomize(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	for i := 0; i < b.N; i++ {
		res, err := noc.Customize(arch, 40, noc.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nCustomization (scenario a, 40%% budget): %s\n", res.Params)
			b.ReportMetric(res.Final.AreaOverheadPct, "ovh_%")
			b.ReportMetric(res.Final.SaturationPct, "sat_%")
		}
	}
}

// BenchmarkAblationRouting quantifies design principle 4's co-design
// claim: the sparse Hamming graph with monotone dimension-order
// routing versus generic hop-minimal tables, and the hypercube with
// its tuned e-cube routing versus the same generic tables.
func BenchmarkAblationRouting(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	shg, err := topo.NewSparseHamming(8, 8, noc.PaperSHGParams(tech.ScenarioA))
	if err != nil {
		b.Fatal(err)
	}
	hc, err := topo.NewHypercube(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		t    *topo.Topology
		alg  route.Algorithm
	}{
		{"shg/monotone-dor", shg, route.MonotoneDOR},
		{"shg/hop-minimal", shg, route.HopMinimal},
		{"hypercube/e-cube", hc, route.ECube},
		{"hypercube/hop-minimal", hc, route.HopMinimal},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := noc.PredictWith(arch, c.t, c.alg, noc.Quick)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(p.SaturationPct, "sat_%")
					b.ReportMetric(p.ZeroLoadLatency, "zl_cy")
				}
			}
		})
	}
}

// BenchmarkAblationSpacing quantifies the uniform-link-density
// criterion: the channel-area utilization of a uniform topology
// (torus) versus a non-uniform one (SlimNoC) on the same grid, and
// the resulting area overheads (cost model only, no simulation).
func BenchmarkAblationSpacing(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioC) // 8x16, SlimNoC applies
	cases := []struct {
		name string
		make func() (*topo.Topology, error)
	}{
		{"torus", func() (*topo.Topology, error) { return topo.NewTorus(8, 16) }},
		{"slimnoc", func() (*topo.Topology, error) { return topo.NewSlimNoC(8, 16) }},
		{"flattened-butterfly", func() (*topo.Topology, error) { return topo.NewFlattenedButterfly(8, 16) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			t, err := c.make()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := phys.Evaluate(arch, t)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ChannelUtilization, "util")
					b.ReportMetric(100*res.AreaOverhead, "ovh_%")
				}
			}
		})
	}
}

// BenchmarkAblationModels contrasts the three model tiers the paper
// discusses: the closed-form high-level model (instant, optimistic),
// this repository's toolchain (fast, floorplan-aware), and — as the
// stand-in for ground truth — a long full-quality simulation. Metrics
// report each tier's saturation estimate for the scenario-a SHG.
func BenchmarkAblationModels(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	shg, err := topo.NewSparseHamming(8, 8, noc.PaperSHGParams(tech.ScenarioA))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pred, err := noc.Predict(arch, shg, noc.Full)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pred.AnalyticBoundPct, "bound_%")
			b.ReportMetric(pred.SaturationPct, "sim_%")
			b.ReportMetric(pred.AnalyticZeroLoad, "closed_zl")
			b.ReportMetric(pred.ZeroLoadLatency, "sim_zl")
		}
	}
}

// BenchmarkAblationBuffers sweeps the router's virtual-channel count
// and buffer depth on the scenario-a SHG — the microarchitectural
// knobs the paper fixes at 8 VCs x 32 flits.
func BenchmarkAblationBuffers(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	shg, err := topo.NewSparseHamming(8, 8, noc.PaperSHGParams(tech.ScenarioA))
	if err != nil {
		b.Fatal(err)
	}
	cost, err := phys.Evaluate(arch, shg)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := route.For(shg, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name     string
		vcs, buf int
	}{
		{"2vc-8flit", 2, 8},
		{"4vc-16flit", 4, 16},
		{"8vc-32flit", 8, 32},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.SaturationThroughput(sim.Config{
					Topo: shg, Routing: rt, NumVCs: c.vcs, BufDepth: c.buf,
					LinkLatency: cost.LinkLatencies, RouterDelay: noc.RouterDelay,
					PacketLen: 4, Seed: 1, Warmup: 800, Measure: 2500,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(100*res.SaturationRate, "sat_%")
				}
			}
		})
	}
}

// BenchmarkDSESurrogate runs the two-stage surrogate-guided
// exploration of the 6x6 sparse Hamming space (256 configurations)
// with exhaustive validation: every configuration is simulated for
// ground truth, so the trajectory records both the savings factor the
// band selection earns in production (dse_sims_saved_x, configurations
// per band member) and the price of those savings (frontier_recall,
// which the perf floor pins at 1.0 — the band must never lose a
// ground-truth frontier point). Simulations run 3 seed replicates and
// frontiers are compared at the saturation search's measurement
// resolution, so the recall the floor pins is against design signal,
// not the per-seed quantization of the bisection search; the 0.5%
// band slack absorbs the surrogate's worst observed misranking.
func BenchmarkDSESurrogate(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = 6, 6
	runner := noc.NewRunner(0, exp.NewCache())
	meter := perf.StartMeter()
	metrics := map[string]float64{}
	for i := 0; i < b.N; i++ {
		ex, err := dse.ExploreSurrogate(arch, dse.Options{
			MaxConfigs: 1 << 10,
			SlackPct:   0.5,
			Replicates: 3,
			Validate:   true,
		}, runner)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		f := ex.Fidelity
		fmt.Printf("\nSurrogate DSE (scenario a, 6x6): %d configs, band %d (slack %.1f%%, %d replicates), "+
			"%.1fx sims saved, frontier recall %.0f%%, rank corr %.3f\n",
			f.Configs, f.Band, ex.SlackPct, ex.Replicates, f.SimsSavedX, 100*f.FrontierRecall, f.RankCorr)
		b.ReportMetric(f.SimsSavedX, "saved_x")
		b.ReportMetric(100*f.FrontierRecall, "recall_%")
		metrics["dse_sims_saved_x"] = f.SimsSavedX
		metrics["frontier_recall"] = f.FrontierRecall
		metrics["dse_band"] = float64(f.Band)
		metrics["dse_rank_corr"] = f.RankCorr
		metrics["dse_wall_ms"] = float64(ex.Report.Wall.Milliseconds())
	}
	entry := meter.Done("DSESurrogate", b.N)
	entry.Metrics = metrics
	benchRec.Set(entry)
}

// BenchmarkPhysEvaluate measures the cost model's speed — the paper's
// pitch is that approximate floorplanning runs at high-level-model
// speed while capturing link routing.
func BenchmarkPhysEvaluate(b *testing.B) {
	arch := tech.Scenario(tech.ScenarioA)
	shg, err := topo.NewSparseHamming(8, 8, noc.PaperSHGParams(tech.ScenarioA))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phys.Evaluate(arch, shg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingConstruction measures routing-table construction.
func BenchmarkRoutingConstruction(b *testing.B) {
	shg, err := topo.NewSparseHamming(8, 16, noc.PaperSHGParams(tech.ScenarioC))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.For(shg, route.Auto); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimCycles measures raw simulation speed in router-cycles
// per second on a loaded 8x8 mesh (serial, single simulator).
func BenchmarkSimCycles(b *testing.B) {
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	var cycles, flitHops int64
	b.ResetTimer()
	meter := perf.StartMeter()
	for i := 0; i < b.N; i++ {
		st, err := sim.RunConfig(sim.Config{
			Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
			RouterDelay: 3, PacketLen: 4, InjectionRate: 0.3,
			Seed: int64(i), Warmup: 500, Measure: 2000, Drain: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Deadlocked {
			b.Fatal("deadlock")
		}
		cycles += st.Cycles
		flitHops += st.FlitHops
	}
	elapsed := meter.Elapsed()
	cyPerSec := float64(cycles) / elapsed.Seconds()
	nsPerFlit := float64(elapsed.Nanoseconds()) / float64(flitHops)
	b.ReportMetric(cyPerSec/1e6, "Msimcy/s")
	b.ReportMetric(nsPerFlit, "ns/flit")
	entry := meter.Done("SimCycles", b.N)
	entry.CyclesPerSec = cyPerSec
	entry.NsPerFlit = nsPerFlit
	benchRec.Set(entry)
}
