package route

import (
	"fmt"

	"sparsehamming/internal/topo"
)

// buildECube constructs e-cube routing for the Gray-code-placed
// hypercube: the differing ID bits between source and destination are
// corrected in a fixed order (column bits from least significant up,
// then row bits), which makes the channel dependency graph acyclic
// with a single VC class. This is the classic hypercube routing; it
// minimizes hops (one per differing bit) but not physical length,
// matching the paper's Table I entry for the hypercube.
func buildECube(t *topo.Topology) (*Routing, error) {
	if t.Kind != "hypercube" {
		return nil, fmt.Errorf("route: e-cube requires a hypercube, got %s", t.Kind)
	}
	R, C := t.Rows, t.Cols
	colOf := invGray(C)
	rowOf := invGray(R)

	n := t.NumTiles()
	paths := newPaths(n)
	for s := 0; s < n; s++ {
		sc := t.CoordOf(s)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dc := t.CoordOf(d)
			tiles := []int32{int32(s)}
			// Correct column bits lowest-first.
			gc, gcd := gray(sc.Col), gray(dc.Col)
			col, row := sc.Col, sc.Row
			for b := 1; b < C; b <<= 1 {
				if (gc^gcd)&b != 0 {
					gc ^= b
					col = colOf[gc]
					tiles = append(tiles, int32(t.Index(topo.Coord{Row: row, Col: col})))
				}
			}
			// Then row bits lowest-first.
			gr, grd := gray(sc.Row), gray(dc.Row)
			for b := 1; b < R; b <<= 1 {
				if (gr^grd)&b != 0 {
					gr ^= b
					row = rowOf[gr]
					tiles = append(tiles, int32(t.Index(topo.Coord{Row: row, Col: col})))
				}
			}
			paths[s][d] = Path{Tiles: tiles, Classes: make([]int8, len(tiles)-1)}
		}
	}
	return &Routing{Name: "e-cube/" + t.Kind, Topo: t, NumClasses: 1, paths: paths}, nil
}

func gray(i int) int { return i ^ (i >> 1) }

func invGray(n int) []int {
	inv := make([]int, n)
	for i := 0; i < n; i++ {
		inv[gray(i)] = i
	}
	return inv
}

// buildHopMinimal constructs hop-count-minimal table routing for an
// arbitrary topology, breaking ties toward physically shorter paths
// (design principle 4) and then lowest tile index (determinism).
// Deadlock freedom comes from hop-layered VC classes: a flit uses VC
// class h on its h-th hop, so channel dependencies always point from
// class h to class h+1 and the dependency graph is a DAG. The number
// of classes equals the topology diameter, which bounds the scheme to
// low-diameter topologies (SlimNoC's diameter is 2).
func buildHopMinimal(t *topo.Topology) (*Routing, error) {
	diam := t.Diameter()
	if diam < 0 {
		return nil, fmt.Errorf("route: hop-minimal routing on disconnected topology %s", t.Kind)
	}
	if diam < 1 {
		diam = 1
	}
	n := t.NumTiles()
	paths := newPaths(n)

	// For each destination, compute hop distance and physically
	// shortest next-hop by reverse BFS with tie-breaking.
	hops := make([]int, n)
	phys := make([]int, n)
	next := make([]int32, n)
	for d := 0; d < n; d++ {
		for i := range hops {
			hops[i], phys[i], next[i] = -1, 1<<30, -1
		}
		hops[d], phys[d] = 0, 0
		frontier := []int{d}
		for len(frontier) > 0 {
			var nf []int
			for _, u := range frontier {
				for _, v := range t.Neighbors(u) {
					if hops[v] < 0 {
						hops[v] = hops[u] + 1
						nf = append(nf, v)
					}
				}
			}
			// Relax phys/next within the new layer.
			for _, u := range frontier {
				cu := t.CoordOf(u)
				for _, v := range t.Neighbors(u) {
					if hops[v] != hops[u]+1 {
						continue
					}
					w := phys[u] + topo.Manhattan(cu, t.CoordOf(v))
					if w < phys[v] || (w == phys[v] && (next[v] < 0 || int32(u) < next[v])) {
						phys[v] = w
						next[v] = int32(u)
					}
				}
			}
			frontier = nf
		}
		for s := 0; s < n; s++ {
			if s == d {
				continue
			}
			tiles := []int32{int32(s)}
			classes := make([]int8, 0, hops[s])
			cur := s
			for cur != d {
				classes = append(classes, int8(len(tiles)-1))
				cur = int(next[cur])
				tiles = append(tiles, int32(cur))
			}
			paths[s][d] = Path{Tiles: tiles, Classes: classes}
		}
	}
	return &Routing{Name: "hop-minimal/" + t.Kind, Topo: t, NumClasses: diam, paths: paths}, nil
}
