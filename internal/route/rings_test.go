package route

import (
	"testing"

	"sparsehamming/internal/topo"
)

func TestCycleOrderVisitsAll(t *testing.T) {
	rg, err := topo.NewRing(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	order, err := cycleOrder(rg)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 24 {
		t.Fatalf("cycle order has %d tiles, want 24", len(order))
	}
	seen := make([]bool, 24)
	for i, v := range order {
		if seen[v] {
			t.Fatalf("tile %d visited twice", v)
		}
		seen[v] = true
		// Consecutive tiles must be linked.
		next := order[(i+1)%len(order)]
		if !rg.HasLink(rg.CoordOf(v), rg.CoordOf(next)) {
			t.Fatalf("cycle order step %d->%d without a link", v, next)
		}
	}
}

func TestCycleOrderRejectsNonCycle(t *testing.T) {
	m, _ := topo.NewMesh(3, 3)
	if _, err := cycleOrder(m); err == nil {
		t.Error("mesh accepted as a cycle")
	}
}

func TestDatelineClassesMonotone(t *testing.T) {
	// A flit's VC class along any ring path never decreases, and
	// changes at most once (crossing the dateline).
	rg, err := topo.NewRing(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := For(rg, Auto)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			p := r.Path(s, d)
			changes := 0
			for i := 1; i < len(p.Classes); i++ {
				if p.Classes[i] < p.Classes[i-1] {
					t.Fatalf("path %d->%d class decreased", s, d)
				}
				if p.Classes[i] != p.Classes[i-1] {
					changes++
				}
			}
			if changes > 1 {
				t.Fatalf("path %d->%d crosses the dateline twice", s, d)
			}
		}
	}
}

func TestTorusRowThenColumn(t *testing.T) {
	tr, err := topo.NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := For(tr, Auto)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			p := r.Path(s, d)
			sawCol := false
			for i := 0; i+1 < len(p.Tiles); i++ {
				a := tr.CoordOf(int(p.Tiles[i]))
				b := tr.CoordOf(int(p.Tiles[i+1]))
				if a.Row != b.Row {
					sawCol = true
				} else if sawCol {
					t.Fatalf("path %d->%d moves in the row after the column", s, d)
				}
			}
		}
	}
}

func TestHopMinimalMatchesBFSDistances(t *testing.T) {
	sn, err := topo.NewSlimNoC(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := For(sn, HopMinimal)
	if err != nil {
		t.Fatal(err)
	}
	d := sn.Graph().APSP()
	for s := 0; s < sn.NumTiles(); s++ {
		for dst := 0; dst < sn.NumTiles(); dst++ {
			if got := r.Path(s, dst).Hops(); got != d[s][dst] {
				t.Fatalf("path %d->%d hops %d, BFS %d", s, dst, got, d[s][dst])
			}
		}
	}
}

func TestPathSelfIsTrivial(t *testing.T) {
	m, _ := topo.NewMesh(4, 4)
	r, err := For(m, Auto)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Path(5, 5)
	if p.Hops() != 0 || len(p.Tiles) != 1 || int(p.Tiles[0]) != 5 {
		t.Errorf("self path = %+v", p)
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Auto:          "auto",
		MonotoneDOR:   "monotone-dor",
		CycleDateline: "cycle-dateline",
		TorusDOR:      "torus-dor",
		ECube:         "e-cube",
		HopMinimal:    "hop-minimal",
	}
	for alg, want := range names {
		if got := alg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", alg, got, want)
		}
	}
}
