package route

import (
	"fmt"

	"sparsehamming/internal/topo"
)

// buildCycleDateline constructs routing for a topology whose links
// form a single Hamiltonian cycle (the ring): flits travel the shorter
// way around the cycle, and a dateline between the last and first tile
// of the cycle splits traffic into two VC classes, breaking the cyclic
// channel dependency of the ring (Dally & Towles' dateline scheme).
func buildCycleDateline(t *topo.Topology) (*Routing, error) {
	order, err := cycleOrder(t)
	if err != nil {
		return nil, err
	}
	n := t.NumTiles()
	pos := make([]int, n) // tile -> position in cycle
	for i, tile := range order {
		pos[tile] = i
	}
	paths := newPaths(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			fwd := (pos[d] - pos[s] + n) % n
			bwd := n - fwd
			dir := 1
			steps := fwd
			if bwd < fwd || (bwd == fwd && pos[s]%2 == 1) {
				dir, steps = -1, bwd
			}
			tiles := make([]int32, 0, steps+1)
			classes := make([]int8, 0, steps)
			tiles = append(tiles, int32(s))
			class := int8(0)
			p := pos[s]
			for i := 0; i < steps; i++ {
				np := ((p+dir)%n + n) % n
				// The dateline sits between cycle positions n-1 and 0.
				if (dir == 1 && np == 0) || (dir == -1 && np == n-1) {
					class = 1
				}
				tiles = append(tiles, int32(order[np]))
				classes = append(classes, class)
				p = np
			}
			paths[s][d] = Path{Tiles: tiles, Classes: classes}
		}
	}
	return &Routing{Name: "cycle-dateline/" + t.Kind, Topo: t, NumClasses: 2, paths: paths}, nil
}

// cycleOrder returns the tiles of a degree-2 connected topology in
// cycle order starting from tile 0.
func cycleOrder(t *topo.Topology) ([]int, error) {
	n := t.NumTiles()
	for i := 0; i < n; i++ {
		if t.Degree(i) != 2 {
			return nil, fmt.Errorf("route: topology %s is not a simple cycle (tile %d has degree %d)",
				t.Kind, i, t.Degree(i))
		}
	}
	order := make([]int, 0, n)
	order = append(order, 0)
	prev, cur := -1, 0
	for len(order) < n {
		nbs := t.Neighbors(cur)
		next := nbs[0]
		if next == prev {
			next = nbs[1]
		}
		if next == 0 {
			return nil, fmt.Errorf("route: topology %s has a subcycle of length %d < %d",
				t.Kind, len(order), n)
		}
		order = append(order, next)
		prev, cur = cur, next
	}
	return order, nil
}

// buildTorusDOR constructs dimension-order routing for topologies
// whose rows and columns each form cycles (2D torus and folded 2D
// torus): a flit first travels the shorter way around its source
// row's cycle, then around the destination column's cycle. Each line
// cycle has a dateline, giving two VC classes; the strict row-then-
// column order prevents cross-dimension cycles.
func buildTorusDOR(t *topo.Topology) (*Routing, error) {
	R, C := t.Rows, t.Cols
	// Cycle order of every row and column line.
	rowOrder := make([][]int, R) // rowOrder[r] = columns in cycle order
	for r := 0; r < R; r++ {
		o, err := lineCycle(t, lineRow, r)
		if err != nil {
			return nil, err
		}
		rowOrder[r] = o
	}
	colOrder := make([][]int, C)
	for c := 0; c < C; c++ {
		o, err := lineCycle(t, lineCol, c)
		if err != nil {
			return nil, err
		}
		colOrder[c] = o
	}

	n := t.NumTiles()
	paths := newPaths(n)
	for s := 0; s < n; s++ {
		sc := t.CoordOf(s)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dc := t.CoordOf(d)
			tiles := []int32{int32(s)}
			var classes []int8
			// Row phase along the row cycle.
			cols, cls := cycleSteps(rowOrder[sc.Row], sc.Col, dc.Col)
			for i, col := range cols {
				tiles = append(tiles, int32(t.Index(topo.Coord{Row: sc.Row, Col: col})))
				classes = append(classes, cls[i])
			}
			// Column phase along the destination column cycle.
			rows, cls2 := cycleSteps(colOrder[dc.Col], sc.Row, dc.Row)
			for i, row := range rows {
				tiles = append(tiles, int32(t.Index(topo.Coord{Row: row, Col: dc.Col})))
				classes = append(classes, cls2[i])
			}
			paths[s][d] = Path{Tiles: tiles, Classes: classes}
		}
	}
	return &Routing{Name: "torus-dor/" + t.Kind, Topo: t, NumClasses: 2, paths: paths}, nil
}

type lineKind int

const (
	lineRow lineKind = iota
	lineCol
)

// lineCycle returns the positions (columns for a row line, rows for a
// column line) of one grid line in cycle order, verifying that the
// line subgraph is a simple cycle. Two-tile lines (degree-1 path) are
// returned as a trivial 2-cycle order.
func lineCycle(t *topo.Topology, kind lineKind, idx int) ([]int, error) {
	var m int
	if kind == lineRow {
		m = t.Cols
	} else {
		m = t.Rows
	}
	adj := make([][]int, m)
	for p := 0; p < m; p++ {
		var c topo.Coord
		if kind == lineRow {
			c = topo.Coord{Row: idx, Col: p}
		} else {
			c = topo.Coord{Row: p, Col: idx}
		}
		for _, nb := range t.Neighbors(t.Index(c)) {
			nc := t.CoordOf(nb)
			if kind == lineRow && nc.Row == idx {
				adj[p] = append(adj[p], nc.Col)
			}
			if kind == lineCol && nc.Col == idx {
				adj[p] = append(adj[p], nc.Row)
			}
		}
	}
	if m == 2 {
		return []int{0, 1}, nil
	}
	for p := 0; p < m; p++ {
		if len(adj[p]) != 2 {
			return nil, fmt.Errorf("route: %s line %d of %s is not a cycle", kindName(kind), idx, t.Kind)
		}
	}
	order := []int{0}
	prev, cur := -1, 0
	for len(order) < m {
		next := adj[cur][0]
		if next == prev {
			next = adj[cur][1]
		}
		if next == 0 {
			return nil, fmt.Errorf("route: %s line %d of %s has a subcycle", kindName(kind), idx, t.Kind)
		}
		order = append(order, next)
		prev, cur = cur, next
	}
	return order, nil
}

func kindName(k lineKind) string {
	if k == lineRow {
		return "row"
	}
	return "column"
}

// cycleSteps returns the sequence of positions (excluding the start)
// and per-step VC classes when traveling from position `from` to `to`
// the shorter way around the cycle given by order. The dateline sits
// between cycle indices len-1 and 0.
func cycleSteps(order []int, from, to int) ([]int, []int8) {
	if from == to {
		return nil, nil
	}
	n := len(order)
	pos := make(map[int]int, n)
	for i, v := range order {
		pos[v] = i
	}
	fwd := (pos[to] - pos[from] + n) % n
	bwd := n - fwd
	dir, steps := 1, fwd
	if bwd < fwd || (bwd == fwd && pos[from]%2 == 1) {
		dir, steps = -1, bwd
	}
	var seq []int
	var classes []int8
	class := int8(0)
	p := pos[from]
	for i := 0; i < steps; i++ {
		np := ((p+dir)%n + n) % n
		if (dir == 1 && np == 0) || (dir == -1 && np == n-1) {
			class = 1
		}
		seq = append(seq, order[np])
		classes = append(classes, class)
		p = np
	}
	return seq, classes
}
