package route

import (
	"strings"
	"testing"

	"sparsehamming/internal/topo"
)

// TestRegistryRoundTrip checks every registered algorithm: the name
// is listed and Registered, and building it on a suitable topology
// yields a verified, deadlock-free routing.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("%d algorithms registered, want 5: %v", len(names), names)
	}
	// A topology each algorithm is defined on.
	hostFor := map[string]func() (*topo.Topology, error){
		"monotone-dor":   func() (*topo.Topology, error) { return topo.NewMesh(4, 6) },
		"cycle-dateline": func() (*topo.Topology, error) { return topo.NewRing(4, 6) },
		"torus-dor":      func() (*topo.Topology, error) { return topo.NewTorus(4, 6) },
		"e-cube":         func() (*topo.Topology, error) { return topo.NewHypercube(4, 8) },
		"hop-minimal":    func() (*topo.Topology, error) { return topo.NewMesh(4, 6) },
	}
	for _, name := range names {
		if !Registered(name) {
			t.Errorf("Registered(%q) = false", name)
		}
		mk, ok := hostFor[name]
		if !ok {
			t.Errorf("no host topology for %q; extend the test table", name)
			continue
		}
		tp, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		r, err := ForName(tp, name)
		if err != nil {
			t.Errorf("ForName(%s, %q): %v", tp.Kind, name, err)
			continue
		}
		if !strings.Contains(r.Name, name) {
			t.Errorf("ForName(%s, %q) built %q", tp.Kind, name, r.Name)
		}
		if err := r.VerifyDeadlockFree(); err != nil {
			t.Errorf("%s on %s: %v", name, tp.Kind, err)
		}
	}
	for _, name := range []string{"", "auto"} {
		if !Registered(name) {
			t.Errorf("Registered(%q) must be true (co-designed default)", name)
		}
	}
	if Registered("left-hand") {
		t.Error("unknown algorithm must not be registered")
	}
}

// TestDefaultForMatchesFamilies pins the auto dispatch: every
// registered topology family's DefaultFor names its co-designed
// algorithm, and building it succeeds and is deadlock-free — the
// routing/topology co-design contract of design principle 4.
func TestDefaultForMatchesFamilies(t *testing.T) {
	want := map[string]string{
		"ring":                "cycle-dateline",
		"mesh":                "monotone-dor",
		"torus":               "torus-dor",
		"folded-torus":        "torus-dor",
		"hypercube":           "e-cube",
		"slimnoc":             "hop-minimal",
		"flattened-butterfly": "monotone-dor",
		"sparse-hamming":      "monotone-dor",
		"ruche":               "monotone-dor",
	}
	for _, kind := range topo.Names() {
		fam, _ := topo.FamilyByName(kind)
		var sr, sc []int
		if fam.Parameterized {
			sr, sc = []int{2}, []int{2}
		}
		tp, err := topo.ByName(kind, 8, 16, sr, sc)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		def := DefaultFor(tp)
		if w, ok := want[kind]; ok && def != w {
			t.Errorf("DefaultFor(%s) = %q, want %q", kind, def, w)
		}
		r, err := ForName(tp, "auto")
		if err != nil {
			t.Errorf("auto routing on %s: %v", kind, err)
			continue
		}
		if err := r.VerifyDeadlockFree(); err != nil {
			t.Errorf("auto routing on %s: %v", kind, err)
		}
	}
}

// TestDefaultForFallback pins the heuristic for unregistered kinds:
// aligned topologies get monotone DOR, others hop-minimal tables.
func TestDefaultForFallback(t *testing.T) {
	aligned, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	aligned.Kind = "custom-aligned"
	if def := DefaultFor(aligned); def != "monotone-dor" {
		t.Errorf("aligned fallback = %q, want monotone-dor", def)
	}
	diag, err := topo.New("custom-diagonal", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		j := (i + 4) % 9
		diag.AddLink(topo.Coord{Row: i / 3, Col: i % 3}, topo.Coord{Row: j / 3, Col: j % 3})
	}
	if def := DefaultFor(diag); def != "hop-minimal" {
		t.Errorf("non-aligned fallback = %q, want hop-minimal", def)
	}
}

// TestForNameErrors pins the unknown-name error shape.
func TestForNameErrors(t *testing.T) {
	tp, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ForName(tp, "left-hand")
	if err == nil {
		t.Fatal("unknown algorithm must error")
	}
	if !strings.Contains(err.Error(), "monotone-dor") {
		t.Errorf("error %q does not list registered algorithms", err)
	}
}

// TestForMatchesForName pins the enum compatibility layer: For
// dispatches to exactly the registry builder of the enum's name.
func TestForMatchesForName(t *testing.T) {
	tp, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := For(tp, HopMinimal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForName(tp, "hop-minimal")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.NumClasses != b.NumClasses || a.AvgHops() != b.AvgHops() {
		t.Errorf("For and ForName disagree: %q vs %q", a.Name, b.Name)
	}
	if _, err := For(tp, Algorithm(99)); err == nil {
		t.Error("out-of-range enum must error")
	}
}
