// Package route constructs deterministic routing functions for NoC
// topologies, co-designed with each topology family as design
// principle 4 demands: the routing must use the physically-minimal
// paths the topology provides without sacrificing throughput, and it
// must be provably deadlock-free.
//
// A Routing stores one precomputed path per (source, destination)
// pair, annotated per hop with a virtual-channel class. The simulator
// maps VC classes onto disjoint subsets of the router's VCs; the
// channel dependency graph over (directed link, class) pairs is
// acyclic for every routing this package constructs, which
// VerifyDeadlockFree checks explicitly (Dally's criterion).
//
// Implemented algorithms:
//
//   - Monotone dimension-order routing (mesh, sparse Hamming graph,
//     flattened butterfly): row first, then column, never overshooting
//     the destination coordinate. One VC class.
//   - Cycle routing with dateline classes (ring, and the row/column
//     rings of the 2D torus and folded 2D torus). Two VC classes.
//   - E-cube bit-order routing (hypercube). One VC class.
//   - Hop-minimal table routing with hop-layered VC classes (SlimNoC
//     and any low-diameter topology; class = hops taken so far).
package route

import (
	"fmt"

	"sparsehamming/internal/graphalg"
	"sparsehamming/internal/topo"
)

// Algorithm selects a routing construction by enum value — a thin
// compatibility layer over the name-keyed registry in registry.go,
// kept for callers that enumerate the built-in algorithms (the
// routing ablation benchmarks). Name-driven paths (job specs, spec
// files, CLI flags) use ForName directly.
type Algorithm int

// Available algorithms. Auto dispatches on the topology kind via the
// topo registry's DefaultRouting (see DefaultFor).
const (
	Auto Algorithm = iota
	MonotoneDOR
	CycleDateline
	TorusDOR
	ECube
	HopMinimal
)

// algorithmNames maps the enum onto registry names; Auto maps onto
// "auto", which ForName resolves per topology.
var algorithmNames = map[Algorithm]string{
	Auto:          "auto",
	MonotoneDOR:   "monotone-dor",
	CycleDateline: "cycle-dateline",
	TorusDOR:      "torus-dor",
	ECube:         "e-cube",
	HopMinimal:    "hop-minimal",
}

// String names the algorithm.
func (a Algorithm) String() string {
	if name, ok := algorithmNames[a]; ok {
		return name
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Path is the precomputed route between one source/destination pair.
type Path struct {
	// Tiles lists the tile indices from source to destination,
	// inclusive; len >= 1 (a tile routing to itself has just itself).
	Tiles []int32
	// Classes[i] is the VC class used on the channel from Tiles[i] to
	// Tiles[i+1]; len(Classes) == len(Tiles)-1.
	Classes []int8
}

// Hops returns the number of router-to-router hops.
func (p Path) Hops() int { return len(p.Tiles) - 1 }

// Routing is a complete deterministic routing function for one
// topology.
type Routing struct {
	Name       string
	Topo       *topo.Topology
	NumClasses int
	paths      [][]Path // [src][dst]
}

// For constructs a routing for the topology with the given algorithm,
// dispatching through the registry by the algorithm's name.
func For(t *topo.Topology, alg Algorithm) (*Routing, error) {
	name, ok := algorithmNames[alg]
	if !ok {
		return nil, fmt.Errorf("route: unknown algorithm %d", alg)
	}
	return ForName(t, name)
}

// Path returns the path from src to dst (tile indices).
func (r *Routing) Path(src, dst int) Path { return r.paths[src][dst] }

// AvgHops returns the mean hop count over all ordered pairs of
// distinct tiles.
func (r *Routing) AvgHops() float64 {
	n := r.Topo.NumTiles()
	var sum int64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				sum += int64(r.paths[s][d].Hops())
			}
		}
	}
	return float64(sum) / float64(n*(n-1))
}

// MaxHops returns the longest routed path in hops.
func (r *Routing) MaxHops() int {
	m := 0
	for s := range r.paths {
		for d := range r.paths[s] {
			if h := r.paths[s][d].Hops(); h > m {
				m = h
			}
		}
	}
	return m
}

// VerifyConnected checks that every path starts at its source, ends at
// its destination, follows existing links, and has consistent class
// annotations.
func (r *Routing) VerifyConnected() error {
	n := r.Topo.NumTiles()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := r.paths[s][d]
			if len(p.Tiles) == 0 || int(p.Tiles[0]) != s || int(p.Tiles[len(p.Tiles)-1]) != d {
				return fmt.Errorf("route %s: path %d->%d malformed", r.Name, s, d)
			}
			if len(p.Classes) != len(p.Tiles)-1 {
				return fmt.Errorf("route %s: path %d->%d has %d classes for %d hops",
					r.Name, s, d, len(p.Classes), len(p.Tiles)-1)
			}
			for i := 0; i+1 < len(p.Tiles); i++ {
				a := r.Topo.CoordOf(int(p.Tiles[i]))
				b := r.Topo.CoordOf(int(p.Tiles[i+1]))
				if !r.Topo.HasLink(a, b) {
					return fmt.Errorf("route %s: path %d->%d uses missing link %v-%v",
						r.Name, s, d, a, b)
				}
				if c := p.Classes[i]; int(c) < 0 || int(c) >= r.NumClasses {
					return fmt.Errorf("route %s: path %d->%d class %d out of range [0,%d)",
						r.Name, s, d, c, r.NumClasses)
				}
			}
		}
	}
	return nil
}

// VerifyDeadlockFree builds the channel dependency graph over
// (directed link, VC class) vertices and reports an error if it
// contains a cycle (a necessary and, for deterministic routing,
// sufficient condition for deadlock under credit flow control).
func (r *Routing) VerifyDeadlockFree() error {
	n := r.Topo.NumTiles()
	// Dense numbering of (directed link, class) channels.
	ids := make(map[[3]int32]int)
	idOf := func(from, to int32, class int8) int {
		key := [3]int32{from, to, int32(class)}
		if id, ok := ids[key]; ok {
			return id
		}
		id := len(ids)
		ids[key] = id
		return id
	}
	type dep struct{ a, b int }
	var deps []dep
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := r.paths[s][d]
			for i := 0; i+2 < len(p.Tiles); i++ {
				c1 := idOf(p.Tiles[i], p.Tiles[i+1], p.Classes[i])
				c2 := idOf(p.Tiles[i+1], p.Tiles[i+2], p.Classes[i+1])
				deps = append(deps, dep{c1, c2})
			}
			// Ensure single-hop channels exist as vertices too.
			for i := 0; i+1 < len(p.Tiles); i++ {
				idOf(p.Tiles[i], p.Tiles[i+1], p.Classes[i])
			}
		}
	}
	g := graphalg.NewGraph(len(ids))
	seen := make(map[[2]int]struct{}, len(deps))
	for _, e := range deps {
		k := [2]int{e.a, e.b}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		g.AddEdge(e.a, e.b)
	}
	if g.HasCycle() {
		return fmt.Errorf("route %s: channel dependency graph has a cycle (deadlock possible)", r.Name)
	}
	return nil
}

// MinimalPathsUsed reports whether every routed path has physical
// length equal to the Manhattan distance of its endpoints (the "Used"
// column of Table I, evaluated against this concrete routing).
func (r *Routing) MinimalPathsUsed() bool {
	n := r.Topo.NumTiles()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := r.paths[s][d]
			phys := 0
			for i := 0; i+1 < len(p.Tiles); i++ {
				phys += topo.Manhattan(r.Topo.CoordOf(int(p.Tiles[i])), r.Topo.CoordOf(int(p.Tiles[i+1])))
			}
			if phys > topo.Manhattan(r.Topo.CoordOf(s), r.Topo.CoordOf(d)) {
				return false
			}
		}
	}
	return true
}

// FromPaths builds a routing directly from an explicit path table —
// the escape hatch for custom or adversarial tables (fault studies,
// simulator stress tests) that the algorithm constructors cannot
// express. The paths are connectivity-checked, but deadlock freedom
// is deliberately NOT verified: callers wanting the guarantee run
// VerifyDeadlockFree themselves, and callers building intentionally
// deadlock-prone tables (the simulator's watchdog tests) skip it.
func FromPaths(name string, t *topo.Topology, numClasses int, paths [][]Path) (*Routing, error) {
	if numClasses < 1 {
		return nil, fmt.Errorf("route: %s: %d VC classes", name, numClasses)
	}
	if len(paths) != t.NumTiles() {
		return nil, fmt.Errorf("route: %s: %d path rows for %d tiles", name, len(paths), t.NumTiles())
	}
	for s, row := range paths {
		if len(row) != t.NumTiles() {
			return nil, fmt.Errorf("route: %s: row %d has %d paths for %d tiles", name, s, len(row), t.NumTiles())
		}
	}
	r := &Routing{Name: name, Topo: t, NumClasses: numClasses, paths: paths}
	if err := r.VerifyConnected(); err != nil {
		return nil, err
	}
	return r, nil
}

// newPaths allocates the path matrix with trivial self-paths.
func newPaths(n int) [][]Path {
	paths := make([][]Path, n)
	for s := 0; s < n; s++ {
		paths[s] = make([]Path, n)
		paths[s][s] = Path{Tiles: []int32{int32(s)}}
	}
	return paths
}
