package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparsehamming/internal/topo"
)

func mustRoute(t *testing.T, tp *topo.Topology, terr error, alg Algorithm) *Routing {
	t.Helper()
	if terr != nil {
		t.Fatalf("topology: %v", terr)
	}
	r, err := For(tp, alg)
	if err != nil {
		t.Fatalf("For(%s, %v): %v", tp.Kind, alg, err)
	}
	return r
}

func TestMeshDORIsXY(t *testing.T) {
	m, err := topo.NewMesh(6, 7)
	r := mustRoute(t, m, err, Auto)
	if r.NumClasses != 1 {
		t.Errorf("mesh DOR classes = %d, want 1", r.NumClasses)
	}
	// Hops equal Manhattan distance for every pair.
	for s := 0; s < m.NumTiles(); s++ {
		for d := 0; d < m.NumTiles(); d++ {
			want := topo.Manhattan(m.CoordOf(s), m.CoordOf(d))
			if got := r.Path(s, d).Hops(); got != want {
				t.Fatalf("mesh path %d->%d hops = %d, want %d", s, d, got, want)
			}
		}
	}
	// XY order: column changes happen before row changes.
	p := r.Path(m.Index(topo.Coord{Row: 0, Col: 0}), m.Index(topo.Coord{Row: 3, Col: 4}))
	sawRowChange := false
	for i := 0; i+1 < len(p.Tiles); i++ {
		a, b := m.CoordOf(int(p.Tiles[i])), m.CoordOf(int(p.Tiles[i+1]))
		if a.Row != b.Row {
			sawRowChange = true
		} else if sawRowChange {
			t.Fatal("column movement after row movement: not dimension-ordered")
		}
	}
	if !r.MinimalPathsUsed() {
		t.Error("mesh DOR must use physically minimal paths")
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestSparseHammingMonotone(t *testing.T) {
	sh, err := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{4}, SC: []int{2, 5}})
	r := mustRoute(t, sh, err, Auto)
	if r.Name != "monotone-dor/sparse-hamming" {
		t.Errorf("auto algorithm = %s", r.Name)
	}
	if !r.MinimalPathsUsed() {
		t.Error("monotone DOR on SHG must use physically minimal paths")
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
	// Monotone routing uses skip links where they do not overshoot:
	// (0,0)->(0,4) is one hop over the offset-4 link.
	if h := r.Path(0, sh.Index(topo.Coord{Row: 0, Col: 4})).Hops(); h != 1 {
		t.Errorf("(0,0)->(0,4) hops = %d, want 1 (skip link)", h)
	}
	// (0,0)->(0,3): monotone takes 1+1+1, hop-minimal would overshoot
	// via column 4 in 2 hops.
	if h := r.Path(0, sh.Index(topo.Coord{Row: 0, Col: 3})).Hops(); h != 3 {
		t.Errorf("(0,0)->(0,3) monotone hops = %d, want 3", h)
	}
}

func TestHopMinimalOvershoots(t *testing.T) {
	sh, err := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{4}, SC: []int{2, 5}})
	r := mustRoute(t, sh, err, HopMinimal)
	if h := r.Path(0, sh.Index(topo.Coord{Row: 0, Col: 3})).Hops(); h != 2 {
		t.Errorf("(0,0)->(0,3) hop-minimal hops = %d, want 2 (overshoot via col 4)", h)
	}
	// Overshooting is physically non-minimal.
	if r.MinimalPathsUsed() {
		t.Error("hop-minimal routing on this SHG should not be physically minimal")
	}
	// Hop-layered classes keep it deadlock free anyway.
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestRingDateline(t *testing.T) {
	rg, err := topo.NewRing(4, 4)
	r := mustRoute(t, rg, err, Auto)
	if r.NumClasses != 2 {
		t.Errorf("ring classes = %d, want 2", r.NumClasses)
	}
	if got := r.MaxHops(); got != 8 {
		t.Errorf("ring 16-tile max hops = %d, want 8", got)
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
	// Without the dateline the ring's dependency graph must be cyclic;
	// force all classes to 0 and check the verifier catches it.
	broken := &Routing{Name: "ring-no-dateline", Topo: rg, NumClasses: 1, paths: newPaths(rg.NumTiles())}
	for s := 0; s < rg.NumTiles(); s++ {
		for d := 0; d < rg.NumTiles(); d++ {
			p := r.Path(s, d)
			cls := make([]int8, len(p.Classes))
			broken.paths[s][d] = Path{Tiles: p.Tiles, Classes: cls}
		}
	}
	if err := broken.VerifyDeadlockFree(); err == nil {
		t.Error("ring without dateline classes should be flagged as deadlock-prone")
	}
}

func TestTorusDOR(t *testing.T) {
	tr, err := topo.NewTorus(6, 8)
	r := mustRoute(t, tr, err, Auto)
	if r.NumClasses != 2 {
		t.Errorf("torus classes = %d, want 2", r.NumClasses)
	}
	if got, want := r.MaxHops(), 3+4; got != want {
		t.Errorf("torus 6x8 max hops = %d, want %d", got, want)
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
	if r.MinimalPathsUsed() {
		t.Error("torus DOR uses wrap links: not physically minimal")
	}
}

func TestFoldedTorusDOR(t *testing.T) {
	ft, err := topo.NewFoldedTorus(8, 8)
	r := mustRoute(t, ft, err, Auto)
	if got, want := r.MaxHops(), 8; got != want {
		t.Errorf("folded torus 8x8 max hops = %d, want %d", got, want)
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestECubeHypercube(t *testing.T) {
	h, err := topo.NewHypercube(8, 8)
	r := mustRoute(t, h, err, Auto)
	if r.NumClasses != 1 {
		t.Errorf("e-cube classes = %d, want 1", r.NumClasses)
	}
	if got := r.MaxHops(); got != 6 {
		t.Errorf("hypercube max hops = %d, want 6", got)
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
	// E-cube's fixed bit order is not physically minimal (Table I).
	if r.MinimalPathsUsed() {
		t.Error("e-cube should not be physically minimal")
	}
}

func TestSlimNoCHopMinimal(t *testing.T) {
	s, err := topo.NewSlimNoC(8, 16)
	r := mustRoute(t, s, err, Auto)
	if r.Name != "hop-minimal/slimnoc" {
		t.Errorf("auto algorithm = %s", r.Name)
	}
	if got := r.MaxHops(); got != 2 {
		t.Errorf("slimnoc max hops = %d, want diameter 2", got)
	}
	if r.NumClasses != 2 {
		t.Errorf("slimnoc classes = %d, want 2", r.NumClasses)
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestFlattenedButterflyDOR(t *testing.T) {
	fb, err := topo.NewFlattenedButterfly(8, 8)
	r := mustRoute(t, fb, err, Auto)
	if got := r.MaxHops(); got != 2 {
		t.Errorf("FB max hops = %d, want 2", got)
	}
	if !r.MinimalPathsUsed() {
		t.Error("FB DOR must be physically minimal")
	}
	if err := r.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestAvgHopsOrdering(t *testing.T) {
	// More links -> fewer average hops.
	mesh, _ := topo.NewMesh(8, 8)
	shg, _ := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{4}, SC: []int{2, 5}})
	fb, _ := topo.NewFlattenedButterfly(8, 8)
	rm := mustRoute(t, mesh, nil, Auto)
	rs := mustRoute(t, shg, nil, Auto)
	rf := mustRoute(t, fb, nil, Auto)
	if !(rf.AvgHops() < rs.AvgHops() && rs.AvgHops() < rm.AvgHops()) {
		t.Errorf("avg hops ordering violated: fb %.2f shg %.2f mesh %.2f",
			rf.AvgHops(), rs.AvgHops(), rm.AvgHops())
	}
}

func TestMonotoneRejectsUnaligned(t *testing.T) {
	s, err := topo.NewSlimNoC(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := For(s, MonotoneDOR); err == nil {
		t.Error("monotone DOR on unaligned topology should fail")
	}
}

func TestECubeRejectsNonHypercube(t *testing.T) {
	m, _ := topo.NewMesh(4, 4)
	if _, err := For(m, ECube); err == nil {
		t.Error("e-cube on mesh should fail")
	}
}

// TestQuickSHGDeadlockFree: for random sparse Hamming graphs, the
// default routing is always deadlock-free and physically minimal —
// the paper's central co-design claim.
func TestQuickSHGDeadlockFree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(6)
		cols := 3 + rng.Intn(6)
		var p topo.HammingParams
		for x := 2; x < cols; x++ {
			if rng.Intn(3) == 0 {
				p.SR = append(p.SR, x)
			}
		}
		for x := 2; x < rows; x++ {
			if rng.Intn(3) == 0 {
				p.SC = append(p.SC, x)
			}
		}
		sh, err := topo.NewSparseHamming(rows, cols, p)
		if err != nil {
			return false
		}
		r, err := For(sh, Auto)
		if err != nil {
			return false
		}
		return r.VerifyDeadlockFree() == nil && r.MinimalPathsUsed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickHopsNeverBelowBFS: routed hop counts are never below the
// true shortest-path distance, and monotone DOR is never worse than
// the mesh's Manhattan bound.
func TestQuickHopsNeverBelowBFS(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(5)
		cols := 3 + rng.Intn(5)
		var p topo.HammingParams
		for x := 2; x < cols; x++ {
			if rng.Intn(2) == 0 {
				p.SR = append(p.SR, x)
			}
		}
		sh, err := topo.NewSparseHamming(rows, cols, p)
		if err != nil {
			return false
		}
		r, err := For(sh, Auto)
		if err != nil {
			return false
		}
		d := sh.Graph().APSP()
		for s := 0; s < sh.NumTiles(); s++ {
			for dst := 0; dst < sh.NumTiles(); dst++ {
				h := r.Path(s, dst).Hops()
				if h < d[s][dst] {
					return false
				}
				man := topo.Manhattan(sh.CoordOf(s), sh.CoordOf(dst))
				if h > man {
					return false // monotone never exceeds unit-step count
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTableIUsedColumn(t *testing.T) {
	// The "Minimal Paths Used" column of Table I, evaluated with each
	// topology's co-designed routing (footnote ***).
	cases := []struct {
		name string
		mk   func() (*topo.Topology, error)
		want bool
	}{
		{"mesh", func() (*topo.Topology, error) { return topo.NewMesh(8, 8) }, true},
		{"torus", func() (*topo.Topology, error) { return topo.NewTorus(8, 8) }, false},
		{"folded-torus", func() (*topo.Topology, error) { return topo.NewFoldedTorus(8, 8) }, false},
		{"hypercube", func() (*topo.Topology, error) { return topo.NewHypercube(8, 8) }, false},
		{"fb", func() (*topo.Topology, error) { return topo.NewFlattenedButterfly(8, 8) }, true},
		{"ring", func() (*topo.Topology, error) { return topo.NewRing(8, 8) }, false},
	}
	for _, c := range cases {
		tp, err := c.mk()
		r := mustRoute(t, tp, err, Auto)
		if got := r.MinimalPathsUsed(); got != c.want {
			t.Errorf("%s minimal-paths-used = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAllDefaultsDeadlockFree(t *testing.T) {
	topos := []func() (*topo.Topology, error){
		func() (*topo.Topology, error) { return topo.NewRing(8, 8) },
		func() (*topo.Topology, error) { return topo.NewMesh(8, 8) },
		func() (*topo.Topology, error) { return topo.NewTorus(8, 8) },
		func() (*topo.Topology, error) { return topo.NewFoldedTorus(8, 8) },
		func() (*topo.Topology, error) { return topo.NewHypercube(8, 8) },
		func() (*topo.Topology, error) { return topo.NewSlimNoC(8, 16) },
		func() (*topo.Topology, error) { return topo.NewFlattenedButterfly(8, 16) },
		func() (*topo.Topology, error) {
			return topo.NewSparseHamming(8, 16, topo.HammingParams{SR: []int{3}, SC: []int{2, 5}})
		},
	}
	for _, mk := range topos {
		tp, err := mk()
		r := mustRoute(t, tp, err, Auto)
		if err := r.VerifyDeadlockFree(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
}

func TestFromPaths(t *testing.T) {
	rg, err := topo.NewRing(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := mustRoute(t, rg, nil, Auto)
	n := rg.NumTiles()
	paths := make([][]Path, n)
	for s := 0; s < n; s++ {
		paths[s] = make([]Path, n)
		for d := 0; d < n; d++ {
			paths[s][d] = good.Path(s, d)
		}
	}
	r, err := FromPaths("copy", rg, good.NumClasses, paths)
	if err != nil {
		t.Fatal(err)
	}
	if r.Path(0, 5).Hops() != good.Path(0, 5).Hops() {
		t.Error("copied table routes differently")
	}
	// Malformed inputs must error, not panic.
	if _, err := FromPaths("short", rg, 1, paths[:n-1]); err == nil {
		t.Error("short table accepted")
	}
	ragged := make([][]Path, n)
	copy(ragged, paths)
	ragged[3] = paths[3][:n-1]
	if _, err := FromPaths("ragged", rg, 1, ragged); err == nil {
		t.Error("ragged table accepted")
	}
	if _, err := FromPaths("no-classes", rg, 0, paths); err == nil {
		t.Error("zero classes accepted")
	}
}
