package route

import (
	"fmt"

	"sparsehamming/internal/topo"
)

// buildMonotoneDOR constructs monotone dimension-order routing for
// topologies whose links are all row- or column-aligned (mesh, sparse
// Hamming graph, flattened butterfly): a flit first travels within its
// source row to the destination column, then within that column to the
// destination row. At every hop it moves strictly toward the
// destination coordinate and never overshoots, taking the hop-minimal
// monotone step sequence (computed by dynamic programming over each
// row/column line graph).
//
// Deadlock freedom with a single VC class: within a line, monotone
// paths induce channel dependencies only between same-direction
// channels with strictly advancing coordinates (acyclic), and the
// row-then-column order forbids column-to-row dependencies.
//
// Physical minimality: monotone movement along a line accumulates
// exactly the coordinate distance, so every routed path has physical
// length equal to the Manhattan distance — the paths design
// principle 4 asks the routing to use.
func buildMonotoneDOR(t *topo.Topology) (*Routing, error) {
	if !t.AllLinksAligned() {
		return nil, fmt.Errorf("route: monotone DOR requires aligned links (topology %s)", t.Kind)
	}
	R, C := t.Rows, t.Cols

	// rowNext[r][a][b] = next column when moving monotonically from
	// column a toward column b within row r (-1 if unreachable).
	rowNext := make([][][]int, R)
	for r := 0; r < R; r++ {
		adj := make([][]int, C)
		for c := 0; c < C; c++ {
			for _, nb := range t.Neighbors(t.Index(topo.Coord{Row: r, Col: c})) {
				nc := t.CoordOf(nb)
				if nc.Row == r {
					adj[c] = append(adj[c], nc.Col)
				}
			}
		}
		rowNext[r] = monotoneNext(adj, C)
	}
	colNext := make([][][]int, C)
	for c := 0; c < C; c++ {
		adj := make([][]int, R)
		for r := 0; r < R; r++ {
			for _, nb := range t.Neighbors(t.Index(topo.Coord{Row: r, Col: c})) {
				nc := t.CoordOf(nb)
				if nc.Col == c {
					adj[r] = append(adj[r], nc.Row)
				}
			}
		}
		colNext[c] = monotoneNext(adj, R)
	}

	n := t.NumTiles()
	paths := newPaths(n)
	for s := 0; s < n; s++ {
		sc := t.CoordOf(s)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dc := t.CoordOf(d)
			tiles := []int32{int32(s)}
			// Row phase.
			col := sc.Col
			for col != dc.Col {
				nxt := rowNext[sc.Row][col][dc.Col]
				if nxt < 0 {
					return nil, fmt.Errorf("route: no monotone row path %v->%v", sc, dc)
				}
				col = nxt
				tiles = append(tiles, int32(t.Index(topo.Coord{Row: sc.Row, Col: col})))
			}
			// Column phase.
			row := sc.Row
			for row != dc.Row {
				nxt := colNext[dc.Col][row][dc.Row]
				if nxt < 0 {
					return nil, fmt.Errorf("route: no monotone column path %v->%v", sc, dc)
				}
				row = nxt
				tiles = append(tiles, int32(t.Index(topo.Coord{Row: row, Col: dc.Col})))
			}
			paths[s][d] = Path{Tiles: tiles, Classes: make([]int8, len(tiles)-1)}
		}
	}
	return &Routing{
		Name:       "monotone-dor/" + t.Kind,
		Topo:       t,
		NumClasses: 1,
		paths:      paths,
	}, nil
}

// monotoneNext computes, for a 1-D line with adjacency adj over
// positions [0, n), the hop-minimal monotone next step next[a][b] from
// a toward b. Monotone means every step lands strictly between the
// current position and b (inclusive of b). Ties prefer the longest
// stride (identical physical length, fewer downstream hops through
// congested routers).
func monotoneNext(adj [][]int, n int) [][]int {
	next := make([][]int, n)
	for a := range next {
		next[a] = make([]int, n)
		for b := range next[a] {
			next[a][b] = -1
		}
	}
	// For each destination b, dynamic program over distance to b.
	dist := make([]int, n)
	for b := 0; b < n; b++ {
		for i := range dist {
			dist[i] = 1 << 30
		}
		dist[b] = 0
		// Positions left of b, processed from b-1 down to 0: steps go
		// rightward into (a, b].
		for a := b - 1; a >= 0; a-- {
			for _, v := range adj[a] {
				if v > a && v <= b && dist[v]+1 <= dist[a] {
					// <= with decreasing v? We iterate adjacency in
					// arbitrary order; prefer longer stride on ties.
					if dist[v]+1 < dist[a] || (dist[v]+1 == dist[a] && v > next[a][b]) {
						dist[a] = dist[v] + 1
						next[a][b] = v
					}
				}
			}
		}
		// Positions right of b: steps go leftward into [b, a).
		for a := b + 1; a < n; a++ {
			for _, v := range adj[a] {
				if v < a && v >= b && dist[v]+1 <= dist[a] {
					if dist[v]+1 < dist[a] || (dist[v]+1 == dist[a] && (next[a][b] < 0 || v < next[a][b])) {
						dist[a] = dist[v] + 1
						next[a][b] = v
					}
				}
			}
		}
	}
	return next
}
