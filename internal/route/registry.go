package route

// This file is the routing-algorithm registry: the name-keyed catalog
// behind every "routing" field in campaign job specs, spec files, and
// CLI flags. Construction dispatch, the auto default (the topology's
// co-designed algorithm from the topo registry), and the name list
// for error messages and flag help all live here.

import (
	"fmt"
	"strings"

	"sparsehamming/internal/topo"
)

// Builder constructs a routing for one topology.
type Builder func(*topo.Topology) (*Routing, error)

var (
	routingOrder  []string
	routingByName = map[string]Builder{}
)

// Register adds a routing algorithm under a name. It panics on an
// empty, reserved ("auto"), or duplicate name — registration happens
// at init time, so any of these is a programming error.
func Register(name string, b Builder) {
	if name == "" || name == "auto" {
		panic(fmt.Sprintf("route: Register(%q): reserved name", name))
	}
	if b == nil {
		panic(fmt.Sprintf("route: Register(%q) with nil builder", name))
	}
	if _, dup := routingByName[name]; dup {
		panic(fmt.Sprintf("route: Register(%q) twice", name))
	}
	routingByName[name] = b
	routingOrder = append(routingOrder, name)
}

// Names lists the registered algorithm names in registration order.
func Names() []string {
	return append([]string(nil), routingOrder...)
}

// Registered reports whether name selects a routing: a registered
// algorithm, or the empty string / "auto" for the topology's
// co-designed default.
func Registered(name string) bool {
	if name == "" || name == "auto" {
		return true
	}
	_, ok := routingByName[name]
	return ok
}

// DefaultFor names the co-designed default algorithm for a topology:
// the DefaultRouting of its registered family (design principle 4),
// falling back to monotone dimension-order routing for aligned
// topologies and hop-minimal tables otherwise.
func DefaultFor(t *topo.Topology) string {
	if f, ok := topo.FamilyByName(t.Kind); ok && f.DefaultRouting != "" {
		return f.DefaultRouting
	}
	if t.AllLinksAligned() {
		return "monotone-dor"
	}
	return "hop-minimal"
}

// ForName constructs a routing by algorithm name, verifying path
// consistency. The empty string and "auto" select the topology's
// co-designed default (DefaultFor); unknown names report the
// registered ones.
func ForName(t *topo.Topology, name string) (*Routing, error) {
	if name == "" || name == "auto" {
		name = DefaultFor(t)
	}
	build, ok := routingByName[name]
	if !ok {
		return nil, fmt.Errorf("route: unknown algorithm %q (want auto or one of %s)",
			name, strings.Join(Names(), "|"))
	}
	r, err := build(t)
	if err != nil {
		return nil, err
	}
	if err := r.VerifyConnected(); err != nil {
		return nil, err
	}
	return r, nil
}

// init registers the implemented algorithms in the order the package
// doc lists them.
func init() {
	Register("monotone-dor", buildMonotoneDOR)
	Register("cycle-dateline", buildCycleDateline)
	Register("torus-dor", buildTorusDOR)
	Register("e-cube", buildECube)
	Register("hop-minimal", buildHopMinimal)
}
