package serve_test

// httptest coverage of the campaign service: submit/status/results,
// cancellation of queued and running campaigns, SSE streaming, the
// registry and health endpoints, and the cross-campaign dedup
// guarantee (a concurrent resubmission of a running spec computes
// nothing itself).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/report"
	"sparsehamming/internal/serve"
	"sparsehamming/internal/spec"
)

// costSpecJSON is a small valid cost-mode campaign (two sweeps, three
// unique jobs).
const costSpecJSON = `{
 "name": "svc-test",
 "sweeps": [
  {"label": "one", "mode": "cost", "arch": {"scenario": "a"},
   "topologies": [{"kind": "mesh"}, {"kind": "torus"}]},
  {"label": "two", "mode": "cost", "arch": {"scenario": "a"},
   "topologies": [{"kind": "ring"}]}
 ]
}`

// stubEval is an instant deterministic evaluator for handler tests.
func stubEval(j exp.Job) (*exp.Result, error) {
	return &exp.Result{Topology: j.Topo, RouterRadix: 4, AvgHops: 2.5}, nil
}

// newTestServer wires a serve.Server around the evaluator and returns
// it with its httptest frontend.
func newTestServer(t *testing.T, eval func(exp.Job) (*exp.Result, error), executors int) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(serve.Config{
		Runner:    &exp.Runner{Eval: eval, Workers: 2, Cache: exp.NewCache()},
		Executors: executors,
	})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// submit POSTs a spec body and decodes the campaign resource.
func submit(t *testing.T, ts *httptest.Server, body string) serve.CampaignJSON {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var snap serve.CampaignJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// getJSON decodes a GET response into v, returning the status code.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal waits for the campaign to leave the store as terminal.
func waitTerminal(t *testing.T, srv *serve.Server, id string) serve.CampaignJSON {
	t.Helper()
	c, ok := srv.Store().Get(id)
	if !ok {
		t.Fatalf("campaign %s not in store", id)
	}
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign %s did not finish: %+v", id, c.Snapshot())
	}
	return c.Snapshot()
}

func TestSubmitStatusResults(t *testing.T) {
	srv, ts := newTestServer(t, stubEval, 2)
	snap := submit(t, ts, costSpecJSON)
	if snap.Jobs != 3 || snap.UniqueJobs != 3 || len(snap.Sweeps) != 2 {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	if snap.SpecHash == "" || !strings.Contains(snap.ID, snap.SpecHash[:8]) {
		t.Errorf("id %q does not carry the spec hash %q", snap.ID, snap.SpecHash)
	}

	final := waitTerminal(t, srv, snap.ID)
	if final.Status != serve.StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	if final.Progress.Done != 3 || final.Progress.Computed != 3 {
		t.Errorf("progress = %+v", final.Progress)
	}
	if final.Report == nil || final.Report.Computed != 3 {
		t.Errorf("report = %+v", final.Report)
	}

	// Status endpoint agrees with the store snapshot.
	var got serve.CampaignJSON
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+snap.ID, &got); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if got.Status != serve.StatusDone || got.Progress != final.Progress {
		t.Errorf("status endpoint = %+v", got)
	}

	// JSON results: sweeps align with the spec's expansion.
	var res serve.ResultsJSON
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+snap.ID+"/results", &res); code != http.StatusOK {
		t.Fatalf("results code %d", code)
	}
	if len(res.Sweeps) != 2 || len(res.Sweeps[0].Results) != 2 || len(res.Sweeps[1].Results) != 1 {
		t.Fatalf("results shape = %+v", res)
	}
	if res.Sweeps[0].Results[0].Topology != "mesh" {
		t.Errorf("first result = %+v", res.Sweeps[0].Results[0])
	}

	// CSV results are byte-identical to the local report rendering of
	// the same spec and results — the shrun code path.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + snap.ID + "/results?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	gotCSV, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sp, err := spec.Parse([]byte(costSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := sp.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	var all []*exp.Result
	for _, sw := range res.Sweeps {
		all = append(all, sw.Results...)
	}
	var want strings.Builder
	report.WriteCSV(&want, sp, groups, all)
	if string(gotCSV) != want.String() {
		t.Errorf("CSV mismatch:\n--- service\n%s--- local\n%s", gotCSV, want.String())
	}

	// The list endpoint includes the campaign.
	var list struct {
		Campaigns []serve.CampaignJSON `json:"campaigns"`
	}
	if code := getJSON(t, ts.URL+"/v1/campaigns", &list); code != http.StatusOK || len(list.Campaigns) != 1 {
		t.Errorf("list = %+v (code %d)", list, code)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, stubEval, 1)
	cases := []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{"name": "x", "sweeps": []}`, http.StatusUnprocessableEntity},
		{`{"name": "x", "sweeps": [{"arch": {"scenario": "a"}, "topologies": [{"kind": "warp-gate"}]}]}`, http.StatusUnprocessableEntity},
		{`{"name": "x", "typo_field": 1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("body %.30q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestResultsBeforeDoneConflicts(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	eval := func(j exp.Job) (*exp.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return stubEval(j)
	}
	srv, ts := newTestServer(t, eval, 1)
	snap := submit(t, ts, costSpecJSON)
	<-started
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+snap.ID+"/results", nil); code != http.StatusConflict {
		t.Errorf("results while running: code %d, want 409", code)
	}
	close(release)
	waitTerminal(t, srv, snap.ID)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	eval := func(j exp.Job) (*exp.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return stubEval(j)
	}
	// One executor: the second submission stays queued behind the
	// first.
	srv, ts := newTestServer(t, eval, 1)
	running := submit(t, ts, costSpecJSON)
	<-started
	queued := submit(t, ts, `{"name": "q", "sweeps": [{"mode": "cost",
		"arch": {"scenario": "b"}, "topologies": [{"kind": "mesh"}]}]}`)

	// Cancel the queued campaign: terminal immediately, never runs.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: code %d", resp.StatusCode)
	}
	if snap := waitTerminal(t, srv, queued.ID); snap.Status != serve.StatusCanceled {
		t.Errorf("queued campaign status = %s, want canceled", snap.Status)
	}
	// Terminal but never ran: the results endpoint must refuse
	// cleanly, not panic on the missing result set.
	for _, q := range []string{"", "?format=csv"} {
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+queued.ID+"/results"+q, nil); code != http.StatusConflict {
			t.Errorf("results%s of never-run campaign: code %d, want 409", q, code)
		}
	}

	// Cancel the running campaign, then release its in-flight job.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	if snap := waitTerminal(t, srv, running.ID); snap.Status != serve.StatusCanceled {
		t.Errorf("running campaign status = %s, want canceled", snap.Status)
	}

	// Canceling a terminal campaign conflicts.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal: code %d, want 409", resp.StatusCode)
	}
}

// TestConcurrentSameSpecSharesCache pins the service's core promise:
// two concurrent submissions of the same spec perform the simulation
// work once. The second campaign finishes with zero newly-computed
// jobs — every job is a cache hit or joins the first campaign's
// in-flight evaluation.
func TestConcurrentSameSpecSharesCache(t *testing.T) {
	var evals atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	eval := func(j exp.Job) (*exp.Result, error) {
		evals.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return stubEval(j)
	}
	srv, ts := newTestServer(t, eval, 2)

	first := submit(t, ts, costSpecJSON)
	<-started // the first campaign owns every in-flight job now
	second := submit(t, ts, costSpecJSON)
	if second.SpecHash != first.SpecHash {
		t.Fatalf("spec hashes differ: %s vs %s", first.SpecHash, second.SpecHash)
	}
	close(release)

	a := waitTerminal(t, srv, first.ID)
	b := waitTerminal(t, srv, second.ID)
	if a.Status != serve.StatusDone || b.Status != serve.StatusDone {
		t.Fatalf("statuses: %s / %s", a.Status, b.Status)
	}
	if got := evals.Load(); got != 3 {
		t.Errorf("evaluations = %d, want 3 (the spec's unique jobs, once)", got)
	}
	if b.Progress.Computed != 0 {
		t.Errorf("second campaign computed %d jobs, want 0 (progress %+v)", b.Progress.Computed, b.Progress)
	}
	if b.Progress.Shared+b.Progress.CacheHits != 3 {
		t.Errorf("second campaign shared+cached = %d, want 3 (progress %+v)", b.Progress.Shared+b.Progress.CacheHits, b.Progress)
	}

	// Both campaigns serve identical result bytes.
	csv := func(id string) string {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/results?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if csv(first.ID) != csv(second.ID) {
		t.Error("campaigns of the same spec served different CSV bytes")
	}
}

// TestConcurrentSameSpecSharesCacheBatched is the grouped-dispatch
// variant of TestConcurrentSameSpecSharesCache: the runner batches
// the spec's jobs into one EvalGroup dispatch, a second concurrent
// submission of the same spec still computes zero jobs itself, and
// both campaigns serve identical results.
func TestConcurrentSameSpecSharesCacheBatched(t *testing.T) {
	var dispatches atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := &exp.Runner{
		Workers: 2,
		Cache:   exp.NewCache(),
		Eval:    func(j exp.Job) (*exp.Result, error) { return stubEval(j) },
		// Every cost job of the spec lands in one group.
		GroupKey: func(j exp.Job) (string, bool) { return "all", true },
		EvalGroup: func(jobs []exp.Job) ([]*exp.Result, error) {
			dispatches.Add(1)
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			out := make([]*exp.Result, len(jobs))
			for i, j := range jobs {
				res, err := stubEval(j)
				if err != nil {
					return nil, err
				}
				out[i] = res
			}
			return out, nil
		},
	}
	srv := serve.New(serve.Config{Runner: runner, Executors: 2})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	first := submit(t, ts, costSpecJSON)
	<-started // the first campaign's group dispatch is in flight
	second := submit(t, ts, costSpecJSON)
	close(release)

	a := waitTerminal(t, srv, first.ID)
	b := waitTerminal(t, srv, second.ID)
	if a.Status != serve.StatusDone || b.Status != serve.StatusDone {
		t.Fatalf("statuses: %s / %s", a.Status, b.Status)
	}
	if got := dispatches.Load(); got != 1 {
		t.Errorf("group dispatches = %d, want 1 (the spec's jobs, once)", got)
	}
	if b.Progress.Computed != 0 {
		t.Errorf("second campaign computed %d jobs, want 0 (progress %+v)", b.Progress.Computed, b.Progress)
	}
	if b.Progress.Shared+b.Progress.CacheHits != 3 {
		t.Errorf("second campaign shared+cached = %d, want 3 (progress %+v)", b.Progress.Shared+b.Progress.CacheHits, b.Progress)
	}

	csv := func(id string) string {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/results?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if csv(first.ID) != csv(second.ID) {
		t.Error("campaigns of the same spec served different CSV bytes")
	}
}

func TestEventsStream(t *testing.T) {
	srv, ts := newTestServer(t, stubEval, 1)
	snap := submit(t, ts, costSpecJSON)
	waitTerminal(t, srv, snap.ID)

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // the stream closes after "done"
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: status") {
		t.Errorf("missing status event:\n%s", text)
	}
	if !strings.Contains(text, "event: done") {
		t.Errorf("missing done event:\n%s", text)
	}
	if !strings.Contains(text, `"status":"done"`) {
		t.Errorf("done event lacks terminal snapshot:\n%s", text)
	}
}

func TestRegistryAndHealth(t *testing.T) {
	_, ts := newTestServer(t, stubEval, 1)
	var reg struct {
		Topologies []struct {
			Kind string `json:"kind"`
		} `json:"topologies"`
		Routings  []string `json:"routings"`
		Patterns  []string `json:"patterns"`
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
	}
	if code := getJSON(t, ts.URL+"/v1/registry", &reg); code != http.StatusOK {
		t.Fatalf("registry code %d", code)
	}
	kinds := map[string]bool{}
	for _, tp := range reg.Topologies {
		kinds[tp.Kind] = true
	}
	for _, want := range []string{"mesh", "sparse-hamming", "ruche"} {
		if !kinds[want] {
			t.Errorf("registry missing topology %q", want)
		}
	}
	if len(reg.Routings) == 0 || len(reg.Patterns) == 0 || len(reg.Scenarios) < 5 {
		t.Errorf("registry incomplete: %+v", reg)
	}

	var health struct {
		Status    string `json:"status"`
		Campaigns int    `json:"campaigns"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %+v (code %d)", health, code)
	}

	if code := getJSON(t, ts.URL+"/v1/campaigns/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: code %d, want 404", code)
	}
}

// TestRouteSummaries keeps the route table self-describing (the API
// doc generator and coverage test rely on non-empty summaries).
func TestRouteSummaries(t *testing.T) {
	srv, _ := newTestServer(t, stubEval, 1)
	for _, rt := range srv.Routes() {
		if rt.Method == "" || rt.Pattern == "" || rt.Summary == "" {
			t.Errorf("route %+v is missing metadata", rt)
		}
		if !strings.HasPrefix(rt.Pattern, "/") {
			t.Errorf("route pattern %q is not absolute", rt.Pattern)
		}
	}
	if fmt.Sprint(len(srv.Routes())) == "0" {
		t.Fatal("no routes registered")
	}
}
