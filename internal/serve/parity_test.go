package serve_test

// The acceptance gate of the campaign service: submitting the
// checked-in Figure 6 spec over HTTP yields results bit-identical to
// cmd/shrun on the same spec — same cache keys (a follow-up local
// run against the service's cache computes nothing) and same CSV
// bytes. The CI smoke job repeats this check binary-to-binary over a
// real socket.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/report"
	"sparsehamming/internal/serve"
	"sparsehamming/internal/spec"
)

func TestFigure6ServiceMatchesShrun(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 6 campaign in -short mode")
	}
	specBytes, err := os.ReadFile("../../examples/specs/figure6-quick.json")
	if err != nil {
		t.Fatal(err)
	}

	// The service side: a real toolchain runner with a shared cache.
	cache := exp.NewCache()
	srv := serve.New(serve.Config{Runner: noc.NewRunner(0, cache), Executors: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(string(specBytes)))
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.CampaignJSON
	mustDecode(t, resp, http.StatusAccepted, &snap)
	c, ok := srv.Store().Get(snap.ID)
	if !ok {
		t.Fatal("campaign missing from store")
	}
	select {
	case <-c.Done():
	case <-time.After(20 * time.Minute):
		t.Fatalf("campaign did not finish: %+v", c.Snapshot())
	}
	final := c.Snapshot()
	if final.Status != serve.StatusDone {
		t.Fatalf("campaign %s: %s", final.Status, final.Error)
	}

	resp, err = http.Get(ts.URL + "/v1/campaigns/" + snap.ID + "/results?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	serviceCSV, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The shrun side: same spec, fresh runner, same cache. Identical
	// cache keys mean zero new simulations here — that equality is
	// the point, so assert it.
	sp, err := spec.Parse(specBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	groups, err := sp.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	var all []exp.Job
	for _, g := range groups {
		all = append(all, g...)
	}
	results, rep, err := noc.NewRunner(0, cache).Run(all)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 0 {
		t.Errorf("local shrun run computed %d jobs against the service's cache, want 0 (cache keys differ)", rep.Computed)
	}
	var localCSV strings.Builder
	report.WriteCSV(&localCSV, sp, groups, results)
	if string(serviceCSV) != localCSV.String() {
		t.Errorf("service CSV differs from shrun CSV:\n--- service\n%s--- shrun\n%s", serviceCSV, localCSV.String())
	}
}

// TestTracesServiceMatchesShrun is the trace-replay twin of the
// Figure 6 parity gate: the checked-in traces-app spec (three
// application-shaped traces over three topology families) submitted
// over HTTP must produce the same CSV bytes as a local shrun-style
// run, with the follow-up local run answering entirely from the
// service's cache. The campaign is small enough to run in -short.
func TestTracesServiceMatchesShrun(t *testing.T) {
	// Trace paths inside the spec resolve against the working
	// directory, exactly as they do under shrun from the repo root.
	t.Chdir("../..")
	specBytes, err := os.ReadFile("examples/specs/traces-app.json")
	if err != nil {
		t.Fatal(err)
	}

	cache := exp.NewCache()
	srv := serve.New(serve.Config{Runner: noc.NewRunner(0, cache), Executors: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(string(specBytes)))
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.CampaignJSON
	mustDecode(t, resp, http.StatusAccepted, &snap)
	c, ok := srv.Store().Get(snap.ID)
	if !ok {
		t.Fatal("campaign missing from store")
	}
	select {
	case <-c.Done():
	case <-time.After(5 * time.Minute):
		t.Fatalf("campaign did not finish: %+v", c.Snapshot())
	}
	final := c.Snapshot()
	if final.Status != serve.StatusDone {
		t.Fatalf("campaign %s: %s", final.Status, final.Error)
	}

	resp, err = http.Get(ts.URL + "/v1/campaigns/" + snap.ID + "/results?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	serviceCSV, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	sp, err := spec.Parse(specBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	groups, err := sp.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	var all []exp.Job
	for _, g := range groups {
		all = append(all, g...)
	}
	results, rep, err := noc.NewRunner(0, cache).Run(all)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != 0 {
		t.Errorf("local run computed %d jobs against the service's cache, want 0 (cache keys differ)", rep.Computed)
	}
	var localCSV strings.Builder
	report.WriteCSV(&localCSV, sp, groups, results)
	if string(serviceCSV) != localCSV.String() {
		t.Errorf("service CSV differs from shrun CSV:\n--- service\n%s--- shrun\n%s", serviceCSV, localCSV.String())
	}
}

// mustDecode asserts the response status and decodes its JSON body.
func mustDecode(t *testing.T, resp *http.Response, want int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: %s", resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
