package serve_test

// POST /v1/frontier coverage: a real two-stage exploration over the
// noc toolchain runner, and the caching guarantee that makes the
// endpoint cheap to re-query.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/serve"
)

// newFrontierServer wires the service around the real prediction
// toolchain with a shared in-memory cache — the production shape.
func newFrontierServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{Runner: noc.NewRunner(2, exp.NewCache())})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postFrontier POSTs a frontier request and decodes the response.
func postFrontier(t *testing.T, ts *httptest.Server, body string) serve.FrontierJSON {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/frontier", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("frontier: %s: %s", resp.Status, b)
	}
	var out serve.FrontierJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFrontierRepeatAnswersFromCache is the endpoint's acceptance
// pin: an identical repeated query — both surrogate scores and band
// simulations — answers entirely from the shared cache, computing
// zero new jobs.
func TestFrontierRepeatAnswersFromCache(t *testing.T) {
	ts := newFrontierServer(t)
	const req = `{"arch": {"scenario": "a", "rows": 4, "cols": 4}, "simulate": true}`

	first := postFrontier(t, ts, req)
	if first.Scenario != "a" || first.Rows != 4 || first.Cols != 4 {
		t.Fatalf("grid = %s %dx%d", first.Scenario, first.Rows, first.Cols)
	}
	if first.Fidelity.Configs != 16 {
		t.Fatalf("configs = %d, want 16", first.Fidelity.Configs)
	}
	if len(first.Band) == 0 || first.Fidelity.Simulated != len(first.Band) {
		t.Fatalf("band %d, simulated %d", len(first.Band), first.Fidelity.Simulated)
	}
	if first.Report.Computed == 0 {
		t.Fatal("cold query computed nothing")
	}
	for _, p := range first.Band {
		if !p.InBand || !p.Simulated {
			t.Fatalf("band point %s: in_band=%v simulated=%v", p.Params.String(), p.InBand, p.Simulated)
		}
	}

	again := postFrontier(t, ts, req)
	if again.Report.Computed != 0 {
		t.Errorf("repeat computed %d jobs, want 0 (all cache hits)", again.Report.Computed)
	}
	if again.Report.CacheHits != again.Report.Jobs {
		t.Errorf("repeat: %d cache hits over %d jobs", again.Report.CacheHits, again.Report.Jobs)
	}
	if len(again.Band) != len(first.Band) {
		t.Errorf("repeat band %d points, first %d", len(again.Band), len(first.Band))
	}
}

// TestFrontierSurrogateOnly: without simulate, the endpoint returns
// the surrogate band with no simulated values.
func TestFrontierSurrogateOnly(t *testing.T) {
	ts := newFrontierServer(t)
	out := postFrontier(t, ts, `{"arch": {"scenario": "a", "rows": 4, "cols": 4}, "slack_pct": 0}`)
	if out.SlackPct != 0 {
		t.Errorf("slack = %g, want 0", out.SlackPct)
	}
	if len(out.Band) == 0 {
		t.Fatal("empty band")
	}
	frontier := 0
	for _, p := range out.Band {
		if p.Simulated {
			t.Fatalf("surrogate-only band point %s is marked simulated", p.Params.String())
		}
		if p.SurrogateFrontier {
			frontier++
		}
	}
	// Slack 0 admits frontier points plus exact score ties (symmetric
	// configurations), never worse points.
	if frontier == 0 {
		t.Error("no surrogate-frontier point in the slack-0 band")
	}
	if out.Fidelity.Band != len(out.Band) {
		t.Errorf("fidelity band %d, response band %d", out.Fidelity.Band, len(out.Band))
	}
}

// TestFrontierRejects covers the request-validation error paths.
func TestFrontierRejects(t *testing.T) {
	ts := newFrontierServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{"arch": `, http.StatusBadRequest},
		{"unknown field", `{"arch": {"scenario": "a"}, "bogus": 1}`, http.StatusBadRequest},
		{"trailing data", `{"arch": {"scenario": "a"}} {}`, http.StatusBadRequest},
		{"unknown scenario", `{"arch": {"scenario": "z", "rows": 4, "cols": 4}}`, http.StatusUnprocessableEntity},
		{"slack out of range", `{"arch": {"scenario": "a", "rows": 4, "cols": 4}, "slack_pct": 100}`, http.StatusUnprocessableEntity},
		{"space over cap", `{"arch": {"scenario": "a", "rows": 4, "cols": 4}, "max_configs": 2}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/frontier", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
}
