package serve

// The registry endpoint: a machine-readable catalog of everything a
// campaign spec can name, straight from the topology/routing/pattern
// registries — what a client needs to compose a valid spec without
// reading the source.

import (
	"net/http"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/spec"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
	"sparsehamming/internal/trace"
)

// topologyJSON describes one registered topology family.
type topologyJSON struct {
	Kind            string `json:"kind"`
	Label           string `json:"label"`
	DefaultRouting  string `json:"default_routing,omitempty"`
	Parameterized   bool   `json:"parameterized"`
	GridConstrained bool   `json:"grid_constrained"`
}

// scenarioJSON describes one architecture preset.
type scenarioJSON struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
}

// registryJSON is the GET /v1/registry response body.
type registryJSON struct {
	Topologies []topologyJSON `json:"topologies"`
	Routings   []string       `json:"routings"`
	Patterns   []string       `json:"patterns"`
	// PatternSchemes lists the registered parameterized pattern schemes
	// ("trace" resolves "trace:<path>" names to replay patterns).
	PatternSchemes []string `json:"pattern_schemes"`
	// TraceGenerators lists the application-shaped workload generators
	// shgen -gen accepts for producing replayable trace files.
	TraceGenerators []string       `json:"trace_generators"`
	Scenarios       []scenarioJSON `json:"scenarios"`
	Modes           []string       `json:"modes"`
	Qualities       []string       `json:"qualities"`
}

// handleRegistry implements GET /v1/registry.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	out := registryJSON{
		Routings:        route.Names(),
		Patterns:        sim.PatternNames(),
		PatternSchemes:  sim.PatternSchemeNames(),
		TraceGenerators: trace.GeneratorNames(),
		Modes:           exp.ModeNames(),
		Qualities:       spec.QualityNames(),
	}
	for _, kind := range topo.Names() {
		f, _ := topo.FamilyByName(kind)
		out.Topologies = append(out.Topologies, topologyJSON{
			Kind:            kind,
			Label:           f.Label(),
			DefaultRouting:  f.DefaultRouting,
			Parameterized:   f.Parameterized,
			GridConstrained: f.GridConstraint != nil,
		})
	}
	for _, name := range tech.PresetNames() {
		if arch := tech.ArchByName(name); arch != nil {
			out.Scenarios = append(out.Scenarios, scenarioJSON{Name: name, Rows: arch.Rows, Cols: arch.Cols})
		}
	}
	writeJSON(w, http.StatusOK, out)
}
