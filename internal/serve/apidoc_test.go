package serve_test

// The API documentation contract: docs/API.md must document every
// route the service registers (and document nothing that does not
// exist). The doc uses one "### `METHOD /pattern`" heading per
// endpoint; this test walks the route table against those headings
// in both directions.

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/serve"
)

func TestAPIDocCoversEveryRoute(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	text := string(doc)

	// EnablePprof so the optional /debug/pprof/* routes are registered
	// and the doc contract covers them too.
	srv := serve.New(serve.Config{Runner: &exp.Runner{Eval: stubEval}, EnablePprof: true})
	defer srv.Close()

	registered := map[string]bool{}
	for _, rt := range srv.Routes() {
		heading := fmt.Sprintf("### `%s %s`", rt.Method, rt.Pattern)
		registered[rt.Method+" "+rt.Pattern] = true
		if !strings.Contains(text, heading) {
			t.Errorf("docs/API.md does not document %s %s (want a %q heading)",
				rt.Method, rt.Pattern, heading)
		}
	}

	// The reverse direction: headings must not outlive their routes.
	re := regexp.MustCompile("(?m)^### `([A-Z]+) ([^`]+)`")
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		if !registered[m[1]+" "+m[2]] {
			t.Errorf("docs/API.md documents %s %s, which the service does not register", m[1], m[2])
		}
	}
}
