package serve

// POST /v1/frontier: the surrogate-guided design-space exploration as
// a service call. The handler runs both stages of dse.ExploreSurrogate
// synchronously on the server's shared runner, so every surrogate
// score and every band simulation is an ordinary cached campaign job —
// a repeated query (or one overlapping a prior campaign's jobs)
// answers entirely from the cache with zero newly-simulated jobs,
// which TestFrontierRepeatAnswersFromCache pins.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/spec"
)

// FrontierRequest is the POST /v1/frontier request body.
type FrontierRequest struct {
	// Arch selects the architecture whose sparse Hamming space to
	// explore (same shape as a campaign sweep's arch).
	Arch spec.ArchSpec `json:"arch"`

	// SlackPct is the Pareto-band slack margin in percent; absent
	// means dse.DefaultSlackPct, 0 means frontier-only.
	SlackPct *float64 `json:"slack_pct,omitempty"`

	// MaxConfigs caps the enumeration (0 means 65536, the declarative
	// default); grids whose space exceeds it are rejected.
	MaxConfigs int `json:"max_configs,omitempty"`

	// Quality and Seed parameterize the band simulations ("" means
	// quick, 0 derives deterministic per-job seeds). Replicates is the
	// number of simulation seeds averaged per simulated configuration
	// (0 or 1 means one; capped at 10 — each replicate multiplies the
	// band's simulation work).
	Quality    string `json:"quality,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Replicates int    `json:"replicates,omitempty"`

	// Simulate runs stage 2 (cycle-accurate simulation of the band);
	// Validate additionally simulates every configuration and fills
	// the fidelity report's frontier recall. Both off returns the
	// surrogate-only exploration.
	Simulate bool `json:"simulate,omitempty"`
	Validate bool `json:"validate,omitempty"`
}

// FrontierJSON is the POST /v1/frontier response body. Band holds the
// surrogate-selected Pareto band sorted by area overhead (the full
// enumeration is deliberately not returned — it can be tens of
// thousands of points); the frontier is the subset with
// surrogate_frontier (or, after simulation, sim_frontier) set.
type FrontierJSON struct {
	Scenario   string  `json:"scenario"`
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	SlackPct   float64 `json:"slack_pct"`
	Replicates int     `json:"replicates"`

	Band     []dse.SurrogatePoint `json:"band"`
	Fidelity dse.Fidelity         `json:"fidelity"`
	Report   ReportJSON           `json:"report"`
}

// handleFrontier implements POST /v1/frontier.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	if s.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxSpecBytes))
	dec.DisallowUnknownFields()
	var req FrontierRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request object")
		return
	}
	arch, err := spec.ArchForJob(req.Arch.Job())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if req.Replicates < 0 || req.Replicates > 10 {
		writeError(w, http.StatusUnprocessableEntity, "replicates %d outside [0, 10]", req.Replicates)
		return
	}
	opts := dse.Options{
		MaxConfigs: req.MaxConfigs,
		SlackPct:   dse.DefaultSlackPct,
		Quality:    req.Quality,
		Seed:       req.Seed,
		Replicates: req.Replicates,
		Simulate:   req.Simulate,
		Validate:   req.Validate,
	}
	if opts.MaxConfigs <= 0 {
		opts.MaxConfigs = 1 << 16
	}
	if req.SlackPct != nil {
		opts.SlackPct = *req.SlackPct
	}
	ex, err := dse.ExploreSurrogate(arch, opts, s.cfg.Runner)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.log.Info("frontier explored",
		"scenario", ex.Scenario, "grid", fmt.Sprintf("%dx%d", ex.Rows, ex.Cols),
		"configs", ex.Fidelity.Configs, "band", ex.Fidelity.Band,
		"computed", ex.Report.Computed, "cached", ex.Report.CacheHits,
		"wall", ex.Report.Wall.Round(time.Millisecond))
	writeJSON(w, http.StatusOK, FrontierJSON{
		Scenario:   ex.Scenario,
		Rows:       ex.Rows,
		Cols:       ex.Cols,
		SlackPct:   ex.SlackPct,
		Replicates: ex.Replicates,
		Band:       ex.Band(),
		Fidelity:   ex.Fidelity,
		Report: ReportJSON{
			Jobs: ex.Report.Jobs, Unique: ex.Report.Unique,
			CacheHits: ex.Report.CacheHits, Shared: ex.Report.Shared,
			Computed: ex.Report.Computed, Failed: ex.Report.Failed,
			WallMs:    float64(ex.Report.Wall) / float64(time.Millisecond),
			ComputeMs: float64(ex.Report.Compute) / float64(time.Millisecond),
			Summary:   ex.Report.String(),
		},
	})
}
