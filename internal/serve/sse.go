package serve

// Server-Sent Events streaming of campaign progress, built on the
// per-campaign observer fed by exp.Runner's progress events.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"sparsehamming/internal/exp"
)

// eventJSON is the data payload of one SSE "progress" event.
type eventJSON struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Job       string  `json:"job"`
	Key       string  `json:"key"`
	Cached    bool    `json:"cached,omitempty"`
	Shared    bool    `json:"shared,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
}

// sseWrite emits one named SSE event with a JSON data payload.
func sseWrite(w http.ResponseWriter, flusher http.Flusher, event string, v any) {
	data, _ := json.Marshal(v)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	flusher.Flush()
}

// handleEvents implements GET /v1/campaigns/{id}/events: a
// text/event-stream of "status" (initial snapshot), "progress" (one
// per completed unique job), and "done" (terminal snapshot, then the
// stream closes). A campaign that is already terminal yields the
// snapshot events immediately. Slow consumers miss progress events
// rather than stalling the simulation (the per-subscriber buffer is
// generous, but the stream's contract is progress, not a journal —
// fetch /results for the full record).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Subscribe before snapshotting so no event between the snapshot
	// and the subscription is lost.
	events, unsubscribe := c.subscribe(4096)
	defer unsubscribe()
	s.sseSubs.Inc()
	defer s.sseSubs.Dec()
	sseWrite(w, flusher, "status", c.Snapshot())

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			flusher.Flush()
		case ev := <-events:
			sseWrite(w, flusher, "progress", progressEventJSON(ev))
		case <-c.Done():
			// Drain events already buffered before the terminal
			// state, then close with the final snapshot.
			for {
				select {
				case ev := <-events:
					sseWrite(w, flusher, "progress", progressEventJSON(ev))
					continue
				default:
				}
				break
			}
			sseWrite(w, flusher, "done", c.Snapshot())
			return
		}
	}
}

// progressEventJSON converts a runner progress event to its wire
// form.
func progressEventJSON(ev exp.ProgressEvent) eventJSON {
	out := eventJSON{
		Done: ev.Done, Total: ev.Total,
		Job: ev.Job.String(), Key: ev.Job.Key(),
		Cached: ev.Cached, Shared: ev.Shared,
		ElapsedMs: float64(ev.Elapsed) / float64(time.Millisecond),
	}
	if ev.Err != nil {
		out.Error = ev.Err.Error()
	}
	return out
}
