package serve

// HTTP-layer observability: the GET /metrics exposition endpoint, the
// optional net/http/pprof mount, per-route request instrumentation,
// and the service gauges (campaign states, queue depth, SSE
// subscribers, uptime). All series live on the hub's registry, so a
// server sharing its hub with noc.NewObservedRunner exposes the
// simulator, runner, cache, and HTTP tiers from one scrape.

import (
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"

	"sparsehamming/internal/obs"
)

// registerMetrics installs the server's collectors on the hub's
// registry and keeps handles to the per-request instruments the
// middleware updates.
func (s *Server) registerMetrics(m *obs.Registry) {
	s.httpReqs = m.CounterVec("sh_http_requests_total",
		"HTTP requests served, by route and status code.",
		"route", "code")
	s.httpLat = m.HistogramVec("sh_http_request_seconds",
		"HTTP request duration by route (SSE streams count their full lifetime).",
		obs.DefBuckets, "route")
	s.sseSubs = m.Gauge("sh_sse_subscribers",
		"Event-stream subscribers currently connected.")
	m.GaugeFunc("sh_campaign_queue_depth",
		"Campaigns waiting in the submission queue.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("sh_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	m.Func("sh_campaigns",
		"Campaigns in the store, by lifecycle status.",
		obs.KindGauge, []string{"status"}, func() []obs.Sample {
			counts := map[Status]int{}
			for _, c := range s.store.All() {
				counts[c.Snapshot().Status]++
			}
			states := []Status{StatusQueued, StatusRunning, StatusDone,
				StatusFailed, StatusCanceled}
			out := make([]obs.Sample, 0, len(states))
			for _, st := range states {
				out = append(out, obs.Sample{
					Labels: []string{string(st)},
					Value:  float64(counts[st]),
				})
			}
			return out
		})
}

// instrument wraps a route handler to record the request count (by
// final status code) and latency under the route's method+pattern —
// bounded-cardinality labels, never raw URLs.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		s.httpReqs.With(route, strconv.Itoa(code)).Inc()
		s.httpLat.With(route).Observe(time.Since(start).Seconds())
	}
}

// statusRecorder captures the response status code for the request
// counter. It forwards Flush so the SSE handler's streaming still
// works through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the first status code written.
func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write counts an implicit 200 when the handler never set a status.
func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it streams.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics implements GET /metrics: the hub registry in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Obs.Metrics.WritePrometheus(w)
}

// pprofRoutes returns the net/http/pprof endpoints mounted when
// Config.EnablePprof is set. shrun -server -cpuprofile cannot profile
// the remote service's CPU, so /debug/pprof/profile on the server is
// the supported way to profile campaigns executing in shserved.
func pprofRoutes() []Route {
	return []Route{
		{"GET", "/debug/pprof/", "pprof index and named profiles (heap, goroutine, block, ...)", pprof.Index},
		{"GET", "/debug/pprof/cmdline", "command line of the server process", pprof.Cmdline},
		{"GET", "/debug/pprof/profile", "CPU profile over ?seconds=N (default 30)", pprof.Profile},
		{"GET", "/debug/pprof/symbol", "resolve program counters to symbol names", pprof.Symbol},
		{"GET", "/debug/pprof/trace", "execution trace over ?seconds=N", pprof.Trace},
	}
}

// vcsRevision digs the VCS commit out of the build info; empty when
// the binary was built outside a checkout (e.g. go test).
func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}
