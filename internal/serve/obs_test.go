package serve_test

// Observability coverage: the /metrics exposition (parseable, and
// monotonic across campaigns), the upgraded /healthz fields, the
// ?debug=trace results field fed by a shared hub, and the optional
// pprof mount.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/serve"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one series' value from exposition text.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition", series)
	return 0
}

// expositionLine is the shape every sample line must have.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$`)

func TestMetricsEndpointParsesAndCountsMonotonically(t *testing.T) {
	srv, ts := newTestServer(t, stubEval, 2)

	text := scrape(t, ts)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"sh_http_requests_total", "sh_http_request_seconds",
		"sh_sse_subscribers", "sh_campaign_queue_depth",
		"sh_uptime_seconds", "sh_campaigns",
	} {
		if !strings.Contains(text, "# TYPE "+want+" ") {
			t.Errorf("exposition missing family %s", want)
		}
	}

	// Two campaigns, one scrape after each: the done-campaign gauge
	// tracks the store and the submit counter never goes down.
	snap := submit(t, ts, costSpecJSON)
	waitTerminal(t, srv, snap.ID)
	text = scrape(t, ts)
	submits1 := metricValue(t, text,
		`sh_http_requests_total{route="POST /v1/campaigns",code="202"}`)
	done1 := metricValue(t, text, `sh_campaigns{status="done"}`)
	if submits1 != 1 || done1 != 1 {
		t.Fatalf("after one campaign: submits=%v done=%v, want 1 and 1", submits1, done1)
	}

	snap = submit(t, ts, strings.Replace(costSpecJSON, "svc-test", "svc-test-2", 1))
	waitTerminal(t, srv, snap.ID)
	text = scrape(t, ts)
	submits2 := metricValue(t, text,
		`sh_http_requests_total{route="POST /v1/campaigns",code="202"}`)
	done2 := metricValue(t, text, `sh_campaigns{status="done"}`)
	if submits2 != 2 || done2 != 2 {
		t.Fatalf("after two campaigns: submits=%v done=%v, want 2 and 2", submits2, done2)
	}
	if submits2 < submits1 {
		t.Errorf("request counter went backwards: %v -> %v", submits1, submits2)
	}
}

func TestHealthzBuildAndRunnerFields(t *testing.T) {
	_, ts := newTestServer(t, stubEval, 1)
	var h map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	gv, _ := h["go_version"].(string)
	if !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version %q does not look like a Go version", gv)
	}
	for _, key := range []string{"gomaxprocs", "workers"} {
		v, ok := h[key].(float64)
		if !ok || v < 1 {
			t.Errorf("healthz %s = %v, want >= 1", key, h[key])
		}
	}
	for _, key := range []string{"uptime_sec", "evals_in_flight", "waiting_jobs"} {
		if _, ok := h[key]; !ok {
			t.Errorf("healthz missing %s", key)
		}
	}
}

// TestResultsDebugTrace drives the full stack: a hub shared between
// the observed toolchain runner and the server, so a finished
// campaign's results can return per-job execution traces.
func TestResultsDebugTrace(t *testing.T) {
	hub := obs.NewHub()
	srv := serve.New(serve.Config{
		Runner: noc.NewObservedRunner(2, exp.NewCache(), hub),
		Obs:    hub,
	})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	snap := submit(t, ts, costSpecJSON)
	waitTerminal(t, srv, snap.ID)

	var out serve.ResultsJSON
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+snap.ID+"/results?debug=trace", &out); code != http.StatusOK {
		t.Fatalf("results?debug=trace: %d", code)
	}
	for si, sw := range out.Sweeps {
		if len(sw.Traces) != len(sw.Jobs) {
			t.Fatalf("sweep %d: %d traces for %d jobs", si, len(sw.Traces), len(sw.Jobs))
		}
		for ji, tr := range sw.Traces {
			if tr == nil {
				t.Errorf("sweep %d job %d: nil trace for a freshly computed job", si, ji)
				continue
			}
			if tr.Name != "job" || tr.Find("cost") == nil {
				t.Errorf("sweep %d job %d: unexpected trace shape: %q", si, ji, tr.Name)
			}
		}
	}

	// Without the flag the field stays absent.
	var plain serve.ResultsJSON
	getJSON(t, ts.URL+"/v1/campaigns/"+snap.ID+"/results", &plain)
	for si, sw := range plain.Sweeps {
		if sw.Traces != nil {
			t.Errorf("sweep %d: traces present without ?debug=trace", si)
		}
	}
}

func TestPprofMountIsOptIn(t *testing.T) {
	srv := serve.New(serve.Config{Runner: &exp.Runner{Eval: stubEval}})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if code := getJSON(t, ts.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Errorf("pprof reachable without EnablePprof: %d", code)
	}

	on := serve.New(serve.Config{Runner: &exp.Runner{Eval: stubEval}, EnablePprof: true})
	t.Cleanup(on.Close)
	tsOn := httptest.NewServer(on.Handler())
	t.Cleanup(tsOn.Close)
	resp, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with EnablePprof: %s", resp.Status)
	}
}
