// Package serve is the campaign service behind cmd/shserved: a
// long-running HTTP API that accepts the same declarative campaign
// specs cmd/shrun executes, validates them against the
// topology/routing/pattern registries, and runs them on one shared
// exp.Runner with one shared content-keyed result cache — so
// repeated or overlapping submissions from many clients dedupe to
// zero extra simulation (cache hits for finished work, in-flight
// sharing for work another campaign is computing right now).
//
// The shape is submission -> queue -> executors -> shared runner:
// POST /v1/campaigns enqueues a validated campaign and returns its
// id, a fixed pool of executor goroutines drains the queue, and each
// execution is one Runner.RunObserved call whose progress events
// drive the status endpoint and the SSE stream. Results render
// through internal/report, the exact code path cmd/shrun prints
// locally, which keeps the service's CSV byte-identical to the CLI's.
//
// Every endpoint is documented in docs/API.md; a test walks Routes()
// and fails on any route the document does not cover.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/report"
	"sparsehamming/internal/spec"
)

// Config parameterizes a Server.
type Config struct {
	// Runner evaluates every campaign's jobs; it must be non-nil.
	// All campaigns share it (and through it, its Workers bound and
	// Cache).
	Runner *exp.Runner

	// Executors is the number of campaigns executed concurrently
	// (their total simulation parallelism is still bounded by the
	// Runner's shared worker pool); <= 0 means 4.
	Executors int

	// QueueDepth bounds the submission queue; a full queue rejects
	// submissions with 503. <= 0 means 256.
	QueueDepth int

	// MaxSpecBytes bounds the accepted spec body size; <= 0 means
	// 1 MiB.
	MaxSpecBytes int64

	// OnCampaignFinished, when non-nil, runs after each campaign
	// reaches a terminal state (cmd/shserved hooks cache persistence
	// here). It may be called from several executors concurrently.
	OnCampaignFinished func(*Campaign)

	// Obs is the observability hub behind GET /metrics, the
	// ?debug=trace results field, and the service's structured logs.
	// Nil gets a self-contained hub (metrics and traces still work;
	// logs are discarded). Share the hub with the runner
	// (noc.NewObservedRunner) so one scrape covers every tier.
	Obs *obs.Hub

	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the
	// shserved -pprof flag). Off by default: profiling endpoints
	// expose more than operational metrics and cost real CPU when
	// scraped.
	EnablePprof bool
}

// Server is the campaign service: an HTTP handler plus the queue and
// executor pool behind it. Create with New, serve Handler(), stop
// with Close.
type Server struct {
	cfg     Config
	store   *Store
	queue   chan *Campaign
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started time.Time
	log     *slog.Logger

	// HTTP instrumentation handles (registered on cfg.Obs.Metrics).
	httpReqs *obs.CounterVec
	httpLat  *obs.HistogramVec
	sseSubs  *obs.Gauge
}

// New starts a server's executor pool around the config.
func New(cfg Config) *Server {
	if cfg.Runner == nil {
		panic("serve: Config.Runner is nil")
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxSpecBytes <= 0 {
		cfg.MaxSpecBytes = 1 << 20
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewHub()
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   NewStore(),
		queue:   make(chan *Campaign, cfg.QueueDepth),
		ctx:     ctx,
		stop:    stop,
		started: time.Now(),
		log:     cfg.Obs.Logger(),
	}
	s.registerMetrics(cfg.Obs.Metrics)
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Close stops the executor pool: running campaigns are canceled,
// queued ones stay queued (status preserved for inspection), and the
// call returns once every executor has exited.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Store exposes the campaign index (read-mostly; used by status
// handlers and tests).
func (s *Server) Store() *Store { return s.store }

// executor drains the submission queue until the server closes.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case c := <-s.queue:
			s.execute(c)
		}
	}
}

// execute runs one campaign on the shared runner.
func (s *Server) execute(c *Campaign) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !c.markRunning(cancel, time.Now()) {
		return // canceled while queued
	}
	s.log.Info("campaign started", "id", c.ID, "jobs", len(c.Jobs))
	results, rep, err := s.cfg.Runner.RunObserved(ctx, c.Jobs, c.observe)
	c.finish(results, rep, err, context.Cause(ctx))
	snap := c.Snapshot()
	s.log.Info("campaign finished",
		"id", c.ID, "status", string(snap.Status),
		"computed", rep.Computed, "cached", rep.CacheHits,
		"shared", rep.Shared, "failed", rep.Failed,
		"wall", rep.Wall.Round(time.Millisecond))
	if s.cfg.OnCampaignFinished != nil {
		s.cfg.OnCampaignFinished(c)
	}
}

// Route is one registered endpoint: the method and ServeMux pattern
// plus a one-line summary. Routes() is the single source of truth
// the mux, docs/API.md, and the doc-coverage test all derive from.
type Route struct {
	Method  string
	Pattern string
	Summary string

	handler http.HandlerFunc
}

// Routes returns every endpoint the server exposes. The pprof routes
// appear only when Config.EnablePprof is set.
func (s *Server) Routes() []Route {
	routes := []Route{
		{"POST", "/v1/campaigns", "submit a campaign spec; returns the campaign resource", s.handleSubmit},
		{"GET", "/v1/campaigns", "list campaigns in submission order", s.handleList},
		{"GET", "/v1/campaigns/{id}", "campaign status and per-job progress", s.handleStatus},
		{"GET", "/v1/campaigns/{id}/events", "live progress stream (Server-Sent Events)", s.handleEvents},
		{"GET", "/v1/campaigns/{id}/results", "results of a finished campaign (JSON, or ?format=csv)", s.handleResults},
		{"DELETE", "/v1/campaigns/{id}", "cancel a queued or running campaign", s.handleCancel},
		{"POST", "/v1/frontier", "surrogate-guided sparse Hamming design-space exploration (synchronous)", s.handleFrontier},
		{"GET", "/v1/registry", "registered topologies, routings, patterns, scenarios", s.handleRegistry},
		{"GET", "/healthz", "liveness probe with build, queue, runner, and cache statistics", s.handleHealthz},
		{"GET", "/metrics", "Prometheus text exposition of simulator, runner, cache, and HTTP series", s.handleMetrics},
	}
	if s.cfg.EnablePprof {
		routes = append(routes, pprofRoutes()...)
	}
	return routes
}

// Handler builds the service's HTTP handler from the route table,
// each route wrapped with the request-count and latency
// instrumentation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.Routes() {
		key := rt.Method + " " + rt.Pattern
		mux.HandleFunc(key, s.instrument(key, rt.handler))
	}
	return mux
}

// apiError is the JSON error envelope every non-2xx response uses.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v as an application/json response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/campaigns: parse, validate,
// expand, hash, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sp, err := spec.ParseReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sp.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	groups, err := sp.ExpandSweeps()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	var all []exp.Job
	for _, g := range groups {
		all = append(all, g...)
	}
	hash := spec.HashJobs(all)
	c := newCampaign(s.store.NextID(hash), hash, sp, groups, all, time.Now())
	// Index before enqueueing: an executor may pick the campaign up
	// (and even finish it) immediately, and it must be visible to the
	// status endpoints the moment that can happen.
	s.store.Add(c)
	select {
	case s.queue <- c:
	default:
		s.store.Remove(c.ID)
		s.log.Warn("campaign rejected: queue full",
			"id", c.ID, "queued", len(s.queue))
		writeError(w, http.StatusServiceUnavailable, "campaign queue is full (%d queued)", len(s.queue))
		return
	}
	s.log.Info("campaign submitted",
		"id", c.ID, "name", sp.Name, "jobs", len(all), "sweeps", len(groups))
	w.Header().Set("Location", "/v1/campaigns/"+c.ID)
	writeJSON(w, http.StatusAccepted, c.Snapshot())
}

// campaignListJSON is the GET /v1/campaigns response body.
type campaignListJSON struct {
	Campaigns []CampaignJSON `json:"campaigns"`
}

// handleList implements GET /v1/campaigns.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	all := s.store.All()
	out := campaignListJSON{Campaigns: make([]CampaignJSON, len(all))}
	for i, c := range all {
		out.Campaigns[i] = c.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// campaign resolves the {id} path value, writing 404 on a miss.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", id)
	}
	return c, ok
}

// handleStatus implements GET /v1/campaigns/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Snapshot())
}

// handleCancel implements DELETE /v1/campaigns/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if !c.Cancel() {
		writeError(w, http.StatusConflict, "campaign %s is already %s", c.ID, c.Snapshot().Status)
		return
	}
	snap := c.Snapshot()
	s.log.Info("campaign canceled", "id", c.ID, "status", string(snap.Status))
	if snap.Status.Terminal() && s.cfg.OnCampaignFinished != nil {
		// A queued campaign cancels straight to terminal without ever
		// passing through an executor, so the terminal hook must fire
		// here (running campaigns reach it via execute).
		s.cfg.OnCampaignFinished(c)
	}
	writeJSON(w, http.StatusOK, snap)
}

// ResultsSweepJSON is one sweep of a results document: the expanded
// jobs and their results, index-aligned (a null result marks a
// failed job). Traces appears only under ?debug=trace: the per-job
// execution-trace span trees, also index-aligned — null for jobs the
// trace store no longer holds (answered from the persistent cache, or
// evicted).
type ResultsSweepJSON struct {
	Label   string        `json:"label"`
	Jobs    []exp.Job     `json:"jobs"`
	Results []*exp.Result `json:"results"`
	Traces  []*obs.Span   `json:"traces,omitempty"`
}

// ResultsJSON is the GET /v1/campaigns/{id}/results response body.
// Concatenating the sweeps' results reproduces the spec's expansion
// order, which is how shrun -server reassembles its local tables.
type ResultsJSON struct {
	ID       string             `json:"id"`
	Name     string             `json:"name"`
	SpecHash string             `json:"spec_hash"`
	Status   Status             `json:"status"`
	Report   ReportJSON         `json:"report"`
	Sweeps   []ResultsSweepJSON `json:"sweeps"`
}

// handleResults implements GET /v1/campaigns/{id}/results.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	results, _, done := c.Results()
	if !done {
		writeError(w, http.StatusConflict, "campaign %s is still %s; poll status or stream events", c.ID, c.Snapshot().Status)
		return
	}
	if len(results) != len(c.Jobs) {
		// Canceled before the run started: terminal, but nothing to
		// slice into sweeps.
		writeError(w, http.StatusConflict, "campaign %s was %s before producing results", c.ID, c.Snapshot().Status)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		report.WriteCSV(w, c.Spec, c.Groups, results)
	case "", "json":
		snap := c.Snapshot()
		out := ResultsJSON{
			ID: c.ID, Name: c.Spec.Name, SpecHash: c.SpecHash,
			Status: snap.Status, Report: *snap.Report,
		}
		withTraces := r.URL.Query().Get("debug") == "trace"
		labels := c.Spec.Labels()
		off := 0
		for pi, g := range c.Groups {
			sw := ResultsSweepJSON{
				Label: labels[pi], Jobs: g, Results: results[off : off+len(g)],
			}
			if withTraces {
				sw.Traces = make([]*obs.Span, len(g))
				for ji, j := range g {
					sw.Traces[ji] = s.cfg.Obs.Traces.Get(j.Key())
				}
			}
			out.Sweeps = append(out.Sweeps, sw)
			off += len(g)
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
	}
}

// healthJSON is the GET /healthz response body: liveness plus enough
// build and load context to tell which binary is running and whether
// its worker pool is busy, without scraping /metrics.
type healthJSON struct {
	Status       string `json:"status"`
	UptimeSec    int64  `json:"uptime_sec"`
	GoVersion    string `json:"go_version"`
	Revision     string `json:"revision,omitempty"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	Campaigns    int    `json:"campaigns"`
	Queued       int    `json:"queued"`
	CacheEntries int    `json:"cache_entries"`

	// Runner gauges, mirroring the sh_runner_* series.
	Workers       int   `json:"workers"`
	EvalsInFlight int64 `json:"evals_in_flight"`
	WaitingJobs   int64 `json:"waiting_jobs"`
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Runner.Stats()
	h := healthJSON{
		Status:        "ok",
		UptimeSec:     int64(time.Since(s.started).Seconds()),
		GoVersion:     runtime.Version(),
		Revision:      vcsRevision(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Campaigns:     s.store.Len(),
		Queued:        len(s.queue),
		Workers:       st.Workers,
		EvalsInFlight: st.InFlight,
		WaitingJobs:   st.Waiting,
	}
	if s.cfg.Runner.Cache != nil {
		h.CacheEntries = s.cfg.Runner.Cache.Len()
	}
	writeJSON(w, http.StatusOK, h)
}
