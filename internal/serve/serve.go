// Package serve is the campaign service behind cmd/shserved: a
// long-running HTTP API that accepts the same declarative campaign
// specs cmd/shrun executes, validates them against the
// topology/routing/pattern registries, and runs them on one shared
// exp.Runner with one shared content-keyed result cache — so
// repeated or overlapping submissions from many clients dedupe to
// zero extra simulation (cache hits for finished work, in-flight
// sharing for work another campaign is computing right now).
//
// The shape is submission -> queue -> executors -> shared runner:
// POST /v1/campaigns enqueues a validated campaign and returns its
// id, a fixed pool of executor goroutines drains the queue, and each
// execution is one Runner.RunObserved call whose progress events
// drive the status endpoint and the SSE stream. Results render
// through internal/report, the exact code path cmd/shrun prints
// locally, which keeps the service's CSV byte-identical to the CLI's.
//
// Every endpoint is documented in docs/API.md; a test walks Routes()
// and fails on any route the document does not cover.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/report"
	"sparsehamming/internal/spec"
)

// Config parameterizes a Server.
type Config struct {
	// Runner evaluates every campaign's jobs; it must be non-nil.
	// All campaigns share it (and through it, its Workers bound and
	// Cache).
	Runner *exp.Runner

	// Executors is the number of campaigns executed concurrently
	// (their total simulation parallelism is still bounded by the
	// Runner's shared worker pool); <= 0 means 4.
	Executors int

	// QueueDepth bounds the submission queue; a full queue rejects
	// submissions with 503. <= 0 means 256.
	QueueDepth int

	// MaxSpecBytes bounds the accepted spec body size; <= 0 means
	// 1 MiB.
	MaxSpecBytes int64

	// OnCampaignFinished, when non-nil, runs after each campaign
	// reaches a terminal state (cmd/shserved hooks cache persistence
	// here). It may be called from several executors concurrently.
	OnCampaignFinished func(*Campaign)
}

// Server is the campaign service: an HTTP handler plus the queue and
// executor pool behind it. Create with New, serve Handler(), stop
// with Close.
type Server struct {
	cfg     Config
	store   *Store
	queue   chan *Campaign
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started time.Time
}

// New starts a server's executor pool around the config.
func New(cfg Config) *Server {
	if cfg.Runner == nil {
		panic("serve: Config.Runner is nil")
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxSpecBytes <= 0 {
		cfg.MaxSpecBytes = 1 << 20
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   NewStore(),
		queue:   make(chan *Campaign, cfg.QueueDepth),
		ctx:     ctx,
		stop:    stop,
		started: time.Now(),
	}
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Close stops the executor pool: running campaigns are canceled,
// queued ones stay queued (status preserved for inspection), and the
// call returns once every executor has exited.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Store exposes the campaign index (read-mostly; used by status
// handlers and tests).
func (s *Server) Store() *Store { return s.store }

// executor drains the submission queue until the server closes.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case c := <-s.queue:
			s.execute(c)
		}
	}
}

// execute runs one campaign on the shared runner.
func (s *Server) execute(c *Campaign) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if !c.markRunning(cancel, time.Now()) {
		return // canceled while queued
	}
	results, rep, err := s.cfg.Runner.RunObserved(ctx, c.Jobs, c.observe)
	c.finish(results, rep, err, context.Cause(ctx))
	if s.cfg.OnCampaignFinished != nil {
		s.cfg.OnCampaignFinished(c)
	}
}

// Route is one registered endpoint: the method and ServeMux pattern
// plus a one-line summary. Routes() is the single source of truth
// the mux, docs/API.md, and the doc-coverage test all derive from.
type Route struct {
	Method  string
	Pattern string
	Summary string

	handler http.HandlerFunc
}

// Routes returns every endpoint the server exposes.
func (s *Server) Routes() []Route {
	return []Route{
		{"POST", "/v1/campaigns", "submit a campaign spec; returns the campaign resource", s.handleSubmit},
		{"GET", "/v1/campaigns", "list campaigns in submission order", s.handleList},
		{"GET", "/v1/campaigns/{id}", "campaign status and per-job progress", s.handleStatus},
		{"GET", "/v1/campaigns/{id}/events", "live progress stream (Server-Sent Events)", s.handleEvents},
		{"GET", "/v1/campaigns/{id}/results", "results of a finished campaign (JSON, or ?format=csv)", s.handleResults},
		{"DELETE", "/v1/campaigns/{id}", "cancel a queued or running campaign", s.handleCancel},
		{"GET", "/v1/registry", "registered topologies, routings, patterns, scenarios", s.handleRegistry},
		{"GET", "/healthz", "liveness probe with queue and cache statistics", s.handleHealthz},
	}
}

// Handler builds the service's HTTP handler from the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.Routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
	}
	return mux
}

// apiError is the JSON error envelope every non-2xx response uses.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v as an application/json response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/campaigns: parse, validate,
// expand, hash, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sp, err := spec.ParseReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sp.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	groups, err := sp.ExpandSweeps()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	var all []exp.Job
	for _, g := range groups {
		all = append(all, g...)
	}
	hash := spec.HashJobs(all)
	c := newCampaign(s.store.NextID(hash), hash, sp, groups, all, time.Now())
	// Index before enqueueing: an executor may pick the campaign up
	// (and even finish it) immediately, and it must be visible to the
	// status endpoints the moment that can happen.
	s.store.Add(c)
	select {
	case s.queue <- c:
	default:
		s.store.Remove(c.ID)
		writeError(w, http.StatusServiceUnavailable, "campaign queue is full (%d queued)", len(s.queue))
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+c.ID)
	writeJSON(w, http.StatusAccepted, c.Snapshot())
}

// campaignListJSON is the GET /v1/campaigns response body.
type campaignListJSON struct {
	Campaigns []CampaignJSON `json:"campaigns"`
}

// handleList implements GET /v1/campaigns.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	all := s.store.All()
	out := campaignListJSON{Campaigns: make([]CampaignJSON, len(all))}
	for i, c := range all {
		out.Campaigns[i] = c.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// campaign resolves the {id} path value, writing 404 on a miss.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", id)
	}
	return c, ok
}

// handleStatus implements GET /v1/campaigns/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Snapshot())
}

// handleCancel implements DELETE /v1/campaigns/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if !c.Cancel() {
		writeError(w, http.StatusConflict, "campaign %s is already %s", c.ID, c.Snapshot().Status)
		return
	}
	snap := c.Snapshot()
	if snap.Status.Terminal() && s.cfg.OnCampaignFinished != nil {
		// A queued campaign cancels straight to terminal without ever
		// passing through an executor, so the terminal hook must fire
		// here (running campaigns reach it via execute).
		s.cfg.OnCampaignFinished(c)
	}
	writeJSON(w, http.StatusOK, snap)
}

// ResultsSweepJSON is one sweep of a results document: the expanded
// jobs and their results, index-aligned (a null result marks a
// failed job).
type ResultsSweepJSON struct {
	Label   string        `json:"label"`
	Jobs    []exp.Job     `json:"jobs"`
	Results []*exp.Result `json:"results"`
}

// ResultsJSON is the GET /v1/campaigns/{id}/results response body.
// Concatenating the sweeps' results reproduces the spec's expansion
// order, which is how shrun -server reassembles its local tables.
type ResultsJSON struct {
	ID       string             `json:"id"`
	Name     string             `json:"name"`
	SpecHash string             `json:"spec_hash"`
	Status   Status             `json:"status"`
	Report   ReportJSON         `json:"report"`
	Sweeps   []ResultsSweepJSON `json:"sweeps"`
}

// handleResults implements GET /v1/campaigns/{id}/results.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	results, _, done := c.Results()
	if !done {
		writeError(w, http.StatusConflict, "campaign %s is still %s; poll status or stream events", c.ID, c.Snapshot().Status)
		return
	}
	if len(results) != len(c.Jobs) {
		// Canceled before the run started: terminal, but nothing to
		// slice into sweeps.
		writeError(w, http.StatusConflict, "campaign %s was %s before producing results", c.ID, c.Snapshot().Status)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		report.WriteCSV(w, c.Spec, c.Groups, results)
	case "", "json":
		snap := c.Snapshot()
		out := ResultsJSON{
			ID: c.ID, Name: c.Spec.Name, SpecHash: c.SpecHash,
			Status: snap.Status, Report: *snap.Report,
		}
		labels := c.Spec.Labels()
		off := 0
		for pi, g := range c.Groups {
			out.Sweeps = append(out.Sweeps, ResultsSweepJSON{
				Label: labels[pi], Jobs: g, Results: results[off : off+len(g)],
			})
			off += len(g)
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
	}
}

// healthJSON is the GET /healthz response body.
type healthJSON struct {
	Status       string `json:"status"`
	UptimeSec    int64  `json:"uptime_sec"`
	Campaigns    int    `json:"campaigns"`
	Queued       int    `json:"queued"`
	CacheEntries int    `json:"cache_entries"`
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthJSON{
		Status:    "ok",
		UptimeSec: int64(time.Since(s.started).Seconds()),
		Campaigns: s.store.Len(),
		Queued:    len(s.queue),
	}
	if s.cfg.Runner.Cache != nil {
		h.CacheEntries = s.cfg.Runner.Cache.Len()
	}
	writeJSON(w, http.StatusOK, h)
}
