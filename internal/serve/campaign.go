package serve

import (
	"fmt"
	"sync"
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/spec"
)

// Status is a campaign's lifecycle state.
type Status string

// Campaign lifecycle: submissions enter the queue as StatusQueued,
// an executor moves them to StatusRunning, and they end in exactly
// one of the three terminal states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Progress counts a campaign's unique jobs by outcome while it runs.
type Progress struct {
	// Total is the number of unique jobs in the campaign; Done of
	// them have completed (in any way).
	Total int `json:"total"`
	Done  int `json:"done"`
	// CacheHits were answered from the shared result cache, Shared by
	// joining another campaign's in-flight evaluation, Computed by a
	// fresh simulation, and Failed errored.
	CacheHits int `json:"cache_hits"`
	Shared    int `json:"shared"`
	Computed  int `json:"computed"`
	Failed    int `json:"failed"`
}

// Campaign is one submitted spec moving through the service: the
// validated spec, its expansion, live progress, and (once finished)
// the results. All mutable state is guarded by mu; reads go through
// Snapshot.
type Campaign struct {
	// Immutable after creation.
	ID       string
	SpecHash string
	Spec     *spec.Spec
	Groups   [][]exp.Job // per-sweep expansion, concatenating to Jobs
	Jobs     []exp.Job   // full expansion, runner input order

	mu        sync.Mutex
	status    Status
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	progress  Progress
	results   []*exp.Result // aligned with Jobs once terminal
	report    exp.Report
	cancel    func()                              // non-nil while running
	subs      map[chan exp.ProgressEvent]struct{} // SSE subscribers
	done      chan struct{}                       // closed on terminal state
}

// newCampaign builds a queued campaign around a validated, expanded
// spec; jobs must be the concatenation of groups (the submit handler
// already flattened it for hashing).
func newCampaign(id, hash string, s *spec.Spec, groups [][]exp.Job, jobs []exp.Job, now time.Time) *Campaign {
	unique := map[string]struct{}{}
	for _, j := range jobs {
		unique[j.Key()] = struct{}{}
	}
	return &Campaign{
		ID:        id,
		SpecHash:  hash,
		Spec:      s,
		Groups:    groups,
		Jobs:      jobs,
		status:    StatusQueued,
		submitted: now,
		progress:  Progress{Total: len(unique)},
		subs:      map[chan exp.ProgressEvent]struct{}{},
		done:      make(chan struct{}),
	}
}

// Done returns a channel closed when the campaign reaches a terminal
// state (the poll-free wait used by tests and the SSE handler).
func (c *Campaign) Done() <-chan struct{} { return c.done }

// markRunning moves a queued campaign to running with the given
// cancel hook. It reports false when the campaign was canceled while
// queued (the executor then skips it).
func (c *Campaign) markRunning(cancel func(), now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusQueued {
		return false
	}
	c.status = StatusRunning
	c.started = now
	c.cancel = cancel
	return true
}

// observe folds one runner progress event into the campaign counters
// and fans it out to SSE subscribers (non-blocking: a subscriber that
// stops draining misses events rather than stalling the simulation).
func (c *Campaign) observe(ev exp.ProgressEvent) {
	c.mu.Lock()
	c.progress.Done = ev.Done
	switch {
	case ev.Err != nil:
		c.progress.Failed++
	case ev.Cached:
		c.progress.CacheHits++
	case ev.Shared:
		c.progress.Shared++
	default:
		c.progress.Computed++
	}
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	c.mu.Unlock()
}

// finish records the terminal outcome of a run: results aligned with
// Jobs, the aggregate report, and the final status (canceled when the
// campaign's context was canceled, failed on any evaluation error,
// done otherwise).
func (c *Campaign) finish(results []*exp.Result, rep exp.Report, runErr, ctxErr error) {
	c.mu.Lock()
	c.results = results
	c.report = rep
	c.progress.Done = rep.CacheHits + rep.Shared + rep.Computed + rep.Failed
	c.progress.CacheHits = rep.CacheHits
	c.progress.Shared = rep.Shared
	c.progress.Computed = rep.Computed
	c.progress.Failed = rep.Failed
	switch {
	case runErr == nil:
		// Every job resolved. A cancellation that raced in after the
		// last evaluation must not relabel a complete campaign.
		c.status = StatusDone
	case ctxErr != nil:
		c.status = StatusCanceled
		c.err = ctxErr.Error()
	default:
		c.status = StatusFailed
		c.err = runErr.Error()
	}
	c.finished = time.Now()
	c.cancel = nil
	c.mu.Unlock()
	close(c.done)
}

// Cancel requests cancellation: a queued campaign terminates
// immediately, a running one stops scheduling new jobs and finishes
// as canceled once in-progress evaluations drain. It reports whether
// the request took effect (false once terminal).
func (c *Campaign) Cancel() bool {
	c.mu.Lock()
	switch c.status {
	case StatusQueued:
		c.status = StatusCanceled
		c.err = "canceled while queued"
		c.finished = time.Now()
		c.mu.Unlock()
		close(c.done)
		return true
	case StatusRunning:
		cancel := c.cancel
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		c.mu.Unlock()
		return false
	}
}

// subscribe registers an SSE subscriber channel; the returned func
// unregisters it.
func (c *Campaign) subscribe(buf int) (<-chan exp.ProgressEvent, func()) {
	ch := make(chan exp.ProgressEvent, buf)
	c.mu.Lock()
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}
}

// Results returns the campaign's results (aligned with Jobs) and
// report; ok is false until the campaign is terminal. A campaign
// canceled before it ever ran is terminal but has no results —
// callers must check the slice length against Jobs before slicing
// by sweep.
func (c *Campaign) Results() (results []*exp.Result, rep exp.Report, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.status.Terminal() {
		return nil, exp.Report{}, false
	}
	return c.results, c.report, true
}

// SweepJSON summarizes one sweep of a campaign resource.
type SweepJSON struct {
	Label string `json:"label"`
	Jobs  int    `json:"jobs"`
}

// ReportJSON is the wire form of exp.Report (durations in
// milliseconds).
type ReportJSON struct {
	Jobs      int     `json:"jobs"`
	Unique    int     `json:"unique"`
	CacheHits int     `json:"cache_hits"`
	Shared    int     `json:"shared"`
	Computed  int     `json:"computed"`
	Failed    int     `json:"failed"`
	WallMs    float64 `json:"wall_ms"`
	ComputeMs float64 `json:"compute_ms"`
	Summary   string  `json:"summary"`
}

// CampaignJSON is the campaign resource returned by the campaign
// endpoints.
type CampaignJSON struct {
	ID         string      `json:"id"`
	Name       string      `json:"name"`
	SpecHash   string      `json:"spec_hash"`
	Status     Status      `json:"status"`
	Error      string      `json:"error,omitempty"`
	Submitted  time.Time   `json:"submitted"`
	Started    time.Time   `json:"started,omitzero"`
	Finished   time.Time   `json:"finished,omitzero"`
	Jobs       int         `json:"jobs"`
	UniqueJobs int         `json:"unique_jobs"`
	Sweeps     []SweepJSON `json:"sweeps"`
	Progress   Progress    `json:"progress"`
	Report     *ReportJSON `json:"report,omitempty"`
}

// Snapshot renders the campaign's current state as its wire resource.
func (c *Campaign) Snapshot() CampaignJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := c.Spec.Labels()
	sweeps := make([]SweepJSON, len(c.Groups))
	for i, g := range c.Groups {
		sweeps[i] = SweepJSON{Label: labels[i], Jobs: len(g)}
	}
	snap := CampaignJSON{
		ID:         c.ID,
		Name:       c.Spec.Name,
		SpecHash:   c.SpecHash,
		Status:     c.status,
		Error:      c.err,
		Submitted:  c.submitted,
		Started:    c.started,
		Finished:   c.finished,
		Jobs:       len(c.Jobs),
		UniqueJobs: c.progress.Total,
		Sweeps:     sweeps,
		Progress:   c.progress,
	}
	if c.status.Terminal() {
		r := c.report
		snap.Report = &ReportJSON{
			Jobs: r.Jobs, Unique: r.Unique, CacheHits: r.CacheHits,
			Shared: r.Shared, Computed: r.Computed, Failed: r.Failed,
			WallMs:    float64(r.Wall) / float64(time.Millisecond),
			ComputeMs: float64(r.Compute) / float64(time.Millisecond),
			Summary:   r.String(),
		}
	}
	return snap
}

// Store is the in-memory campaign index, insertion-ordered.
type Store struct {
	mu   sync.Mutex
	byID map[string]*Campaign
	ids  []string
	seq  int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: map[string]*Campaign{}}
}

// NextID mints a campaign id from a monotonic sequence number and the
// spec hash prefix — unique per submission, yet eyeball-matchable to
// the spec it runs.
func (st *Store) NextID(specHash string) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	return fmt.Sprintf("c%d-%.8s", st.seq, specHash)
}

// Add indexes a campaign.
func (st *Store) Add(c *Campaign) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.byID[c.ID] = c
	st.ids = append(st.ids, c.ID)
}

// Remove unindexes a campaign (the rejected-submission path: indexed
// for visibility, then refused by a full queue).
func (st *Store) Remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		return
	}
	delete(st.byID, id)
	for i, have := range st.ids {
		if have == id {
			st.ids = append(st.ids[:i], st.ids[i+1:]...)
			break
		}
	}
}

// Get looks a campaign up by id.
func (st *Store) Get(id string) (*Campaign, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := st.byID[id]
	return c, ok
}

// All returns every campaign in submission order.
func (st *Store) All() []*Campaign {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Campaign, len(st.ids))
	for i, id := range st.ids {
		out[i] = st.byID[id]
	}
	return out
}

// Len returns the number of stored campaigns.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.ids)
}
