// Package gf implements arithmetic in small finite fields GF(q) for
// q = p^k a prime power, using exp/log tables over a generator of the
// multiplicative group. It exists to support the SlimNoC topology
// construction, which builds a diameter-2 graph from the affine planes
// over GF(q).
//
// Fields up to q = 1024 are supported, which covers every chip size a
// NoC designer would plausibly ask for (2*q^2 tiles).
package gf

import "fmt"

// Field is a finite field GF(q). The zero value is not usable; create
// fields with New.
type Field struct {
	q   int   // field size p^k
	p   int   // characteristic
	k   int   // extension degree
	exp []int // exp[i] = g^i for generator g, length 2q to avoid mod
	log []int // log[x] = i s.t. g^i = x, for x in 1..q-1
	add [][]int
}

// maxQ bounds the supported field size; tables are O(q^2).
const maxQ = 1024

// New constructs GF(q). It returns an error if q is not a prime power
// in [2, 1024].
func New(q int) (*Field, error) {
	if q < 2 || q > maxQ {
		return nil, fmt.Errorf("gf: field size %d out of supported range [2,%d]", q, maxQ)
	}
	p, k, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	f := &Field{q: q, p: p, k: k}
	if err := f.build(); err != nil {
		return nil, err
	}
	return f, nil
}

// Size returns q.
func (f *Field) Size() int { return f.q }

// Characteristic returns p.
func (f *Field) Characteristic() int { return f.p }

// Add returns a + b in GF(q). Elements are represented as integers in
// [0, q): for prime fields the residue itself, for extension fields
// the coefficient vector of the polynomial representation packed in
// base p.
func (f *Field) Add(a, b int) int { return f.add[a][b] }

// Neg returns -a in GF(q).
func (f *Field) Neg(a int) int {
	if f.p == 2 {
		return a
	}
	// Per-digit negation in base p.
	res, mul := 0, 1
	for x := a; x > 0; x /= f.p {
		d := x % f.p
		if d != 0 {
			res += (f.p - d) * mul
		}
		mul *= f.p
	}
	return res
}

// Sub returns a - b in GF(q).
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Mul returns a * b in GF(q).
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[(f.q-1)-f.log[a]]
}

// Div returns a / b. It panics if b == 0.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Generator returns a generator of the multiplicative group.
func (f *Field) Generator() int { return f.exp[1] }

// IsPrimePower reports whether q is a prime power and returns its
// decomposition.
func IsPrimePower(q int) (p, k int, ok bool) { return primePower(q) }

func primePower(q int) (p, k int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	n := q
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			p = d
			for n%d == 0 {
				n /= d
				k++
			}
			if n != 1 {
				return 0, 0, false
			}
			return p, k, true
		}
	}
	return q, 1, true // q itself prime
}

// build constructs the exp/log and addition tables.
func (f *Field) build() error {
	q, p, k := f.q, f.p, f.k

	// Multiplication in the polynomial representation, reducing by an
	// irreducible polynomial of degree k found by brute force.
	var irr []int // coefficients, degree k, irr[k] == 1
	if k == 1 {
		irr = nil
	} else {
		var found bool
		irr, found = findIrreducible(p, k)
		if !found {
			return fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", k, p)
		}
	}

	mul := func(a, b int) int { return polyMul(a, b, p, k, irr) }

	// Find a generator by trial: element whose order is q-1. GF(2) has
	// the trivial multiplicative group {1}.
	f.exp = make([]int, 2*(q-1))
	f.log = make([]int, q)
	if q == 2 {
		f.exp[0], f.exp[1] = 1, 1
		f.log[1] = 0
	}
	for g := 2; g < q; g++ {
		seen := make([]bool, q)
		x := 1
		order := 0
		for {
			if seen[x] {
				break
			}
			seen[x] = true
			order++
			x = mul(x, g)
			if x == 1 {
				break
			}
		}
		if order == q-1 {
			x = 1
			for i := 0; i < q-1; i++ {
				f.exp[i] = x
				f.exp[i+q-1] = x
				f.log[x] = i
				x = mul(x, g)
			}
			break
		}
		if g == q-1 {
			return fmt.Errorf("gf: no generator found for q=%d", q)
		}
	}
	if f.exp[0] != 1 {
		return fmt.Errorf("gf: generator search failed for q=%d", q)
	}

	// Addition table: per-digit addition mod p in base p.
	f.add = make([][]int, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]int, q)
		for b := 0; b < q; b++ {
			f.add[a][b] = digitAdd(a, b, p)
		}
	}
	return nil
}

// digitAdd adds a and b digit-wise modulo p in base-p representation.
func digitAdd(a, b, p int) int {
	res, mul := 0, 1
	for a > 0 || b > 0 {
		res += ((a%p + b%p) % p) * mul
		a /= p
		b /= p
		mul *= p
	}
	return res
}

// polyMul multiplies two field elements in packed base-p polynomial
// representation, reducing modulo the irreducible polynomial irr
// (degree k). For k == 1 it is plain modular multiplication.
func polyMul(a, b, p, k int, irr []int) int {
	if k == 1 {
		return (a * b) % p
	}
	// Unpack to coefficient slices.
	ac := unpack(a, p, k)
	bc := unpack(b, p, k)
	prod := make([]int, 2*k-1)
	for i, av := range ac {
		if av == 0 {
			continue
		}
		for j, bv := range bc {
			prod[i+j] = (prod[i+j] + av*bv) % p
		}
	}
	// Reduce modulo irr: x^k = -(irr[0] + irr[1] x + ... + irr[k-1] x^(k-1)).
	for d := 2*k - 2; d >= k; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		for j := 0; j < k; j++ {
			prod[d-k+j] = (prod[d-k+j] + c*(p-irr[j])) % p
		}
	}
	return pack(prod[:k], p)
}

func unpack(a, p, k int) []int {
	c := make([]int, k)
	for i := 0; i < k; i++ {
		c[i] = a % p
		a /= p
	}
	return c
}

func pack(c []int, p int) int {
	res, mul := 0, 1
	for _, d := range c {
		res += d * mul
		mul *= p
	}
	return res
}

// findIrreducible searches monic polynomials of degree k over GF(p)
// for one with no roots and no factorization into lower-degree monic
// polynomials, by trial division.
func findIrreducible(p, k int) ([]int, bool) {
	total := 1
	for i := 0; i < k; i++ {
		total *= p
	}
	for lo := 0; lo < total; lo++ {
		coef := unpack(lo, p, k) // low-order k coefficients; leading coeff 1
		if coef[0] == 0 {
			continue // divisible by x
		}
		if isIrreducible(coef, p, k) {
			return coef, true
		}
	}
	return nil, false
}

// isIrreducible performs trial division of the monic polynomial
// x^k + coef[k-1] x^(k-1) + ... + coef[0] by every monic polynomial of
// degree 1..k/2.
func isIrreducible(coef []int, p, k int) bool {
	full := make([]int, k+1)
	copy(full, coef)
	full[k] = 1
	for d := 1; d <= k/2; d++ {
		nd := 1
		for i := 0; i < d; i++ {
			nd *= p
		}
		for lo := 0; lo < nd; lo++ {
			div := unpack(lo, p, d)
			div = append(div, 1) // monic of degree d
			if polyDivides(div, full, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether polynomial div divides polynomial num
// over GF(p). Both are coefficient slices, low-order first, with
// non-zero leading coefficients.
func polyDivides(div, num []int, p int) bool {
	rem := make([]int, len(num))
	copy(rem, num)
	dd := len(div) - 1
	lead := div[dd]
	leadInv := modInv(lead, p)
	for d := len(rem) - 1; d >= dd; d-- {
		if rem[d] == 0 {
			continue
		}
		factor := (rem[d] * leadInv) % p
		for j := 0; j <= dd; j++ {
			rem[d-dd+j] = ((rem[d-dd+j]-factor*div[j])%p + p*p) % p
		}
	}
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}

// modInv returns the inverse of a modulo prime p via Fermat.
func modInv(a, p int) int {
	res, base, e := 1, a%p, p-2
	for e > 0 {
		if e&1 == 1 {
			res = res * base % p
		}
		base = base * base % p
		e >>= 1
	}
	return res
}
