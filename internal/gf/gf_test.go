package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrimePower(t *testing.T) {
	cases := []struct {
		q     int
		p, k  int
		valid bool
	}{
		{2, 2, 1, true},
		{3, 3, 1, true},
		{4, 2, 2, true},
		{5, 5, 1, true},
		{6, 0, 0, false},
		{7, 7, 1, true},
		{8, 2, 3, true},
		{9, 3, 2, true},
		{10, 0, 0, false},
		{12, 0, 0, false},
		{16, 2, 4, true},
		{25, 5, 2, true},
		{27, 3, 3, true},
		{49, 7, 2, true},
		{100, 0, 0, false},
		{121, 11, 2, true},
		{1, 0, 0, false},
	}
	for _, c := range cases {
		p, k, ok := IsPrimePower(c.q)
		if ok != c.valid {
			t.Errorf("IsPrimePower(%d) ok=%v want %v", c.q, ok, c.valid)
			continue
		}
		if ok && (p != c.p || k != c.k) {
			t.Errorf("IsPrimePower(%d) = %d^%d, want %d^%d", c.q, p, k, c.p, c.k)
		}
	}
}

func TestNewRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 2000} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) succeeded, want error", q)
		}
	}
}

// fieldSizes are the sizes exercised by the axiom tests, covering
// prime fields, characteristic-2 extensions (needed by SlimNoC q=8),
// and odd-characteristic extensions.
var fieldSizes = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27}

func TestFieldAxioms(t *testing.T) {
	for _, q := range fieldSizes {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		for a := 0; a < q; a++ {
			// Additive identity and inverse.
			if f.Add(a, 0) != a {
				t.Fatalf("GF(%d): %d + 0 = %d", q, a, f.Add(a, 0))
			}
			if f.Add(a, f.Neg(a)) != 0 {
				t.Fatalf("GF(%d): %d + (-%d) = %d", q, a, a, f.Add(a, f.Neg(a)))
			}
			// Multiplicative identity, zero, inverse.
			if f.Mul(a, 1) != a {
				t.Fatalf("GF(%d): %d * 1 = %d", q, a, f.Mul(a, 1))
			}
			if f.Mul(a, 0) != 0 {
				t.Fatalf("GF(%d): %d * 0 = %d", q, a, f.Mul(a, 0))
			}
			if a != 0 {
				if f.Mul(a, f.Inv(a)) != 1 {
					t.Fatalf("GF(%d): %d * %d^-1 = %d", q, a, a, f.Mul(a, f.Inv(a)))
				}
			}
		}
		// Commutativity, associativity, distributivity on all triples.
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("GF(%d): add not commutative at (%d,%d)", q, a, b)
				}
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("GF(%d): mul not commutative at (%d,%d)", q, a, b)
				}
				for c := 0; c < q; c++ {
					if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
						t.Fatalf("GF(%d): add not associative at (%d,%d,%d)", q, a, b, c)
					}
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("GF(%d): mul not associative at (%d,%d,%d)", q, a, b, c)
					}
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("GF(%d): not distributive at (%d,%d,%d)", q, a, b, c)
					}
				}
			}
		}
	}
}

func TestMultiplicativeGroupCyclic(t *testing.T) {
	for _, q := range fieldSizes {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		g := f.Generator()
		seen := make(map[int]bool)
		x := 1
		for i := 0; i < q-1; i++ {
			if seen[x] {
				t.Fatalf("GF(%d): generator %d has order < %d", q, g, q-1)
			}
			seen[x] = true
			x = f.Mul(x, g)
		}
		if x != 1 {
			t.Fatalf("GF(%d): generator %d does not have order %d", q, g, q-1)
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): generator cycles through %d elements, want %d", q, len(seen), q-1)
		}
	}
}

func TestSubIsAddNeg(t *testing.T) {
	f, err := New(9)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if f.Add(f.Sub(a, b), b) != a {
				t.Fatalf("GF(9): (a-b)+b != a at (%d,%d)", a, b)
			}
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		for b := 1; b < 8; b++ {
			if f.Div(f.Mul(a, b), b) != a {
				t.Fatalf("GF(8): (a*b)/b != a at (%d,%d)", a, b)
			}
		}
	}
}

// TestAffineLinesIntersect checks the property the SlimNoC
// construction relies on: two lines y = m1*x + c1 and y = m2*x + c2
// with m1 != m2 intersect in exactly one point.
func TestAffineLinesIntersect(t *testing.T) {
	for _, q := range []int{5, 7, 8, 9} {
		f, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		for m1 := 0; m1 < q; m1++ {
			for m2 := 0; m2 < q; m2++ {
				if m1 == m2 {
					continue
				}
				for c1 := 0; c1 < q; c1++ {
					for c2 := 0; c2 < q; c2++ {
						n := 0
						for x := 0; x < q; x++ {
							y1 := f.Add(f.Mul(m1, x), c1)
							y2 := f.Add(f.Mul(m2, x), c2)
							if y1 == y2 {
								n++
							}
						}
						if n != 1 {
							t.Fatalf("GF(%d): lines (%d,%d),(%d,%d) intersect %d times", q, m1, c1, m2, c2, n)
						}
					}
				}
			}
		}
	}
}

func TestQuickFieldGF8(t *testing.T) {
	f, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	inField := func(v uint8) int { return int(v) % 8 }
	// a*(b+c) == a*b + a*c for random triples.
	prop := func(av, bv, cv uint8) bool {
		a, b, c := inField(av), inField(bv), inField(cv)
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
