package report

import (
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/spec"
)

// costSpec returns a minimal one-sweep cost-mode spec.
func costSpec() *spec.Spec {
	return &spec.Spec{
		Name: "t",
		Sweeps: []spec.Sweep{{
			Label: "s0", Mode: "cost",
			Arch:       spec.ArchSpec{Scenario: "a"},
			Topologies: []spec.TopologySpec{{Kind: "mesh"}, {Kind: "torus"}},
		}},
	}
}

func TestWriteCSV(t *testing.T) {
	s := costSpec()
	groups, err := s.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	results := []*exp.Result{
		{Topology: "mesh", RouterRadix: 4, Diameter: 14, AvgHops: 5.25, AreaOverheadPct: 12.3, NoCPowerW: 4.56},
		nil, // a failed job renders no row
	}
	var b strings.Builder
	WriteCSV(&b, s, groups, results)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row:\n%s", len(lines), b.String())
	}
	if lines[0] != CSVHeader {
		t.Errorf("header = %q", lines[0])
	}
	want := `"s0",cost,a,mesh,"",,uniform,quick,0,0,4,14,5.2500,12.30,4.560,0.00,0.00,0.000,0.000,0.00,0.00,0.0000,0`
	if lines[1] != want {
		t.Errorf("row = %q\nwant %q", lines[1], want)
	}
}

// TestLowerBoundSurfaced: a bottomed-out saturation search shows up
// in both the CSV (sat_lower_bound column) and the predict table
// (the "<" marker).
func TestLowerBoundSurfaced(t *testing.T) {
	s := costSpec()
	s.Sweeps[0].Mode = "predict"
	s.Sweeps[0].Topologies = s.Sweeps[0].Topologies[:1]
	groups, err := s.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	results := []*exp.Result{{
		Topology: "mesh", RoutingName: "monotone-dor/mesh",
		SaturationPct: 0.78, SaturationLowerBound: true,
	}}
	var b strings.Builder
	WriteCSV(&b, s, groups, results)
	if !strings.HasSuffix(strings.TrimRight(b.String(), "\n"), ",1") {
		t.Errorf("CSV row does not flag the lower bound:\n%s", b.String())
	}
	b.Reset()
	WriteSweepTable(&b, s, 0, groups[0], results)
	if !strings.Contains(b.String(), "| <0.8 |") {
		t.Errorf("table does not mark the lower bound:\n%s", b.String())
	}
}

func TestWriteSweepTable(t *testing.T) {
	s := costSpec()
	groups, err := s.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	results := []*exp.Result{
		{Topology: "mesh", RouterRadix: 4, Diameter: 14, AvgHops: 5.25, AreaOverheadPct: 12.3, NoCPowerW: 4.56},
		{Topology: "torus", RouterRadix: 4, Diameter: 8, AvgHops: 4.03, AreaOverheadPct: 14.1, NoCPowerW: 5.01},
	}
	var b strings.Builder
	WriteSweepTable(&b, s, 0, groups[0], results)
	out := b.String()
	for _, want := range []string{
		"## t / s0: scenario a, 8x8 tiles, mode cost",
		"| topology | params | radix |",
		"| mesh |  | 4 | 14 | 5.25 | 12.3 | 4.56 |",
		"| torus |  | 4 | 8 | 4.03 | 14.1 | 5.01 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestNames(t *testing.T) {
	j := exp.Job{}
	if PatternName(j) != "uniform" || QualityName(j) != "quick" {
		t.Errorf("defaults not spelled out: %s %s", PatternName(j), QualityName(j))
	}
	j = exp.Job{Pattern: "transpose", Quality: "full"}
	if PatternName(j) != "transpose" || QualityName(j) != "full" {
		t.Errorf("explicit names mangled: %s %s", PatternName(j), QualityName(j))
	}
}
