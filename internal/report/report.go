// Package report renders campaign results: the per-sweep markdown
// tables and the flat CSV that cmd/shrun prints locally and
// cmd/shserved serves over HTTP. Both frontends go through the same
// functions, which is what makes the service's CSV byte-identical to
// the CLI's on the same spec (the parity test and the CI smoke job
// diff the two outputs byte for byte).
//
// Rendering is a pure function of (spec, jobs, results); results
// slices may contain nils for failed jobs, whose rows are skipped.
package report

import (
	"fmt"
	"io"
	"strings"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/spec"
)

// CSVHeader is the flat-CSV column list covering all three job
// modes. WriteCSV emits one header line followed by every sweep's
// rows.
const CSVHeader = "spec_sweep,mode,scenario,topology,params,routing,pattern,quality,seed,load," +
	"radix,diameter,avg_hops,area_overhead_pct,noc_power_w,zero_load_latency,saturation_pct," +
	"offered,accepted,avg_latency,p99_latency,delivered_fraction,sat_lower_bound"

// WriteCSV renders a whole campaign as one flat CSV: the header line,
// then every sweep's rows in expansion order. groups must align with
// the spec's ExpandSweeps output and results with the concatenated
// expansion (one entry per job, nil for failed jobs).
func WriteCSV(w io.Writer, s *spec.Spec, groups [][]exp.Job, results []*exp.Result) {
	fmt.Fprintln(w, CSVHeader)
	labels := s.Labels()
	off := 0
	for pi, g := range groups {
		WriteCSVRows(w, labels[pi], g, results[off:off+len(g)])
		off += len(g)
	}
}

// WriteCSVRows renders one sweep's rows of the flat CSV (no header).
func WriteCSVRows(w io.Writer, label string, jobs []exp.Job, results []*exp.Result) {
	for k, r := range results {
		if r == nil {
			continue
		}
		j := jobs[k]
		lower := 0
		if r.SaturationLowerBound {
			lower = 1
		}
		fmt.Fprintf(w, "%q,%s,%s,%s,%q,%s,%s,%s,%d,%g,%d,%d,%.4f,%.2f,%.3f,%.2f,%.2f,%.3f,%.3f,%.2f,%.2f,%.4f,%d\n",
			label, j.Mode, j.Scenario, r.Topology, r.Params, r.RoutingName, PatternName(j),
			QualityName(j), j.Seed, j.Load,
			r.RouterRadix, r.Diameter, r.AvgHops, r.AreaOverheadPct, r.NoCPowerW,
			r.ZeroLoadLatency, r.SaturationPct,
			r.OfferedRate, r.AcceptedRate, r.AvgPacketLatency, r.P99PacketLatency, r.DeliveredFraction,
			lower)
	}
}

// WriteSweepTable renders sweep pi of the spec as a markdown table
// keyed by the sweep's mode, preceded by a heading line and followed
// by a blank line — the shrun stdout format.
func WriteSweepTable(w io.Writer, s *spec.Spec, pi int, jobs []exp.Job, results []*exp.Result) {
	sw := s.Sweeps[pi]
	label := s.Labels()[pi]
	grid := ""
	if len(jobs) > 0 {
		if arch, err := spec.ArchForJob(jobs[0]); err == nil {
			grid = fmt.Sprintf(", %dx%d tiles", arch.Rows, arch.Cols)
		}
	}
	mode := sw.Mode
	if mode == "" {
		mode = string(exp.ModePredict)
	}
	fmt.Fprintf(w, "## %s / %s: scenario %s%s, mode %s\n\n", s.Name, label, sw.Arch.Scenario, grid, mode)
	var b strings.Builder
	switch exp.Mode(mode) {
	case exp.ModeLoad:
		fmt.Fprintf(&b, "| topology | params | routing | pattern | offered | accepted | avg lat | p99 lat | delivered |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---:|---:|---:|---:|---:|\n")
		for k, r := range results {
			if r == nil {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.3f | %.3f | %.1f | %.1f | %.3f |\n",
				r.Topology, r.Params, r.RoutingName, PatternName(jobs[k]),
				r.OfferedRate, r.AcceptedRate, r.AvgPacketLatency, r.P99PacketLatency, r.DeliveredFraction)
		}
	case exp.ModeCost:
		fmt.Fprintf(&b, "| topology | params | radix | diam | avg hops | area ovh %% | NoC power W |\n")
		fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---:|\n")
		for _, r := range results {
			if r == nil {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %.2f | %.1f | %.2f |\n",
				r.Topology, r.Params, r.RouterRadix, r.Diameter, r.AvgHops,
				r.AreaOverheadPct, r.NoCPowerW)
		}
	case exp.ModeSurrogate:
		fmt.Fprintf(&b, "| topology | params | routing | area ovh %% | NoC power W | analytic zero-load | analytic bound %% |\n")
		fmt.Fprintf(&b, "|---|---|---|---:|---:|---:|---:|\n")
		for _, r := range results {
			if r == nil {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %.1f | %.2f | %.1f | %.1f |\n",
				r.Topology, r.Params, r.RoutingName,
				r.AreaOverheadPct, r.NoCPowerW, r.AnalyticZeroLoad, r.AnalyticBoundPct)
		}
	default: // predict
		fmt.Fprintf(&b, "| topology | params | routing | area ovh %% | NoC power W | zero-load lat | saturation %% |\n")
		fmt.Fprintf(&b, "|---|---|---|---:|---:|---:|---:|\n")
		for _, r := range results {
			if r == nil {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %.1f | %.2f | %.1f | %s |\n",
				r.Topology, r.Params, r.RoutingName,
				r.AreaOverheadPct, r.NoCPowerW, r.ZeroLoadLatency,
				exp.FormatSaturation(r.SaturationPct, r.SaturationLowerBound))
		}
	}
	fmt.Fprint(w, b.String())
	fmt.Fprintln(w)
}

// PatternName renders a job's traffic pattern with the uniform
// default spelled out.
func PatternName(j exp.Job) string {
	if j.Pattern == "" {
		return "uniform"
	}
	return j.Pattern
}

// QualityName renders a job's quality with the quick default spelled
// out.
func QualityName(j exp.Job) string {
	if j.Quality == "" {
		return "quick"
	}
	return j.Quality
}
