// Package perf is the benchmark bookkeeping behind BENCH_sim.json:
// it measures wall-clock time and allocation deltas around benchmark
// loops (Meter), collects one entry per benchmark across the varying
// iteration counts the testing framework probes (Recorder), and
// appends the final entries to a JSON trajectory file so every
// benchmark run extends the repository's recorded perf history.
//
// The file format is a JSON array of Entry values, newest last.
// Entries are append-only: comparing the first and last entry of a
// benchmark name shows the speedup history across PRs.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// DefaultPathEnv names the environment variable overriding the
// trajectory file location.
const DefaultPathEnv = "BENCH_SIM_JSON"

// DefaultPath returns the trajectory file path: $BENCH_SIM_JSON when
// set, BENCH_sim.json in the current directory otherwise.
func DefaultPath() string {
	if p := os.Getenv(DefaultPathEnv); p != "" {
		return p
	}
	return "BENCH_sim.json"
}

// Entry is one benchmark measurement in the trajectory file.
type Entry struct {
	// Bench names the benchmark (e.g. "Figure6a").
	Bench string `json:"bench"`
	// When is the measurement time in RFC 3339 UTC.
	When string `json:"when,omitempty"`
	// Iters is the benchmark iteration count the numbers average over.
	Iters int `json:"iters,omitempty"`

	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// CyclesPerSec is simulated router-cycles per wall-clock second;
	// NsPerFlit is wall-clock nanoseconds per simulated flit movement.
	// Both are zero for benchmarks that do not simulate.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	NsPerFlit    float64 `json:"ns_per_flit,omitempty"`

	// Metrics carries benchmark-specific extras (saturation
	// percentages, error rates, ...), mirroring b.ReportMetric.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Note is free-form provenance ("pre-optimization baseline", the
	// CI run ID, ...).
	Note string `json:"note,omitempty"`

	// Host identifies the machine and toolchain behind the numbers.
	Host *Host `json:"host,omitempty"`
}

// Host is the measurement environment recorded with each entry:
// ns/op deltas across entries only mean something when the entries
// come from comparable machines, and the trajectory file spans many
// sessions.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost snapshots the running process's environment.
func CurrentHost() *Host {
	return &Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Meter measures one benchmark invocation: wall-clock time and the
// allocation counters of the current goroutine's runtime.
type Meter struct {
	start   time.Time
	mallocs uint64
	bytes   uint64
}

// StartMeter snapshots the clock and the allocation counters.
func StartMeter() *Meter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Meter{start: time.Now(), mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// Elapsed returns the wall-clock time since StartMeter.
func (m *Meter) Elapsed() time.Duration { return time.Since(m.start) }

// Done finalizes the measurement into an Entry averaging over iters
// iterations. Allocation numbers are process-wide deltas, so they
// include GC and runtime noise; for benchmarks dominated by their
// workload this matches -benchmem closely.
func (m *Meter) Done(bench string, iters int) Entry {
	elapsed := time.Since(m.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if iters < 1 {
		iters = 1
	}
	return Entry{
		Bench:       bench,
		When:        time.Now().UTC().Format(time.RFC3339),
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(ms.TotalAlloc-m.bytes) / float64(iters),
		AllocsPerOp: float64(ms.Mallocs-m.mallocs) / float64(iters),
		Host:        CurrentHost(),
	}
}

// Recorder collects the latest Entry per benchmark name. Benchmarks
// run their body several times while the framework calibrates b.N;
// Set keeps only the last (highest-N) measurement, and Flush appends
// everything recorded to the trajectory file in first-set order.
type Recorder struct {
	mu     sync.Mutex
	byName map[string]int
	list   []Entry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{byName: make(map[string]int)}
}

// Set records e, replacing any earlier entry with the same Bench.
func (r *Recorder) Set(e Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[e.Bench]; ok {
		r.list[i] = e
		return
	}
	r.byName[e.Bench] = len(r.list)
	r.list = append(r.list, e)
}

// Entries returns a copy of the recorded entries in first-set order.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.list))
	copy(out, r.list)
	return out
}

// Flush appends the recorded entries to the trajectory file at path;
// it is a no-op when nothing was recorded.
func (r *Recorder) Flush(path string) error {
	entries := r.Entries()
	if len(entries) == 0 {
		return nil
	}
	return Append(path, entries...)
}

// Load reads the trajectory file at path. A missing file is an empty
// trajectory, not an error.
func Load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return entries, nil
}

// Delta compares the two newest entries of one benchmark in a
// trajectory.
type Delta struct {
	// Bench names the benchmark.
	Bench string
	// OldNs and NewNs are the second-newest and newest ns/op.
	OldNs, NewNs float64
	// Pct is the relative change in percent (positive = slower).
	Pct float64
}

// Regressions compares, per benchmark name, the newest trajectory
// entry against the one before it and returns the benchmarks whose
// ns/op regressed by more than pct percent, in first-appearance
// order. Benchmarks with fewer than two entries, or without ns/op
// figures, are skipped. CI runs this as a non-blocking annotation
// step over BENCH_sim.json.
func Regressions(entries []Entry, pct float64) []Delta {
	return FreshRegressions(entries, pct, time.Time{})
}

// FreshRegressions is Regressions restricted to benchmarks whose
// newest entry is timestamped at or after cutoff. CI uses it so the
// comparison only covers benchmarks the current run actually
// refreshed — trajectory pairs recorded in other sessions (often on
// differently-loaded machines) would otherwise warn on every
// unrelated run. A zero cutoff disables the filter; entries without
// a parseable timestamp count as stale under a non-zero one.
func FreshRegressions(entries []Entry, pct float64, cutoff time.Time) []Delta {
	type last2 struct {
		prev, last float64
		when       string
	}
	byName := map[string]*last2{}
	var order []string
	for _, e := range entries {
		if e.NsPerOp <= 0 {
			continue
		}
		l, ok := byName[e.Bench]
		if !ok {
			l = &last2{}
			byName[e.Bench] = l
			order = append(order, e.Bench)
		}
		l.prev, l.last = l.last, e.NsPerOp
		l.when = e.When
	}
	var out []Delta
	for _, name := range order {
		l := byName[name]
		if l.prev <= 0 {
			continue
		}
		if !cutoff.IsZero() {
			ts, err := time.Parse(time.RFC3339, l.when)
			if err != nil || ts.Before(cutoff) {
				continue
			}
		}
		change := 100 * (l.last - l.prev) / l.prev
		if change > pct {
			out = append(out, Delta{Bench: name, OldNs: l.prev, NewNs: l.last, Pct: change})
		}
	}
	return out
}

// Floor is a minimum requirement on a benchmark metric: the newest
// trajectory entry of Bench must record Metric at Min or above.
type Floor struct {
	Bench  string
	Metric string
	Min    float64
}

// BuiltinFloors returns the repository's standing metric floors —
// quality guarantees benchmarks must keep, as opposed to the advisory
// ns/op history. The surrogate DSE floors pin the two-stage
// explorer's contract: the band must save at least 5x the simulations
// of an exhaustive sweep while recalling the entire validated
// frontier. The engine floor pins the structure-of-arrays core's
// speed advantage over the retained array-of-structs reference engine
// on the mixed zero-load-plus-probe workload real campaigns run.
func BuiltinFloors() []Floor {
	return []Floor{
		{Bench: "DSESurrogate", Metric: "dse_sims_saved_x", Min: 5},
		{Bench: "DSESurrogate", Metric: "frontier_recall", Min: 1},
		{Bench: "EngineSoASpeedup", Metric: "soa_speedup_x", Min: 1.5},
	}
}

// FloorViolation is one floored metric found below its minimum.
type FloorViolation struct {
	Floor
	// Got is the metric's value in the newest entry.
	Got float64
}

// FloorViolations checks the newest entry of each floored benchmark
// against the floors. Benchmarks absent from the trajectory, entries
// without the floored metric, and — under a non-zero cutoff, as in
// FreshRegressions — entries older than the cutoff are skipped: the
// floors guard runs that actually measured the metric, they do not
// demand every run measure it.
func FloorViolations(entries []Entry, floors []Floor, cutoff time.Time) []FloorViolation {
	newest := map[string]*Entry{}
	for i := range entries {
		newest[entries[i].Bench] = &entries[i]
	}
	var out []FloorViolation
	for _, f := range floors {
		e, ok := newest[f.Bench]
		if !ok {
			continue
		}
		if !cutoff.IsZero() {
			ts, err := time.Parse(time.RFC3339, e.When)
			if err != nil || ts.Before(cutoff) {
				continue
			}
		}
		got, ok := e.Metrics[f.Metric]
		if !ok {
			continue
		}
		if got < f.Min {
			out = append(out, FloorViolation{Floor: f, Got: got})
		}
	}
	return out
}

// Append loads the trajectory at path, appends the entries, and
// writes it back atomically (write to a temporary file, then rename).
func Append(path string, entries ...Entry) error {
	existing, err := Load(path)
	if err != nil {
		return err
	}
	all := append(existing, entries...)
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return nil
}
