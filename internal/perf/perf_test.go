package perf

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAppendAndLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// Missing file loads as empty.
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load(missing): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Load(missing) = %d entries, want 0", len(got))
	}

	e1 := Entry{Bench: "A", NsPerOp: 100, Note: "baseline"}
	e2 := Entry{Bench: "A", NsPerOp: 50, CyclesPerSec: 1e6,
		Metrics: map[string]float64{"sat_%": 67.2}}
	if err := Append(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2 (append must preserve history)", len(got))
	}
	if got[0].Note != "baseline" || got[1].NsPerOp != 50 {
		t.Errorf("entries out of order or mangled: %+v", got)
	}
	if got[1].Metrics["sat_%"] != 67.2 {
		t.Errorf("metrics map lost: %+v", got[1])
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt file loaded without error")
	}
}

func TestMeterMeasures(t *testing.T) {
	m := StartMeter()
	var sink []byte
	for i := 0; i < 10; i++ {
		sink = make([]byte, 1<<16)
		time.Sleep(time.Millisecond)
	}
	_ = sink
	e := m.Done("meter", 10)
	if e.NsPerOp < float64(time.Millisecond.Nanoseconds()) {
		t.Errorf("ns/op %v below the 1ms sleep floor", e.NsPerOp)
	}
	if e.AllocsPerOp < 1 {
		t.Errorf("allocs/op %v did not see the allocations", e.AllocsPerOp)
	}
	if e.Iters != 10 || e.Bench != "meter" || e.When == "" {
		t.Errorf("entry metadata wrong: %+v", e)
	}
}

func TestRecorderKeepsLatestPerBench(t *testing.T) {
	r := NewRecorder()
	r.Set(Entry{Bench: "A", NsPerOp: 1})
	r.Set(Entry{Bench: "B", NsPerOp: 2})
	r.Set(Entry{Bench: "A", NsPerOp: 3}) // recalibrated run replaces
	got := r.Entries()
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	if got[0].Bench != "A" || got[0].NsPerOp != 3 || got[1].Bench != "B" {
		t.Errorf("recorder order/replacement wrong: %+v", got)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.Flush(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 2 {
		t.Fatalf("flushed %d entries, want 2", len(onDisk))
	}

	// Flushing an empty recorder touches nothing.
	empty := NewRecorder()
	missing := filepath.Join(t.TempDir(), "untouched.json")
	if err := empty.Flush(missing); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Error("empty flush created a file")
	}
}
