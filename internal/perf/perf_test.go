package perf

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAppendAndLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// Missing file loads as empty.
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load(missing): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Load(missing) = %d entries, want 0", len(got))
	}

	e1 := Entry{Bench: "A", NsPerOp: 100, Note: "baseline"}
	e2 := Entry{Bench: "A", NsPerOp: 50, CyclesPerSec: 1e6,
		Metrics: map[string]float64{"sat_%": 67.2}}
	if err := Append(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2 (append must preserve history)", len(got))
	}
	if got[0].Note != "baseline" || got[1].NsPerOp != 50 {
		t.Errorf("entries out of order or mangled: %+v", got)
	}
	if got[1].Metrics["sat_%"] != 67.2 {
		t.Errorf("metrics map lost: %+v", got[1])
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt file loaded without error")
	}
}

func TestMeterMeasures(t *testing.T) {
	m := StartMeter()
	var sink []byte
	for i := 0; i < 10; i++ {
		sink = make([]byte, 1<<16)
		time.Sleep(time.Millisecond)
	}
	_ = sink
	e := m.Done("meter", 10)
	if e.NsPerOp < float64(time.Millisecond.Nanoseconds()) {
		t.Errorf("ns/op %v below the 1ms sleep floor", e.NsPerOp)
	}
	if e.AllocsPerOp < 1 {
		t.Errorf("allocs/op %v did not see the allocations", e.AllocsPerOp)
	}
	if e.Iters != 10 || e.Bench != "meter" || e.When == "" {
		t.Errorf("entry metadata wrong: %+v", e)
	}
	if e.Host == nil {
		t.Fatal("Done did not record host metadata")
	}
	if e.Host.GoVersion == "" || e.Host.GOOS == "" || e.Host.GOARCH == "" {
		t.Errorf("host toolchain fields empty: %+v", e.Host)
	}
	if e.Host.NumCPU < 1 || e.Host.GOMAXPROCS < 1 {
		t.Errorf("host CPU fields not positive: %+v", e.Host)
	}
}

func TestRecorderKeepsLatestPerBench(t *testing.T) {
	r := NewRecorder()
	r.Set(Entry{Bench: "A", NsPerOp: 1})
	r.Set(Entry{Bench: "B", NsPerOp: 2})
	r.Set(Entry{Bench: "A", NsPerOp: 3}) // recalibrated run replaces
	got := r.Entries()
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	if got[0].Bench != "A" || got[0].NsPerOp != 3 || got[1].Bench != "B" {
		t.Errorf("recorder order/replacement wrong: %+v", got)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.Flush(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 2 {
		t.Fatalf("flushed %d entries, want 2", len(onDisk))
	}

	// Flushing an empty recorder touches nothing.
	empty := NewRecorder()
	missing := filepath.Join(t.TempDir(), "untouched.json")
	if err := empty.Flush(missing); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Error("empty flush created a file")
	}
}

func TestRegressions(t *testing.T) {
	entries := []Entry{
		{Bench: "A", NsPerOp: 100},
		{Bench: "B", NsPerOp: 200},
		{Bench: "A", NsPerOp: 130}, // +30%: regression
		{Bench: "B", NsPerOp: 210}, // +5%: inside threshold
		{Bench: "C", NsPerOp: 999}, // single entry: skipped
		{Bench: "D"},               // no ns/op: skipped
	}
	regs := Regressions(entries, 15)
	if len(regs) != 1 || regs[0].Bench != "A" {
		t.Fatalf("regressions = %+v, want one entry for A", regs)
	}
	if regs[0].Pct < 29.9 || regs[0].Pct > 30.1 {
		t.Errorf("pct = %v, want ~30", regs[0].Pct)
	}
	// Improvements never warn.
	if regs := Regressions([]Entry{{Bench: "A", NsPerOp: 100}, {Bench: "A", NsPerOp: 50}}, 15); len(regs) != 0 {
		t.Errorf("improvement flagged: %+v", regs)
	}
	// Three entries: only the two newest are compared.
	regs = Regressions([]Entry{
		{Bench: "A", NsPerOp: 500},
		{Bench: "A", NsPerOp: 100},
		{Bench: "A", NsPerOp: 110},
	}, 15)
	if len(regs) != 0 {
		t.Errorf("10%% step over newest pair flagged: %+v", regs)
	}
}

func TestFreshRegressions(t *testing.T) {
	entries := []Entry{
		{Bench: "stale", NsPerOp: 100, When: "2020-01-01T00:00:00Z"},
		{Bench: "stale", NsPerOp: 200, When: "2020-01-02T00:00:00Z"},
		{Bench: "fresh", NsPerOp: 100, When: "2020-01-01T00:00:00Z"},
		{Bench: "fresh", NsPerOp: 200, When: time.Now().UTC().Format(time.RFC3339)},
		{Bench: "unstamped", NsPerOp: 100},
		{Bench: "unstamped", NsPerOp: 200},
	}
	regs := FreshRegressions(entries, 15, time.Now().Add(-time.Hour))
	if len(regs) != 1 || regs[0].Bench != "fresh" {
		t.Fatalf("fresh regressions = %+v, want only the fresh bench", regs)
	}
	// Zero cutoff compares everything.
	if regs := FreshRegressions(entries, 15, time.Time{}); len(regs) != 3 {
		t.Errorf("unfiltered regressions = %+v, want all three", regs)
	}
}

func TestFloorViolations(t *testing.T) {
	floors := []Floor{
		{Bench: "DSE", Metric: "saved_x", Min: 5},
		{Bench: "DSE", Metric: "recall", Min: 1},
		{Bench: "Absent", Metric: "x", Min: 1},
	}
	now := time.Now().UTC().Format(time.RFC3339)
	entries := []Entry{
		// Older entry violates, but only the newest counts.
		{Bench: "DSE", When: now, Metrics: map[string]float64{"saved_x": 2, "recall": 1}},
		{Bench: "DSE", When: now, Metrics: map[string]float64{"saved_x": 6.5, "recall": 0.9}},
	}
	viol := FloorViolations(entries, floors, time.Time{})
	if len(viol) != 1 || viol[0].Metric != "recall" || viol[0].Got != 0.9 {
		t.Fatalf("violations = %+v, want only recall 0.9", viol)
	}
	// A metric absent from the newest entry is skipped, not violated.
	entries[1].Metrics = map[string]float64{"saved_x": 6.5}
	if viol := FloorViolations(entries, floors, time.Time{}); len(viol) != 0 {
		t.Errorf("missing metric flagged: %+v", viol)
	}
	// Stale entries are skipped under a cutoff.
	entries[1].Metrics = map[string]float64{"saved_x": 2}
	entries[1].When = "2020-01-01T00:00:00Z"
	if viol := FloorViolations(entries, floors, time.Now().Add(-time.Hour)); len(viol) != 0 {
		t.Errorf("stale entry flagged: %+v", viol)
	}
}

func TestBuiltinFloorsCoverDSE(t *testing.T) {
	var saved, recall bool
	for _, f := range BuiltinFloors() {
		if f.Bench != "DSESurrogate" {
			continue
		}
		switch f.Metric {
		case "dse_sims_saved_x":
			saved = f.Min >= 5
		case "frontier_recall":
			recall = f.Min >= 1
		}
	}
	if !saved || !recall {
		t.Fatalf("builtin floors missing the DSE contract: %+v", BuiltinFloors())
	}
}
