package cli

import (
	"fmt"
	"os"

	"sparsehamming/internal/exp"
)

// Campaign bundles the CLI-side experiment-campaign plumbing shared
// by shsweep, shdse, and shpredict: opening the on-disk cache with a
// corruption warning, hooking the stderr report line, and persisting
// the cache with hit statistics on exit — on error exits too, so a
// failed sweep keeps every result it already computed.
type Campaign struct {
	prog  string
	cache *exp.Cache
}

// StartCampaign wires a runner for CLI use: attaches the cache at
// cachePath (empty for none), an optional per-job progress log, and
// the campaign report line, all prefixed with the program name on
// stderr.
func StartCampaign(prog, cachePath string, runner *exp.Runner, progress bool) *Campaign {
	c := &Campaign{prog: prog}
	if cachePath != "" {
		cache, err := exp.OpenCache(cachePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: warning: %v\n", prog, err)
		}
		c.cache = cache
		runner.Cache = cache
	}
	if progress {
		runner.Progress = exp.LogProgress(os.Stderr)
	}
	runner.OnReport = func(rep exp.Report) {
		fmt.Fprintf(os.Stderr, "%s: campaign: %s\n", prog, rep)
	}
	return c
}

// Close prints cache statistics and persists the cache. Call it
// before every exit path, success and failure alike (os.Exit skips
// defers, so the fatal paths must call it explicitly).
func (c *Campaign) Close() {
	if c.cache == nil {
		return
	}
	hits, misses := c.cache.Stats()
	fmt.Fprintf(os.Stderr, "%s: cache: %d hits, %d misses, %d entries\n",
		c.prog, hits, misses, c.cache.Len())
	if err := c.cache.Save(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: warning: %v\n", c.prog, err)
	}
}
