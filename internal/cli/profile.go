package cli

// Profiling support for the campaign CLIs: shrun and shsweep expose
// -cpuprofile/-memprofile flags that bracket campaign execution with
// pprof collection, so a slow campaign can be profiled without
// rebuilding anything (go tool pprof <binary> <file>).

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler writes pprof profiles around a campaign run. The zero
// value is inert; create with StartProfiles.
type Profiler struct {
	prog    string
	cpuFile *os.File
	memPath string
}

// StartProfiles begins CPU profiling into cpuPath (empty for none)
// and remembers memPath for a heap profile at Stop (empty for none).
// Errors are reported on stderr and disable the affected profile
// rather than failing the campaign.
func StartProfiles(prog, cpuPath, memPath string) *Profiler {
	p := &Profiler{prog: prog, memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", prog, err)
		} else if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", prog, err)
			f.Close()
		} else {
			p.cpuFile = f
		}
	}
	return p
}

// Stop finishes the CPU profile and writes the heap profile. Like
// Campaign.Close it must be called on every exit path (os.Exit skips
// defers), and calling it twice is safe.
func (p *Profiler) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.prog, err)
		} else {
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.prog, err)
			}
			f.Close()
		}
		p.memPath = ""
	}
}
