package cli

import (
	"io"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/obs"
)

// DumpMetrics writes a one-shot Prometheus text exposition of the
// simulator, runner, and cache series to w — the local-CLI
// counterpart of shserved's GET /metrics, behind the shrun/shsweep
// -metrics flag. The cache series come from runner.Cache as attached
// at call time, so call it after StartCampaign.
func DumpMetrics(w io.Writer, runner *exp.Runner) error {
	m := obs.NewRegistry()
	noc.RegisterMetrics(m, runner, runner.Cache)
	return m.WritePrometheus(w)
}
