// Package cli holds the small helpers shared by the command-line
// tools in cmd/: topology construction by name and comma-separated
// integer list parsing.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"sparsehamming/internal/topo"
)

// TopologyNames lists the kinds accepted by BuildTopology: the topo
// registry's names, in registration order (the paper's Table I order,
// plus the Ruche network from the related-work comparison).
func TopologyNames() []string {
	return topo.Names()
}

// BuildTopology constructs a topology by kind name. The sr and sc
// strings hold comma-separated sparse Hamming offsets (ignored by the
// other kinds, except ruche, which takes its factor from the first
// value of sr).
func BuildTopology(kind string, rows, cols int, sr, sc string) (*topo.Topology, error) {
	srs, err := ParseInts(sr)
	if err != nil {
		return nil, fmt.Errorf("-sr: %w", err)
	}
	scs, err := ParseInts(sc)
	if err != nil {
		return nil, fmt.Errorf("-sc: %w", err)
	}
	return Build(kind, rows, cols, srs, scs)
}

// Build constructs a topology by kind name from parsed offset lists —
// the programmatic counterpart of BuildTopology, dispatching through
// the topo registry.
func Build(kind string, rows, cols int, sr, sc []int) (*topo.Topology, error) {
	return topo.ByName(kind, rows, cols, sr, sc)
}

// ParseInts parses a comma-separated integer list; empty input yields
// nil.
func ParseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
