package cli

import (
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"4", []int{4}, false},
		{"2,4", []int{2, 4}, false},
		{" 2 , 5 ", []int{2, 5}, false},
		{"2,,4", nil, true},
		{"x", nil, true},
	}
	for _, c := range cases {
		got, err := ParseInts(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseInts(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseInts(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestBuildTopologyAllKinds(t *testing.T) {
	for _, kind := range TopologyNames() {
		rows, cols := 8, 8
		if kind == "slimnoc" {
			cols = 16
		}
		tp, err := BuildTopology(kind, rows, cols, "2", "3")
		if err != nil {
			t.Errorf("BuildTopology(%s): %v", kind, err)
			continue
		}
		if tp.NumTiles() != rows*cols {
			t.Errorf("%s: %d tiles", kind, tp.NumTiles())
		}
	}
}

func TestBuildTopologyErrors(t *testing.T) {
	if _, err := BuildTopology("nope", 4, 4, "", ""); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := BuildTopology("sparse-hamming", 4, 4, "x", ""); err == nil {
		t.Error("bad -sr accepted")
	}
	if _, err := BuildTopology("sparse-hamming", 4, 4, "", "y"); err == nil {
		t.Error("bad -sc accepted")
	}
	if _, err := BuildTopology("hypercube", 6, 6, "", ""); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
}

func TestBuildRucheFactor(t *testing.T) {
	r, err := BuildTopology("ruche", 8, 8, "3", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "ruche" {
		t.Errorf("kind = %s", r.Kind)
	}
	// Default factor 2 when -sr empty.
	r2, err := BuildTopology("ruche", 8, 8, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if r2.MaxRadix() <= 4 {
		t.Error("default ruche factor should add links")
	}
}
