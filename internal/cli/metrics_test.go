package cli

import (
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
)

// TestDumpMetricsStable pins the shrun/shsweep -metrics contract: the
// dump covers the simulator, runner, and cache series, and two dumps
// with no work between them are byte-identical (deterministic series
// ordering, scrape-time sampling).
func TestDumpMetricsStable(t *testing.T) {
	runner := noc.NewRunner(1, exp.NewCache())
	jobs := []exp.Job{{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}}
	if _, _, err := runner.Run(jobs); err != nil {
		t.Fatal(err)
	}

	var a, b strings.Builder
	if err := DumpMetrics(&a, runner); err != nil {
		t.Fatal(err)
	}
	if err := DumpMetrics(&b, runner); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("back-to-back dumps differ:\n%s\n----\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		"sh_sim_runs_total", "sh_sim_verdicts_total",
		"sh_runner_batches_total", "sh_runner_workers",
		"sh_cache_entries",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("dump missing %s", want)
		}
	}
	if !strings.Contains(a.String(), `sh_runner_jobs_total{outcome="computed"} 1`) {
		t.Errorf("dump did not count the computed job:\n%s", a.String())
	}
}
