// Package viz renders topologies and floorplans as ASCII art, the
// repository's stand-in for the paper's Figures 1, 2, and 5. The
// drawings are meant for quick visual inspection in a terminal:
// tiles are boxes, aligned links are drawn in the channels between
// them, and non-aligned links are listed separately.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"sparsehamming/internal/phys"
	"sparsehamming/internal/topo"
)

// Topology draws the tile grid with its aligned links. Horizontal
// links of grid length one are drawn as "--", longer ones as arcs
// listed under the grid; vertical unit links as "|". Returns a
// multi-line string.
func Topology(t *topo.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %dx%d  %d links  radix %d  diameter %d\n\n",
		t.Kind, t.Rows, t.Cols, t.NumLinks(), t.MaxRadix(), t.Diameter())

	// Cell layout: each tile is 4 characters wide ("[r,c]" shortened
	// to "[]"), separated by link markers.
	for r := 0; r < t.Rows; r++ {
		// Tile row with horizontal unit links.
		for c := 0; c < t.Cols; c++ {
			fmt.Fprintf(&b, "[]")
			if c+1 < t.Cols {
				if t.HasLink(topo.Coord{Row: r, Col: c}, topo.Coord{Row: r, Col: c + 1}) {
					b.WriteString("--")
				} else {
					b.WriteString("  ")
				}
			}
		}
		b.WriteByte('\n')
		// Vertical unit links to the next row.
		if r+1 < t.Rows {
			for c := 0; c < t.Cols; c++ {
				if t.HasLink(topo.Coord{Row: r, Col: c}, topo.Coord{Row: r + 1, Col: c}) {
					b.WriteString("| ")
				} else {
					b.WriteString("  ")
				}
				if c+1 < t.Cols {
					b.WriteString("  ")
				}
			}
			b.WriteByte('\n')
		}
	}

	// Longer links, grouped by length.
	long := map[int][]topo.Link{}
	for _, l := range t.Links() {
		if l.GridLength() > 1 {
			long[l.GridLength()] = append(long[l.GridLength()], l)
		}
	}
	if len(long) > 0 {
		b.WriteByte('\n')
		lengths := make([]int, 0, len(long))
		for k := range long {
			lengths = append(lengths, k)
		}
		sort.Ints(lengths)
		for _, k := range lengths {
			links := long[k]
			fmt.Fprintf(&b, "length-%d links (%d): ", k, len(links))
			max := 8
			for i, l := range links {
				if i == max {
					fmt.Fprintf(&b, "... (%d more)", len(links)-max)
					break
				}
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%v-%v", l.A, l.B)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Floorplan summarizes the physical model's channel structure: the
// track count of every routing channel, as produced by the global
// router (Figure 5c).
func Floorplan(res *phys.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chip %.2f x %.2f mm, tiles %.2f x %.2f mm, unit cell %.1f x %.1f um\n",
		res.ChipWidthMm, res.ChipHeightMm, res.TileWidthMm, res.TileHeightMm,
		1000*res.CellWidthMm, 1000*res.CellHeightMm)
	fmt.Fprintf(&b, "area %.1f mm2 (overhead %.1f%%), power %.1f W (NoC %.1f W)\n",
		res.TotalAreaMm2, 100*res.AreaOverhead, res.TotalPowerW, res.NoCPowerW)
	fmt.Fprintf(&b, "horizontal channel tracks: %v\n", res.HChanTracks)
	fmt.Fprintf(&b, "vertical channel tracks:   %v\n", res.VChanTracks)
	fmt.Fprintf(&b, "channel utilization %.2f, collisions %d\n",
		res.ChannelUtilization, res.Collisions)
	return b.String()
}

// ChannelMap draws the routing-channel structure of a floorplan as a
// grid: tiles are "[]" and the numbers between them are the track
// counts of the horizontal and vertical channels (the spacing driver
// of step 3, Figure 5c). Channels needing no tracks print as spaces,
// making density imbalances (criterion ULD) visible at a glance.
func ChannelMap(res *phys.Result) string {
	var b strings.Builder
	rows := len(res.HChanTracks) - 1
	cols := len(res.VChanTracks) - 1
	num := func(n int) string {
		if n == 0 {
			return "  "
		}
		return fmt.Sprintf("%2d", n)
	}
	for r := 0; r <= rows; r++ {
		// Horizontal channel above row r: one number per tile column.
		for c := 0; c < cols; c++ {
			fmt.Fprintf(&b, "  %s ", num(res.HChanTracks[r]))
		}
		b.WriteByte('\n')
		if r == rows {
			break
		}
		// Tile row with vertical channel counts between tiles.
		for c := 0; c <= cols; c++ {
			fmt.Fprintf(&b, "%s", num(res.VChanTracks[c]))
			if c < cols {
				b.WriteString("[]")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT exports the topology in Graphviz format for external rendering.
func DOT(t *topo.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", t.Kind)
	b.WriteString("  node [shape=box];\n")
	for i := 0; i < t.NumTiles(); i++ {
		c := t.CoordOf(i)
		fmt.Fprintf(&b, "  t%d [label=\"%d,%d\" pos=\"%d,%d!\"];\n", i, c.Row, c.Col, c.Col, -c.Row)
	}
	for _, l := range t.Links() {
		fmt.Fprintf(&b, "  t%d -- t%d;\n", t.Index(l.A), t.Index(l.B))
	}
	b.WriteString("}\n")
	return b.String()
}
