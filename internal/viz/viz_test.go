package viz

import (
	"strings"
	"testing"

	"sparsehamming/internal/phys"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

func TestTopologyMesh(t *testing.T) {
	m, err := topo.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Topology(m)
	if !strings.Contains(s, "mesh") || !strings.Contains(s, "3x3") {
		t.Errorf("header missing: %s", s)
	}
	// 3x3 mesh: every horizontal neighbor pair drawn.
	if strings.Count(s, "--") != 6 {
		t.Errorf("expected 6 horizontal links, got %d in:\n%s", strings.Count(s, "--"), s)
	}
	if strings.Count(s, "|") != 6 {
		t.Errorf("expected 6 vertical links, got %d in:\n%s", strings.Count(s, "|"), s)
	}
	if strings.Contains(s, "length-") {
		t.Error("mesh should have no long links")
	}
}

func TestTopologyLongLinks(t *testing.T) {
	sh, err := topo.NewSparseHamming(4, 4, topo.HammingParams{SR: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	s := Topology(sh)
	if !strings.Contains(s, "length-2 links (8)") {
		t.Errorf("long links not listed:\n%s", s)
	}
}

func TestFloorplan(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	m, _ := topo.NewMesh(8, 8)
	res, err := phys.Evaluate(arch, m)
	if err != nil {
		t.Fatal(err)
	}
	s := Floorplan(res)
	for _, want := range []string{"chip", "overhead", "tracks", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("floorplan missing %q:\n%s", want, s)
		}
	}
}

func TestChannelMap(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	sh, err := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{4}, SC: []int{2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := phys.Evaluate(arch, sh)
	if err != nil {
		t.Fatal(err)
	}
	s := ChannelMap(res)
	if !strings.Contains(s, "[]") {
		t.Error("no tiles drawn")
	}
	// SHG has long row and column links, so some track numbers appear.
	hasDigit := false
	for _, r := range s {
		if r >= '1' && r <= '9' {
			hasDigit = true
			break
		}
	}
	if !hasDigit {
		t.Errorf("no track counts rendered:\n%s", s)
	}
	// 8 tile rows + 9 channel rows of output.
	if got := strings.Count(s, "\n"); got != 17 {
		t.Errorf("channel map has %d lines, want 17", got)
	}
}

func TestDOT(t *testing.T) {
	m, _ := topo.NewMesh(2, 2)
	s := DOT(m)
	if !strings.HasPrefix(s, "graph \"mesh\"") {
		t.Errorf("bad DOT header: %s", s)
	}
	if strings.Count(s, " -- ") != 4 {
		t.Errorf("2x2 mesh has 4 links, DOT shows %d", strings.Count(s, " -- "))
	}
	if !strings.Contains(s, "t0 [label=\"0,0\"") {
		t.Error("node labels missing")
	}
}
