// Package graphalg provides graph algorithms used across the toolchain:
// breadth-first search, all-pairs shortest paths, diameter and average
// distance computation, connectivity checks, and cycle detection on
// directed graphs (used to verify deadlock freedom of routing functions
// via channel dependency graphs).
//
// Graphs are represented as adjacency lists over integer vertex IDs in
// [0, n). All algorithms are deterministic.
package graphalg

// Graph is an adjacency-list representation of a graph over vertices
// 0..n-1. For undirected graphs, each edge appears in both endpoint
// lists. The zero value is an empty graph.
type Graph struct {
	adj [][]int
}

// NewGraph returns a graph with n vertices and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// AddEdge adds a directed edge u -> v. For undirected use, call twice.
func (g *Graph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], v)
}

// AddUndirected adds edges u -> v and v -> u.
func (g *Graph) AddUndirected(u, v int) {
	g.AddEdge(u, v)
	g.AddEdge(v, u)
}

// Neighbors returns the out-neighbors of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// BFS returns the hop distance from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, len(g.adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// APSP returns the all-pairs hop-distance matrix computed by running a
// BFS from every vertex. Unreachable pairs have distance -1.
func (g *Graph) APSP() [][]int {
	n := len(g.adj)
	d := make([][]int, n)
	for i := 0; i < n; i++ {
		d[i] = g.BFS(i)
	}
	return d
}

// Diameter returns the maximum finite hop distance between any pair of
// vertices, and whether the graph is connected. For a disconnected
// graph, the diameter of the largest reachable set is NOT returned;
// instead ok is false and the maximum over reachable pairs is returned.
func (g *Graph) Diameter() (diam int, ok bool) {
	ok = true
	for i := 0; i < len(g.adj); i++ {
		dist := g.BFS(i)
		for _, d := range dist {
			if d < 0 {
				ok = false
				continue
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, ok
}

// AverageDistance returns the mean hop distance over all ordered pairs
// of distinct, mutually reachable vertices. It returns 0 for graphs
// with fewer than two vertices.
func (g *Graph) AverageDistance() float64 {
	n := len(g.adj)
	if n < 2 {
		return 0
	}
	var sum, cnt int64
	for i := 0; i < n; i++ {
		dist := g.BFS(i)
		for j, d := range dist {
			if j != i && d > 0 {
				sum += int64(d)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// Connected reports whether every vertex is reachable from vertex 0.
// An empty graph is considered connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// HasCycle reports whether the directed graph contains a cycle, using
// iterative three-color depth-first search.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.adj))
	type frame struct {
		u   int
		idx int
	}
	for s := 0; s < len(g.adj); s++ {
		if color[s] != white {
			continue
		}
		stack := []frame{{u: s}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.u]) {
				v := g.adj[f.u][f.idx]
				f.idx++
				switch color[v] {
				case gray:
					return true
				case white:
					color[v] = gray
					stack = append(stack, frame{u: v})
				}
			} else {
				color[f.u] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}

// WeightedGraph is an adjacency-list graph with float64 edge weights,
// used for physical-distance shortest paths.
type WeightedGraph struct {
	adj [][]WEdge
}

// WEdge is a weighted directed edge to vertex To with weight W.
type WEdge struct {
	To int
	W  float64
}

// NewWeightedGraph returns a weighted graph with n vertices.
func NewWeightedGraph(n int) *WeightedGraph {
	return &WeightedGraph{adj: make([][]WEdge, n)}
}

// NumVertices returns the number of vertices.
func (g *WeightedGraph) NumVertices() int { return len(g.adj) }

// AddEdge adds a directed edge u -> v with weight w.
func (g *WeightedGraph) AddEdge(u, v int, w float64) {
	g.adj[u] = append(g.adj[u], WEdge{To: v, W: w})
}

// AddUndirected adds edges in both directions with weight w.
func (g *WeightedGraph) AddUndirected(u, v int, w float64) {
	g.AddEdge(u, v, w)
	g.AddEdge(v, u, w)
}

// Dijkstra returns the minimum total weight from src to every vertex
// (+Inf encoded as -1 is avoided; unreachable vertices get
// math.MaxFloat64). Weights must be non-negative.
func (g *WeightedGraph) Dijkstra(src int) []float64 {
	const inf = 1e308
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	h := &heapF{}
	h.push(heapItem{v: src, d: 0})
	for h.len() > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range g.adj[it.v] {
			nd := it.d + e.W
			if nd < dist[e.To] {
				dist[e.To] = nd
				h.push(heapItem{v: e.To, d: nd})
			}
		}
	}
	return dist
}

type heapItem struct {
	v int
	d float64
}

// heapF is a minimal binary min-heap on heapItem.d, avoiding the
// container/heap interface boilerplate for this hot path.
type heapF struct {
	items []heapItem
}

func (h *heapF) len() int { return len(h.items) }

func (h *heapF) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *heapF) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < last && h.items[l].d < h.items[sm].d {
			sm = l
		}
		if r < last && h.items[r].d < h.items[sm].d {
			sm = r
		}
		if sm == i {
			break
		}
		h.items[i], h.items[sm] = h.items[sm], h.items[i]
		i = sm
	}
	return top
}
