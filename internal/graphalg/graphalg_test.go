package graphalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds a path graph 0-1-...-(n-1).
func path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddUndirected(i, i+1)
	}
	return g
}

// cycle builds a cycle graph over n vertices.
func cycle(n int) *Graph {
	g := path(n)
	g.AddUndirected(n-1, 0)
	return g
}

func TestBFSPath(t *testing.T) {
	g := path(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("BFS(0)[%d] = %d, want %d", i, d[i], want)
		}
	}
	d = g.BFS(2)
	for i, want := range []int{2, 1, 0, 1, 2} {
		if d[i] != want {
			t.Errorf("BFS(2)[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddUndirected(0, 1)
	d := g.BFS(0)
	if d[2] != -1 {
		t.Errorf("unreachable vertex distance = %d, want -1", d[2])
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(1), 0},
		{path(2), 1},
		{path(7), 6},
		{cycle(8), 4},
		{cycle(9), 4},
	}
	for i, c := range cases {
		d, ok := c.g.Diameter()
		if !ok {
			t.Errorf("case %d: reported disconnected", i)
		}
		if d != c.want {
			t.Errorf("case %d: diameter = %d, want %d", i, d, c.want)
		}
	}
}

func TestAverageDistanceCycle(t *testing.T) {
	// Cycle of 4: distances from any vertex are 1,2,1 -> mean 4/3.
	g := cycle(4)
	got := g.AverageDistance()
	want := 4.0 / 3.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("average distance = %v, want %v", got, want)
	}
}

func TestAPSPMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraph(20)
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			g.AddUndirected(u, v)
		}
	}
	d := g.APSP()
	for i := 0; i < 20; i++ {
		bi := g.BFS(i)
		for j := 0; j < 20; j++ {
			if d[i][j] != bi[j] {
				t.Fatalf("APSP[%d][%d] = %d, BFS = %d", i, j, d[i][j], bi[j])
			}
		}
	}
}

func TestHasCycleDirected(t *testing.T) {
	// DAG: no cycle.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if g.HasCycle() {
		t.Error("DAG reported cyclic")
	}
	// Add back edge.
	g.AddEdge(3, 0)
	if !g.HasCycle() {
		t.Error("cyclic graph reported acyclic")
	}
}

func TestHasCycleSelfLoop(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(1, 1)
	if !g.HasCycle() {
		t.Error("self loop not detected as cycle")
	}
}

func TestHasCycleDisconnectedComponents(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1) // acyclic component
	g.AddEdge(3, 4) // cyclic component
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	if !g.HasCycle() {
		t.Error("cycle in second component not detected")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30
	g := NewGraph(n)
	wg := NewWeightedGraph(n)
	for i := 0; i < 80; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.AddUndirected(u, v)
		wg.AddUndirected(u, v, 1)
	}
	for s := 0; s < n; s++ {
		bd := g.BFS(s)
		dd := wg.Dijkstra(s)
		for v := 0; v < n; v++ {
			if bd[v] < 0 {
				if dd[v] < 1e300 {
					t.Fatalf("vertex %d: BFS unreachable but Dijkstra %v", v, dd[v])
				}
				continue
			}
			if int(dd[v]+0.5) != bd[v] {
				t.Fatalf("vertex %d: Dijkstra %v, BFS %d", v, dd[v], bd[v])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the direct edge is longer than the detour.
	g := NewWeightedGraph(3)
	g.AddUndirected(0, 2, 10)
	g.AddUndirected(0, 1, 3)
	g.AddUndirected(1, 2, 4)
	d := g.Dijkstra(0)
	if d[2] != 7 {
		t.Errorf("Dijkstra detour = %v, want 7", d[2])
	}
}

// TestQuickTriangleInequality: BFS distances satisfy the triangle
// inequality on random graphs.
func TestQuickTriangleInequality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(15)
		g := NewGraph(n)
		for i := 0; i+1 < n; i++ {
			g.AddUndirected(i, i+1) // keep it connected
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddUndirected(u, v)
			}
		}
		d := g.APSP()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if d[a][c] > d[a][b]+d[b][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickBFSSymmetry: on undirected graphs dist(u,v) == dist(v,u).
func TestQuickBFSSymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := NewGraph(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddUndirected(u, v)
			}
		}
		d := g.APSP()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if d[u][v] != d[v][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
