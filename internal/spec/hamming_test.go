package spec

import (
	"reflect"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/topo"
)

// hammingSweepSpec is a surrogate-mode sweep whose topology axis is
// the generated sparse Hamming space.
func hammingSweepSpec() *Spec {
	return &Spec{
		Name: "dse",
		Sweeps: []Sweep{{
			Label:        "space",
			Mode:         "surrogate",
			Arch:         ArchSpec{Scenario: "a", Rows: 4, Cols: 4},
			HammingSpace: true,
		}},
	}
}

// TestHammingSpaceExpansion checks that the generated topology axis
// is exactly topo.HammingSpace's canonical enumeration — the same
// order dse.ExploreSurrogate sweeps, so spec-driven campaigns share
// cache entries with CLI explorations.
func TestHammingSpaceExpansion(t *testing.T) {
	s := hammingSweepSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	params, err := topo.HammingSpace(4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(params) {
		t.Fatalf("%d jobs, want %d (one per configuration)", len(jobs), len(params))
	}
	for i, j := range jobs {
		if j.Mode != exp.ModeSurrogate || j.Topo != "sparse-hamming" {
			t.Fatalf("job %d = %+v, want surrogate sparse-hamming", i, j)
		}
		if !reflect.DeepEqual([]int(j.SR), params[i].SR) || !reflect.DeepEqual([]int(j.SC), params[i].SC) {
			t.Fatalf("job %d offsets SR=%v SC=%v, want canonical SR=%v SC=%v",
				i, j.SR, j.SC, params[i].SR, params[i].SC)
		}
	}
}

// TestHammingSpaceMaxConfigs pins the cap's safety-valve semantics:
// like the dse limit, it rejects a space larger than the cap at
// validation time rather than silently truncating the sweep.
func TestHammingSpaceMaxConfigs(t *testing.T) {
	s := hammingSweepSpec()
	s.Sweeps[0].MaxConfigs = 16
	if err := s.Validate(); err != nil {
		t.Fatalf("cap equal to the space size must pass: %v", err)
	}
	if jobs, err := s.Expand(); err != nil || len(jobs) != 16 {
		t.Fatalf("%d jobs, err %v; want 16", len(jobs), err)
	}
	s.Sweeps[0].MaxConfigs = 4
	if err := s.Validate(); err == nil {
		t.Fatal("cap below the space size must fail validation")
	}
}

// TestHammingSpaceValidation covers the new sweep-level rules.
func TestHammingSpaceValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"topologies alongside hamming_space", func(s *Spec) {
			s.Sweeps[0].Topologies = []TopologySpec{{Kind: "mesh"}}
		}},
		{"negative max_configs", func(s *Spec) { s.Sweeps[0].MaxConfigs = -1 }},
		{"max_configs without hamming_space", func(s *Spec) {
			s.Sweeps[0].HammingSpace = false
			s.Sweeps[0].Topologies = []TopologySpec{{Kind: "mesh"}}
			s.Sweeps[0].MaxConfigs = 8
		}},
		{"surrogate with loads", func(s *Spec) { s.Sweeps[0].Loads = []float64{0.1} }},
		{"surrogate with patterns", func(s *Spec) { s.Sweeps[0].Patterns = []string{"transpose"} }},
		{"surrogate with qualities", func(s *Spec) { s.Sweeps[0].Qualities = []string{"full"} }},
	}
	for _, c := range cases {
		s := hammingSweepSpec()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", c.name)
		}
	}
	// Routing stays a legal axis: it changes the analytic estimates.
	s := hammingSweepSpec()
	s.Sweeps[0].Routings = []string{"auto", "hop-minimal"}
	if err := s.Validate(); err != nil {
		t.Fatalf("surrogate with routings: %v", err)
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*16 {
		t.Fatalf("%d jobs, want 32 (16 configs x 2 routings)", len(jobs))
	}
}

// TestHammingSpacePredictMode: the generated axis is not
// surrogate-only — a predict sweep over the space is legal too.
func TestHammingSpacePredictMode(t *testing.T) {
	s := hammingSweepSpec()
	s.Sweeps[0].Mode = ""
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 16 || jobs[0].Mode != exp.ModePredict {
		t.Fatalf("%d jobs, first mode %q", len(jobs), jobs[0].Mode)
	}
}
