// Package spec defines declarative campaign specifications: JSON
// files that describe an arbitrary evaluation campaign — any
// architecture (a preset plus overrides of its grid, tile budget,
// cores per tile, and link/router parameters), crossed over
// topologies, routing algorithms, traffic patterns, injection rates,
// quality tiers, and seeds — and expand deterministically into
// serializable exp.Jobs for the parallel campaign runner.
//
// The spec layer is what turns "add a new evaluation scenario" from a
// five-layer code change into a data-file change: topology kinds
// resolve through the topo registry, routing names through the route
// registry, and traffic patterns through the sim pattern registry, so
// every registered capability is reachable from a spec file. The
// paper's own presets (the Figure 6 panels, the MemPool validation)
// are checked in as spec files under examples/specs/ and executed by
// cmd/shrun.
//
// Determinism: expansion is a pure function of the spec — sweeps in
// file order, and within a sweep the cross-product in fixed nesting
// order (topology, routing, pattern, load, quality, seed; innermost
// last). Identical specs therefore expand to identical job lists,
// and with the runner's content-keyed cache, re-running a spec
// recomputes nothing.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/topo"
)

// Spec is one campaign specification: a named list of sweeps whose
// expansions concatenate into the campaign's job batch.
type Spec struct {
	// Name identifies the campaign (reports, default cache labels).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Sweeps are expanded in order.
	Sweeps []Sweep `json:"sweeps"`
}

// Sweep is one cross-product group: a single architecture evaluated
// over topologies x routings x patterns x loads x qualities x seeds.
type Sweep struct {
	// Label names the sweep in reports and per-sweep statistics; it
	// defaults to "<index>:<scenario>".
	Label string `json:"label,omitempty"`

	// Mode selects what each job evaluates: "predict" (default, the
	// full toolchain), "cost" (physical model only), "load" (one
	// simulated offered-load point per entry of Loads), or "surrogate"
	// (physical model plus closed-form analytic performance estimates,
	// never a simulation — the first stage of surrogate-guided
	// design-space exploration).
	Mode string `json:"mode,omitempty"`

	// Arch is the architecture every job of the sweep runs on.
	Arch ArchSpec `json:"arch"`

	// Topologies lists the topology instances to evaluate. Leave it
	// empty when HammingSpace generates the axis instead.
	Topologies []TopologySpec `json:"topologies,omitempty"`

	// HammingSpace replaces the Topologies axis with the full sparse
	// Hamming configuration enumeration of the sweep's grid — every
	// subset of {2..C-1} x {2..R-1}, in the canonical order the dse
	// explorer uses — turning a design-space sweep into a data-file
	// change. MaxConfigs caps the enumeration (0 means 65536); the
	// sweep is rejected when the grid's space exceeds the cap.
	HammingSpace bool `json:"hamming_space,omitempty"`
	MaxConfigs   int  `json:"max_configs,omitempty"`

	// Routings names the routing algorithms to cross with (route
	// registry names, or "auto" for each topology's co-designed
	// default). Empty means ["auto"]. A topology entry pinning its
	// own Routing bypasses this axis.
	Routings []string `json:"routings,omitempty"`

	// Patterns names the traffic patterns to cross with (sim pattern
	// registry names). Empty means ["uniform"]. Predict-mode sweeps
	// measure saturation and zero-load latency under the pattern;
	// cost-mode sweeps must leave it empty.
	Patterns []string `json:"patterns,omitempty"`

	// Traces lists workload trace files to replay (paths resolved
	// against the process working directory, the same way shrun
	// resolves the spec path's siblings). Each entry expands to the
	// pattern name "trace:<path>" and merges after Patterns on the
	// pattern axis. Only "load" mode accepts traces: the Loads axis
	// becomes the replay's time-dilation scale (1.0 replays the trace
	// at recorded intensity), and the saturation searches of the other
	// simulating modes are undefined for recorded workloads.
	Traces []string `json:"traces,omitempty"`

	// Loads lists offered injection rates in flits/node/cycle for
	// "load" mode (required there, rejected elsewhere). For trace
	// entries the load is the replay time-dilation scale instead.
	Loads []float64 `json:"loads,omitempty"`

	// Qualities lists simulation quality tiers: "quick", "full", or
	// "adaptive". Empty means ["quick"].
	Qualities []string `json:"qualities,omitempty"`

	// Seeds lists simulation seeds; empty means [0], deriving a
	// deterministic per-job seed from each job's content hash.
	Seeds []int64 `json:"seeds,omitempty"`
}

// ArchSpec selects a preset architecture and optional overrides.
// Convenience units (MGE, GHz) are converted to base units during
// expansion.
type ArchSpec struct {
	// Scenario names the preset: "a"|"b"|"c"|"d" or "mempool".
	Scenario string `json:"scenario"`
	// Rows/Cols override the preset's tile grid when positive.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// EndpointMGE overrides the per-tile endpoint budget, in MGE.
	EndpointMGE float64 `json:"endpoint_mge,omitempty"`
	// CoresPerTile overrides the informational core count.
	CoresPerTile int `json:"cores_per_tile,omitempty"`
	// FreqGHz overrides the NoC clock, in GHz.
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// LinkBWBits overrides the per-link bandwidth (= flit width).
	LinkBWBits float64 `json:"link_bw_bits,omitempty"`
	// NumVCs / BufDepthFlits override the router buffering.
	NumVCs        int `json:"num_vcs,omitempty"`
	BufDepthFlits int `json:"buf_depth_flits,omitempty"`
	// TileAspect overrides the tile height:width ratio.
	TileAspect float64 `json:"tile_aspect,omitempty"`
}

// TopologySpec is one topology instance in a sweep.
type TopologySpec struct {
	// Kind is the topo registry name ("mesh", "sparse-hamming", ...).
	Kind string `json:"kind"`
	// SR/SC parameterize the sparse Hamming graph (offset sets) and
	// the Ruche network (factor in SR[0]); rejected on families that
	// do not read them.
	SR []int `json:"sr,omitempty"`
	SC []int `json:"sc,omitempty"`
	// Routing, when set, pins this topology to one algorithm instead
	// of crossing it with the sweep's Routings axis (Figure 6 gives
	// the hypercube hop-minimal tables this way).
	Routing string `json:"routing,omitempty"`
}

// Parse decodes a spec from JSON, rejecting unknown fields so typos
// in spec files fail loudly instead of silently shrinking a campaign.
func Parse(data []byte) (*Spec, error) {
	return ParseReader(bytes.NewReader(data))
}

// ParseReader decodes a spec from a stream (an HTTP request body, a
// file) with the same strictness as Parse. It also rejects trailing
// data after the spec object, so a concatenated or truncated upload
// fails instead of silently dropping sweeps.
func ParseReader(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after spec object")
	}
	return &s, nil
}

// Hash returns the campaign's stable content hash: a hex digest over
// the expanded job content keys in expansion order. Two specs hash
// equally exactly when they expand to the same job sequence, so
// formatting, field order, and spelling a default explicitly all
// leave the hash unchanged, while any change that alters even one
// job's cache identity changes it. The name and description are
// deliberately excluded — the hash identifies the work, not the
// label. Expansion errors propagate (run Validate first for friendly
// ones).
func (s *Spec) Hash() (string, error) {
	jobs, err := s.Expand()
	if err != nil {
		return "", err
	}
	return HashJobs(jobs), nil
}

// HashJobs digests an already-expanded job list the way Hash does —
// for callers that hold the expansion and should not pay for a
// second one (the campaign service hashes every submission).
func HashJobs(jobs []exp.Job) string {
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.Key())
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ParseFile reads and decodes a spec file.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// QualityNames lists the simulation quality tiers the toolchain
// implements (package noc), in canonical order: the fixed-budget
// "quick" and "full" tiers, and the adaptive-control "adaptive" tier
// (quick's budgets as caps, early verdicts and speculative probes
// inside them). Validation and the campaign service's registry
// endpoint both derive from this list.
func QualityNames() []string { return []string{"quick", "full", "adaptive"} }

// validQualities are the accepted quality spellings: QualityNames
// plus the empty string (the quick default).
var validQualities = func() map[string]bool {
	m := map[string]bool{"": true}
	for _, q := range QualityNames() {
		m[q] = true
	}
	return m
}()

// Validate checks the whole spec against the registries without
// running anything: architectures resolve and validate, topology
// kinds are registered and structurally applicable on the sweep's
// grid (instances are built and connectivity-checked), routing and
// pattern names are registered, and the mode's axis requirements
// hold. A valid spec can still fail at run time only for deep
// incompatibilities validation does not simulate (e.g. pinning a
// torus-only routing onto a mesh).
func (s *Spec) Validate() error {
	if len(s.Sweeps) == 0 {
		return fmt.Errorf("spec %q: no sweeps", s.Name)
	}
	for i := range s.Sweeps {
		if err := s.Sweeps[i].validate(); err != nil {
			return fmt.Errorf("spec %q: sweep %d (%s): %w", s.Name, i+1, s.Sweeps[i].label(i), err)
		}
	}
	return nil
}

// validate checks one sweep.
func (sw *Sweep) validate() error {
	mode, err := sw.mode()
	if err != nil {
		return err
	}
	arch, err := ArchForJob(sw.probeJob())
	if err != nil {
		return err
	}
	if sw.MaxConfigs < 0 {
		return fmt.Errorf("negative max_configs %d", sw.MaxConfigs)
	}
	if sw.MaxConfigs > 0 && !sw.HammingSpace {
		return fmt.Errorf("max_configs applies to hamming_space sweeps only")
	}
	if sw.HammingSpace {
		if len(sw.Topologies) > 0 {
			return fmt.Errorf("hamming_space generates the topology axis; leave topologies empty")
		}
		fam, ok := topo.FamilyByName("sparse-hamming")
		if !ok {
			return fmt.Errorf("sparse-hamming family not registered")
		}
		if err := fam.Applicable(arch.Rows, arch.Cols); err != nil {
			return err
		}
		if _, err := topo.HammingSpace(arch.Rows, arch.Cols, sw.maxConfigs()); err != nil {
			return err
		}
	} else if len(sw.Topologies) == 0 {
		return fmt.Errorf("no topologies")
	}
	for _, ts := range sw.Topologies {
		fam, ok := topo.FamilyByName(ts.Kind)
		if !ok {
			return fmt.Errorf("unknown topology %q", ts.Kind)
		}
		if !fam.Parameterized && (len(ts.SR) > 0 || len(ts.SC) > 0) {
			return fmt.Errorf("topology %q does not read sr/sc offsets", ts.Kind)
		}
		if err := fam.Applicable(arch.Rows, arch.Cols); err != nil {
			return err
		}
		t, err := topo.ByName(ts.Kind, arch.Rows, arch.Cols, ts.SR, ts.SC)
		if err != nil {
			return err
		}
		if err := t.Validate(); err != nil {
			return err
		}
		if !route.Registered(ts.Routing) {
			return fmt.Errorf("topology %q pins unknown routing %q", ts.Kind, ts.Routing)
		}
	}
	for _, name := range sw.Routings {
		if !route.Registered(name) {
			return fmt.Errorf("unknown routing %q", name)
		}
	}
	for _, name := range sw.Patterns {
		if _, err := sim.PatternByName(name, arch.Rows, arch.Cols); err != nil {
			return err
		}
		if mode != exp.ModeLoad && strings.Contains(name, ":") {
			return fmt.Errorf("trace pattern %q requires mode \"load\" (saturation search is undefined for replays)", name)
		}
	}
	if len(sw.Traces) > 0 && mode != exp.ModeLoad {
		return fmt.Errorf("traces require mode \"load\" (saturation search is undefined for replays)")
	}
	for _, path := range sw.Traces {
		if path == "" {
			return fmt.Errorf("empty trace path")
		}
		// Resolves through the pattern registry's "trace" scheme, which
		// parses, validates, and grid-checks the file.
		if _, err := sim.PatternByName("trace:"+path, arch.Rows, arch.Cols); err != nil {
			return err
		}
	}
	for _, q := range sw.Qualities {
		if !validQualities[q] {
			return fmt.Errorf("unknown quality %q (want one of %s)", q, strings.Join(QualityNames(), ", "))
		}
	}
	switch mode {
	case exp.ModeLoad:
		if len(sw.Loads) == 0 {
			return fmt.Errorf("load mode needs at least one load")
		}
		for _, l := range sw.Loads {
			if l <= 0 || l > 1 {
				return fmt.Errorf("load %g outside (0, 1] flits/node/cycle", l)
			}
		}
	case exp.ModeCost:
		if len(sw.Loads) > 0 || len(sw.Patterns) > 0 || len(sw.Routings) > 0 {
			return fmt.Errorf("cost mode ignores routings/patterns/loads; leave them empty")
		}
		// A pinned routing would fragment cache keys the same way.
		for _, ts := range sw.Topologies {
			if ts.Routing != "" {
				return fmt.Errorf("cost mode ignores routing; drop the pin on topology %q", ts.Kind)
			}
		}
	case exp.ModeSurrogate:
		// Routing legitimately changes the analytic estimates, so the
		// routing axis (and pins) stay available; the simulation axes
		// would only fragment cache keys.
		if len(sw.Loads) > 0 || len(sw.Patterns) > 0 || len(sw.Qualities) > 0 {
			return fmt.Errorf("surrogate mode ignores patterns/loads/qualities; leave them empty")
		}
	default: // predict
		if len(sw.Loads) > 0 {
			return fmt.Errorf("loads require mode \"load\"")
		}
	}
	return nil
}

// mode resolves the sweep's job mode, defaulting to predict.
func (sw *Sweep) mode() (exp.Mode, error) {
	switch sw.Mode {
	case "", string(exp.ModePredict):
		return exp.ModePredict, nil
	case string(exp.ModeCost):
		return exp.ModeCost, nil
	case string(exp.ModeLoad):
		return exp.ModeLoad, nil
	case string(exp.ModeSurrogate):
		return exp.ModeSurrogate, nil
	default:
		return "", fmt.Errorf("unknown mode %q (want %s)", sw.Mode, strings.Join(exp.ModeNames(), ", "))
	}
}

// maxConfigs returns the sweep's enumeration cap (0 means 65536 —
// conservative for a declarative file, unlike the explorer's
// programmatic default).
func (sw *Sweep) maxConfigs() int {
	if sw.MaxConfigs > 0 {
		return sw.MaxConfigs
	}
	return 1 << 16
}

// label returns the sweep's report label, defaulting to
// "<index>:<scenario>".
func (sw *Sweep) label(i int) string {
	if sw.Label != "" {
		return sw.Label
	}
	return fmt.Sprintf("%d:%s", i+1, sw.Arch.Scenario)
}

// Labels returns the report label of every sweep, in order.
func (s *Spec) Labels() []string {
	labels := make([]string, len(s.Sweeps))
	for i := range s.Sweeps {
		labels[i] = s.Sweeps[i].label(i)
	}
	return labels
}
