package spec

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
)

// testSpec returns a small multi-axis spec exercising every
// cross-product dimension.
func testSpec() *Spec {
	return &Spec{
		Name: "test",
		Sweeps: []Sweep{
			{
				Label: "loads",
				Mode:  "load",
				Arch:  ArchSpec{Scenario: "a", Rows: 4, Cols: 4},
				Topologies: []TopologySpec{
					{Kind: "mesh"},
					{Kind: "sparse-hamming", SR: []int{2}, SC: []int{2}},
				},
				Routings:  []string{"auto", "hop-minimal"},
				Patterns:  []string{"uniform", "transpose"},
				Loads:     []float64{0.1, 0.3},
				Qualities: []string{"quick"},
				Seeds:     []int64{1, 2},
			},
			{
				Label:      "predict",
				Arch:       ArchSpec{Scenario: "a", Rows: 4, Cols: 4},
				Topologies: []TopologySpec{{Kind: "torus", Routing: "torus-dor"}},
			},
		},
	}
}

func TestValidateAndExpandDeterministic(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	// Sweep 1: 2 topologies x 2 routings x 2 patterns x 2 loads x 1
	// quality x 2 seeds; sweep 2: a single pinned-routing job.
	want := 2*2*2*2*1*2 + 1
	if len(a) != want {
		t.Fatalf("%d jobs, want %d", len(a), want)
	}
	// Nesting order: topology outermost, seeds innermost.
	if a[0].Topo != "mesh" || a[0].Seed != 1 || a[1].Seed != 2 {
		t.Errorf("unexpected leading jobs: %+v, %+v", a[0], a[1])
	}
	if a[0].Load != a[1].Load {
		t.Error("seeds must be the innermost axis")
	}
	if a[len(a)-1].Topo != "torus" || a[len(a)-1].Routing != "torus-dor" {
		t.Errorf("pinned-routing job = %+v", a[len(a)-1])
	}
	// Default spellings canonicalize onto the empty string.
	if a[0].Routing != "" || a[0].Pattern != "" {
		t.Errorf("auto/uniform must canonicalize to \"\": %+v", a[0])
	}
	// Grouped expansion aligns with labels.
	groups, err := s.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != want-1 || len(groups[1]) != 1 {
		t.Fatalf("group sizes %d/%d", len(groups[0]), len(groups[1]))
	}
	if labels := s.Labels(); labels[0] != "loads" || labels[1] != "predict" {
		t.Errorf("labels = %v", labels)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name: "bad",
			Sweeps: []Sweep{{
				Arch:       ArchSpec{Scenario: "a"},
				Topologies: []TopologySpec{{Kind: "mesh"}},
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no sweeps", func(s *Spec) { s.Sweeps = nil }},
		{"no topologies", func(s *Spec) { s.Sweeps[0].Topologies = nil }},
		{"unknown scenario", func(s *Spec) { s.Sweeps[0].Arch.Scenario = "z" }},
		{"unknown topology", func(s *Spec) { s.Sweeps[0].Topologies[0].Kind = "moebius" }},
		{"inapplicable topology", func(s *Spec) {
			s.Sweeps[0].Arch.Rows, s.Sweeps[0].Arch.Cols = 6, 6
			s.Sweeps[0].Topologies[0].Kind = "hypercube"
		}},
		{"offsets on fixed family", func(s *Spec) { s.Sweeps[0].Topologies[0].SR = []int{2} }},
		{"bad offsets", func(s *Spec) {
			s.Sweeps[0].Topologies[0] = TopologySpec{Kind: "sparse-hamming", SR: []int{99}}
		}},
		{"unknown pinned routing", func(s *Spec) { s.Sweeps[0].Topologies[0].Routing = "left-hand" }},
		{"unknown routing", func(s *Spec) { s.Sweeps[0].Routings = []string{"left-hand"} }},
		{"unknown pattern", func(s *Spec) { s.Sweeps[0].Patterns = []string{"tornado"} }},
		{"unknown quality", func(s *Spec) { s.Sweeps[0].Qualities = []string{"heroic"} }},
		{"unknown mode", func(s *Spec) { s.Sweeps[0].Mode = "paint" }},
		{"loads in predict mode", func(s *Spec) { s.Sweeps[0].Loads = []float64{0.1} }},
		{"load mode without loads", func(s *Spec) { s.Sweeps[0].Mode = "load" }},
		{"load out of range", func(s *Spec) {
			s.Sweeps[0].Mode = "load"
			s.Sweeps[0].Loads = []float64{1.5}
		}},
		{"cost mode with patterns", func(s *Spec) {
			s.Sweeps[0].Mode = "cost"
			s.Sweeps[0].Patterns = []string{"transpose"}
		}},
		{"cost mode with pinned routing", func(s *Spec) {
			s.Sweeps[0].Mode = "cost"
			s.Sweeps[0].Topologies[0].Routing = "monotone-dor"
		}},
		{"invalid arch override", func(s *Spec) { s.Sweeps[0].Arch.TileAspect = -1 }},
		{"traces in predict mode", func(s *Spec) {
			s.Sweeps[0].Traces = []string{"../../examples/traces/bursty-4x4.trace"}
		}},
		{"trace pattern in predict mode", func(s *Spec) {
			s.Sweeps[0].Arch.Rows, s.Sweeps[0].Arch.Cols = 4, 4
			s.Sweeps[0].Patterns = []string{"trace:../../examples/traces/bursty-4x4.trace"}
		}},
		{"empty trace path", func(s *Spec) {
			s.Sweeps[0].Mode = "load"
			s.Sweeps[0].Loads = []float64{0.5}
			s.Sweeps[0].Traces = []string{""}
		}},
		{"missing trace file", func(s *Spec) {
			s.Sweeps[0].Mode = "load"
			s.Sweeps[0].Loads = []float64{0.5}
			s.Sweeps[0].Traces = []string{"no-such-file.trace"}
		}},
		{"trace grid mismatch", func(s *Spec) {
			// The checked-in traces are 4x4; the base sweep's scenario-a
			// grid is 8x8.
			s.Sweeps[0].Mode = "load"
			s.Sweeps[0].Loads = []float64{0.5}
			s.Sweeps[0].Traces = []string{"../../examples/traces/bursty-4x4.trace"}
		}},
	}
	for _, c := range cases {
		s := base()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", c.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec must be valid: %v", err)
	}
}

func TestArchForJobOverrides(t *testing.T) {
	arch, err := ArchForJob(exp.Job{Scenario: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if arch.Rows != 8 || arch.Cols != 8 || arch.EndpointGE != 35e6 {
		t.Fatalf("preset a = %+v", arch)
	}
	arch, err = ArchForJob(exp.Job{
		Scenario: "a", Rows: 8, Cols: 12,
		Arch: &exp.ArchOverride{
			EndpointGE: 50e6, CoresPerTile: 2, FreqHz: 1e9,
			LinkBWBits: 256, NumVCs: 4, BufDepthFlits: 8, TileAspect: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if arch.Rows != 8 || arch.Cols != 12 || arch.NumTiles() != 96 {
		t.Errorf("grid override: %dx%d", arch.Rows, arch.Cols)
	}
	if arch.EndpointGE != 50e6 || arch.CoresPerTile != 2 || arch.FreqHz != 1e9 ||
		arch.LinkBWBits != 256 || arch.Proto.NumVCs != 4 || arch.Proto.BufDepthFlits != 8 ||
		arch.TileAspect != 2 {
		t.Errorf("override not applied: %+v proto %+v", arch, arch.Proto)
	}
	// Unknown scenario and invalid overrides are rejected.
	if _, err := ArchForJob(exp.Job{Scenario: "z"}); err == nil {
		t.Error("unknown scenario must error")
	}
	if _, err := ArchForJob(exp.Job{Scenario: "a", Rows: -1}); err == nil {
		t.Error("invalid grid must error")
	}
}

// TestParseRejectsUnknownFields pins the strict decoding: typos in
// spec files must fail instead of silently shrinking a campaign.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","sweeps":[{"arch":{"scenario":"a"},"topolojies":[]}]}`)); err == nil {
		t.Error("unknown field must error")
	}
	if _, err := Parse([]byte(`{"name":"x"`)); err == nil {
		t.Error("truncated JSON must error")
	}
}

// TestExampleSpecsValid walks the checked-in spec files: every one
// must parse, validate, and expand — the same invariant CI enforces
// via shrun -validate.
func TestExampleSpecsValid(t *testing.T) {
	// Trace paths in spec files resolve against the working directory
	// (shrun and CI run from the repo root), so validate from there.
	t.Chdir(filepath.Join("..", ".."))
	dir := filepath.Join("examples", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		found++
		path := filepath.Join(dir, e.Name())
		s, err := ParseFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		jobs, err := s.Expand()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(jobs) == 0 {
			t.Errorf("%s: expands to no jobs", path)
		}
	}
	if found < 4 {
		t.Fatalf("only %d spec files under %s, expected the checked-in presets", found, dir)
	}
}

// TestTracesAxis pins the traces sweep axis: entries validate through
// the pattern registry's "trace" scheme, merge after Patterns on the
// pattern axis as "trace:<path>" names, and the uniform default
// applies only when both lists are empty.
func TestTracesAxis(t *testing.T) {
	const trPath = "../../examples/traces/bursty-4x4.trace"
	s := &Spec{
		Name: "traces",
		Sweeps: []Sweep{{
			Mode:       "load",
			Arch:       ArchSpec{Scenario: "a", Rows: 4, Cols: 4},
			Topologies: []TopologySpec{{Kind: "mesh"}},
			Patterns:   []string{"transpose"},
			Traces:     []string{trPath},
			Loads:      []float64{0.5, 1.0},
			Seeds:      []int64{1},
		}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 1 topology x 1 routing x (1 pattern + 1 trace) x 2 loads x 1
	// quality x 1 seed.
	if len(jobs) != 4 {
		t.Fatalf("%d jobs, want 4", len(jobs))
	}
	if jobs[0].Pattern != "transpose" || jobs[2].Pattern != "trace:"+trPath {
		t.Errorf("pattern axis order: %q then %q", jobs[0].Pattern, jobs[2].Pattern)
	}
	if jobs[2].Load != 0.5 || jobs[3].Load != 1.0 {
		t.Errorf("trace loads = %g, %g", jobs[2].Load, jobs[3].Load)
	}

	// Traces alone leave no uniform default behind.
	s.Sweeps[0].Patterns = nil
	jobs, err = s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Pattern != "trace:"+trPath {
		t.Fatalf("traces-only expansion = %+v", jobs)
	}
}

// TestParseReader pins the streaming parser: equivalent to Parse,
// strict about unknown fields and trailing data.
func TestParseReader(t *testing.T) {
	const good = `{"name": "x", "sweeps": [{"arch": {"scenario": "a"}, "topologies": [{"kind": "mesh"}]}]}`
	s, err := ParseReader(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || len(s.Sweeps) != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseReader(strings.NewReader(good + ` {"trailing": true}`)); err == nil {
		t.Error("trailing data not rejected")
	}
	if _, err := ParseReader(strings.NewReader(`{"nmae": "typo"}`)); err == nil {
		t.Error("unknown field not rejected")
	}
}

// TestHash pins the campaign hash contract: invariant under
// formatting and explicit default spellings, sensitive to anything
// that changes a job's cache identity, and indifferent to the name.
func TestHash(t *testing.T) {
	base := testSpec()
	h1, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	renamed := testSpec()
	renamed.Name = "different-label"
	renamed.Description = "labels are not work"
	if h, _ := renamed.Hash(); h != h1 {
		t.Errorf("renaming the spec changed the hash: %s vs %s", h, h1)
	}

	spelled := testSpec()
	spelled.Sweeps[1].Mode = "predict" // the implicit default, spelled out
	spelled.Sweeps[1].Routings = nil
	if h, _ := spelled.Hash(); h != h1 {
		t.Errorf("spelling a default explicitly changed the hash: %s vs %s", h, h1)
	}

	reseeded := testSpec()
	reseeded.Sweeps[0].Seeds = []int64{1, 3}
	if h, _ := reseeded.Hash(); h == h1 {
		t.Error("changing a seed did not change the hash")
	}

	// The hash must be stable across processes: it feeds campaign ids
	// and the service's dedup story, so pin the digest of a fixed
	// tiny spec.
	tiny := &Spec{Name: "pin", Sweeps: []Sweep{{
		Mode: "cost", Arch: ArchSpec{Scenario: "a"},
		Topologies: []TopologySpec{{Kind: "mesh"}},
	}}}
	if h, _ := tiny.Hash(); len(h) != 32 {
		t.Errorf("hash %q is not 32 hex chars", h)
	}
}
