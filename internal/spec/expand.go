package spec

// Expansion: the deterministic mapping from a spec to exp.Jobs, plus
// the shared job -> architecture resolution every campaign evaluator
// (noc's toolchain, dse's cost model) goes through.

import (
	"fmt"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// ArchForJob resolves a job's architecture: the preset named by
// Job.Scenario with the grid and arch overrides applied, validated.
// Presets are constructed fresh, so callers may mutate the result.
func ArchForJob(j exp.Job) (*tech.Arch, error) {
	arch := tech.ArchByName(j.Scenario)
	if arch == nil {
		return nil, fmt.Errorf("spec: unknown scenario %q", j.Scenario)
	}
	if j.Rows < 0 || j.Cols < 0 {
		return nil, fmt.Errorf("spec: scenario %q: negative grid %dx%d", j.Scenario, j.Rows, j.Cols)
	}
	if j.Rows > 0 {
		arch.Rows = j.Rows
	}
	if j.Cols > 0 {
		arch.Cols = j.Cols
	}
	if o := j.Arch; !o.IsZero() {
		if o.EndpointGE < 0 || o.CoresPerTile < 0 || o.FreqHz < 0 || o.LinkBWBits < 0 ||
			o.NumVCs < 0 || o.BufDepthFlits < 0 || o.TileAspect < 0 {
			return nil, fmt.Errorf("spec: scenario %q: negative arch override %+v", j.Scenario, *o)
		}
		if o.EndpointGE > 0 {
			arch.EndpointGE = o.EndpointGE
		}
		if o.CoresPerTile > 0 {
			arch.CoresPerTile = o.CoresPerTile
		}
		if o.FreqHz > 0 {
			arch.FreqHz = o.FreqHz
		}
		if o.LinkBWBits > 0 {
			arch.LinkBWBits = o.LinkBWBits
		}
		if o.NumVCs > 0 {
			arch.Proto.NumVCs = o.NumVCs
		}
		if o.BufDepthFlits > 0 {
			arch.Proto.BufDepthFlits = o.BufDepthFlits
		}
		if o.TileAspect > 0 {
			arch.TileAspect = o.TileAspect
		}
	}
	if err := arch.Validate(); err != nil {
		return nil, fmt.Errorf("spec: scenario %q with overrides: %w", j.Scenario, err)
	}
	return arch, nil
}

// override converts the spec's convenience units into a base-unit
// job override, or nil when nothing beyond the grid is customized.
func (a *ArchSpec) override() *exp.ArchOverride {
	o := exp.ArchOverride{
		EndpointGE:    a.EndpointMGE * 1e6,
		CoresPerTile:  a.CoresPerTile,
		FreqHz:        a.FreqGHz * 1e9,
		LinkBWBits:    a.LinkBWBits,
		NumVCs:        a.NumVCs,
		BufDepthFlits: a.BufDepthFlits,
		TileAspect:    a.TileAspect,
	}
	if o.IsZero() {
		return nil
	}
	return &o
}

// Job returns the architecture-only job the spec stands for — the
// shared currency for resolving an ArchSpec into a tech.Arch
// (ArchForJob) or stamping its scenario/grid/override onto campaign
// jobs. The campaign service's frontier endpoint resolves request
// architectures through it.
func (a *ArchSpec) Job() exp.Job {
	return exp.Job{
		Scenario: a.Scenario,
		Rows:     a.Rows,
		Cols:     a.Cols,
		Arch:     a.override(),
	}
}

// probeJob builds the architecture-only job used to resolve and
// validate the sweep's arch.
func (sw *Sweep) probeJob() exp.Job {
	return sw.Arch.Job()
}

// axis returns values, or the single default when empty.
func axis(values []string, def string) []string {
	if len(values) == 0 {
		return []string{def}
	}
	return values
}

// canonName maps a default's explicit spelling onto the empty string,
// so spec files may write "auto"/"uniform" while expanded jobs stay
// in the canonical form the rest of the toolchain produces.
func canonName(s, def string) string {
	if s == def {
		return ""
	}
	return s
}

// Expand returns the spec's jobs: every sweep's cross-product, in
// deterministic order (see the package doc). It does not validate;
// run Validate first for friendly errors.
func (s *Spec) Expand() ([]exp.Job, error) {
	groups, err := s.ExpandSweeps()
	if err != nil {
		return nil, err
	}
	var jobs []exp.Job
	for _, g := range groups {
		jobs = append(jobs, g...)
	}
	return jobs, nil
}

// ExpandSweeps returns the spec's jobs grouped per sweep, aligned
// with Labels.
func (s *Spec) ExpandSweeps() ([][]exp.Job, error) {
	groups := make([][]exp.Job, len(s.Sweeps))
	for i := range s.Sweeps {
		jobs, err := s.Sweeps[i].jobs()
		if err != nil {
			return nil, fmt.Errorf("spec %q: sweep %d (%s): %w", s.Name, i+1, s.Sweeps[i].label(i), err)
		}
		groups[i] = jobs
	}
	return groups, nil
}

// jobs expands one sweep.
func (sw *Sweep) jobs() ([]exp.Job, error) {
	mode, err := sw.mode()
	if err != nil {
		return nil, err
	}
	routings := axis(sw.Routings, "")
	patterns := axis(sw.Patterns, "")
	if len(sw.Traces) > 0 {
		// Trace entries join the pattern axis as "trace:<path>" names;
		// the "" uniform default applies only when both lists are empty.
		merged := make([]string, 0, len(sw.Patterns)+len(sw.Traces))
		merged = append(merged, sw.Patterns...)
		for _, path := range sw.Traces {
			merged = append(merged, "trace:"+path)
		}
		patterns = merged
	}
	qualities := axis(sw.Qualities, "")
	loads := sw.Loads
	if mode != exp.ModeLoad {
		loads = []float64{0}
	}
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	ov := sw.Arch.override()

	topos := sw.Topologies
	if sw.HammingSpace {
		arch, err := ArchForJob(sw.probeJob())
		if err != nil {
			return nil, err
		}
		params, err := topo.HammingSpace(arch.Rows, arch.Cols, sw.maxConfigs())
		if err != nil {
			return nil, err
		}
		topos = make([]TopologySpec, len(params))
		for i, p := range params {
			topos[i] = TopologySpec{Kind: "sparse-hamming", SR: p.SR, SC: p.SC}
		}
	}

	var jobs []exp.Job
	for _, ts := range topos {
		rlist := routings
		if ts.Routing != "" {
			rlist = []string{ts.Routing}
		}
		for _, routing := range rlist {
			for _, pattern := range patterns {
				for _, load := range loads {
					for _, quality := range qualities {
						for _, seed := range seeds {
							jobs = append(jobs, exp.Job{
								Mode:     mode,
								Scenario: sw.Arch.Scenario,
								Rows:     sw.Arch.Rows,
								Cols:     sw.Arch.Cols,
								Arch:     ov,
								Topo:     ts.Kind,
								SR:       ts.SR,
								SC:       ts.SC,
								Routing:  canonName(routing, "auto"),
								Pattern:  canonName(pattern, "uniform"),
								Load:     load,
								Quality:  quality,
								Seed:     seed,
							})
						}
					}
				}
			}
		}
	}
	return jobs, nil
}
