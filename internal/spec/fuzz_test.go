package spec

// Fuzz coverage for the spec decoder: ParseReader and Validate accept
// arbitrary bytes off the service's HTTP boundary, so neither may
// panic, and a successful parse must always yield a non-nil spec that
// Validate can walk.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseSpec feeds arbitrary bytes through the same parse+validate
// sequence the campaign service applies to request bodies, seeded
// with the shipped example specs.
func FuzzParseSpec(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","sweeps":[]}`))
	f.Add([]byte(`{"name":"x","sweeps":[{"label":"l","mode":"cost","arch":{"scenario":"a"},"topologies":[{"kind":"mesh"}]}]}`))
	f.Add([]byte(`{"sweeps":[{"mode":"load","arch":{"scenario":"q"},"topologies":[{"kind":"sparse-hamming","sr":[2],"sc":[2]}],"loads":[0.1,0.2]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseReader(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatalf("ParseReader returned both a spec and error %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("ParseReader returned nil spec without error")
		}
		_ = s.Validate() // must not panic on any parsed spec
	})
}
