package exp

import "fmt"

// Result is the serializable outcome of one job: the union of the
// metrics the modes produce. ModeCost fills the topology and cost
// sections; ModePredict additionally fills the performance and
// analytic sections; ModeSurrogate fills the topology, cost, and
// analytic sections (no simulation); ModeLoad fills the topology
// section and the load-point section.
//
// Results flow through the cache and are shared between duplicate
// jobs in a batch; treat them as read-only.
type Result struct {
	// Identification.
	Topology string `json:"topology"`
	Params   string `json:"params,omitempty"`

	// Topology properties.
	RouterRadix int     `json:"router_radix"`
	Diameter    int     `json:"diameter"`
	AvgHops     float64 `json:"avg_hops"`
	NumLinks    int     `json:"num_links"`

	// Cost (physical model).
	TotalAreaMm2       float64 `json:"total_area_mm2"`
	AreaOverheadPct    float64 `json:"area_overhead_pct"`
	TotalPowerW        float64 `json:"total_power_w"`
	NoCPowerW          float64 `json:"noc_power_w"`
	ChannelUtilization float64 `json:"channel_utilization"`
	MaxLinkLatency     int     `json:"max_link_latency,omitempty"`

	// Performance (cycle-accurate simulation, ModePredict).
	// SaturationResolutionPct is the saturation search's measurement
	// resolution: the width of the final bisection bracket in percent
	// of injection capacity. Two saturation values closer than either
	// one's resolution are indistinguishable to the search.
	ZeroLoadLatency         float64 `json:"zero_load_latency,omitempty"`
	SaturationPct           float64 `json:"saturation_pct,omitempty"`
	SaturationResolutionPct float64 `json:"saturation_resolution_pct,omitempty"`
	RoutingName             string  `json:"routing_name,omitempty"`

	// High-level-model estimates (ModePredict and ModeSurrogate).
	// AnalyticMaxChannelLoad and AnalyticAvgChannelLoad are the raw
	// channel loads behind the capped bound — the surrogate stage's
	// uncapped ranking inputs (only ModeSurrogate fills them, keeping
	// predict results bit-identical to earlier releases).
	AnalyticZeroLoad       float64 `json:"analytic_zero_load,omitempty"`
	AnalyticBoundPct       float64 `json:"analytic_bound_pct,omitempty"`
	AnalyticMaxChannelLoad float64 `json:"analytic_max_channel_load,omitempty"`
	AnalyticAvgChannelLoad float64 `json:"analytic_avg_channel_load,omitempty"`

	// Simulation work behind the result (ModePredict and ModeLoad):
	// total simulated router-cycles and flit movements. Campaign
	// reports divide these by wall-clock time to report simulation
	// speed. Deterministic in the job spec, like every other field.
	SimCycles   int64 `json:"sim_cycles,omitempty"`
	SimFlitHops int64 `json:"sim_flit_hops,omitempty"`

	// Adaptive-control accounting (ModePredict): how many saturation
	// probes the search consumed and how many simulated cycles the
	// adaptive tier's early verdicts avoided (0 on fixed-budget
	// tiers). Deterministic in the job spec: speculative probes whose
	// verdicts went unused are never counted.
	SimProbes      int   `json:"sim_probes,omitempty"`
	SimCyclesSaved int64 `json:"sim_cycles_saved,omitempty"`

	// SaturationLowerBound marks a saturation search that bottomed
	// out: every probe down to the finest bisection midpoint
	// saturated, so SaturationPct is the search resolution — an upper
	// bound on the true rate — rather than a measured throughput.
	SaturationLowerBound bool `json:"saturation_lower_bound,omitempty"`

	// Single load point (ModeLoad).
	OfferedRate       float64 `json:"offered_rate,omitempty"`
	AcceptedRate      float64 `json:"accepted_rate,omitempty"`
	AvgPacketLatency  float64 `json:"avg_packet_latency,omitempty"`
	P99PacketLatency  float64 `json:"p99_packet_latency,omitempty"`
	DeliveredFraction float64 `json:"delivered_fraction,omitempty"`
}

// FormatSaturation renders a saturation percentage for tables,
// prefixing "<" when the search bottomed out (the value is then the
// bisection resolution, an upper bound on the true rate). The one
// shared spelling of the marker: the report tables and the noc
// formatters both call it, so their renderings cannot drift apart.
func FormatSaturation(pct float64, lowerBound bool) string {
	if lowerBound {
		return fmt.Sprintf("<%.1f", pct)
	}
	return fmt.Sprintf("%.1f", pct)
}
