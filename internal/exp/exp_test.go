package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeEval is a deterministic evaluator: the result depends only on
// the job spec, like the real toolchain evaluators.
func fakeEval(calls *atomic.Int64) func(Job) (*Result, error) {
	return func(j Job) (*Result, error) {
		if calls != nil {
			calls.Add(1)
		}
		if j.Topo == "broken" {
			return nil, fmt.Errorf("no such topology")
		}
		return &Result{
			Topology: j.Topo,
			AvgHops:  float64(len(j.SR)+len(j.SC)) + j.Load,
			NumLinks: int(j.EffectiveSeed() % 1000),
		}, nil
	}
}

// testJobs is a fixed job set with a duplicate spec (indices 1 and 3).
func testJobs() []Job {
	return []Job{
		{Mode: ModePredict, Scenario: "a", Topo: "mesh"},
		{Mode: ModePredict, Scenario: "a", Topo: "sparse-hamming", SR: []int{4}, SC: []int{2, 5}},
		{Mode: ModeLoad, Scenario: "b", Topo: "torus", Load: 0.3, Pattern: "transpose"},
		{Mode: ModePredict, Scenario: "a", Topo: "sparse-hamming", SR: []int{4}, SC: []int{2, 5}},
		{Mode: ModeCost, Scenario: "c", Rows: 4, Cols: 5, Topo: "sparse-hamming", SR: []int{2}},
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	jobs := testJobs()
	serialRunner := &Runner{Eval: fakeEval(nil), Workers: 1}
	serial, serialRep, err := serialRunner.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallelRunner := &Runner{Eval: fakeEval(nil), Workers: 8}
	parallel, parallelRep, err := parallelRunner.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel results differ from serial:\n%v\n%v", serial, parallel)
	}
	if serialRep.Unique != 4 || parallelRep.Unique != 4 {
		t.Errorf("unique = %d/%d, want 4 (one duplicate)", serialRep.Unique, parallelRep.Unique)
	}
	if serialRep.Computed != 4 || parallelRep.Computed != 4 {
		t.Errorf("computed = %d/%d, want 4", serialRep.Computed, parallelRep.Computed)
	}
	// The duplicate indices share one result.
	if serial[1] != serial[3] {
		t.Error("duplicate jobs should share one result")
	}
}

func TestRunnerCacheAccounting(t *testing.T) {
	jobs := testJobs()
	var calls atomic.Int64
	cache := NewCache()
	r := &Runner{Eval: fakeEval(&calls), Workers: 4, Cache: cache}

	first, rep1, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHits != 0 || rep1.Computed != 4 {
		t.Errorf("first run: %+v, want 0 hits, 4 computed", rep1)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("first run evaluated %d times, want 4 (dedup)", got)
	}

	second, rep2, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != 4 || rep2.Computed != 0 {
		t.Errorf("second run: %+v, want 4 hits, 0 computed", rep2)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("second run re-evaluated: %d total calls, want still 4", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached results differ from computed ones")
	}
	hits, misses := cache.Stats()
	if hits != 4 || misses != 4 {
		t.Errorf("cache stats = %d hits, %d misses, want 4/4", hits, misses)
	}
}

func TestRunnerErrorIsDeterministic(t *testing.T) {
	jobs := []Job{
		{Mode: ModePredict, Scenario: "a", Topo: "mesh"},
		{Mode: ModePredict, Scenario: "a", Topo: "broken"},
		{Mode: ModePredict, Scenario: "b", Topo: "broken", SR: []int{2}},
		{Mode: ModePredict, Scenario: "a", Topo: "torus"},
	}
	for _, workers := range []int{1, 8} {
		r := &Runner{Eval: fakeEval(nil), Workers: workers}
		results, rep, err := r.Run(jobs)
		if err == nil {
			t.Fatal("expected an error")
		}
		// Always the lowest-indexed failing job, regardless of
		// completion order.
		if !strings.Contains(err.Error(), "job 1") {
			t.Errorf("workers=%d: error %q, want the job-1 failure", workers, err)
		}
		if rep.Failed != 2 {
			t.Errorf("workers=%d: failed = %d, want 2", workers, rep.Failed)
		}
		// Successful jobs still return results.
		if results[0] == nil || results[3] == nil || results[1] != nil {
			t.Errorf("workers=%d: partial results wrong: %v", workers, results)
		}
	}
}

func TestRunnerProgressEvents(t *testing.T) {
	var events []ProgressEvent
	r := &Runner{
		Eval: fakeEval(nil), Workers: 4,
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	}
	if _, _, err := r.Run(testJobs()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("%d progress events, want 4 (unique jobs)", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 4 {
			t.Errorf("event %d = %d/%d, want %d/4", i, ev.Done, ev.Total, i+1)
		}
	}
}

func TestKeyStability(t *testing.T) {
	a := Job{Mode: ModePredict, Scenario: "a", Topo: "mesh"}
	b := Job{Mode: ModePredict, Scenario: "a", Topo: "mesh", Routing: "auto", Pattern: "uniform", Quality: "quick"}
	if a.Key() != b.Key() {
		t.Error("explicit defaults must hash like the zero value")
	}
	variants := []Job{
		{Mode: ModeCost, Scenario: "a", Topo: "mesh"},
		{Mode: ModePredict, Scenario: "b", Topo: "mesh"},
		{Mode: ModePredict, Scenario: "a", Topo: "torus"},
		{Mode: ModePredict, Scenario: "a", Topo: "mesh", SR: []int{2}},
		{Mode: ModePredict, Scenario: "a", Topo: "mesh", Seed: 2},
		{Mode: ModePredict, Scenario: "a", Topo: "mesh", Quality: "full"},
		{Mode: ModePredict, Scenario: "a", Topo: "mesh", Rows: 4, Cols: 4},
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.25},
	}
	seen := map[string]bool{a.Key(): true}
	for _, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Errorf("key collision for %v", v)
		}
		seen[k] = true
	}
}

// TestArchOverrideKeys pins the arch-override hashing contract: a nil
// override and an all-zero one hash identically (so pre-override
// cache keys stay valid), while any set field produces a distinct
// key, and distinct overrides do not collide.
func TestArchOverrideKeys(t *testing.T) {
	base := Job{Mode: ModePredict, Scenario: "a", Topo: "mesh"}
	zero := base
	zero.Arch = &ArchOverride{}
	if base.Key() != zero.Key() {
		t.Error("zero override must hash like a nil one")
	}
	if base.EffectiveSeed() != zero.EffectiveSeed() {
		t.Error("zero override must derive the same seed as a nil one")
	}
	overrides := []ArchOverride{
		{EndpointGE: 50e6},
		{CoresPerTile: 2},
		{FreqHz: 1e9},
		{LinkBWBits: 256},
		{NumVCs: 4},
		{BufDepthFlits: 8},
		{TileAspect: 2},
		{EndpointGE: 50e6, CoresPerTile: 2},
	}
	seen := map[string]bool{base.Key(): true}
	for _, o := range overrides {
		j := base
		o := o
		j.Arch = &o
		k := j.Key()
		if seen[k] {
			t.Errorf("key collision for override %+v", o)
		}
		seen[k] = true
	}
}

func TestEffectiveSeedDeterministic(t *testing.T) {
	j := Job{Mode: ModePredict, Scenario: "a", Topo: "mesh"}
	if j.EffectiveSeed() != j.EffectiveSeed() {
		t.Error("derived seed not stable")
	}
	if j.EffectiveSeed() <= 0 {
		t.Error("derived seed must be positive")
	}
	k := j
	k.Seed = 7
	if k.EffectiveSeed() != 7 {
		t.Error("explicit seed must win")
	}
	other := Job{Mode: ModePredict, Scenario: "b", Topo: "mesh"}
	if j.EffectiveSeed() == other.EffectiveSeed() {
		t.Error("distinct specs should derive distinct seeds")
	}
}

func TestCacheMissingFile(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing cache file must not error: %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("fresh cache has %d entries", c.Len())
	}
}

func TestCacheCorruptedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(path)
	if err == nil {
		t.Error("corrupted cache should report an error")
	}
	if c == nil || c.Len() != 0 {
		t.Fatal("corrupted cache must still yield a usable empty cache")
	}
	// The cache works and can overwrite the corrupted file.
	j := Job{Mode: ModeCost, Scenario: "a", Topo: "mesh"}
	c.Put(j, &Result{Topology: "mesh"})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCache(path)
	if err != nil {
		t.Fatalf("saved cache unreadable: %v", err)
	}
	if res, ok := re.Get(j.Key()); !ok || res.Topology != "mesh" {
		t.Errorf("round-trip lost the entry: %v %v", res, ok)
	}
}

// TestCacheReadErrorDisablesPersistence pins the data-safety rule: a
// cache file that exists but cannot be read (here: it is a
// directory) must not be overwritten by a later Save — only
// corrupted files, which are already unusable, may be replaced.
func TestCacheReadErrorDisablesPersistence(t *testing.T) {
	dir := t.TempDir() // a directory at the cache path: ReadFile fails, the path exists
	c, err := OpenCache(dir)
	if err == nil {
		t.Error("unreadable cache should report an error")
	}
	c.Put(Job{Mode: ModeCost, Scenario: "a", Topo: "mesh"}, &Result{})
	if err := c.Save(); err != nil {
		t.Errorf("Save must be a no-op, got %v", err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Error("Save overwrote the unreadable path")
	}
}

func TestCacheVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"entries":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(path)
	if err == nil {
		t.Error("version mismatch should report an error")
	}
	if c.Len() != 0 {
		t.Error("version mismatch must start fresh")
	}
}

func TestCacheSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs()
	for i, j := range jobs {
		c.Put(j, &Result{Topology: j.Topo, NumLinks: i})
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 { // one duplicate collapses
		t.Errorf("reloaded %d entries, want 4", re.Len())
	}
	for _, j := range jobs {
		if _, ok := re.Get(j.Key()); !ok {
			t.Errorf("entry %v missing after reload", j)
		}
	}
	// In-memory caches ignore Save.
	if err := NewCache().Save(); err != nil {
		t.Errorf("in-memory Save() = %v", err)
	}
}

// TestCacheSavePreservesPermissions: rewriting via temp-file+rename
// must not silently tighten a shared cache file's mode.
func TestCacheSavePreservesPermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte(fmt.Sprintf(`{"version":%d,"entries":{}}`, cacheVersion)), 0o664); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(path, 0o664); err != nil { // WriteFile's mode is masked by umask
		t.Fatal(err)
	}
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(Job{Mode: ModeCost, Scenario: "a", Topo: "mesh"}, &Result{})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o664 {
		t.Errorf("saved cache mode = %v, want 0664 preserved", fi.Mode().Perm())
	}
}

func TestRunnerWithoutEval(t *testing.T) {
	r := &Runner{}
	if _, _, err := r.Run(testJobs()); err == nil {
		t.Error("runner without Eval must error")
	}
}

func TestRunnerOnReport(t *testing.T) {
	var got *Report
	r := &Runner{
		Eval: fakeEval(nil), Workers: 2,
		OnReport: func(rep Report) { got = &rep },
	}
	if _, _, err := r.Run(testJobs()); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("OnReport not called")
	}
	if got.Jobs != 5 || got.Unique != 4 || got.Computed != 4 {
		t.Errorf("reported %+v", got)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Jobs: 12, Unique: 10, CacheHits: 3, Computed: 7}
	s := rep.String()
	if !strings.Contains(s, "12 jobs") || !strings.Contains(s, "7 computed") || !strings.Contains(s, "3 cached") {
		t.Errorf("report = %q", s)
	}
}

func TestTryAcquireBounded(t *testing.T) {
	r := &Runner{Eval: fakeEval(nil), Workers: 2}
	if !r.TryAcquire() || !r.TryAcquire() {
		t.Fatal("could not borrow the configured slots")
	}
	if r.TryAcquire() {
		t.Fatal("borrowed more slots than Workers")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	r.Release()
	r.Release()
}
