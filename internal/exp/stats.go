package exp

import "sync/atomic"

// runnerStats is the Runner's cumulative accounting, updated with
// plain atomics at batch and evaluation boundaries so sampling it
// never contends with the worker pool.
type runnerStats struct {
	batches  atomic.Int64
	jobs     atomic.Int64
	computed atomic.Int64
	cached   atomic.Int64
	shared   atomic.Int64
	failed   atomic.Int64

	busyNanos atomic.Int64 // summed evaluation time across workers

	groups      atomic.Int64 // multi-job EvalGroup dispatches completed
	groupedJobs atomic.Int64 // jobs answered by those dispatches

	inFlight atomic.Int64 // evaluation slots currently held
	waiting  atomic.Int64 // goroutines blocked waiting for a slot
}

// RunnerStats is a point-in-time snapshot of a Runner's cumulative
// counters and instantaneous gauges (see Runner.Stats).
type RunnerStats struct {
	// Batches counts completed Run/RunContext/RunObserved calls.
	Batches int64
	// Jobs counts jobs requested across all batches (before dedup).
	Jobs int64
	// Computed, Cached, Shared, and Failed partition the unique jobs
	// of all completed batches by how they were answered (matching the
	// per-batch Report fields).
	Computed int64
	Cached   int64
	Shared   int64
	Failed   int64

	// BusyNanos sums evaluation wall-time across workers, in
	// nanoseconds — divide by elapsed process time times Workers for
	// pool utilization.
	BusyNanos int64

	// Groups counts completed multi-job EvalGroup dispatches and
	// GroupedJobs the jobs they answered (jobs per group =
	// GroupedJobs/Groups — the batching amortization at the runner
	// level). Jobs dispatched alone, answered from the cache, or
	// evaluated by the per-job fallback are not counted.
	Groups      int64
	GroupedJobs int64

	// InFlight is the number of evaluation slots currently held
	// (including slots borrowed through TryAcquire); Waiting is the
	// number of goroutines currently blocked waiting for a slot; both
	// are instantaneous. Workers is the effective slot-pool size.
	InFlight int64
	Waiting  int64
	Workers  int
}

// Stats returns a snapshot of the runner's cumulative counters and
// instantaneous gauges. Each field is individually atomic; the
// snapshot as a whole is not a consistent cut, which is fine for
// scraping.
func (r *Runner) Stats() RunnerStats {
	return RunnerStats{
		Batches:     r.stats.batches.Load(),
		Jobs:        r.stats.jobs.Load(),
		Computed:    r.stats.computed.Load(),
		Cached:      r.stats.cached.Load(),
		Shared:      r.stats.shared.Load(),
		Failed:      r.stats.failed.Load(),
		BusyNanos:   r.stats.busyNanos.Load(),
		Groups:      r.stats.groups.Load(),
		GroupedJobs: r.stats.groupedJobs.Load(),
		InFlight:    r.stats.inFlight.Load(),
		Waiting:     r.stats.waiting.Load(),
		Workers:     r.effectiveWorkers(),
	}
}
