package exp

import (
	"fmt"
	"io"
	"time"
)

// LogProgress returns a Progress callback printing one line per
// completed unique job to w — the campaign equivalent of a build
// log. Lines look like
//
//	[ 3/24] predict a sparse-hamming sr=[4] sc=[2,5]  1.82s
//	[ 4/24] predict a mesh  cached
//
// The Runner delivers progress events serially, so the callback
// needs no synchronization of its own.
func LogProgress(w io.Writer) func(ProgressEvent) {
	return func(ev ProgressEvent) {
		width := len(fmt.Sprint(ev.Total))
		switch {
		case ev.Err != nil:
			fmt.Fprintf(w, "[%*d/%d] %s  error: %v\n", width, ev.Done, ev.Total, ev.Job, ev.Err)
		case ev.Cached:
			fmt.Fprintf(w, "[%*d/%d] %s  cached\n", width, ev.Done, ev.Total, ev.Job)
		case ev.Shared:
			fmt.Fprintf(w, "[%*d/%d] %s  shared\n", width, ev.Done, ev.Total, ev.Job)
		default:
			fmt.Fprintf(w, "[%*d/%d] %s  %s\n", width, ev.Done, ev.Total, ev.Job,
				ev.Elapsed.Round(10*time.Millisecond))
		}
	}
}
