// Package exp is the experiment-campaign subsystem: a deterministic
// parallel runner for batches of toolchain evaluations with
// content-keyed result caching.
//
// The paper's whole evaluation is a design-space sweep — eight
// topologies times four scenarios times load sweeps, plus 2^(R+C-4)
// sparse Hamming configurations in design-space exploration — and
// every point is an independent simulation or cost-model evaluation.
// This package describes each point as a serializable Job, executes
// job batches on a worker pool sized to GOMAXPROCS, and memoizes
// results under a stable hash of the job spec so repeated campaigns
// skip already-computed points.
//
// Determinism: a Job fully determines its Result. Every simulation
// seed is part of the spec (Job.EffectiveSeed), jobs never share
// mutable state, and Runner.Run assembles results in input order —
// so a parallel run is bit-identical to a serial one, and cached
// results are bit-identical to recomputed ones.
//
// The evaluation function itself is injected (Runner.Eval): package
// noc wires the full prediction toolchain, package dse wires the fast
// cost model, keeping exp free of dependencies on either.
package exp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// Mode selects what a job evaluates.
type Mode string

// Available modes. ModePredict runs the full toolchain (physical
// model, saturation search, analytic model); ModeCost runs only the
// physical model; ModeLoad simulates a single offered-load point;
// ModeSurrogate runs the physical model plus the closed-form analytic
// performance estimates — cost-model speed per point, never a
// simulation — the first stage of surrogate-guided design-space
// exploration.
const (
	ModePredict   Mode = "predict"
	ModeCost      Mode = "cost"
	ModeLoad      Mode = "load"
	ModeSurrogate Mode = "surrogate"
)

// ModeNames lists the job modes in declaration order — the catalog
// the spec layer validates against and the campaign service exports.
func ModeNames() []string {
	return []string{string(ModePredict), string(ModeCost), string(ModeLoad), string(ModeSurrogate)}
}

// Job is one serializable experiment point: everything needed to
// reproduce one simulation or cost-model evaluation. The zero values
// of Routing, Pattern, and Quality are canonicalized onto the
// defaults they stand for ("auto", "uniform", "quick"), so those
// spellings hash equally. Rows/Cols are hashed verbatim: a spec that
// writes the preset's grid explicitly is a different key from one
// that leaves it zero — producers should pick one convention (the
// noc layers leave preset grids at zero; dse always writes the grid,
// since overriding it is its purpose).
type Job struct {
	Mode Mode `json:"mode"`

	// Scenario names the architecture preset: "a"|"b"|"c"|"d" for the
	// paper's evaluation scenarios, or "mempool". Rows/Cols, when
	// positive, override the preset's grid; Arch, when non-nil,
	// overrides architectural parameters beyond the grid (see
	// ArchOverride).
	Scenario string        `json:"scenario"`
	Rows     int           `json:"rows,omitempty"`
	Cols     int           `json:"cols,omitempty"`
	Arch     *ArchOverride `json:"arch,omitempty"`

	// Topo is the topology kind ("mesh", "sparse-hamming", ...); SR
	// and SC are the sparse Hamming offset sets (SR's first value is
	// the ruche factor for kind "ruche").
	Topo string `json:"topo"`
	SR   []int  `json:"sr,omitempty"`
	SC   []int  `json:"sc,omitempty"`

	// Routing names the algorithm ("" or "auto" for the topology's
	// co-designed default).
	Routing string `json:"routing,omitempty"`

	// Pattern is the traffic pattern for ModeLoad ("" means uniform
	// random; "trace:<path>" replays a workload trace file); Load is
	// the offered load in flits/node/cycle, or — for trace replays —
	// the replay's time-dilation scale.
	Pattern string  `json:"pattern,omitempty"`
	Load    float64 `json:"load,omitempty"`

	// Quality selects the simulation windows: "quick" (default) or
	// "full".
	Quality string `json:"quality,omitempty"`

	// Seed is the simulation seed; 0 derives a deterministic seed
	// from the job spec.
	Seed int64 `json:"seed,omitempty"`
}

// ArchOverride customizes the preset architecture named by
// Job.Scenario beyond its grid, making arbitrary architectures
// expressible as serializable, cache-sound job specs (the spec layer
// expands campaign files into jobs carrying these). All values are in
// the base units of tech.Arch (gate equivalents, Hz, bits/cycle);
// zero fields keep the preset's value.
type ArchOverride struct {
	EndpointGE    float64 `json:"endpoint_ge,omitempty"`     // per-tile endpoint budget, GE
	CoresPerTile  int     `json:"cores_per_tile,omitempty"`  // informational core count
	FreqHz        float64 `json:"freq_hz,omitempty"`         // NoC clock
	LinkBWBits    float64 `json:"link_bw_bits,omitempty"`    // per-link bandwidth / flit width
	NumVCs        int     `json:"num_vcs,omitempty"`         // router virtual channels
	BufDepthFlits int     `json:"buf_depth_flits,omitempty"` // per-VC buffer depth
	TileAspect    float64 `json:"tile_aspect,omitempty"`     // tile height:width ratio
}

// IsZero reports whether the override changes nothing (nil or all
// fields zero). Zero overrides hash identically to absent ones, so
// producers may pass either spelling.
func (o *ArchOverride) IsZero() bool {
	return o == nil || *o == ArchOverride{}
}

// canonical renders the spec in a fixed field order. It is the hash
// preimage; extending Job requires appending fields here (the leading
// version tag invalidates old caches when the encoding changes).
// The arch-override suffix appears only when an override is set, so
// override-free jobs keep the keys (and derived seeds) they had
// before the field existed, and existing caches stay valid.
func (j Job) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exp-v1|mode=%s|scenario=%s|rows=%d|cols=%d|topo=%s|sr=%s|sc=%s|routing=%s|pattern=%s|load=%g|quality=%s|seed=%d",
		j.Mode, j.Scenario, j.Rows, j.Cols, j.Topo,
		intsString(j.SR), intsString(j.SC),
		canonicalName(j.Routing, "auto"), canonicalName(j.Pattern, "uniform"),
		j.Load, canonicalName(j.Quality, "quick"), j.Seed)
	if o := j.Arch; !o.IsZero() {
		fmt.Fprintf(&b, "|arch=ge:%g,cores:%d,freq:%g,bw:%g,vcs:%d,buf:%d,aspect:%g",
			o.EndpointGE, o.CoresPerTile, o.FreqHz, o.LinkBWBits,
			o.NumVCs, o.BufDepthFlits, o.TileAspect)
	}
	return b.String()
}

// canonicalName maps the empty string onto the default it stands for,
// so "" and the explicit default hash equally.
func canonicalName(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func intsString(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// Key returns the content key of the spec: a stable hash identifying
// the job in the cache and deduplicating batches.
func (j Job) Key() string {
	sum := sha256.Sum256([]byte(j.canonical()))
	return hex.EncodeToString(sum[:16])
}

// EffectiveSeed returns the simulation seed: Seed when set, otherwise
// a deterministic value derived from the spec hash (so distinct jobs
// get decorrelated yet reproducible random streams).
func (j Job) EffectiveSeed() int64 {
	if j.Seed != 0 {
		return j.Seed
	}
	sum := sha256.Sum256([]byte(j.canonical()))
	v := int64(binary.LittleEndian.Uint64(sum[:8]) >> 1) // keep it positive
	if v == 0 {
		v = 1
	}
	return v
}

// String renders a compact human-readable job summary for progress
// lines and error messages.
func (j Job) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", j.Mode, j.Scenario)
	if j.Rows > 0 || j.Cols > 0 {
		fmt.Fprintf(&b, " %dx%d", j.Rows, j.Cols)
	}
	if !j.Arch.IsZero() {
		b.WriteString(" (arch override)")
	}
	fmt.Fprintf(&b, " %s", j.Topo)
	if len(j.SR) > 0 || len(j.SC) > 0 {
		fmt.Fprintf(&b, " sr=[%s] sc=[%s]", intsString(j.SR), intsString(j.SC))
	}
	if j.Routing != "" && j.Routing != "auto" {
		fmt.Fprintf(&b, " routing=%s", j.Routing)
	}
	if j.Mode == ModeLoad {
		fmt.Fprintf(&b, " pattern=%s load=%g", canonicalName(j.Pattern, "uniform"), j.Load)
	}
	return b.String()
}
