package exp

// Tests for the concurrent-batch features behind the campaign
// service: context cancellation, the shared evaluation-slot pool,
// and in-flight job sharing across overlapping Run calls.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// gatedEval returns an Eval that counts invocations and blocks until
// release is closed.
func gatedEval(count *atomic.Int64, started chan<- struct{}, release <-chan struct{}) func(Job) (*Result, error) {
	return func(j Job) (*Result, error) {
		count.Add(1)
		if started != nil {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		<-release
		return &Result{Topology: j.Topo, AvgHops: j.Load}, nil
	}
}

// threeJobs returns three distinct load-mode specs.
func threeJobs() []Job {
	return []Job{
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.1},
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.2},
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.3},
	}
}

// TestRunContextCancel pins the cancellation contract: in-progress
// evaluations finish and keep their results, undispatched jobs fail
// with the context error, and the call reports it.
func TestRunContextCancel(t *testing.T) {
	var count atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r := &Runner{Workers: 1, Eval: gatedEval(&count, started, release)}

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		results []*Result
		rep     Report
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		results, rep, err := r.RunContext(ctx, threeJobs())
		done <- outcome{results, rep, err}
	}()

	<-started // first job is in Eval; the other two are undispatched
	cancel()
	close(release)
	out := <-done

	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", out.err)
	}
	if got := count.Load(); got != 1 {
		t.Errorf("evaluations = %d, want 1 (in-flight only)", got)
	}
	if out.results[0] == nil || out.results[1] != nil || out.results[2] != nil {
		t.Errorf("results = %v, want in-flight job kept and canceled jobs nil", out.results)
	}
	if out.rep.Computed != 1 || out.rep.Failed != 2 {
		t.Errorf("report = %+v, want Computed=1 Failed=2", out.rep)
	}
}

// TestInFlightSharing pins cross-batch dedup: a batch submitted while
// another is evaluating the same specs joins the in-flight work and
// computes nothing itself.
func TestInFlightSharing(t *testing.T) {
	var count atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r := &Runner{Workers: 4, Cache: NewCache(), Eval: gatedEval(&count, started, release)}
	jobs := threeJobs()

	type outcome struct {
		results []*Result
		rep     Report
		err     error
	}
	runA := make(chan outcome, 1)
	go func() {
		results, rep, err := r.Run(jobs)
		runA <- outcome{results, rep, err}
	}()
	<-started // A has claimed every flight and begun evaluating

	runB := make(chan outcome, 1)
	go func() {
		results, rep, err := r.Run(jobs)
		runB <- outcome{results, rep, err}
	}()
	// B needs no synchronization beyond A's claims: whether B's
	// pre-pass runs before or after A finishes, every job resolves
	// from A's flight or A's cache entry, never a second evaluation.
	time.Sleep(10 * time.Millisecond)
	close(release)
	a, b := <-runA, <-runB

	if a.err != nil || b.err != nil {
		t.Fatalf("errors: A=%v B=%v", a.err, b.err)
	}
	if got := count.Load(); got != 3 {
		t.Errorf("evaluations = %d, want 3 (no duplicate work)", got)
	}
	if a.rep.Computed != 3 {
		t.Errorf("A report = %+v, want Computed=3", a.rep)
	}
	if b.rep.Computed != 0 || b.rep.Shared+b.rep.CacheHits != 3 {
		t.Errorf("B report = %+v, want Computed=0 and Shared+CacheHits=3", b.rep)
	}
	for i := range jobs {
		if a.results[i] == nil || b.results[i] == nil || *a.results[i] != *b.results[i] {
			t.Fatalf("job %d: results differ between batches: %v vs %v", i, a.results[i], b.results[i])
		}
	}
}

// TestAbandonedFlightReclaimed pins the handover: when the batch
// owning an in-flight job is canceled, a batch waiting on that job
// reclaims and evaluates it instead of inheriting the cancellation.
func TestAbandonedFlightReclaimed(t *testing.T) {
	var count atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r := &Runner{Workers: 1, Cache: NewCache(), Eval: gatedEval(&count, started, release)}
	jobs := threeJobs()

	ctxA, cancelA := context.WithCancel(context.Background())
	type outcome struct {
		rep Report
		err error
	}
	runA := make(chan outcome, 1)
	go func() {
		_, rep, err := r.RunContext(ctxA, jobs)
		runA <- outcome{rep, err}
	}()
	<-started // A evaluates job 0; jobs 1 and 2 are undispatched

	runB := make(chan outcome, 1)
	var resultsB []*Result
	go func() {
		results, rep, err := r.Run(jobs)
		resultsB = results
		runB <- outcome{rep, err}
	}()
	time.Sleep(10 * time.Millisecond) // let B join A's flights
	cancelA()                         // A abandons jobs 1 and 2
	close(release)
	a, b := <-runA, <-runB

	if !errors.Is(a.err, context.Canceled) {
		t.Fatalf("A error = %v, want context.Canceled", a.err)
	}
	if b.err != nil {
		t.Fatalf("B error = %v, want nil (another batch's cancel must not fail B)", b.err)
	}
	if b.rep.Failed != 0 || b.rep.Computed+b.rep.Shared+b.rep.CacheHits != 3 {
		t.Errorf("B report = %+v, want Failed=0 and all three jobs resolved", b.rep)
	}
	for i, res := range resultsB {
		if res == nil {
			t.Errorf("B result %d is nil", i)
		}
	}
	if got := count.Load(); got != 3 {
		t.Errorf("evaluations = %d, want 3 (job 0 once in A, jobs 1-2 reclaimed by B)", got)
	}
}
