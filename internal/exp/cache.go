package exp

import (
	"cmp"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheVersion tags the on-disk format; files with a different
// version are treated like corrupted ones (fresh cache, load error
// reported). Version 2: Result gained the surrogate ranking input
// AnalyticAvgChannelLoad and the measurement resolution
// SaturationResolutionPct — version-1 entries would deserialize with
// those fields silently zero, degrading the surrogate band selection
// and the validated-frontier tolerance, so they must not be reused.
const cacheVersion = 2

// Cache memoizes job results under their content keys. It is safe
// for concurrent use. A cache is in-memory by default; OpenCache
// attaches a JSON file so results persist across process invocations
// (repeated shsweep/shdse runs skip already-computed points).
type Cache struct {
	mu      sync.Mutex
	path    string
	entries map[string]cacheEntry
	hits    int
	misses  int
	dirty   bool
}

// cacheEntry stores the job alongside its result so cache files are
// self-describing (the key alone is opaque).
type cacheEntry struct {
	Job    Job     `json:"job"`
	Result *Result `json:"result"`
}

// cacheFile is the on-disk representation.
type cacheFile struct {
	Version int                   `json:"version"`
	Entries map[string]cacheEntry `json:"entries"`
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]cacheEntry{}}
}

// OpenCache returns a cache backed by the JSON file at path, loading
// any entries already there. A missing file is not an error (the
// first Save creates it). A corrupted or version-mismatched file
// yields a usable empty cache plus a non-nil error, so callers can
// warn and proceed rather than abort a campaign; Save will then
// overwrite the unusable file. A transient read error (permissions,
// I/O) also yields an empty cache plus the error, but with
// persistence disabled — the file's contents may still be good, so
// Save must not clobber them.
func OpenCache(path string) (*Cache, error) {
	c := NewCache()
	c.path = path
	if path == "" {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		c.path = "" // never overwrite a file we could not read
		return c, fmt.Errorf("exp: reading cache %s (persistence disabled): %w", path, err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return c, fmt.Errorf("exp: cache %s is corrupted, starting fresh: %w", path, err)
	}
	if f.Version != cacheVersion {
		return c, fmt.Errorf("exp: cache %s has version %d, want %d; starting fresh", path, f.Version, cacheVersion)
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c, nil
}

// Get looks a key up, counting the hit or miss.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		return e.Result, true
	}
	c.misses++
	return nil, false
}

// peek is Get without touching the hit/miss statistics — the
// runner's post-claim re-check uses it, and counting that probe
// would double every computed job as an extra miss in the stats the
// CLIs print.
func (c *Cache) peek(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e.Result, ok
}

// Put stores a result under the job's key.
func (c *Cache) Put(j Job, res *Result) {
	key := j.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cacheEntry{Job: j, Result: res}
	c.dirty = true
}

// Stats returns the hit and miss counts since the cache was created.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Save writes the cache to its file atomically (temp file + rename).
// It is a no-op for purely in-memory caches and when nothing changed
// since the last save.
func (c *Cache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path == "" || !c.dirty {
		return nil
	}
	data, err := json.MarshalIndent(cacheFile{Version: cacheVersion, Entries: c.entries}, "", " ")
	if err != nil {
		return fmt.Errorf("exp: encoding cache: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".exp-cache-*")
	if err != nil {
		return fmt.Errorf("exp: writing cache: %w", err)
	}
	// CreateTemp uses 0600; keep an existing file's (possibly shared)
	// permissions rather than silently tightening them on rewrite.
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(c.path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: writing cache %s: %w", c.path, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if err := cmp.Or(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: writing cache %s: %w", c.path, err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: writing cache %s: %w", c.path, err)
	}
	c.dirty = false
	return nil
}
