package exp

// Tests for grouped dispatch: GroupKey/EvalGroup batching, the
// cache-peel and singleton degradations, the per-job fallback on
// group failure, and in-flight sharing across concurrent batches of
// a grouped runner.

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scenarioGroups is a GroupKey batching jobs by scenario.
func scenarioGroups(j Job) (string, bool) {
	return j.Scenario, true
}

// fakeEvalGroup adapts fakeEval to the group signature, counting
// dispatches and recording group sizes.
func fakeEvalGroup(dispatches *atomic.Int64, sizes *[]int, mu *sync.Mutex) func([]Job) ([]*Result, error) {
	eval := fakeEval(nil)
	return func(jobs []Job) ([]*Result, error) {
		if dispatches != nil {
			dispatches.Add(1)
		}
		if sizes != nil {
			mu.Lock()
			*sizes = append(*sizes, len(jobs))
			mu.Unlock()
		}
		out := make([]*Result, len(jobs))
		for i, j := range jobs {
			res, err := eval(j)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
}

// groupJobs is three scenario-a jobs, two scenario-b jobs, and a
// scenario-c singleton.
func groupJobs() []Job {
	return []Job{
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.1},
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.2},
		{Mode: ModeLoad, Scenario: "a", Topo: "mesh", Load: 0.3},
		{Mode: ModeLoad, Scenario: "b", Topo: "torus", Load: 0.1},
		{Mode: ModeLoad, Scenario: "b", Topo: "torus", Load: 0.2},
		{Mode: ModeLoad, Scenario: "c", Topo: "ring", Load: 0.1},
	}
}

// TestGroupDispatch pins the dispatch split: multi-job groups go
// through EvalGroup, singletons through Eval, and results match the
// per-job evaluator's.
func TestGroupDispatch(t *testing.T) {
	var evals, dispatches atomic.Int64
	var sizes []int
	var mu sync.Mutex
	r := &Runner{
		Workers:   4,
		Eval:      fakeEval(&evals),
		GroupKey:  scenarioGroups,
		EvalGroup: fakeEvalGroup(&dispatches, &sizes, &mu),
	}
	jobs := groupJobs()
	got, rep, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Computed != len(jobs) {
		t.Errorf("report = %+v, want %d computed", rep, len(jobs))
	}
	if d := dispatches.Load(); d != 2 {
		t.Errorf("EvalGroup dispatches = %d, want 2 (scenarios a and b)", d)
	}
	if e := evals.Load(); e != 1 {
		t.Errorf("Eval calls = %d, want 1 (the scenario-c singleton)", e)
	}
	mu.Lock()
	gotSizes := append([]int(nil), sizes...)
	mu.Unlock()
	wantSizes := map[int]int{3: 1, 2: 1}
	for _, n := range gotSizes {
		wantSizes[n]--
	}
	for n, c := range wantSizes {
		if c != 0 {
			t.Errorf("group sizes = %v, want one group of 3 and one of 2 (size %d off by %d)", gotSizes, n, c)
		}
	}
	s := r.Stats()
	if s.Groups != 2 || s.GroupedJobs != 5 {
		t.Errorf("stats groups=%d groupedJobs=%d, want 2/5", s.Groups, s.GroupedJobs)
	}

	// Grouped results are the per-job evaluator's results.
	plain, _, err := (&Runner{Eval: fakeEval(nil), Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Errorf("grouped results differ from per-job:\n%v\n%v", got, plain)
	}
}

// TestGroupCachePeel: members already in the cache are resolved
// before dispatch, and a group peeled down to one member degrades to
// the per-job Eval path.
func TestGroupCachePeel(t *testing.T) {
	var evals, dispatches atomic.Int64
	r := &Runner{
		Workers:   4,
		Cache:     NewCache(),
		Eval:      fakeEval(&evals),
		GroupKey:  scenarioGroups,
		EvalGroup: fakeEvalGroup(&dispatches, nil, nil),
	}
	jobs := groupJobs()[:3] // the scenario-a group
	if _, _, err := r.Run(jobs[:2]); err != nil {
		t.Fatal(err)
	}
	d0, e0 := dispatches.Load(), evals.Load()

	_, rep, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 2 || rep.Computed != 1 {
		t.Errorf("report = %+v, want 2 cached / 1 computed", rep)
	}
	if d := dispatches.Load() - d0; d != 0 {
		t.Errorf("EvalGroup dispatches = %d, want 0 (peeled to a singleton)", d)
	}
	if e := evals.Load() - e0; e != 1 {
		t.Errorf("Eval calls = %d, want 1", e)
	}
}

// TestGroupFallback pins the failure contract: a group dispatch that
// errors, returns the wrong result count, or returns a nil member is
// retried member by member through Eval, preserving per-job failure
// semantics.
func TestGroupFallback(t *testing.T) {
	cases := []struct {
		name string
		eg   func([]Job) ([]*Result, error)
	}{
		{"error", func(jobs []Job) ([]*Result, error) {
			return nil, fmt.Errorf("batch engine declined")
		}},
		{"short", func(jobs []Job) ([]*Result, error) {
			return make([]*Result, len(jobs)-1), nil
		}},
		{"nil member", func(jobs []Job) ([]*Result, error) {
			out := make([]*Result, len(jobs))
			for i := range out[:len(out)-1] {
				out[i] = &Result{Topology: jobs[i].Topo}
			}
			return out, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var evals atomic.Int64
			r := &Runner{
				Workers:   2,
				Eval:      fakeEval(&evals),
				GroupKey:  scenarioGroups,
				EvalGroup: tc.eg,
			}
			jobs := groupJobs()[:3]
			got, rep, err := r.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Computed != len(jobs) {
				t.Errorf("report = %+v, want %d computed", rep, len(jobs))
			}
			if e := evals.Load(); e != int64(len(jobs)) {
				t.Errorf("Eval calls = %d, want %d (full fallback)", e, len(jobs))
			}
			if s := r.Stats(); s.Groups != 0 {
				t.Errorf("failed dispatch counted as %d completed groups", s.Groups)
			}
			for i, res := range got {
				if res == nil {
					t.Errorf("result %d is nil after fallback", i)
				}
			}
		})
	}
}

// TestGroupedInFlightSharing extends TestInFlightSharing to grouped
// dispatch: a second batch submitted while a grouped batch is
// evaluating the same specs computes nothing — every job resolves
// from the first batch's flights or cache entries, under the race
// detector in CI.
func TestGroupedInFlightSharing(t *testing.T) {
	var evals, dispatches atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	inner := fakeEvalGroup(&dispatches, nil, nil)
	r := &Runner{
		Workers:  4,
		Cache:    NewCache(),
		Eval:     gatedEval(&evals, started, release),
		GroupKey: scenarioGroups,
		EvalGroup: func(jobs []Job) ([]*Result, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return inner(jobs)
		},
	}
	jobs := groupJobs()[:3] // one group, three jobs

	type outcome struct {
		results []*Result
		rep     Report
		err     error
	}
	runA := make(chan outcome, 1)
	go func() {
		results, rep, err := r.Run(jobs)
		runA <- outcome{results, rep, err}
	}()
	<-started // A owns every flight and its group dispatch is in EvalGroup

	runB := make(chan outcome, 1)
	go func() {
		results, rep, err := r.Run(jobs)
		runB <- outcome{results, rep, err}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	a, b := <-runA, <-runB

	if a.err != nil || b.err != nil {
		t.Fatalf("errors: A=%v B=%v", a.err, b.err)
	}
	if d := dispatches.Load(); d != 1 {
		t.Errorf("EvalGroup dispatches = %d, want 1", d)
	}
	if e := evals.Load(); e != 0 {
		t.Errorf("per-job Eval calls = %d, want 0", e)
	}
	if a.rep.Computed != 3 {
		t.Errorf("A report = %+v, want Computed=3", a.rep)
	}
	if b.rep.Computed != 0 || b.rep.Shared+b.rep.CacheHits != 3 {
		t.Errorf("B report = %+v, want Computed=0 and Shared+CacheHits=3", b.rep)
	}
	for i := range jobs {
		if a.results[i] == nil || b.results[i] == nil || *a.results[i] != *b.results[i] {
			t.Fatalf("job %d: results differ between batches: %v vs %v", i, a.results[i], b.results[i])
		}
	}
}
