package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Runner executes job batches on a worker pool with optional result
// caching and progress reporting. The zero value plus an Eval
// function is ready to use.
type Runner struct {
	// Eval computes one job. It must be safe for concurrent calls and
	// deterministic in the job spec (same Job, same Result) — every
	// evaluator in this repository seeds its random streams from the
	// job, so this holds by construction.
	Eval func(Job) (*Result, error)

	// Workers bounds the pool size; values <= 0 mean GOMAXPROCS.
	Workers int

	// Cache, when non-nil, short-circuits jobs whose key is already
	// present and stores freshly computed results.
	Cache *Cache

	// Progress, when non-nil, receives one event per completed unique
	// job. Events are delivered serially.
	Progress func(ProgressEvent)

	// OnReport, when non-nil, receives the aggregate report after
	// every Run call (including failed ones) — CLIs hook it to print
	// campaign summaries without threading the report through the
	// intermediate campaign layers.
	OnReport func(Report)
}

// ProgressEvent describes one completed unique job.
type ProgressEvent struct {
	Done, Total int // unique jobs completed / in the batch
	Job         Job
	Cached      bool
	Err         error
	Elapsed     time.Duration // evaluation time (0 when cached)
}

// Report aggregates one Run call.
type Report struct {
	Jobs      int // jobs requested
	Unique    int // distinct specs after dedup
	CacheHits int // unique jobs answered from the cache
	Computed  int // unique jobs evaluated
	Failed    int // unique jobs whose evaluation errored
	Wall      time.Duration
	Compute   time.Duration // evaluation time summed across workers
}

// String renders the report for campaign footers.
func (r Report) String() string {
	s := fmt.Sprintf("%d jobs (%d unique): %d computed, %d cached",
		r.Jobs, r.Unique, r.Computed, r.CacheHits)
	if r.Failed > 0 {
		s += fmt.Sprintf(", %d failed", r.Failed)
	}
	s += fmt.Sprintf("; wall %s", r.Wall.Round(time.Millisecond))
	if r.Computed > 0 {
		s += fmt.Sprintf(", compute %s", r.Compute.Round(time.Millisecond))
	}
	return s
}

// unit is one unique spec in a batch, shared by all duplicate indices.
type unit struct {
	job    Job
	res    *Result
	err    error
	cached bool
	dur    time.Duration
}

// Run executes the batch and returns one result per job, in input
// order. Duplicate specs are evaluated once and share one Result.
// When evaluations fail, Run still completes the rest of the batch,
// returns every successful result, and reports the error of the
// lowest-indexed failing job (so a parallel run fails identically to
// a serial one).
func (r *Runner) Run(jobs []Job) ([]*Result, Report, error) {
	start := time.Now()
	rep := Report{Jobs: len(jobs)}
	if r.Eval == nil {
		return nil, rep, fmt.Errorf("exp: runner has no Eval function")
	}

	// Deduplicate by content key, preserving first-seen order.
	byKey := map[string]*unit{}
	var order []*unit
	units := make([]*unit, len(jobs))
	for i, j := range jobs {
		k := j.Key()
		u, ok := byKey[k]
		if !ok {
			u = &unit{job: j}
			byKey[k] = u
			order = append(order, u)
		}
		units[i] = u
	}
	rep.Unique = len(order)

	// Resolve cache hits up front; the remainder goes to the pool.
	var todo []*unit
	for _, u := range order {
		if r.Cache != nil {
			if res, ok := r.Cache.Get(u.job.Key()); ok {
				u.res, u.cached = res, true
				rep.CacheHits++
				continue
			}
		}
		todo = append(todo, u)
	}

	var (
		mu   sync.Mutex
		done int
	)
	emit := func(u *unit) {
		mu.Lock()
		done++
		ev := ProgressEvent{
			Done: done, Total: rep.Unique,
			Job: u.job, Cached: u.cached, Err: u.err, Elapsed: u.dur,
		}
		if r.Progress != nil {
			r.Progress(ev)
		}
		mu.Unlock()
	}
	for _, u := range order {
		if u.cached {
			emit(u)
		}
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	work := make(chan *unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				t0 := time.Now()
				u.res, u.err = r.Eval(u.job)
				u.dur = time.Since(t0)
				if u.err == nil && r.Cache != nil {
					r.Cache.Put(u.job, u.res)
				}
				emit(u)
			}
		}()
	}
	for _, u := range todo {
		work <- u
	}
	close(work)
	wg.Wait()

	out := make([]*Result, len(jobs))
	var firstErr error
	for i, u := range units {
		if u.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("exp: job %d (%s): %w", i, u.job, u.err)
			}
			continue
		}
		out[i] = u.res
	}
	for _, u := range order {
		rep.Compute += u.dur
		if u.err != nil {
			rep.Failed++
		} else if !u.cached {
			rep.Computed++
		}
	}
	rep.Wall = time.Since(start)
	if r.OnReport != nil {
		r.OnReport(rep)
	}
	return out, rep, firstErr
}
