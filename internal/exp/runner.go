package exp

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"
)

// Runner executes job batches on a worker pool with optional result
// caching and progress reporting. The zero value plus an Eval
// function is ready to use.
//
// A Runner may execute several batches concurrently (the campaign
// service runs every client submission through one shared Runner):
// total evaluation concurrency across all in-flight Run/RunContext
// calls is bounded by one shared Workers-sized slot pool, and a job
// spec being evaluated by one batch is never evaluated again by an
// overlapping batch — late arrivals wait for the in-flight evaluation
// and share its result (ProgressEvent.Shared, Report.Shared).
type Runner struct {
	// Eval computes one job. It must be safe for concurrent calls and
	// deterministic in the job spec (same Job, same Result) — every
	// evaluator in this repository seeds its random streams from the
	// job, so this holds by construction.
	Eval func(Job) (*Result, error)

	// GroupKey, when set together with EvalGroup, names the batch group
	// a job belongs to: jobs of one Run call mapping to the same key
	// (and not answered by the cache or another batch's flight) are
	// dispatched to EvalGroup together instead of one Eval call each.
	// Returning ok == false keeps the job on the per-job Eval path.
	// The noc layer groups load-sweep jobs that share a topology build
	// so the simulator batches them over one shared Shape.
	GroupKey func(Job) (string, bool)

	// EvalGroup computes a group of jobs in one call, returning one
	// Result per job in input order. Like Eval it must be concurrency-
	// safe and deterministic per job spec; each job's Result must be
	// identical to what Eval would have produced, because group
	// composition is scheduling-dependent (cache hits and concurrent
	// batches peel members off) and results are cached under per-job
	// keys. A group occupies one evaluation slot. When EvalGroup
	// errors, the runner transparently re-evaluates every member
	// through Eval so one bad member cannot fail its groupmates.
	EvalGroup func([]Job) ([]*Result, error)

	// Workers bounds the pool size; values <= 0 mean GOMAXPROCS. The
	// bound is shared across concurrent Run calls (the first call
	// fixes it).
	Workers int

	// Cache, when non-nil, short-circuits jobs whose key is already
	// present and stores freshly computed results.
	Cache *Cache

	// Progress, when non-nil, receives one event per completed unique
	// job. Events of one Run call are delivered serially; concurrent
	// Run calls deliver their events concurrently (guard accordingly,
	// or use RunObserved for a per-call observer).
	Progress func(ProgressEvent)

	// OnReport, when non-nil, receives the aggregate report after
	// every Run call (including failed ones) — CLIs hook it to print
	// campaign summaries without threading the report through the
	// intermediate campaign layers.
	OnReport func(Report)

	// Log, when non-nil, receives structured debug events for the
	// rarely-exercised coordination paths (abandoned flights, reclaims
	// after another batch's cancellation). Nil stays silent.
	Log *slog.Logger

	// semOnce lazily sizes sem, the shared evaluation-slot pool that
	// bounds concurrency across overlapping Run calls.
	semOnce sync.Once
	sem     chan struct{}

	// stats holds the cumulative counters and gauges behind Stats().
	stats runnerStats

	// flight tracks job evaluations currently in progress across all
	// Run calls, keyed by content key, so overlapping batches never
	// duplicate work the cache cannot yet answer.
	flightMu sync.Mutex
	flight   map[string]*flight
}

// flight is one in-progress evaluation; done is closed once res/err
// are set.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// ProgressEvent describes one completed unique job.
type ProgressEvent struct {
	Done, Total int // unique jobs completed / in the batch
	Job         Job
	Cached      bool
	Shared      bool // answered by another batch's in-flight evaluation
	Err         error
	Elapsed     time.Duration // evaluation time (0 when cached or shared)
}

// Report aggregates one Run call.
type Report struct {
	Jobs      int // jobs requested
	Unique    int // distinct specs after dedup
	CacheHits int // unique jobs answered from the cache
	Shared    int // unique jobs answered by another batch's in-flight evaluation
	Computed  int // unique jobs evaluated
	Failed    int // unique jobs whose evaluation errored
	Wall      time.Duration
	Compute   time.Duration // evaluation time summed across workers
}

// String renders the report for campaign footers.
func (r Report) String() string {
	s := fmt.Sprintf("%d jobs (%d unique): %d computed, %d cached",
		r.Jobs, r.Unique, r.Computed, r.CacheHits)
	if r.Shared > 0 {
		s += fmt.Sprintf(", %d shared in-flight", r.Shared)
	}
	if r.Failed > 0 {
		s += fmt.Sprintf(", %d failed", r.Failed)
	}
	s += fmt.Sprintf("; wall %s", r.Wall.Round(time.Millisecond))
	if r.Computed > 0 {
		s += fmt.Sprintf(", compute %s", r.Compute.Round(time.Millisecond))
	}
	return s
}

// unit is one unique spec in a batch, shared by all duplicate indices.
type unit struct {
	job    Job
	flight *flight
	res    *Result
	err    error
	cached bool
	shared bool
	dur    time.Duration
}

// Run executes the batch and returns one result per job, in input
// order. Duplicate specs are evaluated once and share one Result.
// When evaluations fail, Run still completes the rest of the batch,
// returns every successful result, and reports the error of the
// lowest-indexed failing job (so a parallel run fails identically to
// a serial one).
func (r *Runner) Run(jobs []Job) ([]*Result, Report, error) {
	return r.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: when ctx is canceled, no new
// evaluations start, in-progress ones finish (the simulator is not
// interruptible mid-run), and the call returns every result it
// already has plus the context's error. Jobs another batch is waiting
// on are handed back to that batch for evaluation rather than failed.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) ([]*Result, Report, error) {
	return r.run(ctx, jobs, r.Progress)
}

// RunObserved is RunContext with a per-call progress observer:
// observe receives this call's events (serially, like Progress)
// after any runner-level Progress hook. The campaign service uses it
// to route one shared Runner's events to the right campaign.
func (r *Runner) RunObserved(ctx context.Context, jobs []Job, observe func(ProgressEvent)) ([]*Result, Report, error) {
	progress := r.Progress
	if progress == nil {
		progress = observe
	} else if observe != nil {
		global := progress
		progress = func(ev ProgressEvent) {
			global(ev)
			observe(ev)
		}
	}
	return r.run(ctx, jobs, progress)
}

// effectiveWorkers resolves the Workers default.
func (r *Runner) effectiveWorkers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// acquire takes one shared evaluation slot, sizing the pool on first
// use.
func (r *Runner) acquire() {
	r.semOnce.Do(func() { r.sem = make(chan struct{}, r.effectiveWorkers()) })
	r.stats.waiting.Add(1)
	r.sem <- struct{}{}
	r.stats.waiting.Add(-1)
	r.stats.inFlight.Add(1)
}

// release returns one shared evaluation slot.
func (r *Runner) release() {
	r.stats.inFlight.Add(-1)
	<-r.sem
}

// TryAcquire attempts to borrow one shared evaluation slot without
// blocking, returning whether it got one. Evaluators use it to run
// subtasks of a single job concurrently (the adaptive saturation
// search's speculative probes) without ever oversubscribing the pool:
// a job that gets no spare slot simply proceeds sequentially on the
// slot it already holds. Every successful TryAcquire must be paired
// with a Release.
func (r *Runner) TryAcquire() bool {
	r.semOnce.Do(func() { r.sem = make(chan struct{}, r.effectiveWorkers()) })
	select {
	case r.sem <- struct{}{}:
		r.stats.inFlight.Add(1)
		return true
	default:
		return false
	}
}

// Release returns a slot borrowed with TryAcquire.
func (r *Runner) Release() { r.release() }

// claim registers an in-flight evaluation for key. It returns the
// flight and whether the caller owns it (owns == false means another
// batch is already evaluating the key; wait on flight.done).
func (r *Runner) claim(key string) (*flight, bool) {
	r.flightMu.Lock()
	defer r.flightMu.Unlock()
	if r.flight == nil {
		r.flight = map[string]*flight{}
	}
	if f, ok := r.flight[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	r.flight[key] = f
	return f, true
}

// resolve completes an owned flight: publishes the outcome and wakes
// every waiter. Callers must store to the cache first, so batches
// that miss the flight window hit the cache instead.
func (r *Runner) resolve(key string, f *flight, res *Result, err error) {
	r.flightMu.Lock()
	delete(r.flight, key)
	r.flightMu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// evalUnit evaluates one owned unit under the shared slot pool,
// stores the result, and resolves the unit's flight. The cache is
// re-checked first: between this batch's cache pre-pass and its
// claim, another batch may have finished the job and retired its
// flight, and re-simulating a cached job would break the dedup
// contract.
func (r *Runner) evalUnit(u *unit) {
	if r.Cache != nil {
		if res, ok := r.Cache.peek(u.job.Key()); ok {
			u.res, u.cached = res, true
			r.resolve(u.job.Key(), u.flight, res, nil)
			return
		}
	}
	r.acquire()
	t0 := time.Now()
	u.res, u.err = r.Eval(u.job)
	u.dur = time.Since(t0)
	r.stats.busyNanos.Add(int64(u.dur))
	r.release()
	if u.err == nil && r.Cache != nil {
		r.Cache.Put(u.job, u.res)
	}
	r.resolve(u.job.Key(), u.flight, u.res, u.err)
}

// evalGroup evaluates one dispatch group of owned units under a
// single shared slot. Units the cache can answer by now are peeled
// off first (same re-peek as evalUnit); a surviving singleton takes
// the plain Eval path. On any group-level failure — error, wrong
// result count, nil member result — every surviving unit falls back
// to its own Eval call, preserving per-job failure semantics.
func (r *Runner) evalGroup(g []*unit) {
	if len(g) == 1 {
		r.evalUnit(g[0])
		return
	}
	var todo []*unit
	for _, u := range g {
		if r.Cache != nil {
			if res, ok := r.Cache.peek(u.job.Key()); ok {
				u.res, u.cached = res, true
				r.resolve(u.job.Key(), u.flight, res, nil)
				continue
			}
		}
		todo = append(todo, u)
	}
	if len(todo) == 0 {
		return
	}
	if len(todo) == 1 {
		r.evalUnit(todo[0])
		return
	}
	r.acquire()
	t0 := time.Now()
	jobs := make([]Job, len(todo))
	for i, u := range todo {
		jobs[i] = u.job
	}
	results, err := r.EvalGroup(jobs)
	dur := time.Since(t0)
	r.stats.busyNanos.Add(int64(dur))
	r.release()
	if err == nil && len(results) != len(todo) {
		err = fmt.Errorf("exp: EvalGroup returned %d results for %d jobs", len(results), len(todo))
	}
	if err == nil {
		for _, res := range results {
			if res == nil {
				err = fmt.Errorf("exp: EvalGroup returned a nil result")
				break
			}
		}
	}
	if err != nil {
		if r.Log != nil {
			r.Log.Debug("group eval failed, falling back to per-job", "jobs", len(todo), "err", err)
		}
		for _, u := range todo {
			r.evalUnit(u)
		}
		return
	}
	share := dur / time.Duration(len(todo))
	for i, u := range todo {
		u.res, u.dur = results[i], share
		if r.Cache != nil {
			r.Cache.Put(u.job, u.res)
		}
		r.resolve(u.job.Key(), u.flight, u.res, nil)
	}
	r.stats.groups.Add(1)
	r.stats.groupedJobs.Add(int64(len(todo)))
}

// abandon resolves an owned flight with the batch's context error so
// waiters in other batches can reclaim the key and evaluate it
// themselves instead of blocking forever.
func (r *Runner) abandon(u *unit, err error) {
	u.err = err
	if r.Log != nil {
		r.Log.Debug("flight abandoned", "job", u.job.String(), "err", err)
	}
	r.resolve(u.job.Key(), u.flight, nil, err)
}

// run is the shared implementation behind Run/RunContext/RunObserved.
func (r *Runner) run(ctx context.Context, jobs []Job, progress func(ProgressEvent)) ([]*Result, Report, error) {
	start := time.Now()
	rep := Report{Jobs: len(jobs)}
	if r.Eval == nil {
		return nil, rep, fmt.Errorf("exp: runner has no Eval function")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Deduplicate by content key, preserving first-seen order.
	byKey := map[string]*unit{}
	var order []*unit
	units := make([]*unit, len(jobs))
	for i, j := range jobs {
		k := j.Key()
		u, ok := byKey[k]
		if !ok {
			u = &unit{job: j}
			byKey[k] = u
			order = append(order, u)
		}
		units[i] = u
	}
	rep.Unique = len(order)

	// Resolve cache hits up front, then partition the remainder into
	// units this batch owns and units another in-flight batch is
	// already evaluating. Claims happen before any evaluation starts,
	// so a batch submitted while another runs joins every overlapping
	// job instead of recomputing it.
	var owned, joined []*unit
	for _, u := range order {
		if r.Cache != nil {
			if res, ok := r.Cache.Get(u.job.Key()); ok {
				u.res, u.cached = res, true
				continue
			}
		}
		f, mine := r.claim(u.job.Key())
		u.flight = f
		if mine {
			owned = append(owned, u)
		} else {
			joined = append(joined, u)
		}
	}

	var (
		mu   sync.Mutex
		done int
	)
	emit := func(u *unit) {
		mu.Lock()
		done++
		ev := ProgressEvent{
			Done: done, Total: rep.Unique,
			Job: u.job, Cached: u.cached, Shared: u.shared,
			Err: u.err, Elapsed: u.dur,
		}
		if progress != nil {
			progress(ev)
		}
		mu.Unlock()
	}
	for _, u := range order {
		if u.cached {
			emit(u)
		}
	}

	// Joined units wait for the owning batch's evaluation. If that
	// batch abandons the flight (its context was canceled), the
	// waiter reclaims the key and evaluates inline — another batch's
	// cancellation must not fail this one.
	var jwg sync.WaitGroup
	for _, u := range joined {
		jwg.Add(1)
		go func(u *unit) {
			defer jwg.Done()
			defer emit(u)
			for {
				select {
				case <-ctx.Done():
					u.err = ctx.Err()
					return
				case <-u.flight.done:
					if isContextErr(u.flight.err) {
						f, mine := r.claim(u.job.Key())
						u.flight = f
						if mine {
							if err := ctx.Err(); err != nil {
								r.abandon(u, err)
								return
							}
							if r.Log != nil {
								r.Log.Debug("flight reclaimed", "job", u.job.String())
							}
							r.evalUnit(u)
							return
						}
						continue // someone else reclaimed; wait again
					}
					u.res, u.err = u.flight.res, u.flight.err
					u.shared = u.err == nil
					return
				}
			}
		}(u)
	}

	// Owned units are dispatched in groups: with GroupKey/EvalGroup
	// configured, units sharing a group key travel to a worker together
	// (in first-seen order) and are evaluated in one EvalGroup call;
	// otherwise every unit is its own singleton group on the plain Eval
	// path. Each group occupies one worker and one shared slot, so
	// concurrent batches cannot oversubscribe the machine.
	groups := make([][]*unit, 0, len(owned))
	if r.GroupKey != nil && r.EvalGroup != nil {
		idx := map[string]int{}
		for _, u := range owned {
			k, ok := r.GroupKey(u.job)
			if !ok {
				groups = append(groups, []*unit{u})
				continue
			}
			if i, seen := idx[k]; seen {
				groups[i] = append(groups[i], u)
			} else {
				idx[k] = len(groups)
				groups = append(groups, []*unit{u})
			}
		}
	} else {
		for _, u := range owned {
			groups = append(groups, []*unit{u})
		}
	}
	workers := r.effectiveWorkers()
	if workers > len(groups) {
		workers = len(groups)
	}
	work := make(chan []*unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				if err := ctx.Err(); err != nil {
					for _, u := range g {
						r.abandon(u, err)
						emit(u)
					}
					continue
				}
				r.evalGroup(g)
				for _, u := range g {
					emit(u)
				}
			}
		}()
	}
dispatch:
	for i, g := range groups {
		select {
		case work <- g:
		case <-ctx.Done():
			// Hand every undispatched flight back so waiters in
			// other batches can take over.
			for _, gv := range groups[i:] {
				for _, v := range gv {
					r.abandon(v, ctx.Err())
					emit(v)
				}
			}
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	jwg.Wait()

	out := make([]*Result, len(jobs))
	var firstErr error
	for i, u := range units {
		if u.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("exp: job %d (%s): %w", i, u.job, u.err)
			}
			continue
		}
		out[i] = u.res
	}
	for _, u := range order {
		rep.Compute += u.dur
		switch {
		case u.err != nil:
			rep.Failed++
		case u.cached:
			rep.CacheHits++
		case u.shared:
			rep.Shared++
		default:
			rep.Computed++
		}
	}
	rep.Wall = time.Since(start)
	r.stats.batches.Add(1)
	r.stats.jobs.Add(int64(rep.Jobs))
	r.stats.computed.Add(int64(rep.Computed))
	r.stats.cached.Add(int64(rep.CacheHits))
	r.stats.shared.Add(int64(rep.Shared))
	r.stats.failed.Add(int64(rep.Failed))
	if r.OnReport != nil {
		r.OnReport(rep)
	}
	return out, rep, firstErr
}

// isContextErr reports whether err is a context cancellation or
// deadline error — the marker of an abandoned flight as opposed to a
// genuine evaluation failure.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
