package trace

// Application-shaped trace generators: the workload library behind
// `shgen -gen` and the checked-in examples/traces/ artifacts. Every
// generator is a deterministic function of its GenConfig (seeded
// math/rand, no wall clock), emits records globally sorted by cycle,
// and produces traces that pass Validate on any grid with at least
// two tiles.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// GenConfig parameterizes the trace generators. The zero value of
// every field but the grid selects a sensible default (see the field
// comments); Rows and Cols are mandatory.
type GenConfig struct {
	Rows, Cols int

	// Cycles is the trace horizon; records span [0, Cycles). 0 means
	// 3000.
	Cycles int64

	// Seed seeds the generator's private math/rand stream; equal
	// configurations produce byte-identical traces.
	Seed int64

	// Rate is the target offered load in flits per node per cycle
	// (averaged over the trace's active phases the way each workload
	// shapes them). 0 means 0.2.
	Rate float64

	// PacketLen is the packet size in flits for data packets
	// (mempool requests stay single-flit). 0 means 4.
	PacketLen int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c GenConfig) withDefaults() GenConfig {
	if c.Cycles == 0 {
		c.Cycles = 3000
	}
	if c.Rate == 0 {
		c.Rate = 0.2
	}
	if c.PacketLen == 0 {
		c.PacketLen = 4
	}
	return c
}

// validate rejects configurations no generator can honor.
func (c GenConfig) validate() error {
	if c.Rows < 1 || c.Cols < 1 || c.Rows*c.Cols < 2 {
		return fmt.Errorf("trace: generator needs a grid with >= 2 tiles, got %dx%d", c.Rows, c.Cols)
	}
	if c.Cycles < 1 {
		return fmt.Errorf("trace: generator needs a positive cycle horizon, got %d", c.Cycles)
	}
	if c.Rate <= 0 || c.Rate > 1 {
		return fmt.Errorf("trace: generator rate %g outside (0, 1]", c.Rate)
	}
	if c.PacketLen < 1 || c.PacketLen > MaxPacketLen {
		return fmt.Errorf("trace: generator packet length %d outside [1, %d]", c.PacketLen, MaxPacketLen)
	}
	return nil
}

// generator produces the records of one workload shape.
type generator func(cfg GenConfig, rng *rand.Rand) []Record

var (
	generatorOrder  []string
	generatorByName = map[string]generator{}
)

// registerGenerator adds a workload generator at init time.
func registerGenerator(name string, g generator) {
	if _, dup := generatorByName[name]; dup {
		panic(fmt.Sprintf("trace: registerGenerator(%q) twice", name))
	}
	generatorByName[name] = g
	generatorOrder = append(generatorOrder, name)
}

// GeneratorNames lists the application-shaped workload generators in
// registration order.
func GeneratorNames() []string {
	return append([]string(nil), generatorOrder...)
}

// Generate runs the named workload generator and returns a validated
// trace with full provenance in its metadata. Unknown names report
// the registered ones.
func Generate(name string, cfg GenConfig) (*Trace, error) {
	g, ok := generatorByName[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown generator %q (want one of %s)",
			name, strings.Join(GeneratorNames(), "|"))
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	recs := g(cfg, rand.New(rand.NewSource(cfg.Seed)))
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Cycle < recs[j].Cycle })
	t := &Trace{
		Meta: Meta{
			Rows:    cfg.Rows,
			Cols:    cfg.Cols,
			Horizon: cfg.Cycles,
			Generator: fmt.Sprintf("%s grid=%dx%d cycles=%d seed=%d rate=%g plen=%d",
				name, cfg.Rows, cfg.Cols, cfg.Cycles, cfg.Seed, cfg.Rate, cfg.PacketLen),
		},
		Records: recs,
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generator %q produced an invalid trace: %w", name, unprefix(err))
	}
	return t, nil
}

// uniformDest draws a destination uniformly from the other tiles.
func uniformDest(n, src int, rng *rand.Rand) int32 {
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return int32(d)
}

// genBursty is a Markov-modulated ON/OFF process per source: each
// tile flips between a silent OFF state and an ON state injecting at
// three times the average packet rate, with transition probabilities
// tuned for a one-third duty cycle — so the long-run load matches
// cfg.Rate while individual sources burst.
func genBursty(cfg GenConfig, rng *rand.Rand) []Record {
	const (
		pOnToOff = 0.02
		pOffToOn = 0.01
		duty     = pOffToOn / (pOffToOn + pOnToOff)
	)
	n := cfg.Rows * cfg.Cols
	pBurst := cfg.Rate / duty / float64(cfg.PacketLen)
	if pBurst > 1 {
		pBurst = 1
	}
	on := make([]bool, n)
	for i := range on {
		on[i] = rng.Float64() < duty
	}
	var recs []Record
	for t := int64(0); t < cfg.Cycles; t++ {
		for src := 0; src < n; src++ {
			if on[src] && rng.Float64() < pBurst {
				recs = append(recs, Record{
					Cycle: t, Src: int32(src), Dst: uniformDest(n, src, rng), Size: cfg.PacketLen,
				})
			}
			if on[src] {
				on[src] = rng.Float64() >= pOnToOff
			} else {
				on[src] = rng.Float64() < pOffToOn
			}
		}
	}
	return recs
}

// genHotspotRotate injects at the average rate but concentrates 30%
// of the traffic on a hot tile that rotates across the grid once per
// eighth of the horizon — a moving congestion spot no static hotspot
// pattern reproduces.
func genHotspotRotate(cfg GenConfig, rng *rand.Rand) []Record {
	const hotFraction = 0.3
	n := cfg.Rows * cfg.Cols
	epoch := cfg.Cycles / 8
	if epoch < 1 {
		epoch = 1
	}
	pInject := cfg.Rate / float64(cfg.PacketLen)
	var recs []Record
	for t := int64(0); t < cfg.Cycles; t++ {
		hot := int((t / epoch) % int64(n))
		for src := 0; src < n; src++ {
			if rng.Float64() >= pInject {
				continue
			}
			dst := int32(hot)
			if src == hot || rng.Float64() >= hotFraction {
				dst = uniformDest(n, src, rng)
			}
			recs = append(recs, Record{Cycle: t, Src: int32(src), Dst: dst, Size: cfg.PacketLen})
		}
	}
	return recs
}

// genAllreduce alternates compute phases (silence) with all-to-all
// exchange phases: in exchange round k every tile sends one packet to
// the tile k steps ahead, rounds spaced so the exchange-phase load
// matches cfg.Rate (halved overall by the equal-length compute gap).
// This is the bulk-synchronous allreduce shape — perfectly balanced
// flows, extreme temporal burstiness.
func genAllreduce(cfg GenConfig, rng *rand.Rand) []Record {
	n := cfg.Rows * cfg.Cols
	spacing := int64(float64(cfg.PacketLen)/cfg.Rate + 0.5)
	if spacing < 1 {
		spacing = 1
	}
	exchange := spacing * int64(n-1)
	phase := 2 * exchange
	var recs []Record
	for t := int64(0); t < cfg.Cycles; t++ {
		pos := t % phase
		if pos < exchange || (pos-exchange)%spacing != 0 {
			continue
		}
		k := int((pos-exchange)/spacing) + 1
		for src := 0; src < n; src++ {
			recs = append(recs, Record{
				Cycle: t, Src: int32(src), Dst: int32((src + k) % n), Size: cfg.PacketLen,
			})
		}
	}
	return recs
}

// mempoolServiceLatency is the fixed bank service time, request
// arrival to response injection, of the mempool generator.
const mempoolServiceLatency = 10

// genMempool models MemPool-style banked shared memory: every fourth
// tile is a memory bank, the rest are cores issuing single-flit read
// requests to uniformly chosen banks, and each request triggers a
// full-packet response from the bank a fixed service latency later —
// the request/response asymmetry and bank contention real many-core
// traffic has.
func genMempool(cfg GenConfig, rng *rand.Rand) []Record {
	n := cfg.Rows * cfg.Cols
	var banks []int32
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			banks = append(banks, int32(i))
		}
	}
	if len(banks) == 0 {
		banks = []int32{int32(n - 1)}
	}
	isBank := make([]bool, n)
	for _, b := range banks {
		isBank[b] = true
	}
	// A request costs one flit now and PacketLen response flits later.
	pRequest := cfg.Rate / float64(1+cfg.PacketLen)
	type response struct {
		due        int64
		bank, core int32
	}
	var pending []response
	var recs []Record
	for t := int64(0); t < cfg.Cycles; t++ {
		for len(pending) > 0 && pending[0].due <= t {
			rsp := pending[0]
			pending = pending[1:]
			recs = append(recs, Record{Cycle: t, Src: rsp.bank, Dst: rsp.core, Size: cfg.PacketLen})
		}
		for core := 0; core < n; core++ {
			if isBank[core] || rng.Float64() >= pRequest {
				continue
			}
			bank := banks[rng.Intn(len(banks))]
			recs = append(recs, Record{Cycle: t, Src: int32(core), Dst: bank, Size: 1})
			if due := t + mempoolServiceLatency; due < cfg.Cycles {
				pending = append(pending, response{due: due, bank: bank, core: int32(core)})
			}
		}
	}
	return recs
}

// init registers the application workload library.
func init() {
	registerGenerator("bursty", genBursty)
	registerGenerator("hotspot-rotate", genHotspotRotate)
	registerGenerator("allreduce", genAllreduce)
	registerGenerator("mempool", genMempool)
}
