package trace

// FuzzParseTrace is the format's robustness contract: arbitrary bytes
// through Parse must never panic, and anything Parse accepts must
// survive a Write/Parse round trip unchanged (the canonical-header
// property documented on Write). The seed corpus under testdata/fuzz
// covers the header grammar, comment tolerance, and boundary values.

import (
	"bytes"
	"reflect"
	"testing"
)

func FuzzParseTrace(f *testing.F) {
	seeds := []string{
		"",
		"#shtrace v1\n",
		"#shtrace v1\n#grid 2 2\n",
		"#shtrace v1\n#grid 4 4\n#horizon 100\n#generator bursty seed=1\n0 0 1 4\n0 1 0 1\n99 15 0 4\n",
		"#shtrace v1\n# comment\n\n#grid 2 2\n  1 0 1 4  \n#horizon 10\n2 1 0 1\n",
		"#shtrace v1\n#grid -3 7\n-5 9 9 0\n",
		"#shtrace v1\n#grid 2 2\n#unknown directive\n0 0 1 99999999999999999999\n",
		"#shtrace v2\n#grid 2 2\n",
		"#shtrace v1\n#grid 2 2\n#grid 2 2\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on a parsed trace: %v", err)
		}
		again, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Parse rejected its own Write output: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("round trip mismatch:\nfirst  %+v\nsecond %+v\nencoded:\n%s", tr, again, buf.Bytes())
		}
	})
}
