package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sample returns a small valid trace exercising every header field.
func sample() *Trace {
	return &Trace{
		Meta: Meta{Rows: 2, Cols: 2, Horizon: 100, Generator: "test seed=1"},
		Records: []Record{
			{Cycle: 0, Src: 0, Dst: 3, Size: 4},
			{Cycle: 0, Src: 1, Dst: 2, Size: 1},
			{Cycle: 5, Src: 0, Dst: 1, Size: 4},
			{Cycle: 7, Src: 3, Dst: 0, Size: 2},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
	}
}

func TestParseTolerance(t *testing.T) {
	// Comments, blank lines, directive order, and surrounding
	// whitespace are all tolerated.
	in := "#shtrace v1\n" +
		"# produced by a hypothetical external tool\n" +
		"\n" +
		"#generator   ext v2  \n" +
		"#grid 2 2\n" +
		"  1 0 1 4  \n" +
		"#horizon 10\n" +
		"2 1 0 1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := &Trace{
		Meta: Meta{Rows: 2, Cols: 2, Horizon: 10, Generator: "ext v2"},
		Records: []Record{
			{Cycle: 1, Src: 0, Dst: 1, Size: 4},
			{Cycle: 2, Src: 1, Dst: 0, Size: 1},
		},
	}
	if !reflect.DeepEqual(tr, want) {
		t.Fatalf("got %+v want %+v", tr, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad magic", "#shtrace v2\n"},
		{"record before grid", "#shtrace v1\n1 0 1 4\n"},
		{"missing grid", "#shtrace v1\n#horizon 5\n"},
		{"duplicate grid", "#shtrace v1\n#grid 2 2\n#grid 2 2\n"},
		{"grid arity", "#shtrace v1\n#grid 2\n"},
		{"grid non-numeric", "#shtrace v1\n#grid two 2\n"},
		{"horizon arity", "#shtrace v1\n#grid 2 2\n#horizon\n"},
		{"horizon negative", "#shtrace v1\n#grid 2 2\n#horizon -1\n"},
		{"record arity", "#shtrace v1\n#grid 2 2\n1 0 1\n"},
		{"record non-numeric", "#shtrace v1\n#grid 2 2\n1 0 one 4\n"},
		{"record overflow", "#shtrace v1\n#grid 2 2\n1 0 99999999999 4\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: Parse accepted %q", c.name, c.in)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	mutate := func(f func(*Trace)) *Trace {
		tr := sample()
		f(tr)
		return tr
	}
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"zero grid", mutate(func(tr *Trace) { tr.Meta.Rows = 0 })},
		{"negative horizon", mutate(func(tr *Trace) { tr.Meta.Horizon = -1 })},
		{"multiline generator", mutate(func(tr *Trace) { tr.Meta.Generator = "a\nb" })},
		{"padded generator", mutate(func(tr *Trace) { tr.Meta.Generator = " x" })},
		{"negative cycle", mutate(func(tr *Trace) { tr.Records[0].Cycle = -1 })},
		{"beyond horizon", mutate(func(tr *Trace) { tr.Records[3].Cycle = 100 })},
		{"src out of range", mutate(func(tr *Trace) { tr.Records[0].Src = 4 })},
		{"dst out of range", mutate(func(tr *Trace) { tr.Records[0].Dst = -1 })},
		{"self traffic", mutate(func(tr *Trace) { tr.Records[0].Dst = 0 })},
		{"zero size", mutate(func(tr *Trace) { tr.Records[0].Size = 0 })},
		{"oversized", mutate(func(tr *Trace) { tr.Records[0].Size = MaxPacketLen + 1 })},
		{"non-monotone source", mutate(func(tr *Trace) { tr.Records[2].Cycle = 0; tr.Records[0].Cycle = 3 })},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.tr)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Fatalf("sample must validate: %v", err)
	}
}

func TestEffectiveHorizon(t *testing.T) {
	tr := sample()
	if got := tr.EffectiveHorizon(); got != 100 {
		t.Fatalf("declared horizon: got %d want 100", got)
	}
	tr.Meta.Horizon = 0
	if got := tr.EffectiveHorizon(); got != 8 {
		t.Fatalf("inferred horizon: got %d want 8", got)
	}
	empty := &Trace{Meta: Meta{Rows: 2, Cols: 2}}
	if got := empty.EffectiveHorizon(); got != 0 {
		t.Fatalf("empty horizon: got %d want 0", got)
	}
}

func TestFlitCounts(t *testing.T) {
	counts := sample().FlitCounts()
	want := map[[2]int32]int64{
		{0, 3}: 4, {1, 2}: 1, {0, 1}: 4, {3, 0}: 2,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("got %v want %v", counts, want)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sample.trace")
	tr := sample()
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.trace")); err == nil {
		t.Fatalf("ReadFile accepted a missing file")
	}
}

// TestReadFileRejectsInvalid pins that ReadFile validates, not just
// parses: a syntactically well-formed trace with self-traffic must
// not load.
func TestReadFileRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	bad := sample()
	bad.Records[0].Dst = bad.Records[0].Src
	var buf bytes.Buffer
	if err := Write(&buf, bad); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatalf("ReadFile accepted self-traffic")
	}
}
