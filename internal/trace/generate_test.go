package trace

import (
	"bytes"
	"reflect"
	"testing"

	"sparsehamming/internal/topo"
)

// familyGrids maps every registered topology family to a minimal grid
// satisfying its constraint (the differential harness's corpus).
var familyGrids = map[string][2]int{
	"ring":                {2, 4},
	"mesh":                {4, 4},
	"torus":               {4, 4},
	"folded-torus":        {4, 4},
	"hypercube":           {4, 4},
	"slimnoc":             {2, 4},
	"flattened-butterfly": {4, 4},
	"sparse-hamming":      {4, 4},
	"ruche":               {4, 4},
}

// TestGeneratorsValidOnAllFamilyGrids is the workload-library
// property test: every generator produces a Validate-clean trace on
// the grid shape of each registered topology family.
func TestGeneratorsValidOnAllFamilyGrids(t *testing.T) {
	names := topo.Names()
	if len(names) != len(familyGrids) {
		t.Fatalf("family grid table covers %d families, registry has %d (%v) — extend familyGrids",
			len(familyGrids), len(names), names)
	}
	for _, fam := range names {
		grid, ok := familyGrids[fam]
		if !ok {
			t.Fatalf("no grid shape for registered family %q", fam)
		}
		for _, gen := range GeneratorNames() {
			tr, err := Generate(gen, GenConfig{Rows: grid[0], Cols: grid[1], Cycles: 600, Seed: 7, Rate: 0.25})
			if err != nil {
				t.Errorf("%s on %s grid %dx%d: %v", gen, fam, grid[0], grid[1], err)
				continue
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("%s on %s grid %dx%d: %v", gen, fam, grid[0], grid[1], err)
			}
			if len(tr.Records) == 0 {
				t.Errorf("%s on %s grid %dx%d: empty trace", gen, fam, grid[0], grid[1])
			}
			if tr.Meta.Rows != grid[0] || tr.Meta.Cols != grid[1] || tr.Meta.Horizon != 600 {
				t.Errorf("%s on %s: bad metadata %+v", gen, fam, tr.Meta)
			}
		}
	}
}

// TestGenerateDeterministic pins that equal configurations produce
// byte-identical traces and that the seed actually matters.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Rows: 4, Cols: 4, Cycles: 400, Seed: 3}
	for _, gen := range GeneratorNames() {
		a, err := Generate(gen, cfg)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		b, err := Generate(gen, cfg)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		var ab, bb bytes.Buffer
		if err := Write(&ab, a); err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if err := Write(&bb, b); err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Errorf("%s: equal configs produced different bytes", gen)
		}
		if gen == "allreduce" {
			continue // deterministic by construction, seed-free
		}
		other := cfg
		other.Seed = 4
		c, err := Generate(gen, other)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if reflect.DeepEqual(a.Records, c.Records) {
			t.Errorf("%s: seed change left the trace unchanged", gen)
		}
	}
}

// TestGeneratorLoadRoughlyMatchesRate sanity-checks the Rate knob:
// the long-run offered load of each generator lands within a factor
// of two of the requested value (the shapes trade exactness for
// burstiness, so the bound is loose on purpose).
func TestGeneratorLoadRoughlyMatchesRate(t *testing.T) {
	cfg := GenConfig{Rows: 4, Cols: 4, Cycles: 20000, Seed: 11, Rate: 0.2}
	for _, gen := range GeneratorNames() {
		tr, err := Generate(gen, cfg)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		var flits int64
		for i := range tr.Records {
			flits += int64(tr.Records[i].Size)
		}
		load := float64(flits) / float64(cfg.Cycles) / float64(cfg.Rows*cfg.Cols)
		lo, hi := cfg.Rate/2.5, cfg.Rate*1.2
		if load < lo || load > hi {
			t.Errorf("%s: long-run load %.3f outside [%.3f, %.3f] for rate %.2f", gen, load, lo, hi, cfg.Rate)
		}
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	cases := []GenConfig{
		{Rows: 1, Cols: 1},
		{Rows: 0, Cols: 4},
		{Rows: 4, Cols: 4, Cycles: -5},
		{Rows: 4, Cols: 4, Rate: 1.5},
		{Rows: 4, Cols: 4, Rate: -0.1},
		{Rows: 4, Cols: 4, PacketLen: MaxPacketLen + 1},
		{Rows: 4, Cols: 4, PacketLen: -1},
	}
	for _, cfg := range cases {
		if _, err := Generate("bursty", cfg); err == nil {
			t.Errorf("Generate accepted %+v", cfg)
		}
	}
	if _, err := Generate("no-such-workload", GenConfig{Rows: 4, Cols: 4}); err == nil {
		t.Errorf("Generate accepted an unknown generator name")
	}
}
