package sim

// Differential equivalence harness for the batched engine: a seeded
// generator draws random (topology family, routing, pattern, load,
// seed, control on/off) tuples, runs each tuple once through the
// sequential Simulator.Run path and once as a replica of an
// interleaved Batch, and asserts the two Stats are bit-identical
// field by field. This is the proof obligation behind every layer
// above the engine — the cache, the CSV guarantees, and the parity
// tests all assume batched == sequential at the bit level.

import (
	"math/rand"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
	"sparsehamming/internal/trace"
)

// diffFamily is one topology family instance the generator draws
// from: a small grid satisfying the family's constraint.
type diffFamily struct {
	kind       string
	rows, cols int
	sr, sc     []int
}

// diffFamilies covers every registered topology family.
var diffFamilies = []diffFamily{
	{kind: "ring", rows: 2, cols: 4},
	{kind: "mesh", rows: 4, cols: 4},
	{kind: "torus", rows: 4, cols: 4},
	{kind: "folded-torus", rows: 4, cols: 4},
	{kind: "hypercube", rows: 4, cols: 4},
	{kind: "slimnoc", rows: 2, cols: 4},
	{kind: "flattened-butterfly", rows: 4, cols: 4},
	{kind: "sparse-hamming", rows: 4, cols: 4, sr: []int{2}, sc: []int{2}},
	{kind: "ruche", rows: 4, cols: 4, sr: []int{2}},
}

// diffRoutings are the routing names the generator draws: the
// family's co-designed default and the generic hop-minimal tables
// (buildable for any connected topology).
var diffRoutings = []string{"", "hop-minimal"}

// diffLoads spans from near-zero through deep saturation so the
// harness exercises drained, early-verdict, and drain-capped exits.
var diffLoads = []float64{0.02, 0.08, 0.15, 0.3, 0.5, 0.9}

// diffCase is one generated configuration tuple.
type diffCase struct {
	family  diffFamily
	routing string
	pattern string
	load    float64
	seed    int64
	control bool
}

// diffConfig materializes the tuple against a topology and routing
// into the sequential-path Config. Short windows keep the full corpus
// fast; small VC counts and buffers reach interesting contention at
// these network sizes.
func (dc diffCase) diffConfig(t *testing.T, tp *topo.Topology, rt *route.Routing) Config {
	t.Helper()
	pat, err := PatternByName(dc.pattern, dc.family.rows, dc.family.cols)
	if err != nil {
		t.Fatalf("pattern %q: %v", dc.pattern, err)
	}
	vcs := 4
	if rt.NumClasses > vcs {
		vcs = rt.NumClasses
	}
	cfg := Config{
		Topo: tp, Routing: rt,
		NumVCs: vcs, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4,
		InjectionRate: dc.load,
		Pattern:       pat,
		Seed:          dc.seed,
		Warmup:        200, Measure: 500, Drain: 1500,
	}
	if dc.control {
		cfg.Control = &Control{Window: 50, RelHalfWidth: 0.05}
	}
	return cfg
}

// TestBatchedMatchesSequentialDifferential is the harness entry
// point: 36 batches of 3 replicas each (108 generated configurations,
// every family represented) in full mode, a quarter of that under
// -short. Each batch mixes loads, seeds, patterns, and control modes,
// so replicas finish at different cycles and the interleaver's
// early-exit path is always exercised.
func TestBatchedMatchesSequentialDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FFE12E))
	batches := 36
	if testing.Short() {
		batches = 9
	}
	const replicasPerBatch = 3
	patterns := PatternNames()

	covered := map[string]bool{}
	total := 0
	for b := 0; b < batches; b++ {
		fam := diffFamilies[b%len(diffFamilies)]
		covered[fam.kind] = true
		tp, err := topo.ByName(fam.kind, fam.rows, fam.cols, fam.sr, fam.sc)
		if err != nil {
			t.Fatalf("topology %s: %v", fam.kind, err)
		}
		routing := diffRoutings[rng.Intn(len(diffRoutings))]
		rt, err := route.ForName(tp, routing)
		if err != nil {
			t.Fatalf("routing %q on %s: %v", routing, fam.kind, err)
		}

		// Draw the batch's replica tuples.
		cases := make([]diffCase, replicasPerBatch)
		for i := range cases {
			pattern := patterns[rng.Intn(len(patterns))]
			if _, err := PatternByName(pattern, fam.rows, fam.cols); err != nil {
				pattern = "uniform" // pattern unsupported on this grid
			}
			cases[i] = diffCase{
				family:  fam,
				routing: routing,
				pattern: pattern,
				load:    diffLoads[rng.Intn(len(diffLoads))],
				seed:    rng.Int63n(1 << 32),
				control: rng.Intn(2) == 1,
			}
		}

		// Sequential reference: each tuple through the classic
		// build-and-run path.
		want := make([]Stats, len(cases))
		for i, dc := range cases {
			st, err := RunConfig(dc.diffConfig(t, tp, rt))
			if err != nil {
				t.Fatalf("sequential %+v: %v", dc, err)
			}
			want[i] = st
		}

		// Batched: the same tuples as replicas of one interleaved
		// batch over one shared shape. The base carries the shared
		// fields; per-replica deltas carry the rest.
		base := cases[0].diffConfig(t, tp, rt)
		base.Control = nil
		reps := make([]Replica, len(cases))
		for i, dc := range cases {
			cfg := dc.diffConfig(t, tp, rt)
			reps[i] = Replica{
				InjectionRate: cfg.InjectionRate,
				Seed:          cfg.Seed,
				Pattern:       cfg.Pattern,
				Warmup:        cfg.Warmup,
				Measure:       cfg.Measure,
				Drain:         cfg.Drain,
				Control:       cfg.Control,
			}
		}
		batch, err := NewBatch(base, reps)
		if err != nil {
			t.Fatalf("NewBatch %s: %v", fam.kind, err)
		}
		got := batch.Run()

		for i := range cases {
			total++
			// Stats has only scalar fields, so == is a field-by-field
			// bit-identity check.
			if got[i] != want[i] {
				t.Errorf("%s routing=%q %+v:\nbatched    %+v\nsequential %+v",
					fam.kind, routing, cases[i], got[i], want[i])
			}
		}
	}

	if !testing.Short() {
		if total < 100 {
			t.Fatalf("harness covered %d configurations, want >= 100", total)
		}
		for _, fam := range diffFamilies {
			if !covered[fam.kind] {
				t.Errorf("family %s never drawn", fam.kind)
			}
		}
	}
	t.Logf("verified %d configurations across %d families", total, len(covered))
}

// TestBatchedMatchesSequentialReplayDifferential extends the harness
// to trace-driven injection: for every 4x4 family, replicas replaying
// generated application traces — mixed generators, load scales, and
// control modes within one batch — must match their sequential runs
// bit for bit. This is the guarantee that lets the load-sweep ladder
// (LoadLatencyCurve and the spec "load" mode) batch trace jobs.
func TestBatchedMatchesSequentialReplayDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7EACE))
	generators := trace.GeneratorNames()
	scales := []float64{0.25, 0.5, 1.0}

	// Pre-generate one trace per generator; replicas draw from these.
	traces := make([]*Replay, len(generators))
	for i, g := range generators {
		tr, err := trace.Generate(g, trace.GenConfig{
			Rows: 4, Cols: 4, Cycles: 1200, Seed: int64(100 + i), Rate: 0.3,
		})
		if err != nil {
			t.Fatalf("generate %s: %v", g, err)
		}
		if traces[i], err = NewReplay(g, tr); err != nil {
			t.Fatalf("replay %s: %v", g, err)
		}
	}

	total := 0
	for _, fam := range diffFamilies {
		if fam.rows != 4 || fam.cols != 4 {
			continue // the generated traces are 4x4
		}
		tp, err := topo.ByName(fam.kind, fam.rows, fam.cols, fam.sr, fam.sc)
		if err != nil {
			t.Fatalf("topology %s: %v", fam.kind, err)
		}
		rt, err := route.ForName(tp, "")
		if err != nil {
			t.Fatalf("routing on %s: %v", fam.kind, err)
		}

		const replicasPerBatch = 3
		configs := make([]Config, replicasPerBatch)
		for i := range configs {
			cfg := Config{
				Topo: tp, Routing: rt,
				NumVCs: 4, BufDepth: 8,
				RouterDelay: 2, PacketLen: 4,
				InjectionRate: scales[rng.Intn(len(scales))],
				Pattern:       traces[rng.Intn(len(traces))],
				Seed:          rng.Int63n(1 << 32),
				Warmup:        200, Measure: 500, Drain: 1500,
			}
			if rt.NumClasses > cfg.NumVCs {
				cfg.NumVCs = rt.NumClasses
			}
			if rng.Intn(2) == 1 {
				cfg.Control = &Control{Window: 50, RelHalfWidth: 0.05}
			}
			configs[i] = cfg
		}

		want := make([]Stats, len(configs))
		for i, cfg := range configs {
			st, err := RunConfig(cfg)
			if err != nil {
				t.Fatalf("sequential %s replica %d: %v", fam.kind, i, err)
			}
			want[i] = st
		}

		base := configs[0]
		base.Control = nil
		reps := make([]Replica, len(configs))
		for i, cfg := range configs {
			reps[i] = Replica{
				InjectionRate: cfg.InjectionRate,
				Seed:          cfg.Seed,
				Pattern:       cfg.Pattern,
				Warmup:        cfg.Warmup,
				Measure:       cfg.Measure,
				Drain:         cfg.Drain,
				Control:       cfg.Control,
			}
		}
		batch, err := NewBatch(base, reps)
		if err != nil {
			t.Fatalf("NewBatch %s: %v", fam.kind, err)
		}
		got := batch.Run()
		for i := range configs {
			total++
			if got[i] != want[i] {
				t.Errorf("%s replay %s scale=%g:\nbatched    %+v\nsequential %+v",
					fam.kind, configs[i].Pattern.Name(), configs[i].InjectionRate, got[i], want[i])
			}
		}
	}
	if total < 15 {
		t.Fatalf("replay harness covered %d configurations, want >= 15", total)
	}
	t.Logf("verified %d trace-driven configurations", total)
}

// TestShapeRejectsForeignConfig pins the Shape compatibility checks:
// replicas may vary load, seed, pattern, and schedule, but never the
// topology, routing, or link latencies the shape was built from.
func TestShapeRejectsForeignConfig(t *testing.T) {
	mesh, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	rt, err := route.For(mesh, route.Auto)
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	cfg := Config{Topo: mesh, Routing: rt, InjectionRate: 0.1}
	sh, err := NewShape(cfg)
	if err != nil {
		t.Fatalf("NewShape: %v", err)
	}
	if _, err := sh.Instantiate(cfg); err != nil {
		t.Fatalf("Instantiate same config: %v", err)
	}

	other, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	ort, err := route.For(other, route.Auto)
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	if _, err := sh.Instantiate(Config{Topo: other, Routing: ort, InjectionRate: 0.1}); err == nil {
		t.Fatal("Instantiate accepted a different topology instance")
	}

	lats := make([]int, mesh.NumLinks())
	for i := range lats {
		lats[i] = 2
	}
	if _, err := sh.Instantiate(Config{Topo: mesh, Routing: rt, InjectionRate: 0.1, LinkLatency: lats}); err == nil {
		t.Fatal("Instantiate accepted different link latencies")
	}
}

// TestBatchCountsBuildWork pins the amortization accounting: a batch
// of N replicas performs one shape build and N replica builds.
func TestBatchCountsBuildWork(t *testing.T) {
	mesh, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	rt, err := route.For(mesh, route.Auto)
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	base := Config{Topo: mesh, Routing: rt, Warmup: 100, Measure: 200, Drain: 600}
	reps := []Replica{
		{InjectionRate: 0.05, Seed: 1},
		{InjectionRate: 0.1, Seed: 2},
		{InjectionRate: 0.2, Seed: 3},
		{InjectionRate: 0.4, Seed: 4},
	}
	before := Counters()
	b, err := NewBatch(base, reps)
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	out := b.Run()
	after := Counters()

	if n := len(out); n != len(reps) {
		t.Fatalf("batch returned %d stats for %d replicas", n, len(reps))
	}
	if d := after.ShapeBuilds - before.ShapeBuilds; d != 1 {
		t.Errorf("shape builds: got %d, want 1", d)
	}
	if d := after.SimBuilds - before.SimBuilds; d != int64(len(reps)) {
		t.Errorf("replica builds: got %d, want %d", d, len(reps))
	}
	if d := after.Batches - before.Batches; d != 1 {
		t.Errorf("batches: got %d, want 1", d)
	}
	if d := after.BatchReplicas - before.BatchReplicas; d != int64(len(reps)) {
		t.Errorf("batch replicas: got %d, want %d", d, len(reps))
	}
	if d := after.Runs - before.Runs; d != int64(len(reps)) {
		t.Errorf("runs: got %d, want %d", d, len(reps))
	}
}
