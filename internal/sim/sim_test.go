package sim

import (
	"math/rand"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// testConfig returns a builder for a small, fast configuration at
// the given injection rate.
func testConfig(t *testing.T, rate float64) func(*topo.Topology, error) Config {
	return func(tp *topo.Topology, terr error) Config {
		t.Helper()
		if terr != nil {
			t.Fatalf("topology: %v", terr)
		}
		return buildConfig(t, tp, rate)
	}
}

func buildConfig(t *testing.T, tp *topo.Topology, rate float64) Config {
	t.Helper()
	r, err := route.For(tp, route.Auto)
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	return Config{
		Topo:          tp,
		Routing:       r,
		NumVCs:        4,
		BufDepth:      8,
		RouterDelay:   2,
		PacketLen:     4,
		InjectionRate: rate,
		Seed:          42,
		Warmup:        500,
		Measure:       2000,
		Drain:         8000,
	}
}

func TestLowLoadDelivery(t *testing.T) {
	cfg := testConfig(t, 0.05)(topo.NewMesh(4, 4))
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatal("deadlock at low load")
	}
	if st.MeasuredInjected == 0 {
		t.Fatal("no packets injected")
	}
	if got := st.DeliveredFraction(); got < 0.999 {
		t.Errorf("delivered fraction = %v, want ~1 at low load", got)
	}
	if st.AvgPacketLatency <= 0 {
		t.Error("latency not measured")
	}
}

func TestZeroLoadLatencyComposition(t *testing.T) {
	// At zero load, latency must be at least
	// avgHops*(routerDelay+linkLat) + serialization, and not wildly more.
	m, _ := topo.NewMesh(4, 4)
	r, _ := route.For(m, route.Auto)
	cfg := Config{
		Topo: m, Routing: r,
		NumVCs: 4, BufDepth: 8, RouterDelay: 2, PacketLen: 4,
		Seed: 1, Measure: 20000, Drain: 5000,
	}
	zl, err := ZeroLoadLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	avgHops := r.AvgHops()
	// Each hop: routerDelay + 1 cycle link; injection router adds one
	// more pipeline; serialization adds PacketLen-1.
	minLat := avgHops*(2+1) + float64(4-1)
	if zl < minLat*0.9 {
		t.Errorf("zero-load latency %v below physical floor %v", zl, minLat)
	}
	if zl > minLat*3 {
		t.Errorf("zero-load latency %v suspiciously high (floor %v)", zl, minLat)
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	var prev float64
	for i, rate := range []float64{0.02, 0.25} {
		cfg := testConfig(t, rate)(topo.NewMesh(4, 4))
		st, err := RunConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			t.Fatalf("deadlock at rate %v", rate)
		}
		if i > 0 && st.AvgPacketLatency <= prev {
			t.Errorf("latency at rate %v (%v) not above latency at lower load (%v)",
				rate, st.AvgPacketLatency, prev)
		}
		prev = st.AvgPacketLatency
	}
}

func TestConservationNoLoss(t *testing.T) {
	// Everything injected during measurement must eventually eject
	// (flit conservation / no drops) at a sustainable load.
	cfg := testConfig(t, 0.15)(topo.NewMesh(4, 4))
	cfg.Drain = 50000
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeasuredEjected != st.MeasuredInjected {
		t.Errorf("ejected %d of %d measured packets", st.MeasuredEjected, st.MeasuredInjected)
	}
}

// TestWindowAccountingWhenInjectionRunsDry pins the schedule
// accounting when injection stops mid-window — the gap trace replay
// exposed: a run whose source goes silent must still account the full
// measurement window (rate statistics normalize over MeasuredCycles),
// must not be declared deadlocked, and must exit as soon as the
// network drains instead of burning the whole drain budget. The
// zero-rate Bernoulli run is the degenerate case: nothing is ever
// injected, yet the windows and the early exit behave identically.
func TestWindowAccountingWhenInjectionRunsDry(t *testing.T) {
	cfg := testConfig(t, 0)(topo.NewMesh(4, 4))
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Error("idle network declared deadlocked")
	}
	if st.MeasuredInjected != 0 || st.MeasuredEjected != 0 {
		t.Errorf("zero rate injected %d / ejected %d packets", st.MeasuredInjected, st.MeasuredEjected)
	}
	if st.MeasuredCycles != int64(cfg.Measure) {
		t.Errorf("MeasuredCycles = %d, want the full %d window", st.MeasuredCycles, cfg.Measure)
	}
	// Drained exit: nothing in flight past the measurement window, so
	// the drain budget must not be consumed.
	if full := int64(cfg.Warmup + cfg.Measure + cfg.Drain); st.Cycles >= full {
		t.Errorf("idle run consumed the full %d-cycle budget (Cycles=%d)", full, st.Cycles)
	}
	if st.OfferedRate != 0 || st.AcceptedRate != 0 {
		t.Errorf("rates = %g/%g, want 0/0", st.OfferedRate, st.AcceptedRate)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(t, 0.2)(topo.NewMesh(4, 4))
	a, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPacketLatency != b.AvgPacketLatency || a.MeasuredEjected != b.MeasuredEjected ||
		a.Cycles != b.Cycles {
		t.Errorf("same seed, different results: %v vs %v", a, b)
	}
	cfg.Seed = 43
	c, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeasuredInjected == a.MeasuredInjected && c.AvgPacketLatency == a.AvgPacketLatency {
		t.Error("different seeds produced identical traffic (suspicious)")
	}
}

func TestAllTopologiesNoDeadlockUnderStress(t *testing.T) {
	topos := map[string]func() (*topo.Topology, error){
		"ring":   func() (*topo.Topology, error) { return topo.NewRing(4, 4) },
		"mesh":   func() (*topo.Topology, error) { return topo.NewMesh(4, 4) },
		"torus":  func() (*topo.Topology, error) { return topo.NewTorus(4, 4) },
		"ftorus": func() (*topo.Topology, error) { return topo.NewFoldedTorus(4, 4) },
		"hcube":  func() (*topo.Topology, error) { return topo.NewHypercube(4, 4) },
		"slim":   func() (*topo.Topology, error) { return topo.NewSlimNoC(3, 6) },
		"fb":     func() (*topo.Topology, error) { return topo.NewFlattenedButterfly(4, 4) },
		"shg": func() (*topo.Topology, error) {
			return topo.NewSparseHamming(4, 4, topo.HammingParams{SR: []int{2}, SC: []int{3}})
		},
	}
	for name, mk := range topos {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(t, 0.9)(mk()) // deliberately past saturation
			cfg.Drain = 2000
			st, err := RunConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.Deadlocked {
				t.Errorf("%s deadlocked under stress", name)
			}
			if st.AcceptedRate <= 0 {
				t.Errorf("%s made no progress", name)
			}
		})
	}
}

func TestMultiCycleLinksSlowPackets(t *testing.T) {
	m, _ := topo.NewMesh(4, 4)
	r, _ := route.For(m, route.Auto)
	base := Config{
		Topo: m, Routing: r, NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4, InjectionRate: 0.02,
		Seed: 7, Warmup: 500, Measure: 5000, Drain: 20000,
	}
	fast, err := RunConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.LinkLatency = make([]int, m.NumLinks())
	for i := range slow.LinkLatency {
		slow.LinkLatency[i] = 4
	}
	st, err := RunConfig(slow)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgPacketLatency <= fast.AvgPacketLatency+2 {
		t.Errorf("4-cycle links latency %v not above 1-cycle links %v",
			st.AvgPacketLatency, fast.AvgPacketLatency)
	}
}

func TestFBOutperformsMeshThroughput(t *testing.T) {
	// The central performance shape of Figure 6: flattened butterfly
	// saturates later than the mesh under uniform traffic.
	mesh, _ := topo.NewMesh(4, 4)
	fb, _ := topo.NewFlattenedButterfly(4, 4)
	sat := func(tp *topo.Topology) float64 {
		r, err := route.For(tp, route.Auto)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Topo: tp, Routing: r, NumVCs: 4, BufDepth: 8,
			RouterDelay: 2, PacketLen: 4, Seed: 3,
			Warmup: 500, Measure: 2500, Drain: 10000,
		}
		res, err := SaturationThroughput(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SaturationRate
	}
	sm, sf := sat(mesh), sat(fb)
	if sf <= sm {
		t.Errorf("FB saturation %.3f not above mesh %.3f", sf, sm)
	}
}

func TestPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformRandom{N: 16}
	for i := 0; i < 200; i++ {
		d := u.Dest(5, rng)
		if d == 5 || d < 0 || d >= 16 {
			t.Fatalf("uniform dest %d invalid", d)
		}
	}
	tr := Transpose{Rows: 4, Cols: 4}
	if d := tr.Dest(1, rng); d != 4 {
		t.Errorf("transpose(0,1) = %d, want 4", d)
	}
	if d := tr.Dest(5, rng); d != -1 {
		t.Errorf("transpose diagonal = %d, want -1", d)
	}
	bc := BitComplement{N: 16}
	if d := bc.Dest(3, rng); d != 12 {
		t.Errorf("bitcomp(3) = %d, want 12", d)
	}
	nb := Neighbor{Rows: 4, Cols: 4}
	if d := nb.Dest(3, rng); d != 0 {
		t.Errorf("neighbor(0,3) = %d, want 0 (wrap)", d)
	}
	if _, err := PatternByName("transpose", 4, 8); err != nil {
		t.Errorf("transpose generalizes to rectangular grids: %v", err)
	}
	if _, err := PatternByName("nope", 4, 4); err == nil {
		t.Error("unknown pattern should fail")
	}
	for _, n := range PatternNames() {
		if _, err := PatternByName(n, 4, 4); err != nil {
			t.Errorf("PatternByName(%s): %v", n, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	m, _ := topo.NewMesh(4, 4)
	r, _ := route.For(m, route.Auto)
	cfg := Config{Topo: m, Routing: r, NumVCs: 1, BufDepth: 4}
	// Ring routing needs 2 classes; mesh needs 1, so NumVCs=1 is OK here.
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := Config{Topo: m, Routing: r, InjectionRate: 2}
	bad.Defaults()
	if err := bad.Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	rg, _ := topo.NewRing(4, 4)
	rr, _ := route.For(rg, route.Auto)
	mismatch := Config{Topo: m, Routing: rr}
	mismatch.Defaults()
	if err := mismatch.Validate(); err == nil {
		t.Error("topology/routing mismatch accepted")
	}
}

func TestTransposeOnMesh(t *testing.T) {
	m, _ := topo.NewMesh(4, 4)
	r, _ := route.For(m, route.Auto)
	cfg := Config{
		Topo: m, Routing: r, NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4, InjectionRate: 0.1,
		Pattern: Transpose{Rows: 4, Cols: 4}, Seed: 9,
		Warmup: 500, Measure: 2000, Drain: 20000,
	}
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked || st.DeliveredFraction() < 0.99 {
		t.Errorf("transpose on mesh: %v", st)
	}
}
