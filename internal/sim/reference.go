package sim

// The retained array-of-structs engine: per-router structs holding
// per-port slices of VC state, exactly the layout the simulator used
// before the structure-of-arrays refactor (see soa.go). It is kept
// solely as the differential oracle — Config.reference selects it,
// only in-package tests and benchmarks do, and the harness in
// differential_test.go pins the SoA engine bit-identical to it across
// every topology family, routing, load, adaptive controller, and
// trace replay. It shares the surrounding run loop, packet pool,
// traffic generation, and statistics with the SoA engine; only the
// per-cycle router pipeline below differs.

// instantiateRef allocates the array-of-structs per-replica state:
// one router struct per tile with its VC rings, credit counters, and
// arbiter pointers.
func (s *Simulator) instantiateRef(sh *Shape) {
	s.routers = make([]*router, s.n)
	for id := 0; id < s.n; id++ {
		deg := len(sh.inChans[id])
		r := &router{
			id: int32(id),
			// The channel wiring is read-only; share the shape's slices.
			inChans:  sh.inChans[id],
			outChans: sh.outChans[id],
			injVC:    -1,
		}
		r.vcs = make([][]vcState, deg+1)
		for p := range r.vcs {
			r.vcs[p] = make([]vcState, s.cfg.NumVCs)
			for v := range r.vcs[p] {
				r.vcs[p][v].buf.init(s.cfg.BufDepth)
				r.vcs[p][v].outPort = -1
				r.vcs[p][v].outVC = -1
			}
		}
		r.credits = make([][]int16, deg+1)
		r.ovcOwner = make([][]int32, deg+1)
		for o := range r.credits {
			r.credits[o] = make([]int16, s.cfg.NumVCs)
			r.ovcOwner[o] = make([]int32, s.cfg.NumVCs)
			for v := range r.credits[o] {
				r.credits[o][v] = int16(s.cfg.BufDepth)
				r.ovcOwner[o][v] = -1
			}
		}
		r.vaRR = make([]int, deg+1)
		r.saInRR = make([]int, deg+1)
		r.saOutRR = make([]int, deg+1)
		r.saCand = make([]int16, deg+1)
		s.routers[id] = r
	}
}

// stepRef advances the reference engine by one cycle, visiting every
// router in every phase (no idle skipping beyond each phase's own
// early returns).
func (s *Simulator) stepRef(inject bool) {
	t := s.now

	// Phase 1: deliver flits and credits that arrive this cycle.
	s.deliver(t)

	// Phase 2: traffic generation and source injection.
	if inject {
		s.generate(t)
	}
	for _, r := range s.routers {
		s.injectFlits(r, t)
	}

	// Phase 3: virtual-channel allocation.
	for _, r := range s.routers {
		s.vcAlloc(r, t)
	}

	// Phase 4+5: switch allocation and traversal.
	for _, r := range s.routers {
		s.switchAllocTraverse(r, t)
	}

	s.now++
}

// deliver moves flits and credits whose link latency has elapsed into
// the downstream (respectively upstream) router.
func (s *Simulator) deliver(t int64) {
	for i := range s.chans {
		c := &s.chans[i]
		if c.flits.len() > 0 && c.flits.front().arrive <= t {
			rt := s.routers[c.to]
			for c.flits.len() > 0 && c.flits.front().arrive <= t {
				f := c.flits.pop()
				vc := &rt.vcs[c.inPort][f.vc]
				vc.buf.push(flitRef{pkt: f.pkt, seq: f.seq, ready: t + int64(s.cfg.RouterDelay)})
				rt.bufFlits++
				if f.seq == 0 {
					rt.needRoute++
				}
			}
		}
		for c.credits.len() > 0 && c.credits.front().arrive <= t {
			cr := c.credits.pop()
			s.routers[c.from].credits[c.outPort][cr.vc]++
		}
	}
}

// injectFlits moves at most one flit per cycle from the source queue
// into the injection port, choosing a VC of the packet's first hop
// class for each new packet.
func (s *Simulator) injectFlits(r *router, t int64) {
	if r.srcQ.len() == 0 {
		return
	}
	inj := r.injPort()
	if r.injVC < 0 {
		// Pick the emptiest VC of the packet's first-hop class.
		// Injection is serialized packet-by-packet, so packets queued
		// in the same VC never interleave flits.
		pk := &s.packets[*r.srcQ.front()]
		class := int8(0)
		if len(pk.path.Classes) > 0 {
			class = pk.path.Classes[0]
		}
		lo, hi := s.classVCRange(class)
		best, bestFree := -1, 0
		for v := lo; v < hi; v++ {
			if free := s.cfg.BufDepth - r.vcs[inj][v].buf.len(); free > bestFree {
				best, bestFree = v, free
			}
		}
		if best < 0 {
			return
		}
		r.injVC = int16(best)
		r.injSeq = 0
	}
	vc := &r.vcs[inj][r.injVC]
	if vc.buf.len() >= s.cfg.BufDepth {
		return
	}
	pid := *r.srcQ.front()
	vc.buf.push(flitRef{pkt: pid, seq: r.injSeq, ready: t + int64(s.cfg.RouterDelay)})
	r.bufFlits++
	if r.injSeq == 0 {
		r.needRoute++
	}
	s.flitsInFlight++
	// A flit entering the network is forward progress: without this the
	// watchdog would mistake a long injection silence (bursty traces;
	// never Bernoulli traffic) followed by one injection for a deadlock.
	s.lastProgress = t
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvInject, Pkt: pid, Seq: r.injSeq, Node: r.id, Peer: s.packets[pid].dst, VC: r.injVC})
	}
	r.injSeq++
	if int(r.injSeq) == int(s.packets[pid].plen) {
		r.srcQ.pop()
		r.injVC = -1
	}
}

// vcAlloc performs separable VC allocation: every input VC whose head
// is an unrouted head flit requests an output VC of its path's class;
// output VCs are granted first-come in round-robin order over inputs.
// The output port comes from the packet's precomputed port table and
// the path position from its hop counter, so no searches happen here.
func (s *Simulator) vcAlloc(r *router, t int64) {
	nIn := r.numIn()
	V := s.cfg.NumVCs
	total := nIn * V
	start := r.vaRR[0] % total
	r.vaRR[0] = (start + 1) % total
	if r.needRoute == 0 {
		return // no unrouted head flits buffered anywhere
	}
	ip, v := start/V, start%V
	for k := 0; k < total; k++ {
		enc := ip*V + v
		vc := &r.vcs[ip][v]
		v++
		if v == V {
			v = 0
			ip++
			if ip == nIn {
				ip = 0
			}
		}
		if vc.outVC >= 0 || vc.outPort >= 0 || vc.buf.len() == 0 {
			continue
		}
		head := vc.buf.front()
		if head.seq != 0 || head.ready > t {
			continue
		}
		pk := &s.packets[head.pkt]
		if pk.dst == r.id {
			// Ejection needs no VC allocation.
			vc.outPort = int16(r.ejPort())
			vc.outVC = 0
			r.needRoute--
			continue
		}
		hi := int(pk.hop)
		class := pk.path.Classes[hi]
		outPort := int(pk.ports[hi])
		lo, hiVC := s.classVCRange(class)
		for ov := lo; ov < hiVC; ov++ {
			if r.ovcOwner[outPort][ov] < 0 {
				r.ovcOwner[outPort][ov] = int32(enc)
				vc.outPort = int16(outPort)
				vc.outVC = int16(ov)
				r.needRoute--
				break
			}
		}
	}
}

// switchAllocTraverse performs separable (input-first) switch
// allocation and moves the winning flits. Routers with no buffered
// flits return immediately; the candidate scratch is preallocated.
func (s *Simulator) switchAllocTraverse(r *router, t int64) {
	if r.bufFlits == 0 {
		return // no requests, no grants, no arbiter state changes
	}
	nIn, nOut := r.numIn(), r.numOut()
	V := s.cfg.NumVCs
	ej := r.ejPort()

	// Input arbitration: one candidate VC per input port.
	cand := r.saCand // VC index or -1
	found := false
	for ip := 0; ip < nIn; ip++ {
		cand[ip] = -1
		v := r.saInRR[ip]
		for k := 0; k < V; k++ {
			vc := &r.vcs[ip][v]
			cv := v
			v++
			if v == V {
				v = 0
			}
			if vc.outPort < 0 || vc.buf.len() == 0 {
				continue
			}
			head := vc.buf.front()
			if head.ready > t {
				continue
			}
			if int(vc.outPort) != ej && r.credits[vc.outPort][vc.outVC] <= 0 {
				continue
			}
			cand[ip] = int16(cv)
			found = true
			break
		}
	}
	if !found {
		return
	}

	// Output arbitration: one winner per output port.
	for op := 0; op < nOut; op++ {
		ip := r.saOutRR[op]
		for k := 0; k < nIn; k++ {
			cip := ip
			ip++
			if ip == nIn {
				ip = 0
			}
			v := cand[cip]
			if v < 0 || int(r.vcs[cip][v].outPort) != op {
				continue
			}
			s.traverse(r, cip, int(v), op, t)
			r.saInRR[cip] = (int(v) + 1) % V
			r.saOutRR[op] = (cip + 1) % nIn
			break
		}
	}
}

// traverse moves one flit from input VC (ip, v) through output port op.
func (s *Simulator) traverse(r *router, ip, v, op int, t int64) {
	vc := &r.vcs[ip][v]
	f := vc.buf.pop()
	r.bufFlits--
	s.flitHops++
	pk := &s.packets[f.pkt]
	isTail := int(f.seq) == int(pk.plen)-1

	if op == r.ejPort() {
		s.flitsInFlight--
		s.lastProgress = t
		if f.seq != pk.nextSeq {
			s.orderViolations++
		}
		pk.nextSeq = f.seq + 1
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvEject, Pkt: f.pkt, Seq: f.seq, Node: r.id, Peer: -1, VC: int16(v)})
		}
		if t >= s.measureStart && t < s.measureEnd {
			s.winFlits++
		}
		if s.ctl != nil {
			s.ctl.winEjFlits++
			if isTail {
				s.ctl.winLatSum += t + 1 - pk.inject
				s.ctl.winPkts++
			}
		}
		if isTail {
			if pk.measured {
				s.measEjected++
				lat := t + 1 - pk.inject
				s.latencySum += lat
				s.latencies = append(s.latencies, lat)
				if lat > s.latencyMax {
					s.latencyMax = lat
				}
			}
			// The tail has left the network: release the packet slot
			// for reuse (unless tracing pinned the IDs).
			if !s.noPool {
				s.freePkts = append(s.freePkts, f.pkt)
			}
		}
	} else {
		ci := r.outChans[op]
		c := &s.chans[ci]
		if f.seq == 0 {
			// The head flit advances to the next router on its path.
			pk.hop++
		}
		c.flits.push(timedFlit{pkt: f.pkt, seq: f.seq, vc: vc.outVC, arrive: t + c.latency})
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvTraverse, Pkt: f.pkt, Seq: f.seq, Node: r.id, Peer: c.to, VC: vc.outVC})
		}
		r.credits[op][vc.outVC]--
		if t >= s.measureStart && t < s.measureEnd {
			s.linkFlits[ci]++
		}
		s.lastProgress = t
	}

	// Return a credit upstream for the freed buffer slot.
	if ip != r.injPort() {
		uc := &s.chans[r.inChans[ip]]
		uc.credits.push(timedCredit{vc: int16(v), arrive: t + uc.latency})
	}

	if isTail {
		if op != r.ejPort() {
			r.ovcOwner[op][vc.outVC] = -1
		}
		vc.outPort = -1
		vc.outVC = -1
	}
}
