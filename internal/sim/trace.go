package sim

import (
	"fmt"
	"io"
)

// EventKind classifies a traced flit event.
type EventKind int

// Flit lifecycle events.
const (
	// EvInject: a flit entered the network at its source router's
	// injection port (Node is the source, Peer the packet's
	// destination — which is what lets capture mode reconstruct a
	// trace from the event stream alone).
	EvInject EventKind = iota
	// EvTraverse: a flit won switch allocation and was sent onto a
	// link (Node is the sender, Peer the receiver).
	EvTraverse
	// EvEject: a flit left the network at its destination.
	EvEject
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvTraverse:
		return "traverse"
	case EvEject:
		return "eject"
	default:
		return "unknown"
	}
}

// Event is one traced flit event.
type Event struct {
	Cycle int64
	Kind  EventKind
	Pkt   int32
	Seq   int16
	Node  int32 // where the event happened
	Peer  int32 // traversal target / injected packet's destination, -1 otherwise
	VC    int16 // VC used (downstream VC for traversals)
}

// Tracer receives flit events as the simulation executes. Tracing is
// optional; a nil Config.Tracer costs nothing.
type Tracer interface {
	Trace(ev Event)
}

// WriterTracer formats events as one text line each, BookSim
// watch-style:
//
//	@142 traverse pkt=17.2 5->6 vc=3
type WriterTracer struct {
	W io.Writer
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(ev Event) {
	switch ev.Kind {
	case EvTraverse:
		fmt.Fprintf(t.W, "@%d %s pkt=%d.%d %d->%d vc=%d\n",
			ev.Cycle, ev.Kind, ev.Pkt, ev.Seq, ev.Node, ev.Peer, ev.VC)
	default:
		fmt.Fprintf(t.W, "@%d %s pkt=%d.%d node=%d vc=%d\n",
			ev.Cycle, ev.Kind, ev.Pkt, ev.Seq, ev.Node, ev.VC)
	}
}

// CountingTracer tallies events by kind; used in tests and for cheap
// aggregate accounting.
type CountingTracer struct {
	Injects, Traversals, Ejects int64
}

// Trace implements Tracer.
func (t *CountingTracer) Trace(ev Event) {
	switch ev.Kind {
	case EvInject:
		t.Injects++
	case EvTraverse:
		t.Traversals++
	case EvEject:
		t.Ejects++
	}
}

// PacketTracer records the full event sequence of selected packets
// (BookSim's per-packet watch list).
type PacketTracer struct {
	// Watch selects the packet IDs to record; nil records everything.
	Watch  map[int32]bool
	Events []Event
}

// Trace implements Tracer.
func (t *PacketTracer) Trace(ev Event) {
	if t.Watch == nil || t.Watch[ev.Pkt] {
		t.Events = append(t.Events, ev)
	}
}
