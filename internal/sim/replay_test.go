package sim

// Trace-replay engine tests: schedule semantics (load scaling, seed
// independence), the window-accounting gap the Bernoulli process
// never exposes (injection running dry mid-window), the watchdog
// behavior across long injection silences, and the capture/replay
// flit-count property.

import (
	"path/filepath"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
	"sparsehamming/internal/trace"
)

// replayConfig builds a mesh test config around a trace.
func replayConfig(t *testing.T, tr *trace.Trace, scale float64) Config {
	t.Helper()
	tp, err := topo.NewMesh(tr.Meta.Rows, tr.Meta.Cols)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	rt, err := route.ForName(tp, "")
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	rp, err := NewReplay("trace:test", tr)
	if err != nil {
		t.Fatalf("NewReplay: %v", err)
	}
	return Config{
		Topo: tp, Routing: rt,
		NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4,
		InjectionRate: scale,
		Pattern:       rp,
		Seed:          42,
		Warmup:        500, Measure: 2000, Drain: 8000,
	}
}

// genTrace produces a generator-library trace for a grid.
func genTrace(t *testing.T, name string, rows, cols int, cycles int64, rate float64) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(name, trace.GenConfig{Rows: rows, Cols: cols, Cycles: cycles, Seed: 9, Rate: rate})
	if err != nil {
		t.Fatalf("Generate(%s): %v", name, err)
	}
	return tr
}

// TestReplayDeliversTraceTraffic pins the core replay semantics: a
// run over a trace injects exactly the trace's packets (and their
// flits), delivers them all at a sane load, and produces results
// independent of the RNG seed.
func TestReplayDeliversTraceTraffic(t *testing.T) {
	tr := genTrace(t, "bursty", 4, 4, 2000, 0.15)
	cfg := replayConfig(t, tr, 1.0)
	// A 1-cycle warmup covers the whole trace with the measurement
	// window (Defaults would turn Warmup 0 into the 2000-cycle
	// default); only cycle-0 records land outside it.
	cfg.Warmup, cfg.Measure = 1, 2500
	var wantMeasured int64
	for _, r := range tr.Records {
		if r.Cycle >= 1 {
			wantMeasured++
		}
	}
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("RunConfig: %v", err)
	}
	if st.Deadlocked {
		t.Fatalf("replay deadlocked: %+v", st)
	}
	if st.MeasuredInjected != wantMeasured {
		t.Fatalf("measured %d injected packets, trace has %d in-window records", st.MeasuredInjected, wantMeasured)
	}
	if st.DeliveredFraction() != 1 {
		t.Fatalf("delivered %.3f of measured packets", st.DeliveredFraction())
	}
	if st.OfferedRate != 1.0 {
		t.Fatalf("OfferedRate %v, want the replay scale 1.0", st.OfferedRate)
	}

	// Seed independence: replay draws nothing from the RNG.
	cfg2 := cfg
	cfg2.Seed = 4242
	st2, err := RunConfig(cfg2)
	if err != nil {
		t.Fatalf("RunConfig: %v", err)
	}
	st2.OfferedRate = st.OfferedRate
	if st != st2 {
		t.Fatalf("replay results depend on the seed:\n%+v\n%+v", st, st2)
	}
}

// TestReplayLoadScaling pins the time-dilation knob: at scale s the
// same trace runs s times slower, so a half-scale replay of a
// 1000-cycle trace injects nothing after cycle 2000 is reached only
// halfway, and the measured accepted rate drops accordingly.
func TestReplayLoadScaling(t *testing.T) {
	tr := genTrace(t, "bursty", 4, 4, 4000, 0.2)
	full, err := RunConfig(replayConfig(t, tr, 1.0))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	half, err := RunConfig(replayConfig(t, tr, 0.5))
	if err != nil {
		t.Fatalf("half: %v", err)
	}
	if full.AcceptedRate <= 0 || half.AcceptedRate <= 0 {
		t.Fatalf("no traffic measured: full=%+v half=%+v", full, half)
	}
	ratio := half.AcceptedRate / full.AcceptedRate
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("half-scale accepted rate ratio %.3f, want ~0.5 (full %.4f, half %.4f)",
			ratio, full.AcceptedRate, half.AcceptedRate)
	}
}

// TestReplayDryMidWindow is the latent window-accounting gap: a trace
// that ends before the measurement window does leaves the injection
// process dry mid-window — which Bernoulli traffic never does — and
// the schedule must still account the full configured window, drain
// the in-flight tail, and report complete delivery rather than
// deadlock or a truncated measurement phase.
func TestReplayDryMidWindow(t *testing.T) {
	// 600 cycles of traffic against a 500+2000 cycle schedule: the
	// trace runs dry 100 cycles into the measurement window.
	tr := genTrace(t, "bursty", 4, 4, 600, 0.2)
	cfg := replayConfig(t, tr, 1.0)
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("RunConfig: %v", err)
	}
	if st.Deadlocked {
		t.Fatalf("dry-window replay deadlocked: %+v", st)
	}
	if st.MeasuredCycles != int64(cfg.Measure) {
		t.Fatalf("MeasuredCycles %d, want the configured %d", st.MeasuredCycles, cfg.Measure)
	}
	if st.MeasuredInjected == 0 {
		t.Fatalf("no measured packets: %+v", st)
	}
	if st.DeliveredFraction() != 1 {
		t.Fatalf("dry-window replay lost packets: %+v", st)
	}
	// The network drains long before the drain budget: the run must
	// exit on the drained condition, not sit out the full schedule.
	if st.Cycles >= int64(cfg.Warmup+cfg.Measure+cfg.Drain) {
		t.Fatalf("run consumed the full drain budget (%d cycles) despite draining early", st.Cycles)
	}
}

// TestReplayWatchdogSilence pins the watchdog fix: two bursts
// separated by a silence longer than the watchdog budget must not be
// misdeclared a deadlock — injection after the gap is forward
// progress.
func TestReplayWatchdogSilence(t *testing.T) {
	gap := int64(watchdogCycles + 2000)
	tr := &trace.Trace{
		Meta: trace.Meta{Rows: 4, Cols: 4, Horizon: gap + 100, Generator: "test two-burst"},
		Records: []trace.Record{
			{Cycle: 10, Src: 0, Dst: 5, Size: 4},
			{Cycle: 10, Src: 3, Dst: 12, Size: 4},
			{Cycle: gap, Src: 0, Dst: 15, Size: 4},
			{Cycle: gap + 1, Src: 7, Dst: 2, Size: 4},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}
	cfg := replayConfig(t, tr, 1.0)
	cfg.Warmup = 1
	cfg.Measure = int(gap) + 200
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("RunConfig: %v", err)
	}
	if st.Deadlocked {
		t.Fatalf("silence between bursts misdeclared as deadlock: %+v", st)
	}
	if st.MeasuredInjected != 4 || st.DeliveredFraction() != 1 {
		t.Fatalf("lost packets across the silence: %+v", st)
	}
}

// TestReplayVariablePacketSizes pins per-record packet lengths (the
// mempool workload mixes 1-flit requests with full responses): total
// ejected flits must equal the trace's flit sum, not records *
// Config.PacketLen.
func TestReplayVariablePacketSizes(t *testing.T) {
	tr := genTrace(t, "mempool", 4, 4, 1500, 0.25)
	var wantFlits int64
	for _, c := range tr.FlitCounts() {
		wantFlits += c
	}
	cfg := replayConfig(t, tr, 1.0)
	cfg.Warmup, cfg.Measure = 1, 2000
	ct := &CountingTracer{}
	cfg.Tracer = ct
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("RunConfig: %v", err)
	}
	if st.Deadlocked || st.DeliveredFraction() != 1 {
		t.Fatalf("replay incomplete: %+v", st)
	}
	if ct.Injects != wantFlits || ct.Ejects != wantFlits {
		t.Fatalf("flit totals: injected %d ejected %d, trace sums to %d", ct.Injects, ct.Ejects, wantFlits)
	}
}

// TestCaptureReproducesPatternCounts is the capture property: for
// every registered synthetic pattern, capturing a run and replaying
// the captured trace reproduces the per-(src,dst) flit counts
// exactly.
func TestCaptureReproducesPatternCounts(t *testing.T) {
	tp, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	rt, err := route.ForName(tp, "")
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	for _, name := range PatternNames() {
		pat, err := PatternByName(name, 4, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := Config{
			Topo: tp, Routing: rt,
			NumVCs: 4, BufDepth: 8,
			RouterDelay: 2, PacketLen: 4,
			InjectionRate: 0.1,
			Pattern:       pat,
			Seed:          7,
			Warmup:        1, Measure: 1200, Drain: 8000,
		}
		captured, st, err := CaptureTrace(cfg)
		if err != nil {
			t.Fatalf("%s: CaptureTrace: %v", name, err)
		}
		if st.Deadlocked {
			t.Fatalf("%s: capture run deadlocked", name)
		}
		if err := captured.Validate(); err != nil {
			t.Fatalf("%s: captured trace: %v", name, err)
		}
		if len(captured.Records) == 0 {
			t.Fatalf("%s: captured no traffic", name)
		}

		// Replay the capture and count per-flow flits at injection.
		rp, err := NewReplay("trace:captured", captured)
		if err != nil {
			t.Fatalf("%s: NewReplay: %v", name, err)
		}
		rcfg := cfg
		rcfg.Pattern = rp
		rcfg.InjectionRate = 1.0
		rcfg.Measure = int(captured.EffectiveHorizon()) + 100
		pt := &flowCountTracer{counts: map[[2]int32]int64{}}
		rcfg.Tracer = pt
		rst, err := RunConfig(rcfg)
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		if rst.Deadlocked {
			t.Fatalf("%s: replay deadlocked", name)
		}
		want := captured.FlitCounts()
		if len(pt.counts) != len(want) {
			t.Fatalf("%s: %d replayed flows, captured %d", name, len(pt.counts), len(want))
		}
		for flow, flits := range want {
			if pt.counts[flow] != flits {
				t.Fatalf("%s: flow %d->%d replayed %d flits, captured %d",
					name, flow[0], flow[1], pt.counts[flow], flits)
			}
		}
	}
}

// flowCountTracer tallies injected flits per (src, dst) flow.
type flowCountTracer struct {
	counts map[[2]int32]int64
}

// Trace implements Tracer.
func (t *flowCountTracer) Trace(ev Event) {
	if ev.Kind == EvInject {
		t.counts[[2]int32{ev.Node, ev.Peer}]++
	}
}

// TestReplayGridMismatchRejected pins Config.Validate's replay grid
// check and the trace: scheme's own grid check.
func TestReplayGridMismatchRejected(t *testing.T) {
	tr := genTrace(t, "bursty", 2, 4, 300, 0.2)
	cfg := replayConfig(t, tr, 1.0) // builds a 2x4 mesh; now swap in a 4x4
	tp, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatalf("mesh: %v", err)
	}
	rt, err := route.ForName(tp, "")
	if err != nil {
		t.Fatalf("routing: %v", err)
	}
	cfg.Topo, cfg.Routing = tp, rt
	if _, err := RunConfig(cfg); err == nil {
		t.Fatalf("Validate accepted a 2x4 trace on a 4x4 topology")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.trace")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := PatternByName("trace:"+path, 4, 4); err == nil {
		t.Fatalf("trace: scheme accepted a grid mismatch")
	}
	if _, err := PatternByName("trace:"+path, 2, 4); err != nil {
		t.Fatalf("trace: scheme rejected a matching grid: %v", err)
	}
}

// TestReplaySchemeErrors covers the scheme registry's error paths.
func TestReplaySchemeErrors(t *testing.T) {
	if _, err := PatternByName("trace:", 4, 4); err == nil {
		t.Errorf("empty trace path accepted")
	}
	if _, err := PatternByName("trace:/no/such/file.trace", 4, 4); err == nil {
		t.Errorf("missing trace file accepted")
	}
	if _, err := PatternByName("bogus:arg", 4, 4); err == nil {
		t.Errorf("unknown scheme accepted")
	}
	if !PatternRegistered("trace:anything") {
		t.Errorf("PatternRegistered rejects the trace scheme")
	}
	if PatternRegistered("bogus:anything") {
		t.Errorf("PatternRegistered accepts an unknown scheme")
	}
}

// TestSaturationSearchRejectsReplay pins the guard: predict-style
// saturation searches are undefined for replays.
func TestSaturationSearchRejectsReplay(t *testing.T) {
	tr := genTrace(t, "bursty", 4, 4, 300, 0.2)
	cfg := replayConfig(t, tr, 1.0)
	if _, err := SaturationThroughput(cfg); err == nil {
		t.Fatalf("saturation search accepted a replay pattern")
	}
}

// TestCaptureTraceRejectsMisuse pins CaptureTrace's preconditions.
func TestCaptureTraceRejectsMisuse(t *testing.T) {
	tr := genTrace(t, "bursty", 4, 4, 300, 0.2)
	cfg := replayConfig(t, tr, 1.0)
	if _, _, err := CaptureTrace(cfg); err == nil {
		t.Errorf("CaptureTrace accepted a replay pattern")
	}
	cfg2 := replayConfig(t, tr, 1.0)
	pat, err := PatternByName("uniform", 4, 4)
	if err != nil {
		t.Fatalf("pattern: %v", err)
	}
	cfg2.Pattern = pat
	cfg2.Tracer = &CountingTracer{}
	if _, _, err := CaptureTrace(cfg2); err == nil {
		t.Errorf("CaptureTrace accepted an occupied Tracer slot")
	}
}
