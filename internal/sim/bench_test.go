package sim

// Per-stage micro-benchmarks of the simulator pipeline. The stage
// benchmarks drive a live simulation (every phase runs each cycle so
// the network state stays realistic) but keep the timer running only
// around the stage under measurement; the step benchmarks time whole
// cycles in the regimes the toolchain spends its time in.
//
// Run with:
//
//	go test ./internal/sim -bench=. -benchmem

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sparsehamming/internal/perf"
	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// benchRec collects the batch-engine benchmark entries; TestMain
// flushes them to the repository's perf trajectory after a -bench run
// so `cmd/shperf -check` guards the batched path.
var benchRec = perf.NewRecorder()

// TestMain appends recorded measurements to the perf trajectory. The
// default trajectory path is relative to the repository root; package
// tests run in the package directory, so rebase it (an explicit
// $BENCH_SIM_JSON is used as-is).
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		path := perf.DefaultPath()
		if os.Getenv(perf.DefaultPathEnv) == "" {
			path = filepath.Join("..", "..", path)
		}
		if err := benchRec.Flush(path); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
		}
	}
	os.Exit(code)
}

// benchSim builds an 8x8 mesh simulator warmed up to steady state at
// the given injection rate.
func benchSim(b *testing.B, rate float64) *Simulator {
	b.Helper()
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{
		Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
		RouterDelay: 3, PacketLen: 4, InjectionRate: rate,
		Seed: 1,
		// A far-off measurement window: the benchmarks run in the
		// warmup regime so no measurement bookkeeping triggers.
		Warmup: 1 << 30, Measure: 1, Drain: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		s.step(true)
	}
	return s
}

// stepBench times full cycles at one injection rate.
func stepBench(b *testing.B, rate float64) {
	b.Helper()
	s := benchSim(b, rate)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(true)
	}
}

// BenchmarkStepIdle: cycle cost of an empty network (no injection) —
// the floor every simulated cycle pays.
func BenchmarkStepIdle(b *testing.B) { stepBench(b, 0) }

// BenchmarkStepZeroLoad: the near-zero-load regime of the zero-load
// latency reference runs (0.5% injection).
func BenchmarkStepZeroLoad(b *testing.B) { stepBench(b, 0.005) }

// BenchmarkStepLoaded: a 30%-loaded network, representative of
// mid-curve saturation probes.
func BenchmarkStepLoaded(b *testing.B) { stepBench(b, 0.3) }

// BenchmarkStepSaturated: past saturation, every router busy — the
// most expensive cycles of a saturation search.
func BenchmarkStepSaturated(b *testing.B) { stepBench(b, 0.9) }

// stageBench runs full cycles but times only the selected stage.
func stageBench(b *testing.B, rate float64, stage func(s *Simulator, t int64)) {
	b.Helper()
	s := benchSim(b, rate)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		s.deliver(t)
		s.generate(t)
		for _, r := range s.routers {
			s.injectFlits(r, t)
		}
		b.StartTimer()
		stage(s, t)
		b.StopTimer()
		s.now++
	}
}

// BenchmarkStageVCAlloc times the VC-allocation stage over all
// routers of a loaded network; switch allocation still runs (off the
// clock) so the network keeps moving.
func BenchmarkStageVCAlloc(b *testing.B) {
	stageBench(b, 0.3, func(s *Simulator, t int64) {
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		b.StopTimer()
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
	})
}

// BenchmarkStageSwitchAlloc times switch allocation and traversal
// over all routers of a loaded network; VC allocation runs off the
// clock first.
func BenchmarkStageSwitchAlloc(b *testing.B) {
	stageBench(b, 0.3, func(s *Simulator, t int64) {
		b.StopTimer()
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		b.StartTimer()
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
	})
}

// BenchmarkStageDeliver times link flit/credit delivery. It inverts
// stageBench's pattern: deliver is timed, the rest runs off-timer.
func BenchmarkStageDeliver(b *testing.B) {
	s := benchSim(b, 0.3)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		b.StartTimer()
		s.deliver(t)
		b.StopTimer()
		s.generate(t)
		for _, r := range s.routers {
			s.injectFlits(r, t)
		}
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
		s.now++
	}
}

// BenchmarkStageGenerate times traffic generation plus source-queue
// injection (phase 2).
func BenchmarkStageGenerate(b *testing.B) {
	s := benchSim(b, 0.3)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		s.deliver(t)
		b.StartTimer()
		s.generate(t)
		for _, r := range s.routers {
			s.injectFlits(r, t)
		}
		b.StopTimer()
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
		s.now++
	}
}

// benchLadderConfig returns the 8x8-mesh base configuration the batch
// benchmarks share.
func benchLadderConfig(b *testing.B) Config {
	b.Helper()
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
		RouterDelay: 3, PacketLen: 4,
		Seed: 1, Warmup: 300, Measure: 800, Drain: 2400,
	}
}

// benchLadderRates is the 8-point load ladder the batch benchmarks
// sweep — the shape of a Figure 6 load sweep.
var benchLadderRates = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}

// BenchmarkShapeBuild times the shared build product alone: channel
// wiring plus the pathPorts LUT — the per-topology cost a batch pays
// once.
func BenchmarkShapeBuild(b *testing.B) {
	cfg := benchLadderConfig(b)
	meter := perf.StartMeter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewShape(cfg); err != nil {
			b.Fatal(err)
		}
	}
	benchRec.Set(meter.Done("ShapeBuild", b.N))
}

// BenchmarkInstantiateFromShape times the per-replica remainder: the
// mutable VC rings, credits, and arbiter state a batch pays per
// replica. ShapeBuild ns/op over this ns/op is the per-replica build
// saving of sharing a shape.
func BenchmarkInstantiateFromShape(b *testing.B) {
	cfg := benchLadderConfig(b)
	sh, err := NewShape(cfg)
	if err != nil {
		b.Fatal(err)
	}
	meter := perf.StartMeter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Instantiate(cfg); err != nil {
			b.Fatal(err)
		}
	}
	benchRec.Set(meter.Done("InstantiateFromShape", b.N))
}

// BenchmarkBatchLadder runs the 8-point load ladder as one
// interleaved Batch — one shape build, eight replicas.
func BenchmarkBatchLadder(b *testing.B) {
	cfg := benchLadderConfig(b)
	meter := perf.StartMeter()
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := make([]Replica, len(benchLadderRates))
		for j, r := range benchLadderRates {
			reps[j] = Replica{InjectionRate: r, Seed: int64(i + 1)}
		}
		batch, err := NewBatch(cfg, reps)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range batch.Run() {
			cycles += st.Cycles
		}
	}
	elapsed := meter.Elapsed()
	cyPerSec := float64(cycles) / elapsed.Seconds()
	b.ReportMetric(cyPerSec/1e6, "Msimcy/s")
	entry := meter.Done("BatchLadder", b.N)
	entry.CyclesPerSec = cyPerSec
	benchRec.Set(entry)
}

// BenchmarkSequentialLadder runs the same 8-point ladder the
// pre-batching way — one full build per point — as the baseline for
// BenchmarkBatchLadder.
func BenchmarkSequentialLadder(b *testing.B) {
	cfg := benchLadderConfig(b)
	meter := perf.StartMeter()
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range benchLadderRates {
			c := cfg
			c.InjectionRate = r
			c.Seed = int64(i + 1)
			st, err := RunConfig(c)
			if err != nil {
				b.Fatal(err)
			}
			cycles += st.Cycles
		}
	}
	elapsed := meter.Elapsed()
	cyPerSec := float64(cycles) / elapsed.Seconds()
	b.ReportMetric(cyPerSec/1e6, "Msimcy/s")
	entry := meter.Done("SequentialLadder", b.N)
	entry.CyclesPerSec = cyPerSec
	benchRec.Set(entry)
}

// BenchmarkRun measures a complete short run end to end, the unit of
// work campaigns parallelize over.
func BenchmarkRun(b *testing.B) {
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunConfig(Config{
			Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
			RouterDelay: 3, PacketLen: 4, InjectionRate: 0.3,
			Seed: int64(i + 1), Warmup: 500, Measure: 2000, Drain: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Deadlocked {
			b.Fatal("deadlock")
		}
	}
}
