package sim

// Per-stage micro-benchmarks of the simulator pipeline. The stage
// benchmarks drive a live simulation (every phase runs each cycle so
// the network state stays realistic) but keep the timer running only
// around the stage under measurement; the step benchmarks time whole
// cycles in the regimes the toolchain spends its time in.
//
// Run with:
//
//	go test ./internal/sim -bench=. -benchmem

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sparsehamming/internal/perf"
	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// benchRec collects the batch-engine benchmark entries; TestMain
// flushes them to the repository's perf trajectory after a -bench run
// so `cmd/shperf -check` guards the batched path.
var benchRec = perf.NewRecorder()

// TestMain appends recorded measurements to the perf trajectory. The
// default trajectory path is relative to the repository root; package
// tests run in the package directory, so rebase it (an explicit
// $BENCH_SIM_JSON is used as-is).
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		path := perf.DefaultPath()
		if os.Getenv(perf.DefaultPathEnv) == "" {
			path = filepath.Join("..", "..", path)
		}
		if err := benchRec.Flush(path); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
		}
	}
	os.Exit(code)
}

// benchSim builds an 8x8 mesh simulator warmed up to steady state at
// the given injection rate. ref selects the retained array-of-structs
// reference engine instead of the SoA default.
func benchSim(b *testing.B, rate float64, ref bool) *Simulator {
	b.Helper()
	cfg := Config{
		Topo: nil, Routing: nil, NumVCs: 8, BufDepth: 32,
		RouterDelay: 3, PacketLen: 4, InjectionRate: rate,
		Seed: 1,
		// A far-off measurement window: the benchmarks run in the
		// warmup regime so no measurement bookkeeping triggers.
		Warmup: 1 << 30, Measure: 1, Drain: 1,
	}
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Topo, cfg.Routing = m, r
	cfg.reference = ref
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		s.step(true)
	}
	return s
}

// stepBench times full cycles at one injection rate.
func stepBench(b *testing.B, rate float64, ref bool) {
	b.Helper()
	s := benchSim(b, rate, ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(true)
	}
}

// BenchmarkStepIdle: cycle cost of an empty network (no injection) —
// the floor every simulated cycle pays.
func BenchmarkStepIdle(b *testing.B) { stepBench(b, 0, false) }

// BenchmarkStepZeroLoad: the near-zero-load regime of the zero-load
// latency reference runs (0.5% injection).
func BenchmarkStepZeroLoad(b *testing.B) { stepBench(b, 0.005, false) }

// BenchmarkStepLoaded: a 30%-loaded network, representative of
// mid-curve saturation probes.
func BenchmarkStepLoaded(b *testing.B) { stepBench(b, 0.3, false) }

// BenchmarkStepSaturated: past saturation, every router busy — the
// most expensive cycles of a saturation search.
func BenchmarkStepSaturated(b *testing.B) { stepBench(b, 0.9, false) }

// Reference-engine counterparts of the step benchmarks: the same
// regimes on the retained array-of-structs layout, so the SoA win is
// visible per regime in one -bench=BenchmarkStep run.
func BenchmarkStepIdleRef(b *testing.B)      { stepBench(b, 0, true) }
func BenchmarkStepZeroLoadRef(b *testing.B)  { stepBench(b, 0.005, true) }
func BenchmarkStepLoadedRef(b *testing.B)    { stepBench(b, 0.3, true) }
func BenchmarkStepSaturatedRef(b *testing.B) { stepBench(b, 0.9, true) }

// stageBench runs full cycles but times only the selected stage.
func stageBench(b *testing.B, rate float64, stage func(s *Simulator, t int64)) {
	b.Helper()
	s := benchSim(b, rate, false)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		s.deliverSoA(t)
		s.generate(t)
		s.injectPhaseSoA(t)
		b.StartTimer()
		stage(s, t)
		b.StopTimer()
		s.now++
	}
}

// BenchmarkStageVCAlloc times the VC-allocation kernel over the
// occupied routers of a loaded network; switch allocation still runs
// (off the clock) so the network keeps moving.
func BenchmarkStageVCAlloc(b *testing.B) {
	stageBench(b, 0.3, func(s *Simulator, t int64) {
		s.vcAllocPhaseSoA(t)
		b.StopTimer()
		s.switchPhaseSoA(t)
	})
}

// BenchmarkStageSwitchAlloc times the switch-allocation/traversal
// kernel over the occupied routers of a loaded network; VC allocation
// runs off the clock first.
func BenchmarkStageSwitchAlloc(b *testing.B) {
	stageBench(b, 0.3, func(s *Simulator, t int64) {
		b.StopTimer()
		s.vcAllocPhaseSoA(t)
		b.StartTimer()
		s.switchPhaseSoA(t)
	})
}

// BenchmarkStageDeliver times link flit/credit delivery into the flat
// VC lanes. It inverts stageBench's pattern: deliver is timed, the
// rest runs off-timer.
func BenchmarkStageDeliver(b *testing.B) {
	s := benchSim(b, 0.3, false)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		b.StartTimer()
		s.deliverSoA(t)
		b.StopTimer()
		s.generate(t)
		s.injectPhaseSoA(t)
		s.vcAllocPhaseSoA(t)
		s.switchPhaseSoA(t)
		s.now++
	}
}

// BenchmarkStageGenerate times traffic generation plus source-queue
// injection (phase 2, including the occupancy-bitmap inject scan).
func BenchmarkStageGenerate(b *testing.B) {
	s := benchSim(b, 0.3, false)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		s.deliverSoA(t)
		b.StartTimer()
		s.generate(t)
		s.injectPhaseSoA(t)
		b.StopTimer()
		s.vcAllocPhaseSoA(t)
		s.switchPhaseSoA(t)
		s.now++
	}
}

// BenchmarkEngineSoASpeedup runs the workload shape of one saturation
// search iteration — the near-idle zero-load reference run plus a
// mid-curve 30%-load probe on the 8x8 mesh — on the SoA engine and on
// the retained reference engine, verifies each leg's results are
// bit-identical, and records the engines' time ratio as the
// soa_speedup_x metric that `shperf -check` floors at 1.5. Both
// regimes are weighted the way real campaigns pay for them: the
// zero-load leg is long and mostly idle (where the occupancy bitmap
// wins), the probe leg is short and busy (where the dense lanes and
// bit-scan allocators win).
func BenchmarkEngineSoASpeedup(b *testing.B) {
	probe := benchLadderConfig(b)
	probe.InjectionRate = 0.3
	anchor := benchLadderConfig(b)
	anchor.InjectionRate = 0.005
	anchor.Warmup, anchor.Measure, anchor.Drain = 1000, 20000, 30000
	legs := []Config{anchor, probe}

	meter := perf.StartMeter()
	var soaNs, refNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, leg := range legs {
			leg.Seed = int64(i + 1)

			leg.reference = false
			soaStart := time.Now()
			soa, err := New(leg)
			if err != nil {
				b.Fatal(err)
			}
			soaStats := soa.Run()
			soaNs += time.Since(soaStart).Nanoseconds()

			leg.reference = true
			refStart := time.Now()
			ref, err := New(leg)
			if err != nil {
				b.Fatal(err)
			}
			refStats := ref.Run()
			refNs += time.Since(refStart).Nanoseconds()

			if soaStats != refStats {
				b.Fatalf("SoA and reference engines diverged at rate %v:\nsoa %+v\nref %+v",
					leg.InjectionRate, soaStats, refStats)
			}
		}
	}
	speedup := float64(refNs) / float64(soaNs)
	b.ReportMetric(speedup, "soa_speedup_x")
	entry := meter.Done("EngineSoASpeedup", b.N)
	entry.Metrics = map[string]float64{"soa_speedup_x": speedup}
	benchRec.Set(entry)
}

// benchLadderConfig returns the 8x8-mesh base configuration the batch
// benchmarks share.
func benchLadderConfig(b *testing.B) Config {
	b.Helper()
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
		RouterDelay: 3, PacketLen: 4,
		Seed: 1, Warmup: 300, Measure: 800, Drain: 2400,
	}
}

// benchLadderRates is the 8-point load ladder the batch benchmarks
// sweep — the shape of a Figure 6 load sweep.
var benchLadderRates = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}

// BenchmarkShapeBuild times the shared build product alone: channel
// wiring plus the pathPorts LUT — the per-topology cost a batch pays
// once.
func BenchmarkShapeBuild(b *testing.B) {
	cfg := benchLadderConfig(b)
	meter := perf.StartMeter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewShape(cfg); err != nil {
			b.Fatal(err)
		}
	}
	benchRec.Set(meter.Done("ShapeBuild", b.N))
}

// BenchmarkInstantiateFromShape times the per-replica remainder: the
// mutable VC rings, credits, and arbiter state a batch pays per
// replica. ShapeBuild ns/op over this ns/op is the per-replica build
// saving of sharing a shape.
func BenchmarkInstantiateFromShape(b *testing.B) {
	cfg := benchLadderConfig(b)
	sh, err := NewShape(cfg)
	if err != nil {
		b.Fatal(err)
	}
	meter := perf.StartMeter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Instantiate(cfg); err != nil {
			b.Fatal(err)
		}
	}
	benchRec.Set(meter.Done("InstantiateFromShape", b.N))
}

// BenchmarkBatchLadder runs the 8-point load ladder as one
// interleaved Batch — one shape build, eight replicas.
func BenchmarkBatchLadder(b *testing.B) {
	cfg := benchLadderConfig(b)
	meter := perf.StartMeter()
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps := make([]Replica, len(benchLadderRates))
		for j, r := range benchLadderRates {
			reps[j] = Replica{InjectionRate: r, Seed: int64(i + 1)}
		}
		batch, err := NewBatch(cfg, reps)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range batch.Run() {
			cycles += st.Cycles
		}
	}
	elapsed := meter.Elapsed()
	cyPerSec := float64(cycles) / elapsed.Seconds()
	b.ReportMetric(cyPerSec/1e6, "Msimcy/s")
	entry := meter.Done("BatchLadder", b.N)
	entry.CyclesPerSec = cyPerSec
	benchRec.Set(entry)
}

// BenchmarkSequentialLadder runs the same 8-point ladder the
// pre-batching way — one full build per point — as the baseline for
// BenchmarkBatchLadder.
func BenchmarkSequentialLadder(b *testing.B) {
	cfg := benchLadderConfig(b)
	meter := perf.StartMeter()
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range benchLadderRates {
			c := cfg
			c.InjectionRate = r
			c.Seed = int64(i + 1)
			st, err := RunConfig(c)
			if err != nil {
				b.Fatal(err)
			}
			cycles += st.Cycles
		}
	}
	elapsed := meter.Elapsed()
	cyPerSec := float64(cycles) / elapsed.Seconds()
	b.ReportMetric(cyPerSec/1e6, "Msimcy/s")
	entry := meter.Done("SequentialLadder", b.N)
	entry.CyclesPerSec = cyPerSec
	benchRec.Set(entry)
}

// BenchmarkRun measures a complete short run end to end, the unit of
// work campaigns parallelize over.
func BenchmarkRun(b *testing.B) {
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunConfig(Config{
			Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
			RouterDelay: 3, PacketLen: 4, InjectionRate: 0.3,
			Seed: int64(i + 1), Warmup: 500, Measure: 2000, Drain: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Deadlocked {
			b.Fatal("deadlock")
		}
	}
}
