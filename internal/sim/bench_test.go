package sim

// Per-stage micro-benchmarks of the simulator pipeline. The stage
// benchmarks drive a live simulation (every phase runs each cycle so
// the network state stays realistic) but keep the timer running only
// around the stage under measurement; the step benchmarks time whole
// cycles in the regimes the toolchain spends its time in.
//
// Run with:
//
//	go test ./internal/sim -bench=. -benchmem

import (
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// benchSim builds an 8x8 mesh simulator warmed up to steady state at
// the given injection rate.
func benchSim(b *testing.B, rate float64) *Simulator {
	b.Helper()
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{
		Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
		RouterDelay: 3, PacketLen: 4, InjectionRate: rate,
		Seed: 1,
		// A far-off measurement window: the benchmarks run in the
		// warmup regime so no measurement bookkeeping triggers.
		Warmup: 1 << 30, Measure: 1, Drain: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		s.step(true)
	}
	return s
}

// stepBench times full cycles at one injection rate.
func stepBench(b *testing.B, rate float64) {
	b.Helper()
	s := benchSim(b, rate)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(true)
	}
}

// BenchmarkStepIdle: cycle cost of an empty network (no injection) —
// the floor every simulated cycle pays.
func BenchmarkStepIdle(b *testing.B) { stepBench(b, 0) }

// BenchmarkStepZeroLoad: the near-zero-load regime of the zero-load
// latency reference runs (0.5% injection).
func BenchmarkStepZeroLoad(b *testing.B) { stepBench(b, 0.005) }

// BenchmarkStepLoaded: a 30%-loaded network, representative of
// mid-curve saturation probes.
func BenchmarkStepLoaded(b *testing.B) { stepBench(b, 0.3) }

// BenchmarkStepSaturated: past saturation, every router busy — the
// most expensive cycles of a saturation search.
func BenchmarkStepSaturated(b *testing.B) { stepBench(b, 0.9) }

// stageBench runs full cycles but times only the selected stage.
func stageBench(b *testing.B, rate float64, stage func(s *Simulator, t int64)) {
	b.Helper()
	s := benchSim(b, rate)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		s.deliver(t)
		s.generate(t)
		for _, r := range s.routers {
			s.injectFlits(r, t)
		}
		b.StartTimer()
		stage(s, t)
		b.StopTimer()
		s.now++
	}
}

// BenchmarkStageVCAlloc times the VC-allocation stage over all
// routers of a loaded network; switch allocation still runs (off the
// clock) so the network keeps moving.
func BenchmarkStageVCAlloc(b *testing.B) {
	stageBench(b, 0.3, func(s *Simulator, t int64) {
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		b.StopTimer()
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
	})
}

// BenchmarkStageSwitchAlloc times switch allocation and traversal
// over all routers of a loaded network; VC allocation runs off the
// clock first.
func BenchmarkStageSwitchAlloc(b *testing.B) {
	stageBench(b, 0.3, func(s *Simulator, t int64) {
		b.StopTimer()
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		b.StartTimer()
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
	})
}

// BenchmarkStageDeliver times link flit/credit delivery. It inverts
// stageBench's pattern: deliver is timed, the rest runs off-timer.
func BenchmarkStageDeliver(b *testing.B) {
	s := benchSim(b, 0.3)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		b.StartTimer()
		s.deliver(t)
		b.StopTimer()
		s.generate(t)
		for _, r := range s.routers {
			s.injectFlits(r, t)
		}
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
		s.now++
	}
}

// BenchmarkStageGenerate times traffic generation plus source-queue
// injection (phase 2).
func BenchmarkStageGenerate(b *testing.B) {
	s := benchSim(b, 0.3)
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		t := s.now
		s.deliver(t)
		b.StartTimer()
		s.generate(t)
		for _, r := range s.routers {
			s.injectFlits(r, t)
		}
		b.StopTimer()
		for _, r := range s.routers {
			s.vcAlloc(r, t)
		}
		for _, r := range s.routers {
			s.switchAllocTraverse(r, t)
		}
		s.now++
	}
}

// BenchmarkRun measures a complete short run end to end, the unit of
// work campaigns parallelize over.
func BenchmarkRun(b *testing.B) {
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := RunConfig(Config{
			Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
			RouterDelay: 3, PacketLen: 4, InjectionRate: 0.3,
			Seed: int64(i + 1), Warmup: 500, Measure: 2000, Drain: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Deadlocked {
			b.Fatal("deadlock")
		}
	}
}
