package sim

// Differential harness for the structure-of-arrays engine: every
// configuration tuple runs once through the SoA engine (the default)
// and once through the retained array-of-structs reference engine
// (Config.reference), and the two Stats must be bit-identical. The
// sweep reuses the batched harness's corpus machinery (diffFamilies,
// diffCase) so the matrix covers every topology family, both routing
// flavors, the whole load ladder, adaptive control, and trace replay.
// A property test pins the occupancy bitmap the SoA phase scans skip
// idle routers with.

import (
	"math/rand"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
	"sparsehamming/internal/trace"
)

// runBothEngines runs one config through the SoA engine and the
// reference engine and returns both Stats.
func runBothEngines(t *testing.T, cfg Config) (soa, ref Stats) {
	t.Helper()
	soaStats, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("SoA run: %v", err)
	}
	cfg.reference = true
	refStats, err := RunConfig(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return soaStats, refStats
}

// TestSoAMatchesReferenceDifferential sweeps the full configuration
// matrix — every topology family, both routings, the load ladder,
// control off and on — and asserts the SoA engine reproduces the
// reference engine's Stats bit for bit (Stats is all-scalar, so ==
// is a field-by-field bit-identity check).
func TestSoAMatchesReferenceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x50A0D1FF))
	patterns := PatternNames()
	loads := diffLoads
	if testing.Short() {
		loads = []float64{0.08, 0.9}
	}

	total := 0
	for _, fam := range diffFamilies {
		tp, err := topo.ByName(fam.kind, fam.rows, fam.cols, fam.sr, fam.sc)
		if err != nil {
			t.Fatalf("topology %s: %v", fam.kind, err)
		}
		for _, routing := range diffRoutings {
			rt, err := route.ForName(tp, routing)
			if err != nil {
				t.Fatalf("routing %q on %s: %v", routing, fam.kind, err)
			}
			for li, load := range loads {
				pattern := patterns[rng.Intn(len(patterns))]
				if _, err := PatternByName(pattern, fam.rows, fam.cols); err != nil {
					pattern = "uniform" // pattern unsupported on this grid
				}
				dc := diffCase{
					family:  fam,
					routing: routing,
					pattern: pattern,
					load:    load,
					seed:    rng.Int63n(1 << 32),
					control: li%2 == 1, // alternate fixed and adaptive
				}
				soa, ref := runBothEngines(t, dc.diffConfig(t, tp, rt))
				total++
				if soa != ref {
					t.Errorf("%s routing=%q %+v:\nSoA       %+v\nreference %+v",
						fam.kind, routing, dc, soa, ref)
				}
			}
		}
	}
	if total < len(diffFamilies)*len(diffRoutings)*len(loads) {
		t.Fatalf("sweep covered %d configurations, want %d",
			total, len(diffFamilies)*len(diffRoutings)*len(loads))
	}
	t.Logf("verified %d configurations SoA == reference", total)
}

// TestSoAMatchesReferenceReplay extends the engine differential to
// trace-driven injection: replayed application traces at several time
// scales, with and without adaptive control, must eject the same
// flits on the same cycles in both engines.
func TestSoAMatchesReferenceReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(0x50A7EACE))
	generators := trace.GeneratorNames()
	scales := []float64{0.25, 1.0}

	total := 0
	for i, g := range generators {
		tr, err := trace.Generate(g, trace.GenConfig{
			Rows: 4, Cols: 4, Cycles: 1200, Seed: int64(300 + i), Rate: 0.3,
		})
		if err != nil {
			t.Fatalf("generate %s: %v", g, err)
		}
		replay, err := NewReplay(g, tr)
		if err != nil {
			t.Fatalf("replay %s: %v", g, err)
		}
		fam := diffFamilies[i%len(diffFamilies)]
		if fam.rows != 4 || fam.cols != 4 {
			fam = diffFamilies[1] // mesh; the traces are 4x4
		}
		tp, err := topo.ByName(fam.kind, fam.rows, fam.cols, fam.sr, fam.sc)
		if err != nil {
			t.Fatalf("topology %s: %v", fam.kind, err)
		}
		rt, err := route.ForName(tp, "")
		if err != nil {
			t.Fatalf("routing on %s: %v", fam.kind, err)
		}
		for _, scale := range scales {
			cfg := Config{
				Topo: tp, Routing: rt,
				NumVCs: 4, BufDepth: 8,
				RouterDelay: 2, PacketLen: 4,
				InjectionRate: scale,
				Pattern:       replay,
				Seed:          rng.Int63n(1 << 32),
				Warmup:        200, Measure: 500, Drain: 1500,
			}
			if rt.NumClasses > cfg.NumVCs {
				cfg.NumVCs = rt.NumClasses
			}
			if total%2 == 1 {
				cfg.Control = &Control{Window: 50, RelHalfWidth: 0.05}
			}
			soa, ref := runBothEngines(t, cfg)
			total++
			if soa != ref {
				t.Errorf("%s replay %s scale=%g:\nSoA       %+v\nreference %+v",
					fam.kind, g, scale, soa, ref)
			}
		}
	}
	if total < 2*len(generators) {
		t.Fatalf("replay sweep covered %d configurations, want %d", total, 2*len(generators))
	}
	t.Logf("verified %d trace-driven configurations SoA == reference", total)
}

// TestOccupancyBitmapTracksActiveRouters is the property test behind
// the SoA engine's idle-router skipping: after every cycle, a
// router's occupancy bit is set if and only if it has queued source
// packets or buffered flits — so the word-granular skip-scan visits
// exactly the non-idle routers, and skipping the rest cannot drop
// work.
func TestOccupancyBitmapTracksActiveRouters(t *testing.T) {
	m, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		t.Fatal(err)
	}
	// A bursty pattern at moderate load drives routers in and out of
	// idleness; the trailing injection-off stretch drains the network
	// so the test also sees occupancy fall back to zero.
	s, err := New(Config{
		Topo: m, Routing: r, NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4, InjectionRate: 0.2,
		Seed: 7, Warmup: 1 << 30, Measure: 1, Drain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.soa
	if st == nil {
		t.Fatal("default engine is not the SoA engine")
	}
	check := func(cycle int, phase string) {
		for id := 0; id < s.n; id++ {
			active := st.srcQ[id].len() > 0 || st.bufFlits[id] > 0
			bit := st.occ[id>>6]&(1<<(uint(id)&63)) != 0
			if bit != active {
				t.Fatalf("cycle %d (%s): router %d occupancy bit %v, but srcQ=%d bufFlits=%d",
					cycle, phase, id, bit, st.srcQ[id].len(), st.bufFlits[id])
			}
		}
	}
	for i := 0; i < 3000; i++ {
		s.step(true)
		check(i, "inject")
	}
	// Injection off: the network drains and every bit must clear.
	for i := 0; i < 2000; i++ {
		s.step(false)
		check(i, "drain")
	}
	for w, word := range st.occ {
		if word != 0 {
			t.Fatalf("occupancy word %d = %#x after full drain, want 0", w, word)
		}
	}
	if s.flitsInFlight != 0 {
		t.Fatalf("%d flits in flight after drain", s.flitsInFlight)
	}
}
