package sim

// Trace replay: the simulator's second input modality. A Replay wraps
// a validated workload trace (package trace) and plugs into the
// engine through the ordinary Pattern slot — but instead of drawing
// destinations per cycle, the engine precomputes the trace's scaled
// injection schedule at instantiation and generateReplay (engine.go)
// drains it cursor-style. Everything layered over the engine —
// warmup/measure/drain windows, adaptive control, Batch replicas, the
// campaign cache — composes with replayed traffic unchanged, because
// a replica with a Replay pattern runs the identical per-cycle code.
//
// Load scaling: Config.InjectionRate doubles as the replay's time
// dilation. Scale 1 (or the 0 default) replays the trace at its
// recorded intensity; a scale s in (0, 1) stretches every record
// cycle to cycle/s, thinning the offered load to s times the recorded
// one — which is what lets a load sweep reuse its loads axis for
// traces. Stats.OfferedRate reports the scale for replayed runs.
//
// The saturation searches refuse Replay patterns: they probe by
// varying the Bernoulli injection rate, which has no meaning for a
// recorded workload. Sweep traces through LoadLatencyCurve (mode
// "load" in campaign specs) instead.

import (
	"fmt"
	"math/rand"
	"sort"

	"sparsehamming/internal/trace"
)

// Replay is a Pattern that replays a recorded workload trace. Build
// with NewReplay (or via the "trace:<path>" pattern names of
// PatternByName); the wrapped trace must stay unmodified while any
// simulation uses it.
type Replay struct {
	name string
	tr   *trace.Trace
}

// NewReplay wraps a validated trace as a replayable pattern. The name
// is the pattern's identity in job specs and cache keys (the pattern
// registry uses "trace:<path>").
func NewReplay(name string, tr *trace.Trace) (*Replay, error) {
	if tr == nil {
		return nil, fmt.Errorf("sim: NewReplay with nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", name, err)
	}
	return &Replay{name: name, tr: tr}, nil
}

// Name implements Pattern.
func (r *Replay) Name() string { return r.name }

// Dest implements Pattern. The engine never calls it for a Replay —
// injections come from the trace schedule — so it always reports "no
// destination".
func (r *Replay) Dest(src int, rng *rand.Rand) int { return -1 }

// Grid returns the trace's grid shape.
func (r *Replay) Grid() (rows, cols int) { return r.tr.Meta.Rows, r.tr.Meta.Cols }

// Trace returns the wrapped trace (read-only by convention).
func (r *Replay) Trace() *trace.Trace { return r.tr }

// replayEvent is one scheduled injection: a trace record with its
// cycle already scaled.
type replayEvent struct {
	cycle    int64
	src, dst int32
	plen     int16
}

// schedule materializes the trace's injection schedule at the given
// load scale (0 means 1: the recorded intensity), sorted by effective
// cycle. The format only requires per-source monotone cycles, so the
// global sort is what hands generateReplay a single cursor; the sort
// is stable to keep same-cycle records in trace order.
func (r *Replay) schedule(scale float64) []replayEvent {
	if scale == 0 {
		scale = 1
	}
	recs := r.tr.Records
	sched := make([]replayEvent, len(recs))
	for i := range recs {
		rec := &recs[i]
		cycle := rec.Cycle
		if scale != 1 {
			cycle = int64(float64(cycle) / scale)
		}
		sched[i] = replayEvent{cycle: cycle, src: rec.Src, dst: rec.Dst, plen: int16(rec.Size)}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].cycle < sched[j].cycle })
	return sched
}

// init registers the "trace" pattern-name scheme: "trace:<path>"
// loads, validates, and wraps the trace file at path (relative to the
// process working directory, like spec files themselves). The file is
// re-read on every construction — traces are small, and the campaign
// cache already memoizes whole results.
func init() {
	RegisterPatternScheme("trace", func(name, path string, rows, cols int) (Pattern, error) {
		if path == "" {
			return nil, fmt.Errorf("sim: pattern %q has no trace path", name)
		}
		tr, err := trace.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("sim: pattern %q: %w", name, err)
		}
		if tr.Meta.Rows != rows || tr.Meta.Cols != cols {
			return nil, fmt.Errorf("sim: pattern %q: trace grid %dx%d does not match the %dx%d arch grid",
				name, tr.Meta.Rows, tr.Meta.Cols, rows, cols)
		}
		return NewReplay(name, tr)
	})
}

// captureTracer records the injection schedule of a running
// simulation: one trace record per packet, at the cycle its head flit
// entered the network.
type captureTracer struct {
	plen int
	recs []trace.Record
}

// Trace implements Tracer.
func (c *captureTracer) Trace(ev Event) {
	if ev.Kind == EvInject && ev.Seq == 0 {
		c.recs = append(c.recs, trace.Record{Cycle: ev.Cycle, Src: ev.Node, Dst: ev.Peer, Size: c.plen})
	}
}

// CaptureTrace runs the configuration and records every injected
// packet as a trace record — the capture mode behind `shgen
// -capture`, turning any registered synthetic pattern into a
// replayable trace. The returned trace carries the run's grid,
// horizon (one past the last injection), and provenance; records are
// in injection order (globally sorted by cycle), and replaying the
// result reproduces the run's per-(src,dst) flit counts exactly.
// Config.Tracer must be unset (capture claims the event stream), and
// the pattern must be synthetic — capturing a Replay is the identity.
func CaptureTrace(cfg Config) (*trace.Trace, Stats, error) {
	if cfg.Tracer != nil {
		return nil, Stats{}, fmt.Errorf("sim: CaptureTrace needs the Tracer slot (Config.Tracer must be nil)")
	}
	if _, ok := cfg.Pattern.(*Replay); ok {
		return nil, Stats{}, fmt.Errorf("sim: refusing to capture a trace from a trace replay")
	}
	cfg.Defaults()
	ct := &captureTracer{plen: cfg.PacketLen}
	cfg.Tracer = ct
	s, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	st := s.Run()
	tr := &trace.Trace{
		Meta: trace.Meta{
			Rows: cfg.Topo.Rows,
			Cols: cfg.Topo.Cols,
			Generator: fmt.Sprintf("capture pattern=%s topo=%s seed=%d rate=%g plen=%d warmup=%d measure=%d",
				cfg.Pattern.Name(), cfg.Topo.Kind, cfg.Seed, cfg.InjectionRate, cfg.PacketLen,
				cfg.Warmup, cfg.Measure),
		},
		Records: ct.recs,
	}
	if len(ct.recs) > 0 {
		tr.Meta.Horizon = tr.EffectiveHorizon()
	}
	if err := tr.Validate(); err != nil {
		return nil, st, fmt.Errorf("sim: captured trace invalid: %w", err)
	}
	return tr, st, nil
}
