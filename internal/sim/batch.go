package sim

// Batched multi-replica simulation: one Shape — the read-only build
// product of a (topology, routing, link-latency) configuration — is
// instantiated into many independent replicas that differ only in
// load, seed, traffic pattern, schedule, or adaptive-control state,
// and a Batch steps those replicas in a single interleaved pass.
//
// The campaign layers spend most of their build time recomputing the
// same network over and over: a saturation search runs a zero-load
// reference plus up to eight probes, and a load-latency sweep one run
// per point, each of which used to rebuild the routers, channel
// wiring, and — dominating everything — the per-(src,dst) output-port
// LUT. A Shape computes all of that once; Instantiate only allocates
// the mutable per-replica state (VC rings, credit counters, arbiter
// pointers, queues).
//
// Correctness is bit-level by construction: replicas share no mutable
// state (the Shape is never written after NewShape returns), each
// replica runs exactly the per-cycle code of a sequential
// Simulator.Run, and replicas are independent — so interleaving their
// cycles changes nothing about any replica's result. The differential
// harness in differential_test.go enforces this field by field across
// every topology family.

import (
	"fmt"
	"slices"

	"sparsehamming/internal/obs"
	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// chanShape is the immutable description of one directed channel:
// endpoints, port numbers, and pipeline latency. The mutable flit and
// credit queues live in the per-replica dchan.
type chanShape struct {
	from, to int32
	outPort  int16
	inPort   int16
	latency  int64
}

// Shape is the replica-independent build product of one (topology,
// routing, link-latency) configuration: the directed-channel layout,
// the per-router channel wiring, and the per-(src,dst) output-port
// LUT. It is read-only after NewShape returns and therefore safe to
// share across replicas running concurrently (the adaptive saturation
// search's speculative probes instantiate from one Shape on several
// goroutines).
type Shape struct {
	topo    *topo.Topology
	routing *route.Routing
	linkLat []int // copy of the Config.LinkLatency it was built from

	chans []chanShape

	// inChans[id] / outChans[id] are the dchan indices feeding input
	// port i / driven by output port o of router id. Routers reference
	// these slices directly (they are never mutated).
	inChans, outChans [][]int32

	// pathPorts[src][dst][i] is the output port taken at hop i of the
	// routed path src->dst. Packets reference rows of this table
	// directly; it is the dominant build cost a Shape amortizes.
	pathPorts [][][]int16

	// portBase is the structure-of-arrays engine's port-offset table:
	// router id owns the global ports [portBase[id], portBase[id+1])
	// — its degree link ports plus the injection/ejection port — so
	// flat per-(port, vc) state arrays are indexed without any
	// per-router indirection (see simState in soa.go). numPorts is
	// portBase[n] and maxIn the widest router's port count (the switch
	// allocator's scratch width).
	portBase []int32
	numPorts int
	maxIn    int
}

// NewShape builds the shared state for the configuration's topology,
// routing, and link latencies. The remaining Config fields (load,
// seed, VC parameters, schedule) are ignored — they parameterize
// Instantiate, not the shape.
func NewShape(cfg Config) (*Shape, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return newShape(&cfg), nil
}

// newShape builds the shared state from a defaulted, validated config.
func newShape(cfg *Config) *Shape {
	t := cfg.Topo
	n := t.NumTiles()
	sh := &Shape{
		topo:     t,
		routing:  cfg.Routing,
		linkLat:  slices.Clone(cfg.LinkLatency),
		inChans:  make([][]int32, n),
		outChans: make([][]int32, n),
	}

	// Per-link latency lookup.
	latOf := make(map[[2]int32]int64)
	for i, l := range t.Links() {
		lat := int64(1)
		if cfg.LinkLatency != nil {
			lat = int64(cfg.LinkLatency[i])
			if lat < 1 {
				lat = 1
			}
		}
		a, b := int32(t.Index(l.A)), int32(t.Index(l.B))
		latOf[[2]int32{a, b}] = lat
		latOf[[2]int32{b, a}] = lat
	}

	// Port numbering: position of the neighbor in the sorted neighbor
	// list (both for input and output ports).
	portOf := func(node, nb int) int16 {
		for i, v := range t.Neighbors(node) {
			if v == nb {
				return int16(i)
			}
		}
		panic("sim: neighbor not found")
	}

	sh.portBase = make([]int32, n+1)
	for id := 0; id < n; id++ {
		deg := t.Degree(id)
		sh.inChans[id] = make([]int32, deg)
		sh.outChans[id] = make([]int32, deg)
		sh.portBase[id+1] = sh.portBase[id] + int32(deg+1)
		if deg+1 > sh.maxIn {
			sh.maxIn = deg + 1
		}
	}
	sh.numPorts = int(sh.portBase[n])

	// Directed channels: one per (from, to) adjacency.
	for id := 0; id < n; id++ {
		for _, nb := range t.Neighbors(id) {
			c := chanShape{
				from:    int32(id),
				to:      int32(nb),
				outPort: portOf(id, nb),
				inPort:  portOf(nb, id),
				latency: latOf[[2]int32{int32(id), int32(nb)}],
			}
			idx := int32(len(sh.chans))
			sh.chans = append(sh.chans, c)
			sh.outChans[id][c.outPort] = idx
			sh.inChans[nb][c.inPort] = idx
		}
	}

	// Precompute, per (src, dst) pair, the output port taken at every
	// hop of the routed path, so neither VC allocation nor injection
	// ever searches a path or a neighbor list at simulation time.
	portTo := make([][]int16, n)
	for id := range portTo {
		portTo[id] = make([]int16, n)
		for j := range portTo[id] {
			portTo[id][j] = -1
		}
	}
	for _, c := range sh.chans {
		portTo[c.from][c.to] = c.outPort
	}
	sh.pathPorts = make([][][]int16, n)
	for src := 0; src < n; src++ {
		row := make([][]int16, n)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			p := cfg.Routing.Path(src, dst)
			pp := make([]int16, p.Hops())
			for i := range pp {
				pp[i] = portTo[p.Tiles[i]][p.Tiles[i+1]]
				if pp[i] < 0 {
					panic("sim: routed path uses a missing channel")
				}
			}
			row[dst] = pp
		}
		sh.pathPorts[src] = row
	}

	counters.shapeBuilds.Add(1)
	return sh
}

// matches reports whether the config's topology, routing, and link
// latencies are the ones the shape was built from.
func (sh *Shape) matches(cfg *Config) error {
	if cfg.Topo != sh.topo || cfg.Routing != sh.routing {
		return fmt.Errorf("sim: config topology/routing differ from the shape's")
	}
	if !slices.Equal(cfg.LinkLatency, sh.linkLat) {
		return fmt.Errorf("sim: config link latencies differ from the shape's")
	}
	return nil
}

// Instantiate builds one simulator replica over the shared shape. The
// config's topology, routing, and link latencies must be exactly the
// shape's; everything else (load, seed, pattern, VC parameters,
// schedule, control) is free per replica.
func (sh *Shape) Instantiate(cfg Config) (*Simulator, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sh.matches(&cfg); err != nil {
		return nil, err
	}
	return sh.instantiate(&cfg), nil
}

// Replica configures one member of a Batch as a delta against the
// batch's base Config. Zero fields keep the base's value, so a batch
// over a load ladder only sets InjectionRate per replica.
type Replica struct {
	// InjectionRate is the replica's offered load (flits/node/cycle).
	InjectionRate float64

	// Seed, when non-zero, overrides the base seed.
	Seed int64

	// Pattern, when non-nil, overrides the base traffic pattern.
	Pattern Pattern

	// Warmup, Measure, and Drain, when positive, override the base
	// schedule (a saturation probe's clamped drain, a zero-load
	// reference's longer measurement).
	Warmup, Measure, Drain int

	// Control, when non-nil, overrides the base adaptive controller —
	// replicas of one batch may mix fixed-budget and adaptive runs, and
	// adaptive replicas end (and leave the batch) as soon as their
	// verdict is decided.
	Control *Control

	// Span, when non-nil, overrides the base trace span for this
	// replica (observability only, never results).
	Span *obs.Span
}

// config materializes the replica's effective Config over the base.
func (rep *Replica) config(base Config) Config {
	c := base
	c.InjectionRate = rep.InjectionRate
	if rep.Seed != 0 {
		c.Seed = rep.Seed
	}
	if rep.Pattern != nil {
		c.Pattern = rep.Pattern
	}
	if rep.Warmup > 0 {
		c.Warmup = rep.Warmup
	}
	if rep.Measure > 0 {
		c.Measure = rep.Measure
	}
	if rep.Drain > 0 {
		c.Drain = rep.Drain
	}
	if rep.Control != nil {
		c.Control = rep.Control
	}
	c.Span = rep.Span
	return c
}

// Batch is a set of independent simulator replicas sharing one Shape,
// stepped in a single interleaved pass. Create with NewBatch, run
// with Run; results are bit-identical to running each replica's
// configuration through RunConfig sequentially.
type Batch struct {
	shape *Shape
	sims  []*Simulator
}

// NewBatch builds one shared Shape from the base configuration and
// instantiates one replica per entry of reps. The base's
// InjectionRate is ignored (each replica sets its own); its Span is
// not inherited by replicas (set Replica.Span per member).
func NewBatch(base Config, reps []Replica) (*Batch, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("sim: batch with no replicas")
	}
	base.Defaults()
	sh, err := NewShape(base)
	if err != nil {
		return nil, err
	}
	return sh.Batch(base, reps)
}

// Batch instantiates a batch of replicas over an existing shape —
// for callers that run several batches or sequential probes against
// one configuration (the saturation searches).
func (sh *Shape) Batch(base Config, reps []Replica) (*Batch, error) {
	base.Defaults()
	b := &Batch{shape: sh, sims: make([]*Simulator, len(reps))}
	for i := range reps {
		s, err := sh.Instantiate(reps[i].config(base))
		if err != nil {
			return nil, fmt.Errorf("sim: batch replica %d: %w", i, err)
		}
		b.sims[i] = s
	}
	return b, nil
}

// Len returns the number of replicas.
func (b *Batch) Len() int { return len(b.sims) }

// batchChunk is how many cycles one replica advances before the
// interleaved pass moves to the next. Replicas are independent, so
// the chunk size is invisible in the results — it only trades cache
// locality (a replica's VC rings and queues stay hot for the whole
// chunk) against how promptly the pass retires finished replicas.
// Per-cycle interleaving (chunk 1) measurably thrashes the cache once
// the combined replica state outgrows it. Re-measured after the
// structure-of-arrays state refactor shrank the per-replica working
// set: on the 8-replica load ladder, 256 and 4096 are a few percent
// slower while 1024 and 2048 are equivalent within noise, so the
// pre-refactor value stands.
const batchChunk = 1024

// Run steps every replica to completion in one interleaved pass —
// each pass advances each still-running replica by a bounded chunk of
// cycles over the shared output-port LUT — and returns one Stats per
// replica, in replica order. Replicas that finish early (short
// drains, adaptive verdicts) drop out of the pass immediately.
func (b *Batch) Run() []Stats {
	out := make([]Stats, len(b.sims))
	active := make([]int, 0, len(b.sims))
	for i, s := range b.sims {
		s.startRun()
		active = append(active, i)
	}
	for len(active) > 0 {
		live := active[:0]
		for _, i := range active {
			running := true
			for k := 0; running && k < batchChunk; k++ {
				running = b.sims[i].stepRun()
			}
			if running {
				live = append(live, i)
			} else {
				out[i] = b.sims[i].finishRun()
			}
		}
		active = live
	}
	counters.batches.Add(1)
	counters.batchReplicas.Add(int64(len(b.sims)))
	return out
}
