package sim

import (
	"runtime"
	"sync"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// TestEarlyVerdictSaturated: a deeply saturated probe must stop in a
// small fraction of its fixed budget with a saturation verdict, and
// the verdict must agree with the fixed-budget criteria. The load is
// well past saturation: mildly saturated loads are deliberately left
// to the fixed criteria (the monitors only fire on proof).
func TestEarlyVerdictSaturated(t *testing.T) {
	cfg := meshConfig(t, 1.0)
	cfg.NumVCs, cfg.BufDepth = 2, 4 // scarcer resources: deep saturation
	fixed, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Verdict != VerdictNone {
		t.Fatalf("fixed run verdict %v, want none", fixed.Verdict)
	}
	if fixed.AcceptedRate >= 0.8 {
		t.Fatalf("test premise broken: full load not deeply saturated (accepted %.3f)", fixed.AcceptedRate)
	}

	cfg.Control = &Control{}
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Verdict != VerdictSaturated {
		t.Fatalf("adaptive verdict %v, want saturated", st.Verdict)
	}
	if st.Cycles*4 > fixed.Cycles {
		t.Errorf("early verdict took %d cycles, want < 1/4 of fixed %d", st.Cycles, fixed.Cycles)
	}
}

// TestEarlyVerdictStable: a comfortably stable run with the
// steady-state stopping rule must truncate its measurement, keep the
// latency estimate close to the fixed-budget one, and drain fully.
func TestEarlyVerdictStable(t *testing.T) {
	cfg := meshConfig(t, 0.1)
	cfg.Measure = 20000
	fixed, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Control = &Control{RelHalfWidth: 0.05}
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Verdict != VerdictStable {
		t.Fatalf("adaptive verdict %v, want stable", st.Verdict)
	}
	if st.Cycles >= fixed.Cycles {
		t.Errorf("stable stop saved nothing: %d cycles vs fixed %d", st.Cycles, fixed.Cycles)
	}
	if st.MeasuredCycles >= int64(cfg.Measure) {
		t.Errorf("measurement not truncated: %d cycles", st.MeasuredCycles)
	}
	// Unbiased: everything injected during the truncated measurement
	// still drained, and the latency estimate agrees with the fixed
	// run within a loose statistical band.
	if df := st.DeliveredFraction(); df < 0.999 {
		t.Errorf("stable run delivered only %.4f of measured packets", df)
	}
	if rel := relDiff(st.AvgPacketLatency, fixed.AvgPacketLatency); rel > 0.05 {
		t.Errorf("stable latency %.2f deviates %.1f%% from fixed %.2f",
			st.AvgPacketLatency, 100*rel, fixed.AvgPacketLatency)
	}
}

// TestAdaptiveStableDoesNotFireSaturated: a stable load near (but
// below) saturation must not be mislabeled by the monitors — the
// conservative thresholds fire only on provable saturation.
func TestAdaptiveStableDoesNotFireSaturated(t *testing.T) {
	// ~0.25 is comfortably below a 4x4 mesh's saturation (~0.35-0.45)
	// yet loaded enough to stress the monitors.
	cfg := meshConfig(t, 0.25)
	cfg.Control = &Control{LatencyRef: 20}
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Verdict == VerdictSaturated {
		t.Fatalf("stable 0.25 load got a saturation verdict (accepted %.3f)", st.AcceptedRate)
	}
}

// TestAdaptiveSaturationMatchesFixed: the adaptive search must land
// within two bisection cells of the fixed-budget search while
// simulating far fewer cycles.
func TestAdaptiveSaturationMatchesFixed(t *testing.T) {
	cfg := meshConfig(t, 0)
	cfg.Measure = 2000
	fixed, err := SaturationThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}

	acfg := cfg
	acfg.Control = &Control{RelHalfWidth: 0.02}
	adapt, err := SaturationThroughput(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if adapt.Probes == 0 || adapt.CyclesSaved == 0 {
		t.Errorf("adaptive accounting empty: probes=%d saved=%d", adapt.Probes, adapt.CyclesSaved)
	}
	cell := 2 * adapt.Resolution
	if d := adapt.SaturationRate - fixed.SaturationRate; d > cell || d < -cell {
		t.Errorf("adaptive saturation %.4f vs fixed %.4f (> 2 cells of %.4f)",
			adapt.SaturationRate, fixed.SaturationRate, adapt.Resolution)
	}
	if rel := relDiff(adapt.ZeroLoadLatency, fixed.ZeroLoadLatency); rel > 0.02 {
		t.Errorf("adaptive zero-load latency %.2f deviates %.1f%% from fixed %.2f",
			adapt.ZeroLoadLatency, 100*rel, fixed.ZeroLoadLatency)
	}
	// On this 16-node mesh the zero-load reference run dominates and
	// cannot stop early (too few packets per window for the CI), so
	// the cycle reduction here is modest; the 2x claim is asserted at
	// toolchain scale in package noc.
	if adapt.SimCycles >= fixed.SimCycles {
		t.Errorf("adaptive search simulated %d cycles, want fewer than fixed %d",
			adapt.SimCycles, fixed.SimCycles)
	}
}

// poolSched is a ProbeScheduler over a plain semaphore, standing in
// for the campaign runner's shared slot pool.
type poolSched struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

func newPoolSched(slots int) *poolSched {
	return &poolSched{sem: make(chan struct{}, slots)}
}

// TryGo implements ProbeScheduler.
func (p *poolSched) TryGo(fn func()) bool {
	select {
	case p.sem <- struct{}{}:
	default:
		return false
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer func() { <-p.sem }()
		fn()
	}()
	return true
}

// TestSpeculativeBisectionDeterministic: the speculative parallel
// search must return exactly the sequential adaptive search's result
// — same rate, same probe count, same simulated-cycle accounting —
// because speculation must affect wall-clock only.
func TestSpeculativeBisectionDeterministic(t *testing.T) {
	cfg := meshConfig(t, 0)
	cfg.Measure = 2000
	cfg.Control = &Control{RelHalfWidth: 0.02}

	seq, err := SaturationThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := newPoolSched(runtime.GOMAXPROCS(0))
	cfg.Sched = sched
	spec, err := SaturationThroughput(cfg)
	sched.wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if spec.SaturationRate != seq.SaturationRate {
		t.Errorf("speculative rate %.4f != sequential %.4f", spec.SaturationRate, seq.SaturationRate)
	}
	if spec.Probes != seq.Probes {
		t.Errorf("speculative probes %d != sequential %d", spec.Probes, seq.Probes)
	}
	if spec.SimCycles != seq.SimCycles || spec.SimFlitHops != seq.SimFlitHops {
		t.Errorf("speculative work (%d cy, %d hops) != sequential (%d cy, %d hops)",
			spec.SimCycles, spec.SimFlitHops, seq.SimCycles, seq.SimFlitHops)
	}
	if spec.CyclesSaved != seq.CyclesSaved {
		t.Errorf("speculative saved %d != sequential %d", spec.CyclesSaved, seq.CyclesSaved)
	}
	if len(spec.Samples) != len(seq.Samples) {
		t.Errorf("speculative samples %d != sequential %d", len(spec.Samples), len(seq.Samples))
	}
}

// deadlockConfig builds a configuration that genuinely deadlocks: a
// ring routed with its dateline classes erased (route.FromPaths), so
// the channel dependency cycle closes under backpressure.
func deadlockConfig(t *testing.T) Config {
	t.Helper()
	rg, err := topo.NewRing(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	good, err := route.For(rg, route.Auto)
	if err != nil {
		t.Fatal(err)
	}
	n := rg.NumTiles()
	paths := make([][]route.Path, n)
	for s := 0; s < n; s++ {
		paths[s] = make([]route.Path, n)
		for d := 0; d < n; d++ {
			p := good.Path(s, d)
			paths[s][d] = route.Path{Tiles: p.Tiles, Classes: make([]int8, len(p.Classes))}
		}
	}
	bad, err := route.FromPaths("ring-no-dateline", rg, 1, paths)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topo: rg, Routing: bad, NumVCs: 1, BufDepth: 2,
		RouterDelay: 1, PacketLen: 4, InjectionRate: 0.8,
		Seed: 3, Warmup: 2000, Measure: 30000, Drain: 30000,
	}
}

// TestWatchdogAndEarlyVerdictOnDeadlock: a deadlocking configuration
// must trip the fixed-budget watchdog within watchdogCycles of the
// last forward progress, and the adaptive monitors must reach their
// verdict much faster than the watchdog.
func TestWatchdogAndEarlyVerdictOnDeadlock(t *testing.T) {
	cfg := deadlockConfig(t)
	fixed, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Deadlocked {
		t.Fatalf("config did not deadlock (delivered %.2f over %d cycles)",
			fixed.DeliveredFraction(), fixed.Cycles)
	}
	if fixed.Cycles >= int64(cfg.Warmup+cfg.Measure) {
		t.Errorf("watchdog fired only after %d cycles, want within the injection phase", fixed.Cycles)
	}

	cfg.Control = &Control{}
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Verdict != VerdictSaturated {
		t.Fatalf("adaptive verdict %v, want saturated", st.Verdict)
	}
	if st.Cycles >= watchdogCycles {
		t.Errorf("early verdict after %d cycles, want faster than the %d-cycle watchdog",
			st.Cycles, watchdogCycles)
	}
}

// TestSaturationLowerBound: when every probe down to the smallest
// bisection midpoint saturates, the search must report the bisection
// resolution as an explicit lower-bound flag instead of a hard zero;
// a normal search must leave the flag unset.
func TestSaturationLowerBound(t *testing.T) {
	var res SaturationResult
	finishSearch(&res, 0, 1.0/(1<<bisectionSteps))
	if !res.LowerBound {
		t.Fatal("lower-bound flag not set when the search bottomed out")
	}
	if res.SaturationRate != res.Resolution || res.Resolution != 1.0/(1<<bisectionSteps) {
		t.Errorf("lower-bound rate %.5f / resolution %.5f, want both %.5f",
			res.SaturationRate, res.Resolution, 1.0/(1<<bisectionSteps))
	}

	var ok SaturationResult
	finishSearch(&ok, 0.25, 0.25+1.0/(1<<bisectionSteps))
	if ok.LowerBound || ok.SaturationRate != 0.25 {
		t.Errorf("normal search: rate %.5f lowerBound %v, want 0.25 and false",
			ok.SaturationRate, ok.LowerBound)
	}
}

// TestLoadLatencyCurveDrainClamp: sweep points above saturation share
// the saturation probes' drain clamp instead of paying the full
// default drain budget.
func TestLoadLatencyCurveDrainClamp(t *testing.T) {
	cfg := meshConfig(t, 0)
	cfg.Drain = 100000
	curve, err := LoadLatencyCurve(cfg, []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(cfg.Warmup + cfg.Measure + curveDrainFactor*cfg.Measure)
	if curve[0].Cycles > budget {
		t.Errorf("saturated sweep point ran %d cycles, want <= clamped %d", curve[0].Cycles, budget)
	}
}

// relDiff returns |a-b| / |b|.
func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	if b == 0 {
		return 0
	}
	return d / b
}
