// Package sim is a cycle-accurate network-on-chip simulator, the
// repository's stand-in for BookSim2 in the prediction toolchain of
// Figure 3 (see DESIGN.md, "Substitutions").
//
// The simulated microarchitecture matches the paper's evaluation
// configuration: input-queued routers with virtual channels (default
// 8 VCs with 32-flit buffers), credit-based flow control, separable
// round-robin VC and switch allocation, one-flit-per-cycle crossbars,
// and multi-cycle pipelined links whose latencies come from the
// physical model in package phys. Routing is table-based, following
// the deterministic paths of package route, with VC classes mapped
// onto disjoint VC ranges for deadlock freedom.
//
// The simulator reports the two performance metrics the paper uses:
// zero-load latency and saturation throughput.
package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
)

// Pattern generates destinations for synthetic traffic.
type Pattern interface {
	// Dest returns the destination tile for a packet injected at tile
	// src, or -1 to skip injection (e.g. a pattern's fixed point).
	Dest(src int, rng *rand.Rand) int
	// Name identifies the pattern.
	Name() string
}

// UniformRandom sends every packet to a destination drawn uniformly
// from all other tiles (the pattern used throughout the paper's
// evaluation).
type UniformRandom struct {
	N int
}

// Name implements Pattern.
func (u UniformRandom) Name() string { return "uniform" }

// Dest implements Pattern.
func (u UniformRandom) Dest(src int, rng *rand.Rand) int {
	if u.N < 2 {
		return -1
	}
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose sends tile (r, c) of the R x C grid to the tile holding
// the transposed matrix position: row-major index c*R + r on the same
// grid. On a square grid this is the classic (r, c) -> (c, r) mirror;
// on rectangular grids it remains a permutation of the tile indices
// (the transpose of row-major order). Fixed points stay silent.
type Transpose struct {
	Rows, Cols int
}

// Name implements Pattern.
func (p Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (p Transpose) Dest(src int, _ *rand.Rand) int {
	r, c := src/p.Cols, src%p.Cols
	d := c*p.Rows + r
	if d == src {
		return -1
	}
	return d
}

// BitComplement sends tile i to tile N-1-i.
type BitComplement struct {
	N int
}

// Name implements Pattern.
func (p BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (p BitComplement) Dest(src int, _ *rand.Rand) int {
	d := p.N - 1 - src
	if d == src {
		return -1
	}
	return d
}

// Shuffle sends tile i to tile (2i mod N-1) (perfect shuffle); tiles
// mapping to themselves stay silent.
type Shuffle struct {
	N int
}

// Name implements Pattern.
func (p Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (p Shuffle) Dest(src int, _ *rand.Rand) int {
	if p.N < 3 {
		return -1
	}
	d := (2 * src) % (p.N - 1)
	if src == p.N-1 {
		d = p.N - 1
	}
	if d == src {
		return -1
	}
	return d
}

// Hotspot sends a fraction of traffic to a fixed hot tile and the
// rest uniformly.
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64 // probability of targeting the hot tile
}

// Name implements Pattern.
func (p Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (p Hotspot) Dest(src int, rng *rand.Rand) int {
	if rng.Float64() < p.Fraction && src != p.Hot {
		return p.Hot
	}
	return UniformRandom{N: p.N}.Dest(src, rng)
}

// Neighbor sends every packet one tile to the east (wrapping), a
// best-case locality pattern.
type Neighbor struct {
	Rows, Cols int
}

// Name implements Pattern.
func (p Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (p Neighbor) Dest(src int, _ *rand.Rand) int {
	r, c := src/p.Cols, src%p.Cols
	d := r*p.Cols + (c+1)%p.Cols
	if d == src {
		// Single-column grids have no eastern neighbor; skip rather
		// than self-send (the engine drops self-sends anyway, so this
		// only makes the no-destination case explicit).
		return -1
	}
	return d
}

// PatternFactory constructs a pattern instance for an R x C grid.
type PatternFactory func(rows, cols int) (Pattern, error)

// PatternSchemeFactory constructs a pattern from a scheme-qualified
// name of the form "<scheme>:<arg>" — name is the full qualified
// name (the pattern's identity in job specs and cache keys) and arg
// the part after the colon. The trace subsystem registers the
// "trace" scheme, resolving "trace:<path>" to a Replay of the trace
// file at path (see replay.go).
type PatternSchemeFactory func(name, arg string, rows, cols int) (Pattern, error)

var (
	patternOrder   []string
	patternByName  = map[string]PatternFactory{}
	patternSchemes = map[string]PatternSchemeFactory{}
)

// RegisterPatternScheme adds a pattern-name scheme: every name of the
// form "<scheme>:<arg>" resolves through its factory. Like
// RegisterPattern it panics on an empty or duplicate scheme, and on a
// scheme containing the ':' separator.
func RegisterPatternScheme(scheme string, f PatternSchemeFactory) {
	if scheme == "" {
		panic("sim: RegisterPatternScheme with empty scheme")
	}
	if strings.ContainsRune(scheme, ':') {
		panic(fmt.Sprintf("sim: RegisterPatternScheme(%q) with ':' in the scheme", scheme))
	}
	if f == nil {
		panic(fmt.Sprintf("sim: RegisterPatternScheme(%q) with nil factory", scheme))
	}
	if _, dup := patternSchemes[scheme]; dup {
		panic(fmt.Sprintf("sim: RegisterPatternScheme(%q) twice", scheme))
	}
	patternSchemes[scheme] = f
}

// PatternSchemeNames lists the registered pattern-name schemes
// (sorted; scheme registration order is not meaningful).
func PatternSchemeNames() []string {
	names := make([]string, 0, len(patternSchemes))
	for s := range patternSchemes {
		names = append(names, s)
	}
	slices.Sort(names)
	return names
}

// RegisterPattern adds a traffic pattern under a name. It panics on
// an empty or duplicate name — registration happens at init time, so
// either is a programming error.
func RegisterPattern(name string, f PatternFactory) {
	if name == "" {
		panic("sim: RegisterPattern with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("sim: RegisterPattern(%q) with nil factory", name))
	}
	if _, dup := patternByName[name]; dup {
		panic(fmt.Sprintf("sim: RegisterPattern(%q) twice", name))
	}
	patternByName[name] = f
	patternOrder = append(patternOrder, name)
}

// PatternNames lists the registered pattern names in registration
// order.
func PatternNames() []string {
	return append([]string(nil), patternOrder...)
}

// PatternRegistered reports whether name selects a pattern: a
// registered one, the empty string for the uniform default, or a
// scheme-qualified name whose scheme is registered (the scheme's
// argument — e.g. a trace path — is only checked when the pattern is
// actually constructed with PatternByName).
func PatternRegistered(name string) bool {
	if name == "" {
		return true
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		_, ok := patternSchemes[name[:i]]
		return ok
	}
	_, ok := patternByName[name]
	return ok
}

// PatternByName constructs a pattern for an R x C grid by name; the
// empty string selects uniform random, the pattern used throughout
// the paper's evaluation, and names of the form "<scheme>:<arg>"
// resolve through the registered schemes (e.g. "trace:<path>").
// Unknown names report the registered ones.
func PatternByName(name string, rows, cols int) (Pattern, error) {
	if name == "" {
		name = "uniform"
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		f, ok := patternSchemes[name[:i]]
		if !ok {
			return nil, fmt.Errorf("sim: unknown traffic pattern scheme %q in %q (want one of %s)",
				name[:i], name, strings.Join(PatternSchemeNames(), "|"))
		}
		return f(name, name[i+1:], rows, cols)
	}
	f, ok := patternByName[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown traffic pattern %q (want one of %s)",
			name, strings.Join(PatternNames(), "|"))
	}
	return f(rows, cols)
}

// init registers the classic synthetic patterns.
func init() {
	RegisterPattern("uniform", func(rows, cols int) (Pattern, error) {
		return UniformRandom{N: rows * cols}, nil
	})
	RegisterPattern("transpose", func(rows, cols int) (Pattern, error) {
		return Transpose{Rows: rows, Cols: cols}, nil
	})
	RegisterPattern("bitcomp", func(rows, cols int) (Pattern, error) {
		return BitComplement{N: rows * cols}, nil
	})
	RegisterPattern("shuffle", func(rows, cols int) (Pattern, error) {
		return Shuffle{N: rows * cols}, nil
	})
	RegisterPattern("hotspot", func(rows, cols int) (Pattern, error) {
		return Hotspot{N: rows * cols, Hot: (rows/2)*cols + cols/2, Fraction: 0.1}, nil
	})
	RegisterPattern("neighbor", func(rows, cols int) (Pattern, error) {
		return Neighbor{Rows: rows, Cols: cols}, nil
	})
}
