// Package sim is a cycle-accurate network-on-chip simulator, the
// repository's stand-in for BookSim2 in the prediction toolchain of
// Figure 3 (see DESIGN.md, "Substitutions").
//
// The simulated microarchitecture matches the paper's evaluation
// configuration: input-queued routers with virtual channels (default
// 8 VCs with 32-flit buffers), credit-based flow control, separable
// round-robin VC and switch allocation, one-flit-per-cycle crossbars,
// and multi-cycle pipelined links whose latencies come from the
// physical model in package phys. Routing is table-based, following
// the deterministic paths of package route, with VC classes mapped
// onto disjoint VC ranges for deadlock freedom.
//
// The simulator reports the two performance metrics the paper uses:
// zero-load latency and saturation throughput.
package sim

import (
	"fmt"
	"math/rand"
)

// Pattern generates destinations for synthetic traffic.
type Pattern interface {
	// Dest returns the destination tile for a packet injected at tile
	// src, or -1 to skip injection (e.g. a pattern's fixed point).
	Dest(src int, rng *rand.Rand) int
	// Name identifies the pattern.
	Name() string
}

// UniformRandom sends every packet to a destination drawn uniformly
// from all other tiles (the pattern used throughout the paper's
// evaluation).
type UniformRandom struct {
	N int
}

// Name implements Pattern.
func (u UniformRandom) Name() string { return "uniform" }

// Dest implements Pattern.
func (u UniformRandom) Dest(src int, rng *rand.Rand) int {
	if u.N < 2 {
		return -1
	}
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose sends (r, c) to (c, r); diagonal tiles stay silent. The
// grid must be square.
type Transpose struct {
	Rows, Cols int
}

// Name implements Pattern.
func (p Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (p Transpose) Dest(src int, _ *rand.Rand) int {
	r, c := src/p.Cols, src%p.Cols
	if r == c {
		return -1
	}
	return c*p.Cols + r
}

// BitComplement sends tile i to tile N-1-i.
type BitComplement struct {
	N int
}

// Name implements Pattern.
func (p BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (p BitComplement) Dest(src int, _ *rand.Rand) int {
	d := p.N - 1 - src
	if d == src {
		return -1
	}
	return d
}

// Shuffle sends tile i to tile (2i mod N-1) (perfect shuffle); tiles
// mapping to themselves stay silent.
type Shuffle struct {
	N int
}

// Name implements Pattern.
func (p Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (p Shuffle) Dest(src int, _ *rand.Rand) int {
	if p.N < 3 {
		return -1
	}
	d := (2 * src) % (p.N - 1)
	if src == p.N-1 {
		d = p.N - 1
	}
	if d == src {
		return -1
	}
	return d
}

// Hotspot sends a fraction of traffic to a fixed hot tile and the
// rest uniformly.
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64 // probability of targeting the hot tile
}

// Name implements Pattern.
func (p Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (p Hotspot) Dest(src int, rng *rand.Rand) int {
	if rng.Float64() < p.Fraction && src != p.Hot {
		return p.Hot
	}
	return UniformRandom{N: p.N}.Dest(src, rng)
}

// Neighbor sends every packet one tile to the east (wrapping), a
// best-case locality pattern.
type Neighbor struct {
	Rows, Cols int
}

// Name implements Pattern.
func (p Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (p Neighbor) Dest(src int, _ *rand.Rand) int {
	r, c := src/p.Cols, src%p.Cols
	return r*p.Cols + (c+1)%p.Cols
}

// PatternByName constructs a pattern for an R x C grid by name.
func PatternByName(name string, rows, cols int) (Pattern, error) {
	n := rows * cols
	switch name {
	case "uniform", "":
		return UniformRandom{N: n}, nil
	case "transpose":
		if rows != cols {
			return nil, fmt.Errorf("sim: transpose requires a square grid, got %dx%d", rows, cols)
		}
		return Transpose{Rows: rows, Cols: cols}, nil
	case "bitcomp":
		return BitComplement{N: n}, nil
	case "shuffle":
		return Shuffle{N: n}, nil
	case "hotspot":
		return Hotspot{N: n, Hot: (rows/2)*cols + cols/2, Fraction: 0.1}, nil
	case "neighbor":
		return Neighbor{Rows: rows, Cols: cols}, nil
	default:
		return nil, fmt.Errorf("sim: unknown traffic pattern %q", name)
	}
}
