package sim

import (
	"math/rand"
	"testing"
)

// examplePatterns are the pattern names examples/traffic exercises —
// PatternByName must round-trip every one of them.
var examplePatterns = []string{"uniform", "transpose", "bitcomp", "shuffle", "hotspot", "neighbor"}

func TestPatternByNameRoundTrip(t *testing.T) {
	for _, name := range examplePatterns {
		p, err := PatternByName(name, 8, 8)
		if err != nil {
			t.Errorf("PatternByName(%q) = %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PatternByName(%q).Name() = %q", name, p.Name())
		}
	}
	// The empty name is the uniform default.
	p, err := PatternByName("", 8, 8)
	if err != nil {
		t.Fatalf("empty name: %v", err)
	}
	if p.Name() != "uniform" {
		t.Errorf("empty name gives %q, want uniform", p.Name())
	}
}

func TestPatternByNameErrors(t *testing.T) {
	if _, err := PatternByName("tornado", 8, 8); err == nil {
		t.Error("unknown pattern must error")
	}
	// Every pattern accepts rectangular grids (transpose generalizes
	// to the row-major index transpose).
	for _, name := range PatternNames() {
		if _, err := PatternByName(name, 8, 16); err != nil {
			t.Errorf("%s on 8x16: %v", name, err)
		}
	}
}

// TestPatternRegistry checks the registry surface: every registered
// name constructs a pattern reporting that name, membership matches
// PatternNames, and the empty name maps onto uniform.
func TestPatternRegistry(t *testing.T) {
	names := PatternNames()
	if len(names) < 6 {
		t.Fatalf("only %d patterns registered: %v", len(names), names)
	}
	for _, name := range names {
		if !PatternRegistered(name) {
			t.Errorf("PatternRegistered(%q) = false", name)
		}
		p, err := PatternByName(name, 8, 8)
		if err != nil {
			t.Errorf("PatternByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PatternByName(%q).Name() = %q", name, p.Name())
		}
	}
	if !PatternRegistered("") {
		t.Error("empty name must count as registered (uniform default)")
	}
	if PatternRegistered("tornado") {
		t.Error("unknown name must not count as registered")
	}
}

// TestTransposeRectangular pins the generalized transpose: on a
// rectangular grid it is the permutation mapping row-major index
// r*C+c to c*R+r, with fixed points staying silent.
func TestTransposeRectangular(t *testing.T) {
	const rows, cols = 8, 12
	p, err := PatternByName("transpose", rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for src := 0; src < rows*cols; src++ {
		r, c := src/cols, src%cols
		d := p.Dest(src, nil)
		want := c*rows + r
		if want == src {
			if d != -1 {
				t.Errorf("fixed point %d sends to %d, want silence", src, d)
			}
			continue
		}
		if d != want {
			t.Errorf("tile (%d,%d) sends to %d, want %d", r, c, d, want)
		}
		if seen[d] {
			t.Errorf("destination %d hit twice: not a permutation", d)
		}
		seen[d] = true
	}
}

// TestPatternDestinationsValid checks the contract every pattern must
// obey: destinations are in [0, N) or -1 (skip), and never the
// source.
func TestPatternDestinationsValid(t *testing.T) {
	const rows, cols = 8, 8
	n := rows * cols
	rng := rand.New(rand.NewSource(1))
	for _, name := range examplePatterns {
		p, err := PatternByName(name, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			for trial := 0; trial < 20; trial++ {
				d := p.Dest(src, rng)
				if d == -1 {
					continue
				}
				if d < 0 || d >= n {
					t.Fatalf("%s: Dest(%d) = %d outside [0,%d)", name, src, d, n)
				}
				if d == src {
					t.Fatalf("%s: Dest(%d) = source", name, src)
				}
			}
		}
	}
}

// TestTransposeFixedPoints pins the transpose semantics: diagonal
// tiles stay silent, everything else goes to the mirrored tile.
func TestTransposeFixedPoints(t *testing.T) {
	p, err := PatternByName("transpose", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			src := r*4 + c
			d := p.Dest(src, nil)
			if r == c {
				if d != -1 {
					t.Errorf("diagonal tile %d sends to %d, want silence", src, d)
				}
			} else if d != c*4+r {
				t.Errorf("tile (%d,%d) sends to %d, want (%d,%d)", r, c, d, c, r)
			}
		}
	}
}
