package sim

import (
	"math/rand"
	"testing"
)

// examplePatterns are the pattern names examples/traffic exercises —
// PatternByName must round-trip every one of them.
var examplePatterns = []string{"uniform", "transpose", "bitcomp", "shuffle", "hotspot", "neighbor"}

func TestPatternByNameRoundTrip(t *testing.T) {
	for _, name := range examplePatterns {
		p, err := PatternByName(name, 8, 8)
		if err != nil {
			t.Errorf("PatternByName(%q) = %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PatternByName(%q).Name() = %q", name, p.Name())
		}
	}
	// The empty name is the uniform default.
	p, err := PatternByName("", 8, 8)
	if err != nil {
		t.Fatalf("empty name: %v", err)
	}
	if p.Name() != "uniform" {
		t.Errorf("empty name gives %q, want uniform", p.Name())
	}
}

func TestPatternByNameErrors(t *testing.T) {
	if _, err := PatternByName("tornado", 8, 8); err == nil {
		t.Error("unknown pattern must error")
	}
	if _, err := PatternByName("transpose", 8, 16); err == nil {
		t.Error("transpose on a non-square grid must error")
	}
	// All other patterns accept rectangular grids.
	for _, name := range []string{"uniform", "bitcomp", "shuffle", "hotspot", "neighbor"} {
		if _, err := PatternByName(name, 8, 16); err != nil {
			t.Errorf("%s on 8x16: %v", name, err)
		}
	}
}

// TestPatternDestinationsValid checks the contract every pattern must
// obey: destinations are in [0, N) or -1 (skip), and never the
// source.
func TestPatternDestinationsValid(t *testing.T) {
	const rows, cols = 8, 8
	n := rows * cols
	rng := rand.New(rand.NewSource(1))
	for _, name := range examplePatterns {
		p, err := PatternByName(name, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			for trial := 0; trial < 20; trial++ {
				d := p.Dest(src, rng)
				if d == -1 {
					continue
				}
				if d < 0 || d >= n {
					t.Fatalf("%s: Dest(%d) = %d outside [0,%d)", name, src, d, n)
				}
				if d == src {
					t.Fatalf("%s: Dest(%d) = source", name, src)
				}
			}
		}
	}
}

// TestTransposeFixedPoints pins the transpose semantics: diagonal
// tiles stay silent, everything else goes to the mirrored tile.
func TestTransposeFixedPoints(t *testing.T) {
	p, err := PatternByName("transpose", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			src := r*4 + c
			d := p.Dest(src, nil)
			if r == c {
				if d != -1 {
					t.Errorf("diagonal tile %d sends to %d, want silence", src, d)
				}
			} else if d != c*4+r {
				t.Errorf("tile (%d,%d) sends to %d, want (%d,%d)", r, c, d, c, r)
			}
		}
	}
}
