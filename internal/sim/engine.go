package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"sparsehamming/internal/obs"
	"sparsehamming/internal/route"
)

// packet is one in-flight packet. Packet slots live in
// Simulator.packets and are recycled through a free list once the
// tail flit ejects (see generate and traverse), so the slot array is
// bounded by the peak number of live packets rather than the total
// injected over the run.
type packet struct {
	src, dst int32
	inject   int64
	measured bool
	path     route.Path
	// ports[i] is the precomputed output port taken at path.Tiles[i],
	// shared with Simulator.pathPorts (never mutated).
	ports []int16
	// hop is the index in path.Tiles of the router currently holding
	// the head flit; it advances when the head traverses a link, so VC
	// allocation never searches the path.
	hop int16
	// nextSeq is the flit sequence number the destination expects
	// next; it verifies in-order, loss-free, duplication-free
	// delivery (wormhole flow control guarantees all three).
	nextSeq int16
	// plen is this packet's length in flits. Bernoulli traffic always
	// uses Config.PacketLen; trace replay carries per-record sizes
	// (bounded by trace.MaxPacketLen, so 16 bits suffice).
	plen int16
}

// Stats summarizes one simulation run.
type Stats struct {
	Cycles int64

	// Offered and accepted load, in flits per node per cycle over the
	// measurement window.
	OfferedRate  float64
	AcceptedRate float64

	// Packet latency statistics over measured packets (injection of
	// the head flit to ejection of the tail flit, including source
	// queueing).
	AvgPacketLatency float64
	MaxPacketLatency int64

	// P50/P99PacketLatency are latency percentiles over measured
	// packets (0 when nothing was measured).
	P50PacketLatency float64
	P99PacketLatency float64

	// MeasuredInjected / MeasuredEjected count packets generated in
	// the measurement window and how many of them were delivered
	// before the drain limit. A ratio well below 1 means the network
	// is past saturation.
	MeasuredInjected int64
	MeasuredEjected  int64

	AvgHops float64 // routing property, for reference

	// FlitHops counts every flit movement through a crossbar (link
	// traversals and ejections) over the whole run, warmup and drain
	// included. It is the simulator's work figure: perf harnesses
	// divide wall-clock time by it to report ns per flit.
	FlitHops int64

	// MaxLinkUtilization is the highest per-directed-channel flit
	// rate observed during the measurement window (flits per cycle,
	// at most 1); it identifies the bottleneck channel.
	MaxLinkUtilization float64

	// OrderViolations counts flits that arrived at their destination
	// out of sequence (must be 0: wormhole flow control delivers each
	// packet's flits in order on a single path).
	OrderViolations int64

	// Deadlocked is set if the watchdog saw no forward progress while
	// flits were in flight. The routings in package route are verified
	// deadlock-free, so this indicates a simulator misconfiguration.
	Deadlocked bool

	// Verdict records how an adaptive run ended (VerdictNone for
	// fixed-budget runs and adaptive runs that exhausted their
	// budget). See Config.Control.
	Verdict Verdict

	// MeasuredCycles is the effective measurement-phase length the
	// rate statistics are normalized over: Config.Measure, unless a
	// stable verdict truncated the phase early.
	MeasuredCycles int64
}

// DeliveredFraction returns MeasuredEjected / MeasuredInjected.
func (s Stats) DeliveredFraction() float64 {
	if s.MeasuredInjected == 0 {
		return 1
	}
	return float64(s.MeasuredEjected) / float64(s.MeasuredInjected)
}

// Simulator executes one configuration. Create with New, run with Run.
//
// The steady-state cycle loop (step and the phases it calls) performs
// no heap allocations: packets are recycled through a free list, VC
// buffers are fixed-capacity rings sized at build time, route and
// output-port lookups are precomputed tables, and every scratch slice
// the allocators need lives on the router. Dynamic queues (links,
// source queues, the latency log) grow to the run's high-water mark
// during warmup and are then reused.
type Simulator struct {
	cfg Config

	// soa holds the default structure-of-arrays engine state: flat
	// per-(port, vc) lanes indexed through the shape's portBase table
	// (see soa.go). routers holds the retained array-of-structs
	// reference engine instead — non-nil only when cfg.reference is
	// set, which in-package differential tests use as the oracle the
	// SoA layout is verified bit-identical against (see reference.go).
	soa     *simState
	routers []*router

	n       int // router count
	chans   []dchan
	packets []packet
	rng     *rand.Rand
	now     int64

	// freePkts holds recycled indices into packets whose tail flit
	// has ejected; generate reuses them before growing the slot array.
	// It stays empty when noPool is set (tracing needs stable IDs).
	freePkts []int32
	noPool   bool

	// pathPorts[src][dst][i] is the output port taken at hop i of the
	// routed path src->dst, precomputed at build time so the hot path
	// never searches neighbor lists.
	pathPorts [][][]int16

	vcPerClass int

	flitsInFlight int64
	lastProgress  int64
	flitHops      int64

	// ctl holds the adaptive-control monitor state; nil for
	// fixed-budget runs, whose hot path never touches it.
	ctl *ctlState

	// replaySched is the scaled injection schedule when the replica's
	// pattern is a trace Replay (nil for Bernoulli traffic): the
	// trace's records with cycles divided by the load scale, sorted by
	// effective cycle. replayIdx is the cursor of the next record to
	// inject. See replay.go.
	replaySched []replayEvent
	replayIdx   int

	measureStart, measureEnd int64
	winFlits                 int64
	measInjected             int64
	measEjected              int64
	latencySum               int64
	latencyMax               int64
	latencies                []int64
	orderViolations          int64
	linkFlits                []int64 // flits traversed per dchan in the window

	// Run-loop state, held on the simulator rather than the Run stack
	// so a Batch can suspend and resume replicas between cycles (see
	// startRun / stepRun / finishRun).
	runVerdict    Verdict
	runDeadlocked bool
	runPh         phaseTrace
}

// watchdogCycles is how long the watchdog waits without any flit
// movement before declaring deadlock.
const watchdogCycles = 8000

// New builds a simulator for the configuration (applying defaults).
// It is equivalent to building a single-use Shape and instantiating
// one replica from it; callers running several configurations that
// differ only in load, seed, pattern, or schedule should build the
// Shape once and share it (see NewShape, NewBatch).
func New(cfg Config) (*Simulator, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return newShape(&cfg).instantiate(&cfg), nil
}

// instantiate allocates the mutable per-replica state — the flat SoA
// lanes (or, under cfg.reference, routers with their VC rings, credit
// counters, and arbiter pointers), plus the directed-channel queues —
// over the shape's shared wiring and output-port LUT. cfg must be
// defaulted, validated, and match the shape (see Instantiate for the
// checked public entry point).
func (sh *Shape) instantiate(cfg *Config) *Simulator {
	s := &Simulator{
		cfg:        *cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		vcPerClass: cfg.NumVCs / cfg.Routing.NumClasses,
		noPool:     cfg.Tracer != nil,
		pathPorts:  sh.pathPorts,
		n:          sh.topo.NumTiles(),
	}
	// The SoA allocators pack one request bit per input port and one
	// lane bit per VC into a word; routers wider than 64 ports or
	// configs with more than 64 VCs (no shipped topology or config
	// comes close) fall back to the reference layout.
	if cfg.reference || sh.maxIn > 64 || cfg.NumVCs > 64 {
		s.instantiateRef(sh)
	} else {
		s.instantiateSoA(sh)
	}

	if rp, ok := cfg.Pattern.(*Replay); ok {
		s.replaySched = rp.schedule(cfg.InjectionRate)
	}

	s.chans = make([]dchan, len(sh.chans))
	for i := range sh.chans {
		cs := &sh.chans[i]
		s.chans[i] = dchan{
			from:    cs.from,
			to:      cs.to,
			outPort: cs.outPort,
			inPort:  cs.inPort,
			latency: cs.latency,
		}
	}
	s.linkFlits = make([]int64, len(s.chans))

	counters.simBuilds.Add(1)
	return s
}

// classVCRange returns the VC interval [lo, hi) serving a VC class.
func (s *Simulator) classVCRange(class int8) (int, int) {
	lo := int(class) * s.vcPerClass
	hi := lo + s.vcPerClass
	if int(class) == s.cfg.Routing.NumClasses-1 {
		hi = s.cfg.NumVCs
	}
	return lo, hi
}

// Run executes the configured warmup/measure/drain schedule and
// returns the statistics. With Config.Control set, the schedule is a
// cap rather than a sentence: the adaptive monitors may end the run
// with a saturation verdict or truncate the measurement phase once
// the latency estimate has converged (see control.go); without it the
// fixed schedule executes bit-identically to previous releases.
func (s *Simulator) Run() Stats {
	s.startRun()
	for s.stepRun() {
	}
	return s.finishRun()
}

// startRun initializes the run-loop state. The loop body lives in
// stepRun so Run (sequential) and Batch.Run (interleaved) execute the
// identical per-cycle code.
func (s *Simulator) startRun() {
	cfg := &s.cfg
	s.measureStart = int64(cfg.Warmup)
	s.measureEnd = int64(cfg.Warmup + cfg.Measure)
	s.lastProgress = 0
	s.runVerdict = VerdictNone
	s.runDeadlocked = false
	if cfg.Control != nil {
		s.ctl = newCtlState(*cfg.Control, cfg.Measure)
	}

	// Preallocate the latency log for the expected measured-packet
	// count (plus slack), so recording latencies in steady state does
	// not allocate.
	if s.latencies == nil {
		expect := int(cfg.InjectionRate / float64(cfg.PacketLen) *
			float64(cfg.Topo.NumTiles()) * float64(cfg.Measure))
		if s.replaySched != nil {
			// Replay knows its packet count exactly; the measured subset
			// can only be smaller.
			expect = len(s.replaySched)
		}
		s.latencies = make([]int64, 0, expect+expect/4+64)
	}

	// Phase tracing: when a span is attached, mark the
	// warmup/measure/drain transitions as child spans. The boundaries
	// are detected against s.measureStart/s.measureEnd each iteration
	// because adaptive control moves both; with no span attached the
	// loop pays a single nil check per cycle and allocates nothing.
	s.runPh = phaseTrace{span: cfg.Span}
	s.runPh.enter("warmup", 0)
}

// stepRun executes one iteration of the run loop: the end-of-run
// checks followed by one network cycle. It returns false once the run
// is over (schedule exhausted, network drained, watchdog fired, or an
// adaptive verdict ended the run) without advancing the network
// further; call finishRun then.
func (s *Simulator) stepRun() bool {
	cfg := &s.cfg
	t := s.now
	if s.runPh.span != nil {
		if s.runPh.n == 1 && t >= s.measureStart {
			s.runPh.enter("measure", t)
		}
		if s.runPh.n == 2 && t >= s.measureEnd {
			s.runPh.enter("drain", t)
		}
	}
	// s.measureEnd moves when a stable verdict truncates the
	// measurement phase, so the injection stop and drain deadline
	// are derived from it every cycle.
	if t >= s.measureEnd+int64(cfg.Drain) {
		return false
	}
	if t >= s.measureEnd && s.measEjected == s.measInjected && s.flitsInFlight == 0 {
		return false
	}
	if s.flitsInFlight > 0 && t-s.lastProgress > watchdogCycles {
		s.runDeadlocked = true
		return false
	}
	if s.ctl != nil && t == s.ctl.nextCheck {
		switch v := s.controlCheck(t); v {
		case VerdictSaturated, VerdictInterrupted:
			s.runVerdict = v
			return false
		case VerdictStable:
			// Truncate the measurement phase here and drain
			// normally, so the delivered statistics stay
			// unbiased; injection stops this cycle. The monitor
			// state stays alive in done mode: interrupt polling
			// must keep working through the drain.
			s.runVerdict = v
			s.measureEnd = t
			s.ctl.done = true
		}
	}
	s.step(t < s.measureEnd)
	return true
}

// finishRun assembles the Stats after stepRun has returned false.
func (s *Simulator) finishRun() Stats {
	cfg := &s.cfg
	effMeasure := s.measureEnd - s.measureStart
	st := Stats{
		Cycles:           s.now,
		OfferedRate:      cfg.InjectionRate,
		AcceptedRate:     float64(s.winFlits) / (float64(effMeasure) * float64(cfg.Topo.NumTiles())),
		MeasuredInjected: s.measInjected,
		MeasuredEjected:  s.measEjected,
		MaxPacketLatency: s.latencyMax,
		AvgHops:          cfg.Routing.AvgHops(),
		FlitHops:         s.flitHops,
		OrderViolations:  s.orderViolations,
		Deadlocked:       s.runDeadlocked,
		Verdict:          s.runVerdict,
		MeasuredCycles:   effMeasure,
	}
	if s.measEjected > 0 {
		st.AvgPacketLatency = float64(s.latencySum) / float64(s.measEjected)
		slices.Sort(s.latencies)
		st.P50PacketLatency = float64(s.latencies[len(s.latencies)/2])
		st.P99PacketLatency = float64(s.latencies[len(s.latencies)*99/100])
	}
	var maxFlits int64
	for _, n := range s.linkFlits {
		if n > maxFlits {
			maxFlits = n
		}
	}
	if effMeasure > 0 {
		st.MaxLinkUtilization = float64(maxFlits) / float64(effMeasure)
	}
	s.runPh.finish(s.now, &st)
	countRun(&st)
	return st
}

// phaseTrace tracks which simulation phase the Run loop is in and
// mirrors the transitions into child spans of the run's span. Inert
// (and allocation-free) when span is nil.
type phaseTrace struct {
	span    *obs.Span
	cur     *obs.Span
	n       int   // 1 = warmup, 2 = measure, 3 = drain
	startAt int64 // cycle the current phase began
}

// enter closes the current phase span and opens the next.
func (p *phaseTrace) enter(name string, t int64) {
	if p.span == nil {
		return
	}
	p.close(t)
	p.cur = p.span.Child(name)
	p.n++
	p.startAt = t
}

// close ends the current phase span, recording its cycle count.
func (p *phaseTrace) close(t int64) {
	if p.cur != nil {
		p.cur.SetAttr("cycles", t-p.startAt)
		p.cur.End()
		p.cur = nil
	}
}

// finish closes the open phase span and annotates the run span with
// the run's outcome.
func (p *phaseTrace) finish(t int64, st *Stats) {
	if p.span == nil {
		return
	}
	p.close(t)
	p.span.SetAttr("cycles", st.Cycles)
	if st.Verdict != VerdictNone {
		p.span.SetAttr("verdict", st.Verdict.String())
	}
	if st.Deadlocked {
		p.span.SetAttr("deadlocked", true)
	}
}

// step advances the network by one cycle. It runs the five-phase
// router pipeline in a fixed order — link delivery, generation and
// injection, VC allocation, switch allocation and traversal — and is
// allocation-free in steady state (see the Simulator doc). The SoA
// and reference engines execute the identical pipeline over their
// respective layouts; the differential harness pins them bit-equal.
func (s *Simulator) step(inject bool) {
	if s.soa != nil {
		s.stepSoA(inject)
		return
	}
	s.stepRef(inject)
}

// generate draws new packets for every node (Bernoulli process with
// rate InjectionRate/PacketLen packets per node per cycle), or drains
// the replay schedule when the pattern is a trace Replay. Packet
// slots come from the free list when one is available, so the packet
// array stops growing once the network reaches steady state.
func (s *Simulator) generate(t int64) {
	if s.replaySched != nil {
		s.generateReplay(t)
		return
	}
	pPkt := s.cfg.InjectionRate / float64(s.cfg.PacketLen)
	measured := t >= s.measureStart && t < s.measureEnd
	for id := 0; id < s.n; id++ {
		if s.rng.Float64() >= pPkt {
			continue
		}
		dst := s.cfg.Pattern.Dest(id, s.rng)
		if dst < 0 || dst == id {
			continue
		}
		s.pushPacket(int32(id), int32(dst), t, int16(s.cfg.PacketLen), measured)
	}
}

// generateReplay hands every replay record whose scaled cycle has
// arrived to its source's injection queue, in schedule order. Unlike
// the Bernoulli path it draws nothing from the RNG, so replayed
// results are independent of Config.Seed.
func (s *Simulator) generateReplay(t int64) {
	measured := t >= s.measureStart && t < s.measureEnd
	for s.replayIdx < len(s.replaySched) {
		ev := &s.replaySched[s.replayIdx]
		if ev.cycle > t {
			return
		}
		s.replayIdx++
		s.pushPacket(ev.src, ev.dst, t, ev.plen, measured)
	}
}

// pushPacket allocates a packet slot (recycling from the free list
// when possible) and queues it at its source router.
func (s *Simulator) pushPacket(src, dst int32, t int64, plen int16, measured bool) {
	pk := packet{
		src:      src,
		dst:      dst,
		inject:   t,
		measured: measured,
		path:     s.cfg.Routing.Path(int(src), int(dst)),
		ports:    s.pathPorts[src][dst],
		plen:     plen,
	}
	if measured {
		s.measInjected++
	}
	var pid int32
	if n := len(s.freePkts); n > 0 {
		pid = s.freePkts[n-1]
		s.freePkts = s.freePkts[:n-1]
		s.packets[pid] = pk
	} else {
		s.packets = append(s.packets, pk)
		pid = int32(len(s.packets) - 1)
	}
	if st := s.soa; st != nil {
		st.srcQ[src].push(pid)
		st.setOcc(src)
	} else {
		s.routers[src].srcQ.push(pid)
	}
}

// RunConfig is a convenience wrapper: build and run in one call.
func RunConfig(cfg Config) (Stats, error) {
	s, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	return s.Run(), nil
}

// String renders key stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("offered=%.3f accepted=%.3f lat=%.1f delivered=%.2f",
		s.OfferedRate, s.AcceptedRate, s.AvgPacketLatency, s.DeliveredFraction())
}
