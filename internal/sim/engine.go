package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"sparsehamming/internal/route"
)

// packet is one in-flight packet.
type packet struct {
	src, dst int32
	inject   int64
	measured bool
	path     route.Path
	// nextSeq is the flit sequence number the destination expects
	// next; it verifies in-order, loss-free, duplication-free
	// delivery (wormhole flow control guarantees all three).
	nextSeq int16
}

// Stats summarizes one simulation run.
type Stats struct {
	Cycles int64

	// Offered and accepted load, in flits per node per cycle over the
	// measurement window.
	OfferedRate  float64
	AcceptedRate float64

	// Packet latency statistics over measured packets (injection of
	// the head flit to ejection of the tail flit, including source
	// queueing).
	AvgPacketLatency float64
	MaxPacketLatency int64

	// P50/P99PacketLatency are latency percentiles over measured
	// packets (0 when nothing was measured).
	P50PacketLatency float64
	P99PacketLatency float64

	// MeasuredInjected / MeasuredEjected count packets generated in
	// the measurement window and how many of them were delivered
	// before the drain limit. A ratio well below 1 means the network
	// is past saturation.
	MeasuredInjected int64
	MeasuredEjected  int64

	AvgHops float64 // routing property, for reference

	// MaxLinkUtilization is the highest per-directed-channel flit
	// rate observed during the measurement window (flits per cycle,
	// at most 1); it identifies the bottleneck channel.
	MaxLinkUtilization float64

	// OrderViolations counts flits that arrived at their destination
	// out of sequence (must be 0: wormhole flow control delivers each
	// packet's flits in order on a single path).
	OrderViolations int64

	// Deadlocked is set if the watchdog saw no forward progress while
	// flits were in flight. The routings in package route are verified
	// deadlock-free, so this indicates a simulator misconfiguration.
	Deadlocked bool
}

// DeliveredFraction returns MeasuredEjected / MeasuredInjected.
func (s Stats) DeliveredFraction() float64 {
	if s.MeasuredInjected == 0 {
		return 1
	}
	return float64(s.MeasuredEjected) / float64(s.MeasuredInjected)
}

// Simulator executes one configuration. Create with New, run with Run.
type Simulator struct {
	cfg     Config
	routers []*router
	chans   []*dchan
	packets []packet
	rng     *rand.Rand
	now     int64

	vcPerClass int

	flitsInFlight int64
	lastProgress  int64

	measureStart, measureEnd int64
	winFlits                 int64
	measInjected             int64
	measEjected              int64
	latencySum               int64
	latencyMax               int64
	latencies                []int64
	orderViolations          int64
	linkFlits                []int64 // flits traversed per dchan in the window
}

// watchdogCycles is how long the watchdog waits without any flit
// movement before declaring deadlock.
const watchdogCycles = 8000

// New builds a simulator for the configuration (applying defaults).
func New(cfg Config) (*Simulator, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		vcPerClass: cfg.NumVCs / cfg.Routing.NumClasses,
	}
	s.build()
	return s, nil
}

// build creates routers and directed channels.
func (s *Simulator) build() {
	t := s.cfg.Topo
	n := t.NumTiles()
	s.routers = make([]*router, n)

	// Per-link latency lookup.
	latOf := make(map[[2]int32]int64)
	for i, l := range t.Links() {
		lat := int64(1)
		if s.cfg.LinkLatency != nil {
			lat = int64(s.cfg.LinkLatency[i])
			if lat < 1 {
				lat = 1
			}
		}
		a, b := int32(t.Index(l.A)), int32(t.Index(l.B))
		latOf[[2]int32{a, b}] = lat
		latOf[[2]int32{b, a}] = lat
	}

	// Port numbering: position of the neighbor in the sorted neighbor
	// list (both for input and output ports).
	portOf := func(node, nb int) int16 {
		for i, v := range t.Neighbors(node) {
			if v == nb {
				return int16(i)
			}
		}
		panic("sim: neighbor not found")
	}

	for id := 0; id < n; id++ {
		deg := t.Degree(id)
		r := &router{
			id:       int32(id),
			inChans:  make([]int32, deg),
			outChans: make([]int32, deg),
			injVC:    -1,
		}
		r.vcs = make([][]vcState, deg+1)
		for p := range r.vcs {
			r.vcs[p] = make([]vcState, s.cfg.NumVCs)
			for v := range r.vcs[p] {
				r.vcs[p][v].outPort = -1
				r.vcs[p][v].outVC = -1
			}
		}
		r.credits = make([][]int16, deg+1)
		r.ovcOwner = make([][]int32, deg+1)
		for o := range r.credits {
			r.credits[o] = make([]int16, s.cfg.NumVCs)
			r.ovcOwner[o] = make([]int32, s.cfg.NumVCs)
			for v := range r.credits[o] {
				r.credits[o][v] = int16(s.cfg.BufDepth)
				r.ovcOwner[o][v] = -1
			}
		}
		r.vaRR = make([]int, deg+1)
		r.saInRR = make([]int, deg+1)
		r.saOutRR = make([]int, deg+1)
		s.routers[id] = r
	}

	// Directed channels: one per (from, to) adjacency.
	for id := 0; id < n; id++ {
		for _, nb := range t.Neighbors(id) {
			c := &dchan{
				from:    int32(id),
				to:      int32(nb),
				outPort: portOf(id, nb),
				inPort:  portOf(nb, id),
				latency: latOf[[2]int32{int32(id), int32(nb)}],
			}
			idx := int32(len(s.chans))
			s.chans = append(s.chans, c)
			s.routers[id].outChans[c.outPort] = idx
			s.routers[nb].inChans[c.inPort] = idx
		}
	}
	s.linkFlits = make([]int64, len(s.chans))
}

// classVCRange returns the VC interval [lo, hi) serving a VC class.
func (s *Simulator) classVCRange(class int8) (int, int) {
	lo := int(class) * s.vcPerClass
	hi := lo + s.vcPerClass
	if int(class) == s.cfg.Routing.NumClasses-1 {
		hi = s.cfg.NumVCs
	}
	return lo, hi
}

// Run executes the configured warmup/measure/drain schedule and
// returns the statistics.
func (s *Simulator) Run() Stats {
	cfg := &s.cfg
	s.measureStart = int64(cfg.Warmup)
	s.measureEnd = int64(cfg.Warmup + cfg.Measure)
	injectUntil := s.measureEnd
	drainEnd := s.measureEnd + int64(cfg.Drain)
	s.lastProgress = 0

	deadlocked := false
	for {
		t := s.now
		if t >= drainEnd {
			break
		}
		if t >= injectUntil && s.measEjected == s.measInjected && s.flitsInFlight == 0 {
			break
		}
		if s.flitsInFlight > 0 && t-s.lastProgress > watchdogCycles {
			deadlocked = true
			break
		}
		s.step(t < injectUntil)
	}

	st := Stats{
		Cycles:           s.now,
		OfferedRate:      cfg.InjectionRate,
		AcceptedRate:     float64(s.winFlits) / (float64(cfg.Measure) * float64(cfg.Topo.NumTiles())),
		MeasuredInjected: s.measInjected,
		MeasuredEjected:  s.measEjected,
		MaxPacketLatency: s.latencyMax,
		AvgHops:          cfg.Routing.AvgHops(),
		OrderViolations:  s.orderViolations,
		Deadlocked:       deadlocked,
	}
	if s.measEjected > 0 {
		st.AvgPacketLatency = float64(s.latencySum) / float64(s.measEjected)
		sort.Slice(s.latencies, func(a, b int) bool { return s.latencies[a] < s.latencies[b] })
		st.P50PacketLatency = float64(s.latencies[len(s.latencies)/2])
		st.P99PacketLatency = float64(s.latencies[len(s.latencies)*99/100])
	}
	var maxFlits int64
	for _, n := range s.linkFlits {
		if n > maxFlits {
			maxFlits = n
		}
	}
	if cfg.Measure > 0 {
		st.MaxLinkUtilization = float64(maxFlits) / float64(cfg.Measure)
	}
	return st
}

// step advances the network by one cycle.
func (s *Simulator) step(inject bool) {
	t := s.now

	// Phase 1: deliver flits and credits that arrive this cycle.
	for _, c := range s.chans {
		for c.flits.len() > 0 && c.flits.front().arrive <= t {
			f := c.flits.pop()
			vc := &s.routers[c.to].vcs[c.inPort][f.vc]
			vc.buf.push(flitRef{pkt: f.pkt, seq: f.seq, ready: t + int64(s.cfg.RouterDelay)})
		}
		for c.credits.len() > 0 && c.credits.front().arrive <= t {
			cr := c.credits.pop()
			s.routers[c.from].credits[c.outPort][cr.vc]++
		}
	}

	// Phase 2: traffic generation and source injection.
	if inject {
		s.generate(t)
	}
	for _, r := range s.routers {
		s.injectFlits(r, t)
	}

	// Phase 3: virtual-channel allocation.
	for _, r := range s.routers {
		s.vcAlloc(r, t)
	}

	// Phase 4+5: switch allocation and traversal.
	for _, r := range s.routers {
		s.switchAllocTraverse(r, t)
	}

	s.now++
}

// generate draws new packets for every node (Bernoulli process with
// rate InjectionRate/PacketLen packets per node per cycle).
func (s *Simulator) generate(t int64) {
	pPkt := s.cfg.InjectionRate / float64(s.cfg.PacketLen)
	measured := t >= s.measureStart && t < s.measureEnd
	for id := range s.routers {
		if s.rng.Float64() >= pPkt {
			continue
		}
		dst := s.cfg.Pattern.Dest(id, s.rng)
		if dst < 0 || dst == id {
			continue
		}
		pk := packet{
			src:      int32(id),
			dst:      int32(dst),
			inject:   t,
			measured: measured,
			path:     s.cfg.Routing.Path(id, dst),
		}
		if measured {
			s.measInjected++
		}
		s.packets = append(s.packets, pk)
		s.routers[id].srcQ.push(int32(len(s.packets) - 1))
	}
}

// injectFlits moves at most one flit per cycle from the source queue
// into the injection port, choosing a VC of the packet's first hop
// class for each new packet.
func (s *Simulator) injectFlits(r *router, t int64) {
	if r.srcQ.len() == 0 {
		return
	}
	inj := r.injPort()
	if r.injVC < 0 {
		// Pick the emptiest VC of the packet's first-hop class.
		// Injection is serialized packet-by-packet, so packets queued
		// in the same VC never interleave flits.
		pk := &s.packets[*r.srcQ.front()]
		class := int8(0)
		if len(pk.path.Classes) > 0 {
			class = pk.path.Classes[0]
		}
		lo, hi := s.classVCRange(class)
		best, bestFree := -1, 0
		for v := lo; v < hi; v++ {
			if free := s.cfg.BufDepth - r.vcs[inj][v].buf.len(); free > bestFree {
				best, bestFree = v, free
			}
		}
		if best < 0 {
			return
		}
		r.injVC = int16(best)
		r.injSeq = 0
	}
	vc := &r.vcs[inj][r.injVC]
	if vc.buf.len() >= s.cfg.BufDepth {
		return
	}
	pid := *r.srcQ.front()
	vc.buf.push(flitRef{pkt: pid, seq: r.injSeq, ready: t + int64(s.cfg.RouterDelay)})
	s.flitsInFlight++
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvInject, Pkt: pid, Seq: r.injSeq, Node: r.id, Peer: -1, VC: r.injVC})
	}
	r.injSeq++
	if int(r.injSeq) == s.cfg.PacketLen {
		r.srcQ.pop()
		r.injVC = -1
	}
}

// hopIndex returns the position of node in the packet's path.
func hopIndex(p *packet, node int32) int {
	for i, v := range p.path.Tiles {
		if v == node {
			return i
		}
	}
	return -1
}

// vcAlloc performs separable VC allocation: every input VC whose head
// is an unrouted head flit requests an output VC of its path's class;
// output VCs are granted first-come in round-robin order over inputs.
func (s *Simulator) vcAlloc(r *router, t int64) {
	nIn := r.numIn()
	V := s.cfg.NumVCs
	total := nIn * V
	start := r.vaRR[0] % total
	for k := 0; k < total; k++ {
		enc := (start + k) % total
		ip, v := enc/V, enc%V
		vc := &r.vcs[ip][v]
		if vc.outVC >= 0 || vc.outPort >= 0 || vc.buf.len() == 0 {
			continue
		}
		head := vc.buf.front()
		if head.seq != 0 || head.ready > t {
			continue
		}
		pk := &s.packets[head.pkt]
		hi := hopIndex(pk, r.id)
		if hi < 0 {
			continue // cannot happen with verified routings
		}
		if int(pk.dst) == int(r.id) {
			// Ejection needs no VC allocation.
			vc.outPort = int16(r.ejPort())
			vc.outVC = 0
			continue
		}
		next := pk.path.Tiles[hi+1]
		class := pk.path.Classes[hi]
		outPort := s.outPortTo(r, next)
		lo, hiVC := s.classVCRange(class)
		for ov := lo; ov < hiVC; ov++ {
			if r.ovcOwner[outPort][ov] < 0 {
				r.ovcOwner[outPort][ov] = int32(enc)
				vc.outPort = int16(outPort)
				vc.outVC = int16(ov)
				break
			}
		}
	}
	r.vaRR[0] = (start + 1) % total
}

// outPortTo returns the output port index at r leading to tile next.
func (s *Simulator) outPortTo(r *router, next int32) int {
	for i, ci := range r.outChans {
		if s.chans[ci].to == next {
			return i
		}
	}
	panic("sim: no channel to next hop")
}

// switchAllocTraverse performs separable (input-first) switch
// allocation and moves the winning flits.
func (s *Simulator) switchAllocTraverse(r *router, t int64) {
	nIn, nOut := r.numIn(), r.numOut()
	V := s.cfg.NumVCs
	ej := r.ejPort()

	// Input arbitration: one candidate VC per input port.
	cand := make([]int16, nIn) // VC index or -1
	for ip := 0; ip < nIn; ip++ {
		cand[ip] = -1
		start := r.saInRR[ip]
		for k := 0; k < V; k++ {
			v := (start + k) % V
			vc := &r.vcs[ip][v]
			if vc.outPort < 0 || vc.buf.len() == 0 {
				continue
			}
			head := vc.buf.front()
			if head.ready > t {
				continue
			}
			if int(vc.outPort) != ej && r.credits[vc.outPort][vc.outVC] <= 0 {
				continue
			}
			cand[ip] = int16(v)
			break
		}
	}

	// Output arbitration: one winner per output port.
	for op := 0; op < nOut; op++ {
		start := r.saOutRR[op]
		for k := 0; k < nIn; k++ {
			ip := (start + k) % nIn
			v := cand[ip]
			if v < 0 || int(r.vcs[ip][v].outPort) != op {
				continue
			}
			s.traverse(r, ip, int(v), op, t)
			r.saInRR[ip] = (int(v) + 1) % V
			r.saOutRR[op] = (ip + 1) % nIn
			break
		}
	}
}

// traverse moves one flit from input VC (ip, v) through output port op.
func (s *Simulator) traverse(r *router, ip, v, op int, t int64) {
	vc := &r.vcs[ip][v]
	f := vc.buf.pop()
	isTail := int(f.seq) == s.cfg.PacketLen-1

	if op == r.ejPort() {
		s.flitsInFlight--
		s.lastProgress = t
		pk := &s.packets[f.pkt]
		if f.seq != pk.nextSeq {
			s.orderViolations++
		}
		pk.nextSeq = f.seq + 1
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvEject, Pkt: f.pkt, Seq: f.seq, Node: r.id, Peer: -1, VC: int16(v)})
		}
		if t >= s.measureStart && t < s.measureEnd {
			s.winFlits++
		}
		if isTail {
			if pk.measured {
				s.measEjected++
				lat := t + 1 - pk.inject
				s.latencySum += lat
				s.latencies = append(s.latencies, lat)
				if lat > s.latencyMax {
					s.latencyMax = lat
				}
			}
		}
	} else {
		ci := r.outChans[op]
		c := s.chans[ci]
		c.flits.push(timedFlit{pkt: f.pkt, seq: f.seq, vc: vc.outVC, arrive: t + c.latency})
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvTraverse, Pkt: f.pkt, Seq: f.seq, Node: r.id, Peer: c.to, VC: vc.outVC})
		}
		r.credits[op][vc.outVC]--
		if t >= s.measureStart && t < s.measureEnd {
			s.linkFlits[ci]++
		}
		s.lastProgress = t
	}

	// Return a credit upstream for the freed buffer slot.
	if ip != r.injPort() {
		uc := s.chans[r.inChans[ip]]
		uc.credits.push(timedCredit{vc: int16(v), arrive: t + uc.latency})
	}

	if isTail {
		if op != r.ejPort() {
			r.ovcOwner[op][vc.outVC] = -1
		}
		vc.outPort = -1
		vc.outVC = -1
	}
}

// RunConfig is a convenience wrapper: build and run in one call.
func RunConfig(cfg Config) (Stats, error) {
	s, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	return s.Run(), nil
}

// String renders key stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("offered=%.3f accepted=%.3f lat=%.1f delivered=%.2f",
		s.OfferedRate, s.AcceptedRate, s.AvgPacketLatency, s.DeliveredFraction())
}
