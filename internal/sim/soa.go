package sim

// Structure-of-arrays engine state. The mutable per-replica state
// that used to live in per-router structs (VC rings, credit counters,
// arbiter pointers, scratch) is flattened into a handful of dense
// arrays indexed by a global (router, port, vc) offset scheme
// precomputed in the Shape: router id owns global ports
// [portBase[id], portBase[id+1]) — its link ports in neighbor order
// plus the injection/ejection port last — and VC lane vcIdx =
// globalPort*V + vc. Every per-cycle phase walks these lanes with
// small-integer arithmetic instead of chasing router and slice
// pointers, the flit buffers of all VCs live in one ring arena
// (flit slot vcIdx*D + pos), and idle routers are skipped by scanning
// a word-granular occupancy bitmap rather than testing each router.
//
// The layout is behavior-invariant: the phases below compute exactly
// the reference engine's sequence of state transitions (see
// reference.go and the proof obligations spelled out next to each
// divergence), and differential_test.go pins the two engines
// bit-identical across the full configuration matrix.

import "math/bits"

// simState is the flat per-replica state of the structure-of-arrays
// engine. All slices are allocated once at instantiate; the hot path
// only indexes them.
type simState struct {
	V int // VCs per port (Config.NumVCs)
	D int // flits per VC ring (Config.BufDepth)

	// Read-only wiring shared with the Shape.
	portBase []int32
	inChans  [][]int32
	outChans [][]int32

	// Per-VC lanes, indexed by vcIdx = globalPort*V + vc. outPort and
	// outVC are the input-side VC allocation (-1 when unrouted);
	// credits and ovcOwner are the output-side bookkeeping of the same
	// global port numbering (numIn == numOut at every router).
	outPort  []int16
	outVC    []int16
	ringHead []int16
	ringN    []int16
	credits  []int16
	ovcOwner []int32

	// ring is the flit arena backing every VC buffer: the flit at ring
	// position pos of lane vcIdx lives at ring[vcIdx*D + pos].
	ring []flitRef

	// headMask and busyMask summarize the lanes of each global port
	// as one bit per VC, so the allocator scans iterate set bits
	// instead of testing every lane:
	//
	//	headMask[gp] bit v: lane gp*V+v's front flit is an unrouted
	//	    head — exactly the lanes VC allocation must consider.
	//	busyMask[gp] bit v: the lane has a routed packet (outPort
	//	    set) and flits buffered — exactly the lanes switch
	//	    allocation must consider.
	//
	// Per-VC FIFO order makes the transitions local: a head flit
	// pushed onto an empty unrouted lane sets head, a VC grant moves
	// head→busy, a body flit pushed onto a drained routed lane sets
	// busy, a non-tail pop that empties the ring clears busy, and a
	// tail pop clears busy and sets head again if another packet's
	// head is now at the front.
	headMask []uint64
	busyMask []uint64

	// saReq[op] is the output arbiter's request bitmask — bit ip set
	// when input port ip's candidate VC requests output port op —
	// rebuilt during input arbitration each cycle and consumed (and
	// cleared) by output arbitration. With it, each contested port
	// resolves with two bit scans instead of walking every
	// (output, input) pair.
	saReq []uint64

	// Per-global-port round-robin arbiter pointers (switch allocation)
	// and the input-arbitration candidate scratch, sized to the widest
	// router. The VC allocator's round-robin pointer needs no storage:
	// the reference engine advances it by exactly one every cycle
	// unconditionally, so it is always t mod (numIn*V).
	saInRR  []int16
	saOutRR []int16
	saCand  []int16

	// Per-router lanes.
	bufFlits  []int32
	needRoute []int32
	injVC     []int16
	injSeq    []int16
	srcQ      []queue[int32]

	// occ is the occupancy bitmap: bit id is set while router id has
	// queued source packets or buffered flits. Set on packet arrival
	// (pushPacket) and flit delivery; cleared by the end-of-cycle scan
	// once the router drained. Phases 2-5 scan set bits only.
	occ []uint64
}

// setOcc marks router id as occupied.
func (st *simState) setOcc(id int32) {
	st.occ[uint32(id)>>6] |= 1 << (uint32(id) & 63)
}

// instantiateSoA allocates the structure-of-arrays per-replica state
// over the shape's offset tables.
func (s *Simulator) instantiateSoA(sh *Shape) {
	V, D := s.cfg.NumVCs, s.cfg.BufDepth
	P := sh.numPorts
	st := &simState{
		V:         V,
		D:         D,
		portBase:  sh.portBase,
		inChans:   sh.inChans,
		outChans:  sh.outChans,
		outPort:   make([]int16, P*V),
		outVC:     make([]int16, P*V),
		ringHead:  make([]int16, P*V),
		ringN:     make([]int16, P*V),
		credits:   make([]int16, P*V),
		ovcOwner:  make([]int32, P*V),
		ring:      make([]flitRef, P*V*D),
		headMask:  make([]uint64, P),
		busyMask:  make([]uint64, P),
		saInRR:    make([]int16, P),
		saOutRR:   make([]int16, P),
		saCand:    make([]int16, sh.maxIn),
		saReq:     make([]uint64, sh.maxIn),
		bufFlits:  make([]int32, s.n),
		needRoute: make([]int32, s.n),
		injVC:     make([]int16, s.n),
		injSeq:    make([]int16, s.n),
		srcQ:      make([]queue[int32], s.n),
		occ:       make([]uint64, (s.n+63)/64),
	}
	for i := range st.outPort {
		st.outPort[i] = -1
		st.outVC[i] = -1
		st.credits[i] = int16(D)
		st.ovcOwner[i] = -1
	}
	for i := range st.injVC {
		st.injVC[i] = -1
	}
	s.soa = st
}

// ringPush appends a flit to VC lane vcIdx's ring.
func (st *simState) ringPush(vcIdx int, f flitRef) {
	n := int(st.ringN[vcIdx])
	if n == st.D {
		panic("sim: flit ring overflow (credit flow control broken)")
	}
	i := int(st.ringHead[vcIdx]) + n
	if i >= st.D {
		i -= st.D
	}
	st.ring[vcIdx*st.D+i] = f
	st.ringN[vcIdx] = int16(n + 1)
}

// ringFront returns the head flit of lane vcIdx (which must be
// non-empty).
func (st *simState) ringFront(vcIdx int) *flitRef {
	return &st.ring[vcIdx*st.D+int(st.ringHead[vcIdx])]
}

// ringPop removes and returns the head flit of lane vcIdx.
func (st *simState) ringPop(vcIdx int) flitRef {
	h := int(st.ringHead[vcIdx])
	f := st.ring[vcIdx*st.D+h]
	h++
	if h == st.D {
		h = 0
	}
	st.ringHead[vcIdx] = int16(h)
	st.ringN[vcIdx]--
	return f
}

// stepSoA advances the SoA engine by one cycle: the same five-phase
// pipeline as stepRef, with phases 2-5 visiting only routers whose
// occupancy bit is set. Skipping is safe because every phase's body
// is a no-op on a drained router: injection returns on an empty
// source queue, VC allocation returns on needRoute == 0 (and its
// round-robin pointer is virtual, so skipping mutates nothing), and
// switch allocation returns on bufFlits == 0 before touching its
// arbiter pointers. Scanning ascending ids preserves the reference
// engine's visit order, so shared-state side effects (packet-pool
// recycle order, latency log order, trace event order) are identical.
func (s *Simulator) stepSoA(inject bool) {
	t := s.now

	// Phase 1: deliver flits and credits that arrive this cycle.
	s.deliverSoA(t)

	// Phase 2: traffic generation and source injection.
	if inject {
		s.generate(t)
	}
	s.injectPhaseSoA(t)

	// Phase 3: virtual-channel allocation.
	s.vcAllocPhaseSoA(t)

	// Phase 4+5: switch allocation and traversal.
	s.switchPhaseSoA(t)

	s.now++
}

// injectPhaseSoA runs source injection over the occupied routers.
func (s *Simulator) injectPhaseSoA(t int64) {
	st := s.soa
	for w, word := range st.occ {
		base := int32(w << 6)
		for word != 0 {
			id := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			s.injectFlitsSoA(id, t)
		}
	}
}

// vcAllocPhaseSoA runs VC allocation over the occupied routers that
// have unrouted head flits.
func (s *Simulator) vcAllocPhaseSoA(t int64) {
	st := s.soa
	for w, word := range st.occ {
		base := int32(w << 6)
		for word != 0 {
			id := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			if st.needRoute[id] != 0 {
				s.vcAllocSoA(id, t)
			}
		}
	}
}

// switchPhaseSoA runs switch allocation and traversal over the
// occupied routers, clearing the occupancy bit of routers that
// drained this cycle.
func (s *Simulator) switchPhaseSoA(t int64) {
	st := s.soa
	for w := range st.occ {
		word := st.occ[w]
		base := int32(w << 6)
		for word != 0 {
			id := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			if st.bufFlits[id] != 0 {
				s.switchAllocTraverseSoA(id, t)
			}
			if st.bufFlits[id] == 0 && st.srcQ[id].len() == 0 {
				st.occ[w] &^= 1 << (uint32(id) & 63)
			}
		}
	}
}

// deliverSoA moves flits and credits whose link latency has elapsed
// into the downstream (respectively upstream) router's lanes, marking
// flit destinations occupied.
func (s *Simulator) deliverSoA(t int64) {
	st := s.soa
	V := st.V
	rd := int64(s.cfg.RouterDelay)
	for i := range s.chans {
		c := &s.chans[i]
		if c.flits.len() > 0 && c.flits.front().arrive <= t {
			to := c.to
			gp := int(st.portBase[to]) + int(c.inPort)
			vcBase := gp * V
			for c.flits.len() > 0 && c.flits.front().arrive <= t {
				f := c.flits.pop()
				vcIdx := vcBase + int(f.vc)
				st.ringPush(vcIdx, flitRef{pkt: f.pkt, seq: f.seq, ready: t + rd})
				st.bufFlits[to]++
				if f.seq == 0 {
					st.needRoute[to]++
					// Head onto an empty unrouted lane: the lane now has an
					// unrouted front flit.
					if st.ringN[vcIdx] == 1 && st.outPort[vcIdx] < 0 {
						st.headMask[gp] |= 1 << uint(f.vc)
					}
				} else if st.ringN[vcIdx] == 1 && st.outPort[vcIdx] >= 0 {
					// Body refills a drained routed lane.
					st.busyMask[gp] |= 1 << uint(f.vc)
				}
			}
			st.setOcc(to)
		}
		if c.credits.len() > 0 && c.credits.front().arrive <= t {
			crBase := (int(st.portBase[c.from]) + int(c.outPort)) * V
			for c.credits.len() > 0 && c.credits.front().arrive <= t {
				cr := c.credits.pop()
				st.credits[crBase+int(cr.vc)]++
			}
		}
	}
}

// injectFlitsSoA moves at most one flit per cycle from the source
// queue into the injection port, choosing a VC of the packet's first
// hop class for each new packet.
func (s *Simulator) injectFlitsSoA(id int32, t int64) {
	st := s.soa
	q := &st.srcQ[id]
	if q.len() == 0 {
		return
	}
	base := int(st.portBase[id])
	nIn := int(st.portBase[id+1]) - base
	injBase := (base + nIn - 1) * st.V // injection port is the last
	if st.injVC[id] < 0 {
		// Pick the emptiest VC of the packet's first-hop class.
		// Injection is serialized packet-by-packet, so packets queued
		// in the same VC never interleave flits.
		pk := &s.packets[*q.front()]
		class := int8(0)
		if len(pk.path.Classes) > 0 {
			class = pk.path.Classes[0]
		}
		lo, hi := s.classVCRange(class)
		best, bestFree := -1, 0
		for v := lo; v < hi; v++ {
			if free := st.D - int(st.ringN[injBase+v]); free > bestFree {
				best, bestFree = v, free
			}
		}
		if best < 0 {
			return
		}
		st.injVC[id] = int16(best)
		st.injSeq[id] = 0
	}
	vcIdx := injBase + int(st.injVC[id])
	if int(st.ringN[vcIdx]) >= st.D {
		return
	}
	pid := *q.front()
	seq := st.injSeq[id]
	st.ringPush(vcIdx, flitRef{pkt: pid, seq: seq, ready: t + int64(s.cfg.RouterDelay)})
	st.bufFlits[id]++
	gp := base + nIn - 1
	if seq == 0 {
		st.needRoute[id]++
		if st.ringN[vcIdx] == 1 && st.outPort[vcIdx] < 0 {
			st.headMask[gp] |= 1 << uint(st.injVC[id])
		}
	} else if st.ringN[vcIdx] == 1 && st.outPort[vcIdx] >= 0 {
		st.busyMask[gp] |= 1 << uint(st.injVC[id])
	}
	s.flitsInFlight++
	// A flit entering the network is forward progress: without this the
	// watchdog would mistake a long injection silence (bursty traces;
	// never Bernoulli traffic) followed by one injection for a deadlock.
	s.lastProgress = t
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvInject, Pkt: pid, Seq: seq, Node: id, Peer: s.packets[pid].dst, VC: st.injVC[id]})
	}
	st.injSeq[id] = seq + 1
	if int(seq+1) == int(s.packets[pid].plen) {
		q.pop()
		st.injVC[id] = -1
	}
}

// vcAllocSoA performs separable VC allocation over the router's flat
// VC lanes. Only lanes with a headMask bit set — front flit is an
// unrouted head — are inspected at all: the circular lane sweep
// becomes a bit scan per port. The round-robin start is virtual: the
// reference engine advances its pointer by exactly one every cycle
// whether or not any request exists, so the pointer equals
// t mod (numIn*V) at cycle t and needs no stored state.
func (s *Simulator) vcAllocSoA(id int32, t int64) {
	st := s.soa
	base := int(st.portBase[id])
	nIn := int(st.portBase[id+1]) - base
	V := st.V
	total := nIn * V
	ej := nIn - 1
	lane := base * V
	start := int(t % int64(total))
	p0, v0 := start/V, start%V
	hm := st.headMask
	// Circular sweep from lane (p0, v0): port p0's bits at or above v0
	// first, then each following port in full, then port p0's bits
	// below v0. Grants only clear bits of the port being visited, so
	// each lane is considered exactly once, in reference order.
	for i := 0; i <= nIn; i++ {
		p := p0 + i
		if p >= nIn {
			p -= nIn
		}
		gp := base + p
		m := hm[gp]
		if i == 0 {
			m &= ^uint64(0) << uint(v0)
		} else if i == nIn {
			m &= (1 << uint(v0)) - 1
		}
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			vcIdx := lane + p*V + v
			head := st.ringFront(vcIdx)
			if head.ready > t {
				continue
			}
			pk := &s.packets[head.pkt]
			if pk.dst == id {
				// Ejection needs no VC allocation.
				st.outPort[vcIdx] = int16(ej)
				st.outVC[vcIdx] = 0
				hm[gp] &^= 1 << uint(v)
				st.busyMask[gp] |= 1 << uint(v)
				st.needRoute[id]--
				continue
			}
			hi := int(pk.hop)
			class := pk.path.Classes[hi]
			op := int(pk.ports[hi])
			lo, hiVC := s.classVCRange(class)
			ownBase := (base + op) * V
			for ov := lo; ov < hiVC; ov++ {
				if st.ovcOwner[ownBase+ov] < 0 {
					st.ovcOwner[ownBase+ov] = int32(vcIdx - lane)
					st.outPort[vcIdx] = int16(op)
					st.outVC[vcIdx] = int16(ov)
					hm[gp] &^= 1 << uint(v)
					st.busyMask[gp] |= 1 << uint(v)
					st.needRoute[id]--
					break
				}
			}
		}
	}
}

// switchAllocTraverseSoA performs separable (input-first) switch
// allocation over the flat lanes and moves the winning flits. Input
// arbitration considers only lanes with a busyMask bit set (routed
// with flits buffered), scanning that port's bits circularly from its
// round-robin pointer. Instead of walking every (output, input) pair,
// input arbitration records each candidate in a per-output request
// bitmask, and output arbitration resolves each requested port by
// picking the first requester at or cyclically after its round-robin
// pointer with two bit scans — the same winner the reference
// engine's nested scan grants, because every input requests at most
// one output and grants touch no other input's candidate state.
func (s *Simulator) switchAllocTraverseSoA(id int32, t int64) {
	st := s.soa
	base := int(st.portBase[id])
	nIn := int(st.portBase[id+1]) - base
	V := st.V
	ej := nIn - 1
	lane := base * V

	// Input arbitration: one candidate VC per input port, recorded as
	// a request bit on its output port.
	cand := st.saCand[:nIn] // VC index per input port
	reqOps := uint64(0)
	for ip := 0; ip < nIn; ip++ {
		gp := base + ip
		m := st.busyMask[gp]
		if m == 0 {
			continue
		}
		rr := uint(st.saInRR[gp])
		vcBase := lane + ip*V
		mm := m >> rr
		off := int(rr)
	scan:
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				mm = m & ((1 << rr) - 1)
				off = 0
			}
			for mm != 0 {
				v := off + bits.TrailingZeros64(mm)
				mm &= mm - 1
				vcIdx := vcBase + v
				if st.ringFront(vcIdx).ready > t {
					continue
				}
				op := int(st.outPort[vcIdx])
				if op != ej && st.credits[(base+op)*V+int(st.outVC[vcIdx])] <= 0 {
					continue
				}
				cand[ip] = int16(v)
				st.saReq[op] |= 1 << uint(ip)
				reqOps |= 1 << uint(op)
				break scan
			}
		}
	}

	// Output arbitration: one winner per requested output port, in
	// ascending port order like the reference engine's output loop.
	for reqOps != 0 {
		op := bits.TrailingZeros64(reqOps)
		reqOps &= reqOps - 1
		m := st.saReq[op]
		st.saReq[op] = 0
		rr := int(st.saOutRR[base+op])
		var cip int
		if mh := m >> uint(rr); mh != 0 {
			cip = rr + bits.TrailingZeros64(mh)
		} else {
			cip = bits.TrailingZeros64(m)
		}
		v := int(cand[cip])
		s.traverseSoA(id, cip, v, op, t)
		st.saInRR[base+cip] = int16((v + 1) % V)
		st.saOutRR[base+op] = int16((cip + 1) % nIn)
	}
}

// traverseSoA moves one flit from input VC (ip, v) through output
// port op of router id.
func (s *Simulator) traverseSoA(id int32, ip, v, op int, t int64) {
	st := s.soa
	base := int(st.portBase[id])
	nIn := int(st.portBase[id+1]) - base
	ej := nIn - 1 // also the injection port's local index
	vcIdx := (base+ip)*st.V + v
	f := st.ringPop(vcIdx)
	st.bufFlits[id]--
	s.flitHops++
	pk := &s.packets[f.pkt]
	isTail := int(f.seq) == int(pk.plen)-1
	outVC := st.outVC[vcIdx]
	if isTail {
		// The route is released; if another packet's head is already
		// queued behind the tail it is now the (unrouted) front.
		st.busyMask[base+ip] &^= 1 << uint(v)
		if st.ringN[vcIdx] > 0 {
			st.headMask[base+ip] |= 1 << uint(v)
		}
	} else if st.ringN[vcIdx] == 0 {
		// Drained mid-packet: the route stays claimed but there is
		// nothing to arbitrate until the next body flit arrives.
		st.busyMask[base+ip] &^= 1 << uint(v)
	}

	if op == ej {
		s.flitsInFlight--
		s.lastProgress = t
		if f.seq != pk.nextSeq {
			s.orderViolations++
		}
		pk.nextSeq = f.seq + 1
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvEject, Pkt: f.pkt, Seq: f.seq, Node: id, Peer: -1, VC: int16(v)})
		}
		if t >= s.measureStart && t < s.measureEnd {
			s.winFlits++
		}
		if s.ctl != nil {
			s.ctl.winEjFlits++
			if isTail {
				s.ctl.winLatSum += t + 1 - pk.inject
				s.ctl.winPkts++
			}
		}
		if isTail {
			if pk.measured {
				s.measEjected++
				lat := t + 1 - pk.inject
				s.latencySum += lat
				s.latencies = append(s.latencies, lat)
				if lat > s.latencyMax {
					s.latencyMax = lat
				}
			}
			// The tail has left the network: release the packet slot
			// for reuse (unless tracing pinned the IDs).
			if !s.noPool {
				s.freePkts = append(s.freePkts, f.pkt)
			}
		}
	} else {
		ci := st.outChans[id][op]
		c := &s.chans[ci]
		if f.seq == 0 {
			// The head flit advances to the next router on its path.
			pk.hop++
		}
		c.flits.push(timedFlit{pkt: f.pkt, seq: f.seq, vc: outVC, arrive: t + c.latency})
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Trace(Event{Cycle: t, Kind: EvTraverse, Pkt: f.pkt, Seq: f.seq, Node: id, Peer: c.to, VC: outVC})
		}
		st.credits[(base+op)*st.V+int(outVC)]--
		if t >= s.measureStart && t < s.measureEnd {
			s.linkFlits[ci]++
		}
		s.lastProgress = t
	}

	// Return a credit upstream for the freed buffer slot.
	if ip != ej {
		uc := &s.chans[st.inChans[id][ip]]
		uc.credits.push(timedCredit{vc: int16(v), arrive: t + uc.latency})
	}

	if isTail {
		if op != ej {
			st.ovcOwner[(base+op)*st.V+int(outVC)] = -1
		}
		st.outPort[vcIdx] = -1
		st.outVC[vcIdx] = -1
	}
}
