package sim

import (
	"strings"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

func meshConfig(t *testing.T, rate float64) Config {
	t.Helper()
	m, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topo: m, Routing: r, NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4, InjectionRate: rate,
		Seed: 11, Warmup: 500, Measure: 3000, Drain: 12000,
	}
}

func TestInOrderDelivery(t *testing.T) {
	for _, rate := range []float64{0.1, 0.6} {
		st, err := RunConfig(meshConfig(t, rate))
		if err != nil {
			t.Fatal(err)
		}
		if st.OrderViolations != 0 {
			t.Errorf("rate %v: %d out-of-order flits", rate, st.OrderViolations)
		}
	}
}

func TestPercentilesOrdered(t *testing.T) {
	st, err := RunConfig(meshConfig(t, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if st.P50PacketLatency <= 0 {
		t.Fatal("p50 not measured")
	}
	if st.P50PacketLatency > st.AvgPacketLatency*1.5 {
		t.Errorf("p50 %v far above mean %v", st.P50PacketLatency, st.AvgPacketLatency)
	}
	if st.P99PacketLatency < st.P50PacketLatency {
		t.Errorf("p99 %v below p50 %v", st.P99PacketLatency, st.P50PacketLatency)
	}
	if float64(st.MaxPacketLatency) < st.P99PacketLatency {
		t.Errorf("max %v below p99 %v", st.MaxPacketLatency, st.P99PacketLatency)
	}
}

func TestMaxLinkUtilizationBounds(t *testing.T) {
	st, err := RunConfig(meshConfig(t, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxLinkUtilization <= 0 || st.MaxLinkUtilization > 1 {
		t.Errorf("max link utilization %v outside (0,1]", st.MaxLinkUtilization)
	}
	// Higher load -> higher bottleneck utilization.
	lo, err := RunConfig(meshConfig(t, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if lo.MaxLinkUtilization >= st.MaxLinkUtilization {
		t.Errorf("utilization at 0.05 (%v) not below 0.3 (%v)",
			lo.MaxLinkUtilization, st.MaxLinkUtilization)
	}
}

func TestLoadLatencyCurveMonotone(t *testing.T) {
	curve, err := LoadLatencyCurve(meshConfig(t, 0), []float64{0.05, 0.15, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].AvgPacketLatency < curve[i-1].AvgPacketLatency {
			t.Errorf("latency decreased from %.1f to %.1f at higher load",
				curve[i-1].AvgPacketLatency, curve[i].AvgPacketLatency)
		}
		if curve[i].AcceptedRate < curve[i-1].AcceptedRate {
			t.Errorf("accepted rate decreased below saturation")
		}
	}
}

func TestSaturationBetweenBounds(t *testing.T) {
	cfg := meshConfig(t, 0)
	cfg.Measure = 2000
	res, err := SaturationThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 4x4 mesh under uniform traffic saturates somewhere between 20%
	// and 90% of capacity with 4 VCs.
	if res.SaturationRate < 0.2 || res.SaturationRate > 0.9 {
		t.Errorf("mesh saturation %v outside sanity band", res.SaturationRate)
	}
	if res.ZeroLoadLatency <= 0 {
		t.Error("zero-load latency missing")
	}
	if len(res.Samples) == 0 {
		t.Error("no probe samples recorded")
	}
	// The curve samples should bracket the saturation point.
	var sawBelow, sawAbove bool
	for _, s := range res.Samples {
		if s.OfferedRate <= res.SaturationRate {
			sawBelow = true
		} else {
			sawAbove = true
		}
	}
	if !sawBelow || !sawAbove {
		t.Error("binary search did not bracket the saturation point")
	}
}

func TestTracerCounts(t *testing.T) {
	cfg := meshConfig(t, 0.1)
	tr := &CountingTracer{}
	cfg.Tracer = tr
	st, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Injects == 0 || tr.Ejects == 0 {
		t.Fatal("tracer saw no traffic")
	}
	// Everything injected is eventually ejected after the drain.
	if tr.Injects != tr.Ejects {
		t.Errorf("injects %d != ejects %d", tr.Injects, tr.Ejects)
	}
	// Traversals = sum over flits of hops; averages to avgHops per flit.
	perFlit := float64(tr.Traversals) / float64(tr.Ejects)
	if perFlit < st.AvgHops*0.8 || perFlit > st.AvgHops*1.2 {
		t.Errorf("traversals per flit %.2f vs avg hops %.2f", perFlit, st.AvgHops)
	}
}

func TestPacketTracerSequence(t *testing.T) {
	cfg := meshConfig(t, 0.05)
	tr := &PacketTracer{Watch: map[int32]bool{0: true, 1: true}}
	cfg.Tracer = tr
	if _, err := RunConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events for watched packets")
	}
	// Per packet: events are cycle-ordered and start with an inject.
	byPkt := map[int32][]Event{}
	for _, ev := range tr.Events {
		if !tr.Watch[ev.Pkt] {
			t.Fatalf("unwatched packet %d traced", ev.Pkt)
		}
		byPkt[ev.Pkt] = append(byPkt[ev.Pkt], ev)
	}
	for pkt, evs := range byPkt {
		if evs[0].Kind != EvInject {
			t.Errorf("packet %d first event %v, want inject", pkt, evs[0].Kind)
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Cycle < evs[i-1].Cycle {
				t.Errorf("packet %d events out of order", pkt)
			}
		}
		last := evs[len(evs)-1]
		if last.Kind != EvEject {
			t.Errorf("packet %d last event %v, want eject", pkt, last.Kind)
		}
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var buf strings.Builder
	w := &WriterTracer{W: &buf}
	w.Trace(Event{Cycle: 142, Kind: EvTraverse, Pkt: 17, Seq: 2, Node: 5, Peer: 6, VC: 3})
	w.Trace(Event{Cycle: 150, Kind: EvEject, Pkt: 17, Seq: 2, Node: 6, Peer: -1, VC: 3})
	out := buf.String()
	if !strings.Contains(out, "@142 traverse pkt=17.2 5->6 vc=3") {
		t.Errorf("traverse line: %q", out)
	}
	if !strings.Contains(out, "@150 eject pkt=17.2 node=6 vc=3") {
		t.Errorf("eject line: %q", out)
	}
}
