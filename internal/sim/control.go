package sim

// Adaptive simulation control: windowed online monitors that end a
// run as soon as its outcome is decided, instead of always burning
// the full Warmup+Measure+Drain budget.
//
// Two verdicts can cut a run short:
//
//   - Saturated: the offered load exceeds what the network sustains.
//     The monitors watch, per window, the accepted-rate shortfall
//     against the offered load, the growth of the undelivered backlog
//     (source queues plus flits in flight), and the blowup of the
//     delivered-packet latency against a reference. Sustained
//     evidence over several consecutive windows is a proof of
//     saturation — queueing theory says a stable network's backlog is
//     stationary — so the run stops immediately. Saturated probes are
//     the majority of a saturation search's work and finish in a
//     small fraction of their fixed budget.
//
//   - Stable: the latency estimate has converged. The controller
//     keeps batch means of packet latency over measurement windows
//     and stops the measurement phase once the confidence interval's
//     relative half-width drops below the configured target (the
//     standard batch-means sequential stopping rule from the
//     simulation literature; BookSim applies the same idea to its
//     warmup/measurement methodology). The run then drains normally,
//     so delivered statistics stay unbiased.
//
// The fixed-budget path is untouched: a nil Config.Control runs the
// exact cycle schedule it always did, bit for bit.

import "math"

// Verdict classifies how a simulation run ended.
type Verdict int8

// Verdicts. VerdictNone is the fixed-budget outcome: the run executed
// its configured schedule (adaptive runs also return it when no
// monitor fired before the budget ran out).
const (
	// VerdictNone: the run completed its configured schedule.
	VerdictNone Verdict = iota
	// VerdictSaturated: the saturation monitors proved the offered
	// load unsustainable and the run stopped early.
	VerdictSaturated
	// VerdictStable: the latency confidence interval tightened below
	// the target and the measurement phase was truncated early.
	VerdictStable
	// VerdictInterrupted: the run was abandoned through
	// Control.Interrupt (speculative probes made irrelevant by a
	// sibling's verdict); its statistics are partial and must be
	// discarded.
	VerdictInterrupted
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSaturated:
		return "saturated"
	case VerdictStable:
		return "stable"
	case VerdictInterrupted:
		return "interrupted"
	default:
		return "none"
	}
}

// Control enables adaptive simulation control. A nil Control on a
// Config preserves the fixed-budget schedule exactly; a non-nil one
// lets the run return early with a Verdict while keeping the
// configured Warmup/Measure/Drain as a hard cap. Zero fields take the
// defaults documented per field.
//
// Control never changes what a converged run measures — only how many
// cycles it takes to get there — and it is deliberately not part of
// any job identity: campaign cache keys hash the quality tier that
// selects it, not the controller's tuning.
type Control struct {
	// Window is the monitor window length in cycles (default 125).
	// All monitors update once per window, so adaptive control adds
	// no per-cycle work to the simulator hot path.
	Window int

	// WarmTolerance enables adaptive warmup termination (the
	// BookSim-style steady-state detection): once the per-window
	// latency and accepted-rate batch means of consecutive warmup
	// windows agree within this relative tolerance for WarmWindows
	// windows in a row, the network is declared warm and measurement
	// starts immediately instead of waiting out the full configured
	// Warmup (which stays the cap). 0 disables detection.
	WarmTolerance float64

	// WarmWindows is how many consecutive agreeing warmup windows
	// declare steady state (default 2, i.e. three mutually consistent
	// windows).
	WarmWindows int

	// SatWindows is how many consecutive saturated windows prove
	// saturation (default 4). Larger values are more conservative.
	SatWindows int

	// AcceptedFraction is the windowed accepted-rate floor: a window
	// is saturated only if the flits delivered per node per cycle
	// fall below AcceptedFraction times the offered rate while the
	// backlog grows (default 0.8). It is chosen stricter than the
	// fixed-budget saturation criterion (0.85 on the whole
	// measurement) so an early verdict implies the fixed one.
	AcceptedFraction float64

	// LatencyRef is the reference (zero-load) packet latency for the
	// latency-blowup monitor; 0 disables that monitor. Saturation
	// searches fill it from their zero-load run.
	LatencyRef float64

	// BlowupFactor is the windowed latency multiple of LatencyRef
	// that marks a saturated window (default 4, stricter than the
	// fixed criterion's 3x on the whole-run average).
	BlowupFactor float64

	// RelHalfWidth is the batch-means stopping target: measurement
	// ends early once the ~95% confidence interval of the mean packet
	// latency has a relative half-width below this (e.g. 0.02 for
	// ±2%). 0 disables steady-state stopping.
	RelHalfWidth float64

	// DecideLatency, when positive, enables the verdict-decided stop:
	// measurement also ends early once the latency confidence
	// interval's upper bound sits safely below this absolute threshold
	// while the accepted load tracks the offered load — the probe's
	// saturation verdict is then already decided, so measuring longer
	// only polishes a number nobody reads. Saturation searches set it
	// to their latency-blowup threshold.
	DecideLatency float64

	// MinBatches is the minimum number of measurement windows before
	// the stopping rule may fire (default 5; values below the viable
	// minimum of 2 take the default).
	MinBatches int

	// Interrupt, when non-nil, abandons the run (VerdictInterrupted)
	// as soon as the channel is closed, checked once per window. The
	// speculative saturation search closes it on probes whose outcome
	// a completed sibling has made irrelevant.
	Interrupt <-chan struct{}
}

// Control defaults.
const (
	defaultCtlWindow       = 125
	defaultCtlSatWindows   = 4
	defaultCtlAcceptedFrac = 0.8
	defaultCtlBlowupFactor = 4.0
	defaultCtlMinBatches   = 5
	defaultCtlWarmWindows  = 2
)

// withDefaults returns a copy with unset fields defaulted.
func (c Control) withDefaults() Control {
	if c.Window <= 0 {
		c.Window = defaultCtlWindow
	}
	if c.SatWindows <= 0 {
		c.SatWindows = defaultCtlSatWindows
	}
	if c.AcceptedFraction <= 0 {
		c.AcceptedFraction = defaultCtlAcceptedFrac
	}
	if c.BlowupFactor <= 0 {
		c.BlowupFactor = defaultCtlBlowupFactor
	}
	if c.MinBatches < 2 {
		c.MinBatches = defaultCtlMinBatches
	}
	if c.WarmWindows <= 0 {
		c.WarmWindows = defaultCtlWarmWindows
	}
	return c
}

// ProbeScheduler runs speculative saturation probes on borrowed
// worker slots. TryGo runs fn on another goroutine when a slot is
// free and returns true; false means no capacity is available and the
// caller proceeds sequentially. Implementations must release the slot
// when fn returns. The experiment-campaign runner (package exp)
// implements this over its shared evaluation-slot pool; the bridge
// lives in package noc so sim stays free of campaign dependencies.
type ProbeScheduler interface {
	// TryGo runs fn concurrently if capacity is free, returning
	// whether it did.
	TryGo(fn func()) bool
}

// ctlState is the per-run monitor state (allocated once per Run when
// Config.Control is set; the fixed-budget path never touches it).
type ctlState struct {
	cfg Control // defaults applied

	nextCheck int64 // cycle of the next window boundary

	// Per-window counters, reset at each boundary.
	winEjFlits int64 // flits ejected this window
	winLatSum  int64 // tail-latency sum over packets ejected this window
	winPkts    int64 // packets ejected this window

	prevBacklog int64 // source-queue flits + flits in flight, last window
	satStreak   int   // consecutive saturated windows

	// Warmup-termination state: last warmup window's batch means and
	// the agreement streak.
	warmLat    float64
	warmAcc    float64
	warmStreak int

	// done is set once a stable verdict truncated the measurement:
	// the monitors are finished, but interrupt polling must survive
	// through the drain so a canceled speculative probe still lets go
	// of its borrowed worker slot promptly.
	done bool

	// Batch means of packet latency and accepted rate over measurement
	// windows, for the steady-state and verdict-decided stopping
	// rules. Preallocated to the window count the measurement budget
	// admits.
	batches    []float64
	accBatches []float64

	verdict Verdict
}

// newCtlState builds the monitor state for one run.
func newCtlState(c Control, measure int) *ctlState {
	c = c.withDefaults()
	maxBatches := measure/c.Window + 1
	return &ctlState{
		cfg:        c,
		nextCheck:  int64(c.Window),
		batches:    make([]float64, 0, maxBatches),
		accBatches: make([]float64, 0, maxBatches),
	}
}

// backlog returns the undelivered work in the network: flits in
// flight plus the flits of every packet still waiting in a source
// queue. Growth of this figure across windows while the accepted rate
// trails the offered rate is the saturation signature.
func (s *Simulator) backlog() int64 {
	queued := int64(0)
	if st := s.soa; st != nil {
		for i := range st.srcQ {
			queued += int64(st.srcQ[i].len())
		}
	} else {
		for _, r := range s.routers {
			queued += int64(r.srcQ.len())
		}
	}
	return s.flitsInFlight + queued*int64(s.cfg.PacketLen)
}

// controlCheck runs the per-window monitors at cycle t (a window
// boundary). It returns the verdict that should end or truncate the
// run, or VerdictNone to continue. Called only when Config.Control is
// set.
func (s *Simulator) controlCheck(t int64) Verdict {
	st := s.ctl
	c := &st.cfg
	st.nextCheck = t + int64(c.Window)

	if c.Interrupt != nil {
		select {
		case <-c.Interrupt:
			return VerdictInterrupted
		default:
		}
	}
	if st.done {
		return VerdictNone // monitors retired; only interrupt polling remains
	}

	// Adaptive warmup termination: consecutive warmup windows whose
	// latency and accepted-rate batch means agree within tolerance
	// mean the transient has died out; start measuring now instead of
	// waiting out the configured Warmup cap.
	if c.WarmTolerance > 0 && t < s.measureStart && st.winPkts > 0 {
		lat := float64(st.winLatSum) / float64(st.winPkts)
		acc := float64(st.winEjFlits) /
			(float64(c.Window) * float64(s.cfg.Topo.NumTiles()))
		if st.warmLat > 0 &&
			relWithin(lat, st.warmLat, c.WarmTolerance) &&
			relWithin(acc, st.warmAcc, c.WarmTolerance) {
			st.warmStreak++
		} else {
			st.warmStreak = 0
		}
		st.warmLat, st.warmAcc = lat, acc
		if st.warmStreak >= c.WarmWindows {
			s.measureStart = t
			s.measureEnd = t + int64(s.cfg.Measure)
		}
	}

	// Saturation monitors: only meaningful while injecting.
	injecting := t < s.measureEnd
	backlog := s.backlog()
	backlogGrew := backlog > st.prevBacklog
	if injecting {
		accepted := float64(st.winEjFlits) /
			(float64(c.Window) * float64(s.cfg.Topo.NumTiles()))
		shortfall := accepted < c.AcceptedFraction*s.cfg.InjectionRate
		blowup := false
		if c.LatencyRef > 0 && st.winPkts > 0 {
			winLat := float64(st.winLatSum) / float64(st.winPkts)
			blowup = winLat > c.BlowupFactor*c.LatencyRef
		}
		if backlogGrew && (shortfall || blowup) {
			st.satStreak++
		} else {
			st.satStreak = 0
		}
		if st.satStreak >= c.SatWindows {
			return VerdictSaturated
		}
	}
	st.prevBacklog = backlog

	// Steady-state stopping: batch means over measurement windows.
	// A window contributes a batch only when it lies entirely inside
	// the measurement phase and delivered at least one packet.
	if (c.RelHalfWidth > 0 || c.DecideLatency > 0) && injecting &&
		t-int64(c.Window) >= s.measureStart && st.winPkts > 0 {
		st.batches = append(st.batches, float64(st.winLatSum)/float64(st.winPkts))
		st.accBatches = append(st.accBatches,
			float64(st.winEjFlits)/(float64(c.Window)*float64(s.cfg.Topo.NumTiles())))
		// Both stopping rules demand a stationary backlog in the
		// current window: a borderline run just past saturation shows
		// slowly diverging latency that can look converged — or
		// decidedly below threshold — early on, while its backlog
		// growth gives the divergence away.
		if n := len(st.batches); n >= c.MinBatches && !backlogGrew {
			mean, sd := meanStd(st.batches)
			// ~95% half-width with the normal approximation; batch
			// counts here are large enough that the Student-t
			// correction is noise next to the monitor thresholds.
			half := 2.0 * sd / math.Sqrt(float64(n))
			if c.RelHalfWidth > 0 && mean > 0 && half/mean < c.RelHalfWidth {
				return VerdictStable
			}
			// Verdict-decided stop: the latency CI sits safely below
			// the saturation threshold and the accepted load tracks
			// the offered load, so no amount of further measurement
			// can flip the verdict.
			if c.DecideLatency > 0 && mean+half < 0.9*c.DecideLatency &&
				st.batches[n-1] < mean+2*half {
				accMean, _ := meanStd(st.accBatches)
				if accMean >= 0.95*s.cfg.InjectionRate {
					return VerdictStable
				}
			}
		}
	}

	st.winEjFlits = 0
	st.winLatSum = 0
	st.winPkts = 0
	return VerdictNone
}

// relWithin reports whether a is within tol (relative) of b.
func relWithin(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}

// meanStd returns the sample mean and standard deviation.
func meanStd(xs []float64) (mean, sd float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}
