package sim

// This file implements the two performance estimates the toolchain
// reports (Figure 3): zero-load latency and saturation throughput.
//
// The saturation search runs in one of two modes. With a nil
// Config.Control it is the classic fixed-budget binary search —
// every probe burns its full Warmup+Measure(+clamped Drain) schedule
// and the probes run strictly one after another — kept bit-identical
// across releases because the pinned evaluation artifacts depend on
// it. With Config.Control set, the adaptive mode applies early-verdict
// monitors to every probe (saturated probes stop in a small fraction
// of their budget, stable probes stop once their latency confidence
// interval converges) and, when Config.Sched provides spare worker
// slots, speculatively issues the next bisection probes for both
// possible outcomes of the one in flight, canceling the probe the
// verdict makes irrelevant. Speculation is wall-clock-only: the
// probes whose verdicts the search consumes are exactly the
// sequential bisection sequence, so the result — including its
// SimCycles accounting — is deterministic whether or not any
// speculation happened.

import (
	"fmt"

	"sparsehamming/internal/obs"
)

// ZeroLoadLatency measures the average packet latency at a very low
// injection rate (0.5% of capacity), where queueing is negligible and
// the latency reflects hop counts, router pipelines, link pipelining,
// and serialization only.
func ZeroLoadLatency(cfg Config) (float64, error) {
	st, err := zeroLoad(nil, cfg)
	if err != nil {
		return 0, err
	}
	return st.AvgPacketLatency, nil
}

// runShaped builds and runs one configuration, instantiating from the
// shared shape when one is supplied (nil falls back to a full build).
func runShaped(sh *Shape, cfg Config) (Stats, error) {
	if sh == nil {
		return RunConfig(cfg)
	}
	s, err := sh.Instantiate(cfg)
	if err != nil {
		return Stats{}, err
	}
	return s.Run(), nil
}

// zeroLoadMeasureFloor is the minimum measurement window of the
// zero-load reference run: at 0.5% load, shorter windows see too few
// packets for a stable latency average.
const zeroLoadMeasureFloor = 20000

// zeroLoad runs the near-zero-load reference configuration and
// returns its full statistics. A Control carries over (with the
// saturation monitors inert at this load, only the steady-state
// stopping rule applies).
func zeroLoad(sh *Shape, cfg Config) (Stats, error) {
	cfg.Defaults()
	cfg.InjectionRate = 0.005
	cfg.Warmup = 1000
	if cfg.Measure < zeroLoadMeasureFloor {
		cfg.Measure = zeroLoadMeasureFloor
	}
	return runShaped(sh, cfg)
}

// ZeroLoadScheduleKey returns the effective measurement window of the
// zero-load reference run for a configured Measure value. Two
// saturation searches over the same shape whose configs agree on
// traffic pattern, seed, and this key execute bit-identical zero-load
// reference runs, so they may share one ZeroLoadAnchor.
func ZeroLoadScheduleKey(measure int) int {
	if measure < zeroLoadMeasureFloor {
		return zeroLoadMeasureFloor
	}
	return measure
}

// ZeroLoadAnchor memoizes the zero-load reference run that anchors a
// saturation search's latency-blowup threshold, so sibling searches
// with identical zero-load schedules (see ZeroLoadScheduleKey) pay
// for it once. The toolchain's grouped predict evaluator shares one
// anchor across the quality tiers of a topology. The zero value is an
// empty anchor; the first search fills it, later searches reuse the
// memoized Stats verbatim — results stay bit-identical because every
// consumer would have computed exactly this run.
type ZeroLoadAnchor struct {
	valid bool
	stats Stats
}

// anchoredZeroLoad returns the memoized zero-load reference run, or
// executes and memoizes it. A nil anchor always executes.
func anchoredZeroLoad(sh *Shape, cfg Config, a *ZeroLoadAnchor) (Stats, error) {
	if a != nil && a.valid {
		counters.anchorReuses.Add(1)
		return a.stats, nil
	}
	st, err := zeroLoad(sh, cfg)
	if err == nil && a != nil {
		a.stats, a.valid = st, true
	}
	return st, err
}

// SaturationResult reports the outcome of a saturation search.
type SaturationResult struct {
	// SaturationRate is the highest offered load (flits/node/cycle, in
	// [0,1]) the network sustains: delivery stays complete and average
	// latency stays below the latency threshold. When LowerBound is
	// set it is instead the search's Resolution — an upper bound on a
	// true rate the bisection could not resolve.
	SaturationRate float64
	// ZeroLoadLatency is the reference latency used for the threshold.
	ZeroLoadLatency float64
	// Samples holds the load/latency curve probed by the search.
	Samples []Stats
	// SimCycles and SimFlitHops total the simulated router-cycles and
	// flit movements over the zero-load reference run and every probe.
	// They are the work figures behind the search: perf harnesses
	// divide them by wall-clock time to report simulation speed.
	SimCycles   int64
	SimFlitHops int64

	// Probes counts the saturation probes whose verdicts the search
	// used (the zero-load reference run is not a probe). Speculative
	// probes canceled or discarded before their verdict was needed are
	// excluded, which keeps the count — like every other field —
	// deterministic in the configuration.
	Probes int

	// CyclesSaved conservatively estimates the simulated cycles the
	// adaptive controller avoided: for each probe, the gap between its
	// fixed injection schedule (warmup plus measurement; avoided drain
	// cycles are not counted) and the cycles it actually ran. Zero for
	// fixed-budget searches.
	CyclesSaved int64

	// Resolution is the finest offered-load step the bisection could
	// resolve (the final search-interval width); 0 when the network
	// sustained full load and no bisection ran.
	Resolution float64

	// LowerBound reports that every probe down to the smallest
	// bisection midpoint saturated: the true saturation rate lies
	// below Resolution, and SaturationRate carries Resolution as an
	// explicit upper bound instead of a hard zero.
	LowerBound bool
}

// latencyBlowupFactor defines saturation: the offered load at which
// average latency exceeds this multiple of the zero-load latency
// (standard practice for load-latency curves; BookSim evaluations
// typically use 2-3x).
const latencyBlowupFactor = 3.0

// bisectionSteps is the number of interval halvings after the
// full-load probe, fixing the search resolution at 2^-bisectionSteps
// of capacity.
const bisectionSteps = 7

// clampDrain caps a run's drain budget at factor*Measure: runs past
// saturation never finish draining, so there is no point paying the
// full default drain. The saturation search's probes use 4x and
// load-sweep points their historical 3x — both factors are pinned
// because changing either would alter fixed-tier results already
// cached under existing job keys.
func clampDrain(c *Config, factor int) {
	if c.Drain > factor*c.Measure {
		c.Drain = factor * c.Measure
	}
}

// Drain clamp factors (see clampDrain). CurveDrainFactor is exported
// so batching callers that assemble load-sweep replicas themselves
// (the noc layer's grouped evaluator) reproduce LoadLatencyCurve's
// pinned schedule exactly.
const (
	probeDrainFactor = 4
	curveDrainFactor = 3
	// CurveDrainFactor is the load-sweep drain clamp: a sweep point's
	// drain budget is capped at this multiple of its measurement
	// window.
	CurveDrainFactor = curveDrainFactor
)

// satVerdict applies the saturation criterion to a finished probe: an
// early saturation verdict from the adaptive monitors, or the classic
// whole-run thresholds for runs that completed their budget.
func satVerdict(st Stats, zl, rate float64) bool {
	return st.Verdict == VerdictSaturated ||
		st.Deadlocked ||
		st.DeliveredFraction() < 0.95 ||
		st.AvgPacketLatency > latencyBlowupFactor*zl ||
		st.AcceptedRate < 0.85*rate
}

// SaturationThroughput binary-searches the offered load for the
// saturation point. The passed config's InjectionRate is ignored.
// With Config.Control set the search is adaptive (early verdicts,
// steady-state stopping, speculative parallel bisection over
// Config.Sched); see the file comment.
func SaturationThroughput(cfg Config) (SaturationResult, error) {
	cfg.Defaults()
	// One shared Shape serves the zero-load reference and every probe:
	// a search used to pay up to nine full topology builds, now one.
	sh, err := NewShape(cfg)
	if err != nil {
		return SaturationResult{}, err
	}
	return SaturationThroughputShaped(sh, cfg)
}

// SaturationThroughputShaped is SaturationThroughput against a
// pre-built Shape, letting callers that search many configurations of
// the same topology (the grouped predict evaluator) share one build
// across all of them. The shape must have been built for the config's
// topology, routing, and link latencies; results are bit-identical to
// SaturationThroughput.
func SaturationThroughputShaped(sh *Shape, cfg Config) (SaturationResult, error) {
	return SaturationThroughputAnchored(sh, cfg, nil)
}

// SaturationThroughputAnchored is SaturationThroughputShaped with an
// optional shared zero-load anchor: when non-nil, the search takes
// its zero-load reference run from the anchor (filling it on first
// use) instead of always simulating one. Callers must only share an
// anchor between searches whose zero-load schedules coincide —
// same shape, traffic pattern, seed, and ZeroLoadScheduleKey — in
// which case the result, including its SimCycles accounting, is
// bit-identical to the unanchored search. A nil anchor is exactly
// SaturationThroughputShaped.
func SaturationThroughputAnchored(sh *Shape, cfg Config, anchor *ZeroLoadAnchor) (SaturationResult, error) {
	cfg.Defaults()
	if _, ok := cfg.Pattern.(*Replay); ok {
		// The search probes by varying the Bernoulli injection rate,
		// which a recorded workload has no analogue of; for replays the
		// rate is a time-dilation scale swept via LoadLatencyCurve.
		return SaturationResult{}, fmt.Errorf(
			"sim: saturation search is undefined for trace replay pattern %q (sweep it with LoadLatencyCurve / mode \"load\")",
			cfg.Pattern.Name())
	}
	if cfg.Control != nil {
		return adaptiveSaturation(sh, cfg, anchor)
	}
	search := cfg.Span
	zc := cfg
	zc.Span = search.Child("zeroload")
	zlStats, err := anchoredZeroLoad(sh, zc, anchor)
	zc.Span.End()
	if err != nil {
		return SaturationResult{}, err
	}
	zl := zlStats.AvgPacketLatency
	res := SaturationResult{ZeroLoadLatency: zl}
	res.SimCycles = zlStats.Cycles
	res.SimFlitHops = zlStats.FlitHops

	saturated := func(rate float64) (bool, Stats, error) {
		c := cfg
		c.InjectionRate = rate
		c.Span = search.Child("probe")
		c.Span.SetAttr("rate", rate)
		// Shorter drain than the default: saturated runs never drain.
		clampDrain(&c, probeDrainFactor)
		st, err := runShaped(sh, c)
		res.SimCycles += st.Cycles
		res.SimFlitHops += st.FlitHops
		res.Probes++
		if err != nil {
			c.Span.End()
			return false, st, err
		}
		sat := satVerdict(st, zl, rate)
		c.Span.SetAttr("saturated", sat)
		c.Span.End()
		return sat, st, nil
	}

	lo, hi := 0.0, 1.0
	// Establish whether full load already saturates (it almost always
	// does except for near-ideal networks).
	if sat, st, err := saturated(1.0); err != nil {
		return res, err
	} else if !sat {
		res.Samples = append(res.Samples, st)
		res.SaturationRate = 1.0
		return res, nil
	} else {
		res.Samples = append(res.Samples, st)
	}
	for i := 0; i < bisectionSteps; i++ {
		mid := (lo + hi) / 2
		sat, st, err := saturated(mid)
		if err != nil {
			return res, err
		}
		res.Samples = append(res.Samples, st)
		if sat {
			hi = mid
		} else {
			lo = mid
		}
	}
	finishSearch(&res, lo, hi)
	return res, nil
}

// finishSearch fills the search outcome from the final bisection
// interval, turning the all-probes-saturated case into an explicit
// lower-bound report instead of a hard zero.
func finishSearch(res *SaturationResult, lo, hi float64) {
	res.Resolution = hi - lo
	if lo == 0 {
		// Even the smallest midpoint saturated: the true rate is
		// somewhere below the resolution.
		res.LowerBound = true
		res.SaturationRate = res.Resolution
		return
	}
	res.SaturationRate = lo
}

// LoadLatencyCurve sweeps the offered load over the given rates and
// returns one Stats per point — the classic load-latency curve NoC
// papers plot around their saturation discussions. Saturated points
// (incomplete delivery) are included; callers can filter on
// DeliveredFraction. Points share the saturation search's drain
// clamp mechanism (at the curve's historical factor), so sweep
// points above saturation do not pay the full drain budget.
//
// The whole ladder runs as one Batch: the topology is built once and
// the points step as interleaved replicas, with results bit-identical
// to the historical point-at-a-time sweep.
func LoadLatencyCurve(cfg Config, rates []float64) ([]Stats, error) {
	cfg.Defaults()
	if len(rates) == 0 {
		return nil, nil
	}
	reps := make([]Replica, len(rates))
	spans := make([]*obs.Span, len(rates))
	for i, r := range rates {
		c := cfg
		c.InjectionRate = r
		clampDrain(&c, curveDrainFactor)
		spans[i] = cfg.Span.Child("point")
		spans[i].SetAttr("rate", r)
		reps[i] = Replica{InjectionRate: r, Drain: c.Drain, Span: spans[i]}
	}
	b, err := NewBatch(cfg, reps)
	if err != nil {
		return nil, err
	}
	out := b.Run()
	for _, sp := range spans {
		sp.End()
	}
	return out, nil
}
