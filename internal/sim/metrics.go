package sim

// This file implements the two performance estimates the toolchain
// reports (Figure 3): zero-load latency and saturation throughput.

// ZeroLoadLatency measures the average packet latency at a very low
// injection rate (0.5% of capacity), where queueing is negligible and
// the latency reflects hop counts, router pipelines, link pipelining,
// and serialization only.
func ZeroLoadLatency(cfg Config) (float64, error) {
	st, err := zeroLoad(cfg)
	if err != nil {
		return 0, err
	}
	return st.AvgPacketLatency, nil
}

// zeroLoad runs the near-zero-load reference configuration and
// returns its full statistics.
func zeroLoad(cfg Config) (Stats, error) {
	cfg.Defaults()
	cfg.InjectionRate = 0.005
	cfg.Warmup = 1000
	if cfg.Measure < 20000 {
		cfg.Measure = 20000
	}
	return RunConfig(cfg)
}

// SaturationResult reports the outcome of a saturation search.
type SaturationResult struct {
	// SaturationRate is the highest offered load (flits/node/cycle, in
	// [0,1]) the network sustains: delivery stays complete and average
	// latency stays below the latency threshold.
	SaturationRate float64
	// ZeroLoadLatency is the reference latency used for the threshold.
	ZeroLoadLatency float64
	// Samples holds the load/latency curve probed by the search.
	Samples []Stats
	// SimCycles and SimFlitHops total the simulated router-cycles and
	// flit movements over the zero-load reference run and every probe.
	// They are the work figures behind the search: perf harnesses
	// divide them by wall-clock time to report simulation speed.
	SimCycles   int64
	SimFlitHops int64
}

// latencyBlowupFactor defines saturation: the offered load at which
// average latency exceeds this multiple of the zero-load latency
// (standard practice for load-latency curves; BookSim evaluations
// typically use 2-3x).
const latencyBlowupFactor = 3.0

// SaturationThroughput binary-searches the offered load for the
// saturation point. The passed config's InjectionRate is ignored.
func SaturationThroughput(cfg Config) (SaturationResult, error) {
	cfg.Defaults()
	zlStats, err := zeroLoad(cfg)
	if err != nil {
		return SaturationResult{}, err
	}
	zl := zlStats.AvgPacketLatency
	res := SaturationResult{ZeroLoadLatency: zl}
	res.SimCycles = zlStats.Cycles
	res.SimFlitHops = zlStats.FlitHops

	saturated := func(rate float64) (bool, Stats, error) {
		c := cfg
		c.InjectionRate = rate
		// Shorter drain than the default: saturated runs never drain.
		if c.Drain > 4*c.Measure {
			c.Drain = 4 * c.Measure
		}
		st, err := RunConfig(c)
		res.SimCycles += st.Cycles
		res.SimFlitHops += st.FlitHops
		if err != nil {
			return false, st, err
		}
		sat := st.Deadlocked ||
			st.DeliveredFraction() < 0.95 ||
			st.AvgPacketLatency > latencyBlowupFactor*zl ||
			st.AcceptedRate < 0.85*rate
		return sat, st, nil
	}

	lo, hi := 0.0, 1.0
	// Establish whether full load already saturates (it almost always
	// does except for near-ideal networks).
	if sat, st, err := saturated(1.0); err != nil {
		return res, err
	} else if !sat {
		res.Samples = append(res.Samples, st)
		res.SaturationRate = 1.0
		return res, nil
	} else {
		res.Samples = append(res.Samples, st)
	}
	for i := 0; i < 7; i++ {
		mid := (lo + hi) / 2
		sat, st, err := saturated(mid)
		if err != nil {
			return res, err
		}
		res.Samples = append(res.Samples, st)
		if sat {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.SaturationRate = lo
	return res, nil
}

// LoadLatencyCurve sweeps the offered load over the given rates and
// returns one Stats per point — the classic load-latency curve NoC
// papers plot around their saturation discussions. Saturated points
// (incomplete delivery) are included; callers can filter on
// DeliveredFraction.
func LoadLatencyCurve(cfg Config, rates []float64) ([]Stats, error) {
	cfg.Defaults()
	out := make([]Stats, 0, len(rates))
	for _, r := range rates {
		c := cfg
		c.InjectionRate = r
		if c.Drain > 3*c.Measure {
			c.Drain = 3 * c.Measure
		}
		st, err := RunConfig(c)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
