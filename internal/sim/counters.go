package sim

import "sync/atomic"

// Process-wide simulation counters, updated only at run and search
// boundaries — never inside the per-cycle hot path, which stays
// allocation- and contention-free. The noc layer exposes them through
// the obs metric registry; Counters returns a consistent-enough
// snapshot for scraping (each field is individually atomic).
var counters struct {
	runs      atomic.Int64
	cycles    atomic.Int64
	flitHops  atomic.Int64
	deadlocks atomic.Int64

	verdictNone        atomic.Int64
	verdictSaturated   atomic.Int64
	verdictStable      atomic.Int64
	verdictInterrupted atomic.Int64

	cyclesSaved      atomic.Int64
	probesSpeculated atomic.Int64
	probesCanceled   atomic.Int64

	shapeBuilds   atomic.Int64
	simBuilds     atomic.Int64
	batches       atomic.Int64
	batchReplicas atomic.Int64

	anchorReuses atomic.Int64
}

// CounterSnapshot is a point-in-time copy of the process-wide
// simulation counters (see Counters).
type CounterSnapshot struct {
	// Runs counts completed simulation runs (every RunConfig /
	// Simulator.Run, including probes and zero-load references).
	Runs int64
	// Cycles totals the simulated router-cycles over all runs.
	Cycles int64
	// FlitHops totals flit movements through crossbars over all runs.
	FlitHops int64
	// Deadlocks counts runs the watchdog declared deadlocked.
	Deadlocks int64

	// VerdictNone..VerdictsInterrupted count runs by how they ended
	// (see Verdict).
	VerdictsNone        int64
	VerdictsSaturated   int64
	VerdictsStable      int64
	VerdictsInterrupted int64

	// CyclesSaved totals the simulated cycles adaptive control avoided
	// versus the fixed injection schedule (see
	// SaturationResult.CyclesSaved).
	CyclesSaved int64
	// ProbesSpeculated counts saturation probes launched speculatively
	// on borrowed worker slots; ProbesCanceled counts those abandoned
	// because a sibling's verdict made them irrelevant.
	ProbesSpeculated int64
	ProbesCanceled   int64

	// ShapeBuilds counts shared topology builds (Shape constructions:
	// channel wiring + output-port LUT) and SimBuilds counts replica
	// instantiations; their ratio SimBuilds/ShapeBuilds is the batched
	// engine's build-work amortization factor (every replica used to
	// pay a full shape build).
	ShapeBuilds int64
	SimBuilds   int64
	// Batches counts interleaved Batch.Run passes and BatchReplicas the
	// replicas they stepped.
	Batches       int64
	BatchReplicas int64

	// AnchorReuses counts saturation searches that reused a shared
	// zero-load reference run (see ZeroLoadAnchor) instead of
	// simulating their own.
	AnchorReuses int64
}

// Counters returns a snapshot of the process-wide simulation counters.
func Counters() CounterSnapshot {
	return CounterSnapshot{
		Runs:                counters.runs.Load(),
		Cycles:              counters.cycles.Load(),
		FlitHops:            counters.flitHops.Load(),
		Deadlocks:           counters.deadlocks.Load(),
		VerdictsNone:        counters.verdictNone.Load(),
		VerdictsSaturated:   counters.verdictSaturated.Load(),
		VerdictsStable:      counters.verdictStable.Load(),
		VerdictsInterrupted: counters.verdictInterrupted.Load(),
		CyclesSaved:         counters.cyclesSaved.Load(),
		ProbesSpeculated:    counters.probesSpeculated.Load(),
		ProbesCanceled:      counters.probesCanceled.Load(),
		ShapeBuilds:         counters.shapeBuilds.Load(),
		SimBuilds:           counters.simBuilds.Load(),
		Batches:             counters.batches.Load(),
		BatchReplicas:       counters.batchReplicas.Load(),
		AnchorReuses:        counters.anchorReuses.Load(),
	}
}

// countRun folds one finished run into the process-wide counters.
// Called once at the end of Simulator.Run, outside the cycle loop.
func countRun(st *Stats) {
	counters.runs.Add(1)
	counters.cycles.Add(st.Cycles)
	counters.flitHops.Add(st.FlitHops)
	if st.Deadlocked {
		counters.deadlocks.Add(1)
	}
	switch st.Verdict {
	case VerdictSaturated:
		counters.verdictSaturated.Add(1)
	case VerdictStable:
		counters.verdictStable.Add(1)
	case VerdictInterrupted:
		counters.verdictInterrupted.Add(1)
	default:
		counters.verdictNone.Add(1)
	}
}
