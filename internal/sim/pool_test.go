package sim

// Tests for the zero-allocation machinery: the packet free list, the
// fixed-capacity VC rings, the steady-state allocation guard, and the
// pooled-vs-unpooled equivalence regression.

import (
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

func TestFlitRing(t *testing.T) {
	var q flitRing
	q.init(4)
	if q.len() != 0 {
		t.Fatalf("fresh ring len %d", q.len())
	}
	// Fill, drain halfway, refill: exercises wraparound.
	for i := 0; i < 3; i++ {
		q.push(flitRef{pkt: int32(i)})
	}
	if got := q.pop(); got.pkt != 0 {
		t.Fatalf("pop = %d, want 0", got.pkt)
	}
	if got := q.pop(); got.pkt != 1 {
		t.Fatalf("pop = %d, want 1", got.pkt)
	}
	for i := 3; i < 6; i++ {
		q.push(flitRef{pkt: int32(i)})
	}
	if q.len() != 4 {
		t.Fatalf("len = %d, want 4 (full)", q.len())
	}
	if q.front().pkt != 2 {
		t.Fatalf("front = %d, want 2", q.front().pkt)
	}
	for want := int32(2); want < 6; want++ {
		if got := q.pop(); got.pkt != want {
			t.Fatalf("pop = %d, want %d", got.pkt, want)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after drain, want 0", q.len())
	}

	// Pushing past capacity must panic: credit flow control is
	// supposed to make that impossible.
	for i := 0; i < 4; i++ {
		q.push(flitRef{})
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow push did not panic")
		}
	}()
	q.push(flitRef{})
}

// TestPacketPoolReuseAfterRelease checks the free-list accounting on
// a fully drained run: every packet slot is released exactly once,
// and the slot array is bounded by the live-packet high-water mark
// rather than the total packet count.
func TestPacketPoolReuseAfterRelease(t *testing.T) {
	m, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Topo: m, Routing: r, NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4, InjectionRate: 0.2,
		Seed: 11, Warmup: 1, Measure: 6000, Drain: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	if st.Deadlocked {
		t.Fatal("deadlocked")
	}
	if st.MeasuredEjected != st.MeasuredInjected {
		t.Fatalf("undrained: %d of %d ejected", st.MeasuredEjected, st.MeasuredInjected)
	}

	// Fully drained: every slot must be back on the free list,
	// exactly once.
	if got, want := len(s.freePkts), len(s.packets); got != want {
		t.Errorf("free list has %d slots, want %d (double/missed release)", got, want)
	}
	seen := make(map[int32]bool, len(s.freePkts))
	for _, pid := range s.freePkts {
		if seen[pid] {
			t.Fatalf("packet slot %d released twice", pid)
		}
		seen[pid] = true
	}

	// The slot array must reflect peak liveness, not throughput: the
	// run injected st.MeasuredInjected packets (the measurement window
	// spans the whole injection phase here) but only a fraction is
	// ever alive at once.
	if int64(len(s.packets)) > st.MeasuredInjected/2 {
		t.Errorf("slot array holds %d slots for %d injected packets — pooling is not reusing slots",
			len(s.packets), st.MeasuredInjected)
	}
	if st.OrderViolations != 0 {
		t.Errorf("%d order violations with slot reuse", st.OrderViolations)
	}
}

// TestStepSteadyStateAllocFree is the AllocsPerRun == 0 guard on the
// hot path: once warmed up, advancing the network must not allocate —
// in either engine (the structure-of-arrays default and the retained
// array-of-structs reference).
func TestStepSteadyStateAllocFree(t *testing.T) {
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.For(m, route.Auto)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []bool{false, true} {
		for _, rate := range []float64{0.05, 0.3, 0.9} {
			cfg := Config{
				Topo: m, Routing: r, NumVCs: 8, BufDepth: 32,
				RouterDelay: 3, PacketLen: 4, InjectionRate: rate,
				// Keep the whole exercise inside the warmup phase so the
				// drain/measure schedule never interferes.
				Seed: 5, Warmup: 1 << 30, Measure: 1, Drain: 1,
			}
			cfg.reference = ref
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Reach steady state: queues and the free list grow to their
			// high-water marks.
			for i := 0; i < 5000; i++ {
				s.step(true)
			}
			if allocs := testing.AllocsPerRun(300, func() { s.step(true) }); allocs != 0 {
				t.Errorf("reference=%v rate %v: steady-state step allocates %v times per cycle, want 0",
					ref, rate, allocs)
			}
		}
	}
}

// TestPooledMatchesUnpooled is the regression guard for slot reuse:
// an engine recycling packet slots must produce bit-identical Stats
// to one that never recycles (noPool, the mode tracing uses).
func TestPooledMatchesUnpooled(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*topo.Topology, error)
		rate float64
	}{
		{"mesh-low", func() (*topo.Topology, error) { return topo.NewMesh(4, 4) }, 0.05},
		{"mesh-sat", func() (*topo.Topology, error) { return topo.NewMesh(4, 4) }, 0.6},
		{"torus", func() (*topo.Topology, error) { return topo.NewTorus(4, 4) }, 0.3},
		{"shg", func() (*topo.Topology, error) {
			return topo.NewSparseHamming(4, 4, topo.HammingParams{SR: []int{2}, SC: []int{3}})
		}, 0.3},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			tp, err := c.mk()
			if err != nil {
				t.Fatal(err)
			}
			r, err := route.For(tp, route.Auto)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Topo: tp, Routing: r, NumVCs: 4, BufDepth: 8,
				RouterDelay: 2, PacketLen: 4, InjectionRate: c.rate,
				Seed: 42, Warmup: 500, Measure: 2000, Drain: 8000,
			}
			pooled, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			unpooled, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			unpooled.noPool = true

			a, b := pooled.Run(), unpooled.Run()
			if a != b {
				t.Errorf("pooled and unpooled runs diverge:\npooled:   %+v\nunpooled: %+v", a, b)
			}
			if unpooled.noPool && len(unpooled.freePkts) != 0 {
				t.Error("unpooled engine populated its free list")
			}
			if int64(len(unpooled.packets)) <= int64(len(pooled.packets)) && c.rate >= 0.3 {
				t.Errorf("pooling did not shrink the slot array: pooled %d, unpooled %d",
					len(pooled.packets), len(unpooled.packets))
			}
		})
	}
}
