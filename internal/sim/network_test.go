package sim

import (
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

func TestQueueFIFO(t *testing.T) {
	var q queue[int]
	if q.len() != 0 {
		t.Fatal("new queue not empty")
	}
	for i := 0; i < 300; i++ {
		q.push(i)
	}
	for i := 0; i < 300; i++ {
		if q.len() != 300-i {
			t.Fatalf("len = %d, want %d", q.len(), 300-i)
		}
		if got := *q.front(); got != i {
			t.Fatalf("front = %d, want %d", got, i)
		}
		if got := q.pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	// Interleaved push/pop across the compaction threshold.
	for i := 0; i < 1000; i++ {
		q.push(i)
		if i%2 == 1 {
			q.pop()
		}
	}
	if q.len() != 500 {
		t.Fatalf("len after interleave = %d, want 500", q.len())
	}
}

func TestClassVCRangePartition(t *testing.T) {
	rg, err := topo.NewRing(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.For(rg, route.Auto) // 2 classes
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Topo: rg, Routing: r, NumVCs: 8, BufDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := s.classVCRange(0)
	lo1, hi1 := s.classVCRange(1)
	if lo0 != 0 || hi0 != 4 || lo1 != 4 || hi1 != 8 {
		t.Errorf("ranges [%d,%d) [%d,%d), want [0,4) [4,8)", lo0, hi0, lo1, hi1)
	}
	// Odd split: 3 classes over 8 VCs gives the remainder to the last.
	sn, err := topo.NewSlimNoC(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := route.For(sn, route.Auto) // 2 classes (diameter 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Topo: sn, Routing: rs, NumVCs: 5, BufDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	l0, h0 := s2.classVCRange(0)
	l1, h1 := s2.classVCRange(1)
	if h0-l0 != 2 || h1-l1 != 3 || h1 != 5 {
		t.Errorf("odd split ranges [%d,%d) [%d,%d)", l0, h0, l1, h1)
	}
}

func TestDefaultsFillUnset(t *testing.T) {
	m, _ := topo.NewMesh(4, 4)
	r, _ := route.For(m, route.Auto)
	cfg := Config{Topo: m, Routing: r}
	cfg.Defaults()
	if cfg.NumVCs != 8 || cfg.BufDepth != 32 || cfg.RouterDelay != 3 || cfg.PacketLen != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Pattern == nil || cfg.Warmup == 0 || cfg.Measure == 0 || cfg.Drain == 0 {
		t.Error("phase defaults missing")
	}
	// Explicit values survive.
	cfg2 := Config{Topo: m, Routing: r, NumVCs: 2, PacketLen: 1}
	cfg2.Defaults()
	if cfg2.NumVCs != 2 || cfg2.PacketLen != 1 {
		t.Error("explicit values overwritten")
	}
}

func TestBuildPortWiring(t *testing.T) {
	m, _ := topo.NewMesh(3, 3)
	r, _ := route.For(m, route.Auto)
	cfg := Config{Topo: m, Routing: r, NumVCs: 2, BufDepth: 2}
	cfg.reference = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every directed channel's endpoints agree with the routers that
	// reference it.
	for i := range s.chans {
		c := &s.chans[i]
		from, to := s.routers[c.from], s.routers[c.to]
		if from.outChans[c.outPort] != int32(i) {
			t.Fatalf("chan %d not wired to sender output port", i)
		}
		if to.inChans[c.inPort] != int32(i) {
			t.Fatalf("chan %d not wired to receiver input port", i)
		}
	}
	// Channel count = 2 * links.
	if len(s.chans) != 2*m.NumLinks() {
		t.Errorf("%d channels for %d links", len(s.chans), m.NumLinks())
	}
	// Degree-matched port counts plus injection/ejection.
	center := s.routers[m.Index(topo.Coord{Row: 1, Col: 1})]
	if center.numIn() != 5 || center.numOut() != 5 {
		t.Errorf("center router ports in=%d out=%d, want 5", center.numIn(), center.numOut())
	}

	// The SoA engine's port-offset table agrees with the wiring: the
	// center router owns 5 global ports, and the table covers every
	// router exactly once.
	soa, err := New(Config{Topo: m, Routing: r, NumVCs: 2, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	pb := soa.soa.portBase
	if len(pb) != m.NumTiles()+1 {
		t.Fatalf("portBase has %d entries, want %d", len(pb), m.NumTiles()+1)
	}
	for id := 0; id < m.NumTiles(); id++ {
		if got, want := int(pb[id+1]-pb[id]), m.Degree(id)+1; got != want {
			t.Errorf("router %d owns %d ports, want %d", id, got, want)
		}
	}
}
