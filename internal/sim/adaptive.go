package sim

// Adaptive saturation search: early-verdict probes plus speculative
// parallel bisection. See the file comment in metrics.go for the
// determinism argument; the short version is that the search consumes
// exactly the sequential bisection's probe sequence, and speculation
// only changes when those probes execute, never which ones count.

import "sparsehamming/internal/obs"

// specProbe is one speculatively launched probe.
type specProbe struct {
	rate float64
	// interrupt is closed to abandon the probe once a completed
	// sibling's verdict makes it irrelevant.
	interrupt chan struct{}
	// done receives the probe's outcome (buffered, so abandoned
	// probes never leak a goroutine).
	done chan probeOutcome
	// span is the probe's trace subtree, forked (detached) from the
	// search span: the probe goroutine mutates only this subtree, and
	// eval adopts it into the search trace if and when the outcome is
	// consumed. Canceled probes' spans are simply never attached, so a
	// goroutine that is still winding down cannot race a published
	// trace.
	span *obs.Span
}

// probeOutcome is one finished probe.
type probeOutcome struct {
	st  Stats
	err error
}

// prober runs saturation probes for one adaptive search, managing the
// speculation table.
type prober struct {
	cfg     Config  // base config (Defaults applied)
	sh      *Shape  // shared build products; read-only, so concurrent speculative probes instantiate from it safely
	ctl     Control // controller template (defaults applied)
	zl      float64 // zero-load reference latency
	span    *obs.Span
	pending map[float64]*specProbe
}

// run executes one probe at rate synchronously on the calling
// goroutine, tracing it under span. interrupt and span may be nil.
func (p *prober) run(rate float64, interrupt <-chan struct{}, span *obs.Span) probeOutcome {
	c := p.cfg
	c.InjectionRate = rate
	c.Span = span
	span.SetAttr("rate", rate)
	clampDrain(&c, probeDrainFactor)
	ctl := p.ctl
	ctl.LatencyRef = p.zl
	ctl.DecideLatency = latencyBlowupFactor * p.zl
	ctl.Interrupt = interrupt
	c.Control = &ctl
	st, err := runShaped(p.sh, c)
	span.End()
	return probeOutcome{st: st, err: err}
}

// speculate launches a probe at rate on a borrowed scheduler slot, if
// one is free and the rate is not already in flight. Without a
// scheduler (or capacity) it does nothing: the search then evaluates
// the rate inline when — and only if — its verdict is needed.
func (p *prober) speculate(rate float64) {
	if p.cfg.Sched == nil {
		return
	}
	if _, ok := p.pending[rate]; ok {
		return
	}
	sp := &specProbe{
		rate:      rate,
		interrupt: make(chan struct{}),
		done:      make(chan probeOutcome, 1),
		span:      p.span.Fork("probe"),
	}
	sp.span.SetAttr("speculative", true)
	started := p.cfg.Sched.TryGo(func() {
		sp.done <- p.run(rate, sp.interrupt, sp.span)
	})
	if started {
		counters.probesSpeculated.Add(1)
		p.pending[rate] = sp
	}
}

// eval returns the outcome of the probe at rate: the in-flight
// speculative run when one exists, an inline run otherwise. A
// consumed speculative probe's trace subtree is adopted into the
// search span here, on the search goroutine.
func (p *prober) eval(rate float64) probeOutcome {
	if sp, ok := p.pending[rate]; ok {
		delete(p.pending, rate)
		out := <-sp.done
		if out.err == nil && out.st.Verdict == VerdictInterrupted {
			// Canceled before we needed it after all (interrupt and
			// demand raced); rerun inline for the deterministic
			// outcome.
			counters.probesCanceled.Add(1)
			return p.run(rate, nil, p.span.Child("probe"))
		}
		p.span.Adopt(sp.span)
		return out
	}
	return p.run(rate, nil, p.span.Child("probe"))
}

// cancelExcept interrupts every pending speculative probe but the one
// at keep. The canceled probes' goroutines observe the interrupt at
// their next monitor window, release their slots, and their outcomes
// are discarded — they never enter the result (nor the trace: their
// detached spans are never adopted).
func (p *prober) cancelExcept(keep float64) {
	for rate, sp := range p.pending {
		if rate == keep {
			continue
		}
		close(sp.interrupt)
		counters.probesCanceled.Add(1)
		delete(p.pending, rate)
	}
}

// budgetCap returns the fixed injection schedule (warmup plus
// measurement) a probe was capped at. Savings are accounted against
// this, not against the drain budget — a fixed-budget run's drain
// length depends on how fast its backlog clears, so counting avoided
// drain would overstate. The estimate is therefore conservative.
func (p *prober) budgetCap() int64 {
	return int64(p.cfg.Warmup + p.cfg.Measure)
}

// adaptiveSaturation is the Control-enabled saturation search over
// the search's shared Shape. anchor, when non-nil, memoizes the
// zero-load reference run across sibling searches (see
// SaturationThroughputAnchored); the adaptive tier can share it with
// the fixed tiers because its zero-load run is pinned to the same
// fixed schedule (the per-probe controller never attaches to it).
func adaptiveSaturation(sh *Shape, cfg Config, anchor *ZeroLoadAnchor) (SaturationResult, error) {
	p := &prober{
		cfg:     cfg,
		sh:      sh,
		ctl:     cfg.Control.withDefaults(),
		span:    cfg.Span,
		pending: map[float64]*specProbe{},
	}
	p.cfg.Control = nil // probes attach their own per-probe controller
	p.cfg.Span = nil    // probes attach their own per-probe span

	// Zero-load reference run, on the exact fixed schedule: it is
	// cheap (almost no flits move at 0.5% load), it is the headline
	// ZeroLoadLatency, and — decisively — it anchors the 3x blowup
	// threshold every probe's verdict compares against, so estimating
	// it adaptively would let sampling noise shift all verdicts at
	// once. Pinning it keeps the adaptive search's saturation answer
	// in lockstep with the fixed-budget search.
	zc := p.cfg
	zc.Span = p.span.Child("zeroload")
	zlStats, err := anchoredZeroLoad(sh, zc, anchor)
	zc.Span.End()
	if err != nil {
		return SaturationResult{}, err
	}
	zl := zlStats.AvgPacketLatency
	p.zl = zl
	res := SaturationResult{ZeroLoadLatency: zl}
	res.SimCycles = zlStats.Cycles
	res.SimFlitHops = zlStats.FlitHops

	// account folds one consumed probe into the result.
	account := func(rate float64, out probeOutcome) (bool, error) {
		res.SimCycles += out.st.Cycles
		res.SimFlitHops += out.st.FlitHops
		res.Probes++
		if out.err != nil {
			return false, out.err
		}
		sat := satVerdict(out.st, zl, rate)
		res.Samples = append(res.Samples, out.st)
		if saved := p.budgetCap() - out.st.Cycles; saved > 0 {
			res.CyclesSaved += saved
			counters.cyclesSaved.Add(saved)
		}
		return sat, nil
	}

	lo, hi := 0.0, 1.0
	// While the full-load probe runs, speculate on its (overwhelmingly
	// likely) saturated outcome: the first midpoint.
	p.speculate(0.5)
	out := p.eval(1.0)
	sat, err := account(1.0, out)
	if err != nil {
		p.cancelExcept(-1)
		return res, err
	}
	if !sat {
		p.cancelExcept(-1)
		res.SaturationRate = 1.0
		return res, nil
	}

	for i := 0; i < bisectionSteps; i++ {
		mid := (lo + hi) / 2
		if i < bisectionSteps-1 {
			// Speculate the next midpoint for both possible verdicts
			// of the probe at mid.
			p.speculate((lo + mid) / 2)
			p.speculate((mid + hi) / 2)
		}
		out := p.eval(mid)
		sat, err := account(mid, out)
		if err != nil {
			p.cancelExcept(-1)
			return res, err
		}
		if sat {
			hi = mid
			p.cancelExcept((lo + mid) / 2)
		} else {
			lo = mid
			p.cancelExcept((mid + hi) / 2)
		}
	}
	p.cancelExcept(-1)
	finishSearch(&res, lo, hi)
	return res, nil
}
