package sim

// Fuzz coverage for the traffic-pattern registry: every registered
// pattern, on any grid, must either skip injection (-1) or return an
// in-range destination that is never the source — the engine injects
// whatever Dest returns, so an out-of-range or self destination
// corrupts the packet tables.

import (
	"math/rand"
	"testing"
)

// FuzzTrafficPattern drives every registered pattern over fuzzer-
// chosen grids, sources, and RNG seeds, checking the Dest contract.
func FuzzTrafficPattern(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(4), uint16(3), int64(1))
	f.Add(uint8(1), uint8(4), uint8(8), uint16(17), int64(42))
	f.Add(uint8(2), uint8(1), uint8(1), uint16(0), int64(7))  // 1x1: nowhere to send
	f.Add(uint8(5), uint8(3), uint8(1), uint16(2), int64(9))  // single column (neighbor fixed point)
	f.Add(uint8(3), uint8(2), uint8(3), uint16(5), int64(11)) // shuffle on a small odd grid
	f.Add(uint8(4), uint8(16), uint8(16), uint16(255), int64(3))

	names := PatternNames()
	f.Fuzz(func(t *testing.T, pi, rows8, cols8 uint8, src16 uint16, seed int64) {
		rows := int(rows8)%16 + 1
		cols := int(cols8)%16 + 1
		name := names[int(pi)%len(names)]
		pat, err := PatternByName(name, rows, cols)
		if err != nil {
			t.Skip() // pattern does not support this grid
		}
		n := rows * cols
		src := int(src16) % n
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 16; i++ {
			d := pat.Dest(src, rng)
			if d == -1 {
				continue
			}
			if d < 0 || d >= n {
				t.Fatalf("%s on %dx%d: Dest(%d) = %d, out of range [0,%d)", name, rows, cols, src, d, n)
			}
			if d == src {
				t.Fatalf("%s on %dx%d: Dest(%d) = itself", name, rows, cols, src)
			}
		}
	})
}
