package sim

// Golden-replay determinism suite: every checked-in application trace
// under examples/traces/, replayed at two quality tiers on a mesh of
// its grid, is pinned field-by-field against testdata/golden_replay.json.
// Trace replay draws nothing from the RNG, so these numbers are a
// whole-stack fingerprint — the trace format, the replay scheduler,
// and the engine's cycle loop all have to reproduce bit-identically
// for the suite to pass. Each pinned run is additionally executed as
// a single-replica Batch and must match the sequential Stats exactly.
//
// Regenerate after an intentional engine change with
//
//	go test ./internal/sim/ -run TestGoldenReplay -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
	"sparsehamming/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_replay.json from the current engine")

// goldenTier is one pinned schedule; the windows mirror the noc
// toolchain's quick and full quality tiers.
type goldenTier struct {
	name            string
	warmup, measure int
}

var goldenTiers = []goldenTier{
	{name: "quick", warmup: 800, measure: 2500},
	{name: "full", warmup: 2000, measure: 6000},
}

const goldenPath = "testdata/golden_replay.json"

// goldenConfig builds the pinned replay configuration: a mesh of the
// trace's grid with the differential harness's router parameters.
func goldenConfig(t *testing.T, tr *trace.Trace, tier goldenTier) Config {
	t.Helper()
	tp, err := topo.NewMesh(tr.Meta.Rows, tr.Meta.Cols)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := route.ForName(tp, "")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplay("golden", tr)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topo: tp, Routing: rt,
		NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4,
		InjectionRate: 1.0,
		Pattern:       rp,
		Seed:          42,
		Warmup:        tier.warmup,
		Measure:       tier.measure,
		Drain:         3 * tier.measure,
	}
}

// TestGoldenReplay replays every checked-in trace at both tiers,
// compares the Stats against the golden file, and cross-checks the
// batched engine against the sequential run.
func TestGoldenReplay(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "traces", "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("found %d traces under examples/traces, expected the checked-in library", len(paths))
	}
	sort.Strings(paths)

	got := map[string]Stats{}
	for _, path := range paths {
		tr, err := trace.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, tier := range goldenTiers {
			key := fmt.Sprintf("%s/%s", filepath.Base(path), tier.name)
			cfg := goldenConfig(t, tr, tier)
			st, err := RunConfig(cfg)
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if st.MeasuredInjected == 0 {
				t.Errorf("%s: replay measured no packets", key)
			}
			if st.Deadlocked {
				t.Errorf("%s: replay deadlocked", key)
			}
			got[key] = st

			// The batched engine must reproduce the sequential run bit
			// for bit even on the trace-driven injection path.
			b, err := NewBatch(cfg, []Replica{{InjectionRate: cfg.InjectionRate, Seed: cfg.Seed}})
			if err != nil {
				t.Fatalf("%s: NewBatch: %v", key, err)
			}
			if bst := b.Run()[0]; bst != st {
				t.Errorf("%s: batched replay diverges:\nbatched    %+v\nsequential %+v", key, bst, st)
			}
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	var want map[string]Stats
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, run produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden file but not produced (trace removed?)", key)
			continue
		}
		if g != w {
			t.Errorf("%s: replay drifted from golden:\ngot  %+v\nwant %+v", key, g, w)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: not in golden file (run with -update-golden)", key)
		}
	}
}
