package sim

import (
	"fmt"

	"sparsehamming/internal/obs"
	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// Config parameterizes one simulation run.
type Config struct {
	Topo    *topo.Topology
	Routing *route.Routing

	// NumVCs is the number of virtual channels per input port; it is
	// partitioned evenly among the routing's VC classes. BufDepth is
	// the per-VC buffer depth in flits. The paper's evaluation uses
	// 8 VCs with 32-flit buffers.
	NumVCs   int
	BufDepth int

	// LinkLatency gives the pipeline depth of each link in cycles,
	// indexed like Topo.Links(); nil means one cycle everywhere.
	LinkLatency []int

	// RouterDelay is the router pipeline depth in cycles (route
	// computation through switch traversal); a flit arriving at cycle
	// t can leave no earlier than t + RouterDelay.
	RouterDelay int

	// PacketLen is the number of flits per packet.
	PacketLen int

	// InjectionRate is the offered load in flits per node per cycle
	// (so InjectionRate/PacketLen packets per node per cycle). When
	// Pattern is a trace Replay it is instead the replay's load scale:
	// 1 (or the 0 default) replays the trace at its recorded
	// intensity, smaller values time-dilate it proportionally (see
	// replay.go).
	InjectionRate float64

	// Pattern generates destinations for synthetic traffic, or — when
	// it is a *Replay — switches the engine to trace-driven injection.
	Pattern Pattern
	Seed    int64

	// Tracer, when non-nil, receives per-flit inject/traverse/eject
	// events (see trace.go). Tracing a saturated run produces very
	// large volumes; combine with PacketTracer.Watch to select
	// packets. Tracing also disables packet-slot recycling so traced
	// packet IDs stay unique for the whole run.
	Tracer Tracer

	// Phase lengths in cycles. After Warmup+Measure cycles injection
	// stops and the network drains for at most Drain cycles.
	Warmup  int
	Measure int
	Drain   int

	// Control, when non-nil, enables adaptive simulation control: the
	// run may end early with a Verdict (saturation proven, latency
	// confidence interval converged) instead of executing the full
	// schedule above, which stays the hard cap. Nil preserves the
	// fixed-budget schedule bit for bit. See control.go.
	Control *Control

	// Sched, when non-nil, lets saturation searches execute
	// speculative probes concurrently on borrowed worker slots. It
	// affects wall-clock time only — never results — and is therefore
	// not part of any job identity.
	Sched ProbeScheduler

	// Span, when non-nil, receives the execution trace: the engine
	// attaches warmup/measure/drain phase child spans, and the
	// saturation searches attach zero-load and per-probe spans (see
	// package obs). Tracing is wall-clock observability only — it
	// never affects results and is not part of any job identity. The
	// per-cycle hot path pays one nil check when unset.
	Span *obs.Span

	// reference selects the retained array-of-structs engine instead
	// of the structure-of-arrays default (see reference.go). It is
	// build-internal: only in-package differential tests and
	// benchmarks set it, to use the old layout as the oracle the SoA
	// engine is verified bit-identical against.
	reference bool
}

// Defaults fills unset fields with the paper's evaluation defaults.
func (c *Config) Defaults() {
	if c.NumVCs == 0 {
		c.NumVCs = 8
	}
	if c.BufDepth == 0 {
		c.BufDepth = 32
	}
	if c.RouterDelay == 0 {
		c.RouterDelay = 3
	}
	if c.PacketLen == 0 {
		c.PacketLen = 4
	}
	if c.Pattern == nil {
		c.Pattern = UniformRandom{N: c.Topo.NumTiles()}
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 6000
	}
	if c.Drain == 0 {
		c.Drain = 30000
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Topo == nil || c.Routing == nil {
		return fmt.Errorf("sim: missing topology or routing")
	}
	if c.Routing.Topo != c.Topo {
		return fmt.Errorf("sim: routing was built for a different topology")
	}
	if c.NumVCs < c.Routing.NumClasses {
		return fmt.Errorf("sim: %d VCs cannot host %d VC classes", c.NumVCs, c.Routing.NumClasses)
	}
	if c.LinkLatency != nil && len(c.LinkLatency) != c.Topo.NumLinks() {
		return fmt.Errorf("sim: %d link latencies for %d links", len(c.LinkLatency), c.Topo.NumLinks())
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		return fmt.Errorf("sim: injection rate %v outside [0,1]", c.InjectionRate)
	}
	if c.PacketLen < 1 {
		return fmt.Errorf("sim: packet length %d < 1", c.PacketLen)
	}
	if rp, ok := c.Pattern.(*Replay); ok {
		rows, cols := rp.Grid()
		if rows != c.Topo.Rows || cols != c.Topo.Cols {
			return fmt.Errorf("sim: replay trace grid %dx%d does not match the %dx%d topology",
				rows, cols, c.Topo.Rows, c.Topo.Cols)
		}
	}
	return nil
}

// flitRef identifies one flit: packet index and sequence number.
type flitRef struct {
	pkt   int32
	seq   int16
	ready int64 // earliest cycle the flit may leave this router
}

// timedFlit is a flit in flight on a link.
type timedFlit struct {
	pkt    int32
	seq    int16
	vc     int16 // destination input VC
	arrive int64
}

// timedCredit is a credit returning upstream on a link.
type timedCredit struct {
	vc     int16
	arrive int64
}

// dchan is one directed channel between two routers.
type dchan struct {
	from, to int32
	outPort  int16 // output port index at from
	inPort   int16 // input port index at to
	latency  int64
	flits    queue[timedFlit]
	credits  queue[timedCredit]
}

// queue is a simple FIFO with amortized O(1) operations. Its backing
// slice grows to the high-water mark of the run and is then reused,
// so a queue in steady state performs no allocations.
type queue[T any] struct {
	items []T
	head  int
}

func (q *queue[T]) len() int { return len(q.items) - q.head }

func (q *queue[T]) push(v T) { q.items = append(q.items, v) }

func (q *queue[T]) front() *T { return &q.items[q.head] }

func (q *queue[T]) pop() T {
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// flitRing is a fixed-capacity FIFO of flits, preallocated at build
// time to the VC buffer depth. Unlike queue it never grows: credit
// flow control guarantees a flit is only forwarded into buffer space
// the upstream router holds a credit for, so push past capacity is a
// protocol violation and panics.
type flitRing struct {
	items []flitRef
	head  int
	n     int
}

// init sizes the ring for depth flits.
func (q *flitRing) init(depth int) { q.items = make([]flitRef, depth) }

func (q *flitRing) len() int { return q.n }

func (q *flitRing) push(v flitRef) {
	if q.n == len(q.items) {
		panic("sim: VC buffer overflow (credit accounting broken)")
	}
	i := q.head + q.n
	if i >= len(q.items) {
		i -= len(q.items)
	}
	q.items[i] = v
	q.n++
}

func (q *flitRing) front() *flitRef { return &q.items[q.head] }

func (q *flitRing) pop() flitRef {
	v := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.head = 0
	}
	q.n--
	return v
}

// vcState is one virtual channel of one input port.
type vcState struct {
	buf     flitRing
	outPort int16 // allocated output port for the packet in flight, -1 if none
	outVC   int16 // allocated downstream VC, -1 if none
}

// router holds the per-node microarchitectural state.
type router struct {
	id       int32
	inChans  []int32 // dchan index feeding input port i (len = degree)
	outChans []int32 // dchan index driven by output port o
	// Input ports: 0..deg-1 are links, port deg is injection.
	vcs [][]vcState // [inPort][vc]
	// Output ports: 0..deg-1 are links, port deg is ejection.
	credits  [][]int16 // [outPort][vc]; ejection port has no credit limit
	ovcOwner [][]int32 // [outPort][vc] = owning (inPort*V + vc), -1 free

	vaRR    []int // per output port: round-robin over requesters
	saInRR  []int // per input port: round-robin over VCs
	saOutRR []int // per output port: round-robin over input ports

	// saCand is the switch allocator's per-input candidate scratch,
	// preallocated at build time so allocation runs allocation-free.
	saCand []int16

	// bufFlits counts the flits currently buffered in any of the
	// router's input VCs. Routers with no buffered flits skip VC and
	// switch allocation entirely — at low load most routers are idle
	// most cycles, and this check is what makes them nearly free.
	bufFlits int32

	// needRoute counts buffered head flits that have not been granted
	// an output VC yet. VC allocation scans the input VCs only while
	// it is positive: each head is counted when it is buffered and
	// uncounted when its VC wins an output VC (or the ejection port).
	needRoute int32

	srcQ   queue[int32] // packets awaiting injection
	injSeq int16        // next flit seq of the packet currently injecting
	injVC  int16        // VC chosen for the current packet, -1 if none
}

func (r *router) numIn() int   { return len(r.inChans) + 1 }
func (r *router) numOut() int  { return len(r.outChans) + 1 }
func (r *router) injPort() int { return len(r.inChans) }
func (r *router) ejPort() int  { return len(r.outChans) }
