// Package dse performs design-space exploration over the sparse
// Hamming graph's configuration space. The topology's pitch is that a
// single family exposes 2^(R+C-4) distinct cost-performance points
// (Table I, last column); this package enumerates them (exhaustively
// for small grids, or by neighborhood search for large ones), scores
// each with the fast cost model, and extracts the Pareto frontier of
// (area overhead, average hops) — the model-level proxies for cost and
// performance used by the customization strategy.
package dse

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/spec"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// Point is one evaluated sparse Hamming graph configuration.
type Point struct {
	Params          topo.HammingParams
	RouterRadix     int
	NumLinks        int
	Diameter        int
	AvgHops         float64
	AreaOverheadPct float64
	NoCPowerW       float64
	Pareto          bool // on the (area, hops) Pareto frontier
}

// Explore enumerates every sparse Hamming graph configuration of the
// architecture's grid — all subsets of {2..C-1} x {2..R-1} — and
// evaluates each with the cost model in parallel on all cores. It
// refuses grids with more than maxConfigs configurations; use
// Frontier's greedy mode for those. Use ExploreWith for explicit
// worker and cache control.
func Explore(arch *tech.Arch, maxConfigs int) ([]Point, error) {
	return ExploreWith(arch, maxConfigs, nil)
}

// ExploreWith runs the exhaustive enumeration as a campaign batch on
// the runner: one cost-model job per configuration, deduplicated and
// memoized by the runner's cache, so a repeated exploration of the
// same grid recomputes nothing. A nil runner means the default dse
// runner (all cores, no cache).
//
// Campaign jobs are serialized specs: a preset architecture (the
// paper's scenarios or MemPool) plus grid and arch-parameter
// overrides (exp.ArchOverride). Architectures not expressible that
// way — a custom technology node, say — fall back to direct serial
// evaluation; the capability is kept, only the parallelism and
// memoization need a serializable spec.
func ExploreWith(arch *tech.Arch, maxConfigs int, r *exp.Runner) ([]Point, error) {
	params, err := enumerate(arch, maxConfigs)
	if err != nil {
		return nil, err
	}
	scenario, override, presetErr := specForArch(arch)
	if presetErr != nil {
		points := make([]Point, 0, len(params))
		for _, p := range params {
			pt, err := evaluate(arch, p)
			if err != nil {
				return nil, err
			}
			points = append(points, pt)
		}
		markPareto(points)
		return points, nil
	}
	if r == nil {
		r = NewRunner(0, nil)
	}
	jobs := make([]exp.Job, 0, len(params))
	for _, p := range params {
		jobs = append(jobs, exp.Job{
			Mode:     exp.ModeCost,
			Scenario: scenario,
			Rows:     arch.Rows,
			Cols:     arch.Cols,
			Arch:     override,
			Topo:     "sparse-hamming",
			SR:       p.SR,
			SC:       p.SC,
		})
	}
	results, _, err := r.Run(jobs)
	if err != nil {
		return nil, fmt.Errorf("dse: exploration campaign: %w", err)
	}
	points := make([]Point, 0, len(params))
	for i, res := range results {
		points = append(points, Point{
			// Clone normalizes the offset sets exactly like the serial
			// path's evaluate, so the two paths yield DeepEqual points.
			Params:          params[i].Clone(),
			RouterRadix:     res.RouterRadix,
			NumLinks:        res.NumLinks,
			Diameter:        res.Diameter,
			AvgHops:         res.AvgHops,
			AreaOverheadPct: res.AreaOverheadPct,
			NoCPowerW:       res.NoCPowerW,
		})
	}
	markPareto(points)
	return points, nil
}

// enumerate lists every sparse Hamming configuration of the grid —
// all subsets of {2..C-1} x {2..R-1} — refusing grids beyond
// maxConfigs. The enumeration itself lives in the topo package
// (topo.HammingSpace) so the spec layer's hamming_space axis expands
// the identical configuration list in the identical order.
func enumerate(arch *tech.Arch, maxConfigs int) ([]topo.HammingParams, error) {
	params, err := topo.HammingSpace(arch.Rows, arch.Cols, maxConfigs)
	if err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	return params, nil
}

// specForArch derives the serializable job spec reproducing arch: its
// preset scenario name plus the grid-independent parameter override —
// the condition for cache-sound campaign jobs. It errors when arch is
// customized beyond what exp.ArchOverride expresses (e.g. a modified
// technology node).
func specForArch(arch *tech.Arch) (string, *exp.ArchOverride, error) {
	scenario, err := scenarioName(arch)
	if err != nil {
		return "", nil, err
	}
	ref, err := archByScenario(scenario)
	if err != nil {
		return "", nil, err
	}
	ov := &exp.ArchOverride{}
	if arch.EndpointGE != ref.EndpointGE {
		ov.EndpointGE = arch.EndpointGE
	}
	if arch.CoresPerTile != ref.CoresPerTile {
		ov.CoresPerTile = arch.CoresPerTile
	}
	if arch.FreqHz != ref.FreqHz {
		ov.FreqHz = arch.FreqHz
	}
	if arch.LinkBWBits != ref.LinkBWBits {
		ov.LinkBWBits = arch.LinkBWBits
	}
	if arch.Proto != nil && ref.Proto != nil {
		if arch.Proto.NumVCs != ref.Proto.NumVCs {
			ov.NumVCs = arch.Proto.NumVCs
		}
		if arch.Proto.BufDepthFlits != ref.Proto.BufDepthFlits {
			ov.BufDepthFlits = arch.Proto.BufDepthFlits
		}
	}
	if arch.TileAspect != ref.TileAspect {
		ov.TileAspect = arch.TileAspect
	}
	if ov.IsZero() {
		ov = nil
	}
	// Round-trip check: the preset plus this spec must reproduce arch
	// exactly, or cached results would not be sound.
	round, err := spec.ArchForJob(exp.Job{Scenario: scenario, Rows: arch.Rows, Cols: arch.Cols, Arch: ov})
	if err != nil {
		return "", nil, err
	}
	if !reflect.DeepEqual(arch, round) {
		return "", nil, fmt.Errorf("dse: architecture %q customized beyond a serializable spec", arch.Name)
	}
	return scenario, ov, nil
}

// NewRunner returns a campaign runner executing dse cost-model jobs
// on workers goroutines (0 means all cores) with the optional cache.
func NewRunner(workers int, cache *exp.Cache) *exp.Runner {
	return &exp.Runner{Eval: EvalJob, Workers: workers, Cache: cache}
}

// EvalJob evaluates one cost-model or surrogate job. Package dse
// deliberately stays independent of the full toolchain in package
// noc, so its evaluator accepts only the simulation-free modes
// (ModeCost, ModeSurrogate) on the sparse Hamming family — the design
// space this package explores. For those jobs it produces results
// identical to noc's evaluator (pinned by a test over there), so the
// two toolchains can safely share one cache file.
func EvalJob(j exp.Job) (*exp.Result, error) {
	if j.Mode == exp.ModeSurrogate {
		return EvalSurrogateJob(j)
	}
	if j.Mode != exp.ModeCost {
		return nil, fmt.Errorf("dse: evaluator supports modes %q and %q only, got %q",
			exp.ModeCost, exp.ModeSurrogate, j.Mode)
	}
	if j.Topo != "sparse-hamming" {
		return nil, fmt.Errorf("dse: evaluator explores the sparse-hamming family only, got %q", j.Topo)
	}
	arch, err := spec.ArchForJob(j)
	if err != nil {
		return nil, err
	}
	t, err := topo.ByName(j.Topo, arch.Rows, arch.Cols, j.SR, j.SC)
	if err != nil {
		return nil, err
	}
	res, err := phys.Evaluate(arch, t)
	if err != nil {
		return nil, err
	}
	params := ""
	if len(j.SR) > 0 || len(j.SC) > 0 {
		params = topo.HammingParams{SR: j.SR, SC: j.SC}.String()
	}
	return &exp.Result{
		Topology:           "sparse-hamming",
		Params:             params,
		RouterRadix:        t.MaxRadix(),
		NumLinks:           t.NumLinks(),
		Diameter:           t.Diameter(),
		AvgHops:            t.AverageHops(),
		TotalAreaMm2:       res.TotalAreaMm2,
		AreaOverheadPct:    100 * res.AreaOverhead,
		TotalPowerW:        res.TotalPowerW,
		NoCPowerW:          res.NoCPowerW,
		ChannelUtilization: res.ChannelUtilization,
	}, nil
}

// scenarioName maps a preset architecture back to its job-spec
// scenario name ("a".."d" or "mempool").
func scenarioName(arch *tech.Arch) (string, error) {
	if arch.Name == "mempool" {
		return "mempool", nil
	}
	if id, ok := strings.CutPrefix(arch.Name, "knc-"); ok {
		if a := tech.Scenario(tech.ScenarioID(id)); a != nil {
			return id, nil
		}
	}
	return "", fmt.Errorf("dse: architecture %q is not a preset; campaign jobs need a reproducible spec", arch.Name)
}

// archByScenario resolves a preset scenario name through the shared
// spec-layer resolution.
func archByScenario(name string) (*tech.Arch, error) {
	return spec.ArchForJob(exp.Job{Scenario: name})
}

func evaluate(arch *tech.Arch, p topo.HammingParams) (Point, error) {
	t, err := topo.NewSparseHamming(arch.Rows, arch.Cols, p)
	if err != nil {
		return Point{}, err
	}
	res, err := phys.Evaluate(arch, t)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Params:          p.Clone(),
		RouterRadix:     t.MaxRadix(),
		NumLinks:        t.NumLinks(),
		Diameter:        t.Diameter(),
		AvgHops:         t.AverageHops(),
		AreaOverheadPct: 100 * res.AreaOverhead,
		NoCPowerW:       res.NoCPowerW,
	}, nil
}

// markPareto sets Pareto on every point not dominated in
// (AreaOverheadPct, AvgHops): a point is dominated if another point is
// at least as good in both objectives and strictly better in one.
func markPareto(points []Point) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	// Sort by area ascending, then hops ascending; sweep keeps the
	// running best hop count.
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.AreaOverheadPct != pb.AreaOverheadPct {
			return pa.AreaOverheadPct < pb.AreaOverheadPct
		}
		return pa.AvgHops < pb.AvgHops
	})
	bestHops := 1e18
	for _, i := range idx {
		if points[i].AvgHops < bestHops-1e-12 {
			points[i].Pareto = true
			bestHops = points[i].AvgHops
		}
	}
}

// Frontier returns only the Pareto-optimal points, sorted by area.
func Frontier(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].AreaOverheadPct < out[b].AreaOverheadPct
	})
	return out
}

// Best returns the Pareto point with the lowest average hop count
// whose area overhead does not exceed budgetPct — the exhaustive
// counterpart of the greedy customization strategy in package noc.
func Best(points []Point, budgetPct float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.AreaOverheadPct > budgetPct {
			continue
		}
		if !found || p.AvgHops < best.AvgHops ||
			(p.AvgHops == best.AvgHops && p.AreaOverheadPct < best.AreaOverheadPct) {
			best = p
			found = true
		}
	}
	return best, found
}

// CSV renders points as CSV for plotting.
func CSV(points []Point) string {
	var b []byte
	b = append(b, "params,radix,links,diameter,avg_hops,area_overhead_pct,noc_power_w,pareto\n"...)
	for _, p := range points {
		b = append(b, fmt.Sprintf("%q,%d,%d,%d,%.4f,%.2f,%.3f,%v\n",
			p.Params.String(), p.RouterRadix, p.NumLinks, p.Diameter,
			p.AvgHops, p.AreaOverheadPct, p.NoCPowerW, p.Pareto)...)
	}
	return string(b)
}
