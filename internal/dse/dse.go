// Package dse performs design-space exploration over the sparse
// Hamming graph's configuration space. The topology's pitch is that a
// single family exposes 2^(R+C-4) distinct cost-performance points
// (Table I, last column); this package enumerates them (exhaustively
// for small grids, or by neighborhood search for large ones), scores
// each with the fast cost model, and extracts the Pareto frontier of
// (area overhead, average hops) — the model-level proxies for cost and
// performance used by the customization strategy.
package dse

import (
	"fmt"
	"sort"

	"sparsehamming/internal/phys"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// Point is one evaluated sparse Hamming graph configuration.
type Point struct {
	Params          topo.HammingParams
	RouterRadix     int
	NumLinks        int
	Diameter        int
	AvgHops         float64
	AreaOverheadPct float64
	NoCPowerW       float64
	Pareto          bool // on the (area, hops) Pareto frontier
}

// Explore enumerates every sparse Hamming graph configuration of the
// architecture's grid — all subsets of {2..C-1} x {2..R-1} — and
// evaluates each with the cost model. It refuses grids with more than
// maxConfigs configurations; use Frontier's greedy mode for those.
func Explore(arch *tech.Arch, maxConfigs int) ([]Point, error) {
	nr := arch.Cols - 2 // candidate row offsets 2..C-1
	nc := arch.Rows - 2
	if nr < 0 {
		nr = 0
	}
	if nc < 0 {
		nc = 0
	}
	total := 1 << (nr + nc)
	if total > maxConfigs {
		return nil, fmt.Errorf("dse: %d configurations exceed limit %d", total, maxConfigs)
	}
	points := make([]Point, 0, total)
	for mask := 0; mask < total; mask++ {
		var p topo.HammingParams
		for i := 0; i < nr; i++ {
			if mask&(1<<i) != 0 {
				p.SR = append(p.SR, i+2)
			}
		}
		for i := 0; i < nc; i++ {
			if mask&(1<<(nr+i)) != 0 {
				p.SC = append(p.SC, i+2)
			}
		}
		pt, err := evaluate(arch, p)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	markPareto(points)
	return points, nil
}

func evaluate(arch *tech.Arch, p topo.HammingParams) (Point, error) {
	t, err := topo.NewSparseHamming(arch.Rows, arch.Cols, p)
	if err != nil {
		return Point{}, err
	}
	res, err := phys.Evaluate(arch, t)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Params:          p.Clone(),
		RouterRadix:     t.MaxRadix(),
		NumLinks:        t.NumLinks(),
		Diameter:        t.Diameter(),
		AvgHops:         t.AverageHops(),
		AreaOverheadPct: 100 * res.AreaOverhead,
		NoCPowerW:       res.NoCPowerW,
	}, nil
}

// markPareto sets Pareto on every point not dominated in
// (AreaOverheadPct, AvgHops): a point is dominated if another point is
// at least as good in both objectives and strictly better in one.
func markPareto(points []Point) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	// Sort by area ascending, then hops ascending; sweep keeps the
	// running best hop count.
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.AreaOverheadPct != pb.AreaOverheadPct {
			return pa.AreaOverheadPct < pb.AreaOverheadPct
		}
		return pa.AvgHops < pb.AvgHops
	})
	bestHops := 1e18
	for _, i := range idx {
		if points[i].AvgHops < bestHops-1e-12 {
			points[i].Pareto = true
			bestHops = points[i].AvgHops
		}
	}
}

// Frontier returns only the Pareto-optimal points, sorted by area.
func Frontier(points []Point) []Point {
	var out []Point
	for _, p := range points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].AreaOverheadPct < out[b].AreaOverheadPct
	})
	return out
}

// Best returns the Pareto point with the lowest average hop count
// whose area overhead does not exceed budgetPct — the exhaustive
// counterpart of the greedy customization strategy in package noc.
func Best(points []Point, budgetPct float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.AreaOverheadPct > budgetPct {
			continue
		}
		if !found || p.AvgHops < best.AvgHops ||
			(p.AvgHops == best.AvgHops && p.AreaOverheadPct < best.AreaOverheadPct) {
			best = p
			found = true
		}
	}
	return best, found
}

// CSV renders points as CSV for plotting.
func CSV(points []Point) string {
	var b []byte
	b = append(b, "params,radix,links,diameter,avg_hops,area_overhead_pct,noc_power_w,pareto\n"...)
	for _, p := range points {
		b = append(b, fmt.Sprintf("%q,%d,%d,%d,%.4f,%.2f,%.3f,%v\n",
			p.Params.String(), p.RouterRadix, p.NumLinks, p.Diameter,
			p.AvgHops, p.AreaOverheadPct, p.NoCPowerW, p.Pareto)...)
	}
	return string(b)
}
