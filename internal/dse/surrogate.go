package dse

// Surrogate-guided two-stage exploration (the ROADMAP's "orders of
// magnitude faster" path to the paper's Section V customization story
// at full scale):
//
// Stage 1 sweeps the *entire* 2^(R+C-4) configuration space with a
// closed-form surrogate — the phys cost model plus the analytic
// zero-load latency and channel-load saturation bound, honoring the
// sparse Hamming link-latency heterogeneity — at cost-model speed per
// point, as cached campaign jobs (exp.ModeSurrogate).
//
// Stage 2 selects the surrogate-predicted Pareto band (the surrogate
// frontier plus a configurable slack margin, so near-frontier points
// the surrogate slightly misranks are not lost) and pays
// cycle-accurate simulation only for that band, producing a
// simulation-validated frontier and a fidelity report (surrogate vs
// simulated rank correlation; frontier recall against exhaustive
// ground truth when validation is requested).

import (
	"fmt"
	"math"
	"sort"

	"sparsehamming/internal/analytic"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/spec"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// DefaultSlackPct is the default Pareto-band slack margin in percent:
// a configuration stays in the band when its surrogate performance
// score is within this fraction of the best score among
// configurations no more expensive. The value is pinned by the
// fidelity regression test, which requires 100% frontier recall on a
// grid where exhaustive simulation is affordable.
const DefaultSlackPct = 10.0

// EvalSurrogateJob evaluates one exp.ModeSurrogate job: the physical
// cost model plus the combined closed-form performance estimate
// (analytic.Model.Estimate) — zero-load latency and channel-load
// saturation bound under the routed paths and the floorplan's
// heterogeneous link latencies. No simulation runs; a point costs
// roughly as much as a cost-model evaluation. Any registered topology
// family is accepted (the surrogate is not family-specific, unlike
// the sparse Hamming enumeration around it).
func EvalSurrogateJob(j exp.Job) (*exp.Result, error) {
	if j.Mode != exp.ModeSurrogate {
		return nil, fmt.Errorf("dse: surrogate evaluator got mode %q", j.Mode)
	}
	arch, err := spec.ArchForJob(j)
	if err != nil {
		return nil, err
	}
	t, err := topo.ByName(j.Topo, arch.Rows, arch.Cols, j.SR, j.SC)
	if err != nil {
		return nil, err
	}
	cost, err := phys.Evaluate(arch, t)
	if err != nil {
		return nil, err
	}
	rt, err := route.ForName(t, j.Routing)
	if err != nil {
		return nil, err
	}
	est, err := (&analytic.Model{
		Topo:        t,
		Routing:     rt,
		LinkLatency: cost.LinkLatencies,
		RouterDelay: tech.RouterDelay,
		PacketLen:   arch.PacketLenFlits(),
	}).Estimate()
	if err != nil {
		return nil, err
	}
	maxLat := 0
	for _, l := range cost.LinkLatencies {
		if l > maxLat {
			maxLat = l
		}
	}
	params := ""
	if j.Topo == "sparse-hamming" && (len(j.SR) > 0 || len(j.SC) > 0) {
		params = topo.HammingParams{SR: j.SR, SC: j.SC}.String()
	}
	return &exp.Result{
		Topology:               t.Kind,
		Params:                 params,
		RouterRadix:            t.MaxRadix(),
		Diameter:               t.Diameter(),
		AvgHops:                rt.AvgHops(),
		NumLinks:               t.NumLinks(),
		TotalAreaMm2:           cost.TotalAreaMm2,
		AreaOverheadPct:        100 * cost.AreaOverhead,
		TotalPowerW:            cost.TotalPowerW,
		NoCPowerW:              cost.NoCPowerW,
		ChannelUtilization:     cost.ChannelUtilization,
		MaxLinkLatency:         maxLat,
		RoutingName:            rt.Name,
		AnalyticZeroLoad:       est.ZeroLoadLatency,
		AnalyticBoundPct:       100 * est.SaturationBound,
		AnalyticMaxChannelLoad: est.MaxChannelLoad,
		AnalyticAvgChannelLoad: est.AvgChannelLoad,
	}, nil
}

// Options parameterizes a two-stage surrogate-guided exploration.
type Options struct {
	// MaxConfigs caps the enumeration (0 means 2^20). Unlike the
	// classic Explore limit this is a safety valve, not a workflow
	// gate: the surrogate stage is meant to sweep the full space.
	MaxConfigs int

	// SlackPct is the Pareto-band slack margin in percent (see
	// DefaultSlackPct). Zero keeps only the exact surrogate frontier.
	SlackPct float64

	// Quality is the simulation quality tier for band simulations
	// ("" means quick).
	Quality string

	// Seed is the simulation seed for band simulations (0 derives a
	// deterministic per-job seed).
	Seed int64

	// Replicates is the number of simulation seeds per band
	// configuration (0 or 1 means one). Replicate r runs with seed
	// Seed+r; the reported saturation and zero-load latency are the
	// averages over replicates. A single seed's saturation search is
	// quantized to its bisection bracket and two statistically
	// identical configurations can measure a full quantum apart, so
	// single-seed validated frontiers sprout steps that are seed
	// noise, not design signal; averaging replicates washes them out.
	// Each replicate is its own cached campaign job.
	Replicates int

	// Simulate runs stage 2: cycle-accurate simulation of the band.
	Simulate bool

	// Validate additionally simulates *every* configuration to build
	// the exhaustive ground truth and fills Fidelity.FrontierRecall.
	// Implies Simulate. Only affordable on small grids.
	Validate bool
}

// SurrogatePoint is one configuration of a surrogate-guided
// exploration: the cost-model metrics, the closed-form surrogate
// estimates, and — for band members after stage 2 — the simulated
// values.
type SurrogatePoint struct {
	Params      topo.HammingParams `json:"params"`
	RouterRadix int                `json:"router_radix"`
	NumLinks    int                `json:"num_links"`
	Diameter    int                `json:"diameter"`
	AvgHops     float64            `json:"avg_hops"`

	// Cost (phys model).
	AreaOverheadPct float64 `json:"area_overhead_pct"`
	NoCPowerW       float64 `json:"noc_power_w"`

	// Surrogate estimates (analytic model). MaxChannelLoad and
	// AvgChannelLoad are the raw loads behind the capped bound: the
	// ranking score keeps separating configurations after the reported
	// bound saturates at 100% of injection capacity, which is what
	// lets the band stay narrow on richly connected grids.
	SurrogateZeroLoad float64 `json:"surrogate_zero_load"`
	SurrogateBoundPct float64 `json:"surrogate_bound_pct"`
	MaxChannelLoad    float64 `json:"max_channel_load"`
	AvgChannelLoad    float64 `json:"avg_channel_load"`

	// SurrogateFrontier marks the exact surrogate Pareto frontier of
	// (area overhead, surrogate performance); InBand additionally
	// admits points within the slack margin of the frontier.
	SurrogateFrontier bool `json:"surrogate_frontier"`
	InBand            bool `json:"in_band"`

	// Simulated values (stage 2; only for simulated points).
	// SimResolutionPct is the saturation search's measurement
	// resolution — the width of the final bisection bracket, i.e. the
	// finest offered-load step the search distinguished. Two simulated
	// saturations closer than either point's resolution are the same
	// measurement; the validated frontier and the recall metric treat
	// them as ties rather than letting seed noise mint frontier steps.
	Simulated        bool    `json:"simulated,omitempty"`
	SimZeroLoad      float64 `json:"sim_zero_load,omitempty"`
	SimSaturationPct float64 `json:"sim_saturation_pct,omitempty"`
	SimResolutionPct float64 `json:"sim_resolution_pct,omitempty"`
	SimLowerBound    bool    `json:"sim_lower_bound,omitempty"`

	// SimFrontier marks the simulation-validated Pareto frontier of
	// (area overhead, simulated saturation) among simulated points.
	SimFrontier bool `json:"sim_frontier,omitempty"`
}

// interferenceWeight mixes the average channel load into the
// surrogate performance score. The bottleneck load alone is heavily
// quantized on sparse Hamming grids — whole tie classes of
// configurations share one max load, so a frontier-plus-slack band
// degenerates into "everything in the best tie class". The average
// load is a proxy for the allocation-conflict pressure the analytic
// bound ignores and breaks those ties the same way the simulator
// does: within a tie class, lighter average load saturates later.
// 0.4 is calibrated against exhaustive seed-replicated 6x6
// validation (the fidelity regression test pins the resulting
// recall).
const interferenceWeight = 0.4

// perfScore is the surrogate performance score used for ranking and
// band selection: the uncapped analytic throughput with an
// interference correction, 1/(MaxChannelLoad + w*AvgChannelLoad).
func (p *SurrogatePoint) perfScore() float64 {
	den := p.MaxChannelLoad + interferenceWeight*p.AvgChannelLoad
	if den <= 0 {
		return math.Inf(1)
	}
	return 1 / den
}

// Fidelity reports how well the surrogate stage predicted the
// simulated outcome — the numbers that justify simulating only the
// band.
type Fidelity struct {
	// Configs is the full enumeration size; Band the number of
	// configurations selected for simulation; Simulated the number
	// actually simulated (equal to Configs under Validate).
	Configs   int `json:"configs"`
	Band      int `json:"band"`
	Simulated int `json:"simulated"`

	// SimsSavedX is Configs/Band: the factor by which band selection
	// reduced the simulations an exhaustive sweep would pay.
	SimsSavedX float64 `json:"sims_saved_x"`

	// RankCorr is the Spearman rank correlation between the surrogate
	// performance score and the simulated saturation throughput over
	// the simulated band.
	RankCorr float64 `json:"rank_corr"`

	// FrontierRecall is the fraction of the exhaustive ground-truth
	// frontier the band's validated frontier covers (a ground-truth
	// point counts as recalled when some band point matches or beats
	// it in both objectives). Only meaningful when Validated is set.
	FrontierRecall float64 `json:"frontier_recall"`

	// Validated reports whether FrontierRecall was measured against
	// exhaustive simulation (Options.Validate).
	Validated bool `json:"validated"`
}

// Exploration is the outcome of a surrogate-guided exploration.
type Exploration struct {
	// Scenario/Rows/Cols identify the explored architecture.
	Scenario string `json:"scenario"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`

	// SlackPct is the band margin the exploration ran with;
	// Replicates the number of simulation seeds averaged per
	// simulated configuration (at least 1).
	SlackPct   float64 `json:"slack_pct"`
	Replicates int     `json:"replicates"`

	// Points holds every enumerated configuration in enumeration
	// order.
	Points []SurrogatePoint `json:"points"`

	// Fidelity summarizes the surrogate's predictive quality and the
	// simulations saved.
	Fidelity Fidelity `json:"fidelity"`

	// Report aggregates the campaign reports of both stages — its
	// Computed count is the number of newly evaluated jobs, which a
	// warm cache drives to zero.
	Report exp.Report `json:"report"`
}

// Band returns the band members sorted by area overhead.
func (ex *Exploration) Band() []SurrogatePoint {
	return selectPoints(ex.Points, func(p *SurrogatePoint) bool { return p.InBand })
}

// SurrogateFrontier returns the exact surrogate Pareto frontier
// sorted by area overhead.
func (ex *Exploration) SurrogateFrontier() []SurrogatePoint {
	return selectPoints(ex.Points, func(p *SurrogatePoint) bool { return p.SurrogateFrontier })
}

// SimFrontier returns the simulation-validated Pareto frontier sorted
// by area overhead (empty when stage 2 did not run).
func (ex *Exploration) SimFrontier() []SurrogatePoint {
	return selectPoints(ex.Points, func(p *SurrogatePoint) bool { return p.SimFrontier })
}

// selectPoints filters points and sorts them by area overhead
// ascending (ties: higher surrogate score first).
func selectPoints(points []SurrogatePoint, keep func(*SurrogatePoint) bool) []SurrogatePoint {
	var out []SurrogatePoint
	for i := range points {
		if keep(&points[i]) {
			out = append(out, points[i])
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].AreaOverheadPct != out[b].AreaOverheadPct {
			return out[a].AreaOverheadPct < out[b].AreaOverheadPct
		}
		return out[a].perfScore() > out[b].perfScore()
	})
	return out
}

// ExploreSurrogate runs the two-stage surrogate-guided exploration of
// the architecture's full sparse Hamming space on the runner (nil
// means the default dse runner: all cores, no cache). The runner's
// evaluator must handle exp.ModeSurrogate — both dse.EvalJob and the
// noc toolchain evaluator do — and, when opts.Simulate or
// opts.Validate is set, exp.ModePredict, which only the noc evaluator
// (noc.NewRunner) does.
//
// Every job of both stages is an ordinary cached campaign job, so
// repeating an exploration — or re-running it with a wider slack, or
// following a surrogate-only pass with a simulating one — recomputes
// nothing that was already computed.
func ExploreSurrogate(arch *tech.Arch, opts Options, r *exp.Runner) (*Exploration, error) {
	params, err := topo.HammingSpace(arch.Rows, arch.Cols, opts.MaxConfigs)
	if err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	if opts.SlackPct < 0 || opts.SlackPct >= 100 {
		return nil, fmt.Errorf("dse: slack margin %g%% outside [0, 100)", opts.SlackPct)
	}
	if opts.Quality != "" {
		known := false
		for _, q := range spec.QualityNames() {
			if opts.Quality == q {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("dse: unknown quality %q (want one of %v)", opts.Quality, spec.QualityNames())
		}
	}
	scenario, override, err := specForArch(arch)
	if err != nil {
		return nil, err
	}
	if r == nil {
		r = NewRunner(0, nil)
	}

	// Stage 1: surrogate-sweep the full space.
	jobs := make([]exp.Job, len(params))
	for i, p := range params {
		jobs[i] = surrogateJob(scenario, arch, override, p)
	}
	results, rep, err := r.Run(jobs)
	if err != nil {
		return nil, fmt.Errorf("dse: surrogate campaign: %w", err)
	}
	reps := opts.Replicates
	if reps < 1 {
		reps = 1
	}
	ex := &Exploration{
		Scenario:   scenario,
		Rows:       arch.Rows,
		Cols:       arch.Cols,
		SlackPct:   opts.SlackPct,
		Replicates: reps,
		Points:     make([]SurrogatePoint, len(params)),
		Report:     rep,
	}
	for i, res := range results {
		ex.Points[i] = SurrogatePoint{
			Params:            params[i].Clone(),
			RouterRadix:       res.RouterRadix,
			NumLinks:          res.NumLinks,
			Diameter:          res.Diameter,
			AvgHops:           res.AvgHops,
			AreaOverheadPct:   res.AreaOverheadPct,
			NoCPowerW:         res.NoCPowerW,
			SurrogateZeroLoad: res.AnalyticZeroLoad,
			SurrogateBoundPct: res.AnalyticBoundPct,
			MaxChannelLoad:    res.AnalyticMaxChannelLoad,
			AvgChannelLoad:    res.AnalyticAvgChannelLoad,
		}
	}
	markBand(ex.Points, opts.SlackPct)
	ex.Fidelity.Configs = len(ex.Points)
	for i := range ex.Points {
		if ex.Points[i].InBand {
			ex.Fidelity.Band++
		}
	}
	if ex.Fidelity.Band > 0 {
		ex.Fidelity.SimsSavedX = float64(ex.Fidelity.Configs) / float64(ex.Fidelity.Band)
	}
	if !opts.Simulate && !opts.Validate {
		return ex, nil
	}

	// Stage 2: simulate the band (everything under Validate), one
	// cached campaign job per (configuration, replicate seed).
	var sel []int
	for i := range ex.Points {
		if opts.Validate || ex.Points[i].InBand {
			sel = append(sel, i)
		}
	}
	simJobs := make([]exp.Job, 0, len(sel)*reps)
	for _, i := range sel {
		for rep := 0; rep < reps; rep++ {
			j := surrogateJob(scenario, arch, override, ex.Points[i].Params)
			j.Mode = exp.ModePredict
			j.Quality = opts.Quality
			j.Seed = opts.Seed + int64(rep)
			simJobs = append(simJobs, j)
		}
	}
	simResults, simRep, err := r.Run(simJobs)
	if err != nil {
		return nil, fmt.Errorf("dse: band simulation campaign: %w", err)
	}
	mergeReport(&ex.Report, simRep)
	for k, i := range sel {
		p := &ex.Points[i]
		p.Simulated = true
		for rep := 0; rep < reps; rep++ {
			res := simResults[k*reps+rep]
			p.SimZeroLoad += res.ZeroLoadLatency / float64(reps)
			p.SimSaturationPct += res.SaturationPct / float64(reps)
			// The average of quantized measurements is finer than one
			// bracket, but each contributing search still only resolved
			// its own bracket: keep the coarsest as the tolerance.
			if res.SaturationResolutionPct > p.SimResolutionPct {
				p.SimResolutionPct = res.SaturationResolutionPct
			}
			if res.SaturationLowerBound {
				p.SimLowerBound = true
			}
		}
	}
	ex.Fidelity.Simulated = len(sel)
	markSimFrontier(ex.Points, func(p *SurrogatePoint) bool { return p.Simulated && p.InBand })
	ex.Fidelity.RankCorr = bandRankCorr(ex.Points)
	if opts.Validate {
		ex.Fidelity.Validated = true
		ex.Fidelity.FrontierRecall = frontierRecall(ex.Points)
	}
	return ex, nil
}

// surrogateJob builds the stage-1 campaign job for one configuration.
func surrogateJob(scenario string, arch *tech.Arch, override *exp.ArchOverride, p topo.HammingParams) exp.Job {
	return exp.Job{
		Mode:     exp.ModeSurrogate,
		Scenario: scenario,
		Rows:     arch.Rows,
		Cols:     arch.Cols,
		Arch:     override,
		Topo:     "sparse-hamming",
		SR:       p.SR,
		SC:       p.SC,
	}
}

// mergeReport accumulates a second campaign report into dst: job
// counts add up, wall-clock times add up (the stages ran back to
// back).
func mergeReport(dst *exp.Report, rep exp.Report) {
	dst.Jobs += rep.Jobs
	dst.Unique += rep.Unique
	dst.CacheHits += rep.CacheHits
	dst.Shared += rep.Shared
	dst.Computed += rep.Computed
	dst.Failed += rep.Failed
	dst.Wall += rep.Wall
	dst.Compute += rep.Compute
}

// markBand marks the surrogate frontier and the slack band on the
// (area overhead, surrogate performance) plane: sweeping by area
// ascending, a point is on the frontier when its score strictly
// improves on every cheaper point's, and in the band when its score
// is within slackPct percent of the best score among points no more
// expensive. Frontier points are always in the band.
func markBand(points []SurrogatePoint, slackPct float64) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := &points[idx[a]], &points[idx[b]]
		if pa.AreaOverheadPct != pb.AreaOverheadPct {
			return pa.AreaOverheadPct < pb.AreaOverheadPct
		}
		return pa.perfScore() > pb.perfScore()
	})
	keep := 1 - slackPct/100
	best := 0.0
	for _, i := range idx {
		p := &points[i]
		score := p.perfScore()
		if score > best*(1+1e-12) || best == 0 {
			p.SurrogateFrontier = true
		}
		if score >= best*keep {
			p.InBand = true
		}
		if score > best {
			best = score
		}
	}
}

// simTol is the comparison tolerance between two simulated
// saturation measurements: the coarser of the two search resolutions
// (a difference inside either measurement's final bisection bracket
// is not a measured difference).
func simTol(a, b *SurrogatePoint) float64 {
	tol := a.SimResolutionPct
	if b != nil && b.SimResolutionPct > tol {
		tol = b.SimResolutionPct
	}
	return tol
}

// markSimFrontier marks the Pareto frontier of (area overhead,
// simulated saturation) among the eligible points. A point only
// opens a new frontier step when it beats the running best by more
// than the measurement resolution (simTol) — sweeping cheapest
// first, a more expensive point whose gain is within the bisection
// quantum of a cheaper one is measurement noise, not a trade-off.
func markSimFrontier(points []SurrogatePoint, eligible func(*SurrogatePoint) bool) {
	idx := make([]int, 0, len(points))
	for i := range points {
		points[i].SimFrontier = false
		if eligible(&points[i]) {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := &points[idx[a]], &points[idx[b]]
		if pa.AreaOverheadPct != pb.AreaOverheadPct {
			return pa.AreaOverheadPct < pb.AreaOverheadPct
		}
		return pa.SimSaturationPct > pb.SimSaturationPct
	})
	best := -1
	for _, i := range idx {
		var bp *SurrogatePoint
		bestSat := -1.0
		if best >= 0 {
			bp = &points[best]
			bestSat = bp.SimSaturationPct
		}
		if points[i].SimSaturationPct > bestSat+simTol(&points[i], bp)+1e-9 {
			points[i].SimFrontier = true
		}
		if points[i].SimSaturationPct > bestSat {
			best = i
		}
	}
}

// bandRankCorr computes the Spearman rank correlation between the
// surrogate performance score and the simulated saturation throughput
// over the simulated band points (ties get averaged ranks). Returns 0
// when fewer than two points were simulated in the band.
func bandRankCorr(points []SurrogatePoint) float64 {
	var xs, ys []float64
	for i := range points {
		if points[i].Simulated && points[i].InBand {
			xs = append(xs, points[i].perfScore())
			ys = append(ys, points[i].SimSaturationPct)
		}
	}
	if len(xs) < 2 {
		return 0
	}
	rx, ry := ranks(xs), ranks(ys)
	var mx, my float64
	for i := range rx {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(len(rx))
	my /= float64(len(ry))
	var num, dx, dy float64
	for i := range rx {
		num += (rx[i] - mx) * (ry[i] - my)
		dx += (rx[i] - mx) * (rx[i] - mx)
		dy += (ry[i] - my) * (ry[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// ranks assigns 1-based ranks with averaged ties.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// frontierRecall measures, against exhaustive simulation, the
// fraction of ground-truth frontier points the band covers: each
// point of the exhaustive (area, simulated saturation) frontier
// counts as recalled when some band point matches or beats it in
// both objectives. The saturation comparison allows the measurement
// resolution (simTol): a band point within one bisection quantum of
// a ground-truth point is the same measured saturation at no more
// area, so the band lost nothing the search could resolve.
func frontierRecall(points []SurrogatePoint) float64 {
	gt := make([]SurrogatePoint, len(points))
	copy(gt, points)
	markSimFrontier(gt, func(p *SurrogatePoint) bool { return p.Simulated })
	var total, hit int
	for i := range gt {
		if !gt[i].SimFrontier {
			continue
		}
		total++
		for j := range points {
			p := &points[j]
			if p.InBand && p.Simulated &&
				p.AreaOverheadPct <= gt[i].AreaOverheadPct+1e-9 &&
				p.SimSaturationPct >= gt[i].SimSaturationPct-simTol(p, &gt[i])-1e-9 {
				hit++
				break
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// SurrogateCSV renders an exploration's points as CSV for plotting.
func SurrogateCSV(points []SurrogatePoint) string {
	var b []byte
	b = append(b, "params,radix,links,diameter,avg_hops,area_overhead_pct,noc_power_w,"+
		"surrogate_zero_load,surrogate_bound_pct,max_channel_load,avg_channel_load,"+
		"surrogate_frontier,in_band,simulated,sim_zero_load,sim_saturation_pct,sim_resolution_pct,sim_frontier\n"...)
	for i := range points {
		p := &points[i]
		b = append(b, fmt.Sprintf("%q,%d,%d,%d,%.4f,%.2f,%.3f,%.2f,%.2f,%.4f,%.4f,%v,%v,%v,%.2f,%.2f,%.2f,%v\n",
			p.Params.String(), p.RouterRadix, p.NumLinks, p.Diameter, p.AvgHops,
			p.AreaOverheadPct, p.NoCPowerW,
			p.SurrogateZeroLoad, p.SurrogateBoundPct, p.MaxChannelLoad, p.AvgChannelLoad,
			p.SurrogateFrontier, p.InBand, p.Simulated,
			p.SimZeroLoad, p.SimSaturationPct, p.SimResolutionPct, p.SimFrontier)...)
	}
	return string(b)
}
