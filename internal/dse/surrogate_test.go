package dse_test

// External test package: the fidelity regression needs the full noc
// toolchain runner for stage 2 (noc imports dse, so the in-package
// test cannot).

import (
	"strings"
	"testing"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
)

func arch4x4() *tech.Arch {
	a := tech.Scenario(tech.ScenarioA)
	a.Rows, a.Cols = 4, 4
	return a
}

// TestSurrogateSweepMarksBand checks the surrogate-only stage: full
// enumeration, a non-empty frontier inside a non-empty band, and band
// membership monotone in slack.
func TestSurrogateSweepMarksBand(t *testing.T) {
	ex, err := dse.ExploreSurrogate(arch4x4(), dse.Options{MaxConfigs: 1 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Points) != 16 {
		t.Fatalf("enumerated %d configurations, want 2^(4+4-4) = 16", len(ex.Points))
	}
	if ex.Fidelity.Configs != 16 || ex.Fidelity.Band == 0 {
		t.Fatalf("fidelity counters %+v", ex.Fidelity)
	}
	frontier := ex.SurrogateFrontier()
	if len(frontier) == 0 {
		t.Fatal("empty surrogate frontier")
	}
	for _, p := range frontier {
		if !p.InBand {
			t.Errorf("frontier point %s not in band", p.Params.String())
		}
	}
	if band := ex.Band(); len(band) < len(frontier) {
		t.Errorf("band (%d) smaller than frontier (%d)", len(band), len(frontier))
	}

	wide, err := dse.ExploreSurrogate(arch4x4(), dse.Options{MaxConfigs: 1 << 10, SlackPct: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Fidelity.Band < ex.Fidelity.Band {
		t.Errorf("slack 50%% band (%d) smaller than slack 0%% band (%d)",
			wide.Fidelity.Band, ex.Fidelity.Band)
	}
}

// TestSurrogateFidelityRegression is the pin on DefaultSlackPct: on a
// grid small enough to simulate exhaustively, the surrogate band at
// the default slack must recall 100% of the exhaustive simulated
// frontier while still skipping a real fraction of the simulations.
func TestSurrogateFidelityRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive band simulation in short mode")
	}
	runner := noc.NewRunner(0, nil)
	ex, err := dse.ExploreSurrogate(arch4x4(), dse.Options{
		MaxConfigs: 1 << 10,
		SlackPct:   dse.DefaultSlackPct,
		Validate:   true,
	}, runner)
	if err != nil {
		t.Fatal(err)
	}
	f := ex.Fidelity
	if f.Configs != 16 || f.Simulated != 16 {
		t.Fatalf("validate run must simulate all 16 configs, got %+v", f)
	}
	if !f.Validated {
		t.Fatal("Validated not set")
	}
	if f.FrontierRecall != 1.0 {
		t.Errorf("frontier recall %.2f at default slack %.0f%%, want 1.0 (the band is missing "+
			"ground-truth frontier points; widen DefaultSlackPct or fix the surrogate)",
			f.FrontierRecall, dse.DefaultSlackPct)
	}
	if f.Band >= f.Configs {
		t.Errorf("band %d of %d configs saves nothing", f.Band, f.Configs)
	}
	if f.SimsSavedX <= 1 {
		t.Errorf("sims saved %.2fx, want > 1", f.SimsSavedX)
	}
	if f.RankCorr < -1 || f.RankCorr > 1 {
		t.Errorf("rank correlation %.3f outside [-1, 1]", f.RankCorr)
	}
	if len(ex.SimFrontier()) == 0 {
		t.Error("empty simulation-validated frontier")
	}
	for _, p := range ex.SimFrontier() {
		if !p.Simulated || !p.InBand {
			t.Errorf("sim-frontier point %s not a simulated band member", p.Params.String())
		}
	}
}

// TestExploreSurrogateCaches runs the same exploration twice on one
// cache-backed runner: the repeat must answer entirely from cache.
func TestExploreSurrogateCaches(t *testing.T) {
	runner := dse.NewRunner(0, exp.NewCache())
	first, err := dse.ExploreSurrogate(arch4x4(), dse.Options{MaxConfigs: 1 << 10}, runner)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.Computed == 0 {
		t.Fatal("cold run computed nothing")
	}
	again, err := dse.ExploreSurrogate(arch4x4(), dse.Options{MaxConfigs: 1 << 10}, runner)
	if err != nil {
		t.Fatal(err)
	}
	if again.Report.Computed != 0 {
		t.Errorf("repeat computed %d jobs, want 0 (all cache hits)", again.Report.Computed)
	}
	if again.Report.CacheHits != again.Report.Jobs {
		t.Errorf("repeat: %d cache hits over %d jobs", again.Report.CacheHits, again.Report.Jobs)
	}
}

// TestEvalSurrogateJobRejectsOtherModes pins the evaluator's mode
// check.
func TestEvalSurrogateJobRejectsOtherModes(t *testing.T) {
	_, err := dse.EvalSurrogateJob(exp.Job{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"})
	if err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("want mode error, got %v", err)
	}
}

// TestSurrogateCSVHeader keeps the plotting CSV stable.
func TestSurrogateCSVHeader(t *testing.T) {
	csv := dse.SurrogateCSV(nil)
	if !strings.HasPrefix(csv, "params,") || !strings.Contains(csv, "sim_frontier") {
		t.Fatalf("unexpected CSV header %q", csv)
	}
}

// TestSurrogateReplicates pins the replicated stage 2: each band
// configuration runs Replicates jobs (distinct seeds, all cached
// individually), the recorded saturation is the replicate average,
// and the measurement resolution survives into the points.
func TestSurrogateReplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated band simulation in -short mode")
	}
	cache := exp.NewCache()
	runner := noc.NewRunner(0, cache)
	one, err := dse.ExploreSurrogate(arch4x4(), dse.Options{
		MaxConfigs: 1 << 10, SlackPct: 0, Simulate: true,
	}, runner)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dse.ExploreSurrogate(arch4x4(), dse.Options{
		MaxConfigs: 1 << 10, SlackPct: 0, Simulate: true, Replicates: 3,
	}, runner)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicates != 3 || one.Replicates != 1 {
		t.Fatalf("replicates recorded as %d / %d, want 3 / 1", rep.Replicates, one.Replicates)
	}
	band := one.Fidelity.Band
	if got, want := rep.Report.Jobs, 16+3*band; got != want {
		t.Errorf("replicated exploration ran %d jobs, want %d (16 surrogate + 3x%d band)", got, want, band)
	}
	// Replicate 0 shares the single-run seed, so its jobs were cached.
	if rep.Report.Computed != 2*band {
		t.Errorf("replicated exploration computed %d jobs, want %d new (replicates 1 and 2)", rep.Report.Computed, 2*band)
	}
	for i := range rep.Points {
		r := &rep.Points[i]
		if !r.Simulated {
			continue
		}
		if r.SimResolutionPct <= 0 {
			t.Errorf("%s: no measurement resolution on replicated point", r.Params.String())
		}
		if r.SimSaturationPct <= 0 {
			t.Errorf("%s: replicated saturation not recorded", r.Params.String())
		}
	}
}
