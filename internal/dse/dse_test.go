package dse

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// smallArch returns a scenario-a-like architecture on a small grid so
// exhaustive enumeration stays fast (2^(R+C-4) configurations).
func smallArch(rows, cols int) *tech.Arch {
	a := tech.Scenario(tech.ScenarioA)
	a.Rows, a.Cols = rows, cols
	return a
}

func TestExploreEnumeratesAll(t *testing.T) {
	// 4x5 grid: 2^(4+5-4) = 32 configurations.
	arch := smallArch(4, 5)
	points, err := Explore(arch, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 32 {
		t.Fatalf("explored %d configs, want 32", len(points))
	}
	// All parameter sets distinct.
	seen := map[string]bool{}
	for _, p := range points {
		key := p.Params.String()
		if seen[key] {
			t.Fatalf("duplicate configuration %s", key)
		}
		seen[key] = true
	}
	// The mesh (empty params) and the flattened butterfly (full
	// params) must both be present.
	if !seen["SR=[] SC=[]"] {
		t.Error("mesh configuration missing")
	}
	if !seen["SR=[2 3 4] SC=[2 3]"] {
		t.Error("full butterfly configuration missing")
	}
}

func TestExploreRejectsHugeGrids(t *testing.T) {
	arch := smallArch(16, 16)
	if _, err := Explore(arch, 1<<12); err == nil {
		t.Error("2^28 configurations should exceed the limit")
	}
}

func TestParetoFrontier(t *testing.T) {
	arch := smallArch(4, 4)
	points, err := Explore(arch, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	front := Frontier(points)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	// Frontier is sorted by area and strictly improving in hops.
	for i := 1; i < len(front); i++ {
		if front[i].AreaOverheadPct < front[i-1].AreaOverheadPct {
			t.Fatal("frontier not sorted by area")
		}
		if front[i].AvgHops >= front[i-1].AvgHops {
			t.Fatal("frontier not strictly improving in hops")
		}
	}
	// No frontier point is dominated by any point.
	for _, f := range front {
		for _, p := range points {
			if p.AreaOverheadPct <= f.AreaOverheadPct && p.AvgHops < f.AvgHops-1e-12 {
				t.Fatalf("frontier point %v dominated by %v", f.Params, p.Params)
			}
		}
	}
	// The mesh is the cheapest point, hence always on the frontier.
	if front[0].Params.String() != "SR=[] SC=[]" {
		t.Errorf("cheapest frontier point = %v, want the mesh", front[0].Params)
	}
}

func TestBestUnderBudget(t *testing.T) {
	arch := smallArch(4, 4)
	points, err := Explore(arch, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := Best(points, 40)
	if !ok {
		t.Fatal("no configuration within budget")
	}
	if best.AreaOverheadPct > 40 {
		t.Errorf("best exceeds budget: %.1f%%", best.AreaOverheadPct)
	}
	// Nothing within budget has fewer hops.
	for _, p := range points {
		if p.AreaOverheadPct <= 40 && p.AvgHops < best.AvgHops-1e-12 {
			t.Errorf("%v has %.3f hops < best %.3f within budget", p.Params, p.AvgHops, best.AvgHops)
		}
	}
	// An impossible budget yields no result.
	if _, ok := Best(points, -1); ok {
		t.Error("negative budget should find nothing")
	}
}

// TestGreedyNearExhaustive cross-validates the paper's greedy
// customization strategy (package noc) against exhaustive search:
// on a small grid the greedy result must be within 15% of the
// exhaustive optimum's average hops.
func TestGreedyNearExhaustive(t *testing.T) {
	arch := smallArch(5, 5)
	points, err := Explore(arch, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := Best(points, 40)
	if !ok {
		t.Fatal("no configuration within budget")
	}
	greedy := greedyHops(t, arch, 40)
	if greedy > best.AvgHops*1.15 {
		t.Errorf("greedy %.3f hops, exhaustive optimum %.3f: gap too large", greedy, best.AvgHops)
	}
}

// greedyHops mirrors noc.Customize's accept loop without importing it
// (dse must stay independent of noc); it uses the same
// hops-per-area-scoring on the cost model.
func greedyHops(t *testing.T, arch *tech.Arch, budget float64) float64 {
	t.Helper()
	cur := topo.HammingParams{}
	curPt, err := evaluate(arch, cur)
	if err != nil {
		t.Fatal(err)
	}
	for {
		var best *Point
		var bestScore float64
		tryOne := func(p topo.HammingParams) {
			pt, err := evaluate(arch, p)
			if err != nil {
				t.Fatal(err)
			}
			if pt.AreaOverheadPct > budget || pt.AvgHops >= curPt.AvgHops {
				return
			}
			area := pt.AreaOverheadPct - curPt.AreaOverheadPct
			if area < 0.01 {
				area = 0.01
			}
			score := (curPt.AvgHops - pt.AvgHops) / area
			if best == nil || score > bestScore {
				best, bestScore = &pt, score
			}
		}
		for x := 2; x < arch.Cols; x++ {
			if !contains(cur.SR, x) {
				p := cur.Clone()
				p.SR = append(p.SR, x)
				tryOne(p)
			}
		}
		for x := 2; x < arch.Rows; x++ {
			if !contains(cur.SC, x) {
				p := cur.Clone()
				p.SC = append(p.SC, x)
				tryOne(p)
			}
		}
		if best == nil {
			return curPt.AvgHops
		}
		cur, curPt = best.Params, *best
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// TestExploreWithCacheAndParallel checks the campaign integration:
// a parallel exploration equals the serial one, and a repeated run on
// a persisted cache recomputes nothing.
func TestExploreWithCacheAndParallel(t *testing.T) {
	arch := smallArch(4, 4)
	serial, err := ExploreWith(arch, 1<<10, NewRunner(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExploreWith(arch, 1<<10, NewRunner(8, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel exploration differs from serial")
	}

	path := filepath.Join(t.TempDir(), "dse.json")
	cache, err := exp.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExploreWith(arch, 1<<10, NewRunner(0, cache)); err != nil {
		t.Fatal(err)
	}
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	cache2, err := exp.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ExploreWith(arch, 1<<10, NewRunner(0, cache2))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache2.Stats()
	if misses != 0 || hits != 16 {
		t.Errorf("repeated exploration: %d hits, %d misses, want 16/0", hits, misses)
	}
	if !reflect.DeepEqual(serial, again) {
		t.Error("cached exploration differs from computed one")
	}
}

// TestExploreCustomArchFallback pins the guard against silently
// evaluating the wrong architecture: a preset customized beyond its
// grid cannot become a serialized job spec, so exploration falls
// back to direct evaluation of the architecture actually passed —
// and its results must reflect the customization.
func TestExploreCustomArchFallback(t *testing.T) {
	base := smallArch(4, 4)
	basePoints, err := Explore(base, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	tweaked := smallArch(4, 4)
	tweaked.EndpointGE = 2 * tweaked.EndpointGE
	tweakedPoints, err := Explore(tweaked, 1<<10)
	if err != nil {
		t.Fatalf("customized preset must still be explorable: %v", err)
	}
	if len(tweakedPoints) != len(basePoints) {
		t.Fatalf("%d points for the customized arch, want %d", len(tweakedPoints), len(basePoints))
	}
	// Bigger endpoints shrink the relative NoC overhead; identical
	// numbers would mean the fallback evaluated the pristine preset.
	if tweakedPoints[1].AreaOverheadPct == basePoints[1].AreaOverheadPct {
		t.Error("customized architecture was ignored")
	}
	// Renamed architectures (not a preset at all) work the same way.
	bespoke := smallArch(4, 4)
	bespoke.Name = "bespoke"
	if _, err := Explore(bespoke, 1<<10); err != nil {
		t.Errorf("non-preset architecture must fall back, got %v", err)
	}
}

// TestExploreOverrideRunsAsCampaign pins the arch-override upgrade:
// a preset customized in its endpoint budget (not just its grid) now
// runs as a cached, parallel campaign — jobs carry the override and
// memoize — and produces exactly the points the direct serial
// evaluation computes.
func TestExploreOverrideRunsAsCampaign(t *testing.T) {
	tweaked := smallArch(4, 4)
	tweaked.EndpointGE = 2 * tweaked.EndpointGE

	scenario, ov, err := specForArch(tweaked)
	if err != nil {
		t.Fatalf("endpoint tweak must be serializable: %v", err)
	}
	if scenario == "" || ov == nil || ov.EndpointGE != tweaked.EndpointGE {
		t.Fatalf("specForArch = %q, %+v", scenario, ov)
	}

	cache := exp.NewCache()
	campaign, err := ExploreWith(tweaked, 1<<10, NewRunner(0, cache))
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("campaign path not taken: nothing was cached")
	}

	// Force the serial fallback path by renaming the architecture.
	bespoke := smallArch(4, 4)
	bespoke.EndpointGE = tweaked.EndpointGE
	bespoke.Name = "bespoke"
	if _, _, err := specForArch(bespoke); err == nil {
		t.Fatal("renamed architecture must not serialize")
	}
	serial, err := Explore(bespoke, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaign, serial) {
		t.Error("campaign results differ from the serial fallback")
	}
}

func TestEvalJobRejectsForeignJobs(t *testing.T) {
	bad := []exp.Job{
		{Mode: exp.ModePredict, Scenario: "a", Topo: "sparse-hamming"},
		{Mode: exp.ModeCost, Scenario: "a", Topo: "mesh"},
		{Mode: exp.ModeCost, Scenario: "z", Topo: "sparse-hamming"},
	}
	for _, j := range bad {
		if _, err := EvalJob(j); err == nil {
			t.Errorf("EvalJob(%v) should fail", j)
		}
	}
}

func TestCSV(t *testing.T) {
	arch := smallArch(3, 3)
	points, err := Explore(arch, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	out := CSV(points)
	if !strings.HasPrefix(out, "params,radix") {
		t.Error("missing header")
	}
	if strings.Count(out, "\n") != len(points)+1 {
		t.Errorf("csv has %d lines for %d points", strings.Count(out, "\n"), len(points))
	}
}
