package tech

import (
	"math"
	"testing"
)

func TestWiresToMmPaperExample(t *testing.T) {
	// The worked example from Section IV-B1: horizontal layers with
	// pitches 40, 50, 60 nm; vertical layers 45, 55 nm.
	n := &Node{
		Name:                "example",
		GateAreaUm2:         1,
		HorizontalPitchesNm: []float64{40, 50, 60},
		VerticalPitchesNm:   []float64{45, 55},
		LogicPowerWPerMm2:   1,
		WirePowerWPerMm2:    1,
		WireDelaySPerMm:     1e-12,
	}
	// f^H(x) = x*1e-6 / (1/40 + 1/50 + 1/60)
	wantH := 1000 * 1e-6 / (1.0/40 + 1.0/50 + 1.0/60)
	if got := n.HWiresToMm(1000); math.Abs(got-wantH) > 1e-12 {
		t.Errorf("HWiresToMm(1000) = %v, want %v", got, wantH)
	}
	wantV := 1000 * 1e-6 / (1.0/45 + 1.0/55)
	if got := n.VWiresToMm(1000); math.Abs(got-wantV) > 1e-12 {
		t.Errorf("VWiresToMm(1000) = %v, want %v", got, wantV)
	}
}

func TestGEToMm2RoundTrip(t *testing.T) {
	n := Node22nm()
	for _, ge := range []float64{1, 1e3, 35e6} {
		mm2 := n.GEToMm2(ge)
		if back := n.Mm2ToGE(mm2); math.Abs(back-ge)/ge > 1e-12 {
			t.Errorf("round trip %v -> %v -> %v", ge, mm2, back)
		}
	}
}

func TestNode22nmPlausibility(t *testing.T) {
	n := Node22nm()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// A 35 MGE KNC-like tile should be on the order of 10 mm^2
	// (KNC: 62 tiles on a ~700 mm^2 die).
	tile := n.GEToMm2(35e6)
	if tile < 8 || tile > 15 {
		t.Errorf("35 MGE tile area = %v mm^2, want ~10", tile)
	}
	// Signal should cross a 10 mm chip within a couple of ns.
	d := n.WireDelay(10)
	if d < 0.2e-9 || d > 2e-9 {
		t.Errorf("10 mm wire delay = %v s, implausible", d)
	}
}

func TestProtocolAXI(t *testing.T) {
	p := ProtocolAXI()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := p.BWToWires(512)
	if w < 512 {
		t.Errorf("BWToWires(512) = %v, must exceed payload width", w)
	}
	if w != math.Ceil(w) {
		t.Errorf("BWToWires must be integral, got %v", w)
	}
	// Router area must grow superlinearly with radix (principle 1:
	// quadratic crossbar term).
	a5 := p.RouterAreaGE(5, 5, 512)
	a10 := p.RouterAreaGE(10, 10, 512)
	a15 := p.RouterAreaGE(15, 15, 512)
	if a10 <= a5 || a15 <= a10 {
		t.Fatal("router area not increasing in radix")
	}
	if (a15 - a10) <= (a10 - a5) {
		t.Error("router area not convex in radix (crossbar term should dominate)")
	}
}

func TestRouterAreaScalesWithBandwidth(t *testing.T) {
	p := ProtocolAXI()
	if p.RouterAreaGE(5, 5, 512) <= p.RouterAreaGE(5, 5, 64) {
		t.Error("router area must grow with bandwidth")
	}
}

func TestScenarios(t *testing.T) {
	for _, id := range AllScenarios() {
		a := Scenario(id)
		if a == nil {
			t.Fatalf("Scenario(%q) = nil", id)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("scenario %s: %v", id, err)
		}
	}
	a := Scenario(ScenarioA)
	if a.NumTiles() != 64 || a.EndpointGE != 35e6 || a.CoresPerTile != 1 {
		t.Errorf("scenario a mismatch: %+v", a)
	}
	b := Scenario(ScenarioB)
	if b.NumTiles() != 64 || b.EndpointGE != 70e6 || b.CoresPerTile != 2 {
		t.Errorf("scenario b mismatch: %+v", b)
	}
	c := Scenario(ScenarioC)
	if c.NumTiles() != 128 || c.EndpointGE != 35e6 {
		t.Errorf("scenario c mismatch: %+v", c)
	}
	d := Scenario(ScenarioD)
	if d.NumTiles() != 128 || d.EndpointGE != 70e6 || d.CoresPerTile != 2 {
		t.Errorf("scenario d mismatch: %+v", d)
	}
	if Scenario("x") != nil {
		t.Error("unknown scenario should return nil")
	}
}

func TestScenarioCGridAllowsSlimNoC(t *testing.T) {
	// 128 tiles must be arranged 8x16 so that SlimNoC (2*8^2) applies.
	c := Scenario(ScenarioC)
	if c.Rows != 8 || c.Cols != 16 {
		t.Errorf("scenario c grid = %dx%d, want 8x16", c.Rows, c.Cols)
	}
}

func TestMemPoolArch(t *testing.T) {
	m := MemPool()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The no-NoC area should be in the ballpark of MemPool's published
	// 21.16 mm^2 total (compute dominates).
	a := m.NoNoCAreaMm2()
	if a < 12 || a > 22 {
		t.Errorf("MemPool no-NoC area = %v mm^2, want 12-22", a)
	}
	if m.CoresPerTile*m.NumTiles() != 256 {
		t.Errorf("MemPool cores = %d, want 256", m.CoresPerTile*m.NumTiles())
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	n := Node22nm()
	n.GateAreaUm2 = 0
	if err := n.Validate(); err == nil {
		t.Error("zero gate area not rejected")
	}
	p := ProtocolAXI()
	p.NumVCs = 0
	if err := p.Validate(); err == nil {
		t.Error("zero VCs not rejected")
	}
	a := Scenario(ScenarioA)
	a.Rows = 0
	if err := a.Validate(); err == nil {
		t.Error("zero rows not rejected")
	}
}
