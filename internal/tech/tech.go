// Package tech models the technology node, transport protocol, and
// architectural parameters that the prediction toolchain takes as
// inputs (Table II of the paper).
//
// A technology node is described through six abstract functions
// (gate-area, horizontal/vertical wire packing, logic/wire power
// density, and buffered-wire delay); the transport protocol through
// two (bandwidth-to-wires and router area). This package provides
// those functions as methods over plain parameter structs, plus
// calibrated presets for a 22 nm-class node and an AXI-like protocol
// used by the paper's evaluation scenarios.
package tech

import (
	"fmt"
	"math"
)

// Node describes a technology node (Table II, "technology" rows).
// All area inputs are in gate equivalents (GE), all distances in mm,
// all powers in W, all times in s.
type Node struct {
	Name string

	// GateAreaUm2 is the silicon area of one gate equivalent in µm²
	// (defines f_GE→mm²).
	GateAreaUm2 float64

	// HorizontalPitchesNm / VerticalPitchesNm list the wire pitch (nm)
	// of each metal layer available for horizontal respectively
	// vertical signal routing. They define f^H_wires→mm and
	// f^V_wires→mm exactly as in the paper's Section IV-B1 example:
	// the space needed for x parallel wires is x divided by the sum of
	// reciprocal pitches.
	HorizontalPitchesNm []float64
	VerticalPitchesNm   []float64

	// LogicPowerWPerMm2 and WirePowerWPerMm2 are the approximate power
	// densities of logic- and wire-dominated area (define f^L_mm²→W
	// and f^W_mm²→W).
	LogicPowerWPerMm2 float64
	WirePowerWPerMm2  float64

	// WireDelaySPerMm is the signal propagation delay along a buffered
	// wire in s/mm (defines f_mm→s).
	WireDelaySPerMm float64
}

// Validate checks that all parameters are physically meaningful.
func (n *Node) Validate() error {
	if n.GateAreaUm2 <= 0 {
		return fmt.Errorf("tech %s: non-positive gate area", n.Name)
	}
	if len(n.HorizontalPitchesNm) == 0 || len(n.VerticalPitchesNm) == 0 {
		return fmt.Errorf("tech %s: missing metal layers", n.Name)
	}
	for _, p := range append(append([]float64{}, n.HorizontalPitchesNm...), n.VerticalPitchesNm...) {
		if p <= 0 {
			return fmt.Errorf("tech %s: non-positive wire pitch", n.Name)
		}
	}
	if n.LogicPowerWPerMm2 <= 0 || n.WirePowerWPerMm2 <= 0 {
		return fmt.Errorf("tech %s: non-positive power density", n.Name)
	}
	if n.WireDelaySPerMm <= 0 {
		return fmt.Errorf("tech %s: non-positive wire delay", n.Name)
	}
	return nil
}

// GEToMm2 implements f_GE→mm²(x): the area in mm² needed to
// synthesize x GE of logic.
func (n *Node) GEToMm2(ge float64) float64 {
	return ge * n.GateAreaUm2 * 1e-6
}

// Mm2ToGE is the inverse of GEToMm2.
func (n *Node) Mm2ToGE(mm2 float64) float64 {
	return mm2 / (n.GateAreaUm2 * 1e-6)
}

// HWiresToMm implements f^H_wires→mm(x): the vertical space (channel
// height, in mm) needed to run x parallel horizontal wires across all
// horizontal metal layers.
func (n *Node) HWiresToMm(x float64) float64 {
	return wiresToMm(x, n.HorizontalPitchesNm)
}

// VWiresToMm implements f^V_wires→mm(x): the horizontal space (channel
// width, in mm) needed to run x parallel vertical wires.
func (n *Node) VWiresToMm(x float64) float64 {
	return wiresToMm(x, n.VerticalPitchesNm)
}

// wiresToMm follows the paper's recipe: sum the reciprocal pitches
// (wires per nm) over all layers for the direction, divide the wire
// count by that density, convert nm to mm.
func wiresToMm(x float64, pitchesNm []float64) float64 {
	var density float64 // wires per nm
	for _, p := range pitchesNm {
		density += 1 / p
	}
	return x / density * 1e-6
}

// LogicPower implements f^L_mm²→W(x) for logic-dominated area.
func (n *Node) LogicPower(mm2 float64) float64 { return mm2 * n.LogicPowerWPerMm2 }

// WirePower implements f^W_mm²→W(x) for wire-dominated area.
func (n *Node) WirePower(mm2 float64) float64 { return mm2 * n.WirePowerWPerMm2 }

// WireDelay implements f_mm→s(x): the time for a signal to travel x mm
// along a buffered wire.
func (n *Node) WireDelay(mm float64) float64 { return mm * n.WireDelaySPerMm }

// Protocol describes the on-chip transport protocol (Table II,
// "transport protocol" rows): how many wires a link of a given
// bandwidth needs, and how large a router is.
type Protocol struct {
	Name string

	// WiresPerBit and WireFixed define f_bw→wires(x) = WiresPerBit*x +
	// WireFixed: payload wires plus handshake/sideband overhead. An
	// AXI-like protocol with separate request/response channels has
	// WiresPerBit > 1.
	WiresPerBit float64
	WireFixed   float64

	// Router area model f_AR(m, s, B), in GE. The router consists of
	// per-port buffering (linear in ports), a crossbar (quadratic in
	// ports, the dominant term for high radix per design principle 1),
	// and allocation/control logic.
	RouterBaseGE     float64 // fixed control overhead
	BufGEPerBit      float64 // GE per bit of input buffering (FF-based)
	XbarGEPerBitSq   float64 // GE per (m*s) per bit of datapath width
	CtrlGEPerPortBit float64 // GE per port per bit for allocators etc.

	// NumVCs and BufDepthFlits size the input buffering: each manager
	// port holds NumVCs*BufDepthFlits flits of B bits each.
	NumVCs        int
	BufDepthFlits int
}

// Validate checks protocol parameters.
func (p *Protocol) Validate() error {
	if p.WiresPerBit <= 0 {
		return fmt.Errorf("protocol %s: non-positive wires per bit", p.Name)
	}
	if p.NumVCs < 1 || p.BufDepthFlits < 1 {
		return fmt.Errorf("protocol %s: need at least 1 VC and 1 buffer flit", p.Name)
	}
	if p.RouterBaseGE < 0 || p.BufGEPerBit < 0 || p.XbarGEPerBitSq < 0 || p.CtrlGEPerPortBit < 0 {
		return fmt.Errorf("protocol %s: negative router area coefficient", p.Name)
	}
	return nil
}

// BWToWires implements f_bw→wires(x): the number of wires needed for a
// link with a bandwidth of x bits/cycle.
func (p *Protocol) BWToWires(bits float64) float64 {
	return math.Ceil(p.WiresPerBit*bits + p.WireFixed)
}

// RouterAreaGE implements f_AR(m, s, B): the area in GE of a NoC
// router with m manager ports, s subordinate ports, and per-link
// bandwidth bwBits bits/cycle.
func (p *Protocol) RouterAreaGE(m, s int, bwBits float64) float64 {
	buf := p.BufGEPerBit * float64(m) * bwBits * float64(p.NumVCs*p.BufDepthFlits)
	xbar := p.XbarGEPerBitSq * float64(m*s) * bwBits
	ctrl := p.CtrlGEPerPortBit * float64(m+s) * bwBits
	return p.RouterBaseGE + buf + xbar + ctrl
}

// Arch bundles the chip-level architectural parameters of Table II
// with the technology node and protocol models.
type Arch struct {
	Name string

	Rows, Cols int // tile grid (NT = Rows*Cols)

	// EndpointGE is A_E: the combined area of all endpoints (cores and
	// local memories) in one tile, in GE.
	EndpointGE float64

	// TileAspect is R_T, the tile's height:width ratio.
	TileAspect float64

	// FreqHz is F, the NoC clock frequency.
	FreqHz float64

	// LinkBWBits is B, the bandwidth of each router-to-router link in
	// bits/cycle (also the flit width).
	LinkBWBits float64

	CoresPerTile int // informational, for scenario descriptions

	Node  *Node
	Proto *Protocol
}

// NumTiles returns N_T.
func (a *Arch) NumTiles() int { return a.Rows * a.Cols }

// RouterDelay is the router pipeline depth in cycles the toolchain
// assumes (route computation, VC allocation, switch allocation,
// traversal) — three cycles is representative for an input-queued AXI
// router at 1+ GHz. It lives here, at the bottom of the dependency
// graph, so the cycle-accurate simulator (package noc) and the
// closed-form design-space surrogate (package dse) charge the same
// per-hop cost.
const RouterDelay = 3

// PacketLenFlits returns the simulated packet length in flits: the
// number of flits needed to move one cache-line-sized payload (4
// flits for the 512-bit KNC scenarios) with a floor of one flit for
// wide links relative to the request size (MemPool's single-word
// accesses). Shared by the simulator configs and the analytic
// surrogate so their serialization terms agree.
func (a *Arch) PacketLenFlits() int {
	if a.Name == "mempool" {
		return 1
	}
	return 4
}

// Validate checks the architecture description.
func (a *Arch) Validate() error {
	if a.Rows < 1 || a.Cols < 1 {
		return fmt.Errorf("arch %s: invalid grid %dx%d", a.Name, a.Rows, a.Cols)
	}
	if a.EndpointGE <= 0 {
		return fmt.Errorf("arch %s: non-positive endpoint area", a.Name)
	}
	if a.TileAspect <= 0 {
		return fmt.Errorf("arch %s: non-positive aspect ratio", a.Name)
	}
	if a.FreqHz <= 0 || a.LinkBWBits <= 0 {
		return fmt.Errorf("arch %s: non-positive frequency or bandwidth", a.Name)
	}
	if a.Node == nil || a.Proto == nil {
		return fmt.Errorf("arch %s: missing technology node or protocol", a.Name)
	}
	if err := a.Node.Validate(); err != nil {
		return err
	}
	return a.Proto.Validate()
}

// NoNoCAreaMm2 returns A_noNoC = f_GE→mm²(N_T · A_E), the area of the
// chip without any NoC.
func (a *Arch) NoNoCAreaMm2() float64 {
	return a.Node.GEToMm2(float64(a.NumTiles()) * a.EndpointGE)
}
