package tech

// Presets for the paper's evaluation. The 22 nm node and AXI-like
// protocol parameters are synthetic but calibrated: a KNC-like tile of
// 35 MGE comes out near 11 mm² (Knights Corner packs 62 such tiles
// into a ~700 mm² die in 22 nm), and running the MemPool architecture
// description through the toolchain lands in the ballpark of the
// paper's Table III predictions (24.26 mm², 1.447 W). See DESIGN.md
// ("Substitutions") and EXPERIMENTS.md for the calibration story.

// Node22nm returns the 22 nm-class technology node used by all
// evaluation scenarios (Section V: "implemented in a 22 nm technology
// node for which we know the necessary architectural parameters").
func Node22nm() *Node {
	return &Node{
		Name:        "22nm",
		GateAreaUm2: 0.32,
		// Five signal-routing layers: three horizontal, two vertical,
		// mirroring the worked example in Section IV-B1.
		HorizontalPitchesNm: []float64{100, 120, 160},
		VerticalPitchesNm:   []float64{90, 110},
		LogicPowerWPerMm2:   0.064,
		WirePowerWPerMm2:    0.040,
		WireDelaySPerMm:     66e-12, // buffered global wire, ~66 ps/mm
	}
}

// ProtocolAXI returns an AXI-like transport protocol model (the paper
// uses AXI with the open-source components of Kurth et al.): separate
// request/response wiring plus handshake overhead, and an input-queued
// router with 8 virtual channels and 32-flit buffers per the paper's
// evaluation configuration.
func ProtocolAXI() *Protocol {
	return &Protocol{
		Name:        "axi",
		WiresPerBit: 1.35, // R/W payload sharing plus ~35% addr/resp/handshake
		WireFixed:   64,
		// Router area: flip-flop based input buffers, word-wide
		// crossbar muxes, and allocator overhead.
		RouterBaseGE:     5.0e3,
		BufGEPerBit:      8,  // FF + mux per buffered bit (NumVCs*BufDepth*B per port)
		XbarGEPerBitSq:   70, // per (m*s) per datapath bit
		CtrlGEPerPortBit: 9,  // per (m+s) per datapath bit
		NumVCs:           8,
		BufDepthFlits:    32,
	}
}

// ScenarioID names one of the paper's four evaluation scenarios.
type ScenarioID string

// The four scenarios of Section V-b.
const (
	ScenarioA ScenarioID = "a" // 64 tiles, 35 MGE, 1 core each
	ScenarioB ScenarioID = "b" // 64 tiles, 70 MGE, 2 cores each
	ScenarioC ScenarioID = "c" // 128 tiles, 35 MGE, 1 core each
	ScenarioD ScenarioID = "d" // 128 tiles, 70 MGE, 2 cores each
)

// Scenario returns the KNC-like architecture of the given evaluation
// scenario: 512 bits/cycle per-link bandwidth at 1.2 GHz in the 22 nm
// node with the AXI-like protocol. Scenarios c and d use a 8x16 grid
// (128 = 2*8^2 tiles, so SlimNoC is applicable there and only there).
func Scenario(id ScenarioID) *Arch {
	a := &Arch{
		Name:         "knc-" + string(id),
		Rows:         8,
		Cols:         8,
		EndpointGE:   35e6,
		TileAspect:   1.0,
		FreqHz:       1.2e9,
		LinkBWBits:   512,
		CoresPerTile: 1,
		Node:         Node22nm(),
		Proto:        ProtocolAXI(),
	}
	switch id {
	case ScenarioA:
	case ScenarioB:
		a.EndpointGE = 70e6
		a.CoresPerTile = 2
	case ScenarioC:
		a.Cols = 16
	case ScenarioD:
		a.Cols = 16
		a.EndpointGE = 70e6
		a.CoresPerTile = 2
	default:
		return nil
	}
	return a
}

// AllScenarios returns the four scenario IDs in paper order.
func AllScenarios() []ScenarioID {
	return []ScenarioID{ScenarioA, ScenarioB, ScenarioC, ScenarioD}
}

// PresetNames lists every name ArchByName resolves: the four
// evaluation scenarios in paper order, then "mempool". The campaign
// service's registry endpoint exports this catalog, so extending
// ArchByName must extend this list too.
func PresetNames() []string {
	names := make([]string, 0, 5)
	for _, id := range AllScenarios() {
		names = append(names, string(id))
	}
	return append(names, "mempool")
}

// ArchByName resolves a preset architecture by its short job-spec
// name: "a".."d" for the evaluation scenarios or "mempool". It
// returns nil for unknown names, like Scenario does. The experiment
// campaign evaluators (packages noc and dse) share this mapping.
func ArchByName(name string) *Arch {
	if name == "mempool" {
		return MemPool()
	}
	return Scenario(ScenarioID(name))
}

// MemPool returns an architecture description of the MemPool manycore
// (Cavalcante et al., DATE 2021) used for the toolchain validation in
// Table III: 256 cores and 1024 memory banks grouped into 64 tiles
// (4 cores + 16 banks each) in 22 nm, with a narrower 32-bit
// low-latency interconnect at 500 MHz. Endpoint size is chosen so the
// no-NoC area matches MemPool's published compute area; the published
// "correct values" of Table III are recorded in package noc.
func MemPool() *Arch {
	return &Arch{
		Name:         "mempool",
		Rows:         8,
		Cols:         8,
		EndpointGE:   0.9e6, // 4 Snitch cores + 16 SPM banks per tile
		TileAspect:   1.0,
		FreqHz:       500e6,
		LinkBWBits:   32,
		CoresPerTile: 4,
		Node:         Node22nm(),
		Proto: &Protocol{
			Name:             "mempool-tcdm",
			WiresPerBit:      1.2, // lean parallel req/rsp wiring
			WireFixed:        12,
			RouterBaseGE:     2.0e3,
			BufGEPerBit:      8,
			XbarGEPerBitSq:   12, // lean single-cycle crossbar muxes
			CtrlGEPerPortBit: 9,
			NumVCs:           2, // shallow, latency-optimized buffering
			BufDepthFlits:    2,
		},
	}
}
