package noc

// Tests pinning the spec-driven Figure 6 path: the checked-in preset
// spec file expands to exactly the jobs the Figure6Panels campaign
// runs (so shrun reproduces Figure 6 bit-for-bit, by the determinism
// contract of package exp), and the spec path's results match the
// direct toolchain output end to end.

import (
	"path/filepath"
	"reflect"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/spec"
	"sparsehamming/internal/tech"
)

// figure6SpecFile is the checked-in Figure 6 preset, relative to this
// package.
func figure6SpecFile(t *testing.T, name string) *spec.Spec {
	t.Helper()
	s, err := spec.ParseFile(filepath.Join("..", "..", "examples", "specs", name))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure6SpecFileMatchesProgrammatic pins the preset files to the
// programmatic spec bit-for-bit: the parsed file equals
// Figure6Spec's output structurally, and both expand to identical job
// lists (same content keys, hence bit-identical results under the
// determinism contract). Runs in -short mode: job equality is the
// whole guarantee, no simulation needed.
func TestFigure6SpecFileMatchesProgrammatic(t *testing.T) {
	for _, c := range []struct {
		file    string
		quality Quality
	}{
		{"figure6-quick.json", Quick},
		{"figure6-full.json", Full},
		{"figure6-adaptive.json", Adaptive},
	} {
		fromFile := figure6SpecFile(t, c.file)
		built, err := Figure6Spec(tech.AllScenarios(), c.quality, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromFile, built) {
			t.Errorf("%s differs from Figure6Spec output:\nfile: %+v\nbuilt: %+v", c.file, fromFile, built)
			continue
		}
		fileJobs, err := fromFile.Expand()
		if err != nil {
			t.Fatal(err)
		}
		builtJobs, err := built.Expand()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fileJobs, builtJobs) {
			t.Errorf("%s expands to different jobs", c.file)
		}
		for i := range fileJobs {
			if fileJobs[i].Key() != builtJobs[i].Key() {
				t.Errorf("%s job %d key mismatch", c.file, i)
			}
		}
	}
}

// TestFigure6SpecJobs pins the expanded job shapes: one predict job
// per applicable topology with the paper's routing choices, seed 1,
// and the SHG parameters of each scenario.
func TestFigure6SpecJobs(t *testing.T) {
	s, err := Figure6Spec([]tech.ScenarioID{tech.ScenarioA, tech.ScenarioC}, Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := s.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 7 || len(groups[1]) != 8 {
		t.Fatalf("group sizes %v, want 7 (no slimnoc on 8x8) and 8", []int{len(groups[0]), len(groups[1])})
	}
	for _, jobs := range groups {
		for _, j := range jobs {
			if j.Mode != exp.ModePredict || j.Seed != 1 || j.Quality != "quick" {
				t.Errorf("job %v: not a seed-1 quick predict job", j)
			}
			wantRouting := ""
			if j.Topo == "hypercube" {
				wantRouting = "hop-minimal"
			}
			if j.Routing != wantRouting {
				t.Errorf("%s routing %q, want %q", j.Topo, j.Routing, wantRouting)
			}
			if j.Rows != 0 || j.Cols != 0 || !j.Arch.IsZero() {
				t.Errorf("%s: preset jobs must not override the arch", j.Topo)
			}
		}
	}
	shg := groups[1][len(groups[1])-1]
	if shg.Topo != "sparse-hamming" || len(shg.SR) == 0 || len(shg.SC) == 0 {
		t.Errorf("scenario c SHG job = %+v", shg)
	}
}

// TestFigure6OptionsOverride pins the ablation knobs: a forced
// routing applies to every topology (replacing the hypercube pin) and
// a pattern lands on every job.
func TestFigure6OptionsOverride(t *testing.T) {
	s, err := Figure6Spec([]tech.ScenarioID{tech.ScenarioA}, Quick,
		&Figure6Options{Routing: "hop-minimal", Pattern: "transpose"})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Routing != "hop-minimal" {
			t.Errorf("%s routing %q, want forced hop-minimal", j.Topo, j.Routing)
		}
		if j.Pattern != "transpose" {
			t.Errorf("%s pattern %q, want transpose", j.Topo, j.Pattern)
		}
	}
}

// TestFigure6SpecEndToEnd runs the scenario-a sweep of the checked-in
// preset file on the campaign runner and compares the results
// bit-for-bit with the direct Figure6 path — the shrun acceptance
// check, in-process.
func TestFigure6SpecEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scenario-a panel twice (once per path, shared via cache)")
	}
	s := figure6SpecFile(t, "figure6-quick.json")
	groups, err := s.ExpandSweeps()
	if err != nil {
		t.Fatal(err)
	}
	cache := exp.NewCache()
	runner := NewRunner(0, cache)
	results, _, err := runner.Run(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	panels, _, err := Figure6Panels([]tech.ScenarioID{tech.ScenarioA}, Quick, runner, nil)
	if err != nil {
		t.Fatal(err)
	}
	ri := 0
	for _, row := range panels[0] {
		if !row.Applicable {
			continue
		}
		got := PredictionFromResult(results[ri])
		ri++
		if !reflect.DeepEqual(got, row.Pred) {
			t.Errorf("%s: spec result differs from Figure6:\nspec: %+v\nfig6: %+v", row.Topology, got, row.Pred)
		}
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("the two paths share no cache keys — job specs diverged")
	}
}

// TestPanelTracker pins the attribution helper on a fake runner.
func TestPanelTracker(t *testing.T) {
	jobs := []exp.Job{
		{Mode: exp.ModeCost, Scenario: "a", Topo: "mesh"},
		{Mode: exp.ModeCost, Scenario: "a", Topo: "torus"},
		{Mode: exp.ModeCost, Scenario: "b", Topo: "mesh"},
	}
	pt := NewPanelTracker([]string{"p0", "p1"})
	pt.Add(jobs[0], 0)
	pt.Add(jobs[1], 0)
	pt.Add(jobs[2], 1)
	r := &exp.Runner{Eval: func(j exp.Job) (*exp.Result, error) {
		return &exp.Result{Topology: j.Topo, SimCycles: 10, SimFlitHops: 20}, nil
	}}
	var outer int
	r.Progress = func(exp.ProgressEvent) { outer++ }
	pt.Attach(r)
	results, _, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		pt.AddResult(jobs[i], res)
	}
	pt.Detach()
	if outer != 3 {
		t.Errorf("chained progress hook saw %d events, want 3", outer)
	}
	if r.Progress == nil {
		t.Error("Detach must restore the previous hook")
	}
	if pt.Stats[0].Label != "p0" || pt.Stats[0].Jobs != 2 || pt.Stats[1].Jobs != 1 {
		t.Errorf("stats = %+v", pt.Stats)
	}
	if pt.Stats[0].SimCycles != 20 || pt.Stats[1].SimCycles != 10 {
		t.Errorf("sim work attribution = %+v", pt.Stats)
	}
}
