package noc

// This file wires the simulator's batched multi-replica engine into
// the campaign runner: LoadGroupKey names the jobs that share one
// topology build (same scenario, grid, architecture, topology, and
// routing — a load sweep's ladder differs only in pattern, load,
// quality windows, and seed), and evalLoadGroup evaluates such a
// group through one sim.Batch, paying the channel wiring and
// output-port LUT once instead of once per point.
//
// Per-job results are bit-identical to the per-job evalLoadPoint path
// — same Stats, same SimCycles, same cache keys — because batch
// replicas share no mutable state (enforced by the sim package's
// differential harness, and by TestGroupedLoadEvalMatchesPerJob here).
//
// PredictGroupKey/evalPredictGroup apply the same idea to ModePredict
// jobs: jobs differing only in quality tier, pattern, or seed share
// one topology build across all their saturation searches.

import (
	"fmt"
	"strings"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/topo"
)

// LoadGroupKey is an exp.Runner.GroupKey for toolchain campaigns: it
// groups ModeLoad jobs that resolve to the same architecture,
// topology instance, and routing — exactly the inputs of a simulator
// Shape — so the runner dispatches them as one batch. Cost and
// surrogate jobs are never grouped (they do not simulate at all).
func LoadGroupKey(j exp.Job) (string, bool) {
	if j.Mode != exp.ModeLoad {
		return "", false
	}
	return groupKeyFields("loadgrp-v1", j), true
}

// PredictGroupKey is LoadGroupKey's sibling for ModePredict jobs: it
// groups predict jobs that share a topology instance — the same
// architecture, grid, offsets, and routing across different quality
// tiers, patterns, or seeds — so their saturation searches share one
// simulator Shape instead of each paying a full topology build.
func PredictGroupKey(j exp.Job) (string, bool) {
	if j.Mode != exp.ModePredict {
		return "", false
	}
	return groupKeyFields("predgrp-v1", j), true
}

// CampaignGroupKey is the exp.Runner.GroupKey the observed runner
// installs: the union of LoadGroupKey and PredictGroupKey (the two
// mode groups never collide — the version tags differ).
func CampaignGroupKey(j exp.Job) (string, bool) {
	if key, ok := LoadGroupKey(j); ok {
		return key, true
	}
	return PredictGroupKey(j)
}

// groupKeyFields renders the Shape-determining job fields under a
// versioned tag.
func groupKeyFields(tag string, j exp.Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|scenario=%s|rows=%d|cols=%d|topo=%s|sr=%v|sc=%v|routing=%s",
		tag, j.Scenario, j.Rows, j.Cols, j.Topo, j.SR, j.SC, j.Routing)
	if o := j.Arch; !o.IsZero() {
		fmt.Fprintf(&b, "|arch=ge:%g,cores:%d,freq:%g,bw:%g,vcs:%d,buf:%d,aspect:%g",
			o.EndpointGE, o.CoresPerTile, o.FreqHz, o.LinkBWBits,
			o.NumVCs, o.BufDepthFlits, o.TileAspect)
	}
	return b.String()
}

// evalLoadGroup evaluates a group of ModeLoad jobs sharing one
// LoadGroupKey through a single sim.Batch. spans, when non-nil,
// carries one per-job trace span (created by the observed runner);
// each replica then runs under a "point" child of its job's span,
// mirroring the per-job path's trace shape. Any resolution error
// fails the whole group — the runner falls back to per-job Eval
// calls, which preserves single-job failure semantics.
func evalLoadGroup(jobs []exp.Job, spans []*obs.Span) ([]*exp.Result, error) {
	j0 := jobs[0]
	arch, err := ArchForJob(j0)
	if err != nil {
		return nil, err
	}
	t, err := topo.ByName(j0.Topo, arch.Rows, arch.Cols, j0.SR, j0.SC)
	if err != nil {
		return nil, err
	}
	cost, err := phys.Evaluate(arch, t)
	if err != nil {
		return nil, err
	}
	rt, err := route.ForName(t, j0.Routing)
	if err != nil {
		return nil, err
	}

	base := sim.Config{
		Topo: t, Routing: rt,
		NumVCs: arch.Proto.NumVCs, BufDepth: arch.Proto.BufDepthFlits,
		LinkLatency: cost.LinkLatencies, RouterDelay: RouterDelay,
		PacketLen: packetLen(arch),
	}
	base.Defaults()

	reps := make([]sim.Replica, len(jobs))
	pointSpans := make([]*obs.Span, len(jobs))
	for i, j := range jobs {
		quality, err := QualityByName(j.Quality)
		if err != nil {
			return nil, err
		}
		pat, err := sim.PatternByName(j.Pattern, arch.Rows, arch.Cols)
		if err != nil {
			return nil, err
		}
		warmup, measure := quality.simWindows()
		// Reproduce the per-job path's schedule exactly: the default
		// drain budget clamped at the load sweep's historical factor of
		// the replica's own measurement window.
		c := base
		c.Warmup, c.Measure = warmup, measure
		clampCurveDrain(&c)
		if spans != nil {
			pointSpans[i] = spans[i].Child("point")
			pointSpans[i].SetAttr("rate", j.Load)
		}
		reps[i] = sim.Replica{
			InjectionRate: j.Load,
			Seed:          j.EffectiveSeed(),
			Pattern:       pat,
			Warmup:        warmup,
			Measure:       measure,
			Drain:         c.Drain,
			Span:          pointSpans[i],
		}
	}

	b, err := sim.NewBatch(base, reps)
	if err != nil {
		return nil, err
	}
	stats := b.Run()
	for _, sp := range pointSpans {
		sp.End()
	}

	out := make([]*exp.Result, len(jobs))
	for i, j := range jobs {
		st := stats[i]
		out[i] = &exp.Result{
			Topology:          t.Kind,
			Params:            paramsString(j),
			RouterRadix:       t.MaxRadix(),
			Diameter:          t.Diameter(),
			AvgHops:           rt.AvgHops(),
			NumLinks:          t.NumLinks(),
			RoutingName:       rt.Name,
			OfferedRate:       st.OfferedRate,
			AcceptedRate:      st.AcceptedRate,
			AvgPacketLatency:  st.AvgPacketLatency,
			P99PacketLatency:  st.P99PacketLatency,
			DeliveredFraction: st.DeliveredFraction(),
			SimCycles:         st.Cycles,
			SimFlitHops:       st.FlitHops,
		}
	}
	return out, nil
}

// clampCurveDrain applies the load sweep's drain clamp (the same
// pinned factor sim.LoadLatencyCurve uses) to a defaulted config.
func clampCurveDrain(c *sim.Config) {
	if c.Drain > sim.CurveDrainFactor*c.Measure {
		c.Drain = sim.CurveDrainFactor * c.Measure
	}
}

// evalPredictGroup evaluates a group of ModePredict jobs sharing one
// PredictGroupKey — the same topology instance and routing — through
// one simulator Shape: the architecture, cost model, and routing
// resolve once, and every job's saturation search instantiates its
// probes from the shared build. Jobs that differ only in quality tier
// additionally share their zero-load reference run through a
// sim.ZeroLoadAnchor (the tiers' zero-load schedules coincide — see
// sim.ZeroLoadScheduleKey). Per-job results are bit-identical to the
// per-job predictSeeded path (pinned by
// TestGroupedPredictEvalMatchesPerJob). Any resolution error fails the
// whole group; the runner then falls back to per-job Eval calls,
// preserving single-job failure semantics.
func evalPredictGroup(jobs []exp.Job, sched sim.ProbeScheduler, spans []*obs.Span) ([]*exp.Result, error) {
	j0 := jobs[0]
	arch, err := ArchForJob(j0)
	if err != nil {
		return nil, err
	}
	t, err := topo.ByName(j0.Topo, arch.Rows, arch.Cols, j0.SR, j0.SC)
	if err != nil {
		return nil, err
	}
	cost, err := phys.Evaluate(arch, t)
	if err != nil {
		return nil, err
	}
	rt, err := route.ForName(t, j0.Routing)
	if err != nil {
		return nil, err
	}
	if arch.Proto.NumVCs < rt.NumClasses {
		return nil, fmt.Errorf("noc: %d VCs cannot host the %d VC classes of %s",
			arch.Proto.NumVCs, rt.NumClasses, rt.Name)
	}

	base := sim.Config{
		Topo: t, Routing: rt,
		NumVCs: arch.Proto.NumVCs, BufDepth: arch.Proto.BufDepthFlits,
		LinkLatency: cost.LinkLatencies, RouterDelay: RouterDelay,
		PacketLen: packetLen(arch),
	}
	base.Defaults()
	sh, err := sim.NewShape(base)
	if err != nil {
		return nil, err
	}

	// Jobs whose zero-load reference runs coincide — same pattern,
	// seed, and effective zero-load schedule (quality tiers only differ
	// in Measure, which the zero-load floor usually absorbs) — share
	// one anchor: the first search simulates it, the rest reuse it.
	type anchorKey struct {
		pattern string
		seed    int64
		window  int
	}
	anchors := map[anchorKey]*sim.ZeroLoadAnchor{}

	out := make([]*exp.Result, len(jobs))
	for i, j := range jobs {
		quality, err := QualityByName(j.Quality)
		if err != nil {
			return nil, err
		}
		var span *obs.Span
		if spans != nil {
			span = spans[i]
		}
		_, measure := quality.simWindows()
		key := anchorKey{j.Pattern, j.EffectiveSeed(), sim.ZeroLoadScheduleKey(measure)}
		anchor := anchors[key]
		if anchor == nil {
			anchor = &sim.ZeroLoadAnchor{}
			anchors[key] = anchor
		}
		pred, err := predictShaped(sh, arch, t, cost, rt, j.Pattern, quality, j.EffectiveSeed(), anchor, sched, span)
		if err != nil {
			return nil, err
		}
		out[i] = resultFromPrediction(pred, j)
	}
	return out, nil
}
