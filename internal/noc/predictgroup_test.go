package noc

import (
	"reflect"
	"testing"

	"sparsehamming/internal/exp"
)

// predictLadder is a set of predict jobs sharing one topology
// instance — one group under PredictGroupKey, with quality tier,
// pattern, and seed varying per job.
func predictLadder() []exp.Job {
	return []exp.Job{
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1},
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 2, Pattern: "transpose"},
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 3, Quality: "adaptive"},
	}
}

// TestGroupedPredictEvalMatchesPerJob is the predict-side parity
// contract: jobs evaluated through one shared Shape produce
// bit-identical results — SimCycles included — to the per-job
// predictSeeded path.
func TestGroupedPredictEvalMatchesPerJob(t *testing.T) {
	jobs := predictLadder()

	want := make([]*exp.Result, len(jobs))
	for i, j := range jobs {
		res, err := EvalJob(j)
		if err != nil {
			t.Fatalf("EvalJob(%v): %v", j, err)
		}
		want[i] = res
	}

	got, err := evalPredictGroup(jobs, nil, nil)
	if err != nil {
		t.Fatalf("evalPredictGroup: %v", err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %v:\ngrouped %+v\nper-job %+v", jobs[i], got[i], want[i])
		}
	}
}

// TestPredictGroupKey pins the predict group key's equivalence
// classes, and that CampaignGroupKey unions the load and predict
// groupings without ever colliding them.
func TestPredictGroupKey(t *testing.T) {
	jobs := predictLadder()
	k0, ok := PredictGroupKey(jobs[0])
	if !ok {
		t.Fatal("predict job not groupable")
	}
	for _, j := range jobs[1:] {
		k, ok := PredictGroupKey(j)
		if !ok || k != k0 {
			t.Errorf("ladder job %v got key %q, want %q", j, k, k0)
		}
	}

	for _, mode := range []exp.Mode{exp.ModeCost, exp.ModeSurrogate, exp.ModeLoad} {
		if _, ok := PredictGroupKey(exp.Job{Mode: mode, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}); ok {
			t.Errorf("%s job was predict-groupable", mode)
		}
	}

	j := jobs[0]
	j.Topo = "torus"
	if k, _ := PredictGroupKey(j); k == k0 {
		t.Error("different topology shares a group key")
	}
	j = jobs[0]
	j.Routing = "hop-minimal"
	if k, _ := PredictGroupKey(j); k == k0 {
		t.Error("different routing shares a group key")
	}
	j = jobs[0]
	j.Arch = &exp.ArchOverride{NumVCs: 8}
	if k, _ := PredictGroupKey(j); k == k0 {
		t.Error("different architecture override shares a group key")
	}

	// The union: predict and load jobs both group, under distinct keys.
	pk, ok := CampaignGroupKey(jobs[0])
	if !ok || pk != k0 {
		t.Errorf("CampaignGroupKey(predict) = %q, %v; want %q", pk, ok, k0)
	}
	lj := exp.Job{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.1}
	lk, ok := CampaignGroupKey(lj)
	if !ok {
		t.Fatal("load job not groupable through CampaignGroupKey")
	}
	if wantLK, _ := LoadGroupKey(lj); lk != wantLK {
		t.Errorf("CampaignGroupKey(load) = %q, want %q", lk, wantLK)
	}
	if lk == k0 {
		t.Error("load and predict groups collide")
	}
	if _, ok := CampaignGroupKey(exp.Job{Mode: exp.ModeSurrogate, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}); ok {
		t.Error("surrogate job was groupable")
	}
}
