package noc

import (
	"path/filepath"
	"reflect"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/sim"
)

// predictLadder is a set of predict jobs sharing one topology
// instance — one group under PredictGroupKey, with quality tier,
// pattern, and seed varying per job.
func predictLadder() []exp.Job {
	return []exp.Job{
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1},
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 2, Pattern: "transpose"},
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 3, Quality: "adaptive"},
	}
}

// TestGroupedPredictEvalMatchesPerJob is the predict-side parity
// contract: jobs evaluated through one shared Shape produce
// bit-identical results — SimCycles included — to the per-job
// predictSeeded path.
func TestGroupedPredictEvalMatchesPerJob(t *testing.T) {
	jobs := predictLadder()

	want := make([]*exp.Result, len(jobs))
	for i, j := range jobs {
		res, err := EvalJob(j)
		if err != nil {
			t.Fatalf("EvalJob(%v): %v", j, err)
		}
		want[i] = res
	}

	got, err := evalPredictGroup(jobs, nil, nil)
	if err != nil {
		t.Fatalf("evalPredictGroup: %v", err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %v:\ngrouped %+v\nper-job %+v", jobs[i], got[i], want[i])
		}
	}
}

// mixedTierLadder is one topology predicted at every quality tier
// with the same pattern and seed — the configuration whose zero-load
// reference runs coincide, so the grouped evaluator shares one anchor
// across the tiers.
func mixedTierLadder() []exp.Job {
	return []exp.Job{
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1},
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1, Quality: "full"},
		{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1, Quality: "adaptive"},
	}
}

// TestPredictGroupSharesZeroLoadAnchor pins the cross-tier anchor
// contract: a mixed-tier group reproduces the per-tier schedules
// exactly (bit-identical results) while simulating the shared
// zero-load reference only once — the other tiers reuse the anchor,
// visible as exactly two fewer simulation runs than the per-job path.
func TestPredictGroupSharesZeroLoadAnchor(t *testing.T) {
	jobs := mixedTierLadder()

	before := sim.Counters()
	want := make([]*exp.Result, len(jobs))
	for i, j := range jobs {
		res, err := EvalJob(j)
		if err != nil {
			t.Fatalf("EvalJob(%v): %v", j, err)
		}
		want[i] = res
	}
	mid := sim.Counters()

	got, err := evalPredictGroup(jobs, nil, nil)
	if err != nil {
		t.Fatalf("evalPredictGroup: %v", err)
	}
	after := sim.Counters()

	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %v:\ngrouped %+v\nper-job %+v", jobs[i], got[i], want[i])
		}
	}
	if d := after.AnchorReuses - mid.AnchorReuses; d != int64(len(jobs)-1) {
		t.Errorf("grouped evaluation reused the anchor %d times, want %d", d, len(jobs)-1)
	}
	perJob := mid.Runs - before.Runs
	grouped := after.Runs - mid.Runs
	if grouped != perJob-int64(len(jobs)-1) {
		t.Errorf("grouped path ran %d simulations vs %d per-job, want exactly %d fewer",
			grouped, perJob, len(jobs)-1)
	}
}

// TestMixedTierRerunSimulatesNothing drives the mixed-tier ladder
// through the campaign runner twice with a persistent cache: the
// second run must hit the cache for every job and start zero
// simulation runs.
func TestMixedTierRerunSimulatesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	jobs := mixedTierLadder()

	cache, err := exp.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	first, rep1, err := NewRunner(0, cache).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Computed != len(jobs) || rep1.CacheHits != 0 {
		t.Errorf("first run report = %+v", rep1)
	}
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	cache2, err := exp.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	before := sim.Counters()
	second, rep2, err := NewRunner(0, cache2).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	after := sim.Counters()
	if rep2.Computed != 0 || rep2.CacheHits != len(jobs) {
		t.Errorf("second run report = %+v, want all cache hits", rep2)
	}
	if d := after.Runs - before.Runs; d != 0 {
		t.Errorf("re-run started %d simulation runs, want 0", d)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached results differ from computed ones")
	}
}

// TestPredictGroupKey pins the predict group key's equivalence
// classes, and that CampaignGroupKey unions the load and predict
// groupings without ever colliding them.
func TestPredictGroupKey(t *testing.T) {
	jobs := predictLadder()
	k0, ok := PredictGroupKey(jobs[0])
	if !ok {
		t.Fatal("predict job not groupable")
	}
	for _, j := range jobs[1:] {
		k, ok := PredictGroupKey(j)
		if !ok || k != k0 {
			t.Errorf("ladder job %v got key %q, want %q", j, k, k0)
		}
	}

	for _, mode := range []exp.Mode{exp.ModeCost, exp.ModeSurrogate, exp.ModeLoad} {
		if _, ok := PredictGroupKey(exp.Job{Mode: mode, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}); ok {
			t.Errorf("%s job was predict-groupable", mode)
		}
	}

	j := jobs[0]
	j.Topo = "torus"
	if k, _ := PredictGroupKey(j); k == k0 {
		t.Error("different topology shares a group key")
	}
	j = jobs[0]
	j.Routing = "hop-minimal"
	if k, _ := PredictGroupKey(j); k == k0 {
		t.Error("different routing shares a group key")
	}
	j = jobs[0]
	j.Arch = &exp.ArchOverride{NumVCs: 8}
	if k, _ := PredictGroupKey(j); k == k0 {
		t.Error("different architecture override shares a group key")
	}

	// The union: predict and load jobs both group, under distinct keys.
	pk, ok := CampaignGroupKey(jobs[0])
	if !ok || pk != k0 {
		t.Errorf("CampaignGroupKey(predict) = %q, %v; want %q", pk, ok, k0)
	}
	lj := exp.Job{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.1}
	lk, ok := CampaignGroupKey(lj)
	if !ok {
		t.Fatal("load job not groupable through CampaignGroupKey")
	}
	if wantLK, _ := LoadGroupKey(lj); lk != wantLK {
		t.Errorf("CampaignGroupKey(load) = %q, want %q", lk, wantLK)
	}
	if lk == k0 {
		t.Error("load and predict groups collide")
	}
	if _, ok := CampaignGroupKey(exp.Job{Mode: exp.ModeSurrogate, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}); ok {
		t.Error("surrogate job was groupable")
	}
}
