package noc

import (
	"path/filepath"
	"reflect"
	"testing"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/topo"
)

// campaignJobs is a small mixed batch on a 4x4 grid, cheap enough for
// -short yet exercising the job modes with real simulations. The
// full-toolchain predict job (a saturation search, the expensive
// kind) only joins outside -short.
func campaignJobs() []exp.Job {
	jobs := []exp.Job{
		{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"},
		{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "sparse-hamming", SR: []int{2}, SC: []int{2}},
		{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.2, Seed: 1},
		{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "torus", Load: 0.2, Pattern: "transpose", Seed: 1},
	}
	if !testing.Short() {
		jobs = append(jobs,
			exp.Job{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "sparse-hamming", SR: []int{2}, SC: []int{2}, Seed: 1})
	}
	return jobs
}

// TestCampaignParallelMatchesSerial is the determinism contract on
// the real toolchain: a parallel campaign produces bit-identical
// results to a serial one.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	jobs := campaignJobs()
	serial, _, err := NewRunner(1, nil).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := NewRunner(8, nil).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel toolchain results differ from serial:\n%+v\n%+v", serial, parallel)
	}
}

// TestCampaignCacheSkipsSimulations checks that a repeated campaign
// with a persistent cache performs zero new evaluations and returns
// identical results.
func TestCampaignCacheSkipsSimulations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	jobs := campaignJobs()

	cache, err := exp.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	first, rep1, err := NewRunner(0, cache).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Computed != len(jobs) || rep1.CacheHits != 0 {
		t.Errorf("first run report = %+v", rep1)
	}
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	// Fresh process simulation: reopen the cache from disk.
	cache2, err := exp.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	second, rep2, err := NewRunner(0, cache2).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Computed != 0 || rep2.CacheHits != len(jobs) {
		t.Errorf("second run report = %+v, want all cache hits", rep2)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached results differ from computed ones")
	}
}

func TestEvalJobErrors(t *testing.T) {
	cases := []exp.Job{
		{Mode: exp.ModePredict, Scenario: "z", Topo: "mesh"},
		{Mode: exp.ModePredict, Scenario: "a", Topo: "moebius"},
		{Mode: exp.ModePredict, Scenario: "a", Topo: "mesh", Routing: "left-hand"},
		{Mode: exp.ModePredict, Scenario: "a", Topo: "mesh", Quality: "heroic"},
		{Mode: exp.ModeLoad, Scenario: "a", Topo: "mesh", Pattern: "tornado"},
		{Mode: "paint", Scenario: "a", Topo: "mesh"},
	}
	for _, j := range cases {
		if _, err := EvalJob(j); err == nil {
			t.Errorf("EvalJob(%v) should fail", j)
		}
	}
}

// TestEvalJobMatchesPredictWith pins the adapter: a predict job
// evaluates to exactly what the direct toolchain call produces.
func TestEvalJobMatchesPredictWith(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full toolchain twice")
	}
	job := exp.Job{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1}
	res, err := EvalJob(job)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := ArchForJob(job)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := topo.NewMesh(arch.Rows, arch.Cols)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Predict(arch, mesh, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if got := PredictionFromResult(res); !reflect.DeepEqual(got, direct) {
		t.Errorf("job result %+v\n!= direct prediction %+v", got, direct)
	}
}

// TestParamsStringOnlyForHamming pins the fix for stray SR/SC on
// other topology kinds: ruche reads SR as its factor, so it must not
// be reported as sparse Hamming offsets.
func TestParamsStringOnlyForHamming(t *testing.T) {
	res, err := EvalJob(exp.Job{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "ruche", SR: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params != "" {
		t.Errorf("ruche result carries params %q, want none", res.Params)
	}
	shg, err := EvalJob(exp.Job{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "sparse-hamming", SR: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if shg.Params == "" {
		t.Error("sparse-hamming result should carry its params string")
	}
}

// TestCostJobsAgreeAcrossEvaluators pins the cache-sharing contract:
// a ModeCost sparse Hamming job must evaluate identically under the
// dse evaluator and the noc toolchain evaluator, because both store
// results under the same content key.
func TestCostJobsAgreeAcrossEvaluators(t *testing.T) {
	jobs := []exp.Job{
		{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "sparse-hamming"},
		{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 5, Topo: "sparse-hamming", SR: []int{2, 4}, SC: []int{2}},
	}
	for _, j := range jobs {
		fromNoc, err := EvalJob(j)
		if err != nil {
			t.Fatal(err)
		}
		fromDse, err := dse.EvalJob(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromNoc, fromDse) {
			t.Errorf("evaluators disagree on %v:\nnoc: %+v\ndse: %+v", j, fromNoc, fromDse)
		}
	}
}

func TestQualityNames(t *testing.T) {
	for _, q := range []Quality{Quick, Full} {
		back, err := QualityByName(QualityName(q))
		if err != nil || back != q {
			t.Errorf("quality %v round-trips to %v, %v", q, back, err)
		}
	}
	if q, err := QualityByName(""); err != nil || q != Quick {
		t.Errorf("empty quality = %v, %v, want Quick", q, err)
	}
	if _, err := QualityByName("heroic"); err == nil {
		t.Error("unknown quality should fail")
	}
}
