package noc

// Panel statistics: attribution of campaign effort (compute time,
// cache hits, simulated work) to named job groups — the Figure 6
// scenario panels, or the sweeps of a declarative campaign spec run
// by cmd/shrun.

import (
	"fmt"
	"time"

	"sparsehamming/internal/exp"
)

// PanelStats aggregates the campaign effort behind one panel (a
// Figure 6 scenario, a spec sweep): how much simulation work it took
// and how long the workers computed. Cached jobs contribute their
// simulated work figures (the result records them) but no compute
// time.
type PanelStats struct {
	// Label names the panel: the scenario ID for Figure 6, the sweep
	// label for spec campaigns.
	Label string
	// Jobs and CacheHits count the panel's campaign jobs and how many
	// of them were answered from the result cache.
	Jobs      int
	CacheHits int
	// Compute is the evaluation time of the panel's jobs summed
	// across workers (not wall-clock: panels of one batch compute
	// concurrently).
	Compute time.Duration
	// SimCycles and SimFlitHops total the simulated router-cycles and
	// flit movements behind the panel's predictions.
	SimCycles   int64
	SimFlitHops int64
	// Probes totals the saturation probes behind the panel's
	// predictions; CyclesSaved totals the simulated cycles the
	// adaptive tier's early verdicts avoided (0 on fixed tiers).
	Probes      int
	CyclesSaved int64
}

// String renders the stats for campaign footers, e.g.
// "8 jobs (0 cached), compute 12.3s, 45.2M cycles (3.7 Mcycles/s)".
func (ps PanelStats) String() string {
	s := fmt.Sprintf("%d jobs (%d cached)", ps.Jobs, ps.CacheHits)
	if ps.Compute > 0 {
		s += fmt.Sprintf(", compute %s", ps.Compute.Round(time.Millisecond))
	}
	if ps.SimCycles > 0 {
		s += fmt.Sprintf(", %.1fM cycles", float64(ps.SimCycles)/1e6)
		if ps.Compute > 0 {
			s += fmt.Sprintf(" (%.2f Mcycles/s)", float64(ps.SimCycles)/1e6/ps.Compute.Seconds())
		}
	}
	if ps.CyclesSaved > 0 {
		s += fmt.Sprintf(", %d probes, %.1fM cycles saved adaptively",
			ps.Probes, float64(ps.CyclesSaved)/1e6)
	}
	return s
}

// PanelTracker attributes a campaign's progress events and simulated
// work to named panels by job content key. Usage: create with the
// panel labels, Add every job under its panel index, Attach to the
// runner before Run (chaining any progress hook already installed),
// Detach after, and AddResult each job's result; Stats then holds one
// filled PanelStats per label.
//
// A job spec appearing under several panels is attributed to the
// first panel that added it (content keys deduplicate exactly like
// the runner does); every panel still counts it in Jobs.
type PanelTracker struct {
	// Stats holds one entry per label, filled during the run.
	Stats []PanelStats

	panelOf map[string]int // job key -> first panel that added it
	runner  *exp.Runner
	prev    func(exp.ProgressEvent)
}

// NewPanelTracker returns a tracker with one PanelStats per label.
func NewPanelTracker(labels []string) *PanelTracker {
	pt := &PanelTracker{
		Stats:   make([]PanelStats, len(labels)),
		panelOf: make(map[string]int),
	}
	for i, l := range labels {
		pt.Stats[i].Label = l
	}
	return pt
}

// Add registers a job under a panel.
func (pt *PanelTracker) Add(job exp.Job, panel int) {
	k := job.Key()
	if _, dup := pt.panelOf[k]; !dup {
		pt.panelOf[k] = panel
	}
	pt.Stats[panel].Jobs++
}

// Attach hooks the tracker into the runner's progress stream,
// chaining any hook the caller installed. Call Detach when the run
// is done.
func (pt *PanelTracker) Attach(r *exp.Runner) {
	pt.runner, pt.prev = r, r.Progress
	r.Progress = func(ev exp.ProgressEvent) {
		if pi, ok := pt.panelOf[ev.Job.Key()]; ok {
			if ev.Cached {
				pt.Stats[pi].CacheHits++
			}
			pt.Stats[pi].Compute += ev.Elapsed
		}
		if pt.prev != nil {
			pt.prev(ev)
		}
	}
}

// Detach restores the runner's previous progress hook.
func (pt *PanelTracker) Detach() {
	if pt.runner != nil {
		pt.runner.Progress = pt.prev
		pt.runner = nil
	}
}

// AddResult attributes a result's simulated work to the job's panel.
func (pt *PanelTracker) AddResult(job exp.Job, res *exp.Result) {
	if res == nil {
		return
	}
	if pi, ok := pt.panelOf[job.Key()]; ok {
		pt.Stats[pi].SimCycles += res.SimCycles
		pt.Stats[pi].SimFlitHops += res.SimFlitHops
		pt.Stats[pi].Probes += res.SimProbes
		pt.Stats[pi].CyclesSaved += res.SimCyclesSaved
	}
}
