package noc

import (
	"encoding/json"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/sim"
)

// TestObservedRunnerRecordsSpanTree runs one small predict job through
// an observed runner and checks the recorded execution trace has the
// documented shape: job → cost + saturation → zeroload and probes →
// warmup/measure phases.
func TestObservedRunnerRecordsSpanTree(t *testing.T) {
	hub := obs.NewHub()
	r := NewObservedRunner(2, nil, hub)
	job := exp.Job{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Seed: 1}
	if _, _, err := r.Run([]exp.Job{job}); err != nil {
		t.Fatal(err)
	}

	root := hub.Traces.Get(job.Key())
	if root == nil {
		t.Fatal("no trace recorded under the job key")
	}
	if root.Name != "job" || root.Attrs["mode"] != "predict" || root.Attrs["topo"] != "mesh" {
		t.Fatalf("root span wrong: name=%q attrs=%v", root.Name, root.Attrs)
	}
	if root.DurMs <= 0 {
		t.Errorf("root span not ended: dur_ms=%v", root.DurMs)
	}
	if root.Find("cost") == nil {
		t.Error("no cost span in the tree")
	}
	sat := root.Find("saturation")
	if sat == nil {
		t.Fatal("no saturation span in the tree")
	}
	if sat.Find("zeroload") == nil {
		t.Error("no zeroload span under saturation")
	}

	// Every probe must nest under the saturation span, carry its
	// injection rate, and contain the engine's phase spans.
	probes := 0
	for _, c := range sat.Children {
		if c.Name != "probe" {
			continue
		}
		probes++
		if _, ok := c.Attrs["rate"]; !ok {
			t.Errorf("probe span without rate attr: %v", c.Attrs)
		}
		if c.Find("warmup") == nil || c.Find("measure") == nil {
			t.Errorf("probe span missing phase children: %v", names(c))
		}
	}
	if probes == 0 {
		t.Error("saturation span has no probe children")
	}
	// No probe spans anywhere else in the tree.
	total := 0
	root.Walk(func(s *obs.Span) {
		if s.Name == "probe" {
			total++
		}
	})
	if total != probes {
		t.Errorf("%d probe spans in the tree, %d under saturation", total, probes)
	}

	// The tree is wire-ready.
	if _, err := json.Marshal(root); err != nil {
		t.Errorf("trace does not marshal: %v", err)
	}

	// The phase histogram saw the phases the trace recorded.
	var b strings.Builder
	if err := hub.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, phase := range []string{"probe", "warmup", "measure", "zeroload", "cost", "saturation"} {
		want := `sh_sim_phase_seconds_count{phase="` + phase + `"}`
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestObservedRunnerAdaptiveSpeculativeProbes exercises the
// adaptive-tier bisection with borrowed worker slots — speculative
// probes are forked and adopted across goroutines, which is exactly
// what the race detector must stay quiet about — and checks the
// adopted probe spans still land under the saturation span.
func TestObservedRunnerAdaptiveSpeculativeProbes(t *testing.T) {
	hub := obs.NewHub()
	r := NewObservedRunner(4, nil, hub)
	job := exp.Job{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Quality: "adaptive", Seed: 1}
	if _, _, err := r.Run([]exp.Job{job}); err != nil {
		t.Fatal(err)
	}
	root := hub.Traces.Get(job.Key())
	if root == nil {
		t.Fatal("no trace recorded under the job key")
	}
	sat := root.Find("saturation")
	if sat == nil {
		t.Fatal("no saturation span in the tree")
	}
	probes := 0
	for _, c := range sat.Children {
		if c.Name == "probe" {
			probes++
			if c.DurMs < 0 {
				t.Errorf("probe span with negative duration: %v", c.DurMs)
			}
		}
	}
	if probes == 0 {
		t.Error("adaptive saturation recorded no probe spans")
	}
	if _, err := json.Marshal(root); err != nil {
		t.Errorf("trace does not marshal: %v", err)
	}
}

// TestSimCountersMonotonic pins the run-boundary counter contract:
// more simulation can only move the process-wide counters up.
func TestSimCountersMonotonic(t *testing.T) {
	before := sim.Counters()
	r := NewObservedRunner(2, nil, obs.NewHub())
	job := exp.Job{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.1, Seed: 1}
	if _, _, err := r.Run([]exp.Job{job}); err != nil {
		t.Fatal(err)
	}
	after := sim.Counters()
	if after.Runs <= before.Runs {
		t.Errorf("runs counter did not advance: %d -> %d", before.Runs, after.Runs)
	}
	if after.Cycles <= before.Cycles {
		t.Errorf("cycles counter did not advance: %d -> %d", before.Cycles, after.Cycles)
	}
	if after.FlitHops < before.FlitHops {
		t.Errorf("flit-hops counter went backwards: %d -> %d", before.FlitHops, after.FlitHops)
	}
}

// names lists a span's direct child names (test diagnostics).
func names(s *obs.Span) []string {
	out := make([]string, len(s.Children))
	for i, c := range s.Children {
		out[i] = c.Name
	}
	return out
}
