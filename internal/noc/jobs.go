package noc

// This file wires the prediction toolchain into the experiment-
// campaign subsystem (package exp): EvalJob executes one serialized
// job spec, NewRunner builds a parallel runner around it, and the
// conversion helpers map between Prediction and the serializable
// exp.Result.

import (
	"fmt"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/spec"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// QualityName serializes a quality level for job specs.
func QualityName(q Quality) string {
	switch q {
	case Full:
		return "full"
	case Adaptive:
		return "adaptive"
	default:
		return "quick"
	}
}

// QualityByName parses a quality level; "" means Quick.
func QualityByName(name string) (Quality, error) {
	switch name {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	case "adaptive":
		return Adaptive, nil
	default:
		return Quick, fmt.Errorf("noc: unknown quality %q", name)
	}
}

// ArchForJob resolves a job's architecture: the scenario preset with
// the grid and arch overrides applied (spec.ArchForJob, shared with
// the dse evaluator so both toolchains resolve specs identically).
func ArchForJob(j exp.Job) (*tech.Arch, error) {
	return spec.ArchForJob(j)
}

// NewRunner returns a campaign runner executing toolchain jobs on
// workers goroutines (0 means all cores) with the optional cache.
// The runner's shared evaluation-slot pool doubles as the probe
// scheduler for adaptive-tier jobs: when slots sit idle (a campaign
// tail narrower than the pool), a job's saturation search borrows
// them for speculative bisection probes, so the pool stays busy
// without ever oversubscribing the machine. For a runner with
// metrics, traces, and logging attached, see NewObservedRunner.
func NewRunner(workers int, cache *exp.Cache) *exp.Runner {
	return NewObservedRunner(workers, cache, nil)
}

// runnerSched adapts the campaign runner's shared slot pool to the
// simulator's ProbeScheduler interface.
type runnerSched struct{ r *exp.Runner }

// TryGo implements sim.ProbeScheduler over Runner.TryAcquire.
func (s runnerSched) TryGo(fn func()) bool {
	if !s.r.TryAcquire() {
		return false
	}
	go func() {
		defer s.r.Release()
		fn()
	}()
	return true
}

// EvalJob executes one experiment job with the prediction toolchain.
// It is pure in the job spec — the architecture, topology, routing,
// traffic, and seed all come from the spec — which is what makes
// parallel campaigns deterministic and cached results sound.
func EvalJob(j exp.Job) (*exp.Result, error) {
	return evalJobSched(j, nil, nil)
}

// evalJobSched is EvalJob with an optional probe scheduler for
// adaptive-tier speculative probes (NewRunner wires the runner's slot
// pool; a nil scheduler runs every probe sequentially) and an
// optional trace span (NewObservedRunner records one tree per job).
// Neither changes results — only wall-clock and observability — so
// all entry points produce identical, cache-sound outputs.
func evalJobSched(j exp.Job, sched sim.ProbeScheduler, span *obs.Span) (*exp.Result, error) {
	if j.Mode == exp.ModeSurrogate {
		// The surrogate evaluator is simulation-free and shared with the
		// design-space explorer (package dse owns it); delegating keeps
		// the two toolchains' surrogate results trivially identical, so
		// they can share one cache file.
		cs := span.Child("cost")
		res, err := dse.EvalSurrogateJob(j)
		cs.End()
		return res, err
	}
	arch, err := ArchForJob(j)
	if err != nil {
		return nil, err
	}
	t, err := topo.ByName(j.Topo, arch.Rows, arch.Cols, j.SR, j.SC)
	if err != nil {
		return nil, err
	}
	quality, err := QualityByName(j.Quality)
	if err != nil {
		return nil, err
	}
	switch j.Mode {
	case exp.ModeCost:
		cs := span.Child("cost")
		pred, _, err := PredictCostOnly(arch, t)
		cs.End()
		if err != nil {
			return nil, err
		}
		return resultFromPrediction(pred, j), nil
	case exp.ModePredict:
		pred, err := predictSeeded(arch, t, j.Routing, j.Pattern, quality, j.EffectiveSeed(), sched, span)
		if err != nil {
			return nil, err
		}
		return resultFromPrediction(pred, j), nil
	case exp.ModeLoad:
		return evalLoadPoint(arch, t, quality, j, span)
	default:
		return nil, fmt.Errorf("noc: unknown job mode %q", j.Mode)
	}
}

// evalLoadPoint simulates a single offered-load point under the
// job's traffic pattern.
func evalLoadPoint(arch *tech.Arch, t *topo.Topology, quality Quality, j exp.Job, span *obs.Span) (*exp.Result, error) {
	cs := span.Child("cost")
	cost, err := phys.Evaluate(arch, t)
	cs.End()
	if err != nil {
		return nil, err
	}
	rt, err := route.ForName(t, j.Routing)
	if err != nil {
		return nil, err
	}
	pat, err := sim.PatternByName(j.Pattern, arch.Rows, arch.Cols)
	if err != nil {
		return nil, err
	}
	warmup, measure := quality.simWindows()
	curve, err := sim.LoadLatencyCurve(sim.Config{
		Topo: t, Routing: rt,
		NumVCs: arch.Proto.NumVCs, BufDepth: arch.Proto.BufDepthFlits,
		LinkLatency: cost.LinkLatencies, RouterDelay: RouterDelay,
		PacketLen: packetLen(arch), Pattern: pat, Seed: j.EffectiveSeed(),
		Warmup: warmup, Measure: measure, Span: span,
	}, []float64{j.Load})
	if err != nil {
		return nil, err
	}
	st := curve[0]
	return &exp.Result{
		Topology:          t.Kind,
		Params:            paramsString(j),
		RouterRadix:       t.MaxRadix(),
		Diameter:          t.Diameter(),
		AvgHops:           rt.AvgHops(),
		NumLinks:          t.NumLinks(),
		RoutingName:       rt.Name,
		OfferedRate:       st.OfferedRate,
		AcceptedRate:      st.AcceptedRate,
		AvgPacketLatency:  st.AvgPacketLatency,
		P99PacketLatency:  st.P99PacketLatency,
		DeliveredFraction: st.DeliveredFraction(),
		SimCycles:         st.Cycles,
		SimFlitHops:       st.FlitHops,
	}, nil
}

// paramsString renders a job's sparse Hamming offsets the way
// Prediction.Params does. Other topology kinds read SR differently
// (ruche's factor) or ignore it, so they get no params string.
func paramsString(j exp.Job) string {
	if j.Topo != "sparse-hamming" || (len(j.SR) == 0 && len(j.SC) == 0) {
		return ""
	}
	return topo.HammingParams{SR: j.SR, SC: j.SC}.String()
}

// resultFromPrediction serializes a Prediction.
func resultFromPrediction(p *Prediction, j exp.Job) *exp.Result {
	params := p.Params
	if params == "" {
		params = paramsString(j)
	}
	return &exp.Result{
		Topology:                p.Topology,
		Params:                  params,
		RouterRadix:             p.RouterRadix,
		Diameter:                p.Diameter,
		AvgHops:                 p.AvgHops,
		NumLinks:                p.NumLinks,
		TotalAreaMm2:            p.TotalAreaMm2,
		AreaOverheadPct:         p.AreaOverheadPct,
		TotalPowerW:             p.TotalPowerW,
		NoCPowerW:               p.NoCPowerW,
		ChannelUtilization:      p.ChannelUtilization,
		MaxLinkLatency:          p.MaxLinkLatency,
		ZeroLoadLatency:         p.ZeroLoadLatency,
		SaturationPct:           p.SaturationPct,
		SaturationResolutionPct: p.SatResolutionPct,
		RoutingName:             p.RoutingName,
		AnalyticZeroLoad:        p.AnalyticZeroLoad,
		AnalyticBoundPct:        p.AnalyticBoundPct,
		SimCycles:               p.SimCycles,
		SimFlitHops:             p.SimFlitHops,
		SimProbes:               p.Probes,
		SimCyclesSaved:          p.CyclesSaved,
		SaturationLowerBound:    p.SatLowerBound,
	}
}

// PredictionFromResult deserializes a campaign result back into the
// toolchain's Prediction, for the formatters.
func PredictionFromResult(r *exp.Result) *Prediction {
	return &Prediction{
		Topology:           r.Topology,
		Params:             r.Params,
		RouterRadix:        r.RouterRadix,
		Diameter:           r.Diameter,
		AvgHops:            r.AvgHops,
		NumLinks:           r.NumLinks,
		TotalAreaMm2:       r.TotalAreaMm2,
		AreaOverheadPct:    r.AreaOverheadPct,
		TotalPowerW:        r.TotalPowerW,
		NoCPowerW:          r.NoCPowerW,
		ChannelUtilization: r.ChannelUtilization,
		MaxLinkLatency:     r.MaxLinkLatency,
		ZeroLoadLatency:    r.ZeroLoadLatency,
		SaturationPct:      r.SaturationPct,
		SatResolutionPct:   r.SaturationResolutionPct,
		RoutingName:        r.RoutingName,
		AnalyticZeroLoad:   r.AnalyticZeroLoad,
		AnalyticBoundPct:   r.AnalyticBoundPct,
		SimCycles:          r.SimCycles,
		SimFlitHops:        r.SimFlitHops,
		Probes:             r.SimProbes,
		CyclesSaved:        r.SimCyclesSaved,
		SatLowerBound:      r.SaturationLowerBound,
	}
}

// routingName serializes a routing algorithm for job specs, mapping
// Auto onto the empty default.
func routingName(alg route.Algorithm) string {
	if alg == route.Auto {
		return ""
	}
	return alg.String()
}
