// Package noc ties the repository together into the paper's
// prediction toolchain (Figure 3): architectural parameters and a
// topology go into the physical model (package phys), whose link
// latency estimates feed the cycle-accurate simulator (package sim),
// producing the four metrics of the evaluation — NoC area overhead,
// NoC power, zero-load latency, and saturation throughput.
//
// The package also implements the paper's evaluation artifacts: the
// design-principle compliance table (Table I), the MemPool toolchain
// validation (Table III), the four-scenario topology comparison
// (Figure 6), and the iterative customization strategy of Section V.
package noc

import (
	"fmt"

	"sparsehamming/internal/analytic"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// Quality selects the simulation effort.
type Quality int

// Quality levels: Quick for tests and interactive exploration, Full
// for the benchmark harness regenerating the paper's figures, and
// Adaptive for the adaptive-control tier — Quick's budgets as hard
// caps, but every saturation probe may return an early verdict, the
// measurement phase stops once the latency confidence interval has
// converged, and bisection probes run speculatively in parallel when
// worker slots are free (see internal/sim's Control). Fixed-budget
// tiers stay bit-identical to previous releases; Adaptive trades
// bit-stability of the pinned artifacts for a >=2x cheaper campaign
// with metrics within a couple percent.
const (
	Quick Quality = iota
	Full
	Adaptive
)

// simWindows returns warmup/measure cycles for a quality level.
func (q Quality) simWindows() (warmup, measure int) {
	if q == Full {
		return 2000, 6000
	}
	return 800, 2500
}

// simControl returns the adaptive controller template for a quality
// level: nil for the fixed-budget tiers, the toolchain's tuned
// monitor configuration for Adaptive. The tuning is deliberately
// conservative — early verdicts must imply the fixed-budget verdicts
// (the adaptive Figure 6 panels deviate from the fixed ones by at
// most about one bisection cell; the parity test pins two percent).
func (q Quality) simControl() *sim.Control {
	if q != Adaptive {
		return nil
	}
	return &sim.Control{
		RelHalfWidth:  0.02,
		WarmTolerance: 0.05,
	}
}

// Prediction is the toolchain output for one topology on one
// architecture: the cost metrics from the physical model and the
// performance metrics from simulation.
type Prediction struct {
	Topology string
	Params   string // e.g. sparse Hamming offset sets

	// Topology properties.
	RouterRadix int
	Diameter    int
	AvgHops     float64
	NumLinks    int

	// Cost (package phys).
	TotalAreaMm2       float64
	AreaOverheadPct    float64
	TotalPowerW        float64
	NoCPowerW          float64
	ChannelUtilization float64
	MaxLinkLatency     int

	// Performance (package sim). SatResolutionPct is the saturation
	// search's measurement resolution — the width of the final
	// bisection bracket in percent of injection capacity; differences
	// between predictions smaller than it are not measured.
	ZeroLoadLatency  float64 // cycles
	SaturationPct    float64 // percent of injection capacity
	SatResolutionPct float64 // percent of injection capacity
	RoutingName      string

	// High-level-model estimates (package analytic), reported
	// alongside the simulated values to expose the accuracy gap the
	// paper motivates its toolchain with: the closed-form zero-load
	// latency and the channel-load saturation bound.
	AnalyticZeroLoad float64
	AnalyticBoundPct float64

	// SimCycles and SimFlitHops total the simulated router-cycles and
	// flit movements behind this prediction (the zero-load reference
	// run plus every saturation probe) — the work figures campaign
	// reports divide by wall-clock time. Zero for cost-only
	// predictions, which never simulate.
	SimCycles   int64
	SimFlitHops int64

	// Probes counts the saturation probes the search consumed;
	// CyclesSaved is the adaptive tier's conservative estimate of
	// simulated cycles avoided by early verdicts (0 on fixed tiers).
	Probes      int
	CyclesSaved int64

	// SatLowerBound marks a saturation search that bottomed out:
	// SaturationPct is then the search resolution, an upper bound on
	// the true rate, not a measured throughput.
	SatLowerBound bool
}

// RouterDelay is the router pipeline depth in cycles assumed by the
// toolchain (route computation, VC allocation, switch allocation,
// traversal). The paper's correction discussion for MemPool implies
// their model charges a minimum of one cycle per router stage; three
// cycles is representative for an input-queued AXI router at 1+ GHz.
// The value itself lives in package tech so the design-space
// surrogate (package dse) shares it without importing the toolchain.
const RouterDelay = tech.RouterDelay

// Predict runs the full toolchain for one topology.
func Predict(arch *tech.Arch, t *topo.Topology, quality Quality) (*Prediction, error) {
	return predictSeeded(arch, t, "", "", quality, 1, nil, nil)
}

// PredictWith runs the toolchain with an explicit routing algorithm
// (used by the routing ablation).
func PredictWith(arch *tech.Arch, t *topo.Topology, alg route.Algorithm, quality Quality) (*Prediction, error) {
	return predictSeeded(arch, t, routingName(alg), "", quality, 1, nil, nil)
}

// predictSeeded runs the toolchain with explicit routing and traffic
// pattern names (route and sim registries; empty for the co-designed
// default and uniform random) and an explicit simulation seed; the
// campaign job evaluator threads all three from the job spec so
// cached results stay reproducible. sched, when non-nil, lets the
// adaptive tier's saturation search borrow spare worker slots for
// speculative probes; span, when non-nil, receives the execution
// trace (both wall-clock/observability only; never part of the
// result).
func predictSeeded(arch *tech.Arch, t *topo.Topology, routing, pattern string, quality Quality, seed int64, sched sim.ProbeScheduler, span *obs.Span) (*Prediction, error) {
	cs := span.Child("cost")
	cost, err := phys.Evaluate(arch, t)
	cs.End()
	if err != nil {
		return nil, err
	}
	r, err := route.ForName(t, routing)
	if err != nil {
		return nil, err
	}
	if arch.Proto.NumVCs < r.NumClasses {
		return nil, fmt.Errorf("noc: %d VCs cannot host the %d VC classes of %s",
			arch.Proto.NumVCs, r.NumClasses, r.Name)
	}
	return predictShaped(nil, arch, t, cost, r, pattern, quality, seed, nil, sched, span)
}

// predictShaped is the simulation half of predictSeeded, with the
// cost model and routing already resolved and an optional pre-built
// simulator Shape. The grouped predict evaluator resolves those once
// per topology and calls this per quality tier/seed, sharing the one
// Shape across all of them; a nil sh falls back to the per-call build
// inside the saturation search. anchor, when non-nil, shares the
// zero-load reference run between the quality tiers of one
// (pattern, seed) — the caller must key anchors as
// sim.ZeroLoadScheduleKey requires. Results are bit-identical either
// way.
func predictShaped(sh *sim.Shape, arch *tech.Arch, t *topo.Topology, cost *phys.Result, r *route.Routing, pattern string, quality Quality, seed int64, anchor *sim.ZeroLoadAnchor, sched sim.ProbeScheduler, span *obs.Span) (*Prediction, error) {
	pat, err := sim.PatternByName(pattern, t.Rows, t.Cols)
	if err != nil {
		return nil, err
	}

	warmup, measure := quality.simWindows()
	satSpan := span.Child("saturation")
	base := sim.Config{
		Topo:        t,
		Routing:     r,
		NumVCs:      arch.Proto.NumVCs,
		BufDepth:    arch.Proto.BufDepthFlits,
		LinkLatency: cost.LinkLatencies,
		RouterDelay: RouterDelay,
		PacketLen:   packetLen(arch),
		Pattern:     pat,
		Seed:        seed,
		Warmup:      warmup,
		Measure:     measure,
		Control:     quality.simControl(),
		Sched:       sched,
		Span:        satSpan,
	}
	var sat sim.SaturationResult
	if sh != nil {
		sat, err = sim.SaturationThroughputAnchored(sh, base, anchor)
	} else {
		sat, err = sim.SaturationThroughput(base)
	}
	satSpan.SetAttr("probes", sat.Probes)
	satSpan.End()
	if err != nil {
		return nil, err
	}

	am := &analytic.Model{
		Topo:        t,
		Routing:     r,
		LinkLatency: cost.LinkLatencies,
		RouterDelay: RouterDelay,
		PacketLen:   base.PacketLen,
	}
	azl, err := am.ZeroLoadLatency()
	if err != nil {
		return nil, err
	}
	abound, err := am.SaturationBound()
	if err != nil {
		return nil, err
	}

	maxLat := 0
	for _, l := range cost.LinkLatencies {
		if l > maxLat {
			maxLat = l
		}
	}
	return &Prediction{
		Topology:           t.Kind,
		RouterRadix:        t.MaxRadix(),
		Diameter:           t.Diameter(),
		AvgHops:            r.AvgHops(),
		NumLinks:           t.NumLinks(),
		TotalAreaMm2:       cost.TotalAreaMm2,
		AreaOverheadPct:    100 * cost.AreaOverhead,
		TotalPowerW:        cost.TotalPowerW,
		NoCPowerW:          cost.NoCPowerW,
		ChannelUtilization: cost.ChannelUtilization,
		MaxLinkLatency:     maxLat,
		ZeroLoadLatency:    sat.ZeroLoadLatency,
		SaturationPct:      100 * sat.SaturationRate,
		SatResolutionPct:   100 * sat.Resolution,
		RoutingName:        r.Name,
		AnalyticZeroLoad:   azl,
		AnalyticBoundPct:   100 * abound,
		SimCycles:          sat.SimCycles,
		SimFlitHops:        sat.SimFlitHops,
		Probes:             sat.Probes,
		CyclesSaved:        sat.CyclesSaved,
		SatLowerBound:      sat.LowerBound,
	}, nil
}

// PredictCostOnly runs only the physical model — the fast inner loop
// of the customization strategy, which needs cost and hop estimates
// without cycle-accurate simulation.
func PredictCostOnly(arch *tech.Arch, t *topo.Topology) (*Prediction, *phys.Result, error) {
	cost, err := phys.Evaluate(arch, t)
	if err != nil {
		return nil, nil, err
	}
	p := &Prediction{
		Topology:           t.Kind,
		RouterRadix:        t.MaxRadix(),
		Diameter:           t.Diameter(),
		AvgHops:            t.AverageHops(),
		NumLinks:           t.NumLinks(),
		TotalAreaMm2:       cost.TotalAreaMm2,
		AreaOverheadPct:    100 * cost.AreaOverhead,
		TotalPowerW:        cost.TotalPowerW,
		NoCPowerW:          cost.NoCPowerW,
		ChannelUtilization: cost.ChannelUtilization,
	}
	return p, cost, nil
}

// packetLen returns the simulated packet length in flits (see
// tech.Arch.PacketLenFlits, shared with the design-space surrogate).
func packetLen(arch *tech.Arch) int {
	return arch.PacketLenFlits()
}
