package noc

import (
	"fmt"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/spec"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// PaperSHGParams returns the sparse Hamming graph parameter sets the
// paper reports for each evaluation scenario (Figure 6 captions).
func PaperSHGParams(id tech.ScenarioID) topo.HammingParams {
	switch id {
	case tech.ScenarioA:
		return topo.HammingParams{SR: []int{4}, SC: []int{2, 5}}
	case tech.ScenarioB:
		return topo.HammingParams{SR: []int{2, 4}, SC: []int{2, 4}}
	case tech.ScenarioC:
		return topo.HammingParams{SR: []int{3}, SC: []int{2, 5}}
	case tech.ScenarioD:
		return topo.HammingParams{SR: []int{2, 4}, SC: []int{2, 4}}
	default:
		return topo.HammingParams{}
	}
}

// TopologyEntry is one comparison candidate for a grid.
type TopologyEntry struct {
	Name       string         // display name (topo registry label)
	Kind       string         // topo registry kind, the job-spec name
	Topology   *topo.Topology // nil if not applicable on this grid
	Params     string         // SHG parameter string, empty otherwise
	Applicable bool
	// Err records why an inapplicable entry does not fit the grid
	// (the registry's structural constraint error). It is diagnostic:
	// inapplicability is an expected outcome, exactly as in the
	// paper's Figure 6, not a failure of the set.
	Err error
}

// figure6Kinds lists the eight topology families of the paper's
// comparison, in Figure 6 order (registry kinds).
var figure6Kinds = []string{
	"ring", "mesh", "torus", "folded-torus",
	"hypercube", "slimnoc", "flattened-butterfly", "sparse-hamming",
}

// ComparisonSet builds the eight topologies of Figure 6 for a grid
// from the topology registry. Families with structural grid
// constraints (hypercube, SlimNoC) are marked not applicable — with
// the constraint's error preserved in the entry — when the grid does
// not admit them, exactly as in the paper (SlimNoC only applies to
// scenarios c and d, where N_T = 128 = 2*8^2). Build errors on
// applicable families abort the set: those are real failures, for
// every family alike.
func ComparisonSet(rows, cols int, shg topo.HammingParams) ([]TopologyEntry, error) {
	entries := make([]TopologyEntry, 0, len(figure6Kinds))
	for _, kind := range figure6Kinds {
		fam, ok := topo.FamilyByName(kind)
		if !ok {
			return nil, fmt.Errorf("noc: topology %q not registered", kind)
		}
		e := TopologyEntry{Name: fam.Label(), Kind: kind}
		if err := fam.Applicable(rows, cols); err != nil {
			e.Err = err
			entries = append(entries, e)
			continue
		}
		var sr, sc []int
		if kind == "sparse-hamming" {
			sr, sc = shg.SR, shg.SC
			e.Params = shg.String()
		}
		t, err := topo.ByName(kind, rows, cols, sr, sc)
		if err != nil {
			return nil, fmt.Errorf("noc: building %s: %w", fam.Label(), err)
		}
		e.Topology = t
		e.Applicable = true
		entries = append(entries, e)
	}
	return entries, nil
}

// Figure6Row is one topology's result in one scenario of Figure 6.
type Figure6Row struct {
	Scenario   tech.ScenarioID
	Topology   string
	Params     string
	Applicable bool
	Pred       *Prediction
}

// Figure6Options customizes the Figure 6 campaign beyond the paper's
// configuration — the registry-driven ablation knobs.
type Figure6Options struct {
	// Routing forces one algorithm (route registry name) onto every
	// topology instead of the paper's per-topology choice.
	Routing string
	// Pattern measures saturation and zero-load latency under a
	// traffic pattern (sim pattern registry name) instead of uniform
	// random.
	Pattern string
}

// Figure6 regenerates one scenario panel of Figure 6: the cost and
// performance of all applicable topologies under uniform random
// traffic with the paper's SHG parameters. It runs the panel as a
// parallel campaign on all cores; use Figure6Panels for explicit
// worker, cache, and option control plus per-panel campaign
// statistics.
func Figure6(id tech.ScenarioID, quality Quality) ([]Figure6Row, error) {
	panels, _, err := Figure6Panels([]tech.ScenarioID{id}, quality, nil, nil)
	if err != nil {
		return nil, err
	}
	return panels[0], nil
}

// Figure6Spec builds the declarative campaign spec of the Figure 6
// panels: one sweep per scenario over its applicable comparison set,
// with the paper's SHG parameters and routing choices. The checked-in
// preset files under examples/specs/ are exactly these specs
// serialized (pinned by a test), so cmd/shrun reproduces Figure 6
// bit-for-bit from a data file.
func Figure6Spec(ids []tech.ScenarioID, quality Quality, opts *Figure6Options) (*spec.Spec, error) {
	s, _, err := figure6Sweeps(ids, quality, opts)
	return s, err
}

// figure6Sweeps builds the Figure 6 spec together with the comparison
// entries each sweep was derived from, so Figure6Panels scaffolds its
// rows from the very sets the jobs came from.
func figure6Sweeps(ids []tech.ScenarioID, quality Quality, opts *Figure6Options) (*spec.Spec, [][]TopologyEntry, error) {
	s := &spec.Spec{
		Name:        "figure6-" + QualityName(quality),
		Description: "the paper's Figure 6 topology comparison, one sweep per evaluation scenario",
	}
	sets := make([][]TopologyEntry, 0, len(ids))
	for _, id := range ids {
		arch := tech.Scenario(id)
		if arch == nil {
			return nil, nil, fmt.Errorf("noc: unknown scenario %q", id)
		}
		shg := PaperSHGParams(id)
		entries, err := ComparisonSet(arch.Rows, arch.Cols, shg)
		if err != nil {
			return nil, nil, err
		}
		sweep := spec.Sweep{
			Label:     string(id),
			Mode:      string(exp.ModePredict),
			Arch:      spec.ArchSpec{Scenario: string(id)},
			Qualities: []string{QualityName(quality)},
			Seeds:     []int64{1},
		}
		if opts != nil && opts.Routing != "" {
			sweep.Routings = []string{opts.Routing}
		}
		if opts != nil && opts.Pattern != "" {
			sweep.Patterns = []string{opts.Pattern}
		}
		for _, e := range entries {
			if !e.Applicable {
				continue
			}
			ts := spec.TopologySpec{Kind: e.Kind}
			if e.Kind == "sparse-hamming" {
				ts.SR, ts.SC = shg.SR, shg.SC
			}
			if sweep.Routings == nil {
				ts.Routing = Figure6Routing(e.Kind)
			}
			sweep.Topologies = append(sweep.Topologies, ts)
		}
		s.Sweeps = append(s.Sweeps, sweep)
		sets = append(sets, entries)
	}
	return s, sets, nil
}

// Figure6Panels regenerates the Figure 6 panels of several scenarios
// as one campaign batch: the panels' spec (Figure6Spec) expands into
// one job per applicable topology of every scenario, so the runner's
// worker pool sees the whole sweep at once. A nil runner means the
// default parallel toolchain runner (all cores, no cache); nil opts
// mean the paper's configuration. The returned slices are aligned
// with ids: panels ordered like ComparisonSet, plus one PanelStats
// per scenario reporting the compute and simulation work behind it.
func Figure6Panels(ids []tech.ScenarioID, quality Quality, r *exp.Runner, opts *Figure6Options) ([][]Figure6Row, []PanelStats, error) {
	if r == nil {
		r = NewRunner(0, nil)
	}
	sp, sets, err := figure6Sweeps(ids, quality, opts)
	if err != nil {
		return nil, nil, err
	}
	groups, err := sp.ExpandSweeps()
	if err != nil {
		return nil, nil, err
	}

	pt := NewPanelTracker(sp.Labels())
	type slot struct{ panel, row int }
	var (
		jobs   []exp.Job
		slots  []slot
		panels = make([][]Figure6Row, len(ids))
	)
	for pi, id := range ids {
		entries := sets[pi]
		applicable := 0
		for _, e := range entries {
			if e.Applicable {
				applicable++
			}
		}
		if applicable != len(groups[pi]) {
			return nil, nil, fmt.Errorf("noc: figure 6 spec expanded %d jobs for scenario %s, want %d",
				len(groups[pi]), id, applicable)
		}
		rows := make([]Figure6Row, len(entries))
		gi := 0
		for ri, e := range entries {
			rows[ri] = Figure6Row{Scenario: id, Topology: e.Name, Params: e.Params, Applicable: e.Applicable}
			if !e.Applicable {
				continue
			}
			job := groups[pi][gi]
			gi++
			pt.Add(job, pi)
			jobs = append(jobs, job)
			slots = append(slots, slot{pi, ri})
		}
		panels[pi] = rows
	}

	pt.Attach(r)
	defer pt.Detach()
	results, _, err := r.Run(jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("noc: figure 6 campaign: %w", err)
	}
	for k, res := range results {
		s := slots[k]
		panels[s.panel][s.row].Pred = PredictionFromResult(res)
		pt.AddResult(jobs[k], res)
	}
	return panels, pt.Stats, nil
}

// Figure6Routing returns the routing name (route registry) used for a
// topology kind in the Figure 6 comparison. The paper simulates every
// topology with "a routing algorithm that minimizes the number of
// router-to-router hops" (generic table routing in BookSim2), so the
// hypercube gets our generic hop-minimal tables here; mesh, torus and
// ring keep their standard deadlock-free schemes (which are
// hop-minimal on those topologies and are also what BookSim uses for
// them), selected as the empty co-designed default; the sparse
// Hamming graph uses the monotone dimension-order routing it is
// co-designed with, as Section II-C prescribes.
//
// Note (see EXPERIMENTS.md): giving the hypercube its topology-tuned
// e-cube routing instead would raise its saturation throughput above
// the sparse Hamming graph's — the routing ablation benchmark
// quantifies this.
func Figure6Routing(kind string) string {
	if kind == "hypercube" {
		return "hop-minimal"
	}
	return ""
}
