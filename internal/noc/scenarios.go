package noc

import (
	"fmt"
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/route"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// PaperSHGParams returns the sparse Hamming graph parameter sets the
// paper reports for each evaluation scenario (Figure 6 captions).
func PaperSHGParams(id tech.ScenarioID) topo.HammingParams {
	switch id {
	case tech.ScenarioA:
		return topo.HammingParams{SR: []int{4}, SC: []int{2, 5}}
	case tech.ScenarioB:
		return topo.HammingParams{SR: []int{2, 4}, SC: []int{2, 4}}
	case tech.ScenarioC:
		return topo.HammingParams{SR: []int{3}, SC: []int{2, 5}}
	case tech.ScenarioD:
		return topo.HammingParams{SR: []int{2, 4}, SC: []int{2, 4}}
	default:
		return topo.HammingParams{}
	}
}

// TopologyEntry is one comparison candidate for a grid.
type TopologyEntry struct {
	Name       string
	Topology   *topo.Topology // nil if not applicable on this grid
	Params     string         // SHG parameter string, empty otherwise
	Applicable bool
}

// ComparisonSet builds the eight topologies of Figure 6 for a grid.
// Topologies with structural applicability constraints (hypercube,
// SlimNoC) are marked not applicable when the grid does not admit
// them, exactly as in the paper (SlimNoC only applies to scenarios c
// and d, where N_T = 128 = 2*8^2).
func ComparisonSet(rows, cols int, shg topo.HammingParams) ([]TopologyEntry, error) {
	entries := make([]TopologyEntry, 0, 8)
	add := func(name string, t *topo.Topology, params string, err error) error {
		if err != nil {
			return fmt.Errorf("noc: building %s: %w", name, err)
		}
		entries = append(entries, TopologyEntry{Name: name, Topology: t, Params: params, Applicable: true})
		return nil
	}

	ring, err := topo.NewRing(rows, cols)
	if err := add("ring", ring, "", err); err != nil {
		return nil, err
	}
	mesh, err := topo.NewMesh(rows, cols)
	if err := add("2d-mesh", mesh, "", err); err != nil {
		return nil, err
	}
	torus, err := topo.NewTorus(rows, cols)
	if err := add("2d-torus", torus, "", err); err != nil {
		return nil, err
	}
	ft, err := topo.NewFoldedTorus(rows, cols)
	if err := add("folded-2d-torus", ft, "", err); err != nil {
		return nil, err
	}

	if hc, err := topo.NewHypercube(rows, cols); err == nil {
		entries = append(entries, TopologyEntry{Name: "hypercube", Topology: hc, Applicable: true})
	} else {
		entries = append(entries, TopologyEntry{Name: "hypercube"})
	}
	if topo.SlimNoCApplicable(rows, cols) {
		sn, err := topo.NewSlimNoC(rows, cols)
		if err != nil {
			return nil, fmt.Errorf("noc: building slimnoc: %w", err)
		}
		entries = append(entries, TopologyEntry{Name: "slimnoc", Topology: sn, Applicable: true})
	} else {
		entries = append(entries, TopologyEntry{Name: "slimnoc"})
	}

	fb, err := topo.NewFlattenedButterfly(rows, cols)
	if err := add("flattened-butterfly", fb, "", err); err != nil {
		return nil, err
	}
	sh, err := topo.NewSparseHamming(rows, cols, shg)
	if err := add("sparse-hamming", sh, shg.String(), err); err != nil {
		return nil, err
	}
	return entries, nil
}

// Figure6Row is one topology's result in one scenario of Figure 6.
type Figure6Row struct {
	Scenario   tech.ScenarioID
	Topology   string
	Params     string
	Applicable bool
	Pred       *Prediction
}

// PanelStats aggregates the campaign effort behind one Figure 6
// panel: how much simulation work it took and how long the workers
// computed. Cached jobs contribute their simulated work figures (the
// result records them) but no compute time.
type PanelStats struct {
	Scenario tech.ScenarioID
	// Jobs and CacheHits count the panel's campaign jobs and how many
	// of them were answered from the result cache.
	Jobs      int
	CacheHits int
	// Compute is the evaluation time of the panel's jobs summed
	// across workers (not wall-clock: panels of one batch compute
	// concurrently).
	Compute time.Duration
	// SimCycles and SimFlitHops total the simulated router-cycles and
	// flit movements behind the panel's predictions.
	SimCycles   int64
	SimFlitHops int64
}

// String renders the stats for campaign footers, e.g.
// "8 jobs (0 cached), compute 12.3s, 45.2M cycles (3.7 Mcycles/s)".
func (ps PanelStats) String() string {
	s := fmt.Sprintf("%d jobs (%d cached)", ps.Jobs, ps.CacheHits)
	if ps.Compute > 0 {
		s += fmt.Sprintf(", compute %s", ps.Compute.Round(time.Millisecond))
	}
	if ps.SimCycles > 0 {
		s += fmt.Sprintf(", %.1fM cycles", float64(ps.SimCycles)/1e6)
		if ps.Compute > 0 {
			s += fmt.Sprintf(" (%.2f Mcycles/s)", float64(ps.SimCycles)/1e6/ps.Compute.Seconds())
		}
	}
	return s
}

// Figure6 regenerates one scenario panel of Figure 6: the cost and
// performance of all applicable topologies under uniform random
// traffic with the paper's SHG parameters. It runs the panel as a
// parallel campaign on all cores; use Figure6Panels for explicit
// worker and cache control plus per-panel campaign statistics.
func Figure6(id tech.ScenarioID, quality Quality) ([]Figure6Row, error) {
	panels, _, err := Figure6Panels([]tech.ScenarioID{id}, quality, nil)
	if err != nil {
		return nil, err
	}
	return panels[0], nil
}

// Figure6Panels regenerates the Figure 6 panels of several scenarios
// as one campaign batch: every applicable topology of every scenario
// becomes one job, so the runner's worker pool sees the whole sweep
// at once. A nil runner means the default parallel toolchain runner
// (all cores, no cache). The returned slices are aligned with ids:
// panels ordered like ComparisonSet, plus one PanelStats per scenario
// reporting the wall-clock and simulation work behind it.
func Figure6Panels(ids []tech.ScenarioID, quality Quality, r *exp.Runner) ([][]Figure6Row, []PanelStats, error) {
	if r == nil {
		r = NewRunner(0, nil)
	}
	type slot struct{ panel, row int }
	var (
		jobs   []exp.Job
		slots  []slot
		panels = make([][]Figure6Row, len(ids))
	)
	for pi, id := range ids {
		arch := tech.Scenario(id)
		if arch == nil {
			return nil, nil, fmt.Errorf("noc: unknown scenario %q", id)
		}
		shg := PaperSHGParams(id)
		entries, err := ComparisonSet(arch.Rows, arch.Cols, shg)
		if err != nil {
			return nil, nil, err
		}
		rows := make([]Figure6Row, len(entries))
		for ri, e := range entries {
			rows[ri] = Figure6Row{Scenario: id, Topology: e.Name, Params: e.Params, Applicable: e.Applicable}
			if !e.Applicable {
				continue
			}
			job := exp.Job{
				Mode:     exp.ModePredict,
				Scenario: string(id),
				Topo:     e.Topology.Kind,
				Routing:  routingName(Figure6Algorithm(e.Name)),
				Quality:  QualityName(quality),
				Seed:     1,
			}
			if e.Topology.Kind == "sparse-hamming" {
				job.SR, job.SC = shg.SR, shg.SC
			}
			jobs = append(jobs, job)
			slots = append(slots, slot{pi, ri})
		}
		panels[pi] = rows
	}

	// Attribute per-job compute time and cache hits to panels by job
	// key (scenario names differ across panels, so keys are unique),
	// chaining any progress hook the caller installed.
	stats := make([]PanelStats, len(ids))
	for i, id := range ids {
		stats[i].Scenario = id
	}
	keyPanel := make(map[string]int, len(jobs))
	for k, job := range jobs {
		keyPanel[job.Key()] = slots[k].panel
		stats[slots[k].panel].Jobs++
	}
	prev := r.Progress
	r.Progress = func(ev exp.ProgressEvent) {
		if pi, ok := keyPanel[ev.Job.Key()]; ok {
			if ev.Cached {
				stats[pi].CacheHits++
			}
			stats[pi].Compute += ev.Elapsed
		}
		if prev != nil {
			prev(ev)
		}
	}
	defer func() { r.Progress = prev }()

	results, _, err := r.Run(jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("noc: figure 6 campaign: %w", err)
	}
	for k, res := range results {
		s := slots[k]
		panels[s.panel][s.row].Pred = PredictionFromResult(res)
		stats[s.panel].SimCycles += res.SimCycles
		stats[s.panel].SimFlitHops += res.SimFlitHops
	}
	return panels, stats, nil
}

// Figure6Algorithm returns the routing used in the Figure 6
// comparison. The paper simulates every topology with "a routing
// algorithm that minimizes the number of router-to-router hops"
// (generic table routing in BookSim2), so the low-diameter established
// topologies get our generic hop-minimal tables here; mesh, torus and
// ring keep their standard deadlock-free schemes (which are
// hop-minimal on those topologies and are also what BookSim uses for
// them); the sparse Hamming graph uses the monotone dimension-order
// routing it is co-designed with, as Section II-C prescribes.
//
// Note (see EXPERIMENTS.md): giving the hypercube its topology-tuned
// e-cube routing instead would raise its saturation throughput above
// the sparse Hamming graph's — the routing ablation benchmark
// quantifies this.
func Figure6Algorithm(topology string) route.Algorithm {
	if topology == "hypercube" {
		return route.HopMinimal
	}
	return route.Auto
}
