package noc

import (
	"reflect"
	"strings"
	"testing"

	"sparsehamming/internal/exp"
)

// loadLadder is a mixed load sweep on one topology — one group under
// LoadGroupKey, with pattern, load, seed, and quality varying per
// point.
func loadLadder() []exp.Job {
	return []exp.Job{
		{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.05, Seed: 1},
		{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.1, Pattern: "transpose", Seed: 2},
		{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.2, Seed: 3, Quality: "adaptive"},
		{Mode: exp.ModeLoad, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh", Load: 0.4, Pattern: "shuffle", Seed: 4},
	}
}

// TestGroupedLoadEvalMatchesPerJob is the noc-level parity contract:
// a load ladder evaluated through one sim.Batch produces bit-identical
// results — SimCycles included — to the per-job evalLoadPoint path.
func TestGroupedLoadEvalMatchesPerJob(t *testing.T) {
	jobs := loadLadder()

	want := make([]*exp.Result, len(jobs))
	for i, j := range jobs {
		res, err := EvalJob(j)
		if err != nil {
			t.Fatalf("EvalJob(%v): %v", j, err)
		}
		want[i] = res
	}

	got, err := evalLoadGroup(jobs, nil)
	if err != nil {
		t.Fatalf("evalLoadGroup: %v", err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %v:\ngrouped %+v\nper-job %+v", jobs[i], got[i], want[i])
		}
	}
}

// TestLoadGroupKey pins what the group key does and does not
// distinguish: load points of one sweep share a key, other modes and
// other topologies or architectures never join the group.
func TestLoadGroupKey(t *testing.T) {
	jobs := loadLadder()
	k0, ok := LoadGroupKey(jobs[0])
	if !ok {
		t.Fatal("load job not groupable")
	}
	for _, j := range jobs[1:] {
		k, ok := LoadGroupKey(j)
		if !ok || k != k0 {
			t.Errorf("ladder job %v got key %q, want %q", j, k, k0)
		}
	}

	if _, ok := LoadGroupKey(exp.Job{Mode: exp.ModePredict, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}); ok {
		t.Error("predict job was groupable")
	}
	if _, ok := LoadGroupKey(exp.Job{Mode: exp.ModeCost, Scenario: "a", Rows: 4, Cols: 4, Topo: "mesh"}); ok {
		t.Error("cost job was groupable")
	}

	j := jobs[0]
	j.Topo = "torus"
	if k, _ := LoadGroupKey(j); k == k0 {
		t.Error("different topology shares a group key")
	}
	j = jobs[0]
	j.Routing = "hop-minimal"
	if k, _ := LoadGroupKey(j); k == k0 {
		t.Error("different routing shares a group key")
	}
	j = jobs[0]
	j.Arch = &exp.ArchOverride{NumVCs: 8}
	if k, _ := LoadGroupKey(j); k == k0 {
		t.Error("different architecture override shares a group key")
	}
}

// TestRunnerGroupsLoadSweep checks the wiring end to end: a campaign
// of load points dispatches as one group (visible in the runner
// stats) and its results match the per-job evaluator.
func TestRunnerGroupsLoadSweep(t *testing.T) {
	jobs := loadLadder()
	r := NewRunner(4, nil)
	before := r.Stats()
	got, rep, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if rep.Computed != len(jobs) {
		t.Errorf("report = %+v, want %d computed", rep, len(jobs))
	}
	if d := after.Groups - before.Groups; d != 1 {
		t.Errorf("group dispatches: got %d, want 1", d)
	}
	if d := after.GroupedJobs - before.GroupedJobs; d != int64(len(jobs)) {
		t.Errorf("grouped jobs: got %d, want %d", d, len(jobs))
	}

	for i, j := range jobs {
		want, err := EvalJob(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("job %v:\nrunner  %+v\nper-job %+v", j, got[i], want)
		}
	}
}

// TestGroupFallbackOnBadMember: when one point of a ladder cannot be
// evaluated (here: an unknown traffic pattern), the whole-group
// dispatch fails and the runner re-evaluates every member through the
// per-job path — so the good points still succeed with their usual
// results and only the bad one fails, exactly as an ungrouped
// campaign would behave.
func TestGroupFallbackOnBadMember(t *testing.T) {
	jobs := loadLadder()
	bad := jobs[0]
	bad.Load = 0.3
	bad.Pattern = "tornado" // not a registered pattern
	jobs = append(jobs, bad)

	r := NewRunner(4, nil)
	before := r.Stats()
	got, rep, err := r.Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "tornado") {
		t.Fatalf("Run error = %v, want pattern failure", err)
	}
	after := r.Stats()
	if rep.Failed != 1 || rep.Computed != len(jobs)-1 {
		t.Errorf("report = %+v, want 1 failed / %d computed", rep, len(jobs)-1)
	}
	// The failed dispatch must not count as a completed group.
	if d := after.Groups - before.Groups; d != 0 {
		t.Errorf("group dispatches: got %d, want 0 (fallback)", d)
	}
	if got[len(jobs)-1] != nil {
		t.Errorf("bad job produced a result: %+v", got[len(jobs)-1])
	}
	for i, j := range jobs[:len(jobs)-1] {
		want, err := EvalJob(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("job %v:\nfallback %+v\nper-job  %+v", j, got[i], want)
		}
	}
}
