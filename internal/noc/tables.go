package noc

import (
	"fmt"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// TableIRow is one topology family's compliance row (Table I).
// Columns marked "measured" are computed from the concrete instance
// on the requested grid; the sparse Hamming row reports intervals over
// its parameter space and parenthesized marks "(Y)" meaning "achieved
// for some parametrizations", following the paper's notation.
type TableIRow struct {
	Topology    string
	Applicable  bool
	RouterRadix string // measured (interval for SHG)
	SL          string // short links, measured
	AL          string // aligned links, measured
	ULD         string // uniform link density, measured channel utilization
	OPP         string // optimized port placement, family attribute (see doc)
	Diameter    string // measured (interval for SHG)
	MinPresent  string // minimal paths present, measured
	MinUsed     string // minimal paths used by the co-designed routing, measured
	NumConfigs  string // number of configurations for the grid
}

// uldMark converts the measured channel utilization into a compliance
// mark: channels whose allocated tracks are nearly fully used along
// their length waste no spacing (criterion ULD).
func uldMark(utilization float64) string {
	switch {
	case utilization >= 0.85:
		return "Y"
	case utilization >= 0.50:
		return "~"
	default:
		return "N"
	}
}

// oppByFamily is the one Table I column that is a design-freedom
// judgment rather than a graph or floorplan measurement: whether the
// family admits a port placement giving short, straight link attach
// points. The values follow the paper's Table I; the rationale is the
// paper's Section II-B discussion (the ring's two ports force
// detoured links for turns; SlimNoC's group structure concentrates
// ports on one side; the flattened butterfly can spread its many
// ports along all faces).
var oppByFamily = map[string]string{
	"ring":                "N",
	"mesh":                "Y",
	"torus":               "Y",
	"folded-torus":        "Y",
	"hypercube":           "Y",
	"slimnoc":             "N",
	"flattened-butterfly": "Y",
	"sparse-hamming":      "Y",
}

// TableI regenerates the compliance table for a grid, evaluating each
// topology instance with the physical model of arch (for the ULD
// column) and its co-designed routing (for the "used" column).
func TableI(arch *tech.Arch) ([]TableIRow, error) {
	rows, cols := arch.Rows, arch.Cols
	out := make([]TableIRow, 0, 8)

	eval := func(name string, t *topo.Topology) (TableIRow, error) {
		sc := t.Structural()
		res, err := phys.Evaluate(arch, t)
		if err != nil {
			return TableIRow{}, err
		}
		rt, err := route.For(t, route.Auto)
		if err != nil {
			return TableIRow{}, err
		}
		return TableIRow{
			Topology:    name,
			Applicable:  true,
			RouterRadix: fmt.Sprint(sc.RouterRadix),
			SL:          sc.ShortLinks.String(),
			AL:          sc.AlignedLinks.String(),
			ULD:         uldMark(res.ChannelUtilization),
			OPP:         oppByFamily[t.Kind],
			Diameter:    fmt.Sprint(sc.Diameter),
			MinPresent:  yn(sc.MinimalPathsPresent),
			MinUsed:     yn(rt.MinimalPathsUsed()),
			NumConfigs:  "1",
		}, nil
	}

	type mk struct {
		name string
		make func() (*topo.Topology, error)
	}
	families := []mk{
		{"ring", func() (*topo.Topology, error) { return topo.NewRing(rows, cols) }},
		{"2d-mesh", func() (*topo.Topology, error) { return topo.NewMesh(rows, cols) }},
		{"2d-torus", func() (*topo.Topology, error) { return topo.NewTorus(rows, cols) }},
		{"folded-2d-torus", func() (*topo.Topology, error) { return topo.NewFoldedTorus(rows, cols) }},
		{"hypercube", func() (*topo.Topology, error) { return topo.NewHypercube(rows, cols) }},
		{"slimnoc", func() (*topo.Topology, error) { return topo.NewSlimNoC(rows, cols) }},
		{"flattened-butterfly", func() (*topo.Topology, error) { return topo.NewFlattenedButterfly(rows, cols) }},
	}
	for _, f := range families {
		t, err := f.make()
		if err != nil {
			// Structurally inapplicable on this grid (hypercube or
			// SlimNoC), shown as "0 configurations".
			out = append(out, TableIRow{Topology: f.name, NumConfigs: "0"})
			continue
		}
		row, err := eval(f.name, t)
		if err != nil {
			return nil, fmt.Errorf("noc: table I row %s: %w", f.name, err)
		}
		out = append(out, row)
	}

	shgRow, err := tableISHGRow(arch)
	if err != nil {
		return nil, err
	}
	out = append(out, shgRow)
	return out, nil
}

// tableISHGRow builds the sparse Hamming family row by evaluating the
// two extreme instances (mesh and flattened butterfly) and reporting
// intervals, with "(Y)" for criteria achieved only by some
// parametrizations.
func tableISHGRow(arch *tech.Arch) (TableIRow, error) {
	rows, cols := arch.Rows, arch.Cols
	sparse, err := topo.NewSparseHamming(rows, cols, topo.HammingParams{})
	if err != nil {
		return TableIRow{}, err
	}
	full := topo.HammingParams{}
	for x := 2; x < cols; x++ {
		full.SR = append(full.SR, x)
	}
	for x := 2; x < rows; x++ {
		full.SC = append(full.SC, x)
	}
	dense, err := topo.NewSparseHamming(rows, cols, full)
	if err != nil {
		return TableIRow{}, err
	}
	sc1, sc2 := sparse.Structural(), dense.Structural()
	return TableIRow{
		Topology:    "sparse-hamming",
		Applicable:  true,
		RouterRadix: fmt.Sprintf("[%d, %d]", sc1.RouterRadix, sc2.RouterRadix),
		SL:          "(Y)", // only the mesh parametrization has unit links
		AL:          "Y",   // all parametrizations are aligned by construction
		ULD:         "(Y)", // sparse instances keep channels uniform
		OPP:         oppByFamily["sparse-hamming"],
		Diameter:    fmt.Sprintf("[%d, %d]", sc2.Diameter, sc1.Diameter),
		MinPresent:  yn(sc1.MinimalPathsPresent && sc2.MinimalPathsPresent),
		MinUsed:     "(Y)", // monotone DOR always; pure hop-minimal only sometimes
		NumConfigs:  fmt.Sprintf("2^%d", rows+cols-4),
	}, nil
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// TableIIIRow is one metric of the MemPool toolchain validation.
type TableIIIRow struct {
	Metric    string
	Correct   float64 // published MemPool measurement
	Predicted float64 // our toolchain's prediction
	ErrorPct  float64
}

// Published MemPool results used as the "correct value" column of
// Table III (Cavalcante et al., DATE 2021, as cited in the paper).
const (
	MemPoolAreaMm2       = 21.16
	MemPoolPowerW        = 1.55
	MemPoolLatencyCycles = 5.0
	MemPoolThroughputPct = 38.0
)

// TableIII validates the toolchain against MemPool: the architecture
// description from tech.MemPool runs through the full pipeline with a
// flattened-butterfly topology standing in for MemPool's hierarchical
// low-latency interconnect (diameter 2, matching the paper's
// "three routers per path" correction discussion).
func TableIII(quality Quality) ([]TableIIIRow, *Prediction, error) {
	return TableIIIWith(quality, nil)
}

// TableIIIWith runs the MemPool validation through a campaign runner,
// so repeated invocations hit the result cache. A nil runner means
// the default toolchain runner.
func TableIIIWith(quality Quality, r *exp.Runner) ([]TableIIIRow, *Prediction, error) {
	if r == nil {
		r = NewRunner(0, nil)
	}
	arch := tech.MemPool()
	results, _, err := r.Run([]exp.Job{{
		Mode:     exp.ModePredict,
		Scenario: "mempool",
		Topo:     "flattened-butterfly",
		Quality:  QualityName(quality),
		Seed:     1,
	}})
	if err != nil {
		return nil, nil, fmt.Errorf("noc: table III campaign: %w", err)
	}
	pred := PredictionFromResult(results[0])
	row := func(metric string, correct, predicted float64) TableIIIRow {
		return TableIIIRow{
			Metric:    metric,
			Correct:   correct,
			Predicted: predicted,
			ErrorPct:  100 * abs(predicted-correct) / correct,
		}
	}
	// MemPool's published throughput counts the fraction of per-core
	// requests served; its four cores share one tile injection port,
	// so the tile-normalized saturation rate is divided by the cores
	// per tile.
	perCoreSat := pred.SaturationPct / float64(arch.CoresPerTile)
	rows := []TableIIIRow{
		row("area [mm2]", MemPoolAreaMm2, pred.TotalAreaMm2),
		row("power [W]", MemPoolPowerW, pred.TotalPowerW),
		row("latency [cycles]", MemPoolLatencyCycles, pred.ZeroLoadLatency),
		row("throughput [%]", MemPoolThroughputPct, perCoreSat),
	}
	return rows, pred, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
