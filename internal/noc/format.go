package noc

import (
	"fmt"
	"strings"

	"sparsehamming/internal/exp"
)

// This file renders the evaluation artifacts as GitHub-flavored
// markdown tables, used by the cmd/ tools, the examples, and
// EXPERIMENTS.md.

// FormatTableI renders Table I.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "| Topology | Radix | SL | AL | ULD | OPP | Diameter | MinPaths Present | MinPaths Used | #Configs |")
	fmt.Fprintln(&b, "|---|---|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		if !r.Applicable {
			fmt.Fprintf(&b, "| %s | - | - | - | - | - | - | - | - | %s |\n", r.Topology, r.NumConfigs)
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			r.Topology, r.RouterRadix, r.SL, r.AL, r.ULD, r.OPP,
			r.Diameter, r.MinPresent, r.MinUsed, r.NumConfigs)
	}
	return b.String()
}

// FormatTableIII renders Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "| Metric | Correct Value | Prediction | Prediction Error |")
	fmt.Fprintln(&b, "|---|---|---|---|")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.0f%% |\n", r.Metric, r.Correct, r.Predicted, r.ErrorPct)
	}
	return b.String()
}

// FormatFigure6 renders one scenario panel of Figure 6 as a table
// (the paper plots these as scatter charts; the numbers are the same).
func FormatFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "| Topology | Params | Area Overhead [%] | NoC Power [W] | Zero-Load Latency [cy] | Saturation Throughput [%] |")
	fmt.Fprintln(&b, "|---|---|---|---|---|---|")
	for _, r := range rows {
		if !r.Applicable {
			fmt.Fprintf(&b, "| %s |  | n/a | n/a | n/a | n/a |\n", r.Topology)
			continue
		}
		p := r.Pred
		fmt.Fprintf(&b, "| %s | %s | %.1f | %.2f | %.1f | %s |\n",
			r.Topology, r.Params, p.AreaOverheadPct, p.NoCPowerW, p.ZeroLoadLatency, satCell(p))
	}
	return b.String()
}

// satCell renders a prediction's saturation throughput, marking
// searches that bottomed out ("<x": the true rate lies below the
// bisection resolution x) instead of printing a hard zero.
func satCell(p *Prediction) string {
	return exp.FormatSaturation(p.SaturationPct, p.SatLowerBound)
}

// FormatCustomization renders the trace of a customization run.
func FormatCustomization(res *CustomizeResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "| Step | Candidate | Params | Area Overhead [%] | Avg Hops | Diameter | Accepted |")
	fmt.Fprintln(&b, "|---|---|---|---|---|---|---|")
	step := 0
	for _, s := range res.Steps {
		mark := ""
		if s.Accepted {
			mark = "yes"
			step++
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %.1f | %.2f | %d | %s |\n",
			step, s.Candidate, s.Params.String(), s.AreaOverheadPct, s.AvgHops, s.Diameter, mark)
	}
	fmt.Fprintf(&b, "\nFinal: %s (area overhead %.1f%%, zero-load latency %.1f cy, saturation %.1f%%)\n",
		res.Params.String(), res.Final.AreaOverheadPct, res.Final.ZeroLoadLatency, res.Final.SaturationPct)
	return b.String()
}

// FormatPrediction renders a single prediction as a readable block.
func FormatPrediction(p *Prediction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology:              %s %s\n", p.Topology, p.Params)
	fmt.Fprintf(&b, "router radix:          %d\n", p.RouterRadix)
	fmt.Fprintf(&b, "diameter / avg hops:   %d / %.2f\n", p.Diameter, p.AvgHops)
	fmt.Fprintf(&b, "links:                 %d (max latency %d cy)\n", p.NumLinks, p.MaxLinkLatency)
	fmt.Fprintf(&b, "total area:            %.2f mm2 (NoC overhead %.1f%%)\n", p.TotalAreaMm2, p.AreaOverheadPct)
	fmt.Fprintf(&b, "total power:           %.2f W (NoC %.2f W)\n", p.TotalPowerW, p.NoCPowerW)
	fmt.Fprintf(&b, "channel utilization:   %.2f\n", p.ChannelUtilization)
	if p.RoutingName != "" {
		fmt.Fprintf(&b, "routing:               %s\n", p.RoutingName)
		fmt.Fprintf(&b, "zero-load latency:     %.1f cycles (closed form: %.1f)\n", p.ZeroLoadLatency, p.AnalyticZeroLoad)
		fmt.Fprintf(&b, "saturation throughput: %s%% (channel-load bound: %.1f%%)\n", satCell(p), p.AnalyticBoundPct)
		if p.CyclesSaved > 0 {
			fmt.Fprintf(&b, "adaptive control:      %d probes, %.2fM simulated cycles saved\n",
				p.Probes, float64(p.CyclesSaved)/1e6)
		}
	}
	return b.String()
}

// CSVFigure6 renders Figure 6 rows as CSV for plotting.
func CSVFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "scenario,topology,params,area_overhead_pct,noc_power_w,zero_load_latency_cycles,saturation_pct")
	for _, r := range rows {
		if !r.Applicable {
			fmt.Fprintf(&b, "%s,%s,,,,,\n", r.Scenario, r.Topology)
			continue
		}
		p := r.Pred
		fmt.Fprintf(&b, "%s,%s,%q,%.2f,%.3f,%.2f,%.2f\n",
			r.Scenario, r.Topology, r.Params, p.AreaOverheadPct, p.NoCPowerW, p.ZeroLoadLatency, p.SaturationPct)
	}
	return b.String()
}
