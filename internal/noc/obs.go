package noc

// This file bridges the prediction toolchain to the observability
// layer (package obs): NewObservedRunner wraps the campaign runner so
// every job records an execution-trace span tree, per-phase duration
// histograms, and a slow-job log line, and it registers scrape-time
// collectors over the simulator's run-boundary counters, the runner's
// batch statistics, and the cache. The instrumentation is wall-clock
// observability only — job results are bit-identical with or without
// a hub, which is what keeps cached results sound.

import (
	"time"

	"sparsehamming/internal/exp"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/sim"
)

// phaseNames are the span names folded into the per-phase duration
// histogram (sh_sim_phase_seconds).
var phaseNames = map[string]bool{
	"cost":       true,
	"saturation": true,
	"zeroload":   true,
	"probe":      true,
	"warmup":     true,
	"measure":    true,
	"drain":      true,
}

// NewObservedRunner is NewRunner with an observability hub attached:
// each evaluated job records a span tree (job → saturation → probes →
// warmup/measure/drain) into the hub's trace store under the job's
// content key, feeds the per-phase duration histograms, and jobs
// slower than the hub's slow-job threshold are logged with their
// probe count. The hub's registry gains scrape-time collectors for
// the simulator, runner, and cache series. A nil hub degrades to the
// uninstrumented NewRunner.
func NewObservedRunner(workers int, cache *exp.Cache, hub *obs.Hub) *exp.Runner {
	r := &exp.Runner{Workers: workers, Cache: cache}
	sched := runnerSched{r: r}
	// Jobs sharing one topology build are dispatched as a group: load
	// sweeps run through one sim.Batch, predict jobs through one shared
	// Shape (see batch.go) — instrumented or not, since grouping
	// changes scheduling only, never results.
	r.GroupKey = CampaignGroupKey
	evalGroup := func(jobs []exp.Job, spans []*obs.Span) ([]*exp.Result, error) {
		if jobs[0].Mode == exp.ModePredict {
			return evalPredictGroup(jobs, sched, spans)
		}
		return evalLoadGroup(jobs, spans)
	}
	if hub == nil {
		r.Eval = func(j exp.Job) (*exp.Result, error) { return evalJobSched(j, sched, nil) }
		r.EvalGroup = func(jobs []exp.Job) ([]*exp.Result, error) { return evalGroup(jobs, nil) }
		return r
	}
	r.Log = hub.Logger()
	ob := &jobObserver{
		hub: hub,
		phases: hub.Metrics.HistogramVec("sh_sim_phase_seconds",
			"Wall-clock duration of simulation phases and probes, by span name.",
			obs.DefBuckets, "phase"),
	}
	r.Eval = func(j exp.Job) (*exp.Result, error) {
		span := ob.begin(j)
		res, err := evalJobSched(j, sched, span)
		ob.finish(j, span, err)
		return res, err
	}
	r.EvalGroup = func(jobs []exp.Job) ([]*exp.Result, error) {
		// One span tree per job, so batched jobs keep per-key traces:
		// the batch's replicas run under "point" children of these.
		spans := make([]*obs.Span, len(jobs))
		for i, j := range jobs {
			spans[i] = ob.begin(j)
		}
		res, err := evalGroup(jobs, spans)
		for i, j := range jobs {
			ob.finish(j, spans[i], err)
		}
		return res, err
	}
	RegisterMetrics(hub.Metrics, r, cache)
	return r
}

// jobObserver records one evaluated job's execution trace and derived
// telemetry: begin opens the job span, finish closes it, feeds the
// per-phase duration histograms, stores the trace under the job's
// content key, and logs slow jobs. Both the per-job Eval path and the
// grouped batch path share it, so batched jobs are observed exactly
// like sequential ones.
type jobObserver struct {
	hub    *obs.Hub
	phases *obs.HistogramVec
}

// begin opens the span tree for one job evaluation.
func (o *jobObserver) begin(j exp.Job) *obs.Span {
	span := obs.NewSpan("job")
	span.SetAttr("mode", string(j.Mode))
	span.SetAttr("topo", j.Topo)
	if j.Quality != "" {
		span.SetAttr("quality", j.Quality)
	}
	return span
}

// finish closes a job span and publishes its telemetry.
func (o *jobObserver) finish(j exp.Job, span *obs.Span, err error) {
	span.End()
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	probes := 0
	span.Walk(func(s *obs.Span) {
		if phaseNames[s.Name] {
			o.phases.With(s.Name).Observe(float64(s.DurMs) / 1000)
		}
		if s.Name == "probe" {
			probes++
		}
	})
	o.hub.Traces.Put(j.Key(), span)
	if d := span.Duration(); d > o.hub.SlowJobThreshold() {
		o.hub.Logger().Warn("slow job",
			"job", j.String(), "elapsed", d.Round(time.Millisecond),
			"probes", probes)
	}
}

// RegisterMetrics installs scrape-time collectors for the simulator's
// process-wide counters, the runner's batch statistics, and the cache
// onto the registry. NewObservedRunner calls it; CLIs that build a
// plain NewRunner call it directly when only a -metrics dump is
// wanted. Runner and cache may be nil (their series are skipped).
func RegisterMetrics(m *obs.Registry, r *exp.Runner, cache *exp.Cache) {
	m.CounterFunc("sh_sim_runs_total",
		"Completed simulation runs (probes and zero-load references included).",
		func() float64 { return float64(sim.Counters().Runs) })
	m.CounterFunc("sh_sim_cycles_total",
		"Simulated router-cycles across all runs.",
		func() float64 { return float64(sim.Counters().Cycles) })
	m.CounterFunc("sh_sim_flit_hops_total",
		"Flit movements through crossbars across all runs.",
		func() float64 { return float64(sim.Counters().FlitHops) })
	m.CounterFunc("sh_sim_deadlocks_total",
		"Runs the watchdog declared deadlocked.",
		func() float64 { return float64(sim.Counters().Deadlocks) })
	m.CounterFunc("sh_sim_cycles_saved_total",
		"Simulated cycles avoided by adaptive control versus the fixed schedule.",
		func() float64 { return float64(sim.Counters().CyclesSaved) })
	m.CounterFunc("sh_sim_probes_speculated_total",
		"Saturation probes launched speculatively on borrowed worker slots.",
		func() float64 { return float64(sim.Counters().ProbesSpeculated) })
	m.CounterFunc("sh_sim_probes_canceled_total",
		"Speculative probes abandoned because a sibling's verdict made them irrelevant.",
		func() float64 { return float64(sim.Counters().ProbesCanceled) })
	m.CounterFunc("sh_sim_shape_builds_total",
		"Shared topology builds (channel wiring + output-port LUT); sh_sim_builds_total / this is the batched engine's build amortization.",
		func() float64 { return float64(sim.Counters().ShapeBuilds) })
	m.CounterFunc("sh_sim_builds_total",
		"Simulator replica instantiations (each used to pay a full topology build).",
		func() float64 { return float64(sim.Counters().SimBuilds) })
	m.CounterFunc("sh_sim_batches_total",
		"Interleaved multi-replica batch passes executed.",
		func() float64 { return float64(sim.Counters().Batches) })
	m.CounterFunc("sh_sim_batch_replicas_total",
		"Replicas stepped by interleaved batch passes.",
		func() float64 { return float64(sim.Counters().BatchReplicas) })
	m.Func("sh_sim_verdicts_total",
		"Completed simulation runs by how they ended.",
		obs.KindCounter, []string{"verdict"}, func() []obs.Sample {
			c := sim.Counters()
			return []obs.Sample{
				{Labels: []string{"none"}, Value: float64(c.VerdictsNone)},
				{Labels: []string{"saturated"}, Value: float64(c.VerdictsSaturated)},
				{Labels: []string{"stable"}, Value: float64(c.VerdictsStable)},
				{Labels: []string{"interrupted"}, Value: float64(c.VerdictsInterrupted)},
			}
		})

	if r != nil {
		m.CounterFunc("sh_runner_batches_total",
			"Completed campaign batches (Run calls).",
			func() float64 { return float64(r.Stats().Batches) })
		m.Func("sh_runner_jobs_total",
			"Unique jobs of completed batches, by how they were answered.",
			obs.KindCounter, []string{"outcome"}, func() []obs.Sample {
				s := r.Stats()
				return []obs.Sample{
					{Labels: []string{"computed"}, Value: float64(s.Computed)},
					{Labels: []string{"cached"}, Value: float64(s.Cached)},
					{Labels: []string{"shared"}, Value: float64(s.Shared)},
					{Labels: []string{"failed"}, Value: float64(s.Failed)},
				}
			})
		m.CounterFunc("sh_runner_busy_seconds_total",
			"Evaluation wall-time summed across workers.",
			func() float64 { return float64(r.Stats().BusyNanos) / 1e9 })
		m.CounterFunc("sh_runner_groups_total",
			"Multi-job group dispatches completed (batched load sweeps).",
			func() float64 { return float64(r.Stats().Groups) })
		m.CounterFunc("sh_runner_grouped_jobs_total",
			"Jobs answered by multi-job group dispatches.",
			func() float64 { return float64(r.Stats().GroupedJobs) })
		m.GaugeFunc("sh_runner_evals_in_flight",
			"Evaluation slots currently held (including borrowed probe slots).",
			func() float64 { return float64(r.Stats().InFlight) })
		m.GaugeFunc("sh_runner_waiting_jobs",
			"Goroutines currently blocked waiting for an evaluation slot.",
			func() float64 { return float64(r.Stats().Waiting) })
		m.GaugeFunc("sh_runner_workers",
			"Effective evaluation-slot pool size.",
			func() float64 { return float64(r.Stats().Workers) })
	}

	if cache != nil {
		m.GaugeFunc("sh_cache_entries",
			"Results currently in the job cache.",
			func() float64 { return float64(cache.Len()) })
		m.CounterFunc("sh_cache_hits_total",
			"Job-cache lookups answered from the cache.",
			func() float64 { h, _ := cache.Stats(); return float64(h) })
		m.CounterFunc("sh_cache_misses_total",
			"Job-cache lookups that missed.",
			func() float64 { _, mi := cache.Stats(); return float64(mi) })
	}
}
