package noc

import (
	"fmt"

	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// CustomizeStep records one iteration of the customization strategy.
type CustomizeStep struct {
	// Candidate describes the offset tried, e.g. "SR+=4" or "SC+=2".
	Candidate string
	// Params is the parameter set after accepting the candidate.
	Params topo.HammingParams
	// AreaOverheadPct and AvgHops are the predictions for the
	// candidate topology.
	AreaOverheadPct float64
	AvgHops         float64
	Diameter        int
	// Accepted tells whether the candidate was kept.
	Accepted bool
}

// CustomizeResult is the outcome of the Section V strategy.
type CustomizeResult struct {
	Params topo.HammingParams
	Final  *Prediction
	Steps  []CustomizeStep
}

// Customize runs the paper's five-step NoC topology customization
// strategy (Section V-a) for an architecture:
//
//  1. Start with the simplest sparse Hamming graph, the mesh
//     (SR = {}, SC = {}).
//  2. Predict cost and performance of the current topology with the
//     toolchain (the fast physical model drives the inner loop).
//  3. Compare against the design goals: maximize throughput
//     (priority 1) and minimize latency (priority 2) without
//     exceeding maxOverheadPct NoC area overhead.
//  4. Following the design principles, add the offset to SR or SC
//     that best reduces the average hop count per unit of added area
//     overhead while staying within the budget.
//  5. Repeat until no candidate fits the budget.
//
// The hop count is the model-level proxy for throughput and latency
// (design principle 3: fewer hops means less congestion per router
// and lower latency); the returned Final prediction runs the full
// toolchain including simulation.
func Customize(arch *tech.Arch, maxOverheadPct float64, quality Quality) (*CustomizeResult, error) {
	res := &CustomizeResult{}
	cur := topo.HammingParams{}

	curTopo, err := topo.NewSparseHamming(arch.Rows, arch.Cols, cur)
	if err != nil {
		return nil, err
	}
	curPred, _, err := PredictCostOnly(arch, curTopo)
	if err != nil {
		return nil, err
	}
	if curPred.AreaOverheadPct > maxOverheadPct {
		return nil, fmt.Errorf("noc: even the mesh exceeds the %.0f%% overhead budget (%.1f%%)",
			maxOverheadPct, curPred.AreaOverheadPct)
	}

	for {
		type candidate struct {
			name   string
			params topo.HammingParams
			pred   *Prediction
			score  float64
		}
		var best *candidate
		try := func(name string, p topo.HammingParams) error {
			t, err := topo.NewSparseHamming(arch.Rows, arch.Cols, p)
			if err != nil {
				return err
			}
			pred, _, err := PredictCostOnly(arch, t)
			if err != nil {
				return err
			}
			step := CustomizeStep{
				Candidate:       name,
				Params:          p,
				AreaOverheadPct: pred.AreaOverheadPct,
				AvgHops:         pred.AvgHops,
				Diameter:        pred.Diameter,
			}
			if pred.AreaOverheadPct <= maxOverheadPct && pred.AvgHops < curPred.AvgHops {
				hopGain := curPred.AvgHops - pred.AvgHops
				areaCost := pred.AreaOverheadPct - curPred.AreaOverheadPct
				if areaCost < 0.01 {
					areaCost = 0.01
				}
				score := hopGain / areaCost
				if best == nil || score > best.score {
					best = &candidate{name: name, params: p, pred: pred, score: score}
				}
			}
			res.Steps = append(res.Steps, step)
			return nil
		}

		have := func(s []int, x int) bool {
			for _, v := range s {
				if v == x {
					return true
				}
			}
			return false
		}
		for x := 2; x < arch.Cols; x++ {
			if !have(cur.SR, x) {
				p := cur.Clone()
				p.SR = append(p.SR, x)
				if err := try(fmt.Sprintf("SR+=%d", x), p); err != nil {
					return nil, err
				}
			}
		}
		for x := 2; x < arch.Rows; x++ {
			if !have(cur.SC, x) {
				p := cur.Clone()
				p.SC = append(p.SC, x)
				if err := try(fmt.Sprintf("SC+=%d", x), p); err != nil {
					return nil, err
				}
			}
		}
		if best == nil {
			break
		}
		// Mark the accepted step (the last recorded one matching).
		for i := len(res.Steps) - 1; i >= 0; i-- {
			if res.Steps[i].Candidate == best.name && res.Steps[i].Params.String() == best.params.String() {
				res.Steps[i].Accepted = true
				break
			}
		}
		cur = best.params
		curPred = best.pred
	}

	res.Params = cur
	final, err := topo.NewSparseHamming(arch.Rows, arch.Cols, cur)
	if err != nil {
		return nil, err
	}
	pred, err := Predict(arch, final, quality)
	if err != nil {
		return nil, err
	}
	pred.Params = cur.String()
	res.Final = pred
	return res, nil
}
