package noc

import (
	"strings"
	"testing"

	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// findRow returns the Table I row for a topology name.
func findRow(t *testing.T, rows []TableIRow, name string) TableIRow {
	t.Helper()
	for _, r := range rows {
		if r.Topology == name {
			return r
		}
	}
	t.Fatalf("row %q missing", name)
	return TableIRow{}
}

// TestTableI8x8 pins the compliance table on the 8x8 grid of
// scenarios a/b against the paper's Table I (R = C = 8).
func TestTableI8x8(t *testing.T) {
	rows, err := TableI(tech.Scenario(tech.ScenarioA))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("table I has %d rows, want 8", len(rows))
	}

	ring := findRow(t, rows, "ring")
	if ring.RouterRadix != "2" || ring.Diameter != "32" || ring.SL != "Y" || ring.MinUsed != "N" {
		t.Errorf("ring row = %+v", ring)
	}
	mesh := findRow(t, rows, "2d-mesh")
	if mesh.RouterRadix != "4" || mesh.Diameter != "14" || mesh.SL != "Y" || mesh.AL != "Y" ||
		mesh.ULD != "Y" || mesh.MinPresent != "Y" || mesh.MinUsed != "Y" {
		t.Errorf("mesh row = %+v", mesh)
	}
	torus := findRow(t, rows, "2d-torus")
	if torus.RouterRadix != "4" || torus.Diameter != "8" || torus.SL != "N" ||
		torus.MinPresent != "Y" || torus.MinUsed != "N" {
		t.Errorf("torus row = %+v", torus)
	}
	ft := findRow(t, rows, "folded-2d-torus")
	if ft.RouterRadix != "4" || ft.Diameter != "8" || ft.SL != "~" || ft.MinPresent != "N" {
		t.Errorf("folded torus row = %+v", ft)
	}
	hc := findRow(t, rows, "hypercube")
	if hc.RouterRadix != "6" || hc.Diameter != "6" || hc.SL != "N" || hc.AL != "Y" ||
		hc.MinPresent != "Y" || hc.MinUsed != "N" {
		t.Errorf("hypercube row = %+v", hc)
	}
	slim := findRow(t, rows, "slimnoc")
	if slim.Applicable || slim.NumConfigs != "0" {
		t.Errorf("slimnoc must be inapplicable on 8x8 (64 != 2p^2): %+v", slim)
	}
	fb := findRow(t, rows, "flattened-butterfly")
	if fb.RouterRadix != "14" || fb.Diameter != "2" || fb.SL != "N" || fb.AL != "Y" ||
		fb.MinPresent != "Y" || fb.MinUsed != "Y" {
		t.Errorf("FB row = %+v", fb)
	}
	shg := findRow(t, rows, "sparse-hamming")
	if shg.RouterRadix != "[4, 14]" || shg.Diameter != "[2, 14]" || shg.NumConfigs != "2^12" {
		t.Errorf("SHG row = %+v", shg)
	}
	if shg.SL != "(Y)" || shg.AL != "Y" || shg.MinPresent != "Y" || shg.MinUsed != "(Y)" {
		t.Errorf("SHG marks = %+v", shg)
	}

	// Render without error.
	md := FormatTableI(rows)
	if !strings.Contains(md, "sparse-hamming") || !strings.Contains(md, "2^12") {
		t.Error("markdown rendering incomplete")
	}
}

// TestTableI8x16 checks the scenario-c grid, where SlimNoC applies.
func TestTableI8x16(t *testing.T) {
	rows, err := TableI(tech.Scenario(tech.ScenarioC))
	if err != nil {
		t.Fatal(err)
	}
	slim := findRow(t, rows, "slimnoc")
	if !slim.Applicable {
		t.Fatal("slimnoc must apply on 8x16 (128 = 2*8^2)")
	}
	if slim.RouterRadix != "15" || slim.Diameter != "2" {
		t.Errorf("slimnoc row = %+v", slim)
	}
	if slim.AL != "N" {
		t.Errorf("slimnoc aligned links = %s, want N", slim.AL)
	}
	if slim.ULD == "Y" {
		t.Errorf("slimnoc ULD = %s, want non-uniform (paper: N)", slim.ULD)
	}
	// Hypercube does not apply on 8x16? 8 and 16 are powers of two, so
	// it does apply here.
	hc := findRow(t, rows, "hypercube")
	if !hc.Applicable || hc.RouterRadix != "7" {
		t.Errorf("hypercube on 8x16 = %+v", hc)
	}
	shg := findRow(t, rows, "sparse-hamming")
	if shg.NumConfigs != "2^20" {
		t.Errorf("SHG configs = %s, want 2^20", shg.NumConfigs)
	}
}

// TestTableIIIShape checks the MemPool validation reproduces the
// paper's error profile: good area/power accuracy for a high-level
// model, a roughly 2x latency overestimate, and a throughput
// underestimate.
func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("MemPool validation simulates a 256-tile network")
	}
	rows, pred, err := TableIII(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]TableIIIRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	area := byMetric["area [mm2]"]
	if area.ErrorPct > 40 {
		t.Errorf("area error %.0f%%, want < 40%% (paper: 15%%)", area.ErrorPct)
	}
	if area.Predicted < area.Correct {
		t.Errorf("area should be overestimated (paper: 24.26 > 21.16), got %.2f", area.Predicted)
	}
	power := byMetric["power [W]"]
	if power.ErrorPct > 30 {
		t.Errorf("power error %.0f%%, want < 30%% (paper: 7%%)", power.ErrorPct)
	}
	lat := byMetric["latency [cycles]"]
	if lat.Predicted <= lat.Correct {
		t.Error("latency must be overestimated (the model charges a minimum cycle per router/link)")
	}
	if lat.ErrorPct < 50 || lat.ErrorPct > 200 {
		t.Errorf("latency error %.0f%%, want ~100%% as in the paper", lat.ErrorPct)
	}
	// The paper's correction: deducting 1 injection cycle and 1 cycle
	// per traversed router brings the estimate close to the truth.
	corrected := lat.Predicted - 4
	if corrected < 4 || corrected > 9 {
		t.Errorf("corrected latency %.1f, want near the published 5-6 cycles", corrected)
	}
	tp := byMetric["throughput [%]"]
	if tp.Predicted >= tp.Correct {
		t.Errorf("throughput should be underestimated (paper: 25%% < 38%%), got %.1f", tp.Predicted)
	}
	if pred.Diameter != 2 {
		t.Errorf("MemPool stand-in diameter = %d, want 2 (three routers per path)", pred.Diameter)
	}
}

// TestFigure6ScenarioA reproduces the headline claims of Figure 6a:
// among topologies within the 40% area budget, the customized sparse
// Hamming graph has the highest saturation throughput, and only
// expensive topologies (flattened butterfly) beat its latency.
func TestFigure6ScenarioA(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario sweep is slow")
	}
	rows, err := Figure6(tech.ScenarioA, Quick)
	if err != nil {
		t.Fatal(err)
	}
	var shg, fb, ring, mesh *Prediction
	within40 := map[string]*Prediction{}
	for _, r := range rows {
		if !r.Applicable {
			if r.Topology != "slimnoc" {
				t.Errorf("%s unexpectedly inapplicable", r.Topology)
			}
			continue
		}
		switch r.Topology {
		case "sparse-hamming":
			shg = r.Pred
		case "flattened-butterfly":
			fb = r.Pred
		case "ring":
			ring = r.Pred
		case "2d-mesh":
			mesh = r.Pred
		}
		if r.Pred.AreaOverheadPct <= 40 {
			within40[r.Topology] = r.Pred
		}
	}
	if shg == nil || fb == nil || ring == nil || mesh == nil {
		t.Fatal("missing topologies in figure 6a")
	}

	// Cost claims.
	if shg.AreaOverheadPct > 40 {
		t.Errorf("customized SHG overhead %.1f%% exceeds the 40%% budget", shg.AreaOverheadPct)
	}
	if fb.AreaOverheadPct <= 40 {
		t.Errorf("FB overhead %.1f%% should exceed 40%%", fb.AreaOverheadPct)
	}
	if ring.NoCPowerW >= mesh.NoCPowerW {
		t.Error("ring should be the cheapest in power")
	}

	// Performance claims: highest throughput within the budget.
	for name, p := range within40 {
		if name == "sparse-hamming" {
			continue
		}
		if p.SaturationPct > shg.SaturationPct {
			t.Errorf("%s saturates at %.1f%% > SHG %.1f%% within the 40%% budget",
				name, p.SaturationPct, shg.SaturationPct)
		}
	}
	// Latency: SHG beats the mesh and ring clearly.
	if shg.ZeroLoadLatency >= mesh.ZeroLoadLatency {
		t.Errorf("SHG latency %.1f not below mesh %.1f", shg.ZeroLoadLatency, mesh.ZeroLoadLatency)
	}
	if ring.ZeroLoadLatency <= mesh.ZeroLoadLatency {
		t.Error("ring must have the worst latency")
	}
	// FB (the expensive topology) may beat SHG's latency; nothing else
	// within the budget should by a wide margin.
	for name, p := range within40 {
		if p.ZeroLoadLatency < shg.ZeroLoadLatency*0.8 {
			t.Errorf("%s latency %.1f far below SHG %.1f within budget",
				name, p.ZeroLoadLatency, shg.ZeroLoadLatency)
		}
	}
}

func TestCustomizeScenarioA(t *testing.T) {
	if testing.Short() {
		t.Skip("customization with final simulation is slow")
	}
	res, err := Customize(tech.Scenario(tech.ScenarioA), 40, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Params.SR) == 0 && len(res.Params.SC) == 0 {
		t.Error("customization did not add any links")
	}
	if res.Final.AreaOverheadPct > 40 {
		t.Errorf("customized overhead %.1f%% exceeds budget", res.Final.AreaOverheadPct)
	}
	// The strategy must improve on the mesh's average hops.
	mesh, _ := topo.NewMesh(8, 8)
	if res.Final.AvgHops >= mesh.AverageHops() {
		t.Errorf("customized avg hops %.2f not below mesh %.2f", res.Final.AvgHops, mesh.AverageHops())
	}
	// Some step must have been accepted and recorded.
	accepted := 0
	for _, s := range res.Steps {
		if s.Accepted {
			accepted++
		}
	}
	if accepted == 0 {
		t.Error("no accepted steps recorded")
	}
	if !strings.Contains(FormatCustomization(res), "Final:") {
		t.Error("customization rendering incomplete")
	}
}

func TestComparisonSetApplicability(t *testing.T) {
	// 64 tiles: no SlimNoC; hypercube fine.
	set, err := ComparisonSet(8, 8, topo.HammingParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 8 {
		t.Fatalf("set size %d, want 8", len(set))
	}
	byName := map[string]TopologyEntry{}
	for _, e := range set {
		byName[e.Name] = e
	}
	if byName["slimnoc"].Applicable {
		t.Error("slimnoc should not apply on 8x8")
	}
	if !byName["hypercube"].Applicable {
		t.Error("hypercube should apply on 8x8")
	}
	// 6x6: neither hypercube nor slimnoc.
	set, err = ComparisonSet(6, 6, topo.HammingParams{})
	if err != nil {
		t.Fatal(err)
	}
	byName = map[string]TopologyEntry{}
	for _, e := range set {
		byName[e.Name] = e
	}
	if byName["hypercube"].Applicable || byName["slimnoc"].Applicable {
		t.Error("hypercube/slimnoc should not apply on 6x6")
	}
}

// TestComparisonSetErrors pins the unified applicability handling:
// every inapplicable entry preserves its structural constraint error
// (hypercube and SlimNoC alike — neither is silently swallowed nor
// aborts the set), applicable entries have none, and every entry
// carries its registry kind.
func TestComparisonSetErrors(t *testing.T) {
	set, err := ComparisonSet(6, 6, topo.HammingParams{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range set {
		if e.Kind == "" {
			t.Errorf("%s: missing registry kind", e.Name)
		}
		if e.Applicable {
			if e.Err != nil {
				t.Errorf("%s: applicable entry carries error %v", e.Name, e.Err)
			}
			if e.Topology == nil {
				t.Errorf("%s: applicable entry without topology", e.Name)
			}
			continue
		}
		if e.Err == nil {
			t.Errorf("%s: inapplicable entry lost its constraint error", e.Name)
		}
		if e.Topology != nil {
			t.Errorf("%s: inapplicable entry carries a topology", e.Name)
		}
		if !strings.Contains(e.Err.Error(), "6x6") {
			t.Errorf("%s: error %q does not describe the grid", e.Name, e.Err)
		}
	}
	// A real build error must still abort the set for any family:
	// invalid SHG offsets are a caller bug, not inapplicability.
	if _, err := ComparisonSet(8, 8, topo.HammingParams{SR: []int{99}}); err == nil {
		t.Error("invalid SHG params must abort the set")
	}
}

func TestPredictRejectsVCShortage(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	arch.Proto.NumVCs = 1
	// Ring routing needs 2 VC classes.
	rg, _ := topo.NewRing(8, 8)
	if _, err := Predict(arch, rg, Quick); err == nil {
		t.Error("1 VC with 2 classes should be rejected")
	}
}

func TestPaperSHGParamsValid(t *testing.T) {
	for _, id := range tech.AllScenarios() {
		arch := tech.Scenario(id)
		p := PaperSHGParams(id)
		if _, err := topo.NewSparseHamming(arch.Rows, arch.Cols, p); err != nil {
			t.Errorf("scenario %s params %v invalid: %v", id, p, err)
		}
	}
}

func TestFormatFigure6HandlesInapplicable(t *testing.T) {
	rows := []Figure6Row{
		{Scenario: "a", Topology: "slimnoc", Applicable: false},
		{Scenario: "a", Topology: "2d-mesh", Applicable: true, Pred: &Prediction{
			Topology: "mesh", AreaOverheadPct: 16.5, NoCPowerW: 8.2,
			ZeroLoadLatency: 28.3, SaturationPct: 38.3,
		}},
	}
	md := FormatFigure6(rows)
	if !strings.Contains(md, "n/a") || !strings.Contains(md, "16.5") {
		t.Errorf("rendering = %s", md)
	}
	csv := CSVFigure6(rows)
	if !strings.Contains(csv, "scenario,topology") || !strings.Contains(csv, "28.30") {
		t.Errorf("csv = %s", csv)
	}
}

func TestAnalyticFieldsPopulated(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	if testing.Short() {
		// A 4x4 grid exercises the same analytic/simulated agreement
		// checks with an order of magnitude fewer simulated router
		// cycles.
		arch.Rows, arch.Cols = 4, 4
	}
	m, _ := topo.NewMesh(arch.Rows, arch.Cols)
	pred, err := Predict(arch, m, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if pred.AnalyticZeroLoad <= 0 || pred.AnalyticBoundPct <= 0 {
		t.Fatalf("analytic fields missing: %+v", pred)
	}
	// The channel-load bound is an upper bound on simulated saturation.
	if pred.SaturationPct > pred.AnalyticBoundPct*1.05 {
		t.Errorf("simulated %.1f%% exceeds analytic bound %.1f%%",
			pred.SaturationPct, pred.AnalyticBoundPct)
	}
	// The closed form tracks the simulated zero-load latency.
	rel := pred.ZeroLoadLatency/pred.AnalyticZeroLoad - 1
	if rel < -0.2 || rel > 0.5 {
		t.Errorf("closed form %.1f vs simulated %.1f zero-load latency",
			pred.AnalyticZeroLoad, pred.ZeroLoadLatency)
	}
}

func TestCustomizeSmallGrid(t *testing.T) {
	// A 4x4 grid keeps the final simulation cheap while exercising the
	// full strategy loop including step bookkeeping.
	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = 4, 4
	res, err := Customize(arch, 40, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || res.Final.AreaOverheadPct > 40 {
		t.Fatalf("final = %+v", res.Final)
	}
	// Accepted steps must be strictly improving in avg hops and
	// non-decreasing in area.
	prevHops, prevArea := 1e18, 0.0
	for _, s := range res.Steps {
		if !s.Accepted {
			continue
		}
		if s.AvgHops >= prevHops {
			t.Errorf("accepted step %s did not reduce hops", s.Candidate)
		}
		if s.AreaOverheadPct < prevArea-1e-9 {
			t.Errorf("accepted step %s reduced area overhead", s.Candidate)
		}
		prevHops, prevArea = s.AvgHops, s.AreaOverheadPct
	}
	// The accepted params match the final result.
	if len(res.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestCustomizeImpossibleBudget(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	if _, err := Customize(arch, 1, Quick); err == nil {
		t.Error("1% budget (below the mesh) should fail")
	}
}
