package noc

import (
	"testing"

	"sparsehamming/internal/tech"
)

// relDev returns |a-b| / |b| in percent.
func relDev(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	if b == 0 {
		return 0
	}
	return 100 * d / b
}

// TestAdaptiveFigure6aParity is the adaptive tier's acceptance gate:
// the Figure 6a panel under quality "adaptive" must keep the sparse
// Hamming headline numbers (area overhead, zero-load latency,
// saturation) within 2% of the fixed-budget quick tier while
// simulating at most 60% of its cycles — the wall-clock claim is
// pinned by the benchmark trajectory (BENCH_sim.json), the metric
// parity by this test.
func TestAdaptiveFigure6aParity(t *testing.T) {
	if testing.Short() {
		t.Skip("two Figure 6a panels in -short mode")
	}
	ids := []tech.ScenarioID{tech.ScenarioA}
	fixedPanels, fixedStats, err := Figure6Panels(ids, Quick, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	adaptPanels, adaptStats, err := Figure6Panels(ids, Adaptive, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var checked int
	for i, fr := range fixedPanels[0] {
		ar := adaptPanels[0][i]
		if !fr.Applicable {
			continue
		}
		if fr.Topology != ar.Topology {
			t.Fatalf("row %d: topology %q vs %q", i, fr.Topology, ar.Topology)
		}
		f, a := fr.Pred, ar.Pred
		if a.Probes == 0 {
			t.Errorf("%s: adaptive prediction reports no probes", fr.Topology)
		}
		if fr.Topology != "sparse-hamming" {
			continue
		}
		checked++
		if d := relDev(a.AreaOverheadPct, f.AreaOverheadPct); d > 2 {
			t.Errorf("shg area overhead deviates %.2f%% (%v vs %v)", d, a.AreaOverheadPct, f.AreaOverheadPct)
		}
		if d := relDev(a.ZeroLoadLatency, f.ZeroLoadLatency); d > 2 {
			t.Errorf("shg zero-load latency deviates %.2f%% (%v vs %v)", d, a.ZeroLoadLatency, f.ZeroLoadLatency)
		}
		if d := relDev(a.SaturationPct, f.SaturationPct); d > 2 {
			t.Errorf("shg saturation deviates %.2f%% (%v vs %v)", d, a.SaturationPct, f.SaturationPct)
		}
		if a.CyclesSaved == 0 {
			t.Error("shg adaptive prediction saved no cycles")
		}
	}
	if checked != 1 {
		t.Fatalf("checked %d sparse-hamming rows, want 1", checked)
	}

	fs, as := fixedStats[0], adaptStats[0]
	t.Logf("fixed: %s", fs)
	t.Logf("adaptive: %s", as)
	// The wall-clock >=2x claim lives in the benchmark trajectory;
	// here assert the deterministic work reduction behind it. Cycles
	// understate the win — the cycles the verdicts cut are the
	// flit-heavy saturated ones — so bound both work figures.
	if as.SimCycles*10 > fs.SimCycles*7 {
		t.Errorf("adaptive panel simulated %d cycles, want <= 70%% of fixed %d", as.SimCycles, fs.SimCycles)
	}
	if as.SimFlitHops*10 > fs.SimFlitHops*8 {
		t.Errorf("adaptive panel moved %d flits, want <= 80%% of fixed %d", as.SimFlitHops, fs.SimFlitHops)
	}
	if as.CyclesSaved == 0 {
		t.Error("adaptive panel reports no cycles saved")
	}
}

// TestQualityNamesRoundTrip pins the quality name mapping both ways,
// including the adaptive tier.
func TestQualityNamesRoundTrip(t *testing.T) {
	for _, q := range []Quality{Quick, Full, Adaptive} {
		got, err := QualityByName(QualityName(q))
		if err != nil || got != q {
			t.Errorf("round trip of %v: %v, %v", q, got, err)
		}
	}
	if _, err := QualityByName("bogus"); err == nil {
		t.Error("bogus quality accepted")
	}
	if q, err := QualityByName(""); err != nil || q != Quick {
		t.Errorf("empty quality: %v, %v (want Quick)", q, err)
	}
}
