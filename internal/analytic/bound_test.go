package analytic

// Property test for the surrogate's safety guarantee: the analytic
// channel-load saturation bound is an *upper* bound — measured
// saturation throughput never exceeds it — across every registered
// topology family and both the co-designed default routing and the
// generic hop-minimal tables, with the physical model's heterogeneous
// link latencies in the loop (they change zero-load latency, and
// through the latency-blowup criterion, the measured saturation).

import (
	"testing"

	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

func TestSaturationBoundHoldsAcrossRegistry(t *testing.T) {
	const rows, cols = 4, 4
	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = rows, cols
	arch.Proto.NumVCs = 8 // hosts every registered routing's VC classes

	routings := []string{"", "hop-minimal"}
	if testing.Short() {
		routings = []string{""}
	}

	for _, name := range topo.Names() {
		fam, ok := topo.FamilyByName(name)
		if !ok {
			t.Fatalf("family %q vanished", name)
		}
		if err := fam.Applicable(rows, cols); err != nil {
			t.Logf("skipping %s on %dx%d: %v", name, rows, cols, err)
			continue
		}
		// Give parameterized families real parameters, so the sparse
		// Hamming express links (and their longer physical latencies)
		// are actually in the picture.
		var sr, sc []int
		switch name {
		case "sparse-hamming":
			sr, sc = []int{2}, []int{2}
		case "ruche":
			sr = []int{2}
		}
		tp, err := topo.ByName(name, rows, cols, sr, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cost, err := phys.Evaluate(arch, tp)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, rn := range routings {
			rt, err := route.ForName(tp, rn)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, rn, err)
			}
			m := &Model{
				Topo: tp, Routing: rt, LinkLatency: cost.LinkLatencies,
				RouterDelay: tech.RouterDelay, PacketLen: arch.PacketLenFlits(),
			}
			est, err := m.Estimate()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, rt.Name, err)
			}
			res, err := sim.SaturationThroughput(sim.Config{
				Topo: tp, Routing: rt,
				NumVCs: arch.Proto.NumVCs, BufDepth: arch.Proto.BufDepthFlits,
				LinkLatency: cost.LinkLatencies, RouterDelay: tech.RouterDelay,
				PacketLen: arch.PacketLenFlits(), Seed: 7,
				Warmup: 500, Measure: 1500,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, rt.Name, err)
			}
			if res.LowerBound {
				// The search bottomed out; its value is a resolution, not
				// a measurement, so it cannot witness a bound violation.
				t.Logf("%s/%s: saturation search bottomed out", name, rt.Name)
				continue
			}
			// Tiny epsilon for the bisection's finite resolution.
			if res.SaturationRate > est.SaturationBound+0.01 {
				t.Errorf("%s/%s: measured saturation %.3f exceeds analytic bound %.3f",
					name, rt.Name, res.SaturationRate, est.SaturationBound)
			}
		}
	}
}
