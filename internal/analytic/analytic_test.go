package analytic

import (
	"math"
	"testing"

	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/topo"
)

func model(t *testing.T) func(*topo.Topology, error) *Model {
	return func(tp *topo.Topology, terr error) *Model {
		t.Helper()
		if terr != nil {
			t.Fatal(terr)
		}
		r, err := route.For(tp, route.Auto)
		if err != nil {
			t.Fatal(err)
		}
		return &Model{Topo: tp, Routing: r, RouterDelay: 2, PacketLen: 4}
	}
}

func TestZeroLoadLatencyMesh(t *testing.T) {
	m := model(t)(topo.NewMesh(4, 4))
	zl, err := m.ZeroLoadLatency()
	if err != nil {
		t.Fatal(err)
	}
	// Mesh 4x4: avg hops 8/3. Closed form: (hops+1)*delay + hops*1 +
	// (len-1) averaged = (8/3+1)*2 + 8/3 + 3.
	want := (8.0/3+1)*2 + 8.0/3 + 3
	if math.Abs(zl-want) > 1e-9 {
		t.Errorf("zero-load latency = %v, want %v", zl, want)
	}
}

func TestZeroLoadMatchesSimulator(t *testing.T) {
	// The analytical estimate must track the simulator's measured
	// zero-load latency within 15% (the simulator adds VC/SA
	// arbitration cycles the closed form ignores).
	tp, err := topo.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.For(tp, route.Auto)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Topo: tp, Routing: r, RouterDelay: 2, PacketLen: 4}
	zl, err := m.ZeroLoadLatency()
	if err != nil {
		t.Fatal(err)
	}
	measured, err := sim.ZeroLoadLatency(sim.Config{
		Topo: tp, Routing: r, NumVCs: 4, BufDepth: 8,
		RouterDelay: 2, PacketLen: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(measured-zl) / measured; rel > 0.15 {
		t.Errorf("analytic %v vs simulated %v: %.0f%% apart", zl, measured, 100*rel)
	}
}

func TestChannelLoadsConservation(t *testing.T) {
	m := model(t)(topo.NewMesh(4, 4))
	loads, err := m.ChannelLoads()
	if err != nil {
		t.Fatal(err)
	}
	// Total channel load equals injection rate times average hops:
	// sum over channels of load = N * 1 * avgHops / ... with rate 1
	// per node: sum = N * avgHops * (1 flit each crosses hops links).
	var total float64
	for _, v := range loads {
		total += v
	}
	want := float64(m.Topo.NumTiles()) * m.Routing.AvgHops()
	if math.Abs(total-want)/want > 1e-9 {
		t.Errorf("total load %v, want N*avgHops = %v", total, want)
	}
	// Loads only on existing channels.
	for k := range loads {
		a, b := m.Topo.CoordOf(k[0]), m.Topo.CoordOf(k[1])
		if !m.Topo.HasLink(a, b) {
			t.Fatalf("load on missing link %v-%v", a, b)
		}
	}
}

func TestSaturationBoundExceedsSimulated(t *testing.T) {
	// The channel-load bound is an upper bound: the simulator can
	// never beat it, and for a well-behaved IQ router it reaches a
	// decent fraction of it.
	for _, mk := range []func() (*topo.Topology, error){
		func() (*topo.Topology, error) { return topo.NewMesh(4, 4) },
		func() (*topo.Topology, error) { return topo.NewFlattenedButterfly(4, 4) },
	} {
		tp, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		r, err := route.For(tp, route.Auto)
		if err != nil {
			t.Fatal(err)
		}
		m := &Model{Topo: tp, Routing: r, RouterDelay: 2, PacketLen: 4}
		bound, err := m.SaturationBound()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.SaturationThroughput(sim.Config{
			Topo: tp, Routing: r, NumVCs: 4, BufDepth: 8,
			RouterDelay: 2, PacketLen: 4, Seed: 4,
			Warmup: 500, Measure: 2000, Drain: 6000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.SaturationRate > bound*1.05 {
			t.Errorf("%s: simulated %.3f exceeds analytical bound %.3f",
				tp.Kind, res.SaturationRate, bound)
		}
		if res.SaturationRate < bound*0.35 {
			t.Errorf("%s: simulated %.3f far below bound %.3f — simulator suspiciously weak",
				tp.Kind, res.SaturationRate, bound)
		}
	}
}

func TestMeshBoundIsBisectionLimited(t *testing.T) {
	// For DOR on a square mesh under uniform traffic the center
	// channels carry N/4... the classic result: bound = 4*B/N where B
	// is the bisection link count. Channel-load and bisection bounds
	// agree for the mesh.
	m := model(t)(topo.NewMesh(8, 8))
	chBound, err := m.SaturationBound()
	if err != nil {
		t.Fatal(err)
	}
	bis := m.BisectionBound()
	if math.Abs(chBound-bis)/bis > 0.05 {
		t.Errorf("channel bound %.3f vs bisection bound %.3f", chBound, bis)
	}
}

func TestMaxChannelLoadIsCenterLink(t *testing.T) {
	m := model(t)(topo.NewMesh(8, 8))
	load, from, to, err := m.MaxChannelLoad()
	if err != nil {
		t.Fatal(err)
	}
	if load <= 0 {
		t.Fatal("no load")
	}
	// Under XY routing the hottest links are horizontal center links.
	a, b := m.Topo.CoordOf(from), m.Topo.CoordOf(to)
	if a.Row != b.Row {
		t.Errorf("hottest link %v-%v not horizontal (XY routing)", a, b)
	}
	if min(a.Col, b.Col) != 3 {
		t.Errorf("hottest link %v-%v not at the bisection", a, b)
	}
}

func TestValidate(t *testing.T) {
	tp, _ := topo.NewMesh(4, 4)
	r, _ := route.For(tp, route.Auto)
	bad := &Model{Topo: tp, Routing: r, RouterDelay: 0, PacketLen: 4}
	if err := bad.Validate(); err == nil {
		t.Error("zero router delay accepted")
	}
	other, _ := topo.NewMesh(5, 5)
	mismatch := &Model{Topo: other, Routing: r, RouterDelay: 1, PacketLen: 1}
	if err := mismatch.Validate(); err == nil {
		t.Error("topology mismatch accepted")
	}
	short := &Model{Topo: tp, Routing: r, RouterDelay: 1, PacketLen: 1, LinkLatency: []int{1}}
	if err := short.Validate(); err == nil {
		t.Error("wrong latency vector length accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
