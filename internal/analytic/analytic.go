// Package analytic implements the classic high-level NoC performance
// models that the paper's related-work section contrasts its toolchain
// against: closed-form zero-load latency and a channel-load bound on
// saturation throughput. These models are orders of magnitude faster
// than cycle-accurate simulation but ignore allocation conflicts,
// buffer occupancy, and flow-control effects — reproducing the
// "high-level models are fast but lack accuracy" trade-off the paper
// describes, and doubling as an independent sanity bound for the
// simulator in package sim (measured saturation can never exceed the
// channel-load bound).
package analytic

import (
	"fmt"

	"sparsehamming/internal/route"
	"sparsehamming/internal/topo"
)

// Model holds the inputs shared by the analytical estimates.
type Model struct {
	Topo    *topo.Topology
	Routing *route.Routing

	// LinkLatency in cycles per topology link (indexed like
	// Topo.Links()); nil means 1 cycle everywhere.
	LinkLatency []int

	// RouterDelay is the per-hop router pipeline depth in cycles.
	RouterDelay int

	// PacketLen is the packet length in flits (serialization term).
	PacketLen int
}

// Validate checks the model inputs.
func (m *Model) Validate() error {
	if m.Topo == nil || m.Routing == nil {
		return fmt.Errorf("analytic: missing topology or routing")
	}
	if m.Routing.Topo != m.Topo {
		return fmt.Errorf("analytic: routing built for a different topology")
	}
	if m.LinkLatency != nil && len(m.LinkLatency) != m.Topo.NumLinks() {
		return fmt.Errorf("analytic: %d link latencies for %d links",
			len(m.LinkLatency), m.Topo.NumLinks())
	}
	if m.RouterDelay < 1 || m.PacketLen < 1 {
		return fmt.Errorf("analytic: router delay and packet length must be >= 1")
	}
	return nil
}

// linkLatencyOf returns the latency of the (undirected) link a-b.
func (m *Model) linkLatencyOf() map[[2]int]int {
	lat := make(map[[2]int]int, m.Topo.NumLinks())
	for i, l := range m.Topo.Links() {
		v := 1
		if m.LinkLatency != nil {
			v = m.LinkLatency[i]
			if v < 1 {
				v = 1
			}
		}
		a, b := m.Topo.Index(l.A), m.Topo.Index(l.B)
		if a > b {
			a, b = b, a
		}
		lat[[2]int{a, b}] = v
	}
	return lat
}

// ZeroLoadLatency returns the average packet latency at zero load
// under uniform random traffic: for each source/destination pair, one
// router delay per hop plus one for injection, the sum of the link
// latencies along the routed path, and the serialization delay of the
// packet's remaining flits.
func (m *Model) ZeroLoadLatency() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	lat := m.linkLatencyOf()
	n := m.Topo.NumTiles()
	var sum float64
	var pairs int
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := m.Routing.Path(s, d)
			cycles := (p.Hops() + 1) * m.RouterDelay // per-hop routers + injection router
			for i := 0; i+1 < len(p.Tiles); i++ {
				a, b := int(p.Tiles[i]), int(p.Tiles[i+1])
				if a > b {
					a, b = b, a
				}
				cycles += lat[[2]int{a, b}]
			}
			cycles += m.PacketLen - 1 // tail flit serialization
			sum += float64(cycles)
			pairs++
		}
	}
	return sum / float64(pairs), nil
}

// ChannelLoads returns, for every directed channel (ordered pair of
// adjacent tiles), the expected number of flits per cycle crossing it
// under uniform random traffic at an injection rate of 1 flit per
// node per cycle. Scaling is linear in the injection rate.
func (m *Model) ChannelLoads() (map[[2]int]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.Topo.NumTiles()
	loads := make(map[[2]int]float64)
	// Each node injects 1 flit/cycle spread over n-1 destinations.
	per := 1.0 / float64(n-1)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := m.Routing.Path(s, d)
			for i := 0; i+1 < len(p.Tiles); i++ {
				loads[[2]int{int(p.Tiles[i]), int(p.Tiles[i+1])}] += per
			}
		}
	}
	return loads, nil
}

// Estimate is the combined output of one surrogate evaluation: both
// closed-form performance estimates, computed in a single pass.
type Estimate struct {
	// ZeroLoadLatency is the closed-form average packet latency at
	// zero load in cycles (identical to Model.ZeroLoadLatency).
	ZeroLoadLatency float64
	// SaturationBound is the channel-load upper bound on saturation
	// throughput in flits/node/cycle (identical to
	// Model.SaturationBound).
	SaturationBound float64
	// MaxChannelLoad is the highest directed-channel load at unit
	// injection rate — the bottleneck behind SaturationBound.
	MaxChannelLoad float64
	// AvgChannelLoad is the mean load over all directed channels at
	// unit injection rate. The gap between it and MaxChannelLoad
	// measures how unevenly the routing spreads traffic: two
	// configurations with the same bottleneck load but different
	// averages congest differently below saturation, which is why the
	// design-space surrogate ranks with a mix of both.
	AvgChannelLoad float64
}

// Estimate computes the zero-load latency and the channel-load
// saturation bound together in one sweep over the n^2 routed paths.
// ZeroLoadLatency and SaturationBound each walk every (src, dst) path
// on their own; when a caller needs both — the design-space surrogate
// scores every configuration on exactly this pair — the combined
// sweep halves the dominant cost. Results are identical to the
// separate methods (same paths, same arithmetic, only the iteration
// is shared).
func (m *Model) Estimate() (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	lat := m.linkLatencyOf()
	n := m.Topo.NumTiles()
	loads := make(map[[2]int]float64)
	per := 1.0 / float64(n-1)
	var sum float64
	var pairs int
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p := m.Routing.Path(s, d)
			cycles := (p.Hops() + 1) * m.RouterDelay
			for i := 0; i+1 < len(p.Tiles); i++ {
				a, b := int(p.Tiles[i]), int(p.Tiles[i+1])
				loads[[2]int{a, b}] += per
				if a > b {
					a, b = b, a
				}
				cycles += lat[[2]int{a, b}]
			}
			cycles += m.PacketLen - 1
			sum += float64(cycles)
			pairs++
		}
	}
	est := Estimate{ZeroLoadLatency: sum / float64(pairs)}
	var loadSum float64
	for _, v := range loads {
		loadSum += v
		if v > est.MaxChannelLoad {
			est.MaxChannelLoad = v
		}
	}
	if nc := 2 * m.Topo.NumLinks(); nc > 0 {
		// Every link is one directed channel per direction; channels
		// no path uses still count toward the mean.
		est.AvgChannelLoad = loadSum / float64(nc)
	}
	est.SaturationBound = 1
	if est.MaxChannelLoad > 0 && 1/est.MaxChannelLoad < 1 {
		est.SaturationBound = 1 / est.MaxChannelLoad
	}
	return est, nil
}

// SaturationBound returns the channel-load upper bound on saturation
// throughput under uniform random traffic: the injection rate (flits
// per node per cycle) at which the most loaded directed channel
// reaches one flit per cycle. Real networks with input-queued routers
// saturate below this bound because of allocation conflicts and
// head-of-line blocking — that gap is exactly the inaccuracy of
// high-level models the paper motivates its toolchain with.
func (m *Model) SaturationBound() (float64, error) {
	loads, err := m.ChannelLoads()
	if err != nil {
		return 0, err
	}
	var max float64
	for _, v := range loads {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1, nil
	}
	bound := 1 / max
	if bound > 1 {
		// Injection bandwidth (1 flit/node/cycle) caps throughput.
		bound = 1
	}
	return bound, nil
}

// BisectionBound returns the classic bisection-bandwidth bound on
// uniform-random throughput: half of all traffic crosses the vertical
// bisection, which provides 2*BisectionLinks flit/cycle of capacity
// (both directions), so rate * N/2 <= 2*B.
func (m *Model) BisectionBound() float64 {
	n := m.Topo.NumTiles()
	b := m.Topo.BisectionLinks()
	bound := 4 * float64(b) / float64(n)
	if bound > 1 {
		bound = 1
	}
	return bound
}

// MaxChannelLoad returns the highest directed-channel load at unit
// injection rate and the channel it occurs on.
func (m *Model) MaxChannelLoad() (load float64, from, to int, err error) {
	loads, err := m.ChannelLoads()
	if err != nil {
		return 0, 0, 0, err
	}
	for k, v := range loads {
		if v > load || (v == load && (k[0] < from || (k[0] == from && k[1] < to))) {
			load, from, to = v, k[0], k[1]
		}
	}
	return load, from, to, nil
}
