package phys

import (
	"testing"

	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// routedPlan runs only the global-routing half of the model.
func routedPlan(t *testing.T, tp *topo.Topology, terr error) *plan {
	t.Helper()
	if terr != nil {
		t.Fatal(terr)
	}
	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = tp.Rows, tp.Cols
	p := newPlan(arch, tp)
	p.sizeTiles()
	p.globalRoute()
	p.assignTracks()
	return p
}

func TestRouteKinds(t *testing.T) {
	sh, err := topo.NewSparseHamming(6, 6, topo.HammingParams{SR: []int{3}, SC: []int{2}})
	p := routedPlan(t, sh, err)
	counts := map[routeKind]int{}
	for _, rt := range p.routes {
		counts[rt.kind]++
	}
	// Unit links: mesh links -> crossV (horizontal) and crossH
	// (vertical); skip links -> runs.
	if counts[crossV] != 6*5 {
		t.Errorf("crossV = %d, want 30", counts[crossV])
	}
	if counts[crossH] != 6*5 {
		t.Errorf("crossH = %d, want 30", counts[crossH])
	}
	if counts[runH] != 6*3 { // offset 3 per row: 3 links x 6 rows
		t.Errorf("runH = %d, want 18", counts[runH])
	}
	if counts[runV] != 6*4 { // offset 2 per column: 4 links x 6 cols
		t.Errorf("runV = %d, want 24", counts[runV])
	}
	if counts[lShape] != 0 {
		t.Errorf("aligned topology produced %d L-shapes", counts[lShape])
	}
}

func TestRunsAssignedToAdjacentChannels(t *testing.T) {
	sh, err := topo.NewSparseHamming(6, 6, topo.HammingParams{SR: []int{4}})
	p := routedPlan(t, sh, err)
	for _, rt := range p.routes {
		if rt.kind != runH {
			continue
		}
		row := rt.link.A.Row
		if rt.hChan != row && rt.hChan != row+1 {
			t.Fatalf("row-%d link in channel %d (want %d or %d)", row, rt.hChan, row, row+1)
		}
		lo, hi := rt.link.A.Col, rt.link.B.Col
		if lo > hi {
			lo, hi = hi, lo
		}
		if rt.hRun.from != lo || rt.hRun.to != hi {
			t.Fatalf("run span [%d,%d] for link cols [%d,%d]", rt.hRun.from, rt.hRun.to, lo, hi)
		}
	}
}

func TestGreedyBalancesSides(t *testing.T) {
	// With offset-4 links in every row, the greedy router must not put
	// everything on one side: interior channels are shared by two rows,
	// so a balanced assignment keeps the peak at or below the naive
	// one-sided peak.
	sh, err := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{4}})
	p := routedPlan(t, sh, err)
	peak := 0
	for _, ch := range p.hchan {
		if ch.tracks > peak {
			peak = ch.tracks
		}
	}
	// 4 overlapping links per row, two rows per interior channel:
	// one-sided worst case is 8; greedy balancing must do better.
	if peak > 6 {
		t.Errorf("peak track count %d, want <= 6 with balanced assignment", peak)
	}
}

func TestLShapeChannelsAdjacent(t *testing.T) {
	sn, err := topo.NewSlimNoC(3, 6)
	p := routedPlan(t, sn, err)
	for _, rt := range p.routes {
		if rt.kind != lShape {
			continue
		}
		if rt.hChan != rt.link.A.Row && rt.hChan != rt.link.A.Row+1 {
			t.Fatalf("L-shape horizontal channel %d not adjacent to source row %d",
				rt.hChan, rt.link.A.Row)
		}
		if rt.vChan != rt.link.B.Col && rt.vChan != rt.link.B.Col+1 {
			t.Fatalf("L-shape vertical channel %d not adjacent to dest column %d",
				rt.vChan, rt.link.B.Col)
		}
	}
}

func TestChannelPlaceOccupancy(t *testing.T) {
	ch := newChannel(8)
	r1 := &run{from: 1, to: 4}
	r2 := &run{from: 3, to: 6}
	ch.place(r1)
	ch.place(r2)
	wantOcc := []int{0, 1, 1, 2, 2, 1, 1, 0}
	for i, w := range wantOcc {
		if ch.occ[i] != w {
			t.Errorf("occ[%d] = %d, want %d", i, ch.occ[i], w)
		}
	}
	if got := ch.maxOccIn(0, 7); got != 2 {
		t.Errorf("maxOccIn = %d, want 2", got)
	}
	if got := ch.maxOccIn(6, 7); got != 1 {
		t.Errorf("maxOccIn tail = %d, want 1", got)
	}
}
