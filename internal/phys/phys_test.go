package phys

import (
	"math"
	"testing"

	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

func evalTopo(t *testing.T, arch *tech.Arch) func(*topo.Topology, error) *Result {
	return func(tp *topo.Topology, err error) *Result {
		t.Helper()
		if err != nil {
			t.Fatalf("topology: %v", err)
		}
		res, err := Evaluate(arch, tp)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res
	}
}

func TestEvaluateMeshBasics(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	res := evalTopo(t, arch)(topo.NewMesh(8, 8))

	if res.AreaOverhead <= 0 || res.AreaOverhead >= 1 {
		t.Fatalf("area overhead = %v, want (0,1)", res.AreaOverhead)
	}
	if res.TotalAreaMm2 <= res.NoNoCAreaMm2 {
		t.Error("total area must exceed no-NoC area")
	}
	if res.NoCPowerW <= 0 {
		t.Errorf("NoC power = %v, want > 0", res.NoCPowerW)
	}
	if len(res.LinkLatencies) != 2*8*7 {
		t.Fatalf("latencies for %d links, want %d", len(res.LinkLatencies), 2*8*7)
	}
	for i, l := range res.LinkLatencies {
		if l < 1 {
			t.Fatalf("link %d latency %d < 1", i, l)
		}
	}
	// A mesh has no long links, so no channel needs along-channel tracks.
	for g, tr := range res.HChanTracks {
		if tr != 0 {
			t.Errorf("mesh h-channel %d has %d tracks, want 0", g, tr)
		}
	}
	for g, tr := range res.VChanTracks {
		if tr != 0 {
			t.Errorf("mesh v-channel %d has %d tracks, want 0", g, tr)
		}
	}
	if res.Collisions != 0 {
		t.Errorf("mesh routed with %d collisions, want 0", res.Collisions)
	}
	if res.ChannelUtilization != 1 {
		t.Errorf("mesh channel utilization = %v, want vacuous 1", res.ChannelUtilization)
	}
}

func TestGridMismatchRejected(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA) // 8x8
	m, _ := topo.NewMesh(4, 4)
	if _, err := Evaluate(arch, m); err == nil {
		t.Error("grid mismatch not rejected")
	}
}

// TestCostOrdering checks the fundamental cost relationships the
// paper's Figure 6 relies on: ring < mesh < sparse Hamming < flattened
// butterfly in area overhead, and the same ordering in NoC power.
func TestCostOrdering(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	ring := evalTopo(t, arch)(topo.NewRing(8, 8))
	mesh := evalTopo(t, arch)(topo.NewMesh(8, 8))
	shg := evalTopo(t, arch)(topo.NewSparseHamming(8, 8,
		topo.HammingParams{SR: []int{4}, SC: []int{2, 5}}))
	fb := evalTopo(t, arch)(topo.NewFlattenedButterfly(8, 8))

	if !(ring.AreaOverhead < mesh.AreaOverhead) {
		t.Errorf("area: ring %.3f !< mesh %.3f", ring.AreaOverhead, mesh.AreaOverhead)
	}
	if !(mesh.AreaOverhead < shg.AreaOverhead) {
		t.Errorf("area: mesh %.3f !< shg %.3f", mesh.AreaOverhead, shg.AreaOverhead)
	}
	if !(shg.AreaOverhead < fb.AreaOverhead) {
		t.Errorf("area: shg %.3f !< fb %.3f", shg.AreaOverhead, fb.AreaOverhead)
	}
	if !(ring.NoCPowerW < mesh.NoCPowerW && mesh.NoCPowerW < fb.NoCPowerW) {
		t.Errorf("power ordering violated: ring %.2f mesh %.2f fb %.2f",
			ring.NoCPowerW, mesh.NoCPowerW, fb.NoCPowerW)
	}
}

// TestFigure6Calibration pins the absolute area-overhead bands that
// the evaluation depends on: the customized SHG must sit at or below
// the paper's 40% constraint while the flattened butterfly must
// exceed it, and the mesh must be a low-cost topology (<20%).
func TestFigure6Calibration(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	mesh := evalTopo(t, arch)(topo.NewMesh(8, 8))
	shg := evalTopo(t, arch)(topo.NewSparseHamming(8, 8,
		topo.HammingParams{SR: []int{4}, SC: []int{2, 5}}))
	fb := evalTopo(t, arch)(topo.NewFlattenedButterfly(8, 8))

	if mesh.AreaOverhead > 0.20 {
		t.Errorf("mesh area overhead = %.1f%%, want < 20%%", 100*mesh.AreaOverhead)
	}
	if shg.AreaOverhead > 0.42 {
		t.Errorf("customized SHG area overhead = %.1f%%, want <= ~40%%", 100*shg.AreaOverhead)
	}
	if fb.AreaOverhead < 0.40 {
		t.Errorf("FB area overhead = %.1f%%, want > 40%%", 100*fb.AreaOverhead)
	}
}

func TestLatencyGrowsWithLinkLength(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	fb, err := topo.NewFlattenedButterfly(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := evalTopo(t, arch)(fb, nil)
	// The longest links must have strictly larger physical length than
	// the shortest, and latency must be monotone in length.
	links := fb.Links()
	var shortLen, longLen float64
	var shortLat, longLat int
	for i, l := range links {
		switch l.GridLength() {
		case 1:
			shortLen, shortLat = res.LinkLengthsMm[i], res.LinkLatencies[i]
		case 7:
			longLen, longLat = res.LinkLengthsMm[i], res.LinkLatencies[i]
		}
	}
	if longLen <= shortLen {
		t.Errorf("7-span link length %v <= 1-span %v", longLen, shortLen)
	}
	if longLat < shortLat {
		t.Errorf("7-span latency %d < 1-span %d", longLat, shortLat)
	}
	if longLat < 2 {
		t.Errorf("a 7-tile link at 1.2 GHz should need pipelining, got %d cycles", longLat)
	}
}

func TestTorusChannelsUniform(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	res := evalTopo(t, arch)(topo.NewTorus(8, 8))
	// One wrap link per row/column: interior channels need at most 1
	// track per side, and utilization is high (ULD criterion).
	for _, tr := range res.HChanTracks {
		if tr > 1 {
			t.Errorf("torus h-channel tracks = %d, want <= 1", tr)
		}
	}
	if res.ChannelUtilization < 0.8 {
		t.Errorf("torus channel utilization = %.2f, want >= 0.8", res.ChannelUtilization)
	}
}

func TestSlimNoCChannelsNonUniform(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioC) // 8x16
	slim := evalTopo(t, arch)(topo.NewSlimNoC(8, 16))
	fb := evalTopo(t, arch)(topo.NewFlattenedButterfly(8, 16))
	if slim.ChannelUtilization >= fb.ChannelUtilization {
		t.Errorf("SlimNoC utilization %.2f should be below FB %.2f (ULD violation)",
			slim.ChannelUtilization, fb.ChannelUtilization)
	}
}

func TestAreaFormulaConsistency(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	res := evalTopo(t, arch)(topo.NewMesh(8, 8))
	// A_tot = N_cell * A_C by definition.
	want := float64(res.CellsX*res.CellsY) * res.CellWidthMm * res.CellHeightMm
	if math.Abs(res.TotalAreaMm2-want)/want > 1e-9 {
		t.Errorf("A_tot = %v, want N_cell*A_C = %v", res.TotalAreaMm2, want)
	}
	// Chip must be at least as large as the tiles it contains.
	tiles := 64 * res.TileWidthMm * res.TileHeightMm
	if res.TotalAreaMm2 < tiles {
		t.Errorf("total area %v < tile area %v", res.TotalAreaMm2, tiles)
	}
}

func TestPowerDecomposition(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	res := evalTopo(t, arch)(topo.NewMesh(8, 8))
	if math.Abs(res.TotalPowerW-(res.NoNoCPowerW+res.NoCPowerW)) > 1e-9 {
		t.Error("P_tot != P_noNoC + P_NoC")
	}
	if res.NoNoCPowerW <= 0 {
		t.Error("no-NoC power must be positive")
	}
}

func TestDeterminism(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	sh, err := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{2, 4}, SC: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Evaluate(arch, sh)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(arch, sh)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalAreaMm2 != r2.TotalAreaMm2 || r1.NoCPowerW != r2.NoCPowerW ||
		r1.Collisions != r2.Collisions {
		t.Error("Evaluate is not deterministic")
	}
	for i := range r1.LinkLatencies {
		if r1.LinkLatencies[i] != r2.LinkLatencies[i] {
			t.Fatalf("link %d latency differs between runs", i)
		}
	}
}

func TestLeftEdgeTrackAssignment(t *testing.T) {
	// Four runs with max overlap 2 must fit in 2 tracks.
	ch := newChannel(10)
	runs := []*run{
		{from: 0, to: 3},
		{from: 2, to: 5},
		{from: 4, to: 7},
		{from: 6, to: 9},
	}
	for _, r := range runs {
		ch.place(r)
	}
	assignLeftEdge(ch)
	if ch.tracks != 2 {
		t.Fatalf("tracks = %d, want 2", ch.tracks)
	}
	// No two overlapping runs share a track.
	for i, a := range runs {
		for _, b := range runs[i+1:] {
			if a.track == b.track && a.from <= b.to && b.from <= a.to {
				t.Fatalf("overlapping runs share track %d", a.track)
			}
		}
	}
}

func TestMoreLinksNeverCheaper(t *testing.T) {
	// Adding offsets to an SHG must not reduce its area.
	arch := tech.Scenario(tech.ScenarioA)
	prev := 0.0
	for _, p := range []topo.HammingParams{
		{},
		{SR: []int{4}},
		{SR: []int{4}, SC: []int{4}},
		{SR: []int{2, 4}, SC: []int{2, 4}},
	} {
		res := evalTopo(t, arch)(topo.NewSparseHamming(8, 8, p))
		if res.TotalAreaMm2 < prev {
			t.Errorf("params %v: area %v smaller than sparser config %v", p, res.TotalAreaMm2, prev)
		}
		prev = res.TotalAreaMm2
	}
}
