// Package phys implements the paper's custom NoC cost model
// (Section IV-B, Figures 4 and 5): a fast approximate-floorplanning
// and link-routing model that predicts a NoC's area overhead, power
// consumption, and the latency of every router-to-router link.
//
// The model runs in five steps:
//
//  1. Tile area estimate and placement in an R x C grid.
//  2. Global routing of links in the grid of tiles (greedy channel
//     assignment; links may not cross over tiles).
//  3. Estimation of the spacing between rows and columns of tiles
//     from the densest section of each routing channel.
//  4. Discretization of the chip into same-sized unit-cells, each
//     accommodating exactly one horizontal and one vertical link.
//  5. Detailed routing in the grid of unit-cells (track assignment
//     via left-edge interval coloring, collision-avoiding stub
//     placement).
//
// The outputs (area overhead, power, per-link latencies) feed the
// cycle-accurate simulator in package sim, mirroring the toolchain of
// Figure 3.
package phys

import (
	"fmt"
	"math"

	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// Result is the full output of the five-step model.
type Result struct {
	// Geometry (step 1/3/4).
	TileWidthMm  float64
	TileHeightMm float64
	CellWidthMm  float64 // W_C
	CellHeightMm float64 // H_C
	ChipWidthMm  float64
	ChipHeightMm float64
	CellsX       int
	CellsY       int

	// Router sizing (step 1).
	RouterGE    float64 // f_AR for the maximum-radix router (tiles are identical)
	MaxPortsIn  int     // manager ports m of that router
	MaxPortsOut int     // subordinate ports s

	// Channel structure (steps 2/3): track count per channel.
	HChanTracks []int // length R+1, index g = channel above row g
	VChanTracks []int // length C+1, index g = channel left of column g

	// Area (step 4).
	TotalAreaMm2 float64 // A_tot = N_cell * A_C
	NoNoCAreaMm2 float64 // A_noNoC
	AreaOverhead float64 // (A_tot - A_noNoC) / A_tot, in [0,1)

	// Power (step 5 occupancy counts).
	NLogicCells int // N^L_cell
	NHCells     int // N^H_cell
	NVCells     int // N^V_cell
	TotalPowerW float64
	NoNoCPowerW float64
	NoCPowerW   float64

	// Per-link results (step 5), indexed like Topology.Links().
	LinkLengthsMm []float64
	LinkLatencies []int // cycles, >= 1
	Collisions    int   // unit-cells claimed by more than one same-direction segment

	// ULD metric: utilization of allocated channel area in [0,1];
	// 1 means every allocated track is fully used along its channel
	// (uniform link density), small values mean wasted spacing.
	ChannelUtilization float64
}

// Evaluate runs the five-step model for a topology on an architecture.
func Evaluate(arch *tech.Arch, t *topo.Topology) (*Result, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if t.Rows != arch.Rows || t.Cols != arch.Cols {
		return nil, fmt.Errorf("phys: topology grid %dx%d does not match architecture %dx%d",
			t.Rows, t.Cols, arch.Rows, arch.Cols)
	}
	p := newPlan(arch, t)
	p.sizeTiles()     // step 1
	p.globalRoute()   // step 2
	p.assignTracks()  // steps 3+5a: spacing follows from track counts
	p.buildCellGrid() // step 4
	p.detailedRoute() // step 5b
	return p.results(), nil
}

// plan carries the intermediate state of the five steps.
type plan struct {
	arch *tech.Arch
	topo *topo.Topology

	wiresPerLink float64 // f_bw→wires(B)

	// Step 1.
	tileW, tileH float64 // mm
	routerGE     float64
	portsIn      int
	portsOut     int

	// Step 2/3: channels. hchan[g] lies above row g (g in 0..R),
	// vchan[g] lies left of column g (g in 0..C).
	hchan []*channel
	vchan []*channel

	routes []route

	// Step 4: cell geometry.
	cellW, cellH   float64
	tileCellsX     int
	tileCellsY     int
	tileX0, chanX0 []int // cell x origin of tile column c / v-channel g
	tileY0, chanY0 []int // cell y origin of tile row r / h-channel g
	cellsX, cellsY int

	// Step 5.
	hOcc, vOcc  []uint16 // per-cell segment counts by direction
	linkLenMm   []float64
	linkLatency []int
	collisions  int

	// Port slot allocation: stub x/y positions per tile face.
	portSlots map[faceKey]int
}

// faceKey identifies one face of one tile for port slot counting.
type faceKey struct {
	tile int
	face byte // 'N', 'S', 'E', 'W'
}

func newPlan(arch *tech.Arch, t *topo.Topology) *plan {
	return &plan{
		arch:         arch,
		topo:         t,
		wiresPerLink: arch.Proto.BWToWires(arch.LinkBWBits),
		portSlots:    make(map[faceKey]int),
	}
}

// sizeTiles performs step 1: router sizing and tile dimensions.
// Tiles are identical building blocks, so every tile is sized for the
// maximum-radix router in the topology.
func (p *plan) sizeTiles() {
	maxRadix := p.topo.MaxRadix()
	local := p.arch.CoresPerTile
	if local < 1 {
		local = 1
	}
	p.portsIn = maxRadix + local
	p.portsOut = maxRadix + local
	p.routerGE = p.arch.Proto.RouterAreaGE(p.portsIn, p.portsOut, p.arch.LinkBWBits)

	tileGE := p.arch.EndpointGE + p.routerGE // A_T = A_E + A_R
	tileArea := p.arch.Node.GEToMm2(tileGE)
	p.tileH = math.Sqrt(p.arch.TileAspect * tileArea)
	p.tileW = math.Sqrt(tileArea / p.arch.TileAspect)
}

// results assembles the Result from the completed plan.
func (p *plan) results() *Result {
	n := p.arch.Node
	cellArea := p.cellW * p.cellH
	totalArea := float64(p.cellsX*p.cellsY) * cellArea
	noNoC := p.arch.NoNoCAreaMm2()

	nLogic := p.topo.NumTiles() * p.tileCellsX * p.tileCellsY
	nH, nV := 0, 0
	for _, c := range p.hOcc {
		if c > 0 {
			nH++
		}
	}
	for _, c := range p.vOcc {
		if c > 0 {
			nV++
		}
	}

	totalPower := n.LogicPower(float64(nLogic)*cellArea) +
		n.WirePower(float64(nH+nV)*cellArea/2)
	noNoCPower := n.LogicPower(noNoC)

	res := &Result{
		TileWidthMm:        p.tileW,
		TileHeightMm:       p.tileH,
		CellWidthMm:        p.cellW,
		CellHeightMm:       p.cellH,
		ChipWidthMm:        float64(p.cellsX) * p.cellW,
		ChipHeightMm:       float64(p.cellsY) * p.cellH,
		CellsX:             p.cellsX,
		CellsY:             p.cellsY,
		RouterGE:           p.routerGE,
		MaxPortsIn:         p.portsIn,
		MaxPortsOut:        p.portsOut,
		HChanTracks:        channelTracks(p.hchan),
		VChanTracks:        channelTracks(p.vchan),
		TotalAreaMm2:       totalArea,
		NoNoCAreaMm2:       noNoC,
		AreaOverhead:       (totalArea - noNoC) / totalArea,
		NLogicCells:        nLogic,
		NHCells:            nH,
		NVCells:            nV,
		TotalPowerW:        totalPower,
		NoNoCPowerW:        noNoCPower,
		NoCPowerW:          totalPower - noNoCPower,
		LinkLengthsMm:      p.linkLenMm,
		LinkLatencies:      p.linkLatency,
		Collisions:         p.collisions,
		ChannelUtilization: p.channelUtilization(),
	}
	return res
}

func channelTracks(chs []*channel) []int {
	out := make([]int, len(chs))
	for i, c := range chs {
		out[i] = c.tracks
	}
	return out
}

// channelUtilization computes the ULD metric: the fraction of
// allocated channel track-length that is actually occupied by link
// runs, over all channels with at least one track. Topologies without
// long links (no tracks anywhere) are vacuously uniform (1.0).
func (p *plan) channelUtilization() float64 {
	var used, alloc float64
	for _, ch := range append(append([]*channel{}, p.hchan...), p.vchan...) {
		if ch.tracks == 0 {
			continue
		}
		for _, o := range ch.occ {
			used += float64(o)
		}
		alloc += float64(ch.tracks * len(ch.occ))
	}
	if alloc == 0 {
		return 1
	}
	return used / alloc
}
