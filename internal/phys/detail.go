package phys

import (
	"math"

	"sparsehamming/internal/topo"
)

// buildCellGrid performs step 4: discretize the chip into unit-cells
// of W_C x H_C, where a unit-cell accommodates exactly one horizontal
// and one vertical link bundle:
//
//	H_C = f^H_wires→mm(f_bw→wires(B))
//	W_C = f^V_wires→mm(f_bw→wires(B))
//
// Because channel spacing is S = f_wires→mm(NL * f_bw→wires(B)) =
// NL * cell size, a channel with NL tracks is exactly NL cells wide,
// so the cell grid is assembled directly from tile blocks and track
// counts.
func (p *plan) buildCellGrid() {
	n := p.arch.Node
	p.cellH = n.HWiresToMm(p.wiresPerLink)
	p.cellW = n.VWiresToMm(p.wiresPerLink)
	p.tileCellsX = int(math.Ceil(p.tileW / p.cellW))
	p.tileCellsY = int(math.Ceil(p.tileH / p.cellH))

	R, C := p.topo.Rows, p.topo.Cols
	p.chanX0 = make([]int, C+1)
	p.tileX0 = make([]int, C)
	x := 0
	for c := 0; c <= C; c++ {
		p.chanX0[c] = x
		x += p.vchan[c].tracks
		if c < C {
			p.tileX0[c] = x
			x += p.tileCellsX
		}
	}
	p.cellsX = x

	p.chanY0 = make([]int, R+1)
	p.tileY0 = make([]int, R)
	y := 0
	for r := 0; r <= R; r++ {
		p.chanY0[r] = y
		y += p.hchan[r].tracks
		if r < R {
			p.tileY0[r] = y
			y += p.tileCellsY
		}
	}
	p.cellsY = y

	p.hOcc = make([]uint16, p.cellsX*p.cellsY)
	p.vOcc = make([]uint16, p.cellsX*p.cellsY)
}

// portSlot allocates the next free stub position on a tile face and
// returns its cell coordinate along that face. Positions alternate
// around the face center with a two-cell pitch so that stubs from the
// same tile never collide (optimized port placement, criterion OPP).
func (p *plan) portSlot(tile int, face byte) int {
	k := p.portSlots[faceKey{tile, face}]
	p.portSlots[faceKey{tile, face}] = k + 1

	var faceLen, origin int
	coord := p.topo.CoordOf(tile)
	switch face {
	case 'N', 'S':
		faceLen, origin = p.tileCellsX, p.tileX0[coord.Col]
	default: // 'E', 'W'
		faceLen, origin = p.tileCellsY, p.tileY0[coord.Row]
	}
	offset := faceLen / 2
	step := (k + 1) / 2 * 2
	if k%2 == 1 {
		offset -= step
	} else {
		offset += step
	}
	if offset < 0 {
		offset = ((offset % faceLen) + faceLen) % faceLen
	}
	if offset >= faceLen {
		offset %= faceLen
	}
	return origin + offset
}

// detailedRoute performs step 5: realize every route as a rectilinear
// path in the unit-cell grid, mark directional occupancy for the power
// model, count collisions, and derive per-link lengths and latencies.
func (p *plan) detailedRoute() {
	links := p.topo.Links()
	p.linkLenMm = make([]float64, len(links))
	p.linkLatency = make([]int, len(links))
	for i := range p.routes {
		nH, nV := p.realizeRoute(&p.routes[i])
		// Physical length: routed distance plus the router-to-port
		// inset inside the two endpoint tiles (router at tile center).
		length := float64(nH)*p.cellW + float64(nV)*p.cellH + (p.tileW+p.tileH)/2
		p.linkLenMm[i] = length
		cycles := int(math.Ceil(p.arch.Node.WireDelay(length) * p.arch.FreqHz))
		if cycles < 1 {
			cycles = 1
		}
		p.linkLatency[i] = cycles
	}
}

// realizeRoute marks the cells of one route and returns the number of
// horizontal and vertical cells it traverses.
func (p *plan) realizeRoute(rt *route) (nH, nV int) {
	a, b := rt.link.A, rt.link.B
	switch rt.kind {
	case crossV:
		// Straight east-west wire across vertical channel rt.vChan at
		// the source tile's east-face slot.
		y := p.portSlot(p.topo.Index(a), 'E')
		p.portSlot(p.topo.Index(b), 'W') // account for the peer port
		g := rt.vChan
		nH += p.markH(p.chanX0[g], p.chanX0[g]+p.vchan[g].tracks-1, y)
	case crossH:
		x := p.portSlot(p.topo.Index(a), 'S')
		p.portSlot(p.topo.Index(b), 'N')
		g := rt.hChan
		nV += p.markV(p.chanY0[g], p.chanY0[g]+p.hchan[g].tracks-1, x)
	case runH:
		h, v := p.realizeRunH(a, b, rt.hChan, rt.hRun)
		nH, nV = nH+h, nV+v
	case runV:
		h, v := p.realizeRunV(a, b, rt.vChan, rt.vRun)
		nH, nV = nH+h, nV+v
	case lShape:
		h, v := p.realizeLShape(a, b, rt)
		nH, nV = nH+h, nV+v
	}
	return nH, nV
}

// realizeRunH routes a same-row link along horizontal channel g:
// vertical stub out of the source tile, horizontal run on the track,
// vertical stub into the destination tile.
func (p *plan) realizeRunH(a, b topo.Coord, g int, r *run) (nH, nV int) {
	row := a.Row
	trackY := p.chanY0[g] + r.track

	faceA, faceB := byte('N'), byte('N')
	if g == row+1 {
		faceA, faceB = 'S', 'S'
	}
	xa := p.portSlot(p.topo.Index(a), faceA)
	xb := p.portSlot(p.topo.Index(b), faceB)

	nV += p.markStubV(g, trackY, xa, row)
	nV += p.markStubV(g, trackY, xb, row)
	x1, x2 := minMax(xa, xb)
	nH += p.markH(x1, x2, trackY)
	return nH, nV
}

// realizeRunV routes a same-column link along vertical channel g.
func (p *plan) realizeRunV(a, b topo.Coord, g int, r *run) (nH, nV int) {
	col := a.Col
	trackX := p.chanX0[g] + r.track

	faceA, faceB := byte('W'), byte('W')
	if g == col+1 {
		faceA, faceB = 'E', 'E'
	}
	ya := p.portSlot(p.topo.Index(a), faceA)
	yb := p.portSlot(p.topo.Index(b), faceB)

	nH += p.markStubH(g, trackX, ya, col)
	nH += p.markStubH(g, trackX, yb, col)
	y1, y2 := minMax(ya, yb)
	nV += p.markV(y1, y2, trackX)
	return nH, nV
}

// realizeLShape routes a non-aligned link: horizontal run in the
// channel adjacent to the source row, then a bend into a vertical run
// in the channel adjacent to the destination column, then a horizontal
// stub into the destination tile.
func (p *plan) realizeLShape(a, b topo.Coord, rt *route) (nH, nV int) {
	hg, vg := rt.hChan, rt.vChan
	trackY := p.chanY0[hg] + rt.hRun.track
	trackX := p.chanX0[vg] + rt.vRun.track

	// Source stub into the horizontal channel.
	faceA := byte('N')
	if hg == a.Row+1 {
		faceA = 'S'
	}
	xa := p.portSlot(p.topo.Index(a), faceA)
	nV += p.markStubV(hg, trackY, xa, a.Row)

	// Horizontal run from the source stub to the bend.
	x1, x2 := minMax(xa, trackX)
	nH += p.markH(x1, x2, trackY)

	// Destination stub out of the vertical channel.
	faceB := byte('W')
	if vg == b.Col+1 {
		faceB = 'E'
	}
	yb := p.portSlot(p.topo.Index(b), faceB)

	// Vertical run from the bend to the destination stub's row.
	y1, y2 := minMax(trackY, yb)
	nV += p.markV(y1, y2, trackX)

	// Horizontal stub from the track into the destination tile edge.
	nH += p.markStubH(vg, trackX, yb, b.Col)
	return nH, nV
}

// markStubV marks the vertical stub connecting a tile in row `row` to
// track row trackY inside horizontal channel g, at column x. The stub
// spans from the channel edge that touches the tile to the track.
func (p *plan) markStubV(g, trackY, x, row int) int {
	var edgeY int
	if g == row {
		// Channel above the row: tile's top edge is the channel's
		// bottom, i.e. the last channel cell row.
		edgeY = p.chanY0[g] + p.hchan[g].tracks - 1
	} else {
		// Channel below the row: tile's bottom edge is the channel's
		// first cell row.
		edgeY = p.chanY0[g]
	}
	y1, y2 := minMax(trackY, edgeY)
	return p.markV(y1, y2, x)
}

// markStubH marks the horizontal stub connecting a tile in column
// `col` to track column trackX inside vertical channel g, at row y.
func (p *plan) markStubH(g, trackX, y, col int) int {
	var edgeX int
	if g == col {
		edgeX = p.chanX0[g] + p.vchan[g].tracks - 1
	} else {
		edgeX = p.chanX0[g]
	}
	x1, x2 := minMax(trackX, edgeX)
	return p.markH(x1, x2, y)
}

// markH marks cells [x1,x2] on row y as containing a horizontal wire
// segment and returns the number of cells marked. Collisions (a cell
// already claimed by another horizontal segment) are counted.
func (p *plan) markH(x1, x2, y int) int {
	if x1 > x2 {
		return 0
	}
	x1, x2 = clamp(x1, 0, p.cellsX-1), clamp(x2, 0, p.cellsX-1)
	y = clamp(y, 0, p.cellsY-1)
	for x := x1; x <= x2; x++ {
		idx := y*p.cellsX + x
		p.hOcc[idx]++
		if p.hOcc[idx] > 1 {
			p.collisions++
		}
	}
	return x2 - x1 + 1
}

// markV marks cells [y1,y2] on column x as containing a vertical wire
// segment.
func (p *plan) markV(y1, y2, x int) int {
	if y1 > y2 {
		return 0
	}
	y1, y2 = clamp(y1, 0, p.cellsY-1), clamp(y2, 0, p.cellsY-1)
	x = clamp(x, 0, p.cellsX-1)
	for y := y1; y <= y2; y++ {
		idx := y*p.cellsX + x
		p.vOcc[idx]++
		if p.vOcc[idx] > 1 {
			p.collisions++
		}
	}
	return y2 - y1 + 1
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
