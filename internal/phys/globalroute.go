package phys

import (
	"sort"

	"sparsehamming/internal/topo"
)

// channel is one routing channel: the space between two adjacent rows
// (horizontal channel, carrying east-west link runs) or columns
// (vertical channel, carrying north-south runs) of tiles.
//
// Occupancy is tracked at tile granularity: occ[i] counts the link
// runs overlapping tile position i. The number of tracks needed is the
// maximum occupancy (interval graphs are perfect, so max clique =
// chromatic number and the left-edge algorithm achieves it).
type channel struct {
	occ    []int
	tracks int
	runs   []*run
}

func newChannel(positions int) *channel {
	return &channel{occ: make([]int, positions)}
}

// maxOccIn returns the maximum occupancy over positions [from, to].
func (c *channel) maxOccIn(from, to int) int {
	m := 0
	for i := from; i <= to; i++ {
		if c.occ[i] > m {
			m = c.occ[i]
		}
	}
	return m
}

// place records a run spanning positions [from, to].
func (c *channel) place(r *run) {
	for i := r.from; i <= r.to; i++ {
		c.occ[i]++
	}
	c.runs = append(c.runs, r)
}

// run is one straight segment of a link routed along a channel.
type run struct {
	from, to int // tile positions covered (inclusive)
	track    int // assigned by the left-edge pass
}

// routeKind classifies how a link is realized geometrically.
type routeKind int

const (
	// crossV: unit-length horizontal link crossing one vertical
	// channel directly (east-west neighbors).
	crossV routeKind = iota
	// crossH: unit-length vertical link crossing one horizontal
	// channel directly (north-south neighbors).
	crossH
	// runH: long row link running along a horizontal channel.
	runH
	// runV: long column link running along a vertical channel.
	runV
	// lShape: non-aligned link: a horizontal run plus a vertical run
	// joined by one bend (SlimNoC cross links).
	lShape
)

// route is the global-routing decision for one topology link.
type route struct {
	link topo.Link
	kind routeKind

	hChan int  // horizontal channel index, -1 if unused
	hRun  *run // run inside hChan
	vChan int
	vRun  *run
}

// globalRoute performs step 2: assign every link to routing channels
// with a greedy heuristic that processes long links first and puts
// each run into the side channel where it increases the peak track
// demand the least (balancing densities, design principle 2 /
// criterion ULD).
func (p *plan) globalRoute() {
	R, C := p.topo.Rows, p.topo.Cols
	p.hchan = make([]*channel, R+1)
	for g := range p.hchan {
		p.hchan[g] = newChannel(C)
	}
	p.vchan = make([]*channel, C+1)
	for g := range p.vchan {
		p.vchan[g] = newChannel(R)
	}

	links := p.topo.Links()
	order := make([]int, len(links))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return links[order[a]].GridLength() > links[order[b]].GridLength()
	})

	p.routes = make([]route, len(links))
	for _, li := range order {
		p.routes[li] = p.routeLink(links[li])
	}
}

// routeLink chooses channels for a single link.
func (p *plan) routeLink(l topo.Link) route {
	a, b := l.A, l.B
	switch {
	case a.Row == b.Row && abs(a.Col-b.Col) == 1:
		// Unit horizontal: cross the vertical channel between them.
		g := max(a.Col, b.Col)
		return route{link: l, kind: crossV, hChan: -1, vChan: g}
	case a.Col == b.Col && abs(a.Row-b.Row) == 1:
		// Unit vertical: cross the horizontal channel between them.
		g := max(a.Row, b.Row)
		return route{link: l, kind: crossH, hChan: g, vChan: -1}
	case a.Row == b.Row:
		// Long row link: run along the channel above or below row a.Row.
		lo, hi := minMax(a.Col, b.Col)
		r := &run{from: lo, to: hi}
		g := p.chooseChannel(p.hchan, a.Row, a.Row+1, r)
		p.hchan[g].place(r)
		return route{link: l, kind: runH, hChan: g, hRun: r, vChan: -1}
	case a.Col == b.Col:
		lo, hi := minMax(a.Row, b.Row)
		r := &run{from: lo, to: hi}
		g := p.chooseChannel(p.vchan, a.Col, a.Col+1, r)
		p.vchan[g].place(r)
		return route{link: l, kind: runV, vChan: g, vRun: r, hChan: -1}
	default:
		// Non-aligned: horizontal run in a channel adjacent to the
		// source row, vertical run in a channel adjacent to the
		// destination column, joined at the bend.
		loC, hiC := minMax(a.Col, b.Col)
		hr := &run{from: loC, to: hiC}
		hg := p.chooseChannel(p.hchan, a.Row, a.Row+1, hr)
		p.hchan[hg].place(hr)
		loR, hiR := minMax(a.Row, b.Row)
		vr := &run{from: loR, to: hiR}
		vg := p.chooseChannel(p.vchan, b.Col, b.Col+1, vr)
		p.vchan[vg].place(vr)
		return route{link: l, kind: lShape, hChan: hg, hRun: hr, vChan: vg, vRun: vr}
	}
}

// chooseChannel picks between the two candidate channels g1 and g2 the
// one whose peak occupancy over the run's span is lower (ties go to
// the lower index, keeping the result deterministic).
func (p *plan) chooseChannel(chs []*channel, g1, g2 int, r *run) int {
	o1 := chs[g1].maxOccIn(r.from, r.to)
	o2 := chs[g2].maxOccIn(r.from, r.to)
	if o2 < o1 {
		return g2
	}
	return g1
}

// assignTracks performs step 3 and the track-assignment half of step
// 5: each channel's track count is its peak occupancy, and concrete
// tracks are assigned with the left-edge algorithm (sort runs by left
// endpoint, give each the lowest track that is free at that point).
func (p *plan) assignTracks() {
	for _, ch := range append(append([]*channel{}, p.hchan...), p.vchan...) {
		assignLeftEdge(ch)
	}
}

func assignLeftEdge(ch *channel) {
	peak := 0
	for _, o := range ch.occ {
		if o > peak {
			peak = o
		}
	}
	ch.tracks = peak
	if peak == 0 {
		return
	}
	runs := append([]*run{}, ch.runs...)
	sort.SliceStable(runs, func(a, b int) bool {
		if runs[a].from != runs[b].from {
			return runs[a].from < runs[b].from
		}
		return runs[a].to > runs[b].to
	})
	// trackFreeAt[t] = first position where track t is free again.
	trackFreeAt := make([]int, peak)
	for i := range trackFreeAt {
		trackFreeAt[i] = -1
	}
	for _, r := range runs {
		assigned := false
		for t := 0; t < peak; t++ {
			if trackFreeAt[t] < r.from {
				r.track = t
				trackFreeAt[t] = r.to
				assigned = true
				break
			}
		}
		if !assigned {
			// Cannot happen for interval graphs (peak = chromatic
			// number), but degrade gracefully rather than panic.
			r.track = peak
			ch.tracks = peak + 1
			trackFreeAt = append(trackFreeAt, r.to)
			peak++
		}
	}
}

func minMax(a, b int) (int, int) {
	if a < b {
		return a, b
	}
	return b, a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
