package phys

import (
	"testing"

	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

// planFor builds a fully-evaluated plan for white-box inspection.
func planFor(t *testing.T, arch *tech.Arch, tp *topo.Topology) *plan {
	t.Helper()
	p := newPlan(arch, tp)
	p.sizeTiles()
	p.globalRoute()
	p.assignTracks()
	p.buildCellGrid()
	p.detailedRoute()
	return p
}

func TestCellGridGeometry(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	tp, err := topo.NewSparseHamming(8, 8, topo.HammingParams{SR: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, arch, tp)

	// Channel g's cell extent equals its track count, and tiles slot
	// exactly between channels.
	x := 0
	for c := 0; c <= 8; c++ {
		if p.chanX0[c] != x {
			t.Fatalf("v-channel %d origin %d, want %d", c, p.chanX0[c], x)
		}
		x += p.vchan[c].tracks
		if c < 8 {
			if p.tileX0[c] != x {
				t.Fatalf("tile col %d origin %d, want %d", c, p.tileX0[c], x)
			}
			x += p.tileCellsX
		}
	}
	if p.cellsX != x {
		t.Fatalf("cellsX %d, want %d", p.cellsX, x)
	}
	// Tile dimensions quantize up.
	if float64(p.tileCellsX)*p.cellW < p.tileW {
		t.Error("tile cells narrower than tile")
	}
}

func TestTrackAssignmentNoOverlap(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	fb, err := topo.NewFlattenedButterfly(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, arch, fb)
	// Within every channel, two runs on the same track never overlap.
	for _, ch := range append(append([]*channel{}, p.hchan...), p.vchan...) {
		for i, a := range ch.runs {
			if a.track >= ch.tracks {
				t.Fatalf("run track %d >= channel tracks %d", a.track, ch.tracks)
			}
			for _, b := range ch.runs[i+1:] {
				if a.track == b.track && a.from <= b.to && b.from <= a.to {
					t.Fatalf("overlapping runs [%d,%d] and [%d,%d] share track %d",
						a.from, a.to, b.from, b.to, a.track)
				}
			}
		}
	}
}

func TestPortSlotsDistinctPerFace(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	fb, err := topo.NewFlattenedButterfly(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlan(arch, fb)
	p.sizeTiles()
	p.globalRoute()
	p.assignTracks()
	p.buildCellGrid()
	// Allocate a dozen slots on one face: all distinct, all in range.
	seen := map[int]bool{}
	for k := 0; k < 12; k++ {
		x := p.portSlot(0, 'N')
		if x < p.tileX0[0] || x >= p.tileX0[0]+p.tileCellsX {
			t.Fatalf("slot %d outside tile face", x)
		}
		if seen[x] {
			t.Fatalf("duplicate slot %d", x)
		}
		seen[x] = true
	}
}

func TestLShapeRealization(t *testing.T) {
	// SlimNoC has non-aligned links; its routes must produce both
	// horizontal and vertical cells and stay collision-accounted.
	arch := tech.Scenario(tech.ScenarioC)
	sn, err := topo.NewSlimNoC(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, arch, sn)
	sawL := false
	for _, rt := range p.routes {
		if rt.kind == lShape {
			sawL = true
			if rt.hChan < 0 || rt.vChan < 0 || rt.hRun == nil || rt.vRun == nil {
				t.Fatal("l-shape route missing channel assignment")
			}
		}
	}
	if !sawL {
		t.Fatal("slimnoc produced no L-shaped routes")
	}
	// Every link got a positive physical length and latency.
	for i := range p.linkLenMm {
		if p.linkLenMm[i] <= 0 || p.linkLatency[i] < 1 {
			t.Fatalf("link %d: length %v latency %d", i, p.linkLenMm[i], p.linkLatency[i])
		}
	}
}

func TestMarkCollisionCounting(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlan(arch, m)
	p.sizeTiles()
	p.globalRoute()
	p.assignTracks()
	p.buildCellGrid()
	// Two horizontal segments over the same cells: second one collides.
	if n := p.markH(10, 14, 5); n != 5 {
		t.Fatalf("marked %d cells, want 5", n)
	}
	if p.collisions != 0 {
		t.Fatalf("collisions after first mark = %d", p.collisions)
	}
	p.markH(12, 16, 5)
	if p.collisions != 3 { // cells 12,13,14 double-claimed
		t.Errorf("collisions = %d, want 3", p.collisions)
	}
	// Vertical direction is independent: no extra collisions.
	before := p.collisions
	p.markV(3, 7, 12)
	if p.collisions != before {
		t.Error("vertical mark collided with horizontal occupancy")
	}
	// Degenerate/clamped ranges.
	if n := p.markH(5, 4, 0); n != 0 {
		t.Errorf("inverted range marked %d cells", n)
	}
	if n := p.markV(-10, -5, 0); n == 0 {
		// Clamped to a single cell at the boundary; any non-negative
		// count is fine, but it must not panic.
		_ = n
	}
}

func TestAspectRatioChangesTileShape(t *testing.T) {
	arch := tech.Scenario(tech.ScenarioA)
	arch.TileAspect = 2 // tall tiles
	m, err := topo.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(arch, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TileHeightMm <= res.TileWidthMm {
		t.Errorf("aspect 2: height %v not above width %v", res.TileHeightMm, res.TileWidthMm)
	}
	ratio := res.TileHeightMm / res.TileWidthMm
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("aspect ratio %v, want ~2", ratio)
	}
}
