package topo

import (
	"fmt"

	"sparsehamming/internal/gf"
)

// NewSlimNoC returns a SlimNoC-style diameter-2 topology for
// N = rows*cols = 2*q^2 tiles, q a prime power.
//
// Construction (the affine-plane core of the MMS graphs that SlimNoC
// is based on): vertices are (part, x, y) with part in {0,1} and
// x, y in GF(q). Part-0 vertex (x, y) is adjacent to part-1 vertex
// (m, c) iff y = m*x + c over GF(q); additionally, vertices within the
// same "column" of a part (same x, respectively same m) form a
// complete graph. This yields diameter exactly 2 and router radix
// 2q - 1 = Theta(sqrt(N)), matching SlimNoC's character. (The original
// MMS construction thins the intra-column cliques using quadratic-
// residue generator sets; that refinement changes the radix constant,
// not the diameter or the routability profile, and is documented as a
// substitution in DESIGN.md.)
//
// Grid placement: part 0 occupies the left q columns with x as the
// column and y as the row; part 1 occupies the right q columns.
// The grid must therefore be q rows by 2q columns (or 2q x q, in
// which case the layout is transposed).
func NewSlimNoC(rows, cols int) (*Topology, error) {
	q, transposed, err := slimNoCShape(rows, cols)
	if err != nil {
		return nil, err
	}
	field, err := gf.New(q)
	if err != nil {
		return nil, fmt.Errorf("topo: slimnoc: %w", err)
	}
	t, err := New("slimnoc", rows, cols)
	if err != nil {
		return nil, err
	}
	place := func(part, x, y int) Coord {
		// Part 0: columns [0, q), part 1: columns [q, 2q); row = y.
		c := Coord{Row: y, Col: part*q + x}
		if transposed {
			c = Coord{Row: c.Col, Col: c.Row}
		}
		return c
	}
	// Intra-column cliques in both parts.
	for part := 0; part < 2; part++ {
		for x := 0; x < q; x++ {
			for y1 := 0; y1 < q; y1++ {
				for y2 := y1 + 1; y2 < q; y2++ {
					t.AddLink(place(part, x, y1), place(part, x, y2))
				}
			}
		}
	}
	// Cross links: (0, x, y) ~ (1, m, c) iff y = m*x + c.
	for x := 0; x < q; x++ {
		for m := 0; m < q; m++ {
			for c := 0; c < q; c++ {
				y := field.Add(field.Mul(m, x), c)
				t.AddLink(place(0, x, y), place(1, m, c))
			}
		}
	}
	return t, nil
}

// SlimNoCApplicable reports whether a SlimNoC can be built on the
// given grid, i.e. whether rows*cols = 2*q^2 for a prime power q with
// a q x 2q (or 2q x q) arrangement.
func SlimNoCApplicable(rows, cols int) bool {
	_, _, err := slimNoCShape(rows, cols)
	return err == nil
}

func slimNoCShape(rows, cols int) (q int, transposed bool, err error) {
	switch {
	case cols == 2*rows:
		q = rows
	case rows == 2*cols:
		q = cols
		transposed = true
	default:
		return 0, false, fmt.Errorf("topo: slimnoc requires a q x 2q grid, got %dx%d", rows, cols)
	}
	if _, _, ok := gf.IsPrimePower(q); !ok {
		return 0, false, fmt.Errorf("topo: slimnoc requires prime-power q, got q=%d", q)
	}
	return q, transposed, nil
}
