package topo

import "fmt"

// NewRuche returns a Ruche network (Jung et al., NOCS 2020): a 2D mesh
// augmented with length-r skip links in both dimensions, where r is
// the "Ruche factor". The paper's related-work section positions
// sparse Hamming graphs as a superset of Ruche networks — a Ruche
// network is exactly the sparse Hamming graph with SR = SC = {r} —
// and this constructor is implemented that way, making the subset
// relation true by construction.
//
// A Ruche factor of 0 or 1 yields the plain mesh.
func NewRuche(rows, cols, factor int) (*Topology, error) {
	if factor < 0 {
		return nil, fmt.Errorf("topo: negative ruche factor %d", factor)
	}
	var p HammingParams
	if factor >= 2 {
		if factor >= cols || factor >= rows {
			return nil, fmt.Errorf("topo: ruche factor %d too large for %dx%d grid", factor, rows, cols)
		}
		p = HammingParams{SR: []int{factor}, SC: []int{factor}}
	}
	t, err := NewSparseHamming(rows, cols, p)
	if err != nil {
		return nil, err
	}
	t.Kind = "ruche"
	return t, nil
}

// RucheConfigurations returns the number of distinct Ruche networks on
// a grid (one per feasible factor, plus the mesh), compared with the
// sparse Hamming graph's 2^(R+C-4): the related-work claim that sparse
// Hamming graphs offer a far finer cost-performance adjustment.
func RucheConfigurations(rows, cols int) int {
	max := rows
	if cols < rows {
		max = cols
	}
	// Factors 2..max-1, plus the mesh (factor <= 1).
	if max <= 2 {
		return 1
	}
	return max - 2 + 1
}
