package topo

// Tri is a three-valued compliance mark used in Table I: Yes (check
// mark), Partial (tilde / parenthesized check), or No (cross).
type Tri int

// Compliance mark values.
const (
	No Tri = iota
	Partial
	Yes
)

// String renders the mark with the paper's symbols.
func (m Tri) String() string {
	switch m {
	case Yes:
		return "Y"
	case Partial:
		return "~"
	default:
		return "N"
	}
}

// StructuralCompliance holds the Table I columns that are pure graph
// properties of a topology instance. The floorplan-dependent columns
// (uniform link density, optimized port placement) and the
// routing-dependent column (minimal paths used) are evaluated by
// packages phys and route and assembled into the full table by
// package noc.
type StructuralCompliance struct {
	RouterRadix         int
	ShortLinks          Tri // SL: all links grid length 1 (Yes), <=2 (Partial)
	AlignedLinks        Tri // AL: all links row- or column-aligned
	Diameter            int
	MinimalPathsPresent bool
	MinimalPathsUsable  bool // best case for any hop-minimal routing
}

// Structural evaluates the graph-level compliance metrics of the
// topology instance.
func (t *Topology) Structural() StructuralCompliance {
	return StructuralCompliance{
		RouterRadix:         t.MaxRadix(),
		ShortLinks:          t.shortLinksMark(),
		AlignedLinks:        triFromBool(t.AllLinksAligned()),
		Diameter:            t.Diameter(),
		MinimalPathsPresent: t.MinimalPathsPresent(),
		MinimalPathsUsable:  t.MinimalPathsUsable(),
	}
}

func (t *Topology) shortLinksMark() Tri {
	switch t.MaxLinkLength() {
	case 0, 1:
		return Yes
	case 2:
		return Partial
	default:
		return No
	}
}

func triFromBool(b bool) Tri {
	if b {
		return Yes
	}
	return No
}
