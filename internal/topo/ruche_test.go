package topo

import "testing"

func TestRucheIsSparseHammingSubset(t *testing.T) {
	// A Ruche network with factor r is the SHG with SR = SC = {r}.
	ruche, err := NewRuche(8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	shg, err := NewSparseHamming(8, 8, HammingParams{SR: []int{3}, SC: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if ruche.NumLinks() != shg.NumLinks() {
		t.Fatalf("ruche links %d != shg links %d", ruche.NumLinks(), shg.NumLinks())
	}
	for _, l := range shg.Links() {
		if !ruche.HasLink(l.A, l.B) {
			t.Fatalf("ruche missing %v-%v", l.A, l.B)
		}
	}
	if ruche.Kind != "ruche" {
		t.Errorf("kind = %s", ruche.Kind)
	}
}

func TestRucheMeshDegenerate(t *testing.T) {
	for _, f := range []int{0, 1} {
		r, err := NewRuche(5, 5, f)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := NewMesh(5, 5)
		if r.NumLinks() != m.NumLinks() {
			t.Errorf("factor %d: links %d, mesh %d", f, r.NumLinks(), m.NumLinks())
		}
	}
}

func TestRucheRejectsBadFactor(t *testing.T) {
	if _, err := NewRuche(4, 4, -1); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := NewRuche(4, 4, 4); err == nil {
		t.Error("factor >= grid dimension accepted")
	}
	if _, err := NewRuche(4, 8, 5); err == nil {
		t.Error("factor >= rows accepted")
	}
}

func TestRucheConfigurationCount(t *testing.T) {
	// 8x8: factors {mesh, 2..7} = 7 configurations vs SHG's 4096 —
	// the related-work claim that SHG offers far finer adjustment.
	if got := RucheConfigurations(8, 8); got != 7 {
		t.Errorf("ruche configs = %d, want 7", got)
	}
	if got := NumConfigurations(8, 8); got != 4096 {
		t.Errorf("shg configs = %v, want 4096", got)
	}
	if got := RucheConfigurations(2, 8); got != 1 {
		t.Errorf("2x8 ruche configs = %d, want 1", got)
	}
}

func TestRucheReducesDiameter(t *testing.T) {
	mesh, _ := NewMesh(8, 8)
	ruche, err := NewRuche(8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ruche.Diameter() >= mesh.Diameter() {
		t.Errorf("ruche diameter %d not below mesh %d", ruche.Diameter(), mesh.Diameter())
	}
}
