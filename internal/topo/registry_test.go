package topo

import (
	"strings"
	"testing"
)

// registryGrid returns a grid every family fits: 8x16 satisfies the
// hypercube's power-of-two constraint and SlimNoC's q x 2q shape.
const regRows, regCols = 8, 16

// TestRegistryRoundTrip checks every registered family: the name is
// listed, ByName builds an instance whose Kind matches, the instance
// validates (connected, no isolated tiles), and the grid constraint
// agrees with the build.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 9 {
		t.Fatalf("only %d families registered: %v", len(names), names)
	}
	for _, kind := range names {
		fam, ok := FamilyByName(kind)
		if !ok {
			t.Fatalf("FamilyByName(%q) missing", kind)
		}
		if fam.Kind != kind {
			t.Errorf("family %q has Kind %q", kind, fam.Kind)
		}
		if err := fam.Applicable(regRows, regCols); err != nil {
			t.Errorf("%s not applicable on %dx%d: %v", kind, regRows, regCols, err)
			continue
		}
		var sr, sc []int
		if fam.Parameterized {
			sr, sc = []int{2}, []int{2}
		}
		tp, err := ByName(kind, regRows, regCols, sr, sc)
		if err != nil {
			t.Errorf("ByName(%q): %v", kind, err)
			continue
		}
		if tp.Kind != kind {
			t.Errorf("ByName(%q) built kind %q", kind, tp.Kind)
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
		if fam.Label() == "" {
			t.Errorf("%s: empty label", kind)
		}
	}
}

// TestRegistryUnknownKind pins the error shape: unknown kinds list
// the registered names.
func TestRegistryUnknownKind(t *testing.T) {
	_, err := ByName("moebius", 4, 4, nil, nil)
	if err == nil {
		t.Fatal("unknown kind must error")
	}
	if !strings.Contains(err.Error(), "sparse-hamming") {
		t.Errorf("error %q does not list registered kinds", err)
	}
}

// TestRegistryGridConstraints pins the structural applicability of
// the constrained families, including the preserved error text.
func TestRegistryGridConstraints(t *testing.T) {
	cases := []struct {
		kind       string
		rows, cols int
		applicable bool
	}{
		{"hypercube", 8, 8, true},
		{"hypercube", 6, 6, false},
		{"hypercube", 8, 12, false},
		{"slimnoc", 8, 16, true},
		{"slimnoc", 16, 8, true},
		{"slimnoc", 8, 8, false},
		{"slimnoc", 6, 6, false},
		{"mesh", 3, 17, true},
	}
	for _, c := range cases {
		fam, ok := FamilyByName(c.kind)
		if !ok {
			t.Fatalf("family %q missing", c.kind)
		}
		err := fam.Applicable(c.rows, c.cols)
		if (err == nil) != c.applicable {
			t.Errorf("%s on %dx%d: applicable err = %v, want applicable=%v", c.kind, c.rows, c.cols, err, c.applicable)
		}
		if err != nil && !strings.Contains(err.Error(), c.kind) {
			t.Errorf("%s constraint error %q does not name the family", c.kind, err)
		}
		// The constraint must agree with the builder.
		_, berr := ByName(c.kind, c.rows, c.cols, nil, nil)
		if (berr == nil) != c.applicable {
			t.Errorf("%s on %dx%d: build err = %v disagrees with constraint", c.kind, c.rows, c.cols, berr)
		}
	}
}

// TestRegistryBuildMatchesConstructors pins the registry builders to
// the direct constructors: same link sets, so registry-driven layers
// (campaign jobs, spec files) build exactly what the library calls
// build.
func TestRegistryBuildMatchesConstructors(t *testing.T) {
	type mk struct {
		kind   string
		sr, sc []int
		direct func() (*Topology, error)
	}
	cases := []mk{
		{"ring", nil, nil, func() (*Topology, error) { return NewRing(regRows, regCols) }},
		{"mesh", nil, nil, func() (*Topology, error) { return NewMesh(regRows, regCols) }},
		{"torus", nil, nil, func() (*Topology, error) { return NewTorus(regRows, regCols) }},
		{"folded-torus", nil, nil, func() (*Topology, error) { return NewFoldedTorus(regRows, regCols) }},
		{"hypercube", nil, nil, func() (*Topology, error) { return NewHypercube(regRows, regCols) }},
		{"slimnoc", nil, nil, func() (*Topology, error) { return NewSlimNoC(regRows, regCols) }},
		{"flattened-butterfly", nil, nil, func() (*Topology, error) { return NewFlattenedButterfly(regRows, regCols) }},
		{"sparse-hamming", []int{3}, []int{2, 5}, func() (*Topology, error) {
			return NewSparseHamming(regRows, regCols, HammingParams{SR: []int{3}, SC: []int{2, 5}})
		}},
		{"ruche", []int{3}, nil, func() (*Topology, error) { return NewRuche(regRows, regCols, 3) }},
	}
	for _, c := range cases {
		want, err := c.direct()
		if err != nil {
			t.Fatalf("%s direct: %v", c.kind, err)
		}
		got, err := ByName(c.kind, regRows, regCols, c.sr, c.sc)
		if err != nil {
			t.Fatalf("%s ByName: %v", c.kind, err)
		}
		if got.NumLinks() != want.NumLinks() {
			t.Errorf("%s: registry builds %d links, direct %d", c.kind, got.NumLinks(), want.NumLinks())
			continue
		}
		for _, l := range want.Links() {
			if !got.HasLink(l.A, l.B) {
				t.Errorf("%s: registry build missing link %v-%v", c.kind, l.A, l.B)
				break
			}
		}
	}
}
