// Package topo defines NoC topologies on an R x C grid of tiles and
// implements the eight topologies compared in the paper: ring, 2D mesh,
// 2D torus, folded 2D torus, hypercube, SlimNoC, flattened butterfly,
// and the paper's contribution, the sparse Hamming graph.
//
// A topology is an undirected multigraph-free graph whose vertices are
// tiles identified by (row, col) grid coordinates. Links carry no
// weights here; physical lengths and latencies are derived later by the
// floorplanning model in package phys.
package topo

import (
	"fmt"
	"sort"

	"sparsehamming/internal/graphalg"
)

// Coord identifies a tile by its row and column in the grid.
type Coord struct {
	Row, Col int
}

// String returns "(r,c)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Link is an undirected connection between the routers of two tiles.
// Links are stored in canonical order (A before B in row-major index
// order).
type Link struct {
	A, B Coord
}

// Aligned reports whether the link stays within one row or one column.
func (l Link) Aligned() bool {
	return l.A.Row == l.B.Row || l.A.Col == l.B.Col
}

// GridLength returns the Manhattan distance between the endpoints in
// tile units.
func (l Link) GridLength() int {
	return abs(l.A.Row-l.B.Row) + abs(l.A.Col-l.B.Col)
}

// Topology is a NoC topology on an R x C grid of tiles.
// Construct topologies with the New* constructors; the zero value is
// an empty topology.
type Topology struct {
	Kind string // human-readable topology family name
	Rows int
	Cols int

	links   []Link
	linkSet map[[2]int]struct{} // canonical (minIdx, maxIdx) pairs
	adj     [][]int             // tile index -> sorted neighbor tile indices
	adjDone bool
}

// New returns an empty topology (no links) on an R x C grid.
func New(kind string, rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: invalid grid %dx%d", rows, cols)
	}
	return &Topology{
		Kind:    kind,
		Rows:    rows,
		Cols:    cols,
		linkSet: make(map[[2]int]struct{}),
	}, nil
}

// NumTiles returns R*C.
func (t *Topology) NumTiles() int { return t.Rows * t.Cols }

// Index returns the row-major index of coordinate c.
func (t *Topology) Index(c Coord) int { return c.Row*t.Cols + c.Col }

// CoordOf returns the coordinate of tile index i.
func (t *Topology) CoordOf(i int) Coord { return Coord{Row: i / t.Cols, Col: i % t.Cols} }

// InBounds reports whether c lies within the grid.
func (t *Topology) InBounds(c Coord) bool {
	return c.Row >= 0 && c.Row < t.Rows && c.Col >= 0 && c.Col < t.Cols
}

// AddLink adds an undirected link between a and b. Duplicate links and
// self-loops are silently ignored, keeping constructors simple.
// It panics if either endpoint is out of bounds (a constructor bug,
// not a runtime condition).
func (t *Topology) AddLink(a, b Coord) {
	if !t.InBounds(a) || !t.InBounds(b) {
		panic(fmt.Sprintf("topo: link endpoint out of bounds: %v-%v on %dx%d", a, b, t.Rows, t.Cols))
	}
	ia, ib := t.Index(a), t.Index(b)
	if ia == ib {
		return
	}
	if ia > ib {
		ia, ib = ib, ia
		a, b = b, a
	}
	key := [2]int{ia, ib}
	if _, dup := t.linkSet[key]; dup {
		return
	}
	t.linkSet[key] = struct{}{}
	t.links = append(t.links, Link{A: a, B: b})
	t.adjDone = false
}

// HasLink reports whether an undirected link between a and b exists.
func (t *Topology) HasLink(a, b Coord) bool {
	ia, ib := t.Index(a), t.Index(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	_, ok := t.linkSet[[2]int{ia, ib}]
	return ok
}

// Links returns all links in deterministic (insertion) order. The
// returned slice is owned by the topology and must not be modified.
func (t *Topology) Links() []Link { return t.links }

// NumLinks returns the number of undirected links.
func (t *Topology) NumLinks() int { return len(t.links) }

// buildAdj (re)builds the adjacency lists.
func (t *Topology) buildAdj() {
	if t.adjDone {
		return
	}
	n := t.NumTiles()
	t.adj = make([][]int, n)
	for _, l := range t.links {
		ia, ib := t.Index(l.A), t.Index(l.B)
		t.adj[ia] = append(t.adj[ia], ib)
		t.adj[ib] = append(t.adj[ib], ia)
	}
	for i := range t.adj {
		sort.Ints(t.adj[i])
	}
	t.adjDone = true
}

// Neighbors returns the sorted neighbor tile indices of tile i. The
// returned slice is owned by the topology and must not be modified.
func (t *Topology) Neighbors(i int) []int {
	t.buildAdj()
	return t.adj[i]
}

// Degree returns the number of inter-tile links attached to tile i
// (the router radix excluding local endpoint ports).
func (t *Topology) Degree(i int) int {
	t.buildAdj()
	return len(t.adj[i])
}

// MaxRadix returns the maximum router radix over all tiles, excluding
// local endpoint ports (matching the paper's Table I convention).
func (t *Topology) MaxRadix() int {
	max := 0
	for i := 0; i < t.NumTiles(); i++ {
		if d := t.Degree(i); d > max {
			max = d
		}
	}
	return max
}

// Graph returns the topology as an undirected graphalg.Graph over tile
// indices.
func (t *Topology) Graph() *graphalg.Graph {
	g := graphalg.NewGraph(t.NumTiles())
	for _, l := range t.links {
		g.AddUndirected(t.Index(l.A), t.Index(l.B))
	}
	return g
}

// Connected reports whether the topology is connected.
func (t *Topology) Connected() bool { return t.Graph().Connected() }

// Diameter returns the network diameter in router-to-router hops.
// It returns -1 if the topology is disconnected.
func (t *Topology) Diameter() int {
	d, ok := t.Graph().Diameter()
	if !ok {
		return -1
	}
	return d
}

// AverageHops returns the average hop distance over all distinct pairs.
func (t *Topology) AverageHops() float64 { return t.Graph().AverageDistance() }

// Validate checks structural invariants: connectivity, in-bounds
// endpoints (guaranteed by AddLink), and no isolated tiles for grids
// with more than one tile.
func (t *Topology) Validate() error {
	if t.NumTiles() > 1 {
		for i := 0; i < t.NumTiles(); i++ {
			if t.Degree(i) == 0 {
				return fmt.Errorf("topo %s: isolated tile %v", t.Kind, t.CoordOf(i))
			}
		}
	}
	if !t.Connected() {
		return fmt.Errorf("topo %s: disconnected", t.Kind)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
