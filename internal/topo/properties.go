package topo

import (
	"sparsehamming/internal/graphalg"
)

// Manhattan returns the Manhattan distance between two tiles in tile
// units; this is the minimal possible physical path length between
// them (design principle 4).
func Manhattan(a, b Coord) int {
	return abs(a.Row-b.Row) + abs(a.Col-b.Col)
}

// PhysGraph returns the topology as a weighted graph whose edge
// weights are the links' grid (Manhattan) lengths, the model used
// throughout Section II-C for physical path lengths.
func (t *Topology) PhysGraph() *graphalg.WeightedGraph {
	g := graphalg.NewWeightedGraph(t.NumTiles())
	for _, l := range t.links {
		g.AddUndirected(t.Index(l.A), t.Index(l.B), float64(l.GridLength()))
	}
	return g
}

// MinimalPathsPresent reports whether, for every pair of tiles, the
// topology contains a path whose physical length equals the Manhattan
// distance between the tiles (column "Minimal Paths: Present" of
// Table I).
func (t *Topology) MinimalPathsPresent() bool {
	g := t.PhysGraph()
	n := t.NumTiles()
	for i := 0; i < n; i++ {
		dist := g.Dijkstra(i)
		a := t.CoordOf(i)
		for j := i + 1; j < n; j++ {
			if dist[j] > float64(Manhattan(a, t.CoordOf(j)))+1e-9 {
				return false
			}
		}
	}
	return true
}

// HopMinimalPhysLengths returns, for source tile src, the minimal
// physical length achievable by any hop-count-minimal path to every
// other tile. It is computed with a layered BFS dynamic program: among
// all paths with the minimum hop count, take the one with minimal
// total grid length.
func (t *Topology) HopMinimalPhysLengths(src int) []int {
	t.buildAdj()
	n := t.NumTiles()
	hops := make([]int, n)
	phys := make([]int, n)
	for i := range hops {
		hops[i] = -1
		phys[i] = 1 << 30
	}
	hops[src] = 0
	phys[src] = 0
	frontier := []int{src}
	for len(frontier) > 0 {
		var next []int
		// First pass: discover next-layer vertices.
		for _, u := range frontier {
			for _, v := range t.adj[u] {
				if hops[v] < 0 {
					hops[v] = hops[u] + 1
					next = append(next, v)
				}
			}
		}
		// Second pass: relax physical lengths within the next layer
		// (every hop-minimal predecessor of v is in the current
		// frontier, so one pass suffices).
		for _, u := range frontier {
			cu := t.CoordOf(u)
			for _, v := range t.adj[u] {
				if hops[v] == hops[u]+1 {
					w := phys[u] + Manhattan(cu, t.CoordOf(v))
					if w < phys[v] {
						phys[v] = w
					}
				}
			}
		}
		frontier = next
	}
	return phys
}

// MinimalPathsUsable reports whether, for every pair of tiles, there
// exists a hop-count-minimal path whose physical length equals the
// Manhattan distance. This is the best any hop-minimizing routing
// algorithm can do; the "Used" column of Table I additionally depends
// on the concrete routing function (evaluated in package route).
func (t *Topology) MinimalPathsUsable() bool {
	n := t.NumTiles()
	for i := 0; i < n; i++ {
		phys := t.HopMinimalPhysLengths(i)
		a := t.CoordOf(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if phys[j] > Manhattan(a, t.CoordOf(j)) {
				return false
			}
		}
	}
	return true
}

// LinkLengthHistogram returns a map from grid length to the number of
// links of that length.
func (t *Topology) LinkLengthHistogram() map[int]int {
	h := make(map[int]int)
	for _, l := range t.links {
		h[l.GridLength()]++
	}
	return h
}

// AllLinksAligned reports whether every link stays within one row or
// one column (criterion AL of design principle 2).
func (t *Topology) AllLinksAligned() bool {
	for _, l := range t.links {
		if !l.Aligned() {
			return false
		}
	}
	return true
}

// MaxLinkLength returns the maximum grid length over all links, or 0
// for a linkless topology.
func (t *Topology) MaxLinkLength() int {
	max := 0
	for _, l := range t.links {
		if g := l.GridLength(); g > max {
			max = g
		}
	}
	return max
}

// BisectionLinks returns the number of links crossing the vertical
// bisection of the grid (between columns C/2-1 and C/2). It is a
// standard capacity indicator used by the throughput sanity checks.
func (t *Topology) BisectionLinks() int {
	cut := t.Cols / 2
	n := 0
	for _, l := range t.links {
		lo, hi := l.A.Col, l.B.Col
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < cut && hi >= cut {
			n++
		}
	}
	return n
}
