package topo

import (
	"fmt"
	"sort"
)

// HammingParams are the two offset sets that parameterize a sparse
// Hamming graph (Section III-b of the paper): SR is a set of column
// offsets in [2, C-1] applied within each row, SC a set of row offsets
// in [2, R-1] applied within each column. The mesh's offset 1 is
// always present implicitly.
type HammingParams struct {
	SR []int // row links: connect (r,i) to (r,i+x) for x in SR
	SC []int // column links: connect (i,c) to (i+x,c) for x in SC
}

// Clone returns a deep copy of the parameters with sorted,
// deduplicated offset sets.
func (p HammingParams) Clone() HammingParams {
	return HammingParams{SR: normalizeOffsets(p.SR), SC: normalizeOffsets(p.SC)}
}

// String renders the parameters as "SR={...} SC={...}".
func (p HammingParams) String() string {
	return fmt.Sprintf("SR=%v SC=%v", normalizeOffsets(p.SR), normalizeOffsets(p.SC))
}

func normalizeOffsets(s []int) []int {
	seen := make(map[int]struct{}, len(s))
	out := make([]int, 0, len(s))
	for _, x := range s {
		if _, dup := seen[x]; !dup {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

// NewSparseHamming returns a sparse Hamming graph on an R x C grid
// (Section III-b): a 2D mesh plus, for every row r and every offset
// x in SR, links (r,i)-(r,i+x) for all valid i, and symmetrically for
// columns with SC. With empty sets it is exactly the mesh; with
// SR = {2..C-1} and SC = {2..R-1} it is the flattened butterfly.
//
// Offsets outside [2, C-1] (rows) or [2, R-1] (columns) are rejected.
func NewSparseHamming(rows, cols int, params HammingParams) (*Topology, error) {
	p := params.Clone()
	for _, x := range p.SR {
		if x < 2 || x >= cols {
			return nil, fmt.Errorf("topo: SR offset %d outside [2,%d]", x, cols-1)
		}
	}
	for _, x := range p.SC {
		if x < 2 || x >= rows {
			return nil, fmt.Errorf("topo: SC offset %d outside [2,%d]", x, rows-1)
		}
	}
	t, err := New("sparse-hamming", rows, cols)
	if err != nil {
		return nil, err
	}
	addMeshLinks(t)
	for r := 0; r < rows; r++ {
		for _, x := range p.SR {
			for i := 0; i+x < cols; i++ {
				t.AddLink(Coord{r, i}, Coord{r, i + x})
			}
		}
	}
	for c := 0; c < cols; c++ {
		for _, x := range p.SC {
			for i := 0; i+x < rows; i++ {
				t.AddLink(Coord{i, c}, Coord{i + x, c})
			}
		}
	}
	return t, nil
}

// RowOffsets returns the full set of column offsets available within a
// row, i.e. {1} union SR, sorted.
func (p HammingParams) RowOffsets() []int { return append([]int{1}, normalizeOffsets(p.SR)...) }

// ColOffsets returns the full set of row offsets available within a
// column, i.e. {1} union SC, sorted.
func (p HammingParams) ColOffsets() []int { return append([]int{1}, normalizeOffsets(p.SC)...) }

// HammingSpace enumerates every sparse Hamming configuration of an
// R x C grid — all subsets of the candidate row offsets {2..C-1}
// crossed with all subsets of the candidate column offsets {2..R-1},
// 2^(R+C-4) configurations in total. The order is deterministic: the
// mask over (row offsets, then column offsets) counts up from the
// mesh (empty sets) to the flattened butterfly (all offsets), so
// enumeration index i always names the same configuration — the
// property design-space campaigns rely on for stable job lists.
// Grids whose space exceeds maxConfigs are refused (pass 0 for the
// practical default of 2^20).
func HammingSpace(rows, cols int, maxConfigs int) ([]HammingParams, error) {
	if maxConfigs <= 0 {
		maxConfigs = 1 << 20
	}
	nr := cols - 2 // candidate row offsets 2..C-1
	nc := rows - 2 // candidate column offsets 2..R-1
	if nr < 0 {
		nr = 0
	}
	if nc < 0 {
		nc = 0
	}
	if nr+nc >= 63 || 1<<(nr+nc) > maxConfigs {
		return nil, fmt.Errorf("topo: %.0f sparse Hamming configurations on %dx%d exceed limit %d",
			NumConfigurations(rows, cols), rows, cols, maxConfigs)
	}
	total := 1 << (nr + nc)
	params := make([]HammingParams, 0, total)
	for mask := 0; mask < total; mask++ {
		var p HammingParams
		for i := 0; i < nr; i++ {
			if mask&(1<<i) != 0 {
				p.SR = append(p.SR, i+2)
			}
		}
		for i := 0; i < nc; i++ {
			if mask&(1<<(nr+i)) != 0 {
				p.SC = append(p.SC, i+2)
			}
		}
		params = append(params, p)
	}
	return params, nil
}

// NumConfigurations returns the number of distinct sparse Hamming
// graph configurations for a given grid, 2^(R+C-4) (Table I), as a
// float64 to avoid overflow for large grids.
func NumConfigurations(rows, cols int) float64 {
	exp := rows + cols - 4
	if exp < 0 {
		return 1
	}
	res := 1.0
	for i := 0; i < exp; i++ {
		res *= 2
	}
	return res
}
