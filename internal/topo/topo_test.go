package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mustTopo returns a checker bound to t that unwraps a constructor
// result and validates the topology.
func mustTopo(t *testing.T) func(*Topology, error) *Topology {
	return func(tp *Topology, err error) *Topology {
		t.Helper()
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		if err := tp.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		return tp
	}
}

func TestMeshBasics(t *testing.T) {
	m := mustTopo(t)(NewMesh(4, 5))
	// Link count: R*(C-1) horizontal + C*(R-1) vertical.
	want := 4*4 + 5*3
	if m.NumLinks() != want {
		t.Errorf("mesh 4x5 links = %d, want %d", m.NumLinks(), want)
	}
	if m.MaxRadix() != 4 {
		t.Errorf("mesh radix = %d, want 4", m.MaxRadix())
	}
	if d := m.Diameter(); d != 4+5-2 {
		t.Errorf("mesh diameter = %d, want %d", d, 7)
	}
	// Corner has degree 2, edge 3, interior 4.
	if m.Degree(m.Index(Coord{0, 0})) != 2 {
		t.Error("corner degree != 2")
	}
	if m.Degree(m.Index(Coord{0, 2})) != 3 {
		t.Error("edge degree != 3")
	}
	if m.Degree(m.Index(Coord{1, 2})) != 4 {
		t.Error("interior degree != 4")
	}
}

func TestMeshIsShortAligned(t *testing.T) {
	m := mustTopo(t)(NewMesh(8, 8))
	if m.MaxLinkLength() != 1 {
		t.Error("mesh has non-unit links")
	}
	if !m.AllLinksAligned() {
		t.Error("mesh has unaligned links")
	}
	if !m.MinimalPathsPresent() {
		t.Error("mesh should provide minimal paths")
	}
	if !m.MinimalPathsUsable() {
		t.Error("mesh hop-minimal paths should be physically minimal")
	}
}

func TestRingHamiltonian(t *testing.T) {
	// Even rows: Hamiltonian cycle, all links short.
	r := mustTopo(t)(NewRing(4, 5))
	if r.NumLinks() != 20 {
		t.Errorf("ring 4x5 links = %d, want 20", r.NumLinks())
	}
	if r.MaxRadix() != 2 {
		t.Errorf("ring radix = %d, want 2", r.MaxRadix())
	}
	if r.MaxLinkLength() != 1 {
		t.Errorf("ring 4x5 max link length = %d, want 1 (Hamiltonian)", r.MaxLinkLength())
	}
	if d := r.Diameter(); d != 10 {
		t.Errorf("ring 4x5 diameter = %d, want RC/2 = 10", d)
	}
}

func TestRingOddGrid(t *testing.T) {
	// 3x3: no Hamiltonian cycle in the grid graph; serpentine closes long.
	r := mustTopo(t)(NewRing(3, 3))
	if r.MaxRadix() != 2 {
		t.Errorf("ring radix = %d, want 2", r.MaxRadix())
	}
	if d := r.Diameter(); d != 4 {
		t.Errorf("ring 3x3 diameter = %d, want 4", d)
	}
}

func TestRingEvenColsOddRows(t *testing.T) {
	r := mustTopo(t)(NewRing(5, 4))
	if r.MaxLinkLength() != 1 {
		t.Errorf("ring 5x4 max link length = %d, want 1 (transposed Hamiltonian)", r.MaxLinkLength())
	}
	if r.MaxRadix() != 2 {
		t.Errorf("ring 5x4 radix = %d", r.MaxRadix())
	}
}

func TestTorus(t *testing.T) {
	tr := mustTopo(t)(NewTorus(6, 8))
	if tr.MaxRadix() != 4 {
		t.Errorf("torus radix = %d, want 4", tr.MaxRadix())
	}
	if d := tr.Diameter(); d != 3+4 {
		t.Errorf("torus 6x8 diameter = %d, want 7", d)
	}
	if !tr.AllLinksAligned() {
		t.Error("torus has unaligned links")
	}
	if tr.MaxLinkLength() <= 2 {
		t.Error("torus should have long wrap links")
	}
	if !tr.MinimalPathsPresent() {
		t.Error("torus contains the mesh, so minimal paths are present")
	}
	if tr.MinimalPathsUsable() {
		t.Error("torus hop-minimal routing uses wrap links: not physically minimal")
	}
}

func TestFoldedTorus(t *testing.T) {
	ft := mustTopo(t)(NewFoldedTorus(6, 8))
	if ft.MaxRadix() != 4 {
		t.Errorf("folded torus radix = %d, want 4", ft.MaxRadix())
	}
	// Same diameter as torus.
	if d := ft.Diameter(); d != 3+4 {
		t.Errorf("folded torus 6x8 diameter = %d, want 7", d)
	}
	if ft.MaxLinkLength() != 2 {
		t.Errorf("folded torus max link length = %d, want 2", ft.MaxLinkLength())
	}
	if ft.MinimalPathsPresent() {
		t.Error("folded torus lacks physically minimal paths (no unit links in the interior)")
	}
	// Folded torus has the same number of links as the torus.
	tr := mustTopo(t)(NewTorus(6, 8))
	if ft.NumLinks() != tr.NumLinks() {
		t.Errorf("folded torus links = %d, torus = %d", ft.NumLinks(), tr.NumLinks())
	}
}

func TestHypercube(t *testing.T) {
	h := mustTopo(t)(NewHypercube(8, 8))
	if h.MaxRadix() != 6 {
		t.Errorf("hypercube 8x8 radix = %d, want log2(64) = 6", h.MaxRadix())
	}
	if d := h.Diameter(); d != 6 {
		t.Errorf("hypercube 8x8 diameter = %d, want 6", d)
	}
	// Every tile has exactly log2(RC) links (regular graph).
	for i := 0; i < h.NumTiles(); i++ {
		if h.Degree(i) != 6 {
			t.Fatalf("hypercube degree at %v = %d, want 6", h.CoordOf(i), h.Degree(i))
		}
	}
	if !h.AllLinksAligned() {
		t.Error("hypercube (row/col bit split) should have aligned links")
	}
	// Gray-code placement: mesh is a subgraph, minimal paths present.
	if !h.MinimalPathsPresent() {
		t.Error("gray-coded hypercube should contain minimal paths")
	}
	if h.MaxLinkLength() == 1 {
		t.Error("hypercube should have long links")
	}
}

func TestHypercubeRejectsNonPow2(t *testing.T) {
	if _, err := NewHypercube(6, 8); err == nil {
		t.Error("NewHypercube(6,8) succeeded, want error")
	}
	if _, err := NewHypercube(8, 12); err == nil {
		t.Error("NewHypercube(8,12) succeeded, want error")
	}
}

func TestFlattenedButterfly(t *testing.T) {
	fb := mustTopo(t)(NewFlattenedButterfly(4, 6))
	if fb.MaxRadix() != 4+6-2 {
		t.Errorf("FB radix = %d, want R+C-2 = 8", fb.MaxRadix())
	}
	if d := fb.Diameter(); d != 2 {
		t.Errorf("FB diameter = %d, want 2", d)
	}
	// Link count: R*C(C-1)/2 + C*R(R-1)/2.
	want := 4*6*5/2 + 6*4*3/2
	if fb.NumLinks() != want {
		t.Errorf("FB links = %d, want %d", fb.NumLinks(), want)
	}
	if !fb.MinimalPathsPresent() || !fb.MinimalPathsUsable() {
		t.Error("FB should both contain and use minimal paths")
	}
}

func TestSparseHammingDegenerateCases(t *testing.T) {
	// Empty sets: exactly the mesh.
	sh := mustTopo(t)(NewSparseHamming(5, 6, HammingParams{}))
	mesh := mustTopo(t)(NewMesh(5, 6))
	if sh.NumLinks() != mesh.NumLinks() {
		t.Errorf("SHG({},{}) links = %d, mesh = %d", sh.NumLinks(), mesh.NumLinks())
	}
	for _, l := range mesh.Links() {
		if !sh.HasLink(l.A, l.B) {
			t.Fatalf("SHG({},{}) missing mesh link %v-%v", l.A, l.B)
		}
	}
	// Full sets: exactly the flattened butterfly.
	full := HammingParams{}
	for x := 2; x < 6; x++ {
		full.SR = append(full.SR, x)
	}
	for x := 2; x < 5; x++ {
		full.SC = append(full.SC, x)
	}
	shFull := mustTopo(t)(NewSparseHamming(5, 6, full))
	fb := mustTopo(t)(NewFlattenedButterfly(5, 6))
	if shFull.NumLinks() != fb.NumLinks() {
		t.Errorf("SHG(full) links = %d, FB = %d", shFull.NumLinks(), fb.NumLinks())
	}
	for _, l := range fb.Links() {
		if !shFull.HasLink(l.A, l.B) {
			t.Fatalf("SHG(full) missing FB link %v-%v", l.A, l.B)
		}
	}
}

func TestSparseHammingConstruction(t *testing.T) {
	// 8x8 with SR={4}, SC={2,5} (paper scenario a parameters).
	sh := mustTopo(t)(NewSparseHamming(8, 8, HammingParams{SR: []int{4}, SC: []int{2, 5}}))
	// Each row adds (C-4) = 4 links for offset 4.
	// Each column adds (R-2) + (R-5) = 6+3 = 9 links.
	mesh := 8*7 + 8*7
	want := mesh + 8*4 + 8*9
	if sh.NumLinks() != want {
		t.Errorf("SHG links = %d, want %d", sh.NumLinks(), want)
	}
	// Spot-check constructed links per Section III-b.
	if !sh.HasLink(Coord{3, 0}, Coord{3, 4}) {
		t.Error("missing row link (3,0)-(3,4) for offset 4")
	}
	if !sh.HasLink(Coord{0, 5}, Coord{2, 5}) {
		t.Error("missing column link (0,5)-(2,5) for offset 2")
	}
	if !sh.HasLink(Coord{2, 7}, Coord{7, 7}) {
		t.Error("missing column link (2,7)-(7,7) for offset 5")
	}
	if sh.HasLink(Coord{0, 0}, Coord{0, 3}) {
		t.Error("unexpected row link of offset 3")
	}
	// All links aligned, minimal paths present (mesh subgraph).
	if !sh.AllLinksAligned() {
		t.Error("SHG links must be row/column aligned")
	}
	if !sh.MinimalPathsPresent() {
		t.Error("SHG contains the mesh: minimal paths present")
	}
}

func TestSparseHammingRejectsBadOffsets(t *testing.T) {
	cases := []HammingParams{
		{SR: []int{1}},
		{SR: []int{8}}, // C-1 = 7 max for 8 cols
		{SC: []int{0}},
		{SC: []int{9}},
		{SR: []int{-2}},
	}
	for _, p := range cases {
		if _, err := NewSparseHamming(8, 8, p); err == nil {
			t.Errorf("NewSparseHamming(8,8,%v) succeeded, want error", p)
		}
	}
}

func TestSparseHammingDiameterMonotone(t *testing.T) {
	// Adding offsets can only reduce (or keep) the diameter.
	prev := -1
	params := []HammingParams{
		{},
		{SR: []int{4}},
		{SR: []int{4}, SC: []int{2}},
		{SR: []int{4}, SC: []int{2, 5}},
		{SR: []int{2, 4}, SC: []int{2, 5}},
	}
	for i, p := range params {
		sh := mustTopo(t)(NewSparseHamming(8, 8, p))
		d := sh.Diameter()
		if prev >= 0 && d > prev {
			t.Errorf("step %d (%v): diameter %d > previous %d", i, p, d, prev)
		}
		prev = d
	}
}

func TestNumConfigurations(t *testing.T) {
	if got := NumConfigurations(8, 8); got != 4096 {
		t.Errorf("NumConfigurations(8,8) = %v, want 2^12 = 4096", got)
	}
	if got := NumConfigurations(2, 2); got != 1 {
		t.Errorf("NumConfigurations(2,2) = %v, want 1", got)
	}
}

func TestSlimNoC(t *testing.T) {
	// q=8: 128 tiles on an 8x16 grid.
	s := mustTopo(t)(NewSlimNoC(8, 16))
	if d := s.Diameter(); d != 2 {
		t.Errorf("slimnoc diameter = %d, want 2", d)
	}
	// Radix 2q-1 = 15 for every tile.
	for i := 0; i < s.NumTiles(); i++ {
		if s.Degree(i) != 15 {
			t.Fatalf("slimnoc degree at %v = %d, want 15", s.CoordOf(i), s.Degree(i))
		}
	}
	if s.AllLinksAligned() {
		t.Error("slimnoc should have unaligned (cross) links")
	}
	// Transposed arrangement.
	st := mustTopo(t)(NewSlimNoC(16, 8))
	if d := st.Diameter(); d != 2 {
		t.Errorf("transposed slimnoc diameter = %d, want 2", d)
	}
	if st.NumLinks() != s.NumLinks() {
		t.Errorf("transposed link count %d != %d", st.NumLinks(), s.NumLinks())
	}
}

func TestSlimNoCApplicability(t *testing.T) {
	if !SlimNoCApplicable(8, 16) {
		t.Error("8x16 (q=8) should be applicable")
	}
	if !SlimNoCApplicable(5, 10) {
		t.Error("5x10 (q=5) should be applicable")
	}
	if SlimNoCApplicable(8, 8) {
		t.Error("8x8 (64 tiles) should not be applicable (matches paper scenarios a/b)")
	}
	if SlimNoCApplicable(6, 12) {
		t.Error("q=6 is not a prime power")
	}
	if SlimNoCApplicable(4, 9) {
		t.Error("grid must be q x 2q")
	}
}

func TestSlimNoCSmallField(t *testing.T) {
	// q=3: 18 tiles on 3x6.
	s := mustTopo(t)(NewSlimNoC(3, 6))
	if d := s.Diameter(); d != 2 {
		t.Errorf("slimnoc q=3 diameter = %d, want 2", d)
	}
	for i := 0; i < s.NumTiles(); i++ {
		if s.Degree(i) != 5 {
			t.Fatalf("slimnoc q=3 degree = %d, want 2q-1 = 5", s.Degree(i))
		}
	}
}

func TestAddLinkDedupAndSelfLoop(t *testing.T) {
	tp, err := New("test", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Coord{0, 0}, Coord{0, 1}
	tp.AddLink(a, b)
	tp.AddLink(b, a) // duplicate in reverse order
	tp.AddLink(a, a) // self loop ignored
	if tp.NumLinks() != 1 {
		t.Errorf("links = %d, want 1", tp.NumLinks())
	}
	if !tp.HasLink(b, a) {
		t.Error("HasLink not symmetric")
	}
}

func TestAddLinkOutOfBoundsPanics(t *testing.T) {
	tp, err := New("test", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds link")
		}
	}()
	tp.AddLink(Coord{0, 0}, Coord{5, 5})
}

func TestIndexCoordRoundTrip(t *testing.T) {
	tp, err := New("test", 7, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tp.NumTiles(); i++ {
		if got := tp.Index(tp.CoordOf(i)); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, tp.CoordOf(i), got)
		}
	}
}

func TestBisectionLinks(t *testing.T) {
	m, _ := NewMesh(4, 8)
	if got := m.BisectionLinks(); got != 4 {
		t.Errorf("mesh 4x8 bisection = %d, want 4", got)
	}
	fb, _ := NewFlattenedButterfly(4, 8)
	// Each row contributes 4*4 = 16 pairs crossing the cut.
	if got := fb.BisectionLinks(); got != 4*16 {
		t.Errorf("FB 4x8 bisection = %d, want 64", got)
	}
}

// TestQuickSparseHammingValid: random valid offset sets always yield
// connected topologies with aligned links containing the mesh.
func TestQuickSparseHammingValid(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(8)
		cols := 3 + rng.Intn(8)
		var p HammingParams
		for x := 2; x < cols; x++ {
			if rng.Intn(2) == 0 {
				p.SR = append(p.SR, x)
			}
		}
		for x := 2; x < rows; x++ {
			if rng.Intn(2) == 0 {
				p.SC = append(p.SC, x)
			}
		}
		sh, err := NewSparseHamming(rows, cols, p)
		if err != nil {
			return false
		}
		if err := sh.Validate(); err != nil {
			return false
		}
		return sh.AllLinksAligned() && sh.MinimalPathsPresent() && sh.MaxRadix() <= rows+cols-2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiameterBounds: SHG diameter lies in [2, R+C-2] as Table I
// claims (lower bound 2 only reachable for the full butterfly; general
// instances are bounded by the mesh diameter above).
func TestQuickDiameterBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(6)
		cols := 3 + rng.Intn(6)
		var p HammingParams
		for x := 2; x < cols; x++ {
			if rng.Intn(3) == 0 {
				p.SR = append(p.SR, x)
			}
		}
		for x := 2; x < rows; x++ {
			if rng.Intn(3) == 0 {
				p.SC = append(p.SC, x)
			}
		}
		sh, err := NewSparseHamming(rows, cols, p)
		if err != nil {
			return false
		}
		d := sh.Diameter()
		return d >= 2 && d <= rows+cols-2 || (rows+cols-2) < 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStructuralComplianceMesh(t *testing.T) {
	m, _ := NewMesh(8, 8)
	c := m.Structural()
	if c.RouterRadix != 4 || c.ShortLinks != Yes || c.AlignedLinks != Yes ||
		c.Diameter != 14 || !c.MinimalPathsPresent || !c.MinimalPathsUsable {
		t.Errorf("mesh compliance = %+v", c)
	}
}

func TestStructuralComplianceFoldedTorus(t *testing.T) {
	ft, _ := NewFoldedTorus(8, 8)
	c := ft.Structural()
	if c.ShortLinks != Partial {
		t.Errorf("folded torus SL = %v, want Partial", c.ShortLinks)
	}
	if c.MinimalPathsPresent {
		t.Error("folded torus should not provide minimal paths")
	}
}

func TestHammingParamsString(t *testing.T) {
	p := HammingParams{SR: []int{4, 2, 4}, SC: []int{5}}
	if got := p.String(); got != "SR=[2 4] SC=[5]" {
		t.Errorf("String() = %q", got)
	}
}
