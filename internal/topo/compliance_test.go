package topo

import "testing"

func TestTriString(t *testing.T) {
	if Yes.String() != "Y" || Partial.String() != "~" || No.String() != "N" {
		t.Errorf("marks: %s %s %s", Yes, Partial, No)
	}
}

func TestStructuralComplianceTable(t *testing.T) {
	// The graph-level half of Table I for every family on 8x8.
	cases := []struct {
		name    string
		make    func() (*Topology, error)
		radix   int
		sl      Tri
		al      Tri
		diam    int
		present bool
		usable  bool
	}{
		{"ring", func() (*Topology, error) { return NewRing(8, 8) }, 2, Yes, Yes, 32, false, false},
		{"mesh", func() (*Topology, error) { return NewMesh(8, 8) }, 4, Yes, Yes, 14, true, true},
		{"torus", func() (*Topology, error) { return NewTorus(8, 8) }, 4, No, Yes, 8, true, false},
		{"folded", func() (*Topology, error) { return NewFoldedTorus(8, 8) }, 4, Partial, Yes, 8, false, false},
		// Note: the Gray-coded hypercube admits hop-minimal paths that
		// are physically minimal (usable=true); Table I's "Used" column
		// is false because e-cube's fixed bit order does not take them
		// (tested in package route).
		{"hypercube", func() (*Topology, error) { return NewHypercube(8, 8) }, 6, No, Yes, 6, true, true},
		{"fb", func() (*Topology, error) { return NewFlattenedButterfly(8, 8) }, 14, No, Yes, 2, true, true},
	}
	for _, c := range cases {
		tp, err := c.make()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sc := tp.Structural()
		if sc.RouterRadix != c.radix {
			t.Errorf("%s radix = %d, want %d", c.name, sc.RouterRadix, c.radix)
		}
		if sc.ShortLinks != c.sl {
			t.Errorf("%s SL = %v, want %v", c.name, sc.ShortLinks, c.sl)
		}
		if sc.AlignedLinks != c.al {
			t.Errorf("%s AL = %v, want %v", c.name, sc.AlignedLinks, c.al)
		}
		if sc.Diameter != c.diam {
			t.Errorf("%s diameter = %d, want %d", c.name, sc.Diameter, c.diam)
		}
		if sc.MinimalPathsPresent != c.present {
			t.Errorf("%s present = %v, want %v", c.name, sc.MinimalPathsPresent, c.present)
		}
		if sc.MinimalPathsUsable != c.usable {
			t.Errorf("%s usable = %v, want %v", c.name, sc.MinimalPathsUsable, c.usable)
		}
	}
}

func TestHopMinimalPhysLengthsAgainstDijkstra(t *testing.T) {
	// For the mesh, hop-minimal physical lengths equal the plain
	// shortest physical distances (all paths are unit steps).
	m, _ := NewMesh(5, 7)
	for s := 0; s < m.NumTiles(); s++ {
		phys := m.HopMinimalPhysLengths(s)
		for d := 0; d < m.NumTiles(); d++ {
			want := Manhattan(m.CoordOf(s), m.CoordOf(d))
			if phys[d] != want {
				t.Fatalf("mesh phys[%d->%d] = %d, want %d", s, d, phys[d], want)
			}
		}
	}
	// For the torus, hop-minimal routes may be physically longer than
	// Manhattan for wrap pairs.
	tr, _ := NewTorus(6, 6)
	phys := tr.HopMinimalPhysLengths(0)
	// (0,0) -> (0,5): 1 hop over the wrap link of physical length 5.
	if got := phys[tr.Index(Coord{Row: 0, Col: 5})]; got != 5 {
		t.Errorf("torus wrap pair phys length = %d, want 5", got)
	}
}

func TestLinkLengthHistogram(t *testing.T) {
	sh, err := NewSparseHamming(4, 4, HammingParams{SR: []int{2}, SC: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	h := sh.LinkLengthHistogram()
	// Mesh links: 24 of length 1; offset 2: 2 per row x 4 rows = 8;
	// offset 3: 1 per column x 4 columns = 4.
	if h[1] != 24 || h[2] != 8 || h[3] != 4 {
		t.Errorf("histogram = %v", h)
	}
}
