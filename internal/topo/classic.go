package topo

import "fmt"

// NewRing returns a ring topology whose cycle visits every tile, as
// drawn in the paper's Figure 1a. When the grid has an even number of
// rows (or, after transposition, columns) the cycle is a Hamiltonian
// cycle of the grid graph — a serpentine over columns 1..C-1 returning
// up column 0 — so every link connects grid-adjacent tiles (short
// links, satisfying criterion SL of design principle 2). For grids
// where no such cycle exists (both dimensions odd) the serpentine
// closes with one long link.
func NewRing(rows, cols int) (*Topology, error) {
	t, err := New("ring", rows, cols)
	if err != nil {
		return nil, err
	}
	if t.NumTiles() < 2 {
		return t, nil
	}
	order := ringOrder(rows, cols)
	for i := 0; i < len(order); i++ {
		t.AddLink(order[i], order[(i+1)%len(order)])
	}
	return t, nil
}

// ringOrder returns a cyclic visiting order of the grid, preferring a
// Hamiltonian cycle of the grid graph when one exists.
func ringOrder(rows, cols int) []Coord {
	switch {
	case rows == 1 || cols == 1:
		return serpentine(rows, cols)
	case rows%2 == 0:
		return hamiltonianCycle(rows, cols, false)
	case cols%2 == 0:
		return hamiltonianCycle(cols, rows, true)
	default:
		return serpentine(rows, cols)
	}
}

// hamiltonianCycle serpentines over columns 1..C-1 and returns along
// column 0. rows must be even. If transpose is set, row/col are
// swapped in the emitted coordinates.
func hamiltonianCycle(rows, cols int, transpose bool) []Coord {
	emit := func(r, c int) Coord {
		if transpose {
			return Coord{Row: c, Col: r}
		}
		return Coord{Row: r, Col: c}
	}
	order := make([]Coord, 0, rows*cols)
	if cols == 1 {
		for r := 0; r < rows; r++ {
			order = append(order, emit(r, 0))
		}
		return order
	}
	for r := 0; r < rows; r++ {
		if r%2 == 0 {
			for c := 1; c < cols; c++ {
				order = append(order, emit(r, c))
			}
		} else {
			for c := cols - 1; c >= 1; c-- {
				order = append(order, emit(r, c))
			}
		}
	}
	for r := rows - 1; r >= 0; r-- {
		order = append(order, emit(r, 0))
	}
	return order
}

// serpentine returns the boustrophedon visiting order of the grid.
func serpentine(rows, cols int) []Coord {
	order := make([]Coord, 0, rows*cols)
	for r := 0; r < rows; r++ {
		if r%2 == 0 {
			for c := 0; c < cols; c++ {
				order = append(order, Coord{r, c})
			}
		} else {
			for c := cols - 1; c >= 0; c-- {
				order = append(order, Coord{r, c})
			}
		}
	}
	return order
}

// NewMesh returns a 2D mesh: neighboring tiles in the same row or
// column are connected (Figure 1b).
func NewMesh(rows, cols int) (*Topology, error) {
	t, err := New("mesh", rows, cols)
	if err != nil {
		return nil, err
	}
	addMeshLinks(t)
	return t, nil
}

func addMeshLinks(t *Topology) {
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			if c+1 < t.Cols {
				t.AddLink(Coord{r, c}, Coord{r, c + 1})
			}
			if r+1 < t.Rows {
				t.AddLink(Coord{r, c}, Coord{r + 1, c})
			}
		}
	}
}

// NewTorus returns a 2D torus: a mesh whose rows and columns each form
// a cycle via wrap-around links (Figure 1c).
func NewTorus(rows, cols int) (*Topology, error) {
	t, err := New("torus", rows, cols)
	if err != nil {
		return nil, err
	}
	addMeshLinks(t)
	for r := 0; r < rows; r++ {
		if cols > 2 {
			t.AddLink(Coord{r, 0}, Coord{r, cols - 1})
		}
	}
	for c := 0; c < cols; c++ {
		if rows > 2 {
			t.AddLink(Coord{0, c}, Coord{rows - 1, c})
		}
	}
	return t, nil
}

// NewFoldedTorus returns a folded 2D torus (Figure 1d): each row and
// each column forms a cycle built only from links of grid length two
// (plus one length-one link at each end), eliminating the torus's long
// wrap-around links at the cost of all interior links spanning two
// tiles.
func NewFoldedTorus(rows, cols int) (*Topology, error) {
	t, err := New("folded-torus", rows, cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		addFoldedCycleRow(t, r)
	}
	for c := 0; c < cols; c++ {
		addFoldedCycleCol(t, c)
	}
	return t, nil
}

// addFoldedCycleRow connects the tiles of row r in folded-torus
// fashion: 0-2-4-...-end-...-5-3-1-0 using distance-2 links plus the
// two end links.
func addFoldedCycleRow(t *Topology, r int) {
	n := t.Cols
	if n < 2 {
		return
	}
	if n == 2 {
		t.AddLink(Coord{r, 0}, Coord{r, 1})
		return
	}
	for c := 0; c+2 < n; c++ {
		t.AddLink(Coord{r, c}, Coord{r, c + 2})
	}
	t.AddLink(Coord{r, 0}, Coord{r, 1})
	t.AddLink(Coord{r, n - 2}, Coord{r, n - 1})
}

func addFoldedCycleCol(t *Topology, c int) {
	n := t.Rows
	if n < 2 {
		return
	}
	if n == 2 {
		t.AddLink(Coord{0, c}, Coord{1, c})
		return
	}
	for r := 0; r+2 < n; r++ {
		t.AddLink(Coord{r, c}, Coord{r + 2, c})
	}
	t.AddLink(Coord{0, c}, Coord{1, c})
	t.AddLink(Coord{n - 2, c}, Coord{n - 1, c})
}

// NewHypercube returns a hypercube topology (Figure 1e): tiles are
// connected iff their IDs differ in exactly one bit. Following the
// paper's figure, tiles are placed in binary-reflected Gray-code
// order (the IDs along the top row of Figure 1e read 00, 01, 11, 10),
// so grid-adjacent tiles differ in exactly one bit and the mesh is a
// subgraph of the hypercube. The ID of tile (r, c) is the
// concatenation of gray(r) and gray(c), so every link stays row- or
// column-aligned. Both dimensions must be powers of two.
func NewHypercube(rows, cols int) (*Topology, error) {
	if !isPow2(rows) || !isPow2(cols) {
		return nil, fmt.Errorf("topo: hypercube requires power-of-two grid, got %dx%d", rows, cols)
	}
	t, err := New("hypercube", rows, cols)
	if err != nil {
		return nil, err
	}
	// invGray[g] = position of Gray code g in sequence.
	colOf := invGray(cols)
	rowOf := invGray(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			gr, gc := gray(r), gray(c)
			for b := 1; b < cols; b <<= 1 {
				c2 := colOf[gc^b]
				if c2 > c {
					t.AddLink(Coord{r, c}, Coord{r, c2})
				}
			}
			for b := 1; b < rows; b <<= 1 {
				r2 := rowOf[gr^b]
				if r2 > r {
					t.AddLink(Coord{r, c}, Coord{r2, c})
				}
			}
		}
	}
	return t, nil
}

// gray returns the binary-reflected Gray code of i.
func gray(i int) int { return i ^ (i >> 1) }

// invGray returns a table mapping Gray code value to sequence index,
// for values in [0, n).
func invGray(n int) []int {
	inv := make([]int, n)
	for i := 0; i < n; i++ {
		inv[gray(i)] = i
	}
	return inv
}

// NewFlattenedButterfly returns a flattened butterfly (Figure 1g):
// every pair of tiles in the same row and every pair in the same
// column are directly connected.
func NewFlattenedButterfly(rows, cols int) (*Topology, error) {
	t, err := New("flattened-butterfly", rows, cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		for c1 := 0; c1 < cols; c1++ {
			for c2 := c1 + 1; c2 < cols; c2++ {
				t.AddLink(Coord{r, c1}, Coord{r, c2})
			}
		}
	}
	for c := 0; c < cols; c++ {
		for r1 := 0; r1 < rows; r1++ {
			for r2 := r1 + 1; r2 < rows; r2++ {
				t.AddLink(Coord{r1, c}, Coord{r2, c})
			}
		}
	}
	return t, nil
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }
