package topo

// This file is the topology registry: the single name-keyed catalog
// of topology families the rest of the repository builds from.
// Construction by kind name (campaign job specs, spec files, CLI
// flags), structural applicability (which grids admit a hypercube or
// a SlimNoC), the Figure 6 display label, and the co-designed default
// routing all live here, so adding a topology family is one Register
// call instead of edits to five scattered switches.

import (
	"fmt"
	"strings"
)

// Family describes one registered topology family: how to build an
// instance by name and the metadata the higher layers (route
// selection, Figure 6 panels, spec validation) key off.
type Family struct {
	// Kind is the registry key and the Topology.Kind the builder
	// produces ("mesh", "sparse-hamming", ...).
	Kind string

	// DisplayName is the label used in the paper's tables and figures
	// ("2d-mesh", "folded-2d-torus"); it defaults to Kind when empty.
	DisplayName string

	// DefaultRouting names the co-designed routing algorithm in the
	// route registry (design principle 4). Empty means no registered
	// default: the router falls back to its structural heuristic.
	DefaultRouting string

	// Parameterized reports whether Build reads the SR/SC offset
	// lists (the sparse Hamming graph's offset sets; Ruche's factor
	// rides in SR[0]). Non-parameterized families ignore them, and
	// spec validation rejects stray offsets to keep cache keys from
	// fragmenting.
	Parameterized bool

	// GridConstraint, when non-nil, reports whether the family is
	// structurally applicable on an R x C grid (hypercube needs
	// power-of-two dimensions, SlimNoC needs q x 2q with prime-power
	// q). A nil constraint means the family fits every grid.
	GridConstraint func(rows, cols int) error

	// Build constructs an instance. sr and sc are the offset
	// parameters for Parameterized families and ignored otherwise.
	Build func(rows, cols int, sr, sc []int) (*Topology, error)
}

// Applicable reports whether the family is structurally applicable on
// the grid, returning the constraint's error when it is not.
func (f *Family) Applicable(rows, cols int) error {
	if f.GridConstraint == nil {
		return nil
	}
	return f.GridConstraint(rows, cols)
}

// Label returns DisplayName, falling back to Kind.
func (f *Family) Label() string {
	if f.DisplayName != "" {
		return f.DisplayName
	}
	return f.Kind
}

var (
	familyOrder  []string
	familyByKind = map[string]*Family{}
)

// Register adds a family to the registry. It panics on an empty or
// duplicate kind — registration happens at init time, so either is a
// programming error, not a runtime condition.
func Register(f Family) {
	if f.Kind == "" {
		panic("topo: Register with empty kind")
	}
	if f.Build == nil {
		panic(fmt.Sprintf("topo: Register(%q) with nil Build", f.Kind))
	}
	if _, dup := familyByKind[f.Kind]; dup {
		panic(fmt.Sprintf("topo: Register(%q) twice", f.Kind))
	}
	fam := f
	familyByKind[f.Kind] = &fam
	familyOrder = append(familyOrder, f.Kind)
}

// FamilyByName returns the registered family for a kind.
func FamilyByName(kind string) (*Family, bool) {
	f, ok := familyByKind[kind]
	return f, ok
}

// Names lists the registered kinds in registration order (the paper's
// Table I order, then extensions).
func Names() []string {
	return append([]string(nil), familyOrder...)
}

// ByName builds a topology by kind name. sr and sc parameterize the
// sparse Hamming graph (offset sets) and the Ruche network (factor in
// sr[0]); other families ignore them. Unknown kinds report the
// registered names.
func ByName(kind string, rows, cols int, sr, sc []int) (*Topology, error) {
	f, ok := familyByKind[kind]
	if !ok {
		return nil, fmt.Errorf("topo: unknown topology %q (want one of %s)",
			kind, strings.Join(Names(), "|"))
	}
	return f.Build(rows, cols, sr, sc)
}

// init registers the eight families of the paper's comparison in
// Table I order, plus the Ruche network from the related-work
// comparison. DefaultRouting mirrors the co-design of package route:
// rings get dateline cycle routing, tori dimension-order ring
// routing, the hypercube e-cube, SlimNoC hop-minimal tables, and the
// aligned mesh-like families monotone dimension-order routing.
func init() {
	fixed := func(build func(rows, cols int) (*Topology, error)) func(int, int, []int, []int) (*Topology, error) {
		return func(rows, cols int, _, _ []int) (*Topology, error) { return build(rows, cols) }
	}
	Register(Family{
		Kind:           "ring",
		DefaultRouting: "cycle-dateline",
		Build:          fixed(NewRing),
	})
	Register(Family{
		Kind:           "mesh",
		DisplayName:    "2d-mesh",
		DefaultRouting: "monotone-dor",
		Build:          fixed(NewMesh),
	})
	Register(Family{
		Kind:           "torus",
		DisplayName:    "2d-torus",
		DefaultRouting: "torus-dor",
		Build:          fixed(NewTorus),
	})
	Register(Family{
		Kind:           "folded-torus",
		DisplayName:    "folded-2d-torus",
		DefaultRouting: "torus-dor",
		Build:          fixed(NewFoldedTorus),
	})
	Register(Family{
		Kind:           "hypercube",
		DefaultRouting: "e-cube",
		GridConstraint: func(rows, cols int) error {
			if !isPow2(rows) || !isPow2(cols) {
				return fmt.Errorf("topo: hypercube requires power-of-two grid, got %dx%d", rows, cols)
			}
			return nil
		},
		Build: fixed(NewHypercube),
	})
	Register(Family{
		Kind:           "slimnoc",
		DefaultRouting: "hop-minimal",
		GridConstraint: func(rows, cols int) error {
			_, _, err := slimNoCShape(rows, cols)
			return err
		},
		Build: fixed(NewSlimNoC),
	})
	Register(Family{
		Kind:           "flattened-butterfly",
		DefaultRouting: "monotone-dor",
		Build:          fixed(NewFlattenedButterfly),
	})
	Register(Family{
		Kind:           "sparse-hamming",
		DefaultRouting: "monotone-dor",
		Parameterized:  true,
		Build: func(rows, cols int, sr, sc []int) (*Topology, error) {
			return NewSparseHamming(rows, cols, HammingParams{SR: sr, SC: sc})
		},
	})
	Register(Family{
		Kind:           "ruche",
		DefaultRouting: "monotone-dor",
		Parameterized:  true,
		Build: func(rows, cols int, sr, _ []int) (*Topology, error) {
			factor := 2
			if len(sr) > 0 {
				factor = sr[0]
			}
			return NewRuche(rows, cols, factor)
		},
	})
}
