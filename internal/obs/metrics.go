package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds, as emitted in "# TYPE" exposition lines.
const (
	// KindCounter marks a monotonically increasing series.
	KindCounter = "counter"
	// KindGauge marks a series that can go up and down.
	KindGauge = "gauge"
	// KindHistogram marks a bucketed distribution series.
	KindHistogram = "histogram"
)

// Registry holds named collectors and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use.
// Registering a name twice with the same kind returns the existing
// collector (so independent layers can share a series); re-registering
// with a different kind panics, as it is always a programming error.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	names  []string // registration order; output is sorted anyway
}

// family is one named metric with its help text, kind, and either a
// set of label-keyed children or a sampling function.
type family struct {
	name   string
	help   string
	kind   string
	labels []string

	mu       sync.Mutex
	children map[string]collector // exposition label block -> collector

	// sample, when non-nil, replaces children at scrape time: the
	// family's series are produced by calling it (Func collectors).
	sample func() []Sample

	// buckets holds the upper bounds for histogram families.
	buckets []float64
}

// collector is anything that can report its current value(s).
type collector interface{ value() float64 }

// Sample is one series produced by a Func collector at scrape time.
type Sample struct {
	// Labels holds the label values, aligned with the label names the
	// Func was registered with.
	Labels []string
	// Value is the sample's value.
	Value float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family registers (or finds) the named family.
func (r *Registry) family(name, help, kind string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		children: make(map[string]collector),
	}
	r.byName[name] = f
	r.names = append(r.names, name)
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil)
	return f.counter("")
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil)
	return f.gauge("")
}

// Histogram registers (or finds) an unlabeled histogram with the
// given bucket upper bounds (ascending; a trailing +Inf is implied).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, KindHistogram, nil)
	f.buckets = buckets
	return f.histogram("")
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, KindCounter, labels)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, KindGauge, labels)}
}

// HistogramVec registers (or finds) a labeled histogram family with
// the given bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.family(name, help, KindHistogram, labels)
	f.buckets = buckets
	return &HistogramVec{fam: f}
}

// CounterFunc registers a counter whose value is sampled by fn at
// scrape time (for cumulative figures another layer already tracks).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.Func(name, help, KindCounter, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Func(name, help, KindGauge, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// Func registers a family whose series — possibly several, with
// labels — are produced by fn at each scrape. kind is KindCounter or
// KindGauge. Re-registering the name replaces the sampler, so a
// rebuilt component (e.g. a fresh runner over the same registry) can
// take over its series.
func (r *Registry) Func(name, help, kind string, labelNames []string, fn func() []Sample) {
	f := r.family(name, help, kind, labelNames)
	f.mu.Lock()
	f.sample = fn
	f.mu.Unlock()
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families and series in lexicographic order
// so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.byName))
	for _, name := range r.names {
		fams = append(fams, r.byName[name])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	if f.sample != nil {
		fn := f.sample
		labels := f.labels
		f.mu.Unlock()
		samples := fn()
		lines := make([]string, 0, len(samples))
		for _, s := range samples {
			lines = append(lines, fmt.Sprintf("%s%s %s\n", f.name, labelBlock(labels, s.Labels), formatValue(s.Value)))
		}
		sort.Strings(lines)
		for _, ln := range lines {
			b.WriteString(ln)
		}
		_, err := io.WriteString(w, b.String())
		return err
	}
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := f.children[k]
		switch c := c.(type) {
		case *Histogram:
			c.writeSeries(&b, f.name, k)
		default:
			b.WriteString(f.name)
			b.WriteString(k)
			b.WriteByte(' ')
			b.WriteString(formatValue(c.value()))
			b.WriteByte('\n')
		}
	}
	f.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// child returns the collector for the exposition label block, creating
// it with mk when absent.
func (f *family) child(block string, mk func() collector) collector {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[block]
	if !ok {
		c = mk()
		f.children[block] = c
	}
	return c
}

func (f *family) counter(block string) *Counter {
	return f.child(block, func() collector { return new(Counter) }).(*Counter)
}

func (f *family) gauge(block string) *Gauge {
	return f.child(block, func() collector { return new(Gauge) }).(*Gauge)
}

func (f *family) histogram(block string) *Histogram {
	return f.child(block, func() collector { return newHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing metric. The zero value is
// ready to use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v must be >= 0; negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) value() float64 { return c.Value() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) value() float64 { return g.Value() }

// addFloat CAS-adds a float64 delta to an atomic bit pattern.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Histogram is a bucketed distribution (cumulative buckets, Prometheus
// style). Create it through a Registry so the bucket bounds are set.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // one per bound, plus the +Inf bucket at the end
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// value satisfies collector; families render histograms through
// writeSeries instead, so this reports the observation count.
func (h *Histogram) value() float64 { return float64(h.Count()) }

// writeSeries renders the _bucket/_sum/_count series for one child.
// block is the child's exposition label block ("" or "{k=\"v\"}").
func (h *Histogram) writeSeries(b *strings.Builder, name, block string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var cum uint64
	for i, ub := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(inner, `le="`+formatValue(ub)+`"`), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(inner, `le="+Inf"`), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, block, formatValue(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, block, total)
}

// mergeLabels joins an existing label list with the le label.
func mergeLabels(inner, le string) string {
	if inner == "" {
		return "{" + le + "}"
	}
	return "{" + inner + "," + le + "}"
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (aligned with
// the registered label names).
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.counter(labelBlock(v.fam.labels, values))
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.gauge(labelBlock(v.fam.labels, values))
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.histogram(labelBlock(v.fam.labels, values))
}

// labelBlock renders a {k="v",...} exposition block ("" for no
// labels). Extra values beyond the registered names are dropped;
// missing ones render empty.
func labelBlock(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes help text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float64 the way Prometheus expects: integers
// without a decimal point, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// DefBuckets are general-purpose latency buckets in seconds, spanning
// sub-millisecond HTTP handling to multi-second simulation phases.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
