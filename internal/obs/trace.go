package obs

import (
	"sync"
	"time"
)

// DefaultTraceCap is how many job traces a NewHub trace store keeps
// before evicting the oldest.
const DefaultTraceCap = 256

// Span is one timed region of work in a job's execution trace: the
// job itself, its saturation search, each bisection probe, a probe's
// warmup/measure/drain phases. Spans form a tree and marshal directly
// to the JSON shape the ?debug=trace results field exposes.
//
// All methods are safe on a nil *Span and do nothing, so
// instrumentation sites never need nil checks — an untraced execution
// threads nil spans everywhere at no cost beyond the nil test.
//
// Concurrency: a span's direct mutators (End, SetAttr, Child, Adopt)
// are mutex-guarded, so concurrent children of one parent are safe.
// Speculative work that may outlive its trace (e.g. a canceled probe
// goroutine) must build its subtree on a detached span from Fork and
// only Adopt it into the tree from the consuming goroutine.
type Span struct {
	// Name identifies the region ("job", "saturation", "probe",
	// "warmup", ...).
	Name string `json:"name"`
	// StartMs is the span's start in milliseconds relative to its
	// tree's root.
	StartMs float64 `json:"start_ms"`
	// DurMs is the span's duration in milliseconds; 0 until End.
	DurMs float64 `json:"dur_ms"`
	// Attrs carries small scalar annotations (injection rate, verdict,
	// cycle counts). Nil when empty.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Children are the nested spans, in the order they were attached.
	Children []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	epoch time.Time // the tree root's start instant
	start time.Time
}

// NewSpan starts a root span. Its epoch (the zero of all StartMs in
// the tree) is its own start time.
func NewSpan(name string) *Span {
	now := time.Now()
	return &Span{Name: name, epoch: now, start: now}
}

// Child starts a nested span and attaches it. Returns nil on a nil
// receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.Fork(name)
	s.Adopt(c)
	return c
}

// Fork starts a span sharing s's epoch but NOT attached to the tree.
// Use it for speculative work that may be canceled: the producing
// goroutine mutates only the forked subtree, and the consumer calls
// Adopt if and when the work is actually used. Returns nil on a nil
// receiver.
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	epoch := s.epoch
	s.mu.Unlock()
	return &Span{
		Name:    name,
		StartMs: float64(now.Sub(epoch)) / float64(time.Millisecond),
		epoch:   epoch,
		start:   now,
	}
}

// Adopt attaches a forked span (and its subtree) as a child. No-op if
// either span is nil.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
}

// End fixes the span's duration. Safe to call more than once (the
// first call wins) and on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.DurMs == 0 {
		s.DurMs = float64(now.Sub(s.start)) / float64(time.Millisecond)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span. No-op on a nil receiver.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
}

// Duration returns the span's duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.DurMs * float64(time.Millisecond))
}

// Walk visits the span and every descendant depth-first. No-op on a
// nil receiver.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	kids := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.Walk(fn)
	}
}

// Find returns the first descendant (or the span itself) with the
// given name, depth-first; nil when absent.
func (s *Span) Find(name string) *Span {
	var hit *Span
	s.Walk(func(sp *Span) {
		if hit == nil && sp.Name == name {
			hit = sp
		}
	})
	return hit
}

// TraceStore keeps the most recent span trees keyed by job content
// key, evicting oldest-first past its capacity. Safe for concurrent
// use; the zero value and a nil store both discard everything.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*Span
	order []string
}

// NewTraceStore returns a store keeping at most capacity traces
// (minimum 1).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceStore{cap: capacity, byKey: make(map[string]*Span)}
}

// Put stores (or replaces) the trace for a job key. No-op on a nil or
// zero-value store.
func (t *TraceStore) Put(key string, s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byKey == nil || t.cap < 1 {
		return
	}
	if _, ok := t.byKey[key]; !ok {
		t.order = append(t.order, key)
		for len(t.order) > t.cap {
			delete(t.byKey, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.byKey[key] = s
}

// Get returns the stored trace for a job key, or nil.
func (t *TraceStore) Get(key string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byKey[key]
}

// Len reports how many traces are stored.
func (t *TraceStore) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byKey)
}
