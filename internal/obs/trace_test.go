package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("job")
	sat := root.Child("saturation")
	p := sat.Child("probe")
	p.SetAttr("rate", 0.5)
	p.End()
	sat.End()
	root.End()

	if len(root.Children) != 1 || root.Children[0] != sat {
		t.Fatalf("root children = %v", root.Children)
	}
	if got := root.Find("probe"); got != p {
		t.Fatalf("Find(probe) = %v", got)
	}
	if p.Attrs["rate"] != 0.5 {
		t.Errorf("attr = %v", p.Attrs["rate"])
	}
	if p.StartMs < sat.StartMs || sat.StartMs < root.StartMs {
		t.Errorf("starts not monotone: %v %v %v", root.StartMs, sat.StartMs, p.StartMs)
	}

	var n int
	root.Walk(func(*Span) { n++ })
	if n != 3 {
		t.Errorf("Walk visited %d spans, want 3", n)
	}

	// The tree must marshal to JSON (the ?debug=trace wire shape).
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["name"] != "job" {
		t.Errorf("marshaled name = %v", m["name"])
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span Child should be nil")
	}
	c.End()
	c.SetAttr("k", 1)
	s.Adopt(s.Fork("y"))
	s.Walk(func(*Span) { t.Fatal("nil Walk should not visit") })
	if s.Duration() != 0 {
		t.Fatal("nil Duration should be 0")
	}
}

func TestSpanEndOnceAndDuration(t *testing.T) {
	s := NewSpan("x")
	time.Sleep(2 * time.Millisecond)
	s.End()
	d := s.DurMs
	if d <= 0 {
		t.Fatalf("DurMs = %v, want > 0", d)
	}
	s.End()
	if s.DurMs != d {
		t.Errorf("second End changed DurMs: %v -> %v", d, s.DurMs)
	}
	if s.Duration() <= 0 {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestForkAdoptConcurrent(t *testing.T) {
	// The speculative-probe pattern: many goroutines build forked
	// subtrees; only some get adopted, from the consumer goroutine.
	root := NewSpan("job")
	var wg sync.WaitGroup
	forks := make([]*Span, 16)
	for i := range forks {
		f := root.Fork(fmt.Sprintf("probe-%d", i))
		forks[i] = f
		wg.Add(1)
		go func(f *Span) {
			defer wg.Done()
			f.Child("measure").End()
			f.End()
		}(f)
	}
	wg.Wait()
	for i, f := range forks {
		if i%2 == 0 {
			root.Adopt(f)
		}
	}
	root.End()
	if len(root.Children) != 8 {
		t.Fatalf("adopted %d children, want 8", len(root.Children))
	}
	if root.Find("probe-0") == nil || root.Find("probe-1") != nil {
		t.Error("adoption selection wrong")
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	ts.Put("a", NewSpan("a"))
	ts.Put("b", NewSpan("b"))
	ts.Put("a", NewSpan("a2")) // replace, no new slot
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	if got := ts.Get("a"); got == nil || got.Name != "a2" {
		t.Errorf("Get(a) = %v, want replaced trace", got)
	}
	ts.Put("c", NewSpan("c"))
	if ts.Len() != 2 {
		t.Fatalf("Len after evict = %d, want 2", ts.Len())
	}
	if ts.Get("a") != nil {
		t.Error("a (oldest slot) should have been evicted")
	}
	if ts.Get("b") == nil || ts.Get("c") == nil {
		t.Error("b and c should survive eviction")
	}

	var nilStore *TraceStore
	nilStore.Put("x", NewSpan("x"))
	if nilStore.Get("x") != nil || nilStore.Len() != 0 {
		t.Error("nil store should discard")
	}
}

func TestHubDefaults(t *testing.T) {
	h := NewHub()
	if h.Metrics == nil || h.Traces == nil || h.Log == nil {
		t.Fatal("NewHub left a backend nil")
	}
	h.Log.Info("discarded") // must not panic
	if h.SlowJobThreshold() != DefaultSlowJob {
		t.Errorf("threshold = %v", h.SlowJobThreshold())
	}
	var nilHub *Hub
	if nilHub.SlowJobThreshold() != DefaultSlowJob {
		t.Error("nil hub threshold")
	}
	nilHub.Logger().Info("discarded")
}
