package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("test_depth", "Depth.")
	g.Set(5)
	g.Dec()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 3\n",
		"# TYPE test_depth gauge\n",
		"test_depth 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationSharesCollector(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "x")
	b := r.Counter("dup_total", "x")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("shared counter = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind should panic")
		}
	}()
	r.Gauge("dup_total", "x")
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "Requests.", "route", "code")
	v.With("GET /metrics", "200").Add(2)
	v.With("GET /metrics", "200").Inc()
	v.With(`we"ird`, "500").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `http_requests_total{route="GET /metrics",code="200"} 3`) {
		t.Errorf("missing labeled series in:\n%s", out)
	}
	if !strings.Contains(out, `http_requests_total{route="we\"ird",code="500"} 1`) {
		t.Errorf("label escaping broken in:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 6.05",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("phase_seconds", "Phase time.", []float64{1}, "phase")
	v.With("warmup").Observe(0.5)
	v.With("measure").Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`phase_seconds_bucket{phase="warmup",le="1"} 1`,
		`phase_seconds_bucket{phase="measure",le="+Inf"} 1`,
		`phase_seconds_count{phase="measure"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram vec missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.CounterFunc("sampled_total", "Sampled.", func() float64 { return n })
	r.Func("states", "Per-state gauge.", KindGauge, []string{"state"}, func() []Sample {
		return []Sample{
			{Labels: []string{"running"}, Value: 2},
			{Labels: []string{"done"}, Value: 3},
		}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sampled_total 7\n",
		`states{state="running"} 2`,
		`states{state="done"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("func collector missing %q in:\n%s", want, out)
		}
	}

	// Re-registering a Func replaces the sampler.
	r.CounterFunc("sampled_total", "Sampled.", func() float64 { return 9 })
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sampled_total 9\n") {
		t.Errorf("replaced sampler not used:\n%s", b.String())
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	g := r.Gauge("conc_gauge", "x")
	v := r.CounterVec("conc_vec_total", "x", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if v.With("a").Value() != 8000 {
		t.Errorf("vec counter = %v, want 8000", v.With("a").Value())
	}
}

func TestDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z").Inc()
	r.Counter("aa_total", "a").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in string
		ok bool
	}{
		{"", true}, {"info", true}, {"DEBUG", true}, {"warn", true},
		{"warning", true}, {"error", true}, {"verbose", false},
	} {
		_, err := ParseLevel(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseLevel(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
	}
	if _, err := NewLogger(&strings.Builder{}, "debug"); err != nil {
		t.Fatal(err)
	}
}
