// Package obs is the repository's observability layer: a
// dependency-free metrics registry with Prometheus text exposition,
// lightweight execution-trace spans, and structured-logging helpers.
//
// Every tier of the stack feeds it. The simulation engine keeps plain
// atomic counters it bumps only at run boundaries (the steady-state
// cycle loop stays allocation-free and untouched); the campaign
// runner counts batches, job outcomes, and worker busy-time; the
// campaign service instruments every HTTP route. The registry samples
// all of them at scrape time — GET /metrics on cmd/shserved, or the
// -metrics dump of cmd/shrun and cmd/shsweep — in the Prometheus text
// exposition format, without importing any external client library.
//
// Tracing answers "where did this job's 9.5 seconds go": evaluators
// record a span tree per job (cost model, saturation search,
// zero-load reference, every bisection probe, and each probe's
// warmup/measure/drain phases), the TraceStore keeps the most recent
// trees keyed by job content key, and the campaign service surfaces
// them via GET /v1/campaigns/{id}/results?debug=trace.
//
// The three backends are bundled by Hub, the single value a process
// threads through its layers.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// Hub bundles the observability backends one process shares: the
// metric registry, the per-job trace store, and the structured
// logger. A nil *Hub disables instrumentation wherever it is
// accepted, so layers thread it without nil checks.
type Hub struct {
	// Metrics is the process-wide metric registry.
	Metrics *Registry
	// Traces keeps recent per-job span trees, keyed by job content
	// key.
	Traces *TraceStore
	// Log is the structured logger; never nil on a NewHub-built hub.
	Log *slog.Logger
	// SlowJob is the evaluation-duration threshold above which a job
	// is logged as slow (with its phase breakdown); 0 takes
	// DefaultSlowJob.
	SlowJob time.Duration
}

// DefaultSlowJob is the slow-job log threshold a Hub with a zero
// SlowJob field applies.
const DefaultSlowJob = 5 * time.Second

// NewHub returns a ready-to-use hub: fresh registry, a trace store
// holding DefaultTraceCap traces, and a logger that discards
// everything (replace Log to enable logging).
func NewHub() *Hub {
	return &Hub{
		Metrics: NewRegistry(),
		Traces:  NewTraceStore(DefaultTraceCap),
		Log:     slog.New(discardHandler{}),
	}
}

// SlowJobThreshold returns the effective slow-job threshold.
func (h *Hub) SlowJobThreshold() time.Duration {
	if h == nil || h.SlowJob <= 0 {
		return DefaultSlowJob
	}
	return h.SlowJob
}

// Logger returns the hub's logger, falling back to a discarding
// logger so callers never need a nil check.
func (h *Hub) Logger() *slog.Logger {
	if h == nil || h.Log == nil {
		return slog.New(discardHandler{})
	}
	return h.Log
}

// NewLogger builds a text-format slog logger writing to w at the
// named level: "debug", "info", "warn", or "error" (the spelling
// -log-level flags accept). An empty level means "info".
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}

// ParseLevel parses a -log-level flag value; "" means info.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
}

// discardHandler is a slog.Handler that drops every record (the
// default for hubs whose owner did not configure logging).
type discardHandler struct{}

// Enabled reports false for every level, short-circuiting the logger.
func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle drops the record.
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs returns the handler unchanged.
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler { return d }

// WithGroup returns the handler unchanged.
func (d discardHandler) WithGroup(string) slog.Handler { return d }
