package sparsehamming

// TestExportedDocComments is the repository's revive-style comment
// check: every exported type, function, method, constant, and
// variable of the documented packages must carry a doc comment. It
// runs as a plain test so CI enforces it without external linters.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedPackages lists the directories whose exported APIs must
// be fully documented.
var docCheckedPackages = []string{
	"internal/analytic",
	"internal/dse",
	"internal/sim",
	"internal/exp",
	"internal/noc",
	"internal/obs",
	"internal/perf",
	"internal/spec",
	"internal/topo",
	"internal/trace",
	"internal/route",
	"internal/serve",
	"internal/report",
}

func TestExportedDocComments(t *testing.T) {
	for _, dir := range docCheckedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				checkFileDocs(t, fset, path, file)
			}
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, path string, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), what, name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the const/var block covers
					// every name in it (the idiomatic enum style).
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, name := range sp.Names {
						if name.IsExported() {
							report(name.Pos(), "const/var", name.Name)
						}
					}
				}
			}
		}
	}
}
