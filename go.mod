module sparsehamming

go 1.24
