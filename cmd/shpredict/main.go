// Command shpredict runs the full prediction toolchain (Figure 3 of
// the paper) for one topology on one evaluation scenario: the
// approximate floorplanning cost model followed by cycle-accurate
// simulation, printing area, power, zero-load latency, and saturation
// throughput.
//
// Predictions run as experiment-campaign jobs, so -cache memoizes
// them across invocations and -curve sweeps its load points in
// parallel on a worker pool (-jobs).
//
// -route selects a routing algorithm and -traffic a synthetic traffic
// pattern by their registry names (defaults: the topology's
// co-designed routing, uniform random traffic). -quality selects the
// simulation tier: fixed-budget "quick" (default) or "full", or the
// adaptive-control "adaptive" tier (early-verdict probes inside
// quick's budgets; >=2x faster, metrics within ~2%).
//
// Examples:
//
//	shpredict -scenario a -topo sparse-hamming -sr 4 -sc 2,5
//	shpredict -scenario c -topo slimnoc
//	shpredict -scenario b -topo mesh -full
//	shpredict -scenario a -topo mesh -quality adaptive
//	shpredict -scenario a -topo mesh -curve -jobs 8 -cache results.json
//	shpredict -scenario a -topo hypercube -route e-cube -traffic transpose
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/phys"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/topo"
)

func main() {
	var (
		scenario = flag.String("scenario", "a", "evaluation scenario: a|b|c|d|mempool")
		kind     = flag.String("topo", "sparse-hamming", "topology kind (see shgen -h)")
		sr       = flag.String("sr", "", "sparse Hamming row offsets")
		sc       = flag.String("sc", "", "sparse Hamming column offsets")
		routeF   = flag.String("route", "", "routing algorithm (default: the topology's co-designed one): "+
			strings.Join(route.Names(), "|"))
		traffic = flag.String("traffic", "", "traffic pattern for the performance simulations (default uniform): "+
			strings.Join(sim.PatternNames(), "|"))
		full    = flag.Bool("full", false, "full-length simulation windows (same as -quality full)")
		quality = flag.String("quality", "", "simulation quality tier: quick|full|adaptive (default quick)")
		trace   = flag.Int("trace", 0, "additionally trace the first N packets of a short run")
		curve   = flag.Bool("curve", false, "additionally print a load-latency curve")
		jobs    = flag.Int("jobs", 0, "parallel simulation workers (0 = all cores)")
		cacheP  = flag.String("cache", "", "JSON file memoizing results across invocations")
	)
	flag.Parse()

	srs, err := cli.ParseInts(*sr)
	if err != nil {
		fatal(fmt.Errorf("-sr: %w", err))
	}
	scs, err := cli.ParseInts(*sc)
	if err != nil {
		fatal(fmt.Errorf("-sc: %w", err))
	}
	if !route.Registered(*routeF) {
		fatal(fmt.Errorf("-route: unknown algorithm %q (want one of %s)", *routeF, strings.Join(route.Names(), "|")))
	}
	if !sim.PatternRegistered(*traffic) {
		fatal(fmt.Errorf("-traffic: unknown pattern %q (want one of %s)", *traffic, strings.Join(sim.PatternNames(), "|")))
	}
	q := noc.Quick
	if *full {
		q = noc.Full
	}
	if *quality != "" {
		var err error
		if q, err = noc.QualityByName(*quality); err != nil {
			fatal(fmt.Errorf("-quality: %w", err))
		}
	}

	runner := noc.NewRunner(*jobs, nil)
	camp := cli.StartCampaign("shpredict", *cacheP, runner, false)
	campFatal := func(err error) {
		camp.Close()
		fatal(err)
	}

	job := exp.Job{
		Mode:     exp.ModePredict,
		Scenario: *scenario,
		Topo:     *kind,
		Routing:  *routeF,
		Pattern:  *traffic,
		Quality:  noc.QualityName(q),
		Seed:     1,
	}
	// Only the kinds that read the offsets carry them in the spec;
	// stray -sr/-sc on other topologies would needlessly fragment
	// cache keys for otherwise identical jobs.
	switch *kind {
	case "sparse-hamming":
		job.SR, job.SC = srs, scs
	case "ruche":
		job.SR = srs
	}
	arch, err := noc.ArchForJob(job)
	if err != nil {
		campFatal(err)
	}

	results, _, err := runner.Run([]exp.Job{job})
	if err != nil {
		campFatal(err)
	}
	pred := noc.PredictionFromResult(results[0])
	fmt.Printf("scenario %s: %d tiles of %.0f MGE, %g bits/cycle at %.1f GHz\n\n",
		*scenario, arch.NumTiles(), arch.EndpointGE/1e6, arch.LinkBWBits, arch.FreqHz/1e9)
	fmt.Print(noc.FormatPrediction(pred))
	if pred.SimCycles > 0 {
		fmt.Fprintf(os.Stderr, "shpredict: simulated %.2fM cycles, %.1fM flit-hops\n",
			float64(pred.SimCycles)/1e6, float64(pred.SimFlitHops)/1e6)
	}

	if *curve {
		if err := printCurve(runner, job); err != nil {
			campFatal(err)
		}
	}
	camp.Close()
	if *trace > 0 {
		t, err := cli.Build(*kind, arch.Rows, arch.Cols, srs, scs)
		if err != nil {
			fatal(err)
		}
		if err := tracePackets(arch, t, *routeF, *traffic, *trace); err != nil {
			fatal(err)
		}
	}
}

// printCurve sweeps the offered load as one campaign batch of
// single-point simulation jobs and prints the classic load-latency
// curve.
func printCurve(runner *exp.Runner, base exp.Job) error {
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	jobsList := make([]exp.Job, len(rates))
	for i, r := range rates {
		j := base
		j.Mode = exp.ModeLoad
		j.Load = r
		jobsList[i] = j
	}
	results, _, err := runner.Run(jobsList)
	if err != nil {
		return err
	}
	pattern := base.Pattern
	if pattern == "" {
		pattern = "uniform random"
	}
	fmt.Printf("\nload-latency curve (%s):\n", pattern)
	fmt.Println("offered   accepted   avg lat    p99 lat")
	for _, st := range results {
		fmt.Printf(" %5.2f     %6.3f   %7.1f    %7.1f\n",
			st.OfferedRate, st.AcceptedRate, st.AvgPacketLatency, st.P99PacketLatency)
	}
	return nil
}

// tracePackets runs a short low-load simulation with per-flit tracing
// enabled for the first n packets (BookSim watch-style output), under
// the same routing and traffic pattern as the headline prediction.
func tracePackets(arch *tech.Arch, t *topo.Topology, routing, traffic string, n int) error {
	cost, err := phys.Evaluate(arch, t)
	if err != nil {
		return err
	}
	rt, err := route.ForName(t, routing)
	if err != nil {
		return err
	}
	pat, err := sim.PatternByName(traffic, t.Rows, t.Cols)
	if err != nil {
		return err
	}
	watch := make(map[int32]bool, n)
	for i := 0; i < n; i++ {
		watch[int32(i)] = true
	}
	tracer := &sim.PacketTracer{Watch: watch}
	_, err = sim.RunConfig(sim.Config{
		Topo: t, Routing: rt,
		NumVCs: arch.Proto.NumVCs, BufDepth: arch.Proto.BufDepthFlits,
		LinkLatency: cost.LinkLatencies, RouterDelay: noc.RouterDelay,
		PacketLen: 4, InjectionRate: 0.02, Pattern: pat, Seed: 1,
		Warmup: 0, Measure: 400, Drain: 2000, Tracer: tracer,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace of the first %d packets:\n", n)
	w := &sim.WriterTracer{W: os.Stdout}
	for _, ev := range tracer.Events {
		w.Trace(ev)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shpredict:", err)
	os.Exit(1)
}
