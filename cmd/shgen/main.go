// Command shgen builds a NoC topology and prints its properties, an
// ASCII drawing, a Graphviz export, or the design-principle
// compliance table (Table I of the paper) — and doubles as the
// workload-trace tool: it generates application-shaped traces
// (-gen), captures traces from any registered synthetic traffic
// pattern (-capture), and validates trace files (-check-trace). See
// docs/TRACES.md for the format.
//
// Examples:
//
//	shgen -topo sparse-hamming -rows 8 -cols 8 -sr 4 -sc 2,5
//	shgen -topo mesh -rows 8 -cols 8 -draw
//	shgen -rows 8 -cols 8 -table1
//	shgen -topo slimnoc -rows 8 -cols 16 -dot > slimnoc.dot
//	shgen -gen bursty -rows 4 -cols 4 -cycles 2500 -o bursty-4x4.trace
//	shgen -capture transpose -topo mesh -rows 4 -cols 4 -rate 0.2 -o transpose.trace
//	shgen -check-trace examples/traces/*.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/trace"
	"sparsehamming/internal/viz"
)

func main() {
	var (
		kind   = flag.String("topo", "sparse-hamming", "topology: ring|mesh|torus|folded-torus|hypercube|slimnoc|flattened-butterfly|sparse-hamming")
		rows   = flag.Int("rows", 8, "tile grid rows")
		cols   = flag.Int("cols", 8, "tile grid columns")
		sr     = flag.String("sr", "", "sparse Hamming row offsets, e.g. 2,4")
		sc     = flag.String("sc", "", "sparse Hamming column offsets, e.g. 2,5")
		draw   = flag.Bool("draw", false, "print an ASCII drawing (Figure 1/2 style)")
		dot    = flag.Bool("dot", false, "print Graphviz DOT")
		table1 = flag.Bool("table1", false, "print the Table I compliance table for the grid")

		gen     = flag.String("gen", "", "generate an application-shaped trace: "+genNames())
		capture = flag.String("capture", "", "capture a trace from a synthetic pattern (e.g. uniform, transpose)")
		check   = flag.Bool("check-trace", false, "parse and validate the trace files given as arguments")
		out     = flag.String("o", "", "trace output path (default stdout)")
		cycles  = flag.Int64("cycles", 3000, "trace horizon in cycles (-gen) / injection cycles (-capture)")
		seed    = flag.Int64("seed", 1, "generator or capture-simulation seed")
		rate    = flag.Float64("rate", 0.2, "target offered load in flits/node/cycle")
		plen    = flag.Int("plen", 4, "packet length in flits")
	)
	flag.Parse()

	switch {
	case *check:
		checkTraces(flag.Args())
		return
	case *gen != "":
		tr, err := trace.Generate(*gen, trace.GenConfig{
			Rows: *rows, Cols: *cols, Cycles: *cycles, Seed: *seed, Rate: *rate, PacketLen: *plen,
		})
		if err != nil {
			fatal(err)
		}
		emitTrace(tr, *out)
		return
	case *capture != "":
		tr, err := captureTrace(*capture, *kind, *rows, *cols, *sr, *sc, *cycles, *seed, *rate, *plen)
		if err != nil {
			fatal(err)
		}
		emitTrace(tr, *out)
		return
	}

	if *table1 {
		arch := tech.Scenario(tech.ScenarioA)
		arch.Rows, arch.Cols = *rows, *cols
		rowsI, err := noc.TableI(arch)
		if err != nil {
			fatal(err)
		}
		fmt.Print(noc.FormatTableI(rowsI))
		return
	}

	t, err := cli.BuildTopology(*kind, *rows, *cols, *sr, *sc)
	if err != nil {
		fatal(err)
	}
	switch {
	case *dot:
		fmt.Print(viz.DOT(t))
	case *draw:
		fmt.Print(viz.Topology(t))
	default:
		sc := t.Structural()
		fmt.Printf("topology:        %s (%dx%d)\n", t.Kind, t.Rows, t.Cols)
		fmt.Printf("links:           %d\n", t.NumLinks())
		fmt.Printf("router radix:    %d\n", sc.RouterRadix)
		fmt.Printf("diameter:        %d\n", sc.Diameter)
		fmt.Printf("avg hops:        %.2f\n", t.AverageHops())
		fmt.Printf("short links:     %s\n", sc.ShortLinks)
		fmt.Printf("aligned links:   %s\n", sc.AlignedLinks)
		fmt.Printf("minimal paths:   present=%v usable=%v\n", sc.MinimalPathsPresent, sc.MinimalPathsUsable)
		fmt.Printf("bisection links: %d\n", t.BisectionLinks())
	}
}

// genNames renders the generator catalog for the flag help text.
func genNames() string {
	names := trace.GeneratorNames()
	s := ""
	for i, n := range names {
		if i > 0 {
			s += "|"
		}
		s += n
	}
	return s
}

// captureTrace runs the named synthetic pattern on the requested
// topology and records its injection schedule (sim.CaptureTrace). The
// -cycles flag is the injection span: the capture simulation warms up
// briefly and then injects for the remaining cycles.
func captureTrace(pattern, kind string, rows, cols int, sr, sc string, cycles, seed int64, rate float64, plen int) (*trace.Trace, error) {
	t, err := cli.BuildTopology(kind, rows, cols, sr, sc)
	if err != nil {
		return nil, err
	}
	rt, err := route.ForName(t, "")
	if err != nil {
		return nil, err
	}
	pat, err := sim.PatternByName(pattern, rows, cols)
	if err != nil {
		return nil, err
	}
	if cycles < 2 {
		return nil, fmt.Errorf("capture needs -cycles >= 2, got %d", cycles)
	}
	tr, _, err := sim.CaptureTrace(sim.Config{
		Topo: t, Routing: rt,
		PacketLen:     plen,
		InjectionRate: rate,
		Pattern:       pat,
		Seed:          seed,
		Warmup:        1,
		Measure:       int(cycles) - 1,
	})
	return tr, err
}

// emitTrace writes the trace to the -o path, or stdout when unset.
func emitTrace(tr *trace.Trace, out string) {
	if out == "" {
		if err := trace.Write(os.Stdout, tr); err != nil {
			fatal(err)
		}
		return
	}
	if err := trace.WriteFile(out, tr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "shgen: wrote %d records to %s\n", len(tr.Records), out)
}

// checkTraces validates every trace file argument, reporting a
// one-line summary per file and exiting non-zero on the first
// failure.
func checkTraces(paths []string) {
	if len(paths) == 0 {
		fatal(fmt.Errorf("-check-trace needs trace file arguments"))
	}
	for _, path := range paths {
		tr, err := trace.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: ok (%dx%d grid, %d records, horizon %d)\n",
			path, tr.Meta.Rows, tr.Meta.Cols, len(tr.Records), tr.EffectiveHorizon())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shgen:", err)
	os.Exit(1)
}
