// Command shgen builds a NoC topology and prints its properties, an
// ASCII drawing, a Graphviz export, or the design-principle
// compliance table (Table I of the paper).
//
// Examples:
//
//	shgen -topo sparse-hamming -rows 8 -cols 8 -sr 4 -sc 2,5
//	shgen -topo mesh -rows 8 -cols 8 -draw
//	shgen -rows 8 -cols 8 -table1
//	shgen -topo slimnoc -rows 8 -cols 16 -dot > slimnoc.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
	"sparsehamming/internal/viz"
)

func main() {
	var (
		kind   = flag.String("topo", "sparse-hamming", "topology: ring|mesh|torus|folded-torus|hypercube|slimnoc|flattened-butterfly|sparse-hamming")
		rows   = flag.Int("rows", 8, "tile grid rows")
		cols   = flag.Int("cols", 8, "tile grid columns")
		sr     = flag.String("sr", "", "sparse Hamming row offsets, e.g. 2,4")
		sc     = flag.String("sc", "", "sparse Hamming column offsets, e.g. 2,5")
		draw   = flag.Bool("draw", false, "print an ASCII drawing (Figure 1/2 style)")
		dot    = flag.Bool("dot", false, "print Graphviz DOT")
		table1 = flag.Bool("table1", false, "print the Table I compliance table for the grid")
	)
	flag.Parse()

	if *table1 {
		arch := tech.Scenario(tech.ScenarioA)
		arch.Rows, arch.Cols = *rows, *cols
		rowsI, err := noc.TableI(arch)
		if err != nil {
			fatal(err)
		}
		fmt.Print(noc.FormatTableI(rowsI))
		return
	}

	t, err := cli.BuildTopology(*kind, *rows, *cols, *sr, *sc)
	if err != nil {
		fatal(err)
	}
	switch {
	case *dot:
		fmt.Print(viz.DOT(t))
	case *draw:
		fmt.Print(viz.Topology(t))
	default:
		sc := t.Structural()
		fmt.Printf("topology:        %s (%dx%d)\n", t.Kind, t.Rows, t.Cols)
		fmt.Printf("links:           %d\n", t.NumLinks())
		fmt.Printf("router radix:    %d\n", sc.RouterRadix)
		fmt.Printf("diameter:        %d\n", sc.Diameter)
		fmt.Printf("avg hops:        %.2f\n", t.AverageHops())
		fmt.Printf("short links:     %s\n", sc.ShortLinks)
		fmt.Printf("aligned links:   %s\n", sc.AlignedLinks)
		fmt.Printf("minimal paths:   present=%v usable=%v\n", sc.MinimalPathsPresent, sc.MinimalPathsUsable)
		fmt.Printf("bisection links: %d\n", t.BisectionLinks())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shgen:", err)
	os.Exit(1)
}
