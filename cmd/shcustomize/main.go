// Command shcustomize runs the paper's five-step NoC topology
// customization strategy (Section V-a): starting from a mesh, it
// iteratively adds sparse Hamming graph offsets, guided by the fast
// cost model, until the area-overhead budget is exhausted, then
// validates the final topology with cycle-accurate simulation.
//
// Example:
//
//	shcustomize -scenario a -budget 40
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
)

func main() {
	var (
		scenario = flag.String("scenario", "a", "evaluation scenario: a|b|c|d")
		budget   = flag.Float64("budget", 40, "maximum NoC area overhead in percent")
		full     = flag.Bool("full", false, "full-length simulation windows")
	)
	flag.Parse()

	arch := tech.Scenario(tech.ScenarioID(*scenario))
	if arch == nil {
		fmt.Fprintf(os.Stderr, "shcustomize: unknown scenario %q\n", *scenario)
		os.Exit(1)
	}
	quality := noc.Quick
	if *full {
		quality = noc.Full
	}
	res, err := noc.Customize(arch, *budget, quality)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shcustomize:", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %s, budget %.0f%% area overhead\n", *scenario, *budget)
	fmt.Printf("paper's parameters for this scenario: %s\n\n", noc.PaperSHGParams(tech.ScenarioID(*scenario)))
	fmt.Print(noc.FormatCustomization(res))
}
