package main

// The -server client path: submit specs to a running shserved
// campaign service (docs/API.md), stream or poll progress, and print
// the same tables/CSV the local path prints — computed remotely on
// the service's shared worker pool and result cache.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"sparsehamming/internal/report"
	"sparsehamming/internal/serve"
	"sparsehamming/internal/spec"
)

// remote is the shserved API client.
type remote struct {
	base     string // service base URL, no trailing slash
	progress bool   // stream per-job progress lines to stderr
}

// url joins a path onto the base URL.
func (r *remote) url(path string) string {
	return strings.TrimRight(r.base, "/") + path
}

// run submits one spec, waits for the campaign to finish, and prints
// its results (CSV rows when csv, per-sweep tables otherwise).
func (r *remote) run(s *spec.Spec, csv bool) error {
	snap, err := r.submit(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shrun: %s: submitted as %s (%d jobs)\n", s.Name, snap.ID, snap.Jobs)

	if r.progress {
		go r.streamEvents(snap.ID)
	}
	snap, err = r.wait(snap.ID)
	if err != nil {
		return err
	}
	if snap.Status != serve.StatusDone {
		return fmt.Errorf("campaign %s %s: %s", snap.ID, snap.Status, snap.Error)
	}
	if snap.Report != nil {
		fmt.Fprintf(os.Stderr, "shrun: campaign: %s\n", snap.Report.Summary)
	}
	return r.printResults(s, snap.ID, csv)
}

// submit POSTs the spec and decodes the campaign resource.
func (r *remote) submit(s *spec.Spec) (*serve.CampaignJSON, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(r.url("/v1/campaigns"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("submitting to %s: %w", r.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiErr("submit", resp)
	}
	var snap serve.CampaignJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding submit response: %w", err)
	}
	return &snap, nil
}

// wait polls the campaign until it reaches a terminal state.
func (r *remote) wait(id string) (*serve.CampaignJSON, error) {
	for {
		resp, err := http.Get(r.url("/v1/campaigns/" + id))
		if err != nil {
			return nil, fmt.Errorf("polling campaign %s: %w", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return nil, apiErr("status", resp)
		}
		var snap serve.CampaignJSON
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("decoding campaign %s: %w", id, err)
		}
		if snap.Status.Terminal() {
			return &snap, nil
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// printResults fetches and prints the finished campaign's results.
func (r *remote) printResults(s *spec.Spec, id string, csv bool) error {
	if csv {
		resp, err := http.Get(r.url("/v1/campaigns/" + id + "/results?format=csv"))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiErr("results", resp)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for line := 0; sc.Scan(); line++ {
			if line == 0 {
				continue // main printed the shared header already
			}
			fmt.Println(sc.Text())
		}
		return sc.Err()
	}
	resp, err := http.Get(r.url("/v1/campaigns/" + id + "/results"))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr("results", resp)
	}
	var res serve.ResultsJSON
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return fmt.Errorf("decoding results: %w", err)
	}
	if len(res.Sweeps) != len(s.Sweeps) {
		return fmt.Errorf("campaign %s returned %d sweeps, spec has %d", id, len(res.Sweeps), len(s.Sweeps))
	}
	for pi, sw := range res.Sweeps {
		report.WriteSweepTable(os.Stdout, s, pi, sw.Jobs, sw.Results)
	}
	return nil
}

// streamEvents consumes the campaign's SSE stream and prints one
// stderr line per progress event, mirroring the local -progress log.
func (r *remote) streamEvents(id string) {
	resp, err := http.Get(r.url("/v1/campaigns/" + id + "/events"))
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return // progress is best-effort; polling still reports the outcome
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Done      int     `json:"done"`
			Total     int     `json:"total"`
			Job       string  `json:"job"`
			Cached    bool    `json:"cached"`
			Shared    bool    `json:"shared"`
			Error     string  `json:"error"`
			ElapsedMs float64 `json:"elapsed_ms"`
		}
		if json.Unmarshal([]byte(data), &ev) != nil || ev.Total == 0 || ev.Job == "" {
			continue // status/done snapshots, keep-alives
		}
		switch {
		case ev.Error != "":
			fmt.Fprintf(os.Stderr, "[%d/%d] %s  error: %s\n", ev.Done, ev.Total, ev.Job, ev.Error)
		case ev.Cached:
			fmt.Fprintf(os.Stderr, "[%d/%d] %s  cached\n", ev.Done, ev.Total, ev.Job)
		case ev.Shared:
			fmt.Fprintf(os.Stderr, "[%d/%d] %s  shared\n", ev.Done, ev.Total, ev.Job)
		default:
			fmt.Fprintf(os.Stderr, "[%d/%d] %s  %.2fs\n", ev.Done, ev.Total, ev.Job, ev.ElapsedMs/1000)
		}
	}
}

// apiErr renders a non-2xx API response as an error, decoding the
// JSON error envelope when present.
func apiErr(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
		return fmt.Errorf("%s: %s: %s", op, resp.Status, envelope.Error)
	}
	return fmt.Errorf("%s: %s: %s", op, resp.Status, strings.TrimSpace(string(body)))
}
